// Tests for the simulated AWS layer: S3 object store, AFI service
// lifecycle, and F1 instance slot management.
#include <gtest/gtest.h>

#include <filesystem>

#include "cloud/afi.hpp"
#include "cloud/f1.hpp"
#include "cloud/s3.hpp"
#include "condor/flow.hpp"
#include "nn/models.hpp"
#include "nn/weights.hpp"
#include "test_util.hpp"

namespace condor::cloud {
namespace {

std::string fresh_root(const char* name) {
  const std::string root = ::testing::TempDir() + "/condor_cloud_" + name;
  std::filesystem::remove_all(root);
  return root;
}

std::vector<std::byte> to_bytes(std::string_view text) {
  std::vector<std::byte> out(text.size());
  std::memcpy(out.data(), text.data(), text.size());
  return out;
}

TEST(S3, PutGetListDelete) {
  ObjectStore store(fresh_root("s3"));
  ASSERT_TRUE(store.create_bucket("my-bucket").is_ok());
  EXPECT_TRUE(store.bucket_exists("my-bucket"));
  EXPECT_FALSE(store.bucket_exists("other"));

  ASSERT_TRUE(store.put_object("my-bucket", "a/b/file.bin", to_bytes("abc")).is_ok());
  ASSERT_TRUE(store.put_object("my-bucket", "a/c.bin", to_bytes("xy")).is_ok());
  EXPECT_TRUE(store.object_exists("my-bucket", "a/b/file.bin"));

  auto data = store.get_object("my-bucket", "a/b/file.bin");
  ASSERT_TRUE(data.is_ok());
  EXPECT_EQ(data.value().size(), 3u);

  auto keys = store.list_objects("my-bucket", "a/");
  ASSERT_TRUE(keys.is_ok());
  EXPECT_EQ(keys.value(),
            (std::vector<std::string>{"a/b/file.bin", "a/c.bin"}));

  ASSERT_TRUE(store.delete_object("my-bucket", "a/c.bin").is_ok());
  EXPECT_FALSE(store.object_exists("my-bucket", "a/c.bin"));
  EXPECT_EQ(store.get_object("my-bucket", "a/c.bin").status().code(),
            StatusCode::kNotFound);
}

TEST(S3, BucketNameValidation) {
  EXPECT_TRUE(ObjectStore::validate_bucket_name("my-bucket-01").is_ok());
  EXPECT_FALSE(ObjectStore::validate_bucket_name("ab").is_ok());          // short
  EXPECT_FALSE(ObjectStore::validate_bucket_name("UPPER").is_ok());       // case
  EXPECT_FALSE(ObjectStore::validate_bucket_name("has space").is_ok());
  EXPECT_FALSE(ObjectStore::validate_bucket_name("-leading").is_ok());
  EXPECT_FALSE(ObjectStore::validate_bucket_name(std::string(64, 'a')).is_ok());
}

TEST(S3, KeyValidationBlocksTraversal) {
  ObjectStore store(fresh_root("s3keys"));
  ASSERT_TRUE(store.create_bucket("bkt").is_ok());
  EXPECT_FALSE(store.put_object("bkt", "../escape", to_bytes("x")).is_ok());
  EXPECT_FALSE(store.put_object("bkt", "a/../../b", to_bytes("x")).is_ok());
  EXPECT_FALSE(store.put_object("bkt", "/absolute", to_bytes("x")).is_ok());
  EXPECT_FALSE(store.put_object("bkt", "", to_bytes("x")).is_ok());
  EXPECT_FALSE(store.put_object("no-such-bucket", "k", to_bytes("x")).is_ok());
}

// ---- AFI lifecycle -----------------------------------------------------------

std::vector<std::byte> valid_xclbin_bytes() {
  const nn::Network model =
      condor::testing::make_tiny_net(condor::testing::TinyNetConfig{});
  condorflow::FrontendInput input;
  input.network_json_text = hw::to_json_text(hw::with_default_annotations(model));
  input.weight_file_bytes =
      nn::initialize_weights(model, 9).value().serialize();
  condorflow::FlowOptions options;
  return condorflow::Flow::run(input, options).value().xclbin_bytes;
}

TEST(Afi, LifecyclePendingToAvailable) {
  ObjectStore store(fresh_root("afi"));
  AfiService service(store, /*ingestion_polls=*/2);
  ASSERT_TRUE(store.create_bucket("designs").is_ok());
  ASSERT_TRUE(store.put_object("designs", "d.xclbin", valid_xclbin_bytes()).is_ok());

  auto created = service.create_fpga_image("tiny", "test image", "designs",
                                           "d.xclbin");
  ASSERT_TRUE(created.is_ok()) << created.status().to_string();
  EXPECT_EQ(created.value().state, AfiState::kPending);
  EXPECT_EQ(created.value().afi_id.substr(0, 4), "afi-");
  EXPECT_EQ(created.value().agfi_id.substr(0, 5), "agfi-");

  // Payload fetch is refused while pending.
  EXPECT_EQ(service.fetch_image_payload(created.value().afi_id).status().code(),
            StatusCode::kUnavailable);

  // Two describes later, the image is available (also via the agfi id).
  auto first = service.describe_fpga_image(created.value().agfi_id);
  ASSERT_TRUE(first.is_ok());
  EXPECT_EQ(first.value().state, AfiState::kPending);
  auto second = service.describe_fpga_image(created.value().afi_id);
  ASSERT_TRUE(second.is_ok());
  EXPECT_EQ(second.value().state, AfiState::kAvailable);

  auto payload = service.fetch_image_payload(created.value().agfi_id);
  ASSERT_TRUE(payload.is_ok());
  EXPECT_FALSE(payload.value().empty());
}

TEST(Afi, WaitUntilAvailablePolls) {
  ObjectStore store(fresh_root("afi_wait"));
  AfiService service(store, /*ingestion_polls=*/5);
  ASSERT_TRUE(store.create_bucket("designs").is_ok());
  ASSERT_TRUE(store.put_object("designs", "d.xclbin", valid_xclbin_bytes()).is_ok());
  auto created = service.create_fpga_image("tiny", "", "designs", "d.xclbin");
  ASSERT_TRUE(created.is_ok());
  auto available = service.wait_until_available(created.value().afi_id);
  ASSERT_TRUE(available.is_ok());
  EXPECT_EQ(available.value().state, AfiState::kAvailable);
}

TEST(Afi, GarbagePayloadFailsIngestion) {
  ObjectStore store(fresh_root("afi_bad"));
  AfiService service(store);
  ASSERT_TRUE(store.create_bucket("designs").is_ok());
  ASSERT_TRUE(store.put_object("designs", "junk.bin", to_bytes("not an xclbin"))
                  .is_ok());
  auto created = service.create_fpga_image("bad", "", "designs", "junk.bin");
  ASSERT_TRUE(created.is_ok());
  EXPECT_EQ(created.value().state, AfiState::kFailed);
  EXPECT_FALSE(service.wait_until_available(created.value().afi_id).is_ok());
}

TEST(Afi, MissingObjectRejectedAtCreate) {
  ObjectStore store(fresh_root("afi_missing"));
  AfiService service(store);
  ASSERT_TRUE(store.create_bucket("designs").is_ok());
  EXPECT_FALSE(
      service.create_fpga_image("x", "", "designs", "absent.xclbin").is_ok());
  EXPECT_FALSE(service.describe_fpga_image("afi-doesnotexist").is_ok());
}

TEST(Afi, ListImagesAndPersistence) {
  const std::string root = fresh_root("afi_list");
  std::string afi_id;
  {
    ObjectStore store(root);
    AfiService service(store, 0);
    ASSERT_TRUE(store.create_bucket("designs").is_ok());
    ASSERT_TRUE(store.put_object("designs", "d.xclbin", valid_xclbin_bytes()).is_ok());
    afi_id = service.create_fpga_image("tiny", "", "designs", "d.xclbin")
                 .value()
                 .afi_id;
  }
  // A fresh service over the same store sees the registered image (the
  // registry is persisted, like the real AFI catalog).
  ObjectStore store(root);
  AfiService service(store);
  auto images = service.list_images();
  ASSERT_TRUE(images.is_ok());
  ASSERT_EQ(images.value().size(), 1u);
  EXPECT_EQ(images.value()[0].afi_id, afi_id);
}

// ---- F1 instances -------------------------------------------------------------

TEST(F1, SlotCountsPerInstanceType) {
  EXPECT_EQ(slot_count(F1InstanceType::k2xlarge), 1u);
  EXPECT_EQ(slot_count(F1InstanceType::k4xlarge), 2u);
  EXPECT_EQ(slot_count(F1InstanceType::k16xlarge), 8u);
  EXPECT_EQ(to_string(F1InstanceType::k16xlarge), "f1.16xlarge");
}

TEST(F1, LoadDescribeClearSlot) {
  ObjectStore store(fresh_root("f1"));
  AfiService service(store, 0);  // immediately available
  ASSERT_TRUE(store.create_bucket("designs").is_ok());
  ASSERT_TRUE(store.put_object("designs", "d.xclbin", valid_xclbin_bytes()).is_ok());
  auto afi = service.create_fpga_image("tiny", "", "designs", "d.xclbin");
  ASSERT_TRUE(afi.is_ok());
  ASSERT_TRUE(service.wait_until_available(afi.value().afi_id).is_ok());

  F1Instance instance(F1InstanceType::k4xlarge, service);
  EXPECT_EQ(instance.slots(), 2u);
  EXPECT_NE(instance.describe_slot(0).value().find("cleared"), std::string::npos);

  ASSERT_TRUE(instance.load_afi(0, afi.value().agfi_id).is_ok());
  EXPECT_NE(instance.describe_slot(0).value().find(afi.value().agfi_id),
            std::string::npos);
  EXPECT_TRUE(instance.slot_kernel(0).is_ok());
  // Slot 1 is still empty.
  EXPECT_EQ(instance.slot_kernel(1).status().code(), StatusCode::kUnavailable);
  // Out-of-range slot.
  EXPECT_FALSE(instance.load_afi(5, afi.value().agfi_id).is_ok());

  ASSERT_TRUE(instance.clear_slot(0).is_ok());
  EXPECT_FALSE(instance.slot_kernel(0).is_ok());
}

TEST(F1, MultiSlotShardedRunIsBitExactWithCompleteCensus) {
  const nn::Network model =
      condor::testing::make_tiny_net(condor::testing::TinyNetConfig{});
  condorflow::FrontendInput input;
  input.network_json_text = hw::to_json_text(hw::with_default_annotations(model));
  input.weight_file_bytes = nn::initialize_weights(model, 9).value().serialize();
  auto flow = condorflow::Flow::run(input, condorflow::FlowOptions{});
  ASSERT_TRUE(flow.is_ok()) << flow.status().to_string();

  ObjectStore store(fresh_root("f1_sharded"));
  AfiService service(store, 0);
  ASSERT_TRUE(store.create_bucket("designs").is_ok());
  ASSERT_TRUE(
      store.put_object("designs", "d.xclbin", flow.value().xclbin_bytes).is_ok());
  auto afi = service.create_fpga_image("tiny", "", "designs", "d.xclbin");
  ASSERT_TRUE(afi.is_ok());
  ASSERT_TRUE(service.wait_until_available(afi.value().afi_id).is_ok());

  F1Instance instance(F1InstanceType::k4xlarge, service);
  ASSERT_TRUE(instance.load_afi(0, afi.value().agfi_id).is_ok());
  ASSERT_TRUE(instance.load_afi(1, afi.value().agfi_id).is_ok());

  const auto inputs = condor::testing::random_inputs(model, 7, 13);
  // Slots exist but have no weights bound yet.
  EXPECT_FALSE(instance.run_batch_sharded(inputs, 2).is_ok());
  for (std::size_t s = 0; s < 2; ++s) {
    ASSERT_TRUE(instance.slot_kernel(s)
                    .value()
                    ->load_weights(flow.value().weight_file_bytes)
                    .is_ok());
  }

  // Reference: the whole batch on slot 0 alone.
  auto expected = instance.slot_kernel(0).value()->run(inputs);
  ASSERT_TRUE(expected.is_ok()) << expected.status().to_string();

  MultiSlotRunStats stats;
  auto sharded = instance.run_batch_sharded(inputs, 2, &stats);
  ASSERT_TRUE(sharded.is_ok()) << sharded.status().to_string();
  ASSERT_EQ(sharded.value().size(), inputs.size());
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    for (std::size_t e = 0; e < sharded.value()[i].size(); ++e) {
      ASSERT_EQ(sharded.value()[i][e], expected.value()[i][e])
          << "image " << i << " element " << e;
    }
  }
  ASSERT_EQ(stats.images_per_slot.size(), 2u);
  EXPECT_EQ(stats.images_per_slot[0] + stats.images_per_slot[1], inputs.size());
  EXPECT_GT(stats.device_seconds, 0.0);
  EXPECT_GT(stats.wall_seconds, 0.0);
  EXPECT_GT(stats.images_per_second(inputs.size()), 0.0);

  // Slot-count bounds.
  EXPECT_FALSE(instance.run_batch_sharded(inputs, 0).is_ok());
  EXPECT_FALSE(instance.run_batch_sharded(inputs, 3).is_ok());
}

TEST(F1, MidBatchSlotFailureNamesTheSlotAndInstanceStaysUsable) {
  const nn::Network model =
      condor::testing::make_tiny_net(condor::testing::TinyNetConfig{});
  condorflow::FrontendInput input;
  input.network_json_text = hw::to_json_text(hw::with_default_annotations(model));
  input.weight_file_bytes = nn::initialize_weights(model, 9).value().serialize();
  auto flow = condorflow::Flow::run(input, condorflow::FlowOptions{});
  ASSERT_TRUE(flow.is_ok()) << flow.status().to_string();

  ObjectStore store(fresh_root("f1_slot_failure"));
  AfiService service(store, 0);
  ASSERT_TRUE(store.create_bucket("designs").is_ok());
  ASSERT_TRUE(
      store.put_object("designs", "d.xclbin", flow.value().xclbin_bytes).is_ok());
  auto afi = service.create_fpga_image("tiny", "", "designs", "d.xclbin");
  ASSERT_TRUE(afi.is_ok());
  ASSERT_TRUE(service.wait_until_available(afi.value().afi_id).is_ok());

  F1Instance instance(F1InstanceType::k4xlarge, service);
  for (std::size_t s = 0; s < 2; ++s) {
    ASSERT_TRUE(instance.load_afi(s, afi.value().agfi_id).is_ok());
    ASSERT_TRUE(instance.slot_kernel(s)
                    .value()
                    ->load_weights(flow.value().weight_file_bytes)
                    .is_ok());
  }

  // A malformed image mid-batch makes whichever slot pulls that chunk fail
  // shape validation; the error must name the slot (so the operator knows
  // which device to clear/reload) and the image range of the failing chunk.
  auto inputs = condor::testing::random_inputs(model, 7, 13);
  inputs[5] = Tensor(Shape{2, 2, 2});
  auto failed = instance.run_batch_sharded(inputs, 2);
  ASSERT_FALSE(failed.is_ok());
  EXPECT_EQ(failed.status().code(), StatusCode::kInvalidInput);
  EXPECT_NE(failed.status().message().find("slot "), std::string::npos)
      << failed.status().to_string();
  EXPECT_NE(failed.status().message().find("(images [5, 6))"),
            std::string::npos)
      << failed.status().to_string();

  // The instance is reusable: a clean batch after the failure is bit-exact
  // against a single-slot run.
  const auto good = condor::testing::random_inputs(model, 6, 17);
  auto expected = instance.slot_kernel(0).value()->run(good);
  ASSERT_TRUE(expected.is_ok()) << expected.status().to_string();
  auto recovered = instance.run_batch_sharded(good, 2);
  ASSERT_TRUE(recovered.is_ok()) << recovered.status().to_string();
  for (std::size_t i = 0; i < good.size(); ++i) {
    for (std::size_t e = 0; e < recovered.value()[i].size(); ++e) {
      ASSERT_EQ(recovered.value()[i][e], expected.value()[i][e])
          << "image " << i << " element " << e;
    }
  }
}

TEST(F1, PendingAfiCannotBeLoaded) {
  ObjectStore store(fresh_root("f1_pending"));
  AfiService service(store, /*ingestion_polls=*/10);
  ASSERT_TRUE(store.create_bucket("designs").is_ok());
  ASSERT_TRUE(store.put_object("designs", "d.xclbin", valid_xclbin_bytes()).is_ok());
  auto afi = service.create_fpga_image("tiny", "", "designs", "d.xclbin");
  ASSERT_TRUE(afi.is_ok());
  F1Instance instance(F1InstanceType::k2xlarge, service);
  EXPECT_EQ(instance.load_afi(0, afi.value().afi_id).code(),
            StatusCode::kUnavailable);
}

}  // namespace
}  // namespace condor::cloud

// Cooperative-scheduler regression suite: the readiness-driven scheduler
// (the only scheduler since the threaded KPN's retirement) must produce
// byte-identical outputs at ANY worker count — including fully sequential
// execution, which a thread-per-module design could never run — and must
// never wedge (each run executes under a watchdog that fails the test
// instead of hanging CI).
//
// Sweep: TC1 + LeNet x {float32, fixed16, fixed8} x parallel_out {1, 2, 4}
// x cooperative workers {1, 2, modules/2}, all compared against the
// single-worker run of the same plan and inputs.
#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <string>
#include <vector>

#include "dataflow/executor.hpp"
#include "dataflow/graph.hpp"
#include "hw/accel_plan.hpp"
#include "nn/models.hpp"
#include "test_util.hpp"

namespace condor {
namespace {

/// Per-run watchdog: a wedged scheduler must fail the test, not hang it.
constexpr std::chrono::seconds kRunDeadline{120};

struct Fixture {
  std::shared_ptr<const hw::AcceleratorPlan> plan;
  std::shared_ptr<const nn::WeightStore> weights;
  std::vector<Tensor> inputs;
};

Fixture make_fixture(const nn::Network& network, nn::DataType data_type,
                     std::size_t parallel_out, std::size_t batch,
                     std::uint64_t seed) {
  Fixture fixture;
  auto weights = nn::initialize_weights(network, seed);
  EXPECT_TRUE(weights.is_ok()) << weights.status().to_string();
  hw::HwNetwork hw_net = hw::with_default_annotations(network);
  hw_net.hw.data_type = data_type;
  for (std::size_t i = 1; i < hw_net.hw.layers.size(); ++i) {
    hw_net.hw.layers[i].parallel_out = parallel_out;
  }
  auto plan = hw::plan_accelerator(hw_net);
  EXPECT_TRUE(plan.is_ok()) << plan.status().to_string();
  fixture.plan =
      std::make_shared<const hw::AcceleratorPlan>(std::move(plan).value());
  fixture.weights =
      std::make_shared<const nn::WeightStore>(std::move(weights).value());
  fixture.inputs = testing::random_inputs(network, batch, seed + 1);
  return fixture;
}

/// Runs one batch with the given cooperative worker target, guarded by the
/// watchdog. Returns the outputs (empty on failure, with a test failure
/// already recorded).
std::vector<Tensor> run_guarded(const Fixture& fixture, std::size_t workers) {
  auto task = std::async(std::launch::async, [&]() -> Result<std::vector<Tensor>> {
    auto executor =
        dataflow::AcceleratorExecutor::create(fixture.plan, fixture.weights);
    CONDOR_RETURN_IF_ERROR(executor.status());
    executor.value().set_scheduler_workers(workers);
    return executor.value().run_batch(fixture.inputs);
  });
  if (task.wait_for(kRunDeadline) != std::future_status::ready) {
    ADD_FAILURE() << "scheduler wedged: run exceeded the watchdog deadline";
    // Deliberately abandon the future: joining a wedged run would hang the
    // whole suite. The process exits with the test failure.
    std::terminate();
  }
  auto outputs = task.get();
  EXPECT_TRUE(outputs.is_ok()) << outputs.status().to_string();
  if (!outputs.is_ok()) {
    return {};
  }
  return std::move(outputs).value();
}

void expect_equal_outputs(const std::vector<Tensor>& actual,
                          const std::vector<Tensor>& expected) {
  ASSERT_EQ(actual.size(), expected.size());
  for (std::size_t i = 0; i < actual.size(); ++i) {
    EXPECT_EQ(max_abs_diff(actual[i], expected[i]), 0.0F)
        << "image " << i << " diverges from the single-worker baseline";
  }
}

struct SweepParam {
  const char* model;
  nn::DataType data_type;
  std::size_t parallel_out;
};

class CoopScheduler : public ::testing::TestWithParam<SweepParam> {};

TEST_P(CoopScheduler, SelfConsistentAtEveryWorkerCount) {
  const SweepParam& param = GetParam();
  const nn::Network network = std::string(param.model) == "tc1"
                                  ? nn::make_tc1()
                                  : nn::make_lenet();
  const std::uint64_t seed =
      211 + param.parallel_out * 10 + static_cast<int>(param.data_type);
  const Fixture fixture =
      make_fixture(network, param.data_type, param.parallel_out, 2, seed);

  // Fully sequential execution is the baseline: one worker, deterministic
  // module interleaving, no concurrency anywhere.
  const std::vector<Tensor> baseline = run_guarded(fixture, 1);
  ASSERT_EQ(baseline.size(), fixture.inputs.size());

  std::size_t modules = 0;
  {
    auto executor =
        dataflow::AcceleratorExecutor::create(fixture.plan, fixture.weights);
    ASSERT_TRUE(executor.is_ok());
    auto probe = executor.value().run_batch(fixture.inputs);
    ASSERT_TRUE(probe.is_ok()) << probe.status().to_string();
    modules = executor.value().last_run_stats().modules;
  }
  ASSERT_GT(modules, 2u);

  for (const std::size_t workers :
       {std::size_t{2}, modules / 2, modules}) {
    SCOPED_TRACE("workers = " + std::to_string(workers));
    const std::vector<Tensor> outputs = run_guarded(fixture, workers);
    expect_equal_outputs(outputs, baseline);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CoopScheduler,
    ::testing::Values(
        SweepParam{"tc1", nn::DataType::kFloat32, 1},
        SweepParam{"tc1", nn::DataType::kFloat32, 2},
        SweepParam{"tc1", nn::DataType::kFloat32, 4},
        SweepParam{"tc1", nn::DataType::kFixed16, 1},
        SweepParam{"tc1", nn::DataType::kFixed16, 2},
        SweepParam{"tc1", nn::DataType::kFixed16, 4},
        SweepParam{"tc1", nn::DataType::kFixed8, 1},
        SweepParam{"tc1", nn::DataType::kFixed8, 2},
        SweepParam{"tc1", nn::DataType::kFixed8, 4},
        SweepParam{"lenet", nn::DataType::kFloat32, 1},
        SweepParam{"lenet", nn::DataType::kFloat32, 2},
        SweepParam{"lenet", nn::DataType::kFloat32, 4},
        SweepParam{"lenet", nn::DataType::kFixed16, 1},
        SweepParam{"lenet", nn::DataType::kFixed16, 2},
        SweepParam{"lenet", nn::DataType::kFixed16, 4},
        SweepParam{"lenet", nn::DataType::kFixed8, 1},
        SweepParam{"lenet", nn::DataType::kFixed8, 2},
        SweepParam{"lenet", nn::DataType::kFixed8, 4}),
    [](const ::testing::TestParamInfo<SweepParam>& info) {
      return std::string(info.param.model) + "_" +
             std::string(nn::to_string(info.param.data_type)) + "_po" +
             std::to_string(info.param.parallel_out);
    });

TEST(CoopScheduler, RunStatsReportSchedulerAndCounters) {
  const Fixture fixture =
      make_fixture(nn::make_tc1(), nn::DataType::kFloat32, 1, 2, 311);
  auto executor =
      dataflow::AcceleratorExecutor::create(fixture.plan, fixture.weights);
  ASSERT_TRUE(executor.is_ok());
  executor.value().set_scheduler_workers(2);
  auto outputs = executor.value().run_batch(fixture.inputs);
  ASSERT_TRUE(outputs.is_ok()) << outputs.status().to_string();

  const dataflow::RunStats& stats = executor.value().last_run_stats();
  EXPECT_EQ(stats.scheduler, "coop");
  EXPECT_GE(stats.workers, 1u);
  EXPECT_LE(stats.workers, 2u);
  ASSERT_EQ(stats.module_stats.size(), stats.modules);
  std::uint64_t total_fires = 0;
  std::uint64_t total_blocked = 0;
  for (const dataflow::ModuleRunStats& module : stats.module_stats) {
    EXPECT_FALSE(module.name.empty());
    // Every module fires at least once, and resumes = initial fire +
    // one per recorded suspension.
    EXPECT_GE(module.fires, 1u);
    EXPECT_EQ(module.fires, 1u + module.blocked);
    total_fires += module.fires;
    total_blocked += module.blocked;
  }
  EXPECT_GE(total_fires, stats.modules);

  // Blocked-transition counters surface per stream; their sum matches the
  // modules' blocked count (every suspension is a read or write block).
  std::uint64_t stream_blocks = 0;
  for (const dataflow::FifoStats& stream : stats.stream_stats) {
    stream_blocks += stream.blocked_reads + stream.blocked_writes;
  }
  EXPECT_EQ(stream_blocks, total_blocked);
}

TEST(CoopScheduler, ModuleErrorTearsDownInsteadOfWedging) {
  // A plan run against a wrong-shaped input cannot happen (run_batch
  // validates), but a module failure mid-run must still terminate every
  // peer. Drive the graph directly: a producer that errors after closing
  // leaves the consumer waiting — teardown must close all streams.
  const Fixture fixture =
      make_fixture(nn::make_tc1(), nn::DataType::kFloat32, 1, 1, 331);
  auto task = std::async(std::launch::async, [&]() -> Status {
    auto executor =
        dataflow::AcceleratorExecutor::create(fixture.plan, fixture.weights);
    CONDOR_RETURN_IF_ERROR(executor.status());
    executor.value().set_scheduler_workers(2);
    // Batch of one with doctored inputs: stream a batch but only reopen —
    // a second run without reopen poisons nothing; instead run twice and
    // expect both to succeed (regression: stale wakeup hooks from run 1
    // must not fire into run 2's records).
    auto first = executor.value().run_batch(fixture.inputs);
    CONDOR_RETURN_IF_ERROR(first.status());
    auto second = executor.value().run_batch(fixture.inputs);
    return second.status();
  });
  ASSERT_EQ(task.wait_for(kRunDeadline), std::future_status::ready)
      << "repeat run wedged";
  EXPECT_TRUE(task.get().is_ok());
}

}  // namespace
}  // namespace condor

// Tests for the discrete-event pipeline simulator and the accelerator-level
// timing wrapper (the machinery behind Figure 5).
#include <gtest/gtest.h>

#include "hw/dse.hpp"
#include "nn/models.hpp"
#include "sim/accel_sim.hpp"
#include "sim/event_queue.hpp"
#include "sim/pipeline.hpp"

namespace condor::sim {
namespace {

TEST(EventQueue, OrdersByTimeThenInsertion) {
  EventQueue queue;
  std::vector<int> order;
  queue.schedule(10, [&] { order.push_back(2); });
  queue.schedule(5, [&] { order.push_back(1); });
  queue.schedule(10, [&] { order.push_back(3); });  // same time, later insert
  const Cycle end = queue.run();
  EXPECT_EQ(end, 10u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, ScheduleInIsRelative) {
  EventQueue queue;
  Cycle seen = 0;
  queue.schedule(100, [&] {
    queue.schedule_in(50, [&] { seen = queue.now(); });
  });
  queue.run();
  EXPECT_EQ(seen, 150u);
}

TEST(Pipeline, SingleStageIsSequential) {
  auto run = simulate_pipeline({StageSpec{"s", 100, 1}}, 10);
  ASSERT_TRUE(run.is_ok());
  EXPECT_EQ(run.value().total_cycles, 1000u);
  EXPECT_EQ(run.value().image_completion.size(), 10u);
  EXPECT_EQ(run.value().stages[0].images, 10u);
  EXPECT_EQ(run.value().stages[0].busy_cycles, 1000u);
}

TEST(Pipeline, SteadyStateMatchesBottleneck) {
  // Three stages, bottleneck 100: total(B) -> fill + (B-1)*100.
  const std::vector<StageSpec> stages = {
      {"a", 30, 1}, {"b", 100, 1}, {"c", 20, 1}};
  auto small = simulate_pipeline(stages, 8);
  auto large = simulate_pipeline(stages, 108);
  ASSERT_TRUE(small.is_ok());
  ASSERT_TRUE(large.is_ok());
  const double marginal =
      static_cast<double>(large.value().total_cycles - small.value().total_cycles) /
      100.0;
  EXPECT_NEAR(marginal, 100.0, 1.0);
}

TEST(Pipeline, MeanPerImageDecreasesMonotonically) {
  const std::vector<StageSpec> stages = {
      {"a", 50, 1}, {"b", 80, 1}, {"c", 80, 1}, {"d", 40, 1}};
  double last = 1e300;
  for (const std::size_t batch : {1, 2, 4, 8, 16, 32, 64}) {
    auto run = simulate_pipeline(stages, batch);
    ASSERT_TRUE(run.is_ok());
    const double mean = run.value().mean_cycles_per_image();
    EXPECT_LE(mean, last) << "batch " << batch;
    last = mean;
  }
  // Plateau approaches the bottleneck service time (two tied bottleneck
  // stages in sequence add a small handoff overhead).
  EXPECT_NEAR(last, 80.0, 4.0);
}

TEST(Pipeline, SingleImageLatencyIsSumOfStages) {
  const std::vector<StageSpec> stages = {{"a", 10, 1}, {"b", 20, 1}, {"c", 30, 1}};
  auto run = simulate_pipeline(stages, 1);
  ASSERT_TRUE(run.is_ok());
  EXPECT_EQ(run.value().total_cycles, 60u);
}

TEST(Pipeline, FastStageBlocksBehindSlowDownstream) {
  const std::vector<StageSpec> stages = {{"fast", 1, 1}, {"slow", 100, 1}};
  auto run = simulate_pipeline(stages, 50);
  ASSERT_TRUE(run.is_ok());
  // The fast stage spends most of the run blocked, not busy.
  EXPECT_GT(run.value().stages[0].blocked_cycles,
            run.value().stages[0].busy_cycles * 10);
  // The slow stage is busy nearly the whole time.
  EXPECT_GT(run.value().stages[1].utilization(run.value().total_cycles), 0.95);
}

TEST(Pipeline, RejectsDegenerateInputs) {
  EXPECT_FALSE(simulate_pipeline({}, 4).is_ok());
  EXPECT_FALSE(simulate_pipeline({StageSpec{"s", 0, 1}}, 4).is_ok());
  EXPECT_FALSE(simulate_pipeline({StageSpec{"s", 1, 0}}, 4).is_ok());
  EXPECT_FALSE(simulate_pipeline({StageSpec{"s", 1, 1}}, 0).is_ok());
}

TEST(Pipeline, CompletionTimesAreNondecreasing) {
  const std::vector<StageSpec> stages = {{"a", 7, 1}, {"b", 13, 2}, {"c", 5, 1}};
  auto run = simulate_pipeline(stages, 20);
  ASSERT_TRUE(run.is_ok());
  for (std::size_t i = 1; i < run.value().image_completion.size(); ++i) {
    EXPECT_GE(run.value().image_completion[i], run.value().image_completion[i - 1]);
  }
}

// ---- Accelerator-level wrapper ---------------------------------------------

TEST(AccelSim, Figure5ShapeForTc1) {
  hw::HwNetwork net = hw::with_default_annotations(nn::make_tc1());
  auto point = hw::evaluate_design_point(net);
  ASSERT_TRUE(point.is_ok());
  const AcceleratorSim accel = build_accelerator_sim(point.value().performance);
  auto sweep = sweep_batches(accel, {1, 2, 4, 8, 16, 32, 64, 128, 256});
  ASSERT_TRUE(sweep.is_ok());
  // Monotonically decreasing mean time per image.
  for (std::size_t i = 1; i < sweep.value().size(); ++i) {
    EXPECT_LE(sweep.value()[i].mean_ms_per_image,
              sweep.value()[i - 1].mean_ms_per_image);
  }
  // Convergence: batch >= #layers is close to the plateau (paper Fig. 5).
  const double plateau = sweep.value().back().mean_ms_per_image;
  const double at_layers = sweep.value()[3].mean_ms_per_image;  // batch 8 > 7
  EXPECT_LT((at_layers - plateau) / plateau, 0.30);
}

TEST(AccelSim, SteadyStateMatchesAnalyticalGflops) {
  hw::HwNetwork net = hw::with_default_annotations(nn::make_lenet());
  auto point = hw::evaluate_design_point(net);
  ASSERT_TRUE(point.is_ok());
  const AcceleratorSim accel = build_accelerator_sim(point.value().performance);
  auto gflops = steady_state_gflops(accel, 512);
  ASSERT_TRUE(gflops.is_ok());
  // Event simulation and closed-form estimate agree within a few percent.
  EXPECT_NEAR(gflops.value(), point.value().performance.gflops(),
              point.value().performance.gflops() * 0.05);
}

}  // namespace
}  // namespace condor::sim

// Randomized property suite: generate random valid CNN topologies and
// check system-wide invariants on each —
//
//   * the dataflow engine matches the golden reference bit-for-bit,
//   * Caffe export -> import round-trips the topology and weights,
//   * the Condor JSON representation round-trips hardware annotations,
//   * planner invariants hold (filter counts, FIFO totals, edge chain),
//   * FIFO occupancy never exceeds the planned capacity during execution.
//
// Seeds are fixed, so failures reproduce deterministically.
#include <gtest/gtest.h>

#include <array>

#include "caffe/export.hpp"
#include "caffe/import.hpp"
#include "common/rng.hpp"
#include "dataflow/executor.hpp"
#include "hw/accel_plan.hpp"
#include "hw/hw_ir.hpp"
#include "nn/quantization.hpp"
#include "nn/reference.hpp"
#include "nn/weights.hpp"
#include "onnx/export.hpp"
#include "onnx/import.hpp"
#include "test_util.hpp"

namespace condor {
namespace {

/// Builds a random valid sequential CNN: 1-3 feature stages (conv with
/// random window/stride/pad/activation, optional pool), optionally a small
/// classifier head and softmax.
nn::Network random_network(Rng& rng) {
  nn::Network net("rand" + std::to_string(rng.bounded(1000000)));
  std::size_t channels = 1 + rng.bounded(3);
  std::size_t size = 10 + rng.bounded(12);  // 10..21

  nn::LayerSpec input;
  input.name = "data";
  input.kind = nn::LayerKind::kInput;
  input.input_channels = channels;
  input.input_height = size;
  input.input_width = size;
  net.add(input);

  const std::size_t stages = 1 + rng.bounded(3);
  for (std::size_t s = 0; s < stages; ++s) {
    nn::LayerSpec conv;
    conv.kind = nn::LayerKind::kConvolution;
    conv.name = "conv" + std::to_string(s);
    conv.num_output = 1 + rng.bounded(4);
    conv.kernel_h = conv.kernel_w = 1 + rng.bounded(4);  // 1..4
    conv.stride = 1 + rng.bounded(2);
    conv.pad = rng.bounded(2);
    conv.has_bias = rng.bounded(2) == 0;
    conv.activation = static_cast<nn::Activation>(rng.bounded(4));
    // Keep geometry valid.
    const std::size_t padded = size + 2 * conv.pad;
    if (padded < conv.kernel_h) {
      conv.kernel_h = conv.kernel_w = padded;
    }
    net.add(conv);
    size = (size + 2 * conv.pad - conv.kernel_h) / conv.stride + 1;
    channels = conv.num_output;

    if (size >= 2 && rng.bounded(2) == 0) {
      nn::LayerSpec pool;
      pool.kind = nn::LayerKind::kPooling;
      pool.name = "pool" + std::to_string(s);
      pool.kernel_h = pool.kernel_w = 2;
      pool.stride = 2;
      pool.pool_method =
          rng.bounded(2) == 0 ? nn::PoolMethod::kMax : nn::PoolMethod::kAverage;
      net.add(pool);
      size = (size - 2) / 2 + 1;
    }
    if (size < 4) {
      break;  // maps too small for another stage
    }
  }

  if (rng.bounded(2) == 0) {
    nn::LayerSpec fc;
    fc.kind = nn::LayerKind::kInnerProduct;
    fc.name = "fc0";
    fc.num_output = 2 + rng.bounded(8);
    fc.has_bias = rng.bounded(2) == 0;
    fc.activation = rng.bounded(2) == 0 ? nn::Activation::kReLU
                                        : nn::Activation::kNone;
    net.add(fc);
    if (rng.bounded(2) == 0) {
      nn::LayerSpec softmax;
      softmax.kind = nn::LayerKind::kSoftmax;
      softmax.name = "prob";
      net.add(softmax);
    }
  }
  return net;
}

/// Random hardware annotations: occasional parallelism and fusion.
hw::HwNetwork random_annotations(const nn::Network& net, Rng& rng) {
  hw::HwNetwork hw_net = hw::with_default_annotations(net);
  auto shapes = net.infer_shapes().value();
  int group = -1;
  for (std::size_t i = 1; i < net.layer_count(); ++i) {
    const nn::LayerSpec& layer = net.layers()[i];
    if (layer.is_feature_extraction()) {
      // Occasionally read multiple input maps concurrently (replicated
      // filter chains in the functional engine).
      if (rng.bounded(3) == 0 && shapes[i].input[0] > 1) {
        hw_net.hw.layers[i].parallel_in = 1 + rng.bounded(shapes[i].input[0]);
      }
      // Occasionally fuse this layer with the previous feature layer.
      if (group >= 0 && rng.bounded(3) == 0 &&
          net.layers()[i - 1].is_feature_extraction()) {
        hw_net.hw.layers[i].pe_group = group;
        hw_net.hw.layers[i - 1].pe_group = group;
      } else {
        ++group;
      }
    }
  }
  return hw_net.validate().is_ok() ? hw_net : hw::with_default_annotations(net);
}

class RandomNetwork : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomNetwork, DataflowMatchesReferenceBitExact) {
  Rng rng(GetParam());
  const nn::Network net = random_network(rng);
  ASSERT_TRUE(net.validate().is_ok()) << net.summary();

  auto weights = nn::initialize_weights(net, GetParam() * 3 + 1);
  ASSERT_TRUE(weights.is_ok());
  auto engine = nn::ReferenceEngine::create(net, weights.value());
  ASSERT_TRUE(engine.is_ok());

  const hw::HwNetwork hw_net = random_annotations(net, rng);
  auto plan = hw::plan_accelerator(hw_net);
  ASSERT_TRUE(plan.is_ok()) << plan.status().to_string() << "\n" << net.summary();
  auto executor =
      dataflow::AcceleratorExecutor::create(plan.value(), weights.value());
  ASSERT_TRUE(executor.is_ok());

  const std::size_t batch = 1 + rng.bounded(4);
  const auto inputs = testing::random_inputs(net, batch, GetParam() + 9);
  auto outputs = executor.value().run_batch(inputs);
  ASSERT_TRUE(outputs.is_ok()) << outputs.status().to_string() << "\n"
                               << net.summary();
  for (std::size_t i = 0; i < batch; ++i) {
    const Tensor expected = engine.value().forward(inputs[i]).value();
    ASSERT_EQ(max_abs_diff(outputs.value()[i], expected), 0.0F)
        << "seed " << GetParam() << " image " << i << "\n"
        << net.summary();
  }

  // FIFO occupancy never exceeded planned capacity (blocking semantics).
  for (const dataflow::FifoStats& stats :
       executor.value().last_run_stats().stream_stats) {
    EXPECT_LE(stats.max_occupancy, stats.capacity);
  }
}

TEST_P(RandomNetwork, CaffeRoundTripPreservesTopologyAndWeights) {
  Rng rng(GetParam() ^ 0xC0FFEE);
  const nn::Network net = random_network(rng);
  auto weights = nn::initialize_weights(net, GetParam() + 2);
  ASSERT_TRUE(weights.is_ok());

  auto prototxt = caffe::to_prototxt(net);
  auto caffemodel = caffe::to_caffemodel(net, weights.value());
  ASSERT_TRUE(prototxt.is_ok());
  ASSERT_TRUE(caffemodel.is_ok());
  auto model = caffe::load_caffe_model(prototxt.value(), caffemodel.value());
  ASSERT_TRUE(model.is_ok()) << model.status().to_string() << "\n"
                             << prototxt.value();

  // Same shapes, layer kinds and activations after the round trip.
  ASSERT_EQ(model.value().network.layer_count(), net.layer_count());
  auto original_shapes = net.infer_shapes().value();
  auto round_shapes = model.value().network.infer_shapes().value();
  for (std::size_t i = 0; i < net.layer_count(); ++i) {
    EXPECT_EQ(round_shapes[i].output, original_shapes[i].output) << i;
    EXPECT_EQ(model.value().network.layers()[i].kind, net.layers()[i].kind) << i;
    EXPECT_EQ(model.value().network.layers()[i].activation,
              net.layers()[i].activation)
        << i;
  }
  // Weights bit-exact.
  for (const auto& [name, params] : weights.value().all()) {
    const nn::LayerParameters* other = model.value().weights.find(name);
    ASSERT_NE(other, nullptr) << name;
    EXPECT_EQ(max_abs_diff(params.weights, other->weights), 0.0F) << name;
  }
  // And both produce identical inference results.
  auto engine_a = nn::ReferenceEngine::create(net, weights.value());
  auto engine_b =
      nn::ReferenceEngine::create(model.value().network, model.value().weights);
  ASSERT_TRUE(engine_a.is_ok());
  ASSERT_TRUE(engine_b.is_ok());
  const auto inputs = testing::random_inputs(net, 1, GetParam() + 4);
  EXPECT_EQ(max_abs_diff(engine_a.value().forward(inputs[0]).value(),
                         engine_b.value().forward(inputs[0]).value()),
            0.0F);
}

TEST_P(RandomNetwork, HwIrJsonRoundTripPreservesAnnotations) {
  Rng rng(GetParam() ^ 0xBEEF);
  const nn::Network net = random_network(rng);
  hw::HwNetwork hw_net = random_annotations(net, rng);
  auto shapes = net.infer_shapes().value();
  for (std::size_t i = 1; i < net.layer_count(); ++i) {
    if (net.layers()[i].is_feature_extraction() && rng.bounded(2) == 0) {
      hw_net.hw.layers[i].parallel_out =
          1 + rng.bounded(shapes[i].output[0]);
    }
  }
  if (!hw_net.validate().is_ok()) {
    GTEST_SKIP() << "random annotations invalid for this topology";
  }
  auto restored = hw::from_json_text(hw::to_json_text(hw_net));
  ASSERT_TRUE(restored.is_ok()) << restored.status().to_string();
  for (std::size_t i = 0; i < hw_net.hw.layers.size(); ++i) {
    EXPECT_EQ(restored.value().hw.layers[i].parallel_in,
              hw_net.hw.layers[i].parallel_in)
        << i;
    EXPECT_EQ(restored.value().hw.layers[i].parallel_out,
              hw_net.hw.layers[i].parallel_out)
        << i;
    EXPECT_EQ(restored.value().hw.layers[i].pe_group, hw_net.hw.layers[i].pe_group)
        << i;
  }
}

TEST_P(RandomNetwork, PlannerInvariants) {
  Rng rng(GetParam() ^ 0xFACade);
  const nn::Network net = random_network(rng);
  const hw::HwNetwork hw_net = random_annotations(net, rng);
  auto plan = hw::plan_accelerator(hw_net);
  ASSERT_TRUE(plan.is_ok()) << plan.status().to_string();

  // Every non-softmax compute layer is owned by exactly one PE.
  std::set<std::size_t> owned;
  for (const hw::PePlan& pe : plan.value().pes) {
    for (const std::size_t index : pe.layer_indices) {
      EXPECT_TRUE(owned.insert(index).second) << "layer owned twice";
    }
    if (pe.memory.has_value()) {
      // Filter count = window area; FIFO total = live span.
      EXPECT_EQ(pe.memory->filters.size(),
                pe.memory->window_h * pe.memory->window_w);
      EXPECT_EQ(pe.memory->buffered_elements(),
                (pe.memory->window_h - 1) * pe.memory->map_w +
                    pe.memory->window_w - 1);
    }
  }
  std::size_t expected_owned = 0;
  for (std::size_t i = 1; i < net.layer_count(); ++i) {
    expected_owned += net.layers()[i].kind != nn::LayerKind::kSoftmax ? 1 : 0;
  }
  EXPECT_EQ(owned.size(), expected_owned);

  // The edge list forms the datamover -> PEs -> datamover chain.
  ASSERT_EQ(plan.value().edges.size(), plan.value().pes.size() + 1);
  EXPECT_EQ(plan.value().edges.front().from_pe, hw::StreamEdge::kDatamover);
  for (std::size_t e = 1; e < plan.value().edges.size(); ++e) {
    EXPECT_EQ(plan.value().edges[e].from_pe, e - 1);
  }
  EXPECT_EQ(plan.value().edges.back().to_pe, hw::StreamEdge::kDatamover);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomNetwork,
                         ::testing::Range<std::uint64_t>(1, 41));

// ---------------------------------------------------------------------------
// Random DAG topologies (ISSUE 8): residual/route/upsample graphs, checked
// golden-vs-executor bit-exact across all three datapaths and round-tripped
// through both frontend formats.
// ---------------------------------------------------------------------------

/// Builds a random valid DAG: a trunk conv, then 1-2 join rounds (eltwise
/// residual with a 1x1/identity skip, or a two-branch channel concat),
/// optionally an upsample, then an optional pool/classifier tail. All
/// branch geometry is size-preserving (3x3 pad 1 / 1x1) so join shapes
/// always agree.
nn::Network random_dag_network(Rng& rng) {
  nn::Network net("dagrand" + std::to_string(rng.bounded(1000000)));
  std::size_t channels = 1 + rng.bounded(3);
  std::size_t size = 8 + rng.bounded(8);  // 8..15

  nn::LayerSpec input;
  input.name = "data";
  input.kind = nn::LayerKind::kInput;
  input.input_channels = channels;
  input.input_height = size;
  input.input_width = size;
  net.add(input);

  const auto random_activation = [&rng]() {
    return static_cast<nn::Activation>(rng.bounded(5));
  };
  const auto add_conv = [&](const std::string& name, std::size_t outputs,
                            std::size_t kernel, std::size_t pad,
                            const std::string& bottom) {
    nn::LayerSpec conv;
    conv.kind = nn::LayerKind::kConvolution;
    conv.name = name;
    conv.num_output = outputs;
    conv.kernel_h = conv.kernel_w = kernel;
    conv.stride = 1;
    conv.pad = pad;
    conv.has_bias = rng.bounded(2) == 0;
    conv.activation = random_activation();
    conv.inputs = {bottom};
    net.add(std::move(conv));
  };

  add_conv("trunk", 1 + rng.bounded(4), 3, 1, "data");
  std::string trunk = "trunk";
  channels = net.layers().back().num_output;

  const std::size_t rounds = 1 + rng.bounded(2);
  for (std::size_t r = 0; r < rounds; ++r) {
    const std::string tag = std::to_string(r);
    nn::LayerSpec join;
    if (rng.bounded(2) == 0) {
      // Residual: branch_a (3x3) + either an identity skip from the trunk
      // or a 1x1 projection branch.
      const bool identity_skip = rng.bounded(2) == 0;
      const std::size_t ca = identity_skip ? channels : 1 + rng.bounded(4);
      add_conv("res" + tag + "_a", ca, 3, 1, trunk);
      std::string second = trunk;
      if (!identity_skip) {
        add_conv("res" + tag + "_b", ca, 1, 0, trunk);
        second = "res" + tag + "_b";
      }
      join.kind = nn::LayerKind::kEltwiseAdd;
      join.name = "add" + tag;
      join.inputs = {"res" + tag + "_a", second};
      channels = ca;
    } else {
      // Route: two branches concatenated along channels.
      const std::size_t ca = 1 + rng.bounded(3);
      const std::size_t cb = 1 + rng.bounded(3);
      add_conv("cat" + tag + "_a", ca, 3, 1, trunk);
      add_conv("cat" + tag + "_b", cb, 1, 0, trunk);
      join.kind = nn::LayerKind::kConcat;
      join.name = "cat" + tag;
      join.inputs = {"cat" + tag + "_a", "cat" + tag + "_b"};
      channels = ca + cb;
    }
    join.activation = random_activation();
    net.add(std::move(join));
    trunk = net.layers().back().name;

    if (size <= 12 && rng.bounded(3) == 0) {
      nn::LayerSpec up;
      up.kind = nn::LayerKind::kUpsample;
      up.name = "up" + tag;
      up.stride = 2;
      up.activation = rng.bounded(2) == 0 ? nn::Activation::kNone
                                          : nn::Activation::kReLU;
      net.add(std::move(up));
      trunk = net.layers().back().name;
      size *= 2;
    }
  }

  if (rng.bounded(2) == 0) {
    nn::LayerSpec pool;
    pool.kind = nn::LayerKind::kPooling;
    pool.name = "pool";
    pool.kernel_h = pool.kernel_w = 2;
    pool.stride = 2;
    pool.pool_method =
        rng.bounded(2) == 0 ? nn::PoolMethod::kMax : nn::PoolMethod::kAverage;
    net.add(pool);
  }
  if (rng.bounded(2) == 0) {
    nn::LayerSpec fc;
    fc.kind = nn::LayerKind::kInnerProduct;
    fc.name = "fc";
    fc.num_output = 2 + rng.bounded(6);
    fc.has_bias = rng.bounded(2) == 0;
    net.add(fc);
    if (rng.bounded(2) == 0) {
      nn::LayerSpec softmax;
      softmax.kind = nn::LayerKind::kSoftmax;
      softmax.name = "prob";
      net.add(softmax);
    }
  }
  return net;
}

class RandomDagNetwork : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomDagNetwork, DataflowMatchesReferenceBitExactAllDatapaths) {
  Rng rng(GetParam() ^ 0xDA6DA6);
  const nn::Network net = random_dag_network(rng);
  ASSERT_TRUE(net.validate().is_ok()) << net.validate().to_string();

  auto weights = nn::initialize_weights(net, GetParam() * 5 + 1);
  ASSERT_TRUE(weights.is_ok());

  // The datapath cycles with the seed: the reference oracle is the
  // QuantizedEngine, which delegates to the golden float reference for
  // float32 and runs the identical integer arithmetic otherwise.
  const nn::DataType data_type =
      std::array{nn::DataType::kFloat32, nn::DataType::kFixed16,
                 nn::DataType::kFixed8}[GetParam() % 3];
  auto engine = nn::QuantizedEngine::create(net, weights.value(), data_type);
  ASSERT_TRUE(engine.is_ok()) << engine.status().to_string();

  hw::HwNetwork hw_net = random_annotations(net, rng);
  hw_net.hw.data_type = data_type;
  auto plan = hw::plan_accelerator(hw_net);
  ASSERT_TRUE(plan.is_ok()) << plan.status().to_string() << "\n" << net.summary();
  auto executor =
      dataflow::AcceleratorExecutor::create(plan.value(), weights.value());
  ASSERT_TRUE(executor.is_ok()) << executor.status().to_string();

  const std::size_t batch = 1 + rng.bounded(3);
  const auto inputs = testing::random_inputs(net, batch, GetParam() + 17);
  auto outputs = executor.value().run_batch(inputs);
  ASSERT_TRUE(outputs.is_ok()) << outputs.status().to_string() << "\n"
                               << net.summary();
  for (std::size_t i = 0; i < batch; ++i) {
    const Tensor expected = engine.value().forward(inputs[i]).value();
    ASSERT_EQ(max_abs_diff(outputs.value()[i], expected), 0.0F)
        << "seed " << GetParam() << " image " << i << " ("
        << nn::to_string(data_type) << ")\n"
        << net.summary();
  }
  for (const dataflow::FifoStats& stats :
       executor.value().last_run_stats().stream_stats) {
    EXPECT_LE(stats.max_occupancy, stats.capacity);
  }
}

TEST_P(RandomDagNetwork, CaffeRoundTripPreservesDagTopology) {
  Rng rng(GetParam() ^ 0xCAFED);
  const nn::Network net = random_dag_network(rng);
  auto weights = nn::initialize_weights(net, GetParam() + 23);
  ASSERT_TRUE(weights.is_ok());

  auto prototxt = caffe::to_prototxt(net);
  auto caffemodel = caffe::to_caffemodel(net, weights.value());
  ASSERT_TRUE(prototxt.is_ok()) << prototxt.status().to_string();
  ASSERT_TRUE(caffemodel.is_ok());
  auto model = caffe::load_caffe_model(prototxt.value(), caffemodel.value());
  ASSERT_TRUE(model.is_ok()) << model.status().to_string() << "\n"
                             << prototxt.value();

  ASSERT_EQ(model.value().network.layer_count(), net.layer_count());
  EXPECT_EQ(model.value().network.join_count(), net.join_count());
  for (std::size_t i = 0; i < net.layer_count(); ++i) {
    EXPECT_EQ(model.value().network.layers()[i].kind, net.layers()[i].kind) << i;
    EXPECT_EQ(model.value().network.layers()[i].activation,
              net.layers()[i].activation)
        << i;
  }
  auto engine_a = nn::ReferenceEngine::create(net, weights.value());
  auto engine_b =
      nn::ReferenceEngine::create(model.value().network, model.value().weights);
  ASSERT_TRUE(engine_a.is_ok());
  ASSERT_TRUE(engine_b.is_ok());
  const auto inputs = testing::random_inputs(net, 1, GetParam() + 29);
  EXPECT_EQ(max_abs_diff(engine_a.value().forward(inputs[0]).value(),
                         engine_b.value().forward(inputs[0]).value()),
            0.0F);
}

TEST_P(RandomDagNetwork, OnnxRoundTripPreservesDagTopology) {
  Rng rng(GetParam() ^ 0x00DD);
  const nn::Network net = random_dag_network(rng);
  auto weights = nn::initialize_weights(net, GetParam() + 31);
  ASSERT_TRUE(weights.is_ok());

  auto bytes = onnx::to_onnx(net, weights.value());
  ASSERT_TRUE(bytes.is_ok()) << bytes.status().to_string();
  auto model = onnx::load_onnx_model(bytes.value());
  ASSERT_TRUE(model.is_ok()) << model.status().to_string() << "\n"
                             << net.summary();

  EXPECT_EQ(model.value().network.join_count(), net.join_count());
  EXPECT_EQ(model.value().network.dag_depth().value(),
            net.dag_depth().value());
  auto engine_a = nn::ReferenceEngine::create(net, weights.value());
  auto engine_b =
      nn::ReferenceEngine::create(model.value().network, model.value().weights);
  ASSERT_TRUE(engine_a.is_ok());
  ASSERT_TRUE(engine_b.is_ok()) << engine_b.status().to_string();
  const auto inputs = testing::random_inputs(net, 1, GetParam() + 37);
  EXPECT_EQ(max_abs_diff(engine_a.value().forward(inputs[0]).value(),
                         engine_b.value().forward(inputs[0]).value()),
            0.0F);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomDagNetwork,
                         ::testing::Range<std::uint64_t>(1, 25));

}  // namespace
}  // namespace condor

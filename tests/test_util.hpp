// Shared helpers for the Condor test suite.
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "nn/network.hpp"
#include "nn/weights.hpp"
#include "tensor/tensor.hpp"

namespace condor::testing {

/// Uniform random tensor in [-1, 1).
inline Tensor random_tensor(const Shape& shape, Rng& rng) {
  Tensor t(shape);
  for (float& value : t.data()) {
    value = rng.uniform(-1.0F, 1.0F);
  }
  return t;
}

/// A batch of random inputs for `network`.
inline std::vector<Tensor> random_inputs(const nn::Network& network,
                                         std::size_t batch, std::uint64_t seed) {
  Rng rng(seed);
  const Shape shape = network.input_shape().value();
  std::vector<Tensor> inputs;
  inputs.reserve(batch);
  for (std::size_t i = 0; i < batch; ++i) {
    inputs.push_back(random_tensor(shape, rng));
  }
  return inputs;
}

/// Small single-path CNN with configurable geometry, used by the
/// parameterized dataflow-vs-reference property suites.
struct TinyNetConfig {
  std::size_t in_channels = 1;
  std::size_t in_size = 8;
  std::size_t conv_outputs = 3;
  std::size_t kernel = 3;
  std::size_t stride = 1;
  std::size_t pad = 0;
  nn::Activation activation = nn::Activation::kNone;
  bool with_pool = false;
  nn::PoolMethod pool_method = nn::PoolMethod::kMax;
  bool with_fc = false;
  std::size_t fc_outputs = 4;
  bool with_softmax = false;
};

inline nn::Network make_tiny_net(const TinyNetConfig& config) {
  nn::Network net("tiny");
  nn::LayerSpec input;
  input.name = "data";
  input.kind = nn::LayerKind::kInput;
  input.input_channels = config.in_channels;
  input.input_height = config.in_size;
  input.input_width = config.in_size;
  net.add(input);

  nn::LayerSpec conv;
  conv.name = "conv1";
  conv.kind = nn::LayerKind::kConvolution;
  conv.num_output = config.conv_outputs;
  conv.kernel_h = conv.kernel_w = config.kernel;
  conv.stride = config.stride;
  conv.pad = config.pad;
  conv.activation = config.activation;
  net.add(conv);

  if (config.with_pool) {
    nn::LayerSpec pool;
    pool.name = "pool1";
    pool.kind = nn::LayerKind::kPooling;
    pool.kernel_h = pool.kernel_w = 2;
    pool.stride = 2;
    pool.pool_method = config.pool_method;
    net.add(pool);
  }
  if (config.with_fc) {
    nn::LayerSpec fc;
    fc.name = "ip1";
    fc.kind = nn::LayerKind::kInnerProduct;
    fc.num_output = config.fc_outputs;
    net.add(fc);
  }
  if (config.with_softmax) {
    nn::LayerSpec softmax;
    softmax.name = "prob";
    softmax.kind = nn::LayerKind::kSoftmax;
    net.add(softmax);
  }
  return net;
}

}  // namespace condor::testing

// Tests for the element-granularity memory-pipeline simulator: the
// stall-free property of non-uniform FIFO sizing (paper §3.2 / DAC'14) and
// its failure modes.
#include <gtest/gtest.h>

#include "sim/element_sim.hpp"

namespace condor::sim {
namespace {

ElementSimConfig config_for(std::size_t map, std::size_t window,
                            std::size_t stride = 1) {
  ElementSimConfig config;
  config.map_h = config.map_w = map;
  config.window_h = config.window_w = window;
  config.stride = stride;
  return config;
}

TEST(ElementSim, PlannedCapacitiesAreStallFree) {
  for (const auto& [map, window, stride] :
       {std::tuple<std::size_t, std::size_t, std::size_t>{16, 3, 1},
        {28, 5, 1},
        {12, 2, 2},
        {9, 4, 1},
        {24, 2, 2},
        {10, 1, 1}}) {
    const ElementSimConfig config = config_for(map, window, stride);
    auto result = simulate_memory_pipeline(config);
    ASSERT_TRUE(result.is_ok()) << map << "/" << window;
    EXPECT_FALSE(result.value().deadlocked);
    EXPECT_TRUE(result.value().stall_free())
        << "map " << map << " window " << window << ": "
        << result.value().total_cycles << " cycles for "
        << result.value().elements_streamed << " elements";
    EXPECT_EQ(result.value().windows_fired, config.out_h() * config.out_w());
    // Throughput bound: one element per cycle plus a small drain margin.
    EXPECT_LE(result.value().total_cycles, map * map + 16);
    // Fill happens while streaming: roughly the live window span.
    EXPECT_LE(result.value().fill_cycles, (window - 1) * map + window + 8);
  }
}

TEST(ElementSim, DoubledCapacitiesChangeNothing) {
  ElementSimConfig config = config_for(20, 3);
  auto planned = simulate_memory_pipeline(config);
  ASSERT_TRUE(planned.is_ok());
  config.fifo_capacities = planned_capacities(config);
  for (std::size_t& capacity : config.fifo_capacities) {
    capacity *= 2;
  }
  auto doubled = simulate_memory_pipeline(config);
  ASSERT_TRUE(doubled.is_ok());
  EXPECT_EQ(doubled.value().total_cycles, planned.value().total_cycles);
  EXPECT_EQ(doubled.value().windows_fired, planned.value().windows_fired);
}

TEST(ElementSim, UndersizedRowGapDeadlocks) {
  ElementSimConfig config = config_for(28, 5);
  config.fifo_capacities = planned_capacities(config);
  bool reduced = false;
  for (std::size_t& capacity : config.fifo_capacities) {
    if (capacity > 1) {
      capacity /= 2;
      reduced = true;
    }
  }
  ASSERT_TRUE(reduced);
  auto result = simulate_memory_pipeline(config);
  ASSERT_TRUE(result.is_ok());
  EXPECT_TRUE(result.value().deadlocked);
  EXPECT_LT(result.value().windows_fired, config.out_h() * config.out_w());
}

TEST(ElementSim, SlowPeThrottlesButCompletesCorrectly) {
  // A PE needing several cycles per window (sequential output maps) is
  // compute-bound: more total cycles, but every window still fires.
  ElementSimConfig config = config_for(16, 3);
  config.pe_cycles_per_window = 4;
  auto result = simulate_memory_pipeline(config);
  ASSERT_TRUE(result.is_ok());
  EXPECT_FALSE(result.value().deadlocked);
  EXPECT_EQ(result.value().windows_fired, config.out_h() * config.out_w());
  // Compute-bound lower bound: windows * service.
  EXPECT_GE(result.value().total_cycles,
            result.value().windows_fired * 4);
  EXPECT_FALSE(result.value().stall_free());  // slower than the stream
}

TEST(ElementSim, PlannedCapacitiesMatchTheChainPlan) {
  const ElementSimConfig config = config_for(28, 5);
  const auto capacities = planned_capacities(config);
  ASSERT_EQ(capacities.size(), 24u);  // 25 filters -> 24 gaps
  std::size_t total = 0;
  for (const std::size_t capacity : capacities) {
    total += capacity;
  }
  EXPECT_EQ(total, (5 - 1) * 28 + 5 - 1);  // the live window span
}

TEST(ElementSim, RejectsInvalidGeometry) {
  EXPECT_FALSE(simulate_memory_pipeline(config_for(4, 6)).is_ok());
  ElementSimConfig zero_stride = config_for(8, 3);
  zero_stride.stride = 0;
  EXPECT_FALSE(simulate_memory_pipeline(zero_stride).is_ok());
  ElementSimConfig bad_caps = config_for(8, 3);
  bad_caps.fifo_capacities = {1, 2};  // needs 8 entries
  EXPECT_FALSE(simulate_memory_pipeline(bad_caps).is_ok());
  ElementSimConfig zero_service = config_for(8, 3);
  zero_service.pe_cycles_per_window = 0;
  EXPECT_FALSE(simulate_memory_pipeline(zero_service).is_ok());
}

TEST(ElementSim, FillLatencyTracksWindowSpan) {
  // Larger windows need proportionally longer fills.
  auto small = simulate_memory_pipeline(config_for(24, 2));
  auto large = simulate_memory_pipeline(config_for(24, 7));
  ASSERT_TRUE(small.is_ok());
  ASSERT_TRUE(large.is_ok());
  EXPECT_GT(large.value().fill_cycles, small.value().fill_cycles * 3);
}

}  // namespace
}  // namespace condor::sim

// Tests for the `condor` command-line driver.
#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>

#include "caffe/export.hpp"
#include "cli/cli.hpp"
#include "common/byte_io.hpp"
#include "common/logging.hpp"
#include "hw/hw_ir.hpp"
#include "nn/models.hpp"
#include "nn/weights.hpp"
#include "onnx/export.hpp"

namespace condor::cli {
namespace {

struct CliRun {
  int exit_code = 0;
  std::string out;
  std::string err;
};

CliRun run(const std::vector<std::string>& args) {
  log::set_level(log::Level::kError);
  std::ostringstream out;
  std::ostringstream err;
  CliRun result;
  result.exit_code = run_cli(args, out, err);
  result.out = out.str();
  result.err = err.str();
  return result;
}

std::string temp_dir(const char* name) {
  const std::string dir = ::testing::TempDir() + "/condor_cli_" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

TEST(Cli, NoArgsPrintsUsage) {
  const CliRun result = run({});
  EXPECT_EQ(result.exit_code, 2);
  EXPECT_NE(result.err.find("usage:"), std::string::npos);
}

TEST(Cli, UnknownCommandFails) {
  const CliRun result = run({"frobnicate"});
  EXPECT_EQ(result.exit_code, 2);
  EXPECT_NE(result.err.find("unknown command"), std::string::npos);
}

TEST(Cli, BoardsListsDatabase) {
  const CliRun result = run({"boards"});
  EXPECT_EQ(result.exit_code, 0);
  EXPECT_NE(result.out.find("aws-f1"), std::string::npos);
  EXPECT_NE(result.out.find("zedboard"), std::string::npos);
}

TEST(Cli, SummaryShowsModel) {
  const CliRun result = run({"summary", "--model", "lenet"});
  EXPECT_EQ(result.exit_code, 0);
  EXPECT_NE(result.out.find("conv1"), std::string::npos);
  EXPECT_NE(result.out.find("431080"), std::string::npos);  // parameter count
  EXPECT_EQ(run({"summary", "--model", "alexnet"}).exit_code, 1);
  EXPECT_EQ(run({"summary"}).exit_code, 2);
}

TEST(Cli, SummaryShowsDagModel) {
  const CliRun result = run({"summary", "--model", "tiny-resnet"});
  EXPECT_EQ(result.exit_code, 0);
  EXPECT_NE(result.out.find("b1add"), std::string::npos);
  EXPECT_NE(result.out.find("<- stem,b1c2"), std::string::npos);
}

TEST(Cli, BuildFromCaffeFilesOnPremise) {
  const std::string dir = temp_dir("build_caffe");
  const nn::Network model = nn::make_tc1();
  auto weights = nn::initialize_weights(model, 1).value();
  ASSERT_TRUE(caffe::write_caffe_fixture(model, weights, dir + "/tc1").is_ok());

  const CliRun result =
      run({"build", "--prototxt", dir + "/tc1.prototxt", "--caffemodel",
           dir + "/tc1.caffemodel", "--board", "aws-f1", "--out",
           dir + "/artifacts"});
  EXPECT_EQ(result.exit_code, 0) << result.err;
  EXPECT_NE(result.out.find("GFLOPS/W"), std::string::npos);
  EXPECT_NE(result.out.find("synthesis report"), std::string::npos);
  EXPECT_TRUE(std::filesystem::exists(dir + "/artifacts/accelerator.xclbin"));
}

TEST(Cli, BuildFromOnnxAndRun) {
  const std::string dir = temp_dir("build_onnx");
  const nn::Network model = nn::make_tc1();
  auto weights = nn::initialize_weights(model, 2).value();
  auto onnx_bytes = onnx::to_onnx(model, weights).value();
  ASSERT_TRUE(write_file(dir + "/tc1.onnx", onnx_bytes).is_ok());

  const CliRun build = run({"build", "--onnx", dir + "/tc1.onnx", "--out",
                            dir + "/artifacts"});
  EXPECT_EQ(build.exit_code, 0) << build.err;

  const CliRun exec =
      run({"run", "--xclbin", dir + "/artifacts/accelerator.xclbin",
           "--weights", dir + "/artifacts/weights.bin", "--batch", "4"});
  EXPECT_EQ(exec.exit_code, 0) << exec.err;
  EXPECT_NE(exec.out.find("4 images"), std::string::npos);
  EXPECT_NE(exec.out.find("MHz"), std::string::npos);

  // Multi-instance execution shards the batch across replicas and reports
  // the per-instance census.
  const CliRun sharded =
      run({"run", "--xclbin", dir + "/artifacts/accelerator.xclbin",
           "--weights", dir + "/artifacts/weights.bin", "--batch", "6",
           "--instances", "2"});
  EXPECT_EQ(sharded.exit_code, 0) << sharded.err;
  EXPECT_NE(sharded.out.find("6 images"), std::string::npos);
  EXPECT_NE(sharded.out.find("2 instances"), std::string::npos);
  EXPECT_NE(sharded.out.find("images per instance"), std::string::npos);
  EXPECT_EQ(run({"run", "--xclbin", dir + "/artifacts/accelerator.xclbin",
                 "--weights", dir + "/artifacts/weights.bin", "--instances",
                 "0"})
                .exit_code,
            2);
}

TEST(Cli, BuildCloudCreatesAfiAndDescribeFindsIt) {
  const std::string dir = temp_dir("build_cloud");
  const nn::Network model = nn::make_tc1();
  auto weights = nn::initialize_weights(model, 3).value();
  ASSERT_TRUE(write_text_file(dir + "/net.json",
                              hw::to_json_text(hw::with_default_annotations(model)))
                  .is_ok());
  ASSERT_TRUE(weights.save(dir + "/w.bin").is_ok());

  const CliRun build =
      run({"build", "--network", dir + "/net.json", "--weights", dir + "/w.bin",
           "--deploy", "cloud", "--bucket", "cli-bucket", "--aws-root",
           dir + "/aws"});
  EXPECT_EQ(build.exit_code, 0) << build.err;
  const std::size_t pos = build.out.find("AFI: afi-");
  ASSERT_NE(pos, std::string::npos) << build.out;
  const std::string afi_id = build.out.substr(pos + 5, 21);

  const CliRun describe =
      run({"describe-afi", "--id", afi_id, "--aws-root", dir + "/aws"});
  EXPECT_EQ(describe.exit_code, 0) << describe.err;
  EXPECT_NE(describe.out.find(afi_id), std::string::npos);
  EXPECT_NE(describe.out.find("cli-bucket"), std::string::npos);
}

TEST(Cli, ValidateReportsBitExactness) {
  const CliRun result = run({"validate", "--model", "tc1", "--batch", "2"});
  EXPECT_EQ(result.exit_code, 0) << result.err;
  EXPECT_NE(result.out.find("bit-exact PASS"), std::string::npos);
  EXPECT_EQ(run({"validate"}).exit_code, 2);
  EXPECT_EQ(run({"validate", "--model", "nope"}).exit_code, 1);
}

TEST(Cli, ValidateFixedDataTypesBitExact) {
  for (const char* type : {"fixed16", "fixed8"}) {
    SCOPED_TRACE(type);
    const CliRun result = run(
        {"validate", "--model", "tc1", "--batch", "2", "--data-type", type});
    EXPECT_EQ(result.exit_code, 0) << result.err;
    EXPECT_NE(result.out.find("bit-exact PASS"), std::string::npos);
    EXPECT_NE(result.out.find(type), std::string::npos)
        << "report should name the datapath";
    EXPECT_NE(result.out.find("quantized reference"), std::string::npos);
  }
  // float32 is the explicit default and still validates against the golden
  // reference; unknown names are a usage error.
  const CliRun f32 = run(
      {"validate", "--model", "tc1", "--batch", "1", "--data-type", "float32"});
  EXPECT_EQ(f32.exit_code, 0) << f32.err;
  EXPECT_NE(f32.out.find("golden reference"), std::string::npos);
  EXPECT_EQ(run({"validate", "--model", "tc1", "--data-type", "fixed4"})
                .exit_code,
            2);
}

TEST(Cli, ValidatePrintsTopologySummary) {
  // Linear chains report zero joins; DAG models report their join count
  // and the depth of the longest producer->consumer path.
  const CliRun linear = run({"validate", "--model", "tc1", "--batch", "1"});
  EXPECT_EQ(linear.exit_code, 0) << linear.err;
  EXPECT_NE(linear.out.find("topology:"), std::string::npos) << linear.out;
  EXPECT_NE(linear.out.find("0 joins"), std::string::npos) << linear.out;

  const CliRun dag = run({"validate", "--model", "tiny_resnet", "--batch", "2",
                          "--data-type", "fixed16"});
  EXPECT_EQ(dag.exit_code, 0) << dag.err;
  EXPECT_NE(dag.out.find("bit-exact PASS"), std::string::npos) << dag.out;
  EXPECT_NE(dag.out.find("3 joins"), std::string::npos) << dag.out;
  EXPECT_NE(dag.out.find("DAG depth"), std::string::npos) << dag.out;
}

TEST(Cli, ValidateFixedLeNet) {
  const CliRun result = run(
      {"validate", "--model", "lenet", "--batch", "1", "--data-type", "fixed16"});
  EXPECT_EQ(result.exit_code, 0) << result.err;
  EXPECT_NE(result.out.find("bit-exact PASS"), std::string::npos);
}

TEST(Cli, ValidateMultiInstanceStaysBitExact) {
  // The sharded pool against the same oracle — float and fixed datapaths,
  // with a batch that does not divide evenly across the instances.
  for (const char* type : {"float32", "fixed16"}) {
    SCOPED_TRACE(type);
    const CliRun result =
        run({"validate", "--model", "tc1", "--batch", "5", "--instances", "2",
             "--data-type", type});
    EXPECT_EQ(result.exit_code, 0) << result.err;
    EXPECT_NE(result.out.find("bit-exact PASS"), std::string::npos);
    EXPECT_NE(result.out.find("instances=2"), std::string::npos);
  }
  EXPECT_EQ(run({"validate", "--model", "tc1", "--instances", "0"}).exit_code,
            2);
}

TEST(Cli, Fig5PrintsBatchSweep) {
  const CliRun result = run({"fig5", "--model", "tc1"});
  EXPECT_EQ(result.exit_code, 0) << result.err;
  EXPECT_NE(result.out.find("mean ms/image"), std::string::npos);
  EXPECT_NE(result.out.find("256"), std::string::npos);
  EXPECT_EQ(run({"fig5"}).exit_code, 2);
}

TEST(Cli, DsePrintsTrajectory) {
  const CliRun result = run({"dse", "--model", "tc1", "--features"});
  EXPECT_EQ(result.exit_code, 0) << result.err;
  EXPECT_NE(result.out.find("best:"), std::string::npos);
  EXPECT_NE(result.out.find("GFLOPS"), std::string::npos);
}

TEST(Cli, BuildErrorsAreReported) {
  // Missing files.
  EXPECT_EQ(run({"build", "--onnx", "/nonexistent.onnx"}).exit_code, 1);
  // Missing input source.
  EXPECT_EQ(run({"build"}).exit_code, 2);
  // Caffe source with only one file.
  EXPECT_EQ(run({"build", "--prototxt", "/x.prototxt"}).exit_code, 2);
  // Bad deploy mode.
  const std::string dir = temp_dir("build_err");
  const nn::Network model = nn::make_tc1();
  auto weights = nn::initialize_weights(model, 4).value();
  ASSERT_TRUE(write_text_file(dir + "/net.json",
                              hw::to_json_text(hw::with_default_annotations(model)))
                  .is_ok());
  ASSERT_TRUE(weights.save(dir + "/w.bin").is_ok());
  EXPECT_EQ(run({"build", "--network", dir + "/net.json", "--weights",
                 dir + "/w.bin", "--deploy", "moon"})
                .exit_code,
            2);
}

TEST(Cli, RunRequiresArguments) {
  EXPECT_EQ(run({"run"}).exit_code, 2);
  EXPECT_EQ(run({"run", "--xclbin", "/missing", "--weights", "/missing"})
                .exit_code,
            1);
  EXPECT_EQ(run({"describe-afi"}).exit_code, 2);
}

}  // namespace
}  // namespace condor::cli

// Tests for the end-to-end automation flow (paper §3.3) and the
// deployment reporting.
#include <gtest/gtest.h>

#include <filesystem>

#include "caffe/export.hpp"
#include "condor/flow.hpp"
#include "condor/host_codegen.hpp"
#include "condor/power_model.hpp"
#include "common/byte_io.hpp"
#include "condor/report.hpp"
#include "nn/models.hpp"
#include "nn/weights.hpp"
#include "test_util.hpp"

namespace condor::condorflow {
namespace {

FrontendInput caffe_input(const nn::Network& model, std::uint64_t seed) {
  FrontendInput input;
  auto weights = nn::initialize_weights(model, seed).value();
  input.prototxt_text = caffe::to_prototxt(model).value();
  input.caffemodel_bytes = caffe::to_caffemodel(model, weights).value();
  return input;
}

FrontendInput condor_input(const nn::Network& model, std::uint64_t seed) {
  FrontendInput input;
  input.network_json_text = hw::to_json_text(hw::with_default_annotations(model));
  input.weight_file_bytes = nn::initialize_weights(model, seed).value().serialize();
  return input;
}

TEST(AnalyzeInput, AcceptsExactlyOneSource) {
  const nn::Network model = nn::make_tc1();
  EXPECT_TRUE(analyze_input(caffe_input(model, 1)).is_ok());
  EXPECT_TRUE(analyze_input(condor_input(model, 1)).is_ok());
  // Neither source.
  EXPECT_FALSE(analyze_input(FrontendInput{}).is_ok());
  // Both sources.
  FrontendInput both = caffe_input(model, 1);
  both.network_json_text = "{}";
  EXPECT_FALSE(analyze_input(both).is_ok());
}

TEST(AnalyzeInput, CaffePathAppliesRequestedBoard) {
  FrontendInput input = caffe_input(nn::make_tc1(), 2);
  input.board_id = "zc706";
  input.target_frequency_mhz = 120.0;
  auto analyzed = analyze_input(input);
  ASSERT_TRUE(analyzed.is_ok());
  EXPECT_EQ(analyzed.value().first.hw.board_id, "zc706");
  EXPECT_DOUBLE_EQ(analyzed.value().first.hw.target_frequency_mhz, 120.0);
}

TEST(Flow, OnPremiseProducesAllArtifacts) {
  FlowOptions options;
  auto result = Flow::run(caffe_input(nn::make_tc1(), 3), options);
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  const FlowResult& flow = result.value();

  EXPECT_EQ(flow.kernel_name, "tc1_top");
  EXPECT_FALSE(flow.xclbin_bytes.empty());
  EXPECT_FALSE(flow.weight_file_bytes.empty());
  EXPECT_FALSE(flow.afi.has_value());

  // Container sections.
  for (const char* section : {"network.json", "kernel.xml", "synth.rpt",
                              "meta.json", "src/tc1_top.cpp"}) {
    EXPECT_NE(flow.xclbin.find(section), nullptr) << section;
  }
  // One source per module (top + PEs + filters).
  std::size_t filter_count = 0;
  for (const hw::PePlan& pe : flow.plan.pes) {
    if (pe.memory.has_value()) {
      filter_count += pe.memory->filters.size();
    }
  }
  EXPECT_EQ(flow.sources.size(), 1 + flow.plan.pes.size() + filter_count);
  // Host code references the kernel and the host API.
  EXPECT_NE(flow.host_code.find("tc1_top"), std::string::npos);
  EXPECT_NE(flow.host_code.find("runtime/opencl_like.hpp"), std::string::npos);
}

TEST(Flow, CondorJsonPathHonorsAnnotations) {
  hw::HwNetwork annotated = hw::with_default_annotations(nn::make_tc1());
  annotated.hw.layers[1].parallel_out = 2;
  FrontendInput input;
  input.network_json_text = hw::to_json_text(annotated);
  input.weight_file_bytes =
      nn::initialize_weights(nn::make_tc1(), 4).value().serialize();
  auto result = Flow::run(input, FlowOptions{});
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  EXPECT_EQ(result.value().network.hw.layers[1].parallel_out, 2u);
  EXPECT_EQ(result.value().plan.pes[0].parallel_out, 2u);
}

TEST(Flow, AutomatedDseImprovesConfiguration) {
  FrontendInput input = condor_input(nn::make_tc1().feature_extraction_prefix(), 5);
  FlowOptions plain;
  FlowOptions with_dse;
  with_dse.run_dse = true;
  auto base = Flow::run(input, plain);
  auto tuned = Flow::run(input, with_dse);
  ASSERT_TRUE(base.is_ok());
  ASSERT_TRUE(tuned.is_ok());
  auto base_report = make_deployment_report(base.value());
  auto tuned_report = make_deployment_report(tuned.value());
  ASSERT_TRUE(base_report.is_ok());
  ASSERT_TRUE(tuned_report.is_ok());
  EXPECT_GT(tuned_report.value().gflops, base_report.value().gflops);
}

TEST(Flow, OutputDirReceivesArtifacts) {
  const std::string dir = ::testing::TempDir() + "/condor_flow_artifacts";
  std::filesystem::remove_all(dir);
  FlowOptions options;
  options.output_dir = dir;
  auto result = Flow::run(condor_input(nn::make_tc1(), 6), options);
  ASSERT_TRUE(result.is_ok());
  for (const char* file :
       {"accelerator.xclbin", "weights.bin", "host.cpp", "network.json",
        "synthesis.rpt"}) {
    EXPECT_TRUE(std::filesystem::exists(dir + "/" + file)) << file;
  }
  EXPECT_TRUE(std::filesystem::is_directory(dir + "/hls_src"));
}

TEST(Flow, CloudRequiresEnvironment) {
  FlowOptions options;
  options.deployment = Deployment::kCloud;
  auto result = Flow::run(condor_input(nn::make_tc1(), 7), options);
  EXPECT_FALSE(result.is_ok());
  EXPECT_NE(result.status().message().find("FPGA Developer AMI"),
            std::string::npos);
}

TEST(Flow, CloudCreatesAfi) {
  const std::string root = ::testing::TempDir() + "/condor_flow_cloud";
  std::filesystem::remove_all(root);
  cloud::ObjectStore store(root);
  cloud::AfiService service(store, 1);
  FlowOptions options;
  options.deployment = Deployment::kCloud;
  options.s3_bucket = "flow-test-bucket";
  auto result = Flow::run(condor_input(nn::make_tc1(), 8), options, &store, &service);
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  ASSERT_TRUE(result.value().afi.has_value());
  EXPECT_TRUE(store.object_exists("flow-test-bucket", "tc1/accelerator.xclbin"));
  auto available = service.wait_until_available(result.value().afi->afi_id);
  EXPECT_TRUE(available.is_ok());
}

TEST(Flow, UnsynthesizableNetworkFailsCleanly) {
  auto result = Flow::run(condor_input(nn::make_vgg16(), 9), FlowOptions{});
  ASSERT_FALSE(result.is_ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnsynthesizable);
}

TEST(PowerModel, StaticPlusDynamic) {
  const hw::BoardSpec& board = hw::aws_f1_board();
  const hw::Resources none{};
  EXPECT_DOUBLE_EQ(estimate_power_w(board, none, 100.0), board.static_power_w);
  const hw::Resources some{100'000, 150'000, 300, 400};
  const double p100 = estimate_power_w(board, some, 100.0);
  const double p200 = estimate_power_w(board, some, 200.0);
  EXPECT_GT(p100, board.static_power_w);
  // Dynamic power scales linearly with frequency.
  EXPECT_NEAR(p200 - board.static_power_w, 2.0 * (p100 - board.static_power_w),
              1e-9);
}

TEST(DeploymentReport, SaneRanges) {
  auto result = Flow::run(caffe_input(nn::make_lenet(), 10), FlowOptions{});
  ASSERT_TRUE(result.is_ok());
  auto report = make_deployment_report(result.value());
  ASSERT_TRUE(report.is_ok()) << report.status().to_string();
  EXPECT_GT(report.value().lut_pct, 0.0);
  EXPECT_LT(report.value().lut_pct, 100.0);
  EXPECT_GT(report.value().bram_pct, 10.0);  // LeNet's on-chip FC weights
  EXPECT_DOUBLE_EQ(report.value().achieved_mhz, 180.0);
  EXPECT_GT(report.value().gflops, 0.0);
  EXPECT_GT(report.value().power_w, 0.0);
  EXPECT_NEAR(report.value().gflops_per_w,
              report.value().gflops / report.value().power_w, 1e-9);
  const std::string table = format_deployment_table({report.value()});
  EXPECT_NE(table.find("GFLOPS/W"), std::string::npos);
  EXPECT_NE(table.find("lenet"), std::string::npos);
}

TEST(HostCodegen, CheckedInGeneratedHostCodeIsCurrent) {
  // examples/generated_host_lenet.cpp is the committed output of the
  // step-7 generator and is compiled by the build; this equality proves
  // that what the generator emits today is exactly that compilable file.
  const hw::HwNetwork net = hw::with_default_annotations(nn::make_lenet());
  const std::string generated = generate_host_code(net, "lenet_top");
  auto checked_in = read_text_file(std::string(CONDOR_SOURCE_DIR) +
                                   "/examples/generated_host_lenet.cpp");
  ASSERT_TRUE(checked_in.is_ok()) << checked_in.status().to_string();
  EXPECT_EQ(generated, checked_in.value())
      << "host codegen changed; regenerate examples/generated_host_lenet.cpp";
}

TEST(HostCodegen, EmitsCompleteProgram) {
  const hw::HwNetwork net = hw::with_default_annotations(nn::make_lenet());
  const std::string code = generate_host_code(net, "lenet_top");
  EXPECT_NE(code.find("int main"), std::string::npos);
  EXPECT_NE(code.find("lenet_top"), std::string::npos);
  EXPECT_NE(code.find("enqueue_task"), std::string::npos);
  EXPECT_NE(code.find("aws-f1"), std::string::npos);
  EXPECT_NE(code.find("784"), std::string::npos);  // 28*28 input floats
}

}  // namespace
}  // namespace condor::condorflow

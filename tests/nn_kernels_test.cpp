// Unit tests of the packed MAC microkernels (nn/kernels.hpp): weight
// repack round trips and bit-exact equivalence of the packed kernels
// against the plain scalar accumulation loops they replace.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "nn/kernels.hpp"

namespace condor::nn::kernels {
namespace {

std::vector<float> random_values(std::size_t count, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<float> values(count);
  for (float& value : values) {
    value = rng.uniform(-1.0F, 1.0F);
  }
  return values;
}

TEST(NnKernels, ConvPackRoundTrips) {
  const std::size_t oc = 5;
  const std::size_t ic = 3;
  const std::size_t kh = 3;
  const std::size_t kw = 2;
  const std::vector<float> weights = random_values(oc * ic * kh * kw, 7);

  const std::vector<float> packed =
      pack_conv_weights<float>(weights, oc, ic, kh, kw);
  ASSERT_EQ(packed.size(), weights.size());
  const std::vector<float> back =
      unpack_conv_weights<float>(packed, oc, ic, kh, kw);
  EXPECT_EQ(back, weights);
}

TEST(NnKernels, ConvPackLayoutIsOcInnermost) {
  // packed[((ic * kh + ky) * kw + kx) * oc + o] == weights[((o * ic + c) * kh + ky) * kw + kx]
  const std::size_t oc = 4;
  const std::size_t ic = 2;
  const std::size_t kh = 2;
  const std::size_t kw = 3;
  const std::vector<float> weights = random_values(oc * ic * kh * kw, 11);
  const std::vector<float> packed =
      pack_conv_weights<float>(weights, oc, ic, kh, kw);
  for (std::size_t o = 0; o < oc; ++o) {
    for (std::size_t c = 0; c < ic; ++c) {
      for (std::size_t ky = 0; ky < kh; ++ky) {
        for (std::size_t kx = 0; kx < kw; ++kx) {
          EXPECT_EQ(packed[((c * kh + ky) * kw + kx) * oc + o],
                    weights[((o * ic + c) * kh + ky) * kw + kx]);
        }
      }
    }
  }
}

TEST(NnKernels, InnerProductPackRoundTrips) {
  const std::size_t out_count = 6;
  const std::size_t in_count = 9;
  const std::vector<float> weights = random_values(out_count * in_count, 13);

  const std::vector<float> packed =
      pack_inner_product_weights<float>(weights, out_count, in_count);
  ASSERT_EQ(packed.size(), weights.size());
  // (out, in) transposed to (in, out).
  for (std::size_t o = 0; o < out_count; ++o) {
    for (std::size_t i = 0; i < in_count; ++i) {
      EXPECT_EQ(packed[i * out_count + o], weights[o * in_count + i]);
    }
  }
  EXPECT_EQ(unpack_inner_product_weights<float>(packed, out_count, in_count),
            weights);
}

TEST(NnKernels, ConvAccumulateRowMatchesScalarLoop) {
  // One (input-channel, output-row) update vs the straightforward scalar
  // triple loop, over a strided row and an oc slice with a wider packed
  // stride — both must agree bit for bit.
  const std::size_t oc_total = 7;
  const std::size_t oc0 = 2;       // slice [2, 7)
  const std::size_t oc_count = 5;
  const std::size_t out_w = 6;
  const std::size_t kh = 3;
  const std::size_t kw = 3;
  const std::size_t tap_count = kh * kw;
  const std::size_t x_stride = 2;

  const std::vector<float> row =
      random_values((out_w - 1) * x_stride + tap_count * 4, 17);
  const std::vector<float> packed = random_values(tap_count * oc_total, 19);

  std::vector<const float*> taps(tap_count);
  for (std::size_t t = 0; t < tap_count; ++t) {
    taps[t] = row.data() + t;  // arbitrary distinct per-tap base pointers
  }

  std::vector<float> acc = random_values(out_w * oc_count, 23);  // seeded
  std::vector<float> expected = acc;

  conv_accumulate_row(acc.data(), oc_count, out_w, taps.data(), tap_count,
                      x_stride, packed.data() + oc0, oc_total);

  for (std::size_t ox = 0; ox < out_w; ++ox) {
    for (std::size_t t = 0; t < tap_count; ++t) {
      const float x = taps[t][ox * x_stride];
      for (std::size_t j = 0; j < oc_count; ++j) {
        expected[ox * oc_count + j] += x * packed[t * oc_total + oc0 + j];
      }
    }
  }
  EXPECT_EQ(acc, expected);
}

TEST(NnKernels, InnerProductAccumulateMatchesScalarDot) {
  const std::size_t out_total = 9;
  const std::size_t oc0 = 3;       // slice [3, 9)
  const std::size_t out_count = 6;
  const std::size_t in_count = 31;

  const std::vector<float> x = random_values(in_count, 29);
  const std::vector<float> weights = random_values(out_total * in_count, 31);
  const std::vector<float> packed =
      pack_inner_product_weights<float>(weights, out_total, in_count);

  std::vector<float> acc = random_values(out_count, 37);  // bias seed
  std::vector<float> expected = acc;

  inner_product_accumulate(acc.data(), out_count, x.data(), in_count,
                           packed.data() + oc0, out_total);

  // Scalar row dot products in the original (out, in) layout: identical
  // ascending-input add order, so equality is exact.
  for (std::size_t j = 0; j < out_count; ++j) {
    for (std::size_t i = 0; i < in_count; ++i) {
      expected[j] += weights[(oc0 + j) * in_count + i] * x[i];
    }
  }
  EXPECT_EQ(acc, expected);
}

TEST(NnKernels, IntegerMacWidensBeforeMultiplying) {
  // The fixed16 instantiation (int32 codes, int64 accumulator) must form
  // products in the accumulator type: two near-max 16-bit codes multiply to
  // ~2^30, and a handful of such terms overflows int32.
  const std::size_t out_count = 3;
  const std::size_t in_count = 8;
  std::vector<std::int32_t> x(in_count, 32000);
  std::vector<std::int32_t> packed(in_count * out_count, -32000);
  std::vector<std::int64_t> acc(out_count, 5);

  inner_product_accumulate(acc.data(), out_count, x.data(), in_count,
                           packed.data(), out_count);

  const std::int64_t expected =
      5 + static_cast<std::int64_t>(in_count) * 32000 * -32000;
  for (const std::int64_t a : acc) {
    EXPECT_EQ(a, expected);
  }
}

TEST(NnKernels, IntegerConvRowMatchesScalarLoop) {
  const std::size_t oc_count = 4;
  const std::size_t out_w = 5;
  const std::size_t tap_count = 3;
  std::vector<std::int32_t> row((out_w - 1) + tap_count + 2);
  for (std::size_t i = 0; i < row.size(); ++i) {
    row[i] = static_cast<std::int32_t>(i * 101) - 300;
  }
  std::vector<std::int32_t> packed(tap_count * oc_count);
  for (std::size_t i = 0; i < packed.size(); ++i) {
    packed[i] = static_cast<std::int32_t>(i * 7) - 11;
  }
  std::vector<const std::int32_t*> taps(tap_count);
  for (std::size_t t = 0; t < tap_count; ++t) {
    taps[t] = row.data() + t;
  }
  std::vector<std::int64_t> acc(out_w * oc_count, 42);
  std::vector<std::int64_t> expected = acc;

  conv_accumulate_row(acc.data(), oc_count, out_w, taps.data(), tap_count,
                      std::size_t{1}, packed.data(), oc_count);

  for (std::size_t ox = 0; ox < out_w; ++ox) {
    for (std::size_t t = 0; t < tap_count; ++t) {
      for (std::size_t j = 0; j < oc_count; ++j) {
        expected[ox * oc_count + j] +=
            static_cast<std::int64_t>(taps[t][ox]) * packed[t * oc_count + j];
      }
    }
  }
  EXPECT_EQ(acc, expected);
}

}  // namespace
}  // namespace condor::nn::kernels

// Tests for the asynchronous event-based ocl::CommandQueue: event
// chaining (in-order, out-of-order, cross-queue), double-buffered
// transfer/compute overlap, deferred error propagation, and multi-instance
// kernels driven through the queue.
#include <gtest/gtest.h>

#include <cstring>

#include "condor/flow.hpp"
#include "nn/models.hpp"
#include "nn/reference.hpp"
#include "nn/weights.hpp"
#include "runtime/opencl_like.hpp"
#include "test_util.hpp"

namespace condor::runtime {
namespace {

struct FlowFixture {
  condorflow::FlowResult flow;
  nn::Network network;
  nn::WeightStore weights;
};

FlowFixture run_flow(const nn::Network& model, std::uint64_t seed) {
  FlowFixture fixture;
  fixture.network = model;
  fixture.weights = nn::initialize_weights(model, seed).value();
  condorflow::FrontendInput input;
  input.network_json_text =
      hw::to_json_text(hw::with_default_annotations(model));
  input.weight_file_bytes = fixture.weights.serialize();
  condorflow::FlowOptions options;
  fixture.flow = condorflow::Flow::run(input, options).value();
  return fixture;
}

nn::Network tiny_model() {
  condor::testing::TinyNetConfig config;
  config.with_pool = true;
  config.with_fc = true;
  return condor::testing::make_tiny_net(config);
}

std::span<const std::byte> tensor_bytes(const Tensor& t) {
  return {reinterpret_cast<const std::byte*>(t.raw()),
          t.size() * sizeof(float)};
}

TEST(AsyncQueue, DefaultEventIsCompleteAndOk) {
  ocl::Event event;
  EXPECT_TRUE(event.is_complete());
  EXPECT_TRUE(event.status().is_ok());
  event.wait();  // no-op
  EXPECT_FALSE(event.kernel_stats().is_ok());  // not a task event
}

TEST(AsyncQueue, WriteEventIsNotATaskEvent) {
  auto device = ocl::get_device("aws-f1");
  ocl::Context context(device.value());
  ocl::Buffer buffer(context, 8);
  ocl::CommandQueue queue(context);
  std::vector<std::byte> bytes(8, std::byte{7});
  auto write = queue.enqueue_write_buffer(buffer, 0, bytes);
  ASSERT_TRUE(write.is_ok());
  EXPECT_TRUE(write.value().status().is_ok());  // waits for completion
  EXPECT_FALSE(write.value().kernel_stats().is_ok());
  EXPECT_TRUE(queue.finish().is_ok());
}

TEST(AsyncQueue, InOrderQueueExecutesFifoWithoutExplicitEvents) {
  auto device = ocl::get_device("aws-f1");
  ocl::Context context(device.value());
  ocl::Buffer buffer(context, 4);
  ocl::CommandQueue queue(context);
  // Three writes to the same byte range; FIFO order means the last wins.
  for (std::byte value : {std::byte{1}, std::byte{2}, std::byte{3}}) {
    std::vector<std::byte> bytes(4, value);
    ASSERT_TRUE(queue.enqueue_write_buffer(buffer, 0, bytes).is_ok());
  }
  std::vector<std::byte> out(4);
  auto read = queue.enqueue_read_buffer(buffer, 0, out);
  ASSERT_TRUE(read.is_ok());
  ASSERT_TRUE(queue.finish().is_ok());
  EXPECT_EQ(out[0], std::byte{3});
  EXPECT_EQ(out[3], std::byte{3});
}

TEST(AsyncQueue, WritesAreStagedAtEnqueue) {
  auto device = ocl::get_device("aws-f1");
  ocl::Context context(device.value());
  ocl::Buffer buffer(context, 4);
  ocl::CommandQueue queue(context);
  ocl::Event write;
  {
    // The source dies right after enqueue; the staged copy must survive.
    std::vector<std::byte> ephemeral(4, std::byte{9});
    auto result = queue.enqueue_write_buffer(buffer, 0, ephemeral);
    ASSERT_TRUE(result.is_ok());
    write = result.value();
    ephemeral.assign(4, std::byte{0});  // clobber before completion
  }
  write.wait();
  EXPECT_EQ(buffer.bytes()[0], std::byte{9});
  EXPECT_TRUE(queue.finish().is_ok());
}

/// End-to-end through an out-of-order queue with explicit event chaining,
/// double-buffered: while the task of batch k computes, the transfer for
/// batch k+1 is already enqueued against an independent staging buffer.
/// Results for both batches must match the golden reference bit-exactly.
TEST(AsyncQueue, DoubleBufferedBatchesOverlapAndStayBitExact) {
  const nn::Network model = tiny_model();
  FlowFixture fixture = run_flow(model, 51);

  auto device = ocl::get_device("aws-f1");
  ocl::Context context(device.value());
  auto program =
      ocl::Program::create_with_binary(context, fixture.flow.xclbin_bytes);
  ASSERT_TRUE(program.is_ok()) << program.status().to_string();
  ocl::Kernel kernel(program.value(), program.value().kernel_name());

  constexpr std::size_t kBatch = 2;
  const auto batch_a = condor::testing::random_inputs(model, kBatch, 61);
  const auto batch_b = condor::testing::random_inputs(model, kBatch, 62);
  const std::size_t image_floats = batch_a[0].size();
  const std::size_t out_floats = model.output_shape().value().element_count();

  ocl::Buffer in_a(context, kBatch * image_floats * sizeof(float));
  ocl::Buffer in_b(context, kBatch * image_floats * sizeof(float));
  ocl::Buffer out_a(context, kBatch * out_floats * sizeof(float));
  ocl::Buffer out_b(context, kBatch * out_floats * sizeof(float));
  ocl::Buffer weight_buffer(context, fixture.flow.weight_file_bytes.size());

  ocl::CommandQueue queue(context, ocl::QueueProperties{.out_of_order = true});

  auto weights_written =
      queue.enqueue_write_buffer(weight_buffer, 0, fixture.flow.weight_file_bytes);
  ASSERT_TRUE(weights_written.is_ok());

  // Stage both input batches up front — on the out-of-order queue these
  // transfers are independent of everything except their own buffers.
  std::vector<ocl::Event> in_written;
  for (std::size_t i = 0; i < kBatch; ++i) {
    auto wa = queue.enqueue_write_buffer(in_a, i * image_floats * sizeof(float),
                                         tensor_bytes(batch_a[i]));
    ASSERT_TRUE(wa.is_ok());
    in_written.push_back(wa.value());
    auto wb = queue.enqueue_write_buffer(in_b, i * image_floats * sizeof(float),
                                         tensor_bytes(batch_b[i]));
    ASSERT_TRUE(wb.is_ok());
    in_written.push_back(wb.value());
  }

  ASSERT_TRUE(kernel.set_arg(0, in_a).is_ok());
  ASSERT_TRUE(kernel.set_arg(1, out_a).is_ok());
  ASSERT_TRUE(kernel.set_arg(2, weight_buffer).is_ok());
  ASSERT_TRUE(kernel.set_arg(3, static_cast<std::int32_t>(kBatch)).is_ok());
  auto task_a = queue.enqueue_task(
      kernel, {weights_written.value(), in_written[0], in_written[2]});
  ASSERT_TRUE(task_a.is_ok());

  // Re-binding args is safe immediately: task_a snapshotted its bindings.
  ASSERT_TRUE(kernel.set_arg(0, in_b).is_ok());
  ASSERT_TRUE(kernel.set_arg(1, out_b).is_ok());
  auto task_b = queue.enqueue_task(
      kernel,
      {weights_written.value(), in_written[1], in_written[3], task_a.value()});
  ASSERT_TRUE(task_b.is_ok());

  std::vector<float> host_a(kBatch * out_floats);
  std::vector<float> host_b(kBatch * out_floats);
  auto read_a = queue.enqueue_read_buffer(
      out_a, 0,
      std::span<std::byte>(reinterpret_cast<std::byte*>(host_a.data()),
                           host_a.size() * sizeof(float)),
      {task_a.value()});
  auto read_b = queue.enqueue_read_buffer(
      out_b, 0,
      std::span<std::byte>(reinterpret_cast<std::byte*>(host_b.data()),
                           host_b.size() * sizeof(float)),
      {task_b.value()});
  ASSERT_TRUE(read_a.is_ok());
  ASSERT_TRUE(read_b.is_ok());
  ASSERT_TRUE(queue.finish().is_ok());

  EXPECT_TRUE(task_a.value().kernel_stats().is_ok());
  EXPECT_TRUE(task_b.value().kernel_stats().is_ok());

  auto engine = nn::ReferenceEngine::create(model, fixture.weights);
  ASSERT_TRUE(engine.is_ok());
  for (std::size_t i = 0; i < kBatch; ++i) {
    const Tensor expected_a = engine.value().forward(batch_a[i]).value();
    const Tensor expected_b = engine.value().forward(batch_b[i]).value();
    for (std::size_t c = 0; c < out_floats; ++c) {
      EXPECT_EQ(host_a[i * out_floats + c], expected_a[c])
          << "batch A image " << i << " class " << c;
      EXPECT_EQ(host_b[i * out_floats + c], expected_b[c])
          << "batch B image " << i << " class " << c;
    }
  }
}

TEST(AsyncQueue, EventsChainAcrossQueues) {
  auto device = ocl::get_device("aws-f1");
  ocl::Context context(device.value());
  ocl::Buffer buffer(context, 4);
  ocl::CommandQueue producer(context);
  ocl::CommandQueue consumer(context,
                             ocl::QueueProperties{.out_of_order = true});
  std::vector<std::byte> bytes(4, std::byte{5});
  auto written = producer.enqueue_write_buffer(buffer, 0, bytes);
  ASSERT_TRUE(written.is_ok());
  std::vector<std::byte> out(4);
  auto read = consumer.enqueue_read_buffer(buffer, 0, out, {written.value()});
  ASSERT_TRUE(read.is_ok());
  ASSERT_TRUE(read.value().status().is_ok());
  EXPECT_EQ(out[0], std::byte{5});
  EXPECT_TRUE(producer.finish().is_ok());
  EXPECT_TRUE(consumer.finish().is_ok());
}

TEST(AsyncQueue, ExecutionErrorsDeferToEventAndFinish) {
  const nn::Network model = tiny_model();
  FlowFixture fixture = run_flow(model, 52);

  auto device = ocl::get_device("aws-f1");
  ocl::Context context(device.value());
  auto program =
      ocl::Program::create_with_binary(context, fixture.flow.xclbin_bytes);
  ASSERT_TRUE(program.is_ok());
  ocl::Kernel kernel(program.value(), program.value().kernel_name());

  const std::size_t image_floats =
      model.input_shape().value().element_count();
  ocl::Buffer in_buffer(context, image_floats * sizeof(float));
  ocl::Buffer out_buffer(context, 64 * sizeof(float));
  // Garbage weight bytes: the enqueue succeeds (the arguments are shaped
  // correctly) but the weight deserialization fails at execution time.
  ocl::Buffer weight_buffer(context, 16);
  ASSERT_TRUE(kernel.set_arg(0, in_buffer).is_ok());
  ASSERT_TRUE(kernel.set_arg(1, out_buffer).is_ok());
  ASSERT_TRUE(kernel.set_arg(2, weight_buffer).is_ok());
  ASSERT_TRUE(kernel.set_arg(3, 1).is_ok());

  ocl::CommandQueue queue(context);
  auto task = queue.enqueue_task(kernel);
  ASSERT_TRUE(task.is_ok());  // enqueue itself succeeds
  const Status task_status = task.value().status();
  EXPECT_FALSE(task_status.is_ok());
  EXPECT_FALSE(task.value().kernel_stats().is_ok());

  // A dependent read fails without executing, tagged as a dependency error.
  std::vector<std::byte> out(4);
  auto read = queue.enqueue_read_buffer(out_buffer, 0, out, {task.value()});
  ASSERT_TRUE(read.is_ok());
  const Status read_status = read.value().status();
  EXPECT_FALSE(read_status.is_ok());
  EXPECT_NE(read_status.message().find("dependency failed"), std::string::npos)
      << read_status.to_string();

  // finish() surfaces the FIRST deferred error, then resets.
  const Status drained = queue.finish();
  EXPECT_FALSE(drained.is_ok());
  EXPECT_EQ(drained.message(), task_status.message());
  EXPECT_TRUE(queue.finish().is_ok());
}

TEST(AsyncQueue, MultiInstanceKernelThroughQueue) {
  const nn::Network model = tiny_model();
  FlowFixture fixture = run_flow(model, 53);

  auto device = ocl::get_device("aws-f1");
  ocl::Context context(device.value());
  auto program =
      ocl::Program::create_with_binary(context, fixture.flow.xclbin_bytes);
  ASSERT_TRUE(program.is_ok());
  // Replicate the device kernel before any enqueue — the CLI's --instances
  // path does exactly this.
  ASSERT_TRUE(program.value().device_kernel()->set_instances(2).is_ok());
  ocl::Kernel kernel(program.value(), program.value().kernel_name());

  constexpr std::size_t kBatch = 5;
  const auto inputs = condor::testing::random_inputs(model, kBatch, 71);
  const std::size_t image_floats = inputs[0].size();
  const std::size_t out_floats = model.output_shape().value().element_count();

  ocl::Buffer in_buffer(context, kBatch * image_floats * sizeof(float));
  ocl::Buffer out_buffer(context, kBatch * out_floats * sizeof(float));
  ocl::Buffer weight_buffer(context, fixture.flow.weight_file_bytes.size());
  ocl::CommandQueue queue(context);
  ASSERT_TRUE(
      queue.enqueue_write_buffer(weight_buffer, 0, fixture.flow.weight_file_bytes)
          .is_ok());
  for (std::size_t i = 0; i < kBatch; ++i) {
    ASSERT_TRUE(queue
                    .enqueue_write_buffer(in_buffer,
                                          i * image_floats * sizeof(float),
                                          tensor_bytes(inputs[i]))
                    .is_ok());
  }
  ASSERT_TRUE(kernel.set_arg(0, in_buffer).is_ok());
  ASSERT_TRUE(kernel.set_arg(1, out_buffer).is_ok());
  ASSERT_TRUE(kernel.set_arg(2, weight_buffer).is_ok());
  ASSERT_TRUE(kernel.set_arg(3, static_cast<std::int32_t>(kBatch)).is_ok());
  auto task = queue.enqueue_task(kernel);
  ASSERT_TRUE(task.is_ok());
  auto stats = task.value().kernel_stats();
  ASSERT_TRUE(stats.is_ok()) << stats.status().to_string();
  EXPECT_EQ(stats.value().instances, 2u);
  EXPECT_GT(stats.value().simulated_cycles, 0u);

  auto engine = nn::ReferenceEngine::create(model, fixture.weights);
  ASSERT_TRUE(engine.is_ok());
  for (std::size_t i = 0; i < kBatch; ++i) {
    std::vector<float> device_out(out_floats);
    auto read = queue.enqueue_read_buffer(
        out_buffer, i * out_floats * sizeof(float),
        std::span<std::byte>(reinterpret_cast<std::byte*>(device_out.data()),
                             out_floats * sizeof(float)));
    ASSERT_TRUE(read.is_ok());
    read.value().wait();
    const Tensor expected = engine.value().forward(inputs[i]).value();
    for (std::size_t c = 0; c < out_floats; ++c) {
      EXPECT_EQ(device_out[c], expected[c]) << "image " << i << " class " << c;
    }
  }
  EXPECT_TRUE(queue.finish().is_ok());
}

}  // namespace
}  // namespace condor::runtime

// Tests for the backend runtime: the xclbin container, the kernel runner,
// and the SDAccel-style OpenCL host API end to end.
#include <gtest/gtest.h>

#include <cstring>

#include "condor/flow.hpp"
#include "nn/models.hpp"
#include "nn/reference.hpp"
#include "nn/weights.hpp"
#include "runtime/opencl_like.hpp"
#include "runtime/xclbin.hpp"
#include "test_util.hpp"

namespace condor::runtime {
namespace {

Xclbin make_test_container() {
  Xclbin bin;
  bin.set_text_section("meta.json", R"({"board": "aws-f1", "kernel": "k"})");
  bin.set_text_section("notes.txt", "hello");
  std::vector<std::byte> blob = {std::byte{1}, std::byte{2}, std::byte{3}};
  bin.set_section("blob.bin", blob);
  return bin;
}

TEST(Xclbin, SerializeDeserializeRoundTrip) {
  const Xclbin original = make_test_container();
  auto restored = Xclbin::deserialize(original.serialize());
  ASSERT_TRUE(restored.is_ok()) << restored.status().to_string();
  EXPECT_EQ(restored.value().sections().size(), 3u);
  EXPECT_EQ(restored.value().text_section("notes.txt").value(), "hello");
  EXPECT_EQ(restored.value().find("blob.bin")->data.size(), 3u);
  EXPECT_EQ(restored.value().find("missing"), nullptr);
}

TEST(Xclbin, SetSectionOverwrites) {
  Xclbin bin = make_test_container();
  bin.set_text_section("notes.txt", "updated");
  EXPECT_EQ(bin.sections().size(), 3u);
  EXPECT_EQ(bin.text_section("notes.txt").value(), "updated");
}

TEST(Xclbin, CorruptedSectionRejected) {
  auto bytes = make_test_container().serialize();
  bytes[bytes.size() - 2] ^= std::byte{0xFF};  // flip a payload byte
  auto restored = Xclbin::deserialize(bytes);
  ASSERT_FALSE(restored.is_ok());
  EXPECT_NE(restored.status().message().find("CRC"), std::string::npos);
}

TEST(Xclbin, GarbageRejected) {
  std::vector<std::byte> garbage(32, std::byte{0x42});
  EXPECT_FALSE(Xclbin::deserialize(garbage).is_ok());
}

TEST(Xclbin, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/test.xclbin";
  ASSERT_TRUE(make_test_container().save(path).is_ok());
  auto loaded = Xclbin::load(path);
  ASSERT_TRUE(loaded.is_ok());
  EXPECT_EQ(loaded.value().text_section("notes.txt").value(), "hello");
}

TEST(KernelXml, DescribesAxiInterfaces) {
  const std::string xml = generate_kernel_xml("lenet_top");
  EXPECT_NE(xml.find("kernel name=\"lenet_top\""), std::string::npos);
  EXPECT_NE(xml.find("mode=\"master\""), std::string::npos);   // AXI4 master
  EXPECT_NE(xml.find("S_AXI_CONTROL"), std::string::npos);     // AXI4-Lite slave
  EXPECT_NE(xml.find("gmem_weights"), std::string::npos);
  EXPECT_NE(xml.find("name=\"batch\""), std::string::npos);
}

// ---- Full host-API path -----------------------------------------------------

struct FlowFixture {
  condorflow::FlowResult flow;
  nn::Network network;
  nn::WeightStore weights;
};

FlowFixture run_flow(const nn::Network& model, std::uint64_t seed) {
  FlowFixture fixture;
  fixture.network = model;
  fixture.weights = nn::initialize_weights(model, seed).value();
  condorflow::FrontendInput input;
  input.network_json_text =
      hw::to_json_text(hw::with_default_annotations(model));
  input.weight_file_bytes = fixture.weights.serialize();
  condorflow::FlowOptions options;
  fixture.flow = condorflow::Flow::run(input, options).value();
  return fixture;
}

TEST(OclApi, DeviceEnumeration) {
  const auto devices = ocl::get_devices();
  EXPECT_EQ(devices.size(), hw::board_database().size());
  EXPECT_TRUE(ocl::get_device("aws-f1").is_ok());
  EXPECT_FALSE(ocl::get_device("nope").is_ok());
  EXPECT_NE(ocl::get_device("aws-f1").value().name.find("aws-vu9p-f1"),
            std::string::npos);
}

TEST(OclApi, EndToEndMatchesReference) {
  using condor::testing::TinyNetConfig;
  TinyNetConfig config;
  config.with_pool = true;
  config.with_fc = true;
  config.with_softmax = true;
  const nn::Network model = condor::testing::make_tiny_net(config);
  FlowFixture fixture = run_flow(model, 31);

  auto device = ocl::get_device("aws-f1");
  ASSERT_TRUE(device.is_ok());
  ocl::Context context(device.value());
  auto program =
      ocl::Program::create_with_binary(context, fixture.flow.xclbin_bytes);
  ASSERT_TRUE(program.is_ok()) << program.status().to_string();
  EXPECT_EQ(program.value().kernel_name(), "tiny_top");
  ocl::Kernel kernel(program.value(), program.value().kernel_name());

  const auto inputs = condor::testing::random_inputs(model, 3, 41);
  const std::size_t image_floats = inputs[0].size();
  const std::size_t out_floats = model.output_shape().value().element_count();

  ocl::Buffer in_buffer(context, inputs.size() * image_floats * sizeof(float));
  ocl::Buffer out_buffer(context, inputs.size() * out_floats * sizeof(float));
  ocl::Buffer weight_buffer(context, fixture.flow.weight_file_bytes.size());
  ocl::CommandQueue queue(context);
  ASSERT_TRUE(
      queue.enqueue_write_buffer(weight_buffer, 0, fixture.flow.weight_file_bytes)
          .is_ok());
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    ASSERT_TRUE(queue
                    .enqueue_write_buffer(
                        in_buffer, i * image_floats * sizeof(float),
                        std::span<const std::byte>(
                            reinterpret_cast<const std::byte*>(inputs[i].raw()),
                            image_floats * sizeof(float)))
                    .is_ok());
  }
  ASSERT_TRUE(kernel.set_arg(0, in_buffer).is_ok());
  ASSERT_TRUE(kernel.set_arg(1, out_buffer).is_ok());
  ASSERT_TRUE(kernel.set_arg(2, weight_buffer).is_ok());
  ASSERT_TRUE(kernel.set_arg(3, static_cast<std::int32_t>(inputs.size())).is_ok());

  auto task = queue.enqueue_task(kernel);
  ASSERT_TRUE(task.is_ok()) << task.status().to_string();
  auto stats = task.value().kernel_stats();  // waits for the task to execute
  ASSERT_TRUE(stats.is_ok()) << stats.status().to_string();
  EXPECT_GT(stats.value().simulated_cycles, 0u);
  EXPECT_GT(stats.value().clock_mhz, 0.0);

  auto engine = nn::ReferenceEngine::create(model, fixture.weights);
  ASSERT_TRUE(engine.is_ok());
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    std::vector<float> device_out(out_floats);
    auto read = queue.enqueue_read_buffer(
        out_buffer, i * out_floats * sizeof(float),
        std::span<std::byte>(reinterpret_cast<std::byte*>(device_out.data()),
                             out_floats * sizeof(float)));
    ASSERT_TRUE(read.is_ok()) << read.status().to_string();
    read.value().wait();  // zero-copy read: the span fills on completion
    const Tensor expected = engine.value().forward(inputs[i]).value();
    for (std::size_t c = 0; c < out_floats; ++c) {
      EXPECT_EQ(device_out[c], expected[c]) << "image " << i << " class " << c;
    }
  }
}

TEST(OclApi, WrongBoardBinaryRejected) {
  const nn::Network model =
      condor::testing::make_tiny_net(condor::testing::TinyNetConfig{});
  FlowFixture fixture = run_flow(model, 5);  // targets aws-f1
  auto device = ocl::get_device("zc706");
  ASSERT_TRUE(device.is_ok());
  ocl::Context context(device.value());
  auto program =
      ocl::Program::create_with_binary(context, fixture.flow.xclbin_bytes);
  EXPECT_FALSE(program.is_ok());
}

TEST(OclApi, IncompleteKernelArgsRejected) {
  const nn::Network model =
      condor::testing::make_tiny_net(condor::testing::TinyNetConfig{});
  FlowFixture fixture = run_flow(model, 6);
  auto device = ocl::get_device("aws-f1");
  ocl::Context context(device.value());
  auto program =
      ocl::Program::create_with_binary(context, fixture.flow.xclbin_bytes);
  ASSERT_TRUE(program.is_ok());
  ocl::Kernel kernel(program.value(), "tiny_top");
  ocl::CommandQueue queue(context);
  auto stats = queue.enqueue_task(kernel);  // no args set
  EXPECT_FALSE(stats.is_ok());
  EXPECT_EQ(stats.status().code(), StatusCode::kInvalidInput);
  // Invalid arg indices.
  ocl::Buffer buffer(context, 16);
  EXPECT_FALSE(kernel.set_arg(7, buffer).is_ok());
  EXPECT_FALSE(kernel.set_arg(0, -1).is_ok());
}

TEST(OclApi, BufferBoundsChecked) {
  auto device = ocl::get_device("aws-f1");
  ocl::Context context(device.value());
  ocl::Buffer buffer(context, 8);
  ocl::CommandQueue queue(context);
  std::vector<std::byte> big(16);
  auto oversized = queue.enqueue_write_buffer(buffer, 0, big);
  EXPECT_FALSE(oversized.is_ok());
  EXPECT_NE(oversized.status().message().find("write of 16 bytes at offset 0"),
            std::string::npos)
      << oversized.status().to_string();
  EXPECT_NE(oversized.status().message().find("buffer of 8 bytes"),
            std::string::npos);
  auto past_end = queue.enqueue_write_buffer(buffer, 4, std::span(big).first(8));
  EXPECT_FALSE(past_end.is_ok());
  EXPECT_NE(past_end.status().message().find("write of 8 bytes at offset 4"),
            std::string::npos);
  // Offset alone past the end must not wrap (offset + size could overflow).
  EXPECT_FALSE(
      queue.enqueue_write_buffer(buffer, 9, std::span(big).first(0)).is_ok());
  std::vector<std::byte> out(4);
  EXPECT_TRUE(queue.enqueue_read_buffer(buffer, 4, out).is_ok());
  auto bad_read = queue.enqueue_read_buffer(buffer, 6, out);
  EXPECT_FALSE(bad_read.is_ok());
  EXPECT_NE(bad_read.status().message().find("read of 4 bytes at offset 6"),
            std::string::npos)
      << bad_read.status().to_string();
  // Drain the pending valid read before `out` goes out of scope.
  EXPECT_TRUE(queue.finish().is_ok());
}

TEST(KernelRunner, RequiresWeightsBeforeRun) {
  const nn::Network model =
      condor::testing::make_tiny_net(condor::testing::TinyNetConfig{});
  FlowFixture fixture = run_flow(model, 7);
  auto kernel = LoadedKernel::from_xclbin(fixture.flow.xclbin);
  ASSERT_TRUE(kernel.is_ok());
  EXPECT_FALSE(kernel.value().weights_loaded());
  const auto inputs = condor::testing::random_inputs(model, 1, 3);
  EXPECT_FALSE(kernel.value().run(inputs).is_ok());
  ASSERT_TRUE(kernel.value().load_weights(fixture.flow.weight_file_bytes).is_ok());
  EXPECT_TRUE(kernel.value().run(inputs).is_ok());
}

}  // namespace
}  // namespace condor::runtime

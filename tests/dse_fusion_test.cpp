// Fusion-aware DSE: PE clustering as a search variable.
//
// With max_fused > 1 the explorer enumerates fusion degrees per feature
// chain segment, seeds a hill climb from every enumerated clustering and
// keeps the best point across clusterings. Fusing time-multiplexes layers
// on one PE but shares a single window memory subsystem and frees DSP/LUT
// the climb can spend on deeper parallelism — so on tight boards the
// searched front must dominate (or at worst match) the fixed clustering.
#include <gtest/gtest.h>

#include <algorithm>

#include "hw/accel_plan.hpp"
#include "hw/dse.hpp"
#include "nn/models.hpp"
#include "test_util.hpp"

namespace condor::hw {
namespace {

/// Largest fused chain in a point's plan (1 == nothing fused).
std::size_t max_chain(const DsePoint& point) {
  const auto plan = plan_accelerator(point.config);
  std::size_t chain = 1;
  for (const PePlan& pe : plan.value().pes) {
    chain = std::max(chain, pe.layer_indices.size());
  }
  return chain;
}

TEST(DseFusion, MaxFusedOneKeepsSingleClustering) {
  DseOptions options;
  options.max_fused = 1;
  auto result = explore(
      with_default_annotations(nn::make_lenet().feature_extraction_prefix()),
      options);
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  EXPECT_EQ(result.value().clusterings_explored, 1U);
  EXPECT_EQ(max_chain(result.value().best), 1U);
}

TEST(DseFusion, EnumeratesPerSegmentDegrees) {
  // lenet-features is one chain segment of four feature PEs; max_fused=3
  // enumerates degrees {2, 3} on top of the base clustering.
  DseOptions options;
  options.max_fused = 3;
  auto result = explore(
      with_default_annotations(nn::make_lenet().feature_extraction_prefix()),
      options);
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  EXPECT_EQ(result.value().clusterings_explored, 3U);
  EXPECT_GT(result.value().points_evaluated, 0U);
}

TEST(DseFusion, ClusteringCapBoundsEnumeration) {
  DseOptions options;
  options.max_fused = 4;
  options.max_clusterings = 1;
  auto result = explore(
      with_default_annotations(nn::make_lenet().feature_extraction_prefix()),
      options);
  ASSERT_TRUE(result.is_ok());
  // Base clustering + at most max_clusterings fused candidates.
  EXPECT_LE(result.value().clusterings_explored, 2U);
}

TEST(DseFusion, SearchedFusionNeverLosesToFixedClustering) {
  // The invariant that makes fusion a safe search variable: the fused front
  // contains the unfused front (the base clustering always climbs too), so
  // enabling the search can only improve modeled throughput.
  for (const char* board : {"zc706", "aws-f1"}) {
    DseOptions fixed;
    fixed.max_fused = 1;
    DseOptions fused = fixed;
    fused.max_fused = 3;
    const HwNetwork net = with_default_annotations(
        nn::make_lenet().feature_extraction_prefix(), board, 150.0);
    auto fixed_result = explore(net, fixed);
    auto fused_result = explore(net, fused);
    ASSERT_TRUE(fixed_result.is_ok()) << board;
    ASSERT_TRUE(fused_result.is_ok()) << board;
    EXPECT_GE(fused_result.value().best.gflops(),
              fixed_result.value().best.gflops())
        << board;
  }
}

TEST(DseFusion, TightBoardWinsWithFusion) {
  // On the resource-constrained zc706 the fixed 18-PE VGG-16 feature stage
  // runs out of fabric before the climb saturates (19.4 GFLOPS at a reduced
  // clock); fusing shares window memories and lets the freed area buy
  // deeper parallelism and the full 150 MHz clock (35.9 GFLOPS). The
  // searched design must strictly beat the fixed-clustering front and
  // actually be fused.
  DseOptions fixed;
  fixed.max_fused = 1;
  DseOptions fused = fixed;
  fused.max_fused = 4;
  const HwNetwork net = with_default_annotations(
      nn::make_vgg16().feature_extraction_prefix(), "zc706", 150.0);
  auto fixed_result = explore(net, fixed);
  auto fused_result = explore(net, fused);
  ASSERT_TRUE(fixed_result.is_ok()) << fixed_result.status().to_string();
  ASSERT_TRUE(fused_result.is_ok()) << fused_result.status().to_string();
  EXPECT_GT(fused_result.value().best.gflops(),
            fixed_result.value().best.gflops());
  EXPECT_GT(max_chain(fused_result.value().best), 1U);
}

TEST(DseFusion, FusedWinnerStaysWithinUtilization) {
  DseOptions options;
  options.max_fused = 3;
  const HwNetwork net = with_default_annotations(
      nn::make_lenet().feature_extraction_prefix(), "zc706", 150.0);
  auto result = explore(net, options);
  ASSERT_TRUE(result.is_ok());
  const DsePoint& best = result.value().best;
  const BoardSpec board = find_board(best.config.hw.board_id).value();
  EXPECT_LE(best.resources.lut_percent(board), 100.0 * options.max_utilization);
  EXPECT_LE(best.resources.dsp_percent(board), 100.0 * options.max_utilization);
  EXPECT_LE(best.resources.bram_percent(board),
            100.0 * options.max_utilization);
}

}  // namespace
}  // namespace condor::hw

// Unit tests for the protobuf wire-format codec.
#include <gtest/gtest.h>

#include "protowire/wire.hpp"

namespace condor::protowire {
namespace {

TEST(Varint, KnownEncodings) {
  const struct {
    std::uint64_t value;
    std::vector<std::uint8_t> bytes;
  } cases[] = {
      {0, {0x00}},
      {1, {0x01}},
      {127, {0x7F}},
      {128, {0x80, 0x01}},
      {300, {0xAC, 0x02}},  // the canonical protobuf docs example
      {0xFFFFFFFFFFFFFFFFULL,
       {0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01}},
  };
  for (const auto& c : cases) {
    ByteWriter writer;
    put_varint(writer, c.value);
    ASSERT_EQ(writer.size(), c.bytes.size()) << c.value;
    for (std::size_t i = 0; i < c.bytes.size(); ++i) {
      EXPECT_EQ(static_cast<std::uint8_t>(writer.view()[i]), c.bytes[i]);
    }
    ByteReader reader(writer.view());
    EXPECT_EQ(get_varint(reader).value(), c.value);
  }
}

TEST(Varint, RoundTripSweep) {
  for (std::uint64_t shift = 0; shift < 64; ++shift) {
    const std::uint64_t value = (1ULL << shift) | (shift & 1);
    ByteWriter writer;
    put_varint(writer, value);
    ByteReader reader(writer.view());
    EXPECT_EQ(get_varint(reader).value(), value);
  }
}

TEST(Varint, OverlongIsRejected) {
  // Eleven continuation bytes can never terminate within 64 bits.
  std::vector<std::byte> bytes(11, std::byte{0x80});
  ByteReader reader(bytes);
  EXPECT_FALSE(get_varint(reader).is_ok());
}

TEST(ZigZag, KnownPairsAndInverse) {
  EXPECT_EQ(zigzag_encode(0), 0u);
  EXPECT_EQ(zigzag_encode(-1), 1u);
  EXPECT_EQ(zigzag_encode(1), 2u);
  EXPECT_EQ(zigzag_encode(-2), 3u);
  for (std::int64_t value : {-1000000007LL, -1LL, 0LL, 1LL, 123456789LL}) {
    EXPECT_EQ(zigzag_decode(zigzag_encode(value)), value);
  }
}

TEST(Wire, FieldRoundTrip) {
  Writer writer;
  writer.varint_field(1, 600);
  writer.bool_field(2, true);
  writer.float_field(3, 2.5F);
  writer.double_field(4, -0.125);
  writer.string_field(5, "caffe");
  writer.packed_floats(6, std::vector<float>{1.0F, 2.0F, 3.0F});

  Reader reader(writer.view());
  auto tag = reader.read_tag();
  ASSERT_TRUE(tag.is_ok());
  EXPECT_EQ(tag.value().field_number, 1u);
  EXPECT_EQ(tag.value().wire_type, WireType::kVarint);
  EXPECT_EQ(reader.read_varint().value(), 600u);

  EXPECT_EQ(reader.read_tag().value().field_number, 2u);
  EXPECT_EQ(reader.read_varint().value(), 1u);

  EXPECT_EQ(reader.read_tag().value().wire_type, WireType::kI32);
  EXPECT_EQ(reader.read_float().value(), 2.5F);

  EXPECT_EQ(reader.read_tag().value().wire_type, WireType::kI64);
  EXPECT_EQ(reader.read_double().value(), -0.125);

  EXPECT_EQ(reader.read_tag().value().field_number, 5u);
  EXPECT_EQ(reader.read_string().value(), "caffe");

  auto packed_tag = reader.read_tag();
  std::vector<float> floats;
  ASSERT_TRUE(reader.read_packed_floats(packed_tag.value(), floats).is_ok());
  EXPECT_EQ(floats, (std::vector<float>{1.0F, 2.0F, 3.0F}));
  EXPECT_TRUE(reader.at_end());
}

TEST(Wire, NestedMessage) {
  Writer inner;
  inner.varint_field(1, 7);
  Writer outer;
  outer.message_field(10, inner);

  Reader reader(outer.view());
  auto tag = reader.read_tag();
  ASSERT_TRUE(tag.is_ok());
  EXPECT_EQ(tag.value().field_number, 10u);
  EXPECT_EQ(tag.value().wire_type, WireType::kLen);
  auto payload = reader.read_len();
  ASSERT_TRUE(payload.is_ok());
  Reader nested(payload.value());
  EXPECT_EQ(nested.read_tag().value().field_number, 1u);
  EXPECT_EQ(nested.read_varint().value(), 7u);
}

TEST(Wire, SkipUnknownFields) {
  Writer writer;
  writer.varint_field(99, 1);
  writer.double_field(98, 1.5);
  writer.string_field(97, "junk");
  writer.float_field(96, 2.0F);
  writer.varint_field(1, 42);

  Reader reader(writer.view());
  std::uint64_t found = 0;
  while (!reader.at_end()) {
    auto tag = reader.read_tag();
    ASSERT_TRUE(tag.is_ok());
    if (tag.value().field_number == 1) {
      found = reader.read_varint().value();
    } else {
      ASSERT_TRUE(reader.skip(tag.value()).is_ok());
    }
  }
  EXPECT_EQ(found, 42u);
}

TEST(Wire, MalformedInputsRejected) {
  // Wire type 3 (group start) is unsupported.
  std::vector<std::byte> group_tag = {std::byte{0x0B}};
  Reader group(group_tag);
  EXPECT_FALSE(group.read_tag().is_ok());

  // Field number 0 is reserved.
  std::vector<std::byte> zero_field = {std::byte{0x00}};
  Reader zero(zero_field);
  EXPECT_FALSE(zero.read_tag().is_ok());

  // LEN payload that claims more bytes than exist.
  Writer writer;
  writer.varint_field(1, 0);
  std::vector<std::byte> truncated(writer.view().begin(), writer.view().end());
  truncated[0] = std::byte{0x0A};  // field 1, LEN
  truncated[1] = std::byte{0xFF};  // length 255 with 0 bytes following
  Reader bad_len(truncated);
  auto tag = bad_len.read_tag();
  ASSERT_TRUE(tag.is_ok());
  EXPECT_FALSE(bad_len.read_len().is_ok());
}

TEST(Wire, PackedFloatsRejectsRaggedPayload) {
  Writer writer;
  writer.string_field(1, "abc");  // 3 bytes: not a multiple of 4
  Reader reader(writer.view());
  auto tag = reader.read_tag();
  std::vector<float> floats;
  EXPECT_FALSE(reader.read_packed_floats(tag.value(), floats).is_ok());
}

TEST(Wire, PackedFloatsAcceptsUnpackedEncoding) {
  Writer writer;
  writer.float_field(5, 1.5F);
  writer.float_field(5, 2.5F);
  Reader reader(writer.view());
  std::vector<float> floats;
  while (!reader.at_end()) {
    auto tag = reader.read_tag();
    ASSERT_TRUE(reader.read_packed_floats(tag.value(), floats).is_ok());
  }
  EXPECT_EQ(floats, (std::vector<float>{1.5F, 2.5F}));
}

}  // namespace
}  // namespace condor::protowire

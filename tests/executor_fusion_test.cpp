// Fused-pass locality acceptance matrix (PE fusion as a first-class
// execution mode).
//
// The contract under test: a plan whose feature chain is clustered onto
// fused PEs (pe_group annotations) produces BYTE-identical outputs to
//   (a) the software oracle (golden reference for float32, quantized
//       engine for the fixed datapaths),
//   (b) the unfused plan of the same network, and
//   (c) the same fused plan with the PE-local fast path disabled (the
//       legacy loopback round trip through mux -> filters -> ports),
// across models x numeric datapaths x parallel_out x fusion degrees. The
// fast path only changes where intermediate blobs live, never their bytes.
#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "common/strings.hpp"
#include "dataflow/executor.hpp"
#include "hw/accel_plan.hpp"
#include "nn/models.hpp"
#include "nn/quantization.hpp"
#include "nn/reference.hpp"
#include "test_util.hpp"

namespace condor {
namespace {

constexpr std::size_t kWholeStage = std::numeric_limits<std::size_t>::max();

/// Clusters runs of chained feature-extraction layers into fused PE groups
/// of up to `degree` layers each (degree kWholeStage fuses each run whole).
/// Returns the number of fused groups assigned.
std::size_t apply_fusion(hw::HwNetwork& net, std::size_t degree) {
  if (degree < 2) {
    return 0;
  }
  const auto consumers = net.net.consumers().value();
  std::vector<std::vector<std::size_t>> runs;
  std::vector<std::size_t> run;
  const auto flush = [&] {
    if (run.size() >= 2) {
      runs.push_back(run);
    }
    run.clear();
  };
  for (std::size_t i = 1; i < net.net.layer_count(); ++i) {
    const nn::LayerSpec& layer = net.net.layers()[i];
    const bool feature = layer.is_feature_extraction() ||
                         layer.kind == nn::LayerKind::kActivation;
    if (!feature) {
      flush();
      continue;
    }
    if (!run.empty()) {
      const auto prods = net.net.producers(i).value();
      const bool chained = i == run.back() + 1 && prods.size() == 1 &&
                           prods.front() == run.back() &&
                           consumers[run.back()].size() == 1;
      if (!chained) {
        flush();
      }
    }
    run.push_back(i);
  }
  flush();

  int group = 0;
  for (const hw::LayerHw& layer : net.hw.layers) {
    group = std::max(group, layer.pe_group + 1);
  }
  std::size_t fused_groups = 0;
  for (const std::vector<std::size_t>& indices : runs) {
    for (std::size_t u = 0; u < indices.size(); u += degree) {
      const std::size_t span = std::min(degree, indices.size() - u);
      if (span < 2) {
        continue;  // a lone tail layer keeps its dedicated PE
      }
      for (std::size_t m = 0; m < span; ++m) {
        net.hw.layers[indices[u + m]].pe_group = group;
      }
      ++group;
      ++fused_groups;
    }
  }
  return fused_groups;
}

void expect_fusion_matrix_bit_exact(const nn::Network& network,
                                    std::uint64_t seed) {
  auto weights = nn::initialize_weights(network, seed);
  ASSERT_TRUE(weights.is_ok()) << weights.status().to_string();
  auto fengine = nn::ReferenceEngine::create(network, weights.value());
  ASSERT_TRUE(fengine.is_ok());
  const auto inputs = testing::random_inputs(network, 3, seed + 1);
  const auto shapes = network.infer_shapes().value();

  for (const nn::DataType data_type :
       {nn::DataType::kFloat32, nn::DataType::kFixed16,
        nn::DataType::kFixed8}) {
    const bool fixed = nn::is_fixed_point(data_type);
    std::optional<nn::QuantizedEngine> qengine;
    if (fixed) {
      auto engine =
          nn::QuantizedEngine::create(network, weights.value(), data_type);
      ASSERT_TRUE(engine.is_ok()) << engine.status().to_string();
      qengine = std::move(engine).value();
    }
    std::vector<Tensor> expected;
    for (const Tensor& image : inputs) {
      auto oracle =
          fixed ? qengine->forward(image) : fengine.value().forward(image);
      ASSERT_TRUE(oracle.is_ok()) << oracle.status().to_string();
      expected.push_back(std::move(oracle).value());
    }

    for (const std::size_t parallel_out : {std::size_t{1}, std::size_t{2}}) {
      for (const std::size_t degree :
           {std::size_t{1}, std::size_t{2}, kWholeStage}) {
        const std::string degree_label =
            degree == kWholeStage ? "whole" : strings::format("%zu", degree);
        SCOPED_TRACE(strings::format(
            "%s po=%zu degree=%s",
            std::string(nn::to_string(data_type)).c_str(), parallel_out,
            degree_label.c_str()));
        hw::HwNetwork hw_net = hw::with_default_annotations(network);
        hw_net.hw.data_type = data_type;
        for (std::size_t i = 1; i < hw_net.hw.layers.size(); ++i) {
          hw_net.hw.layers[i].parallel_out =
              std::min(parallel_out, shapes[i].output[0]);
        }
        const std::size_t fused_groups = apply_fusion(hw_net, degree);
        ASSERT_TRUE(hw_net.validate().is_ok())
            << hw_net.validate().to_string();
        auto plan = hw::plan_accelerator(hw_net);
        ASSERT_TRUE(plan.is_ok()) << plan.status().to_string();

        auto executor = dataflow::AcceleratorExecutor::create(plan.value(),
                                                              weights.value());
        ASSERT_TRUE(executor.is_ok()) << executor.status().to_string();

        // Fast path on (the default): bit-exact against the oracle == the
        // unfused plan's outputs (the oracle is clustering-independent).
        auto outputs = executor.value().run_batch(inputs);
        ASSERT_TRUE(outputs.is_ok()) << outputs.status().to_string();
        ASSERT_EQ(outputs.value().size(), inputs.size());
        for (std::size_t i = 0; i < inputs.size(); ++i) {
          EXPECT_EQ(max_abs_diff(outputs.value()[i], expected[i]), 0.0F)
              << "fused fast path diverges on image " << i;
        }
        if (fused_groups > 0) {
          EXPECT_GT(executor.value().last_run_stats().fused_local_passes, 0U)
              << "fused plan did not exercise the PE-local fast path";
        }

        // Legacy round trip (fast path off): still bit-exact, no PE-local
        // passes. Flipping the toggle recompiles the design.
        executor.value().set_fused_pass_locality(false);
        auto roundtrip = executor.value().run_batch(inputs);
        ASSERT_TRUE(roundtrip.is_ok()) << roundtrip.status().to_string();
        for (std::size_t i = 0; i < inputs.size(); ++i) {
          EXPECT_EQ(max_abs_diff(roundtrip.value()[i], expected[i]), 0.0F)
              << "loopback round trip diverges on image " << i;
        }
        EXPECT_EQ(executor.value().last_run_stats().fused_local_passes, 0U);
      }
    }
  }
}

TEST(ExecutorFusion, Tc1MatrixBitExact) {
  expect_fusion_matrix_bit_exact(nn::make_tc1(), 211);
}

TEST(ExecutorFusion, LeNetMatrixBitExact) {
  expect_fusion_matrix_bit_exact(nn::make_lenet(), 223);
}

TEST(ExecutorFusion, TinyResnetMatrixBitExact) {
  expect_fusion_matrix_bit_exact(nn::make_tiny_resnet(), 227);
}

TEST(ExecutorFusion, FusedPlanShrinksPeCount) {
  hw::HwNetwork hw_net =
      hw::with_default_annotations(nn::make_lenet().feature_extraction_prefix());
  const std::size_t unfused_pes =
      hw::plan_accelerator(hw_net).value().pes.size();
  ASSERT_GT(apply_fusion(hw_net, 2), 0U);
  auto fused = hw::plan_accelerator(hw_net);
  ASSERT_TRUE(fused.is_ok()) << fused.status().to_string();
  EXPECT_LT(fused.value().pes.size(), unfused_pes);
}

TEST(ExecutorFusion, ToggleRecompilesAndRestoresFastPath) {
  const nn::Network network = nn::make_tc1();
  auto weights = nn::initialize_weights(network, 229);
  ASSERT_TRUE(weights.is_ok());
  hw::HwNetwork hw_net = hw::with_default_annotations(network);
  ASSERT_GT(apply_fusion(hw_net, kWholeStage), 0U);
  auto plan = hw::plan_accelerator(hw_net);
  ASSERT_TRUE(plan.is_ok());
  auto executor =
      dataflow::AcceleratorExecutor::create(plan.value(), weights.value());
  ASSERT_TRUE(executor.is_ok());
  const auto inputs = testing::random_inputs(network, 2, 233);

  ASSERT_TRUE(executor.value().run_batch(inputs).is_ok());
  const std::size_t fused_passes =
      executor.value().last_run_stats().fused_local_passes;
  EXPECT_GT(fused_passes, 0U);

  executor.value().set_fused_pass_locality(false);
  ASSERT_TRUE(executor.value().run_batch(inputs).is_ok());
  EXPECT_EQ(executor.value().last_run_stats().fused_local_passes, 0U);

  executor.value().set_fused_pass_locality(true);
  ASSERT_TRUE(executor.value().run_batch(inputs).is_ok());
  EXPECT_EQ(executor.value().last_run_stats().fused_local_passes,
            fused_passes);
}

}  // namespace
}  // namespace condor

// Unit tests for the tensor substrate.
#include <gtest/gtest.h>

#include "tensor/tensor.hpp"

namespace condor {
namespace {

TEST(Shape, ElementCountAndToString) {
  EXPECT_EQ(Shape{}.element_count(), 1u);  // rank-0 scalar
  EXPECT_EQ((Shape{3, 4, 5}).element_count(), 60u);
  EXPECT_EQ((Shape{0, 9}).element_count(), 0u);
  EXPECT_EQ((Shape{3, 32, 32}).to_string(), "(3, 32, 32)");
  EXPECT_EQ(Shape{}.to_string(), "()");
}

TEST(Shape, Equality) {
  EXPECT_EQ((Shape{2, 3}), (Shape{2, 3}));
  EXPECT_NE((Shape{2, 3}), (Shape{3, 2}));
  EXPECT_NE((Shape{2, 3}), (Shape{2, 3, 1}));
}

TEST(Tensor, FillConstruction) {
  Tensor t(Shape{2, 3}, 1.5F);
  EXPECT_EQ(t.size(), 6u);
  for (const float value : t.data()) {
    EXPECT_EQ(value, 1.5F);
  }
}

TEST(Tensor, ChwAccessorIsRowMajor) {
  Tensor t(Shape{2, 3, 4});
  t.at(1, 2, 3) = 9.0F;
  EXPECT_EQ(t[1 * 12 + 2 * 4 + 3], 9.0F);
  t.at(0, 0, 1) = 4.0F;
  EXPECT_EQ(t[1], 4.0F);
}

TEST(Tensor, Rank4AccessorMatchesFlatLayout) {
  Tensor t(Shape{2, 3, 2, 2});
  t.at4(1, 2, 1, 0) = 7.0F;
  EXPECT_EQ(t[((1 * 3 + 2) * 2 + 1) * 2 + 0], 7.0F);
}

TEST(Tensor, ReshapePreservesDataAndChecksCount) {
  Tensor t(Shape{2, 6});
  t[7] = 3.0F;
  ASSERT_TRUE(t.reshape(Shape{3, 4}).is_ok());
  EXPECT_EQ(t.shape(), (Shape{3, 4}));
  EXPECT_EQ(t[7], 3.0F);
  EXPECT_FALSE(t.reshape(Shape{5, 5}).is_ok());
}

TEST(Tensor, MaxAbsDiffAndAllclose) {
  Tensor a(Shape{4}, 1.0F);
  Tensor b(Shape{4}, 1.0F);
  EXPECT_EQ(max_abs_diff(a, b), 0.0F);
  EXPECT_TRUE(allclose(a, b));
  b[2] = 1.001F;
  EXPECT_NEAR(max_abs_diff(a, b), 0.001F, 1e-6F);
  EXPECT_FALSE(allclose(a, b, 1e-5F, 1e-5F));
  EXPECT_TRUE(allclose(a, b, 0.01F, 0.0F));
  // Shape mismatch is not close.
  EXPECT_FALSE(allclose(a, Tensor(Shape{2, 2}, 1.0F)));
}

TEST(Tensor, Argmax) {
  Tensor t(Shape{5});
  t[3] = 2.0F;
  t[1] = 1.0F;
  EXPECT_EQ(argmax(t), 3u);
  EXPECT_EQ(argmax(Tensor{}), 0u);
}

}  // namespace
}  // namespace condor

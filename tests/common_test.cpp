// Unit tests for the common substrate: status/result, strings, RNG,
// byte I/O, CRC, thread pool.
#include <gtest/gtest.h>

#include <atomic>
#include <set>

#include "common/byte_io.hpp"
#include "common/rng.hpp"
#include "common/status.hpp"
#include "common/strings.hpp"
#include "common/thread_pool.hpp"

namespace condor {
namespace {

// ---- Status / Result -----------------------------------------------------

TEST(Status, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.is_ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.to_string(), "ok");
}

TEST(Status, ErrorCarriesCodeAndMessage) {
  Status status = unsynthesizable("too big");
  EXPECT_FALSE(status.is_ok());
  EXPECT_EQ(status.code(), StatusCode::kUnsynthesizable);
  EXPECT_EQ(status.message(), "too big");
  EXPECT_EQ(status.to_string(), "unsynthesizable: too big");
}

TEST(Status, CodeNames) {
  EXPECT_EQ(to_string(StatusCode::kOk), "ok");
  EXPECT_EQ(to_string(StatusCode::kInvalidInput), "invalid-input");
  EXPECT_EQ(to_string(StatusCode::kNotFound), "not-found");
  EXPECT_EQ(to_string(StatusCode::kUnavailable), "unavailable");
}

TEST(Result, HoldsValue) {
  Result<int> result = 42;
  ASSERT_TRUE(result.is_ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_EQ(result.value_or(7), 42);
}

TEST(Result, HoldsError) {
  Result<int> result = not_found("nope");
  EXPECT_FALSE(result.is_ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(result.value_or(7), 7);
}

Result<int> parse_positive(int x) {
  if (x <= 0) {
    return invalid_input("not positive");
  }
  return x;
}

Status use_macros(int x, int& out) {
  CONDOR_ASSIGN_OR_RETURN(out, parse_positive(x));
  CONDOR_RETURN_IF_ERROR(Status::ok());
  return Status::ok();
}

TEST(Result, MacrosPropagate) {
  int out = 0;
  EXPECT_TRUE(use_macros(5, out).is_ok());
  EXPECT_EQ(out, 5);
  EXPECT_EQ(use_macros(-1, out).code(), StatusCode::kInvalidInput);
}

// ---- strings ---------------------------------------------------------------

TEST(Strings, Trim) {
  EXPECT_EQ(strings::trim("  abc \t\n"), "abc");
  EXPECT_EQ(strings::trim(""), "");
  EXPECT_EQ(strings::trim("   "), "");
  EXPECT_EQ(strings::trim("x"), "x");
}

TEST(Strings, Split) {
  auto parts = strings::split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
  EXPECT_EQ(strings::split("", ',').size(), 1u);
}

TEST(Strings, Affixes) {
  EXPECT_TRUE(strings::starts_with("condor", "con"));
  EXPECT_FALSE(strings::starts_with("con", "condor"));
  EXPECT_TRUE(strings::ends_with("file.json", ".json"));
  EXPECT_FALSE(strings::ends_with("json", "file.json"));
}

TEST(Strings, FormatAndJoin) {
  EXPECT_EQ(strings::format("%d-%s", 3, "x"), "3-x");
  EXPECT_EQ(strings::join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(strings::join({}, ","), "");
  EXPECT_EQ(strings::to_lower("AbC9"), "abc9");
  EXPECT_EQ(strings::fixed(3.14159, 2), "3.14");
}

TEST(Strings, HumanBytes) {
  EXPECT_EQ(strings::human_bytes(512), "512 B");
  EXPECT_EQ(strings::human_bytes(2048), "2.0 KiB");
  EXPECT_EQ(strings::human_bytes(3 * 1024 * 1024), "3.0 MiB");
}

// ---- Rng -------------------------------------------------------------------

TEST(Rng, DeterministicForSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  EXPECT_NE(a.next_u64(), b.next_u64());
}

TEST(Rng, BoundedStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.bounded(13), 13u);
  }
  EXPECT_EQ(rng.bounded(0), 0u);
  EXPECT_EQ(rng.bounded(1), 0u);
}

TEST(Rng, UniformInRange) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const float value = rng.uniform(-2.0F, 3.0F);
    EXPECT_GE(value, -2.0F);
    EXPECT_LT(value, 3.0F);
  }
}

TEST(Rng, NormalHasPlausibleMoments) {
  Rng rng(5);
  double sum = 0.0;
  double sum_sq = 0.0;
  constexpr int kSamples = 20000;
  for (int i = 0; i < kSamples; ++i) {
    const double value = rng.normal(0.0F, 1.0F);
    sum += value;
    sum_sq += value * value;
  }
  EXPECT_NEAR(sum / kSamples, 0.0, 0.03);
  EXPECT_NEAR(sum_sq / kSamples, 1.0, 0.05);
}

// ---- byte I/O ---------------------------------------------------------------

TEST(ByteIo, RoundTripPrimitives) {
  ByteWriter writer;
  writer.u8(0xAB);
  writer.u32le(0xDEADBEEF);
  writer.u64le(0x1122334455667788ULL);
  writer.f32le(3.5F);
  writer.f64le(-1.25);
  writer.string_bytes("hi");

  ByteReader reader(writer.view());
  EXPECT_EQ(reader.u8().value(), 0xAB);
  EXPECT_EQ(reader.u32le().value(), 0xDEADBEEFu);
  EXPECT_EQ(reader.u64le().value(), 0x1122334455667788ULL);
  EXPECT_EQ(reader.f32le().value(), 3.5F);
  EXPECT_EQ(reader.f64le().value(), -1.25);
  EXPECT_EQ(reader.string_bytes(2).value(), "hi");
  EXPECT_TRUE(reader.at_end());
}

TEST(ByteIo, TruncationIsError) {
  ByteWriter writer;
  writer.u8(1);
  ByteReader reader(writer.view());
  EXPECT_TRUE(reader.u32le().status().code() == StatusCode::kInvalidInput);
}

TEST(ByteIo, PatchBackfillsLength) {
  ByteWriter writer;
  writer.u32le(0);
  writer.string_bytes("xyz");
  ASSERT_TRUE(writer.patch_u32le(0, 3).is_ok());
  ByteReader reader(writer.view());
  EXPECT_EQ(reader.u32le().value(), 3u);
  EXPECT_FALSE(writer.patch_u32le(100, 1).is_ok());
}

TEST(ByteIo, Crc32KnownVector) {
  // CRC-32("123456789") = 0xCBF43926 (IEEE reference vector).
  const char* text = "123456789";
  const std::uint32_t crc = crc32(std::span<const std::byte>(
      reinterpret_cast<const std::byte*>(text), 9));
  EXPECT_EQ(crc, 0xCBF43926u);
  EXPECT_EQ(crc32({}), 0u);
}

TEST(ByteIo, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/condor_byte_io_test.bin";
  ByteWriter writer;
  writer.u64le(77);
  ASSERT_TRUE(write_file(path, writer.view()).is_ok());
  auto data = read_file(path);
  ASSERT_TRUE(data.is_ok());
  EXPECT_EQ(data.value().size(), 8u);
  EXPECT_FALSE(read_file(path + ".does-not-exist").is_ok());
}

// ---- ThreadPool --------------------------------------------------------------

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ParallelForCoversEveryIndexOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(257);
  pool.parallel_for(hits.size(), [&hits](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& hit : hits) {
    EXPECT_EQ(hit.load(), 1);
  }
}

TEST(ThreadPool, ZeroCountIsNoop) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](std::size_t) { FAIL() << "must not be called"; });
}

}  // namespace
}  // namespace condor

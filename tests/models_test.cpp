// Tests for the analytical models: resources, performance, timing closure,
// and the automated design space exploration.
#include <gtest/gtest.h>

#include <cmath>

#include "hw/dse.hpp"
#include "hw/performance_model.hpp"
#include "hw/resource_model.hpp"
#include "hw/timing_model.hpp"
#include "nn/models.hpp"
#include "test_util.hpp"

namespace condor::hw {
namespace {

AcceleratorPlan lenet_plan() {
  return plan_accelerator(with_default_annotations(nn::make_lenet())).value();
}

AcceleratorPlan tc1_plan() {
  return plan_accelerator(with_default_annotations(nn::make_tc1())).value();
}

// ---- Resource model ---------------------------------------------------------

TEST(ResourceModel, FifoMappingThreshold) {
  const CostModel cost;
  EXPECT_EQ(fifo_cost(0, cost).luts, 0u);
  // Shallow FIFOs use LUTRAM.
  EXPECT_EQ(fifo_cost(16, cost).bram36, 0u);
  EXPECT_GT(fifo_cost(16, cost).luts, 0u);
  EXPECT_EQ(fifo_cost(cost.fifo_lutram_threshold, cost).bram36, 0u);
  // Deep FIFOs use BRAM.
  EXPECT_GE(fifo_cost(cost.fifo_lutram_threshold + 1, cost).bram36, 1u);
  // 10k floats = 40 KB -> ceil(40960/4608) = 9 blocks.
  EXPECT_EQ(fifo_cost(10240, cost).bram36, 9u);
}

TEST(ResourceModel, LeNetClassifierDominatesBram) {
  auto report = estimate_resources(lenet_plan());
  ASSERT_TRUE(report.is_ok()) << report.status().to_string();
  // ip1 stores 400500 floats on chip: ~348 BRAM.
  std::uint64_t ip1_bram = 0;
  for (const ModuleEstimate& module : report.value().modules) {
    if (module.name.find("ip1") != std::string::npos) {
      ip1_bram = module.resources.bram36;
    }
  }
  EXPECT_GE(ip1_bram, 300u);
  EXPECT_GT(ip1_bram * 2, report.value().total.bram36);  // more than half
}

TEST(ResourceModel, Tc1TinyBramFootprint) {
  auto report = estimate_resources(tc1_plan());
  ASSERT_TRUE(report.is_ok());
  EXPECT_LT(report.value().bram_percent(aws_f1_board()), 3.0);
}

TEST(ResourceModel, DspGrowsWithParallelism) {
  HwNetwork net = with_default_annotations(nn::make_lenet());
  auto base = estimate_resources(plan_accelerator(net).value());
  ASSERT_TRUE(base.is_ok());
  net.hw.layers[1].parallel_out = 4;
  auto wide = estimate_resources(plan_accelerator(net).value());
  ASSERT_TRUE(wide.is_ok());
  EXPECT_GT(wide.value().total.dsps, base.value().total.dsps);
  EXPECT_GT(wide.value().total.luts, base.value().total.luts);
}

TEST(ResourceModel, TanhCostsDsps) {
  // TC1's conv PEs embed tanh pipelines; compare against a ReLU clone.
  nn::Network relu_tc1 = nn::make_tc1();
  for (nn::LayerSpec& layer : relu_tc1.layers()) {
    if (layer.activation == nn::Activation::kTanH) {
      layer.activation = nn::Activation::kReLU;
    }
  }
  auto tanh_report = estimate_resources(tc1_plan());
  auto relu_report =
      estimate_resources(plan_accelerator(with_default_annotations(relu_tc1)).value());
  ASSERT_TRUE(tanh_report.is_ok());
  ASSERT_TRUE(relu_report.is_ok());
  EXPECT_GT(tanh_report.value().total.dsps, relu_report.value().total.dsps + 100);
}

TEST(ResourceModel, LeNetRejectedAtPlanningOnZedboard) {
  // LeNet's on-chip classifier weights (1.6 MiB) exceed the ZedBoard's BRAM
  // budget, so the *planner* already refuses the mapping.
  HwNetwork net = with_default_annotations(nn::make_lenet(), "zedboard", 100.0);
  auto plan = plan_accelerator(net);
  ASSERT_FALSE(plan.is_ok());
  EXPECT_EQ(plan.status().code(), StatusCode::kUnsynthesizable);
}

TEST(ResourceModel, Tc1RejectedAtEstimationOnZedboard) {
  // TC1 plans fine (tiny weights) but its tanh pipelines alone exceed the
  // ZedBoard's 220 DSPs, so the resource estimate rejects the design.
  HwNetwork net = with_default_annotations(nn::make_tc1(), "zedboard", 100.0);
  auto plan = plan_accelerator(net);
  ASSERT_TRUE(plan.is_ok()) << plan.status().to_string();
  auto report = estimate_resources(plan.value());
  EXPECT_FALSE(report.is_ok());
  EXPECT_EQ(report.status().code(), StatusCode::kUnsynthesizable);
  // The unchecked variant still reports the overflow numbers.
  auto unchecked = estimate_resources_unchecked(plan.value());
  EXPECT_FALSE(unchecked.total.fits_within(plan.value().board.capacity));
}

TEST(ResourceModel, ReportFormatsUtilization) {
  auto report = estimate_resources(tc1_plan());
  ASSERT_TRUE(report.is_ok());
  const std::string text = report.value().to_string(aws_f1_board());
  EXPECT_NE(text.find("platform"), std::string::npos);
  EXPECT_NE(text.find("TOTAL"), std::string::npos);
  EXPECT_NE(text.find("utilization"), std::string::npos);
}

// ---- Performance model --------------------------------------------------------

TEST(PerformanceModel, LeNetIntervalFormulas) {
  const AcceleratorPlan plan = lenet_plan();
  auto resources = estimate_resources(plan);
  ASSERT_TRUE(resources.is_ok());
  auto perf = estimate_performance(plan, resources.value(), 180.0);
  ASSERT_TRUE(perf.is_ok()) << perf.status().to_string();
  ASSERT_EQ(perf.value().pes.size(), 6u);
  // conv1: 1 in-map * 20 out-maps * 24*24 points.
  EXPECT_EQ(perf.value().pes[0].compute_interval, 20ull * 24 * 24);
  // pool1: 20 maps * 12*12 points.
  EXPECT_EQ(perf.value().pes[1].compute_interval, 20ull * 12 * 12);
  // conv2: 20 * 50 * 8*8.
  EXPECT_EQ(perf.value().pes[2].compute_interval, 20ull * 50 * 64);
  // ip1: 800 * 500 MACs at 1/cycle.
  EXPECT_EQ(perf.value().pes[4].compute_interval, 800ull * 500);
  // The bottleneck is ip1 — LeNet is FC-bound at Table 1 settings.
  EXPECT_GE(perf.value().bottleneck_interval, 400000ull);
  // Softmax runs on the host: accelerator FLOPs exclude it.
  EXPECT_EQ(perf.value().flops_per_image,
            nn::make_lenet().total_flops().value() - 30);
}

TEST(PerformanceModel, ParallelismDividesInterval) {
  HwNetwork net = with_default_annotations(nn::make_lenet());
  net.hw.layers[3].parallel_in = 2;
  net.hw.layers[3].parallel_out = 5;
  const auto plan = plan_accelerator(net).value();
  auto resources = estimate_resources(plan);
  ASSERT_TRUE(resources.is_ok());
  auto perf = estimate_performance(plan, resources.value(), 180.0);
  ASSERT_TRUE(perf.is_ok());
  // conv2: ceil(20/2) * ceil(50/5) * 64 = 10 * 10 * 64.
  EXPECT_EQ(perf.value().pes[2].compute_interval, 6400ull);
}

TEST(PerformanceModel, BatchCyclesFormula) {
  PerformanceEstimate estimate;
  estimate.frequency_mhz = 100.0;
  estimate.bottleneck_interval = 1000;
  estimate.image_latency = 5000;
  estimate.flops_per_image = 1'000'000;
  EXPECT_EQ(estimate.batch_cycles(1), 5000ull);
  EXPECT_EQ(estimate.batch_cycles(10), 5000ull + 9000ull);
  // Mean per image decreases monotonically toward the bottleneck.
  double last = 1e300;
  for (std::uint64_t batch : {1, 2, 4, 8, 64, 1024}) {
    const double mean = estimate.mean_seconds_per_image(batch);
    EXPECT_LT(mean, last);
    last = mean;
  }
  EXPECT_NEAR(last, 1000.0 / 100e6, 1e-7);
  EXPECT_NEAR(estimate.images_per_second(), 100e3, 1.0);
  EXPECT_NEAR(estimate.gflops(), 100.0, 0.01);
}

TEST(PerformanceModel, WindowFillLatency) {
  const AcceleratorPlan plan = lenet_plan();
  auto resources = estimate_resources(plan);
  auto perf = estimate_performance(plan, resources.value(), 180.0);
  ASSERT_TRUE(perf.is_ok());
  // conv1: (5-1)*28 + 5 + module depth 12 = 129.
  EXPECT_EQ(perf.value().pes[0].fill_latency, 129ull);
}

TEST(PerformanceModel, VggSpillsAddDdrTraffic) {
  // VGG-16's early conv layers cannot stage their input set on chip (3.2M
  // floats at conv1_2): the resource model flags the spill and the
  // performance model charges the re-streamed input as DDR traffic.
  const auto plan = plan_accelerator(with_default_annotations(
                        nn::make_vgg16().feature_extraction_prefix()))
                        .value();
  auto report = estimate_resources(plan);
  ASSERT_TRUE(report.is_ok());
  std::size_t spilled = 0;
  for (const bool spill : report.value().spills_to_ddr) {
    spilled += spill ? 1 : 0;
  }
  EXPECT_GT(spilled, 0u);
  auto perf = estimate_performance(plan, report.value(), 185.0);
  ASSERT_TRUE(perf.is_ok());
  // conv1_2 (PE index 1) re-streams its 12.8 MiB input once per output map:
  // far more traffic than its 144 KiB of weights alone.
  EXPECT_TRUE(report.value().spills_to_ddr[1]);
  EXPECT_GT(perf.value().pes[1].ddr_bytes_per_image, 100ull << 20);
  EXPECT_GT(perf.value().pes[1].memory_interval, 0u);
  // LeNet never spills (tiny maps).
  const auto lenet = lenet_plan();
  auto lenet_report = estimate_resources(lenet);
  ASSERT_TRUE(lenet_report.is_ok());
  for (const bool spill : lenet_report.value().spills_to_ddr) {
    EXPECT_FALSE(spill);
  }
}

TEST(PerformanceModel, RejectsBadArguments) {
  const AcceleratorPlan plan = lenet_plan();
  auto resources = estimate_resources(plan);
  EXPECT_FALSE(estimate_performance(plan, resources.value(), 0.0).is_ok());
  ResourceReport mismatched = resources.value();
  mismatched.spills_to_ddr.pop_back();
  EXPECT_FALSE(estimate_performance(plan, mismatched, 100.0).is_ok());
}

// ---- Timing closure ------------------------------------------------------------

TEST(TimingModel, PaperClocksReproduced) {
  // TC1 closes at 100 MHz (tanh pipelines), LeNet at 180 MHz (BRAM pressure).
  auto tc1 = tc1_plan();
  auto lenet = lenet_plan();
  const double tc1_mhz =
      achieved_frequency_mhz(tc1, estimate_resources(tc1).value());
  const double lenet_mhz =
      achieved_frequency_mhz(lenet, estimate_resources(lenet).value());
  EXPECT_DOUBLE_EQ(tc1_mhz, 100.0);
  EXPECT_DOUBLE_EQ(lenet_mhz, 180.0);
}

TEST(TimingModel, QuantizedToClockSteps) {
  auto plan = lenet_plan();
  auto report = estimate_resources(plan).value();
  const TimingModel model;
  const double mhz = achieved_frequency_mhz(plan, report, model);
  EXPECT_EQ(std::fmod(mhz, model.quantum_mhz), 0.0);
}

TEST(TimingModel, TargetCapsAchieved) {
  HwNetwork net = with_default_annotations(nn::make_lenet(), "aws-f1", 100.0);
  auto plan = plan_accelerator(net).value();
  auto report = estimate_resources(plan).value();
  EXPECT_LE(achieved_frequency_mhz(plan, report), 100.0);
}

TEST(TimingModel, WiderUnrollsSlowTheClock) {
  HwNetwork net = with_default_annotations(nn::make_lenet(), "aws-f1", 250.0);
  auto narrow = plan_accelerator(net).value();
  net.hw.layers[3].parallel_out = 10;
  auto wide = plan_accelerator(net).value();
  EXPECT_LT(pe_fmax_mhz(wide, 2), pe_fmax_mhz(narrow, 2));
}

// ---- Design space exploration ---------------------------------------------------

TEST(Dse, ImprovesLeNetFeatures) {
  HwNetwork net = with_default_annotations(
      nn::make_lenet().feature_extraction_prefix(), "aws-f1", 250.0);
  auto result = explore(net);
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  ASSERT_GE(result.value().trajectory.size(), 2u);
  EXPECT_GT(result.value().best.gflops(),
            result.value().trajectory.front().gflops() * 2.0);
  EXPECT_GE(result.value().points_feasible, 2u);
}

TEST(Dse, RespectsUtilizationHeadroom) {
  HwNetwork net = with_default_annotations(
      nn::make_lenet().feature_extraction_prefix(), "aws-f1", 250.0);
  DseOptions options;
  options.max_utilization = 0.30;
  auto result = explore(net, options);
  ASSERT_TRUE(result.is_ok());
  EXPECT_LE(result.value().best.resources.total.max_utilization(
                aws_f1_board().capacity),
            0.30);
}

TEST(Dse, EvaluateRejectsOverUtilization) {
  HwNetwork net = with_default_annotations(nn::make_lenet());
  DseOptions options;
  options.max_utilization = 0.05;  // platform alone exceeds this
  auto point = evaluate_design_point(net, options);
  EXPECT_FALSE(point.is_ok());
  EXPECT_EQ(point.status().code(), StatusCode::kUnsynthesizable);
}

TEST(Dse, TrajectoryGflopsBestIsMax) {
  HwNetwork net = with_default_annotations(
      nn::make_tc1().feature_extraction_prefix(), "aws-f1", 250.0);
  auto result = explore(net);
  ASSERT_TRUE(result.is_ok());
  double max_seen = 0.0;
  for (const DsePoint& point : result.value().trajectory) {
    max_seen = std::max(max_seen, point.gflops());
  }
  EXPECT_DOUBLE_EQ(result.value().best.gflops(), max_seen);
}

}  // namespace
}  // namespace condor::hw

// Unit tests for the weight store: initialization, validation, and the
// external weight-file format (paper §3.1.1's runtime-loaded weights).
#include <gtest/gtest.h>
#include <cmath>


#include "nn/models.hpp"
#include "nn/weights.hpp"

namespace condor::nn {
namespace {

TEST(WeightInit, DeterministicPerSeed) {
  const Network lenet = make_lenet();
  auto a = initialize_weights(lenet, 42);
  auto b = initialize_weights(lenet, 42);
  auto c = initialize_weights(lenet, 43);
  ASSERT_TRUE(a.is_ok());
  ASSERT_TRUE(b.is_ok());
  ASSERT_TRUE(c.is_ok());
  const Tensor& wa = a.value().find("conv1")->weights;
  const Tensor& wb = b.value().find("conv1")->weights;
  const Tensor& wc = c.value().find("conv1")->weights;
  EXPECT_EQ(max_abs_diff(wa, wb), 0.0F);
  EXPECT_GT(max_abs_diff(wa, wc), 0.0F);
}

TEST(WeightInit, GlorotBoundsRespected) {
  const Network lenet = make_lenet();
  auto store = initialize_weights(lenet, 1);
  ASSERT_TRUE(store.is_ok());
  // conv1: fan_in = 25, fan_out = 20 -> limit = sqrt(6/45) ~= 0.365.
  const float limit = std::sqrt(6.0F / 45.0F);
  for (const float w : store.value().find("conv1")->weights.data()) {
    EXPECT_LE(std::fabs(w), limit);
  }
  // Biases start at zero.
  for (const float b : store.value().find("conv1")->bias.data()) {
    EXPECT_EQ(b, 0.0F);
  }
}

TEST(WeightStore, ValidateAgainstDetectsProblems) {
  const Network lenet = make_lenet();
  auto store = initialize_weights(lenet, 2);
  ASSERT_TRUE(store.is_ok());
  ASSERT_TRUE(store.value().validate_against(lenet).is_ok());

  // Missing layer.
  WeightStore empty;
  EXPECT_EQ(empty.validate_against(lenet).code(), StatusCode::kNotFound);

  // Wrong weight shape.
  WeightStore bad = store.value();
  LayerParameters params;
  params.weights = Tensor(Shape{20, 1, 3, 3});  // should be 5x5
  params.bias = Tensor(Shape{20});
  bad.set("conv1", std::move(params));
  EXPECT_EQ(bad.validate_against(lenet).code(), StatusCode::kInvalidInput);
}

TEST(WeightFile, SerializeDeserializeRoundTrip) {
  const Network tc1 = make_tc1();
  auto store = initialize_weights(tc1, 3);
  ASSERT_TRUE(store.is_ok());
  const auto bytes = store.value().serialize();
  auto restored = WeightStore::deserialize(bytes);
  ASSERT_TRUE(restored.is_ok()) << restored.status().to_string();
  EXPECT_EQ(restored.value().layer_count(), store.value().layer_count());
  for (const auto& [name, params] : store.value().all()) {
    const LayerParameters* other = restored.value().find(name);
    ASSERT_NE(other, nullptr) << name;
    EXPECT_EQ(max_abs_diff(params.weights, other->weights), 0.0F);
    if (!params.bias.empty()) {
      EXPECT_EQ(max_abs_diff(params.bias, other->bias), 0.0F);
    }
  }
}

TEST(WeightFile, CorruptionDetectedByCrc) {
  const Network tc1 = make_tc1();
  auto store = initialize_weights(tc1, 4);
  ASSERT_TRUE(store.is_ok());
  auto bytes = store.value().serialize();
  // Flip a byte inside the first entry payload (past the 8-byte header).
  bytes[40] ^= std::byte{0xFF};
  auto restored = WeightStore::deserialize(bytes);
  ASSERT_FALSE(restored.is_ok());
  EXPECT_NE(restored.status().message().find("CRC"), std::string::npos);
}

TEST(WeightFile, RejectsGarbage) {
  std::vector<std::byte> garbage(64, std::byte{0x5A});
  EXPECT_FALSE(WeightStore::deserialize(garbage).is_ok());
  EXPECT_FALSE(WeightStore::deserialize({}).is_ok());
}

TEST(WeightFile, SaveLoadFile) {
  const Network tc1 = make_tc1();
  auto store = initialize_weights(tc1, 5);
  ASSERT_TRUE(store.is_ok());
  const std::string path = ::testing::TempDir() + "/tc1_weights_test.bin";
  ASSERT_TRUE(store.value().save(path).is_ok());
  auto loaded = WeightStore::load(path);
  ASSERT_TRUE(loaded.is_ok());
  EXPECT_TRUE(loaded.value().validate_against(tc1).is_ok());
}

TEST(WeightFile, BiaslessLayerRoundTrips) {
  Network net("nobias");
  LayerSpec input;
  input.name = "data";
  input.kind = LayerKind::kInput;
  input.input_channels = 1;
  input.input_height = 4;
  input.input_width = 4;
  net.add(input);
  LayerSpec conv;
  conv.name = "conv";
  conv.kind = LayerKind::kConvolution;
  conv.num_output = 2;
  conv.kernel_h = conv.kernel_w = 3;
  conv.has_bias = false;
  net.add(conv);

  auto store = initialize_weights(net, 6);
  ASSERT_TRUE(store.is_ok());
  EXPECT_TRUE(store.value().find("conv")->bias.empty());
  auto restored = WeightStore::deserialize(store.value().serialize());
  ASSERT_TRUE(restored.is_ok());
  EXPECT_TRUE(restored.value().find("conv")->bias.empty());
  EXPECT_TRUE(restored.value().validate_against(net).is_ok());
}

}  // namespace
}  // namespace condor::nn

// Tests for the ONNX frontend extension: wire codec round trips, importer
// op coverage, and equivalence with the Caffe path.
#include <gtest/gtest.h>

#include "condor/flow.hpp"
#include "nn/models.hpp"
#include "nn/reference.hpp"
#include "nn/weights.hpp"
#include "onnx/export.hpp"
#include "onnx/import.hpp"
#include "test_util.hpp"

namespace condor::onnx {
namespace {

TEST(OnnxPb, ModelRoundTrip) {
  ModelProto model;
  model.producer_name = "test";
  model.opset_import.push_back({"", 13});
  model.graph.name = "g";
  model.graph.input.push_back({"x", {1, 3, 8, 8}});
  model.graph.output.push_back({"y", {1, 2}});
  NodeProto node;
  node.op_type = "Conv";
  node.name = "c";
  node.input = {"x", "w"};
  node.output = {"y"};
  AttributeProto kernel;
  kernel.name = "kernel_shape";
  kernel.type = AttributeProto::Type::kInts;
  kernel.ints = {3, 3};
  node.attribute.push_back(kernel);
  model.graph.node.push_back(node);
  TensorProto weights;
  weights.name = "w";
  weights.dims = {2, 3, 3, 3};
  weights.float_data.assign(54, 0.5F);
  model.graph.initializer.push_back(weights);

  auto restored = decode_model(encode_model(model));
  ASSERT_TRUE(restored.is_ok()) << restored.status().to_string();
  EXPECT_EQ(restored.value().producer_name, "test");
  ASSERT_EQ(restored.value().opset_import.size(), 1u);
  EXPECT_EQ(restored.value().opset_import[0].version, 13);
  ASSERT_EQ(restored.value().graph.node.size(), 1u);
  EXPECT_EQ(restored.value().graph.node[0].op_type, "Conv");
  ASSERT_NE(restored.value().graph.node[0].find_attribute("kernel_shape"),
            nullptr);
  EXPECT_EQ(restored.value().graph.node[0].find_attribute("kernel_shape")->ints,
            (std::vector<std::int64_t>{3, 3}));
  EXPECT_EQ(restored.value().graph.input[0].shape,
            (std::vector<std::int64_t>{1, 3, 8, 8}));
  ASSERT_EQ(restored.value().graph.initializer.size(), 1u);
  EXPECT_EQ(restored.value().graph.initializer[0].values().value().size(), 54u);
}

TEST(OnnxPb, RawDataAndFloatDataEquivalent) {
  TensorProto raw;
  raw.dims = {2};
  raw.raw_data.resize(8);
  const float values[2] = {1.5F, -2.0F};
  std::memcpy(raw.raw_data.data(), values, 8);
  EXPECT_EQ(raw.values().value(), (std::vector<float>{1.5F, -2.0F}));

  TensorProto ragged;
  ragged.raw_data.resize(5);
  EXPECT_FALSE(ragged.values().is_ok());

  TensorProto not_float;
  not_float.data_type = 7;  // INT64
  EXPECT_FALSE(not_float.values().is_ok());
}

TEST(OnnxPb, GarbageRejected) {
  std::vector<std::byte> garbage(16, std::byte{0x99});
  EXPECT_FALSE(decode_model(garbage).is_ok());
  EXPECT_FALSE(decode_model({}).is_ok());  // no graph
}

TEST(OnnxImport, ExportImportRoundTripAllModels) {
  for (const nn::Network& model : {nn::make_tc1(), nn::make_lenet(),
                                   nn::make_tiny_resnet(),
                                   nn::make_lenet_skip()}) {
    auto weights = nn::initialize_weights(model, 13);
    ASSERT_TRUE(weights.is_ok());
    auto bytes = to_onnx(model, weights.value());
    ASSERT_TRUE(bytes.is_ok()) << model.name();
    auto imported = load_onnx_model(bytes.value());
    ASSERT_TRUE(imported.is_ok())
        << model.name() << ": " << imported.status().to_string();

    // Same shapes and kinds — and for DAG models, the same topology.
    ASSERT_EQ(imported.value().network.layer_count(), model.layer_count());
    EXPECT_EQ(imported.value().network.join_count(), model.join_count());
    auto original_shapes = model.infer_shapes().value();
    auto round_shapes = imported.value().network.infer_shapes().value();
    for (std::size_t i = 0; i < model.layer_count(); ++i) {
      EXPECT_EQ(round_shapes[i].output, original_shapes[i].output)
          << model.name() << " layer " << i;
      EXPECT_EQ(imported.value().network.layers()[i].activation,
                model.layers()[i].activation);
    }
    // Identical inference results.
    auto engine_a = nn::ReferenceEngine::create(model, weights.value());
    auto engine_b = nn::ReferenceEngine::create(imported.value().network,
                                                imported.value().weights);
    ASSERT_TRUE(engine_a.is_ok());
    ASSERT_TRUE(engine_b.is_ok());
    const auto inputs = condor::testing::random_inputs(model, 2, 17);
    for (const Tensor& input : inputs) {
      EXPECT_EQ(max_abs_diff(engine_a.value().forward(input).value(),
                             engine_b.value().forward(input).value()),
                0.0F);
    }
  }
}

TEST(OnnxImport, MatMulAddFoldsIntoFc) {
  // Hand-build a MatMul + Add graph (the Gemm-less FC idiom).
  ModelProto model;
  model.graph.name = "mlp";
  model.graph.input.push_back({"x", {1, 1, 2, 2}});
  // Flatten -> MatMul([4,3]) -> Add(bias).
  NodeProto flatten;
  flatten.op_type = "Flatten";
  flatten.name = "flat";
  flatten.input = {"x"};
  flatten.output = {"flat"};
  model.graph.node.push_back(flatten);

  NodeProto matmul;
  matmul.op_type = "MatMul";
  matmul.name = "mm";
  matmul.input = {"flat", "W"};
  matmul.output = {"mm"};
  model.graph.node.push_back(matmul);
  TensorProto weight;
  weight.name = "W";
  weight.dims = {4, 3};  // [in, out]
  for (int i = 0; i < 12; ++i) {
    weight.float_data.push_back(static_cast<float>(i));
  }
  model.graph.initializer.push_back(weight);

  NodeProto add;
  add.op_type = "Add";
  add.name = "bias";
  add.input = {"mm", "B"};
  add.output = {"y"};
  model.graph.node.push_back(add);
  TensorProto bias;
  bias.name = "B";
  bias.dims = {3};
  bias.float_data = {10.0F, 20.0F, 30.0F};
  model.graph.initializer.push_back(bias);

  auto imported = import_model(model);
  ASSERT_TRUE(imported.is_ok()) << imported.status().to_string();
  ASSERT_EQ(imported.value().network.layer_count(), 2u);  // input + fc
  const nn::LayerSpec& fc = imported.value().network.layers()[1];
  EXPECT_EQ(fc.kind, nn::LayerKind::kInnerProduct);
  EXPECT_EQ(fc.num_output, 3u);
  EXPECT_TRUE(fc.has_bias);
  // Weight transposed to [out, in]: W[out=1][in=2] == original [2][1] == 7.
  const nn::LayerParameters* params = imported.value().weights.find(fc.name);
  ASSERT_NE(params, nullptr);
  EXPECT_EQ(params->weights.shape(), (Shape{3, 4}));
  EXPECT_EQ(params->weights[1 * 4 + 2], 7.0F);
  EXPECT_EQ(params->bias[2], 30.0F);

  // Functional check against a hand computation: x = [1,1,1,1] ->
  // out[o] = sum_i W[i][o] + bias[o].
  auto engine = nn::ReferenceEngine::create(imported.value().network,
                                            imported.value().weights);
  ASSERT_TRUE(engine.is_ok());
  Tensor input(Shape{1, 2, 2}, 1.0F);
  const Tensor out = engine.value().forward(input).value();
  EXPECT_EQ(out[0], 0.0F + 3 + 6 + 9 + 10.0F);
  EXPECT_EQ(out[1], 1.0F + 4 + 7 + 10 + 20.0F);
  EXPECT_EQ(out[2], 2.0F + 5 + 8 + 11 + 30.0F);
}

TEST(OnnxImport, UnsupportedConstructsRejected) {
  // Grouped convolution.
  {
    ModelProto model;
    model.graph.input.push_back({"x", {1, 2, 4, 4}});
    NodeProto conv;
    conv.op_type = "Conv";
    conv.name = "c";
    conv.input = {"x", "W"};
    conv.output = {"y"};
    AttributeProto group;
    group.name = "group";
    group.type = AttributeProto::Type::kInt;
    group.i = 2;
    conv.attribute.push_back(group);
    model.graph.node.push_back(conv);
    TensorProto weight;
    weight.name = "W";
    weight.dims = {2, 1, 3, 3};
    weight.float_data.assign(18, 0.0F);
    model.graph.initializer.push_back(weight);
    auto imported = import_model(model);
    ASSERT_FALSE(imported.is_ok());
    EXPECT_EQ(imported.status().code(), StatusCode::kUnsupported);
  }
  // Unknown op.
  {
    ModelProto model;
    model.graph.input.push_back({"x", {1, 1, 4, 4}});
    NodeProto node;
    node.op_type = "LSTM";
    node.name = "l";
    node.input = {"x"};
    node.output = {"y"};
    model.graph.node.push_back(node);
    auto imported = import_model(model);
    ASSERT_FALSE(imported.is_ok());
    EXPECT_EQ(imported.status().code(), StatusCode::kUnsupported);
  }
  // Broken chain.
  {
    ModelProto model;
    model.graph.input.push_back({"x", {1, 1, 4, 4}});
    NodeProto node;
    node.op_type = "Relu";
    node.name = "r";
    node.input = {"not_x"};
    node.output = {"y"};
    model.graph.node.push_back(node);
    EXPECT_FALSE(import_model(model).is_ok());
  }
}

TEST(OnnxImport, UnsupportedOpErrorNamesOpAndNode) {
  // The catch-all importer error must identify both the op type and the
  // node so users can locate the offending construct in large graphs.
  ModelProto model;
  model.graph.input.push_back({"x", {1, 1, 4, 4}});
  NodeProto node;
  node.op_type = "LSTM";
  node.name = "rnn1";
  node.input = {"x"};
  node.output = {"y"};
  model.graph.node.push_back(node);
  auto imported = import_model(model);
  ASSERT_FALSE(imported.is_ok());
  EXPECT_EQ(imported.status().code(), StatusCode::kUnsupported);
  const std::string message = imported.status().to_string();
  EXPECT_NE(message.find("ONNX op 'LSTM'"), std::string::npos) << message;
  EXPECT_NE(message.find("node 'rnn1'"), std::string::npos) << message;
}

TEST(OnnxImport, BatchNormalizationFoldsIntoConv) {
  // Conv (1x1, 2 output channels, no bias) followed by BatchNormalization
  // with epsilon 0 and hand-picked statistics:
  //   factor[0] = gamma/sqrt(var) = 2/2 = 1,  factor[1] = 3/0.5 = 6
  //   w'[0] = 1*1 = 1,  w'[1] = 2*6 = 12
  //   b'[0] = (0-1)*1 + 0.5 = -0.5,  b'[1] = (0+1)*6 - 1 = 5
  ModelProto model;
  model.graph.input.push_back({"x", {1, 1, 2, 2}});
  NodeProto conv;
  conv.op_type = "Conv";
  conv.name = "c";
  conv.input = {"x", "W"};
  conv.output = {"c_out"};
  model.graph.node.push_back(conv);
  TensorProto weight;
  weight.name = "W";
  weight.dims = {2, 1, 1, 1};
  weight.float_data = {1.0F, 2.0F};
  model.graph.initializer.push_back(weight);

  NodeProto bn;
  bn.op_type = "BatchNormalization";
  bn.name = "bn";
  bn.input = {"c_out", "gamma", "beta", "mean", "var"};
  bn.output = {"y"};
  AttributeProto epsilon;
  epsilon.name = "epsilon";
  epsilon.type = AttributeProto::Type::kFloat;
  epsilon.f = 0.0F;
  bn.attribute.push_back(epsilon);
  model.graph.node.push_back(bn);
  const auto stat = [&model](const char* name, std::vector<float> values) {
    TensorProto tensor;
    tensor.name = name;
    tensor.dims = {2};
    tensor.float_data = std::move(values);
    model.graph.initializer.push_back(tensor);
  };
  stat("gamma", {2.0F, 3.0F});
  stat("beta", {0.5F, -1.0F});
  stat("mean", {1.0F, -1.0F});
  stat("var", {4.0F, 0.25F});

  auto imported = import_model(model);
  ASSERT_TRUE(imported.is_ok()) << imported.status().to_string();
  // The BN node vanished into the conv; no extra layer was created.
  ASSERT_EQ(imported.value().network.layer_count(), 2u);
  const nn::LayerSpec& folded = imported.value().network.layers()[1];
  EXPECT_EQ(folded.kind, nn::LayerKind::kConvolution);
  EXPECT_TRUE(folded.has_bias);
  const nn::LayerParameters* params = imported.value().weights.find("c");
  ASSERT_NE(params, nullptr);
  EXPECT_EQ(params->weights[0], 1.0F);
  EXPECT_EQ(params->weights[1], 12.0F);
  EXPECT_EQ(params->bias[0], -0.5F);
  EXPECT_EQ(params->bias[1], 5.0F);
}

TEST(OnnxImport, LeakyReluAlphaMustMatchDatapathSlope) {
  // The fixed-point datapaths bake in the Darknet 0.1 slope; any other
  // alpha cannot be represented and must be rejected with the got-value.
  ModelProto model;
  model.graph.input.push_back({"x", {1, 1, 4, 4}});
  NodeProto leaky;
  leaky.op_type = "LeakyRelu";
  leaky.name = "act";
  leaky.input = {"x"};
  leaky.output = {"y"};
  AttributeProto alpha;
  alpha.name = "alpha";
  alpha.type = AttributeProto::Type::kFloat;
  alpha.f = 0.2F;
  leaky.attribute.push_back(alpha);
  model.graph.node.push_back(leaky);
  auto imported = import_model(model);
  ASSERT_FALSE(imported.is_ok());
  EXPECT_EQ(imported.status().code(), StatusCode::kUnsupported);
  EXPECT_NE(imported.status().to_string().find("alpha must be 0.1"),
            std::string::npos)
      << imported.status().to_string();

  // Absent alpha means the ONNX default 0.01 — also not representable.
  model.graph.node[0].attribute.clear();
  EXPECT_FALSE(import_model(model).is_ok());
}

TEST(OnnxImport, ResidualAndRouteConstructs) {
  // x -> Conv c1 -+-> Add(c1, x) -> Concat(add, c1) axis=1 -> Upsample x2.
  ModelProto model;
  model.graph.input.push_back({"x", {1, 2, 4, 4}});
  NodeProto conv;
  conv.op_type = "Conv";
  conv.name = "c1";
  conv.input = {"x", "W"};
  conv.output = {"c1_out"};
  model.graph.node.push_back(conv);
  TensorProto weight;
  weight.name = "W";
  weight.dims = {2, 2, 1, 1};
  weight.float_data = {1.0F, 0.0F, 0.0F, 1.0F};
  model.graph.initializer.push_back(weight);

  NodeProto add;
  add.op_type = "Add";
  add.name = "res";
  add.input = {"c1_out", "x"};
  add.output = {"res_out"};
  model.graph.node.push_back(add);

  NodeProto concat;
  concat.op_type = "Concat";
  concat.name = "route";
  concat.input = {"res_out", "c1_out"};
  concat.output = {"route_out"};
  AttributeProto axis;
  axis.name = "axis";
  axis.type = AttributeProto::Type::kInt;
  axis.i = 1;
  concat.attribute.push_back(axis);
  model.graph.node.push_back(concat);

  NodeProto upsample;
  upsample.op_type = "Upsample";
  upsample.name = "up";
  upsample.input = {"route_out", "up_scales"};
  upsample.output = {"y"};
  model.graph.node.push_back(upsample);
  TensorProto scales;
  scales.name = "up_scales";
  scales.dims = {4};
  scales.float_data = {1.0F, 1.0F, 2.0F, 2.0F};
  model.graph.initializer.push_back(scales);

  auto imported = import_model(model);
  ASSERT_TRUE(imported.is_ok()) << imported.status().to_string();
  const nn::Network& network = imported.value().network;
  ASSERT_EQ(network.layer_count(), 5u);  // input, conv, add, concat, upsample
  EXPECT_EQ(network.join_count(), 2u);
  EXPECT_EQ(network.layers()[2].kind, nn::LayerKind::kEltwiseAdd);
  auto add_producers = network.producers(2);
  ASSERT_TRUE(add_producers.is_ok());
  EXPECT_EQ(add_producers.value(), (std::vector<std::size_t>{1, 0}));
  EXPECT_EQ(network.layers()[3].kind, nn::LayerKind::kConcat);
  auto concat_producers = network.producers(3);
  ASSERT_TRUE(concat_producers.is_ok());
  EXPECT_EQ(concat_producers.value(), (std::vector<std::size_t>{2, 1}));
  EXPECT_EQ(network.layers()[4].kind, nn::LayerKind::kUpsample);
  EXPECT_EQ(network.layers()[4].stride, 2u);
  auto shapes = network.infer_shapes();
  ASSERT_TRUE(shapes.is_ok()) << shapes.status().to_string();
  EXPECT_EQ(shapes.value().back().output, (Shape{4, 8, 8}));

  // Non-channel Concat axes are rejected.
  model.graph.node[2].attribute[0].i = 2;
  EXPECT_FALSE(import_model(model).is_ok());
  model.graph.node[2].attribute[0].i = 1;
  // Fractional Upsample scales are rejected.
  model.graph.initializer[1].float_data = {1.0F, 1.0F, 1.5F, 1.5F};
  EXPECT_FALSE(import_model(model).is_ok());
}

TEST(OnnxFlow, FrontendAcceptsOnnx) {
  const nn::Network model = nn::make_tc1();
  auto weights = nn::initialize_weights(model, 19);
  ASSERT_TRUE(weights.is_ok());
  condorflow::FrontendInput input;
  input.onnx_bytes = to_onnx(model, weights.value()).value();
  auto flow = condorflow::Flow::run(input, condorflow::FlowOptions{});
  ASSERT_TRUE(flow.is_ok()) << flow.status().to_string();
  EXPECT_EQ(flow.value().network.net.name(), "tc1");
  EXPECT_EQ(flow.value().plan.pes.size(), 5u);
  // Two sources at once is rejected.
  input.network_json_text = "{}";
  EXPECT_FALSE(condorflow::Flow::run(input, condorflow::FlowOptions{}).is_ok());
}

}  // namespace
}  // namespace condor::onnx

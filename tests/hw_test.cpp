// Tests for the hardware core logic: board database, the Condor JSON
// network representation, and the accelerator planner (filter chains,
// non-uniform FIFO sizing, PE fusion, unsynthesizable designs).
#include <gtest/gtest.h>

#include "hw/accel_plan.hpp"
#include "hw/hw_ir.hpp"
#include "nn/models.hpp"
#include "test_util.hpp"

namespace condor::hw {
namespace {

TEST(Board, DatabaseLookup) {
  EXPECT_EQ(find_board("aws-f1").value().part, "xcvu9p-flgb2104-2-i");
  EXPECT_EQ(find_board("AWS-F1").value().id, "aws-f1");  // case-insensitive
  EXPECT_TRUE(find_board("aws-f1").value().cloud);
  EXPECT_FALSE(find_board("zedboard").value().cloud);
  EXPECT_FALSE(find_board("virtex2").is_ok());
  EXPECT_EQ(aws_f1_board().capacity.dsps, 6840u);
}

TEST(Board, ResourceArithmetic) {
  Resources a{10, 20, 2, 1};
  Resources b{5, 5, 5, 5};
  const Resources sum = a + b;
  EXPECT_EQ(sum.luts, 15u);
  EXPECT_EQ(sum.dsps, 7u);
  EXPECT_EQ(a.scaled(3).ffs, 60u);
  EXPECT_TRUE(a.fits_within(Resources{10, 20, 2, 1}));
  EXPECT_FALSE(sum.fits_within(Resources{10, 20, 2, 1}));
  EXPECT_DOUBLE_EQ((Resources{50, 0, 0, 0}).max_utilization({100, 10, 10, 10}), 0.5);
}

TEST(HwIr, JsonRoundTrip) {
  HwNetwork original = with_default_annotations(nn::make_lenet(), "zc706", 150.0);
  original.hw.layers[1].parallel_out = 4;
  original.hw.layers[3].parallel_in = 2;
  original.hw.layers[3].pe_group = 1;
  original.hw.layers[4].pe_group = 1;

  const std::string text = to_json_text(original);
  auto restored = from_json_text(text);
  ASSERT_TRUE(restored.is_ok()) << restored.status().to_string();
  EXPECT_EQ(restored.value().net.name(), "lenet");
  EXPECT_EQ(restored.value().hw.board_id, "zc706");
  EXPECT_DOUBLE_EQ(restored.value().hw.target_frequency_mhz, 150.0);
  ASSERT_EQ(restored.value().net.layer_count(), original.net.layer_count());
  EXPECT_EQ(restored.value().hw.layers[1].parallel_out, 4u);
  EXPECT_EQ(restored.value().hw.layers[3].parallel_in, 2u);
  EXPECT_EQ(restored.value().hw.layers[3].pe_group, 1);
  auto original_shapes = original.net.infer_shapes().value();
  auto restored_shapes = restored.value().net.infer_shapes().value();
  for (std::size_t i = 0; i < original_shapes.size(); ++i) {
    EXPECT_EQ(restored_shapes[i].output, original_shapes[i].output) << i;
  }
}

TEST(HwIr, ValidateRejectsBadAnnotations) {
  // Unknown board.
  {
    HwNetwork net = with_default_annotations(nn::make_tc1(), "not-a-board");
    EXPECT_FALSE(net.validate().is_ok());
  }
  // Frequency above the board ceiling.
  {
    HwNetwork net = with_default_annotations(nn::make_tc1(), "zedboard", 400.0);
    EXPECT_FALSE(net.validate().is_ok());
  }
  // parallel_out exceeding the output map count.
  {
    HwNetwork net = with_default_annotations(nn::make_tc1());
    net.hw.layers[1].parallel_out = 64;  // conv1 has 6 maps
    EXPECT_FALSE(net.validate().is_ok());
  }
  // Zero parallelism.
  {
    HwNetwork net = with_default_annotations(nn::make_tc1());
    net.hw.layers[1].parallel_in = 0;
    EXPECT_FALSE(net.validate().is_ok());
  }
  // Non-contiguous PE group.
  {
    HwNetwork net = with_default_annotations(nn::make_lenet());
    net.hw.layers[1].pe_group = 0;
    net.hw.layers[3].pe_group = 0;  // skips layer 2
    EXPECT_FALSE(net.validate().is_ok());
  }
  // Group mixing feature and classifier layers.
  {
    HwNetwork net = with_default_annotations(nn::make_lenet());
    net.hw.layers[4].pe_group = 2;  // pool2
    net.hw.layers[5].pe_group = 2;  // ip1
    EXPECT_FALSE(net.validate().is_ok());
  }
}

TEST(HwIr, FromJsonErrors) {
  EXPECT_FALSE(from_json_text("[]").is_ok());
  EXPECT_FALSE(from_json_text("{}").is_ok());  // no input
  EXPECT_FALSE(
      from_json_text(R"({"input": {"channels": 1, "height": 8, "width": 8}})")
          .is_ok());  // no layers array
  // A layer entry of kind input is rejected.
  EXPECT_FALSE(from_json_text(R"({
    "input": {"channels": 1, "height": 8, "width": 8},
    "layers": [{"name": "x", "type": "input"}]
  })")
                   .is_ok());
}

// ---- Filter chains (non-uniform memory partitioning) ---------------------

TEST(FilterChain, LexicographicallyInverseOrder) {
  const auto chain = plan_filter_chain(3, 3, 10);
  ASSERT_EQ(chain.size(), 9u);
  // Head = newest access (2,2); tail = oldest (0,0).
  EXPECT_EQ(chain.front().access.ky, 2u);
  EXPECT_EQ(chain.front().access.kx, 2u);
  EXPECT_EQ(chain.back().access.ky, 0u);
  EXPECT_EQ(chain.back().access.kx, 0u);
  // Strictly decreasing in lexicographic order.
  for (std::size_t i = 0; i + 1 < chain.size(); ++i) {
    const auto& a = chain[i].access;
    const auto& b = chain[i + 1].access;
    EXPECT_TRUE(a.ky > b.ky || (a.ky == b.ky && a.kx > b.kx));
  }
}

TEST(FilterChain, FifoDepthsAreSpatialDistances) {
  const std::size_t map_w = 28;
  const auto chain = plan_filter_chain(5, 5, map_w);
  ASSERT_EQ(chain.size(), 25u);
  for (std::size_t i = 0; i + 1 < chain.size(); ++i) {
    const auto& a = chain[i].access;
    const auto& b = chain[i + 1].access;
    const std::size_t expected =
        (a.ky * map_w + a.kx) - (b.ky * map_w + b.kx);
    EXPECT_EQ(chain[i].fifo_to_next_depth, expected) << i;
    // Within a row the distance is 1; across rows map_w - (Kw - 1).
    if (a.ky == b.ky) {
      EXPECT_EQ(chain[i].fifo_to_next_depth, 1u);
    } else {
      EXPECT_EQ(chain[i].fifo_to_next_depth, map_w - 4);
    }
  }
  EXPECT_EQ(chain.back().fifo_to_next_depth, 0u);
}

TEST(FilterChain, TotalBufferingIsLiveWindowSpan) {
  // Paper/DAC'14: only the span between first and last access is buffered:
  // (Kh-1)*W + (Kw-1) elements.
  for (const auto& [kh, kw, w] :
       {std::tuple{2, 2, 16}, std::tuple{3, 3, 28}, std::tuple{5, 5, 224},
        std::tuple{1, 1, 8}, std::tuple{3, 5, 64}}) {
    MemoryPipelinePlan plan;
    plan.window_h = static_cast<std::size_t>(kh);
    plan.window_w = static_cast<std::size_t>(kw);
    plan.map_w = static_cast<std::size_t>(w);
    plan.filters = plan_filter_chain(plan.window_h, plan.window_w, plan.map_w);
    EXPECT_EQ(plan.buffered_elements(),
              static_cast<std::size_t>((kh - 1) * w + (kw - 1)))
        << kh << "x" << kw << " over width " << w;
  }
}

// ---- Accelerator planning -------------------------------------------------

TEST(AccelPlan, LeNetDefaultIsOnePePerLayer) {
  auto plan = plan_accelerator(with_default_annotations(nn::make_lenet()));
  ASSERT_TRUE(plan.is_ok()) << plan.status().to_string();
  // conv1, pool1, conv2, pool2, ip1, ip2 — softmax goes to the host.
  EXPECT_EQ(plan.value().pes.size(), 6u);
  EXPECT_TRUE(plan.value().softmax_on_host);
  EXPECT_EQ(plan.value().pipeline_depth(), 6u);
  // Edge chain: datamover -> 6 PEs -> datamover = 7 edges.
  EXPECT_EQ(plan.value().edges.size(), 7u);
  EXPECT_EQ(plan.value().edges.front().from_pe, StreamEdge::kDatamover);
  EXPECT_EQ(plan.value().edges.back().to_pe, StreamEdge::kDatamover);
  // Feature PEs carry a memory subsystem, classifiers do not.
  EXPECT_TRUE(plan.value().pes[0].memory.has_value());
  EXPECT_FALSE(plan.value().pes[4].memory.has_value());
  EXPECT_EQ(plan.value().pes[0].memory->window_h, 5u);
  EXPECT_EQ(plan.value().pes[0].memory->map_w, 28u);
}

TEST(AccelPlan, FusionMergesLikeLayers) {
  HwNetwork net = with_default_annotations(nn::make_lenet());
  net.hw.layers[1].pe_group = 0;  // conv1
  net.hw.layers[2].pe_group = 0;  // pool1
  net.hw.layers[5].pe_group = 3;  // ip1
  net.hw.layers[6].pe_group = 3;  // ip2
  auto plan = plan_accelerator(net);
  ASSERT_TRUE(plan.is_ok()) << plan.status().to_string();
  // conv1+pool1 | conv2 | pool2 | ip1+ip2 -> 4 PEs.
  ASSERT_EQ(plan.value().pes.size(), 4u);
  EXPECT_EQ(plan.value().pes[0].layer_indices.size(), 2u);
  EXPECT_EQ(plan.value().pes[3].layer_indices.size(), 2u);
  // The fused feature PE uses the largest window (conv1's 5x5) and the
  // largest map (28x28) for its memory subsystem.
  EXPECT_EQ(plan.value().pes[0].memory->window_h, 5u);
  EXPECT_EQ(plan.value().pes[0].memory->map_w, 28u);
}

TEST(AccelPlan, TanhMarksTranscendental) {
  auto plan = plan_accelerator(with_default_annotations(nn::make_tc1()));
  ASSERT_TRUE(plan.is_ok());
  EXPECT_TRUE(plan.value().pes[0].uses_transcendental);   // conv1 + tanh
  EXPECT_FALSE(plan.value().pes[1].uses_transcendental);  // pool1
}

TEST(AccelPlan, PaddedLayerGrowsMemoryMap) {
  testing::TinyNetConfig config;
  config.in_size = 8;
  config.pad = 1;
  auto plan = plan_accelerator(
      with_default_annotations(testing::make_tiny_net(config)));
  ASSERT_TRUE(plan.is_ok());
  EXPECT_EQ(plan.value().pes[0].memory->map_w, 10u);  // 8 + 2*pad
}

TEST(AccelPlan, Vgg16FcUnsynthesizable) {
  auto plan = plan_accelerator(with_default_annotations(nn::make_vgg16()));
  ASSERT_FALSE(plan.is_ok());
  EXPECT_EQ(plan.status().code(), StatusCode::kUnsynthesizable);
  EXPECT_NE(plan.status().message().find("fc6"), std::string::npos);
}

TEST(AccelPlan, Vgg16FeaturesSynthesizable) {
  auto plan = plan_accelerator(
      with_default_annotations(nn::make_vgg16().feature_extraction_prefix()));
  ASSERT_TRUE(plan.is_ok()) << plan.status().to_string();
  EXPECT_EQ(plan.value().pes.size(), 18u);  // 13 conv + 5 pool
}

TEST(AccelPlan, MacsPerCycleTracksParallelism) {
  HwNetwork net = with_default_annotations(nn::make_lenet());
  auto base = plan_accelerator(net);
  ASSERT_TRUE(base.is_ok());
  EXPECT_EQ(base.value().pes[0].macs_per_cycle, 25u);  // 5x5 window
  net.hw.layers[1].parallel_out = 4;
  auto parallel = plan_accelerator(net);
  ASSERT_TRUE(parallel.is_ok());
  EXPECT_EQ(parallel.value().pes[0].macs_per_cycle, 100u);
}

TEST(AccelPlan, DescribeListsAllPes) {
  auto plan = plan_accelerator(with_default_annotations(nn::make_tc1()));
  ASSERT_TRUE(plan.is_ok());
  const std::string text = describe(plan.value());
  for (const PePlan& pe : plan.value().pes) {
    EXPECT_NE(text.find(pe.name), std::string::npos) << pe.name;
  }
}

}  // namespace
}  // namespace condor::hw

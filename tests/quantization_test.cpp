// Tests for the fixed-point quantization study.
#include <gtest/gtest.h>

#include <cmath>

#include "dataflow/executor.hpp"
#include "hw/accel_plan.hpp"
#include "hw/dse.hpp"
#include "nn/models.hpp"
#include "nn/quantization.hpp"
#include "nn/reference.hpp"
#include "nn/weights.hpp"
#include "test_util.hpp"

namespace condor::nn {
namespace {

TEST(FixedPoint, FormatProperties) {
  const FixedPointFormat q12{16, 12};
  EXPECT_FLOAT_EQ(q12.resolution(), 1.0F / 4096.0F);
  EXPECT_FLOAT_EQ(q12.max_value(), (32768.0F - 1.0F) / 4096.0F);
}

TEST(FixedPoint, QuantizeRoundsAndSaturates) {
  const FixedPointFormat q2{4, 2};  // values in [-2, 1.75], step 0.25
  EXPECT_FLOAT_EQ(quantize_value(0.30F, q2), 0.25F);
  EXPECT_FLOAT_EQ(quantize_value(0.40F, q2), 0.50F);
  EXPECT_FLOAT_EQ(quantize_value(-0.30F, q2), -0.25F);
  EXPECT_FLOAT_EQ(quantize_value(100.0F, q2), 1.75F);   // saturate high
  EXPECT_FLOAT_EQ(quantize_value(-100.0F, q2), -2.0F);  // saturate low
  EXPECT_FLOAT_EQ(quantize_value(0.0F, q2), 0.0F);
}

TEST(FixedPoint, QuantizationIsIdempotent) {
  const FixedPointFormat format{16, 10};
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const float value = rng.uniform(-30.0F, 30.0F);
    const float once = quantize_value(value, format);
    EXPECT_EQ(quantize_value(once, format), once);
    // Error bounded by half a step (when not saturating).
    if (std::fabs(value) < format.max_value()) {
      EXPECT_LE(std::fabs(once - value), format.resolution() / 2.0F + 1e-7F);
    }
  }
}

TEST(FixedPoint, ChooseFormatFitsRange) {
  const std::vector<float> small = {0.1F, -0.3F, 0.25F};
  const FixedPointFormat f_small = choose_format(small, 16);
  EXPECT_EQ(f_small.frac_bits, 15);  // all-fractional fits |x| < 1

  const std::vector<float> big = {100.0F, -3.0F};
  const FixedPointFormat f_big = choose_format(big, 16);
  EXPECT_GE(f_big.max_value(), 100.0F);
  // Every input representable without saturation error beyond half-step.
  for (const float v : big) {
    EXPECT_LE(std::fabs(quantize_value(v, f_big) - v),
              f_big.resolution() / 2.0F + 1e-6F);
  }

  const std::vector<float> zeros = {0.0F, 0.0F};
  EXPECT_EQ(choose_format(zeros, 8).frac_bits, 7);
}

TEST(FixedPoint, RoundsTiesHalfAwayFromZero) {
  const FixedPointFormat q2{4, 2};  // step 0.25
  EXPECT_FLOAT_EQ(quantize_value(0.125F, q2), 0.25F);  // tie rounds away
  EXPECT_FLOAT_EQ(quantize_value(-0.125F, q2), -0.25F);
  EXPECT_FLOAT_EQ(quantize_value(0.375F, q2), 0.50F);
  EXPECT_FLOAT_EQ(quantize_value(-0.375F, q2), -0.50F);
}

TEST(FixedPoint, ChooseFormatHandlesPowersOfTwo) {
  // An exact power of two must not saturate: 2.0 needs frac 13 at 16 bits
  // (frac 14 would scale to 32768 > max_code 32767).
  EXPECT_EQ(choose_format(std::vector<float>{2.0F}, 16).frac_bits, 13);
  // Just below the power of two keeps the extra fractional bit.
  EXPECT_EQ(choose_format(std::vector<float>{1.99F}, 16).frac_bits, 14);
  // Negative powers of two are exactly representable in the chosen format.
  for (const float v : {-1.0F, -0.5F, -0.25F, -0.0625F}) {
    const FixedPointFormat format = choose_format(std::vector<float>{v}, 16);
    EXPECT_EQ(quantize_value(v, format), v) << "v = " << v;
  }
}

TEST(FixedPoint, ChooseFormatDenormalScaleQuantizesToZero) {
  // A denormal magnitude cannot be lifted into the code range by any
  // non-negative frac_bits: the format stays all-fractional and the value
  // rounds to code zero instead of misbehaving.
  const std::vector<float> tiny = {1e-40F, -1e-41F};
  const FixedPointFormat format = choose_format(tiny, 16);
  EXPECT_EQ(format.frac_bits, 15);
  EXPECT_FLOAT_EQ(quantize_value(tiny[0], format), 0.0F);
}

TEST(FixedPoint, QuantizeCodeSaturatesAtCodeRange) {
  const FixedPointFormat q8{8, 4};
  EXPECT_EQ(quantize_code(1000.0F, q8), q8.max_code());
  EXPECT_EQ(quantize_code(-1000.0F, q8), q8.min_code());
  EXPECT_EQ(q8.max_code(), 127);
  EXPECT_EQ(q8.min_code(), -128);
}

TEST(FixedPoint, RealignCodeShiftsExactlyAndRoundsTiesAway) {
  EXPECT_EQ(realign_code(5, 2, 6), 80);     // gaining bits: exact shift
  EXPECT_EQ(realign_code(5, 6, 2), 0);      // 5/16 rounds to zero
  EXPECT_EQ(realign_code(24, 6, 2), 2);     // 1.5 tie rounds away
  EXPECT_EQ(realign_code(-24, 6, 2), -2);   // symmetric for negatives
  EXPECT_EQ(realign_code(-40, 6, 2), -3);   // -2.5 tie rounds away
}

TEST(FixedPoint, DataTypeHelpers) {
  EXPECT_EQ(bytes_per_element(DataType::kFloat32), 4u);
  EXPECT_EQ(bytes_per_element(DataType::kFixed16), 2u);
  EXPECT_EQ(bytes_per_element(DataType::kFixed8), 1u);
  EXPECT_EQ(to_string(DataType::kFixed16), "fixed16");
}

TEST(QuantizedWeights, Float32IsIdentity) {
  auto weights = initialize_weights(make_tc1(), 1).value();
  auto same = quantize_weights(weights, DataType::kFloat32);
  ASSERT_TRUE(same.is_ok());
  EXPECT_EQ(max_abs_diff(same.value().find("conv1")->weights,
                         weights.find("conv1")->weights),
            0.0F);
}

TEST(QuantizedWeights, Fixed16StaysClose) {
  auto weights = initialize_weights(make_lenet(), 2).value();
  auto quantized = quantize_weights(weights, DataType::kFixed16);
  ASSERT_TRUE(quantized.is_ok());
  const float diff = max_abs_diff(quantized.value().find("conv1")->weights,
                                  weights.find("conv1")->weights);
  EXPECT_GT(diff, 0.0F);       // something changed
  EXPECT_LT(diff, 1.0F / 4096);  // but within the dynamic-format resolution
}

TEST(QuantizedEngine, Fixed16OutputsCloseToFloat) {
  const Network tc1 = make_tc1();
  auto weights = initialize_weights(tc1, 3).value();
  auto float_engine = ReferenceEngine::create(tc1, weights).value();
  auto quant_engine =
      QuantizedEngine::create(tc1, weights, DataType::kFixed16).value();
  const auto inputs = condor::testing::random_inputs(tc1, 4, 21);
  for (const Tensor& input : inputs) {
    const Tensor reference = float_engine.forward(input).value();
    auto quantized = quant_engine.forward(input);
    ASSERT_TRUE(quantized.is_ok());
    const QuantizationError error =
        compare_outputs(reference, quantized.value());
    EXPECT_LT(error.mean_abs_error, 0.02F);
    // Probabilities still sum to ~1 (softmax runs in float on the host).
    float sum = 0.0F;
    for (const float p : quantized.value().data()) {
      sum += p;
    }
    EXPECT_NEAR(sum, 1.0F, 1e-4F);
  }
}

TEST(QuantizedEngine, Fixed8ErrorLargerThanFixed16) {
  const Network tc1 = make_tc1();
  auto weights = initialize_weights(tc1, 4).value();
  auto float_engine = ReferenceEngine::create(tc1, weights).value();
  auto q16 = QuantizedEngine::create(tc1, weights, DataType::kFixed16).value();
  auto q8 = QuantizedEngine::create(tc1, weights, DataType::kFixed8).value();
  const auto inputs = condor::testing::random_inputs(tc1, 8, 23);
  float err16 = 0.0F;
  float err8 = 0.0F;
  for (const Tensor& input : inputs) {
    const Tensor reference = float_engine.forward(input).value();
    err16 += compare_outputs(reference, q16.forward(input).value()).mean_abs_error;
    err8 += compare_outputs(reference, q8.forward(input).value()).mean_abs_error;
  }
  EXPECT_GT(err8, err16);
}

TEST(QuantizationModels, Fixed16ShrinksResourcesAndLiftsClock) {
  const nn::Network model = make_lenet();
  hw::HwNetwork net = hw::with_default_annotations(model, "aws-f1", 250.0);

  hw::DseOptions float_options;
  hw::DseOptions fixed_options;
  fixed_options.cost = hw::cost_model_for(DataType::kFixed16);
  fixed_options.timing = hw::timing_model_for(DataType::kFixed16);

  auto float_point = hw::evaluate_design_point(net, float_options);
  auto fixed_point = hw::evaluate_design_point(net, fixed_options);
  ASSERT_TRUE(float_point.is_ok());
  ASSERT_TRUE(fixed_point.is_ok());
  // Fewer DSPs, less BRAM (16-bit weights), higher or equal clock.
  EXPECT_LT(fixed_point.value().resources.total.dsps,
            float_point.value().resources.total.dsps);
  EXPECT_LT(fixed_point.value().resources.total.bram36,
            float_point.value().resources.total.bram36);
  EXPECT_GE(fixed_point.value().achieved_mhz, float_point.value().achieved_mhz);
}

TEST(QuantizationModels, Tc1TanhTableRemovesClockCap) {
  // TC1's float tanh caps the design at 100 MHz; the fixed16 lookup-table
  // activation lifts it substantially.
  hw::HwNetwork net = hw::with_default_annotations(make_tc1(), "aws-f1", 250.0);
  hw::DseOptions fixed_options;
  fixed_options.cost = hw::cost_model_for(DataType::kFixed16);
  fixed_options.timing = hw::timing_model_for(DataType::kFixed16);
  auto float_point = hw::evaluate_design_point(net);
  auto fixed_point = hw::evaluate_design_point(net, fixed_options);
  ASSERT_TRUE(float_point.is_ok());
  ASSERT_TRUE(fixed_point.is_ok());
  EXPECT_DOUBLE_EQ(float_point.value().achieved_mhz, 100.0);
  EXPECT_GE(fixed_point.value().achieved_mhz, 180.0);
}

/// Plans `network` with the given numeric datapath, runs the dataflow
/// executor and EXPECTs its outputs bit-identical to nn::QuantizedEngine —
/// the fixed-datapath counterpart of the float executor-vs-reference suite.
void expect_executor_matches_quantized(const Network& network, DataType type,
                                       std::size_t batch, std::uint64_t seed,
                                       std::size_t parallel_out = 0) {
  auto weights = initialize_weights(network, seed);
  ASSERT_TRUE(weights.is_ok()) << weights.status().to_string();
  auto engine = QuantizedEngine::create(network, weights.value(), type);
  ASSERT_TRUE(engine.is_ok()) << engine.status().to_string();

  hw::HwNetwork hw_net = hw::with_default_annotations(network);
  hw_net.hw.data_type = type;
  if (parallel_out > 0) {
    for (std::size_t i = 1; i < hw_net.hw.layers.size(); ++i) {
      hw_net.hw.layers[i].parallel_out = parallel_out;
    }
  }
  auto plan = hw::plan_accelerator(hw_net);
  ASSERT_TRUE(plan.is_ok()) << plan.status().to_string();
  EXPECT_EQ(plan.value().data_type(), type);

  auto executor =
      dataflow::AcceleratorExecutor::create(plan.value(), weights.value());
  ASSERT_TRUE(executor.is_ok()) << executor.status().to_string();
  const auto inputs = testing::random_inputs(network, batch, seed + 1);
  auto outputs = executor.value().run_batch(inputs);
  ASSERT_TRUE(outputs.is_ok()) << outputs.status().to_string();
  ASSERT_EQ(outputs.value().size(), batch);
  for (std::size_t i = 0; i < batch; ++i) {
    auto expected = engine.value().forward(inputs[i]);
    ASSERT_TRUE(expected.is_ok()) << expected.status().to_string();
    EXPECT_EQ(max_abs_diff(outputs.value()[i], expected.value()), 0.0F)
        << "image " << i << " diverges from the quantized reference";
  }
}

TEST(FixedDataflow, Tc1Fixed16BitExact) {
  expect_executor_matches_quantized(make_tc1(), DataType::kFixed16, 3, 51);
}

TEST(FixedDataflow, Tc1Fixed8BitExact) {
  expect_executor_matches_quantized(make_tc1(), DataType::kFixed8, 3, 53);
}

TEST(FixedDataflow, LeNetFixed16BitExact) {
  expect_executor_matches_quantized(make_lenet(), DataType::kFixed16, 2, 57);
}

TEST(FixedDataflow, LeNetFixed8BitExact) {
  expect_executor_matches_quantized(make_lenet(), DataType::kFixed8, 2, 59);
}

TEST(FixedDataflow, ParallelOutDegreesStayBitExactPerDataType) {
  // Integer accumulation is exact, so the intra-layer unfold degree must
  // not perturb a single code: every degree has to reproduce the quantized
  // reference (and hence the degree-1 design) byte for byte.
  for (const DataType type : {DataType::kFixed16, DataType::kFixed8}) {
    // TC1's narrowest layer has 6 output maps; 5 exercises the non-divisor
    // slicing.
    for (const std::size_t degree : {std::size_t{2}, std::size_t{3},
                                     std::size_t{5}}) {
      SCOPED_TRACE(std::string(to_string(type)) + " parallel_out=" +
                   std::to_string(degree));
      expect_executor_matches_quantized(make_tc1(), type, 2, 61, degree);
    }
  }
}

}  // namespace
}  // namespace condor::nn

// Tests for the fixed-point quantization study.
#include <gtest/gtest.h>

#include <cmath>

#include "hw/dse.hpp"
#include "nn/models.hpp"
#include "nn/quantization.hpp"
#include "nn/reference.hpp"
#include "nn/weights.hpp"
#include "test_util.hpp"

namespace condor::nn {
namespace {

TEST(FixedPoint, FormatProperties) {
  const FixedPointFormat q12{16, 12};
  EXPECT_FLOAT_EQ(q12.resolution(), 1.0F / 4096.0F);
  EXPECT_FLOAT_EQ(q12.max_value(), (32768.0F - 1.0F) / 4096.0F);
}

TEST(FixedPoint, QuantizeRoundsAndSaturates) {
  const FixedPointFormat q2{4, 2};  // values in [-2, 1.75], step 0.25
  EXPECT_FLOAT_EQ(quantize_value(0.30F, q2), 0.25F);
  EXPECT_FLOAT_EQ(quantize_value(0.40F, q2), 0.50F);
  EXPECT_FLOAT_EQ(quantize_value(-0.30F, q2), -0.25F);
  EXPECT_FLOAT_EQ(quantize_value(100.0F, q2), 1.75F);   // saturate high
  EXPECT_FLOAT_EQ(quantize_value(-100.0F, q2), -2.0F);  // saturate low
  EXPECT_FLOAT_EQ(quantize_value(0.0F, q2), 0.0F);
}

TEST(FixedPoint, QuantizationIsIdempotent) {
  const FixedPointFormat format{16, 10};
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const float value = rng.uniform(-30.0F, 30.0F);
    const float once = quantize_value(value, format);
    EXPECT_EQ(quantize_value(once, format), once);
    // Error bounded by half a step (when not saturating).
    if (std::fabs(value) < format.max_value()) {
      EXPECT_LE(std::fabs(once - value), format.resolution() / 2.0F + 1e-7F);
    }
  }
}

TEST(FixedPoint, ChooseFormatFitsRange) {
  const std::vector<float> small = {0.1F, -0.3F, 0.25F};
  const FixedPointFormat f_small = choose_format(small, 16);
  EXPECT_EQ(f_small.frac_bits, 15);  // all-fractional fits |x| < 1

  const std::vector<float> big = {100.0F, -3.0F};
  const FixedPointFormat f_big = choose_format(big, 16);
  EXPECT_GE(f_big.max_value(), 100.0F);
  // Every input representable without saturation error beyond half-step.
  for (const float v : big) {
    EXPECT_LE(std::fabs(quantize_value(v, f_big) - v),
              f_big.resolution() / 2.0F + 1e-6F);
  }

  const std::vector<float> zeros = {0.0F, 0.0F};
  EXPECT_EQ(choose_format(zeros, 8).frac_bits, 7);
}

TEST(FixedPoint, DataTypeHelpers) {
  EXPECT_EQ(bytes_per_element(DataType::kFloat32), 4u);
  EXPECT_EQ(bytes_per_element(DataType::kFixed16), 2u);
  EXPECT_EQ(bytes_per_element(DataType::kFixed8), 1u);
  EXPECT_EQ(to_string(DataType::kFixed16), "fixed16");
}

TEST(QuantizedWeights, Float32IsIdentity) {
  auto weights = initialize_weights(make_tc1(), 1).value();
  auto same = quantize_weights(weights, DataType::kFloat32);
  ASSERT_TRUE(same.is_ok());
  EXPECT_EQ(max_abs_diff(same.value().find("conv1")->weights,
                         weights.find("conv1")->weights),
            0.0F);
}

TEST(QuantizedWeights, Fixed16StaysClose) {
  auto weights = initialize_weights(make_lenet(), 2).value();
  auto quantized = quantize_weights(weights, DataType::kFixed16);
  ASSERT_TRUE(quantized.is_ok());
  const float diff = max_abs_diff(quantized.value().find("conv1")->weights,
                                  weights.find("conv1")->weights);
  EXPECT_GT(diff, 0.0F);       // something changed
  EXPECT_LT(diff, 1.0F / 4096);  // but within the dynamic-format resolution
}

TEST(QuantizedEngine, Fixed16OutputsCloseToFloat) {
  const Network tc1 = make_tc1();
  auto weights = initialize_weights(tc1, 3).value();
  auto float_engine = ReferenceEngine::create(tc1, weights).value();
  auto quant_engine =
      QuantizedEngine::create(tc1, weights, DataType::kFixed16).value();
  const auto inputs = condor::testing::random_inputs(tc1, 4, 21);
  for (const Tensor& input : inputs) {
    const Tensor reference = float_engine.forward(input).value();
    auto quantized = quant_engine.forward(input);
    ASSERT_TRUE(quantized.is_ok());
    const QuantizationError error =
        compare_outputs(reference, quantized.value());
    EXPECT_LT(error.mean_abs_error, 0.02F);
    // Probabilities still sum to ~1 (softmax runs in float on the host).
    float sum = 0.0F;
    for (const float p : quantized.value().data()) {
      sum += p;
    }
    EXPECT_NEAR(sum, 1.0F, 1e-4F);
  }
}

TEST(QuantizedEngine, Fixed8ErrorLargerThanFixed16) {
  const Network tc1 = make_tc1();
  auto weights = initialize_weights(tc1, 4).value();
  auto float_engine = ReferenceEngine::create(tc1, weights).value();
  auto q16 = QuantizedEngine::create(tc1, weights, DataType::kFixed16).value();
  auto q8 = QuantizedEngine::create(tc1, weights, DataType::kFixed8).value();
  const auto inputs = condor::testing::random_inputs(tc1, 8, 23);
  float err16 = 0.0F;
  float err8 = 0.0F;
  for (const Tensor& input : inputs) {
    const Tensor reference = float_engine.forward(input).value();
    err16 += compare_outputs(reference, q16.forward(input).value()).mean_abs_error;
    err8 += compare_outputs(reference, q8.forward(input).value()).mean_abs_error;
  }
  EXPECT_GT(err8, err16);
}

TEST(QuantizationModels, Fixed16ShrinksResourcesAndLiftsClock) {
  const nn::Network model = make_lenet();
  hw::HwNetwork net = hw::with_default_annotations(model, "aws-f1", 250.0);

  hw::DseOptions float_options;
  hw::DseOptions fixed_options;
  fixed_options.cost = hw::cost_model_for(DataType::kFixed16);
  fixed_options.timing = hw::timing_model_for(DataType::kFixed16);

  auto float_point = hw::evaluate_design_point(net, float_options);
  auto fixed_point = hw::evaluate_design_point(net, fixed_options);
  ASSERT_TRUE(float_point.is_ok());
  ASSERT_TRUE(fixed_point.is_ok());
  // Fewer DSPs, less BRAM (16-bit weights), higher or equal clock.
  EXPECT_LT(fixed_point.value().resources.total.dsps,
            float_point.value().resources.total.dsps);
  EXPECT_LT(fixed_point.value().resources.total.bram36,
            float_point.value().resources.total.bram36);
  EXPECT_GE(fixed_point.value().achieved_mhz, float_point.value().achieved_mhz);
}

TEST(QuantizationModels, Tc1TanhTableRemovesClockCap) {
  // TC1's float tanh caps the design at 100 MHz; the fixed16 lookup-table
  // activation lifts it substantially.
  hw::HwNetwork net = hw::with_default_annotations(make_tc1(), "aws-f1", 250.0);
  hw::DseOptions fixed_options;
  fixed_options.cost = hw::cost_model_for(DataType::kFixed16);
  fixed_options.timing = hw::timing_model_for(DataType::kFixed16);
  auto float_point = hw::evaluate_design_point(net);
  auto fixed_point = hw::evaluate_design_point(net, fixed_options);
  ASSERT_TRUE(float_point.is_ok());
  ASSERT_TRUE(fixed_point.is_ok());
  EXPECT_DOUBLE_EQ(float_point.value().achieved_mhz, 100.0);
  EXPECT_GE(fixed_point.value().achieved_mhz, 180.0);
}

}  // namespace
}  // namespace condor::nn

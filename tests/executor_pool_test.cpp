// Tests for the multi-instance ExecutorPool and its dynamic chunk
// dispatcher: bit-exactness vs a single instance at every data type,
// sharding edge cases, and error propagation mid-batch.
#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <set>
#include <utility>

#include "dataflow/executor.hpp"
#include "dataflow/executor_pool.hpp"
#include "hw/accel_plan.hpp"
#include "hw/hw_ir.hpp"
#include "nn/models.hpp"
#include "nn/weights.hpp"
#include "test_util.hpp"

namespace condor::dataflow {
namespace {

// ---- dispatch_chunks --------------------------------------------------------

TEST(DispatchChunks, CoversEveryIndexExactlyOnce) {
  constexpr std::size_t kBatch = 37;
  std::mutex mutex;
  std::vector<std::pair<std::size_t, std::size_t>> ranges;
  const Status status = dispatch_chunks(
      kBatch, /*workers=*/3, /*chunk_size=*/4,
      [&](std::size_t, std::size_t begin, std::size_t end) {
        std::lock_guard<std::mutex> lock(mutex);
        ranges.emplace_back(begin, end);
        return Status::ok();
      });
  ASSERT_TRUE(status.is_ok()) << status.to_string();
  std::set<std::size_t> covered;
  for (const auto& [begin, end] : ranges) {
    EXPECT_LT(begin, end);
    EXPECT_LE(end, kBatch);
    for (std::size_t i = begin; i < end; ++i) {
      EXPECT_TRUE(covered.insert(i).second) << "index " << i << " twice";
    }
  }
  EXPECT_EQ(covered.size(), kBatch);
}

TEST(DispatchChunks, EmptyBatchRunsNothing) {
  std::atomic<int> calls{0};
  const Status status =
      dispatch_chunks(0, 4, 8, [&](std::size_t, std::size_t, std::size_t) {
        ++calls;
        return Status::ok();
      });
  EXPECT_TRUE(status.is_ok());
  EXPECT_EQ(calls.load(), 0);
}

TEST(DispatchChunks, RejectsZeroWorkersOrChunk) {
  const auto noop = [](std::size_t, std::size_t, std::size_t) {
    return Status::ok();
  };
  EXPECT_FALSE(dispatch_chunks(8, 0, 4, noop).is_ok());
  EXPECT_FALSE(dispatch_chunks(8, 2, 0, noop).is_ok());
}

TEST(DispatchChunks, FirstErrorPoisonsTheQueue) {
  constexpr std::size_t kBatch = 64;
  std::atomic<std::size_t> chunks_run{0};
  const Status status = dispatch_chunks(
      kBatch, /*workers=*/2, /*chunk_size=*/1,
      [&](std::size_t, std::size_t begin, std::size_t) {
        ++chunks_run;
        if (begin == 0) {
          return internal_error("chunk zero exploded");
        }
        return Status::ok();
      });
  ASSERT_FALSE(status.is_ok());
  EXPECT_EQ(status.message(), "chunk zero exploded");
  // The queue was poisoned: nowhere near the full batch was handed out
  // (in-flight chunks may still have drained).
  EXPECT_LT(chunks_run.load(), kBatch);
}

// ---- ExecutorPool -----------------------------------------------------------

struct PoolFixture {
  hw::AcceleratorPlan plan;
  nn::WeightStore weights;
};

PoolFixture make_fixture(const nn::Network& model, nn::DataType data_type,
                         std::uint64_t seed) {
  PoolFixture fixture;
  hw::HwNetwork hw_net = hw::with_default_annotations(model);
  hw_net.hw.data_type = data_type;
  fixture.plan = hw::plan_accelerator(hw_net).value();
  fixture.weights = nn::initialize_weights(model, seed).value();
  return fixture;
}

/// The central property: a pool of N instances returns bit-identical
/// outputs, in input order, to a single instance running the same batch.
void expect_bit_exact_vs_single(const nn::Network& model,
                                nn::DataType data_type, std::size_t instances,
                                std::size_t batch) {
  SCOPED_TRACE(::testing::Message()
               << nn::to_string(data_type) << " instances=" << instances
               << " batch=" << batch);
  PoolFixture fixture = make_fixture(model, data_type, 11);

  auto single =
      AcceleratorExecutor::create(fixture.plan, fixture.weights);
  ASSERT_TRUE(single.is_ok()) << single.status().to_string();
  auto pool = ExecutorPool::create(fixture.plan, fixture.weights, instances);
  ASSERT_TRUE(pool.is_ok()) << pool.status().to_string();
  EXPECT_EQ(pool.value().instances(), instances);

  const auto inputs = condor::testing::random_inputs(model, batch, 23);
  auto expected = single.value().run_batch(inputs);
  ASSERT_TRUE(expected.is_ok()) << expected.status().to_string();
  auto actual = pool.value().run_batch(inputs);
  ASSERT_TRUE(actual.is_ok()) << actual.status().to_string();

  ASSERT_EQ(actual.value().size(), batch);
  for (std::size_t i = 0; i < batch; ++i) {
    ASSERT_EQ(actual.value()[i].shape(), expected.value()[i].shape());
    for (std::size_t e = 0; e < actual.value()[i].size(); ++e) {
      ASSERT_EQ(actual.value()[i][e], expected.value()[i][e])
          << "image " << i << " element " << e;
    }
  }
  // The dynamic sharding census accounts for every image exactly once.
  const PoolRunStats& stats = pool.value().last_pool_stats();
  EXPECT_EQ(stats.batch, batch);
  std::size_t total = 0;
  for (const std::size_t images : stats.images_per_instance) {
    total += images;
  }
  EXPECT_EQ(total, batch);
}

TEST(ExecutorPool, Tc1BitExactAcrossInstanceCountsAndTypes) {
  const nn::Network model = nn::make_tc1();
  for (const nn::DataType type :
       {nn::DataType::kFloat32, nn::DataType::kFixed16, nn::DataType::kFixed8}) {
    for (const std::size_t instances : {2UL, 3UL, 5UL}) {
      // 7 images: non-divisible by 2 and 3, larger than and smaller than
      // the instance counts around it.
      expect_bit_exact_vs_single(model, type, instances, 7);
    }
  }
}

TEST(ExecutorPool, LeNetBitExactAcrossTypes) {
  const nn::Network model = nn::make_lenet();
  for (const nn::DataType type :
       {nn::DataType::kFloat32, nn::DataType::kFixed16, nn::DataType::kFixed8}) {
    expect_bit_exact_vs_single(model, type, 2, 6);
  }
}

TEST(ExecutorPool, BatchSmallerThanInstances) {
  expect_bit_exact_vs_single(nn::make_tc1(), nn::DataType::kFloat32,
                             /*instances=*/4, /*batch=*/2);
}

TEST(ExecutorPool, BatchOfOne) {
  expect_bit_exact_vs_single(nn::make_tc1(), nn::DataType::kFloat32,
                             /*instances=*/3, /*batch=*/1);
}

TEST(ExecutorPool, EmptyBatchIsOk) {
  PoolFixture fixture = make_fixture(nn::make_tc1(), nn::DataType::kFloat32, 3);
  auto pool = ExecutorPool::create(fixture.plan, fixture.weights, 2);
  ASSERT_TRUE(pool.is_ok());
  auto outputs = pool.value().run_batch(std::span<const Tensor>{});
  ASSERT_TRUE(outputs.is_ok());
  EXPECT_TRUE(outputs.value().empty());
  EXPECT_EQ(pool.value().last_pool_stats().batch, 0u);
}

TEST(ExecutorPool, ZeroInstancesRejected) {
  PoolFixture fixture = make_fixture(nn::make_tc1(), nn::DataType::kFloat32, 3);
  EXPECT_FALSE(ExecutorPool::create(fixture.plan, fixture.weights, 0).is_ok());
}

TEST(ExecutorPool, MidBatchErrorSurfacesOnceAndPoolRecovers) {
  const nn::Network model = nn::make_tc1();
  PoolFixture fixture = make_fixture(model, nn::DataType::kFloat32, 3);
  auto pool = ExecutorPool::create(fixture.plan, fixture.weights, 2);
  ASSERT_TRUE(pool.is_ok());

  // One poisoned image mid-batch: the chunk containing it fails shape
  // validation inside its instance; the other chunks drain cleanly and
  // exactly the first recorded error comes back.
  auto inputs = condor::testing::random_inputs(model, 8, 29);
  inputs[5] = Tensor(Shape{1, 2, 2});  // wrong input shape
  auto failed = pool.value().run_batch(inputs);
  ASSERT_FALSE(failed.is_ok());
  EXPECT_EQ(failed.status().code(), StatusCode::kInvalidInput);
  EXPECT_NE(failed.status().message().find("does not match network input"),
            std::string::npos)
      << failed.status().to_string();

  // The pool stays usable: the failed instance recompiles lazily and the
  // next batch is bit-exact again.
  const auto good = condor::testing::random_inputs(model, 8, 31);
  auto single = AcceleratorExecutor::create(fixture.plan, fixture.weights);
  ASSERT_TRUE(single.is_ok());
  auto expected = single.value().run_batch(good);
  ASSERT_TRUE(expected.is_ok());
  auto recovered = pool.value().run_batch(good);
  ASSERT_TRUE(recovered.is_ok()) << recovered.status().to_string();
  for (std::size_t i = 0; i < good.size(); ++i) {
    for (std::size_t e = 0; e < recovered.value()[i].size(); ++e) {
      ASSERT_EQ(recovered.value()[i][e], expected.value()[i][e]);
    }
  }
}

TEST(ExecutorPool, SharedPlanVariantMatchesValueVariant) {
  const nn::Network model = nn::make_tc1();
  PoolFixture fixture = make_fixture(model, nn::DataType::kFloat32, 3);
  auto plan = std::make_shared<const hw::AcceleratorPlan>(fixture.plan);
  auto weights = std::make_shared<const nn::WeightStore>(fixture.weights);
  auto pool = ExecutorPool::create(plan, weights, 2);
  ASSERT_TRUE(pool.is_ok()) << pool.status().to_string();
  // All instances reference the one shared plan.
  EXPECT_EQ(&pool.value().plan(), plan.get());
  EXPECT_EQ(&pool.value().instance(0).plan(), plan.get());
  EXPECT_EQ(&pool.value().instance(1).plan(), plan.get());

  const auto inputs = condor::testing::random_inputs(model, 3, 17);
  auto outputs = pool.value().run_batch(inputs);
  ASSERT_TRUE(outputs.is_ok());
  EXPECT_EQ(outputs.value().size(), 3u);
}

}  // namespace
}  // namespace condor::dataflow

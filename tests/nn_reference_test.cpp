// Unit tests for the golden CPU reference engine: hand-computed cases for
// every layer type plus engine-level invariants.
#include <gtest/gtest.h>

#include <cmath>

#include "common/thread_pool.hpp"
#include "nn/models.hpp"
#include "nn/reference.hpp"
#include "nn/synthetic_digits.hpp"
#include "nn/weights.hpp"
#include "test_util.hpp"

namespace condor::nn {
namespace {

LayerSpec conv_spec(std::size_t out, std::size_t k, std::size_t stride = 1,
                    std::size_t pad = 0) {
  LayerSpec layer;
  layer.name = "conv";
  layer.kind = LayerKind::kConvolution;
  layer.num_output = out;
  layer.kernel_h = layer.kernel_w = k;
  layer.stride = stride;
  layer.pad = pad;
  return layer;
}

TEST(ReferenceConv, HandComputed3x3) {
  // 1-channel 3x3 input, one 2x2 all-ones filter, bias 10.
  LayerSpec layer = conv_spec(1, 2);
  Tensor input(Shape{1, 3, 3});
  for (std::size_t i = 0; i < 9; ++i) {
    input[i] = static_cast<float>(i + 1);  // 1..9 row-major
  }
  LayerParameters params;
  params.weights = Tensor(Shape{1, 1, 2, 2}, 1.0F);
  params.bias = Tensor(Shape{1}, 10.0F);

  auto output = forward_convolution(layer, input, params);
  ASSERT_TRUE(output.is_ok());
  ASSERT_EQ(output.value().shape(), (Shape{1, 2, 2}));
  // Window sums: (1+2+4+5)=12, (2+3+5+6)=16, (4+5+7+8)=24, (5+6+8+9)=28.
  EXPECT_EQ(output.value().at(0, 0, 0), 22.0F);
  EXPECT_EQ(output.value().at(0, 0, 1), 26.0F);
  EXPECT_EQ(output.value().at(0, 1, 0), 34.0F);
  EXPECT_EQ(output.value().at(0, 1, 1), 38.0F);
}

TEST(ReferenceConv, MultiChannelAccumulates) {
  LayerSpec layer = conv_spec(1, 1);
  Tensor input(Shape{2, 1, 1});
  input[0] = 3.0F;
  input[1] = 4.0F;
  LayerParameters params;
  params.weights = Tensor(Shape{1, 2, 1, 1});
  params.weights[0] = 10.0F;
  params.weights[1] = 100.0F;
  params.bias = Tensor(Shape{1}, 1.0F);
  auto output = forward_convolution(layer, input, params);
  ASSERT_TRUE(output.is_ok());
  EXPECT_EQ(output.value()[0], 1.0F + 30.0F + 400.0F);
}

TEST(ReferenceConv, ZeroPaddingContributesNothing) {
  // 2x2 input padded to 4x4; the all-ones 3x3 kernel sums whatever real
  // pixels fall inside each window — the zero border adds nothing.
  LayerSpec layer = conv_spec(1, 3, 1, 1);
  Tensor input(Shape{1, 2, 2});
  input.at(0, 0, 0) = 1.0F;
  input.at(0, 0, 1) = 2.0F;
  input.at(0, 1, 0) = 4.0F;
  input.at(0, 1, 1) = 8.0F;
  LayerParameters params;
  params.weights = Tensor(Shape{1, 1, 3, 3}, 1.0F);
  params.bias = Tensor(Shape{1}, 0.0F);
  auto output = forward_convolution(layer, input, params);
  ASSERT_TRUE(output.is_ok());
  ASSERT_EQ(output.value().shape(), (Shape{1, 2, 2}));
  // Every window covers all four real pixels (the 3x3 window over a padded
  // 2x2 map always contains the whole map).
  for (const float value : output.value().data()) {
    EXPECT_EQ(value, 15.0F);
  }
}

TEST(ReferenceConv, StrideSkipsPositions) {
  LayerSpec layer = conv_spec(1, 2, 2);
  Tensor input(Shape{1, 4, 4});
  for (std::size_t i = 0; i < 16; ++i) {
    input[i] = static_cast<float>(i);
  }
  LayerParameters params;
  params.weights = Tensor(Shape{1, 1, 2, 2});
  params.weights[0] = 1.0F;  // top-left tap only
  params.bias = Tensor(Shape{1}, 0.0F);
  auto output = forward_convolution(layer, input, params);
  ASSERT_TRUE(output.is_ok());
  ASSERT_EQ(output.value().shape(), (Shape{1, 2, 2}));
  EXPECT_EQ(output.value().at(0, 0, 0), 0.0F);
  EXPECT_EQ(output.value().at(0, 0, 1), 2.0F);
  EXPECT_EQ(output.value().at(0, 1, 0), 8.0F);
  EXPECT_EQ(output.value().at(0, 1, 1), 10.0F);
}

TEST(ReferenceConv, ShapeMismatchRejected) {
  LayerSpec layer = conv_spec(2, 3);
  Tensor input(Shape{1, 5, 5});
  LayerParameters params;
  params.weights = Tensor(Shape{2, 1, 2, 2});  // wrong kernel size
  params.bias = Tensor(Shape{2});
  EXPECT_FALSE(forward_convolution(layer, input, params).is_ok());
}

TEST(ReferencePool, MaxAndAverage) {
  LayerSpec pool;
  pool.name = "pool";
  pool.kind = LayerKind::kPooling;
  pool.kernel_h = pool.kernel_w = 2;
  pool.stride = 2;

  Tensor input(Shape{1, 2, 4});
  const float values[] = {1, 2, 5, 6, 3, 4, 7, 8};
  for (std::size_t i = 0; i < 8; ++i) {
    input[i] = values[i];
  }
  pool.pool_method = PoolMethod::kMax;
  auto max_out = forward_pooling(pool, input);
  ASSERT_TRUE(max_out.is_ok());
  ASSERT_EQ(max_out.value().shape(), (Shape{1, 1, 2}));
  EXPECT_EQ(max_out.value()[0], 4.0F);
  EXPECT_EQ(max_out.value()[1], 8.0F);

  pool.pool_method = PoolMethod::kAverage;
  auto avg_out = forward_pooling(pool, input);
  ASSERT_TRUE(avg_out.is_ok());
  EXPECT_EQ(avg_out.value()[0], 2.5F);
  EXPECT_EQ(avg_out.value()[1], 6.5F);
}

TEST(ReferencePool, MaxHandlesAllNegativeWindows) {
  LayerSpec pool;
  pool.name = "pool";
  pool.kind = LayerKind::kPooling;
  pool.kernel_h = pool.kernel_w = 2;
  pool.stride = 2;
  pool.pool_method = PoolMethod::kMax;
  Tensor input(Shape{1, 2, 2}, -3.0F);
  auto out = forward_pooling(pool, input);
  ASSERT_TRUE(out.is_ok());
  EXPECT_EQ(out.value()[0], -3.0F);
}

TEST(ReferenceFc, HandComputed) {
  LayerSpec layer;
  layer.name = "fc";
  layer.kind = LayerKind::kInnerProduct;
  layer.num_output = 2;
  Tensor input(Shape{3});
  input[0] = 1.0F;
  input[1] = 2.0F;
  input[2] = 3.0F;
  LayerParameters params;
  params.weights = Tensor(Shape{2, 3});
  // Row 0: [1, 0, 0]; row 1: [0.5, 0.5, 0.5].
  params.weights[0] = 1.0F;
  params.weights[3] = params.weights[4] = params.weights[5] = 0.5F;
  params.bias = Tensor(Shape{2});
  params.bias[1] = 10.0F;
  auto out = forward_inner_product(layer, input, params);
  ASSERT_TRUE(out.is_ok());
  EXPECT_EQ(out.value()[0], 1.0F);
  EXPECT_EQ(out.value()[1], 13.0F);
}

TEST(ReferenceSoftmax, SumsToOneAndIsStable) {
  Tensor logits(Shape{4});
  logits[0] = 1000.0F;  // would overflow exp without the max shift
  logits[1] = 999.0F;
  logits[2] = 0.0F;
  logits[3] = -1000.0F;
  Tensor probs = forward_softmax(logits);
  float sum = 0.0F;
  for (const float p : probs.data()) {
    EXPECT_TRUE(std::isfinite(p));
    EXPECT_GE(p, 0.0F);
    sum += p;
  }
  EXPECT_NEAR(sum, 1.0F, 1e-5F);
  EXPECT_GT(probs[0], probs[1]);
  EXPECT_GT(probs[1], probs[2]);
}

TEST(ReferenceEngine, RunsLeNetEndToEnd) {
  const Network lenet = make_lenet();
  auto weights = initialize_weights(lenet, 21);
  ASSERT_TRUE(weights.is_ok());
  auto engine = ReferenceEngine::create(lenet, weights.value());
  ASSERT_TRUE(engine.is_ok());
  Rng rng(3);
  const Tensor input = render_digit(7, 28, rng);
  auto output = engine.value().forward(input);
  ASSERT_TRUE(output.is_ok());
  ASSERT_EQ(output.value().shape(), (Shape{10}));
  float sum = 0.0F;
  for (const float p : output.value().data()) {
    sum += p;
  }
  EXPECT_NEAR(sum, 1.0F, 1e-5F);  // ends in softmax
}

TEST(ReferenceEngine, ForwardAllReturnsPerLayerBlobs) {
  const Network tc1 = make_tc1();
  auto weights = initialize_weights(tc1, 23);
  ASSERT_TRUE(weights.is_ok());
  auto engine = ReferenceEngine::create(tc1, weights.value());
  ASSERT_TRUE(engine.is_ok());
  const auto inputs = condor::testing::random_inputs(tc1, 1, 9);
  auto blobs = engine.value().forward_all(inputs[0]);
  ASSERT_TRUE(blobs.is_ok());
  ASSERT_EQ(blobs.value().size(), tc1.layer_count());
  auto shapes = tc1.infer_shapes().value();
  for (std::size_t i = 0; i < blobs.value().size(); ++i) {
    EXPECT_EQ(blobs.value()[i].shape(), shapes[i].output) << "layer " << i;
  }
}

TEST(ReferenceEngine, BatchMatchesSingleImage) {
  const Network tc1 = make_tc1();
  auto weights = initialize_weights(tc1, 25);
  ASSERT_TRUE(weights.is_ok());
  auto engine = ReferenceEngine::create(tc1, weights.value());
  ASSERT_TRUE(engine.is_ok());
  const auto inputs = condor::testing::random_inputs(tc1, 8, 15);
  ThreadPool pool(4);
  auto batch = engine.value().forward_batch(inputs, pool);
  ASSERT_TRUE(batch.is_ok());
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    auto single = engine.value().forward(inputs[i]);
    ASSERT_TRUE(single.is_ok());
    EXPECT_EQ(max_abs_diff(batch.value()[i], single.value()), 0.0F);
  }
}

TEST(ReferenceEngine, RejectsWrongInputShape) {
  const Network tc1 = make_tc1();
  auto weights = initialize_weights(tc1, 27);
  ASSERT_TRUE(weights.is_ok());
  auto engine = ReferenceEngine::create(tc1, weights.value());
  ASSERT_TRUE(engine.is_ok());
  EXPECT_FALSE(engine.value().forward(Tensor(Shape{1, 8, 8})).is_ok());
}

TEST(SyntheticDigits, DeterministicAndBounded) {
  Rng a(1);
  Rng b(1);
  const Tensor da = render_digit(3, 16, a);
  const Tensor db = render_digit(3, 16, b);
  EXPECT_EQ(max_abs_diff(da, db), 0.0F);
  for (const float value : da.data()) {
    EXPECT_GE(value, 0.0F);
    EXPECT_LE(value, 1.0F);
  }
  // Distinct digits render distinct glyphs.
  Rng c(1);
  Rng d(1);
  const Tensor one = render_digit(1, 16, c, /*jitter=*/false, 0.0F);
  const Tensor eight = render_digit(8, 16, d, /*jitter=*/false, 0.0F);
  EXPECT_GT(max_abs_diff(one, eight), 0.1F);
}

TEST(SyntheticDigits, DatasetCyclesLabels) {
  const auto samples = make_digit_dataset(25, 28);
  ASSERT_EQ(samples.size(), 25u);
  for (std::size_t i = 0; i < samples.size(); ++i) {
    EXPECT_EQ(samples[i].label, static_cast<int>(i % 10));
    EXPECT_EQ(samples[i].image.shape(), (Shape{1, 28, 28}));
  }
}

}  // namespace
}  // namespace condor::nn

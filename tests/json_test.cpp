// Unit tests for the JSON parser/serializer.
#include <gtest/gtest.h>

#include "json/json.hpp"

namespace condor::json {
namespace {

TEST(JsonParse, Scalars) {
  EXPECT_TRUE(parse("null").value().is_null());
  EXPECT_EQ(parse("true").value().as_bool().value(), true);
  EXPECT_EQ(parse("false").value().as_bool().value(), false);
  EXPECT_EQ(parse("42").value().as_int().value(), 42);
  EXPECT_EQ(parse("-17").value().as_int().value(), -17);
  EXPECT_DOUBLE_EQ(parse("3.25").value().as_double().value(), 3.25);
  EXPECT_DOUBLE_EQ(parse("1e3").value().as_double().value(), 1000.0);
  EXPECT_DOUBLE_EQ(parse("-2.5e-2").value().as_double().value(), -0.025);
  EXPECT_EQ(parse("\"hello\"").value().as_string().value(), "hello");
}

TEST(JsonParse, IntegerVsDoubleDistinction) {
  EXPECT_TRUE(parse("7").value().is_int());
  EXPECT_TRUE(parse("7.0").value().is_double());
  // Doubles with integral values still convert via as_int.
  EXPECT_EQ(parse("7.0").value().as_int().value(), 7);
  EXPECT_FALSE(parse("7.5").value().as_int().is_ok());
}

TEST(JsonParse, StringEscapes) {
  EXPECT_EQ(parse(R"("a\"b\\c\nd\te")").value().as_string().value(),
            "a\"b\\c\nd\te");
  EXPECT_EQ(parse(R"("Aé")").value().as_string().value(), "A\xC3\xA9");
}

TEST(JsonParse, NestedStructures) {
  auto result = parse(R"({"a": [1, {"b": true}, null], "c": {"d": "x"}})");
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  const Object& root = result.value().object();
  const Array& a = root.find("a")->array();
  ASSERT_EQ(a.size(), 3u);
  EXPECT_EQ(a[0].as_int().value(), 1);
  EXPECT_TRUE(a[1].object().find("b")->as_bool().value());
  EXPECT_TRUE(a[2].is_null());
  EXPECT_EQ(root.find("c")->object().find("d")->as_string().value(), "x");
}

TEST(JsonParse, ObjectPreservesInsertionOrder) {
  auto result = parse(R"({"z": 1, "a": 2, "m": 3})");
  ASSERT_TRUE(result.is_ok());
  std::vector<std::string> keys;
  for (const auto& [key, value] : result.value().object()) {
    keys.push_back(key);
  }
  EXPECT_EQ(keys, (std::vector<std::string>{"z", "a", "m"}));
}

TEST(JsonParse, Errors) {
  EXPECT_FALSE(parse("").is_ok());
  EXPECT_FALSE(parse("{").is_ok());
  EXPECT_FALSE(parse("[1,]").is_ok());
  EXPECT_FALSE(parse("{\"a\":1,}").is_ok());
  EXPECT_FALSE(parse("\"unterminated").is_ok());
  EXPECT_FALSE(parse("tru").is_ok());
  EXPECT_FALSE(parse("1 2").is_ok());          // trailing content
  EXPECT_FALSE(parse("{\"a\":1,\"a\":2}").is_ok());  // duplicate key
  EXPECT_FALSE(parse("01a").is_ok());
  EXPECT_FALSE(parse("1.").is_ok());
  EXPECT_FALSE(parse("1e").is_ok());
}

TEST(JsonParse, ErrorMessagesCarryPosition) {
  auto result = parse("{\n  \"a\": tru\n}");
  ASSERT_FALSE(result.is_ok());
  EXPECT_NE(result.status().message().find("2:"), std::string::npos)
      << result.status().message();
}

TEST(JsonParse, DeepNestingBounded) {
  // Within the limit: fine.
  std::string shallow(100, '[');
  shallow += std::string(100, ']');
  EXPECT_TRUE(parse(shallow).is_ok());
  // Adversarially deep input must be rejected, not overflow the stack.
  std::string deep(100000, '[');
  deep += std::string(100000, ']');
  auto result = parse(deep);
  ASSERT_FALSE(result.is_ok());
  EXPECT_NE(result.status().message().find("nesting"), std::string::npos);
}

TEST(JsonDump, RoundTrip) {
  const char* text =
      R"({"name": "lenet", "layers": [{"k": 5, "act": null}, {"k": 2}],)"
      R"( "freq": 180.5, "cloud": true})";
  auto parsed = parse(text);
  ASSERT_TRUE(parsed.is_ok());
  auto reparsed = parse(dump(parsed.value()));
  ASSERT_TRUE(reparsed.is_ok());
  EXPECT_TRUE(parsed.value() == reparsed.value());
  // Compact form too.
  auto compact = parse(dump(parsed.value(), /*pretty=*/false));
  ASSERT_TRUE(compact.is_ok());
  EXPECT_TRUE(parsed.value() == compact.value());
}

TEST(JsonDump, DoubleRoundTripsExactly) {
  const double value = 0.1 + 0.2;  // classic non-representable sum
  Value v(value);
  auto reparsed = parse(dump(v, false));
  ASSERT_TRUE(reparsed.is_ok());
  EXPECT_EQ(reparsed.value().as_double().value(), value);
}

TEST(JsonDump, EscapesControlCharacters) {
  Value v(std::string("a\x01" "b\n"));
  const std::string text = dump(v, false);
  EXPECT_NE(text.find("\\u0001"), std::string::npos);
  EXPECT_NE(text.find("\\n"), std::string::npos);
}

TEST(JsonObject, SetOverwritesAndFinds) {
  Object obj;
  obj.set("a", 1);
  obj.set("a", 2);
  EXPECT_EQ(obj.size(), 1u);
  EXPECT_EQ(obj.find("a")->as_int().value(), 2);
  EXPECT_EQ(obj.find("missing"), nullptr);
}

TEST(JsonValue, EqualityAcrossNumericTypes) {
  EXPECT_TRUE(Value(2) == Value(2.0));
  EXPECT_FALSE(Value(2) == Value(2.5));
  EXPECT_FALSE(Value(2) == Value("2"));
}

}  // namespace
}  // namespace condor::json

// DAG topologies end-to-end (ISSUE 8 tentpole): residual and route
// networks must flow frontend -> planner -> dataflow executor and match
// the reference engines bit-for-bit on every datapath. The oracle is
// nn::QuantizedEngine, which delegates to the float golden reference for
// float32 and runs the integer datapath otherwise — one comparison shape
// for all three data types.
#include <gtest/gtest.h>

#include <algorithm>

#include "dataflow/executor.hpp"
#include "hw/accel_plan.hpp"
#include "hw/dse.hpp"
#include "nn/models.hpp"
#include "nn/quantization.hpp"
#include "test_util.hpp"

namespace condor {
namespace {

/// Plans `network` at `data_type` / `parallel_out` (clamped per layer to
/// its output map count) and EXPECTs the executor to match the reference
/// bit-for-bit over `batch` images.
void expect_dag_bit_exact(const nn::Network& network, nn::DataType data_type,
                          std::size_t parallel_out, std::size_t batch,
                          std::uint64_t seed) {
  auto weights = nn::initialize_weights(network, seed);
  ASSERT_TRUE(weights.is_ok()) << weights.status().to_string();

  auto engine = nn::QuantizedEngine::create(network, weights.value(), data_type);
  ASSERT_TRUE(engine.is_ok()) << engine.status().to_string();

  hw::HwNetwork hw_net = hw::with_default_annotations(network);
  hw_net.hw.data_type = data_type;
  if (parallel_out > 1) {
    auto shapes = network.infer_shapes();
    ASSERT_TRUE(shapes.is_ok()) << shapes.status().to_string();
    for (std::size_t i = 1; i < hw_net.hw.layers.size(); ++i) {
      hw_net.hw.layers[i].parallel_out =
          std::min(parallel_out, shapes.value()[i].output[0]);
    }
  }
  auto plan = hw::plan_accelerator(hw_net);
  ASSERT_TRUE(plan.is_ok()) << plan.status().to_string();

  auto executor =
      dataflow::AcceleratorExecutor::create(plan.value(), weights.value());
  ASSERT_TRUE(executor.is_ok()) << executor.status().to_string();

  const auto inputs = testing::random_inputs(network, batch, seed + 1);
  auto outputs = executor.value().run_batch(inputs);
  ASSERT_TRUE(outputs.is_ok()) << outputs.status().to_string();
  ASSERT_EQ(outputs.value().size(), batch);
  for (std::size_t i = 0; i < batch; ++i) {
    auto expected = engine.value().forward(inputs[i]);
    ASSERT_TRUE(expected.is_ok()) << expected.status().to_string();
    EXPECT_EQ(max_abs_diff(outputs.value()[i], expected.value()), 0.0F)
        << "image " << i << " diverges from the reference";
  }
}

// --- tiny-resnet: conv -> [residual add] -> pool -> fc -> softmax ---------

TEST(DagExecutor, TinyResnetFloat32) {
  expect_dag_bit_exact(nn::make_tiny_resnet(), nn::DataType::kFloat32, 1, 3, 71);
}

TEST(DagExecutor, TinyResnetFixed16) {
  expect_dag_bit_exact(nn::make_tiny_resnet(), nn::DataType::kFixed16, 1, 3, 73);
}

TEST(DagExecutor, TinyResnetFixed8) {
  expect_dag_bit_exact(nn::make_tiny_resnet(), nn::DataType::kFixed8, 1, 3, 79);
}

TEST(DagExecutor, TinyResnetParallelLanesFloat32) {
  expect_dag_bit_exact(nn::make_tiny_resnet(), nn::DataType::kFloat32, 2, 2, 83);
}

TEST(DagExecutor, TinyResnetParallelLanesFixed16) {
  expect_dag_bit_exact(nn::make_tiny_resnet(), nn::DataType::kFixed16, 2, 2, 89);
}

// --- lenet-skip: LeNet with a skip connection over the middle block -------

TEST(DagExecutor, LenetSkipFloat32) {
  expect_dag_bit_exact(nn::make_lenet_skip(), nn::DataType::kFloat32, 1, 2, 97);
}

TEST(DagExecutor, LenetSkipFixed16) {
  expect_dag_bit_exact(nn::make_lenet_skip(), nn::DataType::kFixed16, 1, 2, 101);
}

TEST(DagExecutor, LenetSkipFixed8) {
  expect_dag_bit_exact(nn::make_lenet_skip(), nn::DataType::kFixed8, 1, 2, 103);
}

// --- plan topology ---------------------------------------------------------

TEST(DagExecutor, TinyResnetPlanHasJoinPeAndOperandPorts) {
  const nn::Network network = nn::make_tiny_resnet();
  auto plan = hw::plan_accelerator(hw::with_default_annotations(network));
  ASSERT_TRUE(plan.is_ok()) << plan.status().to_string();

  std::size_t join_pes = 0;
  for (const hw::PePlan& pe : plan.value().pes) {
    if (pe.kind == hw::PeKind::kJoin) {
      ++join_pes;
    }
  }
  EXPECT_EQ(join_pes, network.join_count());

  // Every join PE must be fed on both operand ports.
  for (std::size_t p = 0; p < plan.value().pes.size(); ++p) {
    if (plan.value().pes[p].kind != hw::PeKind::kJoin) {
      continue;
    }
    bool port0 = false;
    bool port1 = false;
    for (const hw::StreamEdge& edge : plan.value().edges) {
      if (edge.to_pe == p && edge.to_pe != hw::StreamEdge::kDatamover) {
        port0 = port0 || edge.to_port == 0;
        port1 = port1 || edge.to_port == 1;
      }
    }
    EXPECT_TRUE(port0 && port1)
        << "join PE '" << plan.value().pes[p].name << "' missing an operand";
  }
}

TEST(DagExecutor, WarmRunsStreamNoWeightBytes) {
  const nn::Network network = nn::make_tiny_resnet();
  auto weights = nn::initialize_weights(network, 107);
  ASSERT_TRUE(weights.is_ok()) << weights.status().to_string();
  hw::HwNetwork hw_net = hw::with_default_annotations(network);
  hw_net.hw.data_type = nn::DataType::kFixed16;
  auto plan = hw::plan_accelerator(hw_net);
  ASSERT_TRUE(plan.is_ok()) << plan.status().to_string();
  auto executor =
      dataflow::AcceleratorExecutor::create(plan.value(), weights.value());
  ASSERT_TRUE(executor.is_ok()) << executor.status().to_string();

  const auto inputs = testing::random_inputs(network, 2, 109);
  ASSERT_TRUE(executor.value().run_batch(inputs).is_ok());
  EXPECT_GT(executor.value().last_run_stats().weight_bytes_streamed, 0U)
      << "cold run must stream the resident weight slices";
  ASSERT_TRUE(executor.value().run_batch(inputs).is_ok());
  EXPECT_EQ(executor.value().last_run_stats().weight_bytes_streamed, 0U)
      << "warm run re-streamed weights despite residency";
}

TEST(DagExecutor, MultiImagePipeliningThroughResidualBlock) {
  const nn::Network network = nn::make_tiny_resnet();
  auto weights = nn::initialize_weights(network, 113);
  ASSERT_TRUE(weights.is_ok()) << weights.status().to_string();
  auto plan = hw::plan_accelerator(hw::with_default_annotations(network));
  ASSERT_TRUE(plan.is_ok()) << plan.status().to_string();
  auto executor =
      dataflow::AcceleratorExecutor::create(plan.value(), weights.value());
  ASSERT_TRUE(executor.is_ok()) << executor.status().to_string();

  const auto inputs = testing::random_inputs(network, 4, 127);
  ASSERT_TRUE(executor.value().run_batch(inputs).is_ok());
  // The skip edge is deep enough to park whole images, so the DAG must not
  // serialize the batch to one image in flight.
  EXPECT_GT(executor.value().last_run_stats().images_in_flight_hwm, 1U)
      << "residual diamond serialized the pipeline";
}

}  // namespace
}  // namespace condor

// Tests for the HLS code generator and the simulated synthesis reports.
#include <gtest/gtest.h>

#include "hls/codegen.hpp"
#include "hls/cosim.hpp"
#include "hls/synthesis.hpp"
#include "nn/models.hpp"
#include "nn/weights.hpp"
#include "test_util.hpp"

namespace condor::hls {
namespace {

hw::AcceleratorPlan lenet_plan() {
  return hw::plan_accelerator(hw::with_default_annotations(nn::make_lenet()))
      .value();
}

TEST(Codegen, ConvPeSourceHasExpectedStructure) {
  const auto plan = lenet_plan();
  auto source = generate_pe_source(plan, 0);  // conv1
  ASSERT_TRUE(source.is_ok()) << source.status().to_string();
  const std::string& code = source.value().code;
  EXPECT_EQ(source.value().file_name, "pe0_conv1.cpp");
  EXPECT_NE(code.find("hls::stream<data_t>& port_4_4"), std::string::npos);
  EXPECT_NE(code.find("#pragma HLS PIPELINE II=1"), std::string::npos);
  EXPECT_NE(code.find("#pragma HLS ARRAY_PARTITION variable=win complete"),
            std::string::npos);
  EXPECT_NE(code.find("weight_stream"), std::string::npos);
  EXPECT_NE(code.find("convolution 'conv1' 5x5"), std::string::npos);
}

TEST(Codegen, PoolPeSourceUsesComparisons) {
  const auto plan = lenet_plan();
  auto source = generate_pe_source(plan, 1);  // pool1 (max)
  ASSERT_TRUE(source.is_ok());
  EXPECT_NE(source.value().code.find("win[k] > r"), std::string::npos);
  // Max pooling carries no weight stream.
  EXPECT_EQ(source.value().code.find("weight_stream"), std::string::npos);
}

TEST(Codegen, FcPeIsSingleInSingleOut1x1Conv) {
  const auto plan = lenet_plan();
  auto source = generate_pe_source(plan, 4);  // ip1
  ASSERT_TRUE(source.is_ok());
  const std::string& code = source.value().code;
  EXPECT_NE(code.find("1x1 single-input/single-output"), std::string::npos);
  EXPECT_NE(code.find("hls::stream<data_t>& in_stream"), std::string::npos);
  EXPECT_EQ(code.find("port_0_0"), std::string::npos);  // no memory subsystem
  EXPECT_NE(code.find("RAM_2P_BRAM"), std::string::npos);  // on-chip weights
}

TEST(Codegen, TanhActivationEmitted) {
  const auto plan =
      hw::plan_accelerator(hw::with_default_annotations(nn::make_tc1())).value();
  auto source = generate_pe_source(plan, 0);
  ASSERT_TRUE(source.is_ok());
  EXPECT_NE(source.value().code.find("hls::tanhf"), std::string::npos);
}

TEST(Codegen, FusedPeKeepsIntermediatePassesLocal) {
  // conv1+pool1 fused on one PE: pass 0 reads the window ports, pass 1
  // gathers from the retained PE-local buffer and only the last pass
  // touches out_stream — the loopback disappears from the generated code.
  hw::HwNetwork net = hw::with_default_annotations(nn::make_lenet());
  net.hw.layers[1].pe_group = 0;  // conv1
  net.hw.layers[2].pe_group = 0;  // pool1
  const auto plan = hw::plan_accelerator(net).value();
  ASSERT_EQ(plan.pes[0].layer_indices.size(), 2u);
  auto source = generate_pe_source(plan, 0);
  ASSERT_TRUE(source.is_ok()) << source.status().to_string();
  const std::string& code = source.value().code;
  // Ping-pong locality buffers declared, sized for the intermediate blob.
  EXPECT_NE(code.find("static data_t fused_a"), std::string::npos);
  EXPECT_NE(code.find("static data_t fused_b"), std::string::npos);
  // Pass 0 (conv) writes into the local buffer, not the output stream.
  EXPECT_NE(code.find("fused_a[oc *"), std::string::npos);
  // Pass 1 (pool) gathers its window from the retained blob.
  EXPECT_NE(code.find("? fused_a[c *"), std::string::npos);
  // Exactly one pass emits to out_stream (the final one).
  std::size_t writes = 0;
  for (std::size_t at = code.find("out_stream.write");
       at != std::string::npos; at = code.find("out_stream.write", at + 1)) {
    ++writes;
  }
  EXPECT_EQ(writes, 1u);
}

TEST(Codegen, UnfusedPeHasNoLocalityBuffers) {
  const auto plan = lenet_plan();
  auto source = generate_pe_source(plan, 0);
  ASSERT_TRUE(source.is_ok());
  EXPECT_EQ(source.value().code.find("fused_a"), std::string::npos);
}

TEST(Codegen, FilterSourceStatesInequalities) {
  const auto plan = lenet_plan();
  auto source = generate_filter_source(plan, 0, hw::WindowAccess{3, 1});
  ASSERT_TRUE(source.is_ok());
  const std::string& code = source.value().code;
  EXPECT_NE(code.find("const int KY = 3, KX = 1;"), std::string::npos);
  EXPECT_NE(code.find("ry % stride == 0"), std::string::npos);
  EXPECT_NE(code.find("ry / stride < out_h"), std::string::npos);
  EXPECT_NE(code.find("next_filter.write(v)"), std::string::npos);
}

TEST(Codegen, TailFilterHasNoDownstream) {
  const auto plan = lenet_plan();
  auto source = generate_filter_source(plan, 0, hw::WindowAccess{0, 0});
  ASSERT_TRUE(source.is_ok());
  EXPECT_EQ(source.value().code.find("next_filter"), std::string::npos);
}

TEST(Codegen, FilterForClassifierPeRejected) {
  const auto plan = lenet_plan();
  EXPECT_FALSE(generate_filter_source(plan, 4, hw::WindowAccess{0, 0}).is_ok());
  EXPECT_FALSE(generate_pe_source(plan, 99).is_ok());
}

TEST(Codegen, TopLevelDeclaresStreamsAndInterfaces) {
  const auto plan = lenet_plan();
  auto source = generate_top_source(plan);
  ASSERT_TRUE(source.is_ok());
  const std::string& code = source.value().code;
  EXPECT_NE(code.find("#pragma HLS DATAFLOW"), std::string::npos);
  EXPECT_NE(code.find("m_axi port=gmem_in"), std::string::npos);
  EXPECT_NE(code.find("s_axilite port=batch"), std::string::npos);
  for (const hw::PePlan& pe : plan.pes) {
    EXPECT_NE(code.find(pe.name), std::string::npos) << pe.name;
  }
  // FIFO depths from the plan appear as STREAM pragmas.
  EXPECT_NE(code.find("#pragma HLS STREAM"), std::string::npos);
}

TEST(Codegen, AllSourcesCoverEveryModule) {
  const auto plan = lenet_plan();
  auto sources = generate_all_sources(plan);
  ASSERT_TRUE(sources.is_ok());
  // 1 top + 6 PEs + filters (25 for each 5x5 conv, 4 for each 2x2 pool).
  std::size_t expected_filters = 0;
  for (const hw::PePlan& pe : plan.pes) {
    if (pe.memory.has_value()) {
      expected_filters += pe.memory->filters.size();
    }
  }
  EXPECT_EQ(sources.value().size(), 1 + plan.pes.size() + expected_filters);
  // File names are unique.
  std::set<std::string> names;
  for (const GeneratedSource& source : sources.value()) {
    EXPECT_TRUE(names.insert(source.file_name).second) << source.file_name;
  }
}

TEST(Synthesis, ReportCoversEveryPe) {
  const auto plan = lenet_plan();
  auto report = synthesize(plan);
  ASSERT_TRUE(report.is_ok()) << report.status().to_string();
  EXPECT_EQ(report.value().modules.size(), plan.pes.size());
  EXPECT_DOUBLE_EQ(report.value().achieved_clock_mhz, 180.0);
  EXPECT_DOUBLE_EQ(report.value().target_clock_mhz, 200.0);
  EXPECT_FALSE(report.value().timing_met);  // 180 < 200
  for (const ModuleReport& module : report.value().modules) {
    EXPECT_GT(module.interval_cycles, 0u) << module.module;
    EXPECT_GE(module.latency_cycles, module.interval_cycles);
    EXPECT_GT(module.estimated_clock_mhz, 0.0);
  }
  const std::string text = report.value().to_string(plan.board);
  EXPECT_NE(text.find("synthesis report"), std::string::npos);
  EXPECT_NE(text.find("NOT met"), std::string::npos);
}

TEST(Synthesis, TimingMetWhenTargetModest) {
  hw::HwNetwork net =
      hw::with_default_annotations(nn::make_lenet(), "aws-f1", 150.0);
  auto report = synthesize(hw::plan_accelerator(net).value());
  ASSERT_TRUE(report.is_ok());
  EXPECT_TRUE(report.value().timing_met);
  EXPECT_DOUBLE_EQ(report.value().achieved_clock_mhz, 150.0);
}

TEST(Cosim, Tc1PassesFunctionalAndCycleLevel) {
  const auto plan = hw::plan_accelerator(
                        hw::with_default_annotations(nn::make_tc1()))
                        .value();
  auto weights = nn::initialize_weights(nn::make_tc1(), 17);
  ASSERT_TRUE(weights.is_ok());
  auto report = cosimulate(plan, weights.value(), /*batch=*/2);
  ASSERT_TRUE(report.is_ok()) << report.status().to_string();
  EXPECT_TRUE(report.value().functional_pass);
  EXPECT_EQ(report.value().max_abs_diff, 0.0F);
  // TC1's four feature PEs all stall-free with planned FIFO capacities.
  EXPECT_EQ(report.value().pes.size(), 4u);
  for (const CosimPeReport& pe : report.value().pes) {
    EXPECT_TRUE(pe.stall_free) << pe.name;
    EXPECT_GT(pe.cycles, 0u);
  }
  EXPECT_TRUE(report.value().pass());
  const std::string text = report.value().to_string();
  EXPECT_NE(text.find("co-simulation"), std::string::npos);
  EXPECT_NE(text.find("PASS"), std::string::npos);
}

TEST(Cosim, MismatchedWeightsRejected) {
  const auto plan = hw::plan_accelerator(
                        hw::with_default_annotations(nn::make_tc1()))
                        .value();
  auto wrong = nn::initialize_weights(nn::make_lenet(), 17);
  ASSERT_TRUE(wrong.is_ok());
  EXPECT_FALSE(cosimulate(plan, wrong.value()).is_ok());
}

TEST(Synthesis, UnsynthesizableDesignFails) {
  hw::HwNetwork net =
      hw::with_default_annotations(nn::make_tc1(), "zedboard", 100.0);
  auto report = synthesize(hw::plan_accelerator(net).value());
  EXPECT_FALSE(report.is_ok());
  EXPECT_EQ(report.status().code(), StatusCode::kUnsynthesizable);
}

}  // namespace
}  // namespace condor::hls

// Full-system integration tests: the user's journey from a Caffe checkpoint
// through the cloud deployment to validated inference on an F1 slot, plus
// the evaluation-level shape properties of Tables 1-2 and Figure 5.
#include <gtest/gtest.h>

#include <filesystem>

#include "caffe/export.hpp"
#include "cloud/afi.hpp"
#include "cloud/f1.hpp"
#include "cloud/s3.hpp"
#include "condor/flow.hpp"
#include "condor/report.hpp"
#include "nn/models.hpp"
#include "nn/reference.hpp"
#include "nn/weights.hpp"
#include "sim/accel_sim.hpp"
#include "test_util.hpp"

namespace condor {
namespace {

struct CloudEnv {
  explicit CloudEnv(const char* name)
      : root(::testing::TempDir() + "/condor_integration_" + name),
        store((std::filesystem::remove_all(root), root)),
        afi(store, 1) {}
  std::string root;
  cloud::ObjectStore store;
  cloud::AfiService afi;
};

/// Caffe files -> cloud flow -> AFI -> F1 slot -> inference == reference.
void run_cloud_journey(const nn::Network& model, std::uint64_t seed,
                       std::size_t batch, const char* env_name) {
  CloudEnv env(env_name);
  auto weights = nn::initialize_weights(model, seed).value();

  condorflow::FrontendInput input;
  input.prototxt_text = caffe::to_prototxt(model).value();
  input.caffemodel_bytes = caffe::to_caffemodel(model, weights).value();

  condorflow::FlowOptions options;
  options.deployment = condorflow::Deployment::kCloud;
  options.s3_bucket = "integration-bucket";

  auto flow = condorflow::Flow::run(input, options, &env.store, &env.afi);
  ASSERT_TRUE(flow.is_ok()) << flow.status().to_string();
  ASSERT_TRUE(flow.value().afi.has_value());

  auto available = env.afi.wait_until_available(flow.value().afi->afi_id);
  ASSERT_TRUE(available.is_ok()) << available.status().to_string();

  cloud::F1Instance instance(cloud::F1InstanceType::k2xlarge, env.afi);
  ASSERT_TRUE(instance.load_afi(0, available.value().agfi_id).is_ok());
  auto kernel = instance.slot_kernel(0);
  ASSERT_TRUE(kernel.is_ok());
  ASSERT_TRUE(
      kernel.value()->load_weights(flow.value().weight_file_bytes).is_ok());

  const auto inputs = testing::random_inputs(model, batch, seed + 100);
  auto outputs = kernel.value()->run(inputs);
  ASSERT_TRUE(outputs.is_ok()) << outputs.status().to_string();

  auto engine = nn::ReferenceEngine::create(model, weights);
  ASSERT_TRUE(engine.is_ok());
  for (std::size_t i = 0; i < batch; ++i) {
    const Tensor expected = engine.value().forward(inputs[i]).value();
    EXPECT_EQ(max_abs_diff(outputs.value()[i], expected), 0.0F) << "image " << i;
  }
  // Device timing was simulated.
  EXPECT_GT(kernel.value()->last_stats().simulated_cycles, 0u);
  EXPECT_GT(kernel.value()->last_stats().clock_mhz, 0.0);
}

TEST(Integration, Tc1CloudJourneyBitExact) {
  run_cloud_journey(nn::make_tc1(), 101, 6, "tc1");
}

TEST(Integration, LeNetCloudJourneyBitExact) {
  run_cloud_journey(nn::make_lenet(), 103, 2, "lenet");
}

TEST(Integration, WeightUpdateWithoutResynthesis) {
  // Paper §3.1.1: updating the external weight file must not require a new
  // accelerator. Build once, run with two different weight sets, check both
  // against their own reference.
  const nn::Network model = nn::make_tc1();
  condorflow::FrontendInput input;
  input.network_json_text = hw::to_json_text(hw::with_default_annotations(model));
  auto weights_v1 = nn::initialize_weights(model, 1).value();
  auto weights_v2 = nn::initialize_weights(model, 2).value();
  input.weight_file_bytes = weights_v1.serialize();
  auto flow = condorflow::Flow::run(input, condorflow::FlowOptions{});
  ASSERT_TRUE(flow.is_ok());

  auto kernel = runtime::LoadedKernel::from_xclbin(flow.value().xclbin);
  ASSERT_TRUE(kernel.is_ok());
  const auto inputs = testing::random_inputs(model, 2, 55);

  for (const nn::WeightStore* weights : {&weights_v1, &weights_v2}) {
    ASSERT_TRUE(kernel.value().load_weights(weights->serialize()).is_ok());
    auto outputs = kernel.value().run(inputs);
    ASSERT_TRUE(outputs.is_ok());
    auto engine = nn::ReferenceEngine::create(model, *weights);
    ASSERT_TRUE(engine.is_ok());
    for (std::size_t i = 0; i < inputs.size(); ++i) {
      EXPECT_EQ(max_abs_diff(outputs.value()[i],
                             engine.value().forward(inputs[i]).value()),
                0.0F);
    }
  }
}

// ---- Evaluation-shape properties (Tables 1-2, Figure 5) --------------------

condorflow::DeploymentReport deploy_report(const nn::Network& model) {
  condorflow::FrontendInput input;
  input.network_json_text =
      hw::to_json_text(hw::with_default_annotations(model, "aws-f1", 200.0));
  input.weight_file_bytes =
      nn::initialize_weights(model, 11).value().serialize();
  auto flow = condorflow::Flow::run(input, condorflow::FlowOptions{});
  return condorflow::make_deployment_report(flow.value()).value();
}

TEST(Integration, Table1ShapeHolds) {
  const auto tc1 = deploy_report(nn::make_tc1());
  const auto lenet = deploy_report(nn::make_lenet());
  // Achieved clocks match the paper exactly.
  EXPECT_DOUBLE_EQ(tc1.achieved_mhz, 100.0);
  EXPECT_DOUBLE_EQ(lenet.achieved_mhz, 180.0);
  // Resource shapes: TC1 DSP-heavier (tanh), LeNet BRAM-dominated (FC
  // weights), both landing near 10% LUT.
  EXPECT_GT(tc1.dsp_pct, lenet.dsp_pct);
  EXPECT_GT(lenet.bram_pct, 5.0 * tc1.bram_pct);
  EXPECT_GT(tc1.lut_pct, 5.0);
  EXPECT_LT(tc1.lut_pct, 20.0);
  // Performance shape: TC1 out-throughputs the FC-bound LeNet, in GFLOPS
  // and in GFLOPS/W.
  EXPECT_GT(tc1.gflops, lenet.gflops);
  EXPECT_GT(tc1.gflops_per_w, lenet.gflops_per_w);
  // Magnitudes within ~2x of the published numbers.
  EXPECT_NEAR(tc1.gflops, 8.36, 8.36);
  EXPECT_NEAR(lenet.gflops, 3.35, 3.35);
}

TEST(Integration, Table2ShapeHolds) {
  // Preliminary configuration (parallel_in=2 / parallel_out=4 clamped), as
  // in the Table 2 bench: monotonic GFLOPS growth TC1 < LeNet < VGG-16.
  std::vector<double> gflops;
  for (const nn::Network& model :
       {nn::make_tc1(), nn::make_lenet(), nn::make_vgg16()}) {
    const nn::Network features = model.feature_extraction_prefix();
    hw::HwNetwork net = hw::with_default_annotations(features, "aws-f1", 250.0);
    auto shapes = net.net.infer_shapes().value();
    for (std::size_t l = 1; l < net.hw.layers.size(); ++l) {
      if (!net.net.layers()[l].is_feature_extraction()) {
        continue;
      }
      net.hw.layers[l].parallel_in = std::min<std::size_t>(2, shapes[l].input[0]);
      net.hw.layers[l].parallel_out =
          std::min<std::size_t>(4, shapes[l].output[0]);
    }
    auto point = hw::evaluate_design_point(net);
    ASSERT_TRUE(point.is_ok()) << point.status().to_string();
    gflops.push_back(point.value().gflops());
  }
  EXPECT_LT(gflops[0], gflops[1]);
  EXPECT_LT(gflops[1], gflops[2]);
  // And the full VGG-16 is rejected, as the paper states.
  auto full = hw::plan_accelerator(hw::with_default_annotations(nn::make_vgg16()));
  EXPECT_EQ(full.status().code(), StatusCode::kUnsynthesizable);
}

TEST(Integration, Figure5ShapeHolds) {
  for (const nn::Network& model : {nn::make_tc1(), nn::make_lenet()}) {
    hw::HwNetwork net = hw::with_default_annotations(model);
    auto point = hw::evaluate_design_point(net);
    ASSERT_TRUE(point.is_ok());
    const sim::AcceleratorSim accel =
        sim::build_accelerator_sim(point.value().performance);
    auto sweep = sim::sweep_batches(accel, {1, 2, 4, 8, 16, 32, 64, 128, 256});
    ASSERT_TRUE(sweep.is_ok());
    // Monotone decreasing.
    for (std::size_t i = 1; i < sweep.value().size(); ++i) {
      EXPECT_LE(sweep.value()[i].mean_ms_per_image,
                sweep.value()[i - 1].mean_ms_per_image)
          << model.name() << " batch " << sweep.value()[i].batch;
    }
    // Convergence once batch exceeds the layer count (paper's claim).
    const double plateau = sweep.value().back().mean_ms_per_image;
    double at_layers = 0.0;
    for (const sim::BatchPoint& p : sweep.value()) {
      if (p.batch >= model.layer_count()) {
        at_layers = p.mean_ms_per_image;
        break;
      }
    }
    EXPECT_LT((at_layers - plateau) / plateau, 0.30) << model.name();
  }
}

}  // namespace
}  // namespace condor

// Tests for the serving layer: BatcherCore admission control and batch
// formation (fake clock, no sleeps), weighted fair scheduling and the
// deadline starvation bound, the warm PlanCache, the threaded Server
// end-to-end demux, and the open-loop load generator.
#include <gtest/gtest.h>

#include <cstring>
#include <future>
#include <vector>

#include "dataflow/executor.hpp"
#include "dataflow/executor_pool.hpp"
#include "hw/accel_plan.hpp"
#include "hw/hw_ir.hpp"
#include "nn/models.hpp"
#include "nn/weights.hpp"
#include "serve/batcher.hpp"
#include "serve/loadgen.hpp"
#include "serve/plan_cache.hpp"
#include "serve/server.hpp"
#include "test_util.hpp"

namespace condor::serve {
namespace {

Tensor tiny_input() { return Tensor(Shape{1, 1, 1}); }

std::vector<TenantConfig> one_tenant(std::size_t capacity = 64) {
  TenantConfig tenant;
  tenant.name = "solo";
  tenant.queue_capacity = capacity;
  return {tenant};
}

// ---- admission control ------------------------------------------------------

TEST(BatcherAdmission, UnknownTenantIsNotFound) {
  BatcherCore core(BatcherOptions{}, one_tenant());
  auto ticket = core.admit(1, tiny_input(), 0.0);
  ASSERT_FALSE(ticket.is_ok());
  EXPECT_EQ(ticket.status().code(), StatusCode::kNotFound);
}

TEST(BatcherAdmission, QueueFullRejectsNamingTheTenant) {
  BatcherCore core(BatcherOptions{}, one_tenant(/*capacity=*/2));
  EXPECT_TRUE(core.admit(0, tiny_input(), 0.0).is_ok());
  EXPECT_TRUE(core.admit(0, tiny_input(), 0.0).is_ok());
  auto rejected = core.admit(0, tiny_input(), 0.0);
  ASSERT_FALSE(rejected.is_ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(rejected.status().message().find("'solo'"), std::string::npos)
      << rejected.status().to_string();
  EXPECT_NE(rejected.status().message().find("queue full"), std::string::npos);
  EXPECT_EQ(core.tenant_counters(0).admitted, 2u);
  EXPECT_EQ(core.tenant_counters(0).rejected, 1u);
}

TEST(BatcherAdmission, GlobalInflightCapRejectsAndCompleteReleases) {
  BatcherOptions options;
  options.max_batch = 4;
  options.max_inflight = 3;
  BatcherCore core(options, one_tenant(/*capacity=*/64));
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(core.admit(0, tiny_input(), 0.0).is_ok());
  }
  auto rejected = core.admit(0, tiny_input(), 0.0);
  ASSERT_FALSE(rejected.is_ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(rejected.status().message().find("max in-flight"),
            std::string::npos);

  // The cap counts admitted-but-incomplete requests: dispatching alone does
  // not release slots, completion does.
  std::optional<Batch> batch = core.form_batch(0.0, /*flush=*/true);
  ASSERT_TRUE(batch.has_value());
  EXPECT_EQ(batch->requests.size(), 3u);
  EXPECT_FALSE(core.admit(0, tiny_input(), 0.0).is_ok());
  core.complete(*batch);
  EXPECT_TRUE(core.admit(0, tiny_input(), 0.0).is_ok());
}

TEST(BatcherAdmission, TicketsAreUniqueAndMonotonic) {
  BatcherCore core(BatcherOptions{}, one_tenant());
  const std::uint64_t a = core.admit(0, tiny_input(), 0.0).value();
  const std::uint64_t b = core.admit(0, tiny_input(), 0.0).value();
  EXPECT_LT(a, b);
}

// ---- batch formation (fake clock) -------------------------------------------

TEST(BatcherFormation, NotDueBeforePreferredDepthOrDeadline) {
  BatcherOptions options;
  options.max_batch = 16;
  options.preferred_batch = 4;
  options.max_delay_seconds = 0.010;
  BatcherCore core(options, one_tenant());
  ASSERT_TRUE(core.admit(0, tiny_input(), 0.0).is_ok());
  EXPECT_FALSE(core.batch_due(0.0));
  EXPECT_FALSE(core.form_batch(0.0).has_value());
  // ... but the deadline makes it due without any more arrivals.
  EXPECT_FALSE(core.batch_due(0.0099));
  EXPECT_TRUE(core.batch_due(0.010));
  std::optional<Batch> batch = core.form_batch(0.010);
  ASSERT_TRUE(batch.has_value());
  EXPECT_EQ(batch->requests.size(), 1u);
  EXPECT_TRUE(batch->deadline_triggered);
  EXPECT_EQ(core.counters().deadline_batches, 1u);
}

TEST(BatcherFormation, PreferredDepthDispatchesEarly) {
  BatcherOptions options;
  options.max_batch = 16;
  options.preferred_batch = 4;
  options.max_delay_seconds = 0.010;
  BatcherCore core(options, one_tenant());
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(core.admit(0, tiny_input(), 0.0).is_ok());
  }
  EXPECT_TRUE(core.batch_due(0.0));
  std::optional<Batch> batch = core.form_batch(0.0);
  ASSERT_TRUE(batch.has_value());
  EXPECT_EQ(batch->requests.size(), 4u);
  EXPECT_FALSE(batch->deadline_triggered);
}

TEST(BatcherFormation, MaxBatchCapsAndLeavesTheRestQueued) {
  BatcherOptions options;
  options.max_batch = 4;
  BatcherCore core(options, one_tenant(/*capacity=*/64));
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(core.admit(0, tiny_input(), 0.0).is_ok());
  }
  std::optional<Batch> batch = core.form_batch(0.0);
  ASSERT_TRUE(batch.has_value());
  EXPECT_EQ(batch->requests.size(), 4u);
  EXPECT_EQ(core.queued(), 6u);
  // FIFO within the tenant: oldest tickets ride first.
  EXPECT_EQ(batch->requests.front().id, 1u);
  EXPECT_EQ(batch->requests.back().id, 4u);
}

TEST(BatcherFormation, NextDeadlineTracksTheOldestQueuedRequest) {
  BatcherOptions options;
  options.max_delay_seconds = 0.010;
  BatcherCore core(options, one_tenant());
  EXPECT_FALSE(core.next_deadline().has_value());
  ASSERT_TRUE(core.admit(0, tiny_input(), 1.0).is_ok());
  ASSERT_TRUE(core.admit(0, tiny_input(), 2.0).is_ok());
  ASSERT_TRUE(core.next_deadline().has_value());
  EXPECT_DOUBLE_EQ(*core.next_deadline(), 1.010);
}

// ---- weighted fair scheduling -----------------------------------------------

std::vector<TenantConfig> interactive_and_bulk() {
  TenantConfig interactive;
  interactive.name = "chat";
  interactive.qos = QosClass::kInteractive;  // default weight 8
  interactive.queue_capacity = 256;
  TenantConfig bulk;
  bulk.name = "offline";
  bulk.qos = QosClass::kBulk;  // default weight 1
  bulk.queue_capacity = 256;
  return {interactive, bulk};
}

TEST(BatcherFairness, BatchSlotsSplitByWeightUnderContention) {
  BatcherOptions options;
  options.max_batch = 18;
  options.preferred_batch = 1;
  options.max_delay_seconds = 1.0;  // no deadline interference
  BatcherCore core(options, interactive_and_bulk());
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(core.admit(0, tiny_input(), 0.0).is_ok());
    ASSERT_TRUE(core.admit(1, tiny_input(), 0.0).is_ok());
  }
  std::optional<Batch> batch = core.form_batch(0.0);
  ASSERT_TRUE(batch.has_value());
  ASSERT_EQ(batch->requests.size(), 18u);
  std::size_t interactive = 0;
  std::size_t bulk = 0;
  for (const Request& request : batch->requests) {
    (request.tenant == 0 ? interactive : bulk)++;
  }
  // Stride scheduling at weights 8:1 over 18 slots is deterministic:
  // 16 interactive picks, 2 bulk picks — proportional, never exclusive.
  EXPECT_EQ(interactive, 16u);
  EXPECT_EQ(bulk, 2u);
}

TEST(BatcherFairness, IdleTenantBanksNoCatchUpCredit) {
  BatcherOptions options;
  options.max_batch = 12;
  options.preferred_batch = 1;
  options.max_delay_seconds = 10.0;
  BatcherCore core(options, interactive_and_bulk());
  // Bulk runs alone for a while (its pass advances far beyond zero).
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(core.admit(1, tiny_input(), 0.0).is_ok());
  }
  for (int b = 0; b < 2; ++b) {
    auto batch = core.form_batch(0.0);
    ASSERT_TRUE(batch.has_value());
    core.complete(*batch);
  }
  // The interactive tenant wakes up. The stride lag fix starts it at the
  // scheduler's current position: it dominates the next batch by weight
  // (8:1), but the bank of idle time buys it no exclusive run — the
  // lingering bulk backlog keeps drawing its proportional slots.
  for (int i = 0; i < 16; ++i) {
    ASSERT_TRUE(core.admit(0, tiny_input(), 0.0).is_ok());
  }
  auto batch = core.form_batch(0.0);
  ASSERT_TRUE(batch.has_value());
  std::size_t interactive = 0;
  std::size_t bulk = 0;
  for (const Request& request : batch->requests) {
    (request.tenant == 0 ? interactive : bulk)++;
  }
  EXPECT_EQ(batch->requests.size(), 12u);
  EXPECT_GE(interactive, 9u);
  EXPECT_GE(bulk, 1u);
}

// Satellite (c): a flooding bulk tenant must not delay the interactive
// tenant past the deadline bound. Driven entirely on a fake virtual clock —
// no threads, no sleeps — with the backend modeled as busy for a fixed
// service time per batch.
TEST(BatcherFairness, FloodedBulkNeverDelaysInteractivePastDeadlineBound) {
  constexpr double kService = 0.004;  // seconds per dispatched batch
  BatcherOptions options;
  options.max_batch = 4;
  options.preferred_batch = 4;
  options.max_delay_seconds = 0.010;
  options.max_inflight = 4096;
  std::vector<TenantConfig> tenants = interactive_and_bulk();
  tenants[1].queue_capacity = 4096;
  BatcherCore core(options, tenants);

  // The slow tenant floods 400 requests up front — a hundred batches of
  // backlog, far more than the interactive traffic spans.
  for (int i = 0; i < 400; ++i) {
    ASSERT_TRUE(core.admit(1, tiny_input(), 0.0).is_ok());
  }
  const std::vector<double> interactive_arrivals = {0.003, 0.0171, 0.029};

  std::vector<double> interactive_latencies;
  std::size_t next_arrival = 0;
  double now = 0.0;
  double free_at = 0.0;
  while (interactive_latencies.size() < interactive_arrivals.size()) {
    while (next_arrival < interactive_arrivals.size() &&
           interactive_arrivals[next_arrival] <= now) {
      ASSERT_TRUE(
          core.admit(0, tiny_input(), interactive_arrivals[next_arrival])
              .is_ok());
      ++next_arrival;
    }
    if (now >= free_at && core.batch_due(now)) {
      std::optional<Batch> batch = core.form_batch(now);
      ASSERT_TRUE(batch.has_value());
      const double completion = now + kService;
      for (const Request& request : batch->requests) {
        if (request.tenant == 0) {
          interactive_latencies.push_back(completion -
                                          request.arrival_seconds);
        }
      }
      core.complete(*batch);
      free_at = completion;
    }
    // Advance to the next event; the bulk backlog keeps a batch due at all
    // times, so the backend-free instant is always an event.
    double next = free_at > now ? free_at : now + kService;
    if (next_arrival < interactive_arrivals.size()) {
      next = std::min(next, interactive_arrivals[next_arrival]);
    }
    ASSERT_GT(next, now) << "virtual clock stalled";
    now = next;
  }

  // Hard bound: at worst a request waits out its deadline behind one
  // already-running batch, then rides the next one — max_delay plus two
  // service times. The flood never pushes it further.
  for (const double latency : interactive_latencies) {
    EXPECT_LE(latency, options.max_delay_seconds + 2 * kService + 1e-9);
  }
}

// ---- plan cache -------------------------------------------------------------

TEST(PlanCacheTest, FingerprintIgnoresNamesButNotGeometry) {
  condor::testing::TinyNetConfig config;
  const nn::Network a = condor::testing::make_tiny_net(config);
  nn::Network b = condor::testing::make_tiny_net(config);
  // Same structure under different labels hashes identically.
  EXPECT_EQ(fingerprint(a), fingerprint(b));

  config.conv_outputs += 1;
  const nn::Network c = condor::testing::make_tiny_net(config);
  EXPECT_NE(fingerprint(a), fingerprint(c));
}

TEST(PlanCacheTest, WeightFingerprintTracksParameterBytes) {
  const nn::Network net =
      condor::testing::make_tiny_net(condor::testing::TinyNetConfig{});
  nn::WeightStore w1 = nn::initialize_weights(net, 5).value();
  const nn::WeightStore w2 = nn::initialize_weights(net, 6).value();
  EXPECT_NE(fingerprint(w1), fingerprint(w2));
  EXPECT_EQ(fingerprint(w1), fingerprint(w1));
}

TEST(PlanCacheTest, RepeatSessionHitsAndSharesThePool) {
  const nn::Network net =
      condor::testing::make_tiny_net(condor::testing::TinyNetConfig{});
  const nn::WeightStore weights = nn::initialize_weights(net, 5).value();
  PlanCache cache(4);
  auto first =
      cache.get_or_create(net, weights, nn::DataType::kFloat32, 2);
  ASSERT_TRUE(first.is_ok()) << first.status().to_string();
  auto second =
      cache.get_or_create(net, weights, nn::DataType::kFloat32, 2);
  ASSERT_TRUE(second.is_ok());
  // Warm hit: the very same entry (and thus the same compiled pool).
  EXPECT_EQ(first.value().get(), second.value().get());
  EXPECT_EQ(first.value()->pool.get(), second.value()->pool.get());
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);

  // Any key component change is a compile, not a stale hit.
  auto fixed =
      cache.get_or_create(net, weights, nn::DataType::kFixed8, 2);
  ASSERT_TRUE(fixed.is_ok());
  EXPECT_NE(fixed.value().get(), first.value().get());
  auto wider = cache.get_or_create(net, weights, nn::DataType::kFloat32, 3);
  ASSERT_TRUE(wider.is_ok());
  EXPECT_NE(wider.value().get(), first.value().get());
  EXPECT_EQ(cache.stats().misses, 3u);
  EXPECT_EQ(cache.size(), 3u);

  // The cached pool actually serves.
  const auto inputs = condor::testing::random_inputs(net, 3, 7);
  auto outputs = first.value()->pool->run_batch(inputs);
  ASSERT_TRUE(outputs.is_ok());
  EXPECT_EQ(outputs.value().size(), 3u);
}

TEST(PlanCacheTest, PlanParameterDigestSeparatesClusterings) {
  // Two tenants serving the same network with different plan parameters
  // (fused clustering, parallelism, board) must get distinct compiled
  // pools: the key folds in plan_fingerprint, not just the topology hash.
  condor::testing::TinyNetConfig config;
  config.with_pool = true;
  const nn::Network net = condor::testing::make_tiny_net(config);
  const nn::WeightStore weights = nn::initialize_weights(net, 5).value();
  const hw::HwNetwork base = hw::with_default_annotations(net);
  hw::HwNetwork fused = base;
  fused.hw.layers[1].pe_group = 0;  // conv
  fused.hw.layers[2].pe_group = 0;  // pool
  ASSERT_TRUE(fused.validate().is_ok());
  hw::HwNetwork wider = base;
  wider.hw.layers[1].parallel_out = 2;
  EXPECT_NE(plan_fingerprint(base), plan_fingerprint(fused));
  EXPECT_NE(plan_fingerprint(base), plan_fingerprint(wider));

  PlanCache cache(4);
  auto plain = cache.get_or_create(base, weights, nn::DataType::kFloat32, 1);
  auto clustered =
      cache.get_or_create(fused, weights, nn::DataType::kFloat32, 1);
  ASSERT_TRUE(plain.is_ok()) << plain.status().to_string();
  ASSERT_TRUE(clustered.is_ok()) << clustered.status().to_string();
  EXPECT_NE(plain.value().get(), clustered.value().get());
  EXPECT_EQ(cache.stats().misses, 2u);

  // Same annotations again: a warm hit on the fused entry.
  auto again = cache.get_or_create(fused, weights, nn::DataType::kFloat32, 1);
  ASSERT_TRUE(again.is_ok());
  EXPECT_EQ(again.value().get(), clustered.value().get());
  EXPECT_EQ(cache.stats().hits, 1u);

  // The legacy network-based API keys on the default annotations, so it
  // coincides with the explicit default-annotated HwNetwork entry.
  auto legacy = cache.get_or_create(net, weights, nn::DataType::kFloat32, 1);
  ASSERT_TRUE(legacy.is_ok());
  EXPECT_EQ(legacy.value().get(), plain.value().get());

  // Both clusterings serve, byte-identically (fusion never changes bytes).
  const auto inputs = condor::testing::random_inputs(net, 2, 7);
  auto plain_out = plain.value()->pool->run_batch(inputs);
  auto fused_out = clustered.value()->pool->run_batch(inputs);
  ASSERT_TRUE(plain_out.is_ok());
  ASSERT_TRUE(fused_out.is_ok());
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    EXPECT_EQ(max_abs_diff(plain_out.value()[i], fused_out.value()[i]), 0.0F);
  }
}

TEST(PlanCacheTest, LruEvictionAtCapacity) {
  const nn::Network net =
      condor::testing::make_tiny_net(condor::testing::TinyNetConfig{});
  const nn::WeightStore weights = nn::initialize_weights(net, 5).value();
  PlanCache cache(2);
  ASSERT_TRUE(
      cache.get_or_create(net, weights, nn::DataType::kFloat32, 1).is_ok());
  ASSERT_TRUE(
      cache.get_or_create(net, weights, nn::DataType::kFixed16, 1).is_ok());
  // Touch the first entry so the second is the LRU victim.
  ASSERT_TRUE(
      cache.get_or_create(net, weights, nn::DataType::kFloat32, 1).is_ok());
  ASSERT_TRUE(
      cache.get_or_create(net, weights, nn::DataType::kFixed8, 1).is_ok());
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().evictions, 1u);
  // The touched entry survived; the evicted one recompiles.
  EXPECT_EQ(cache.stats().hits, 1u);
  auto again =
      cache.get_or_create(net, weights, nn::DataType::kFixed16, 1);
  ASSERT_TRUE(again.is_ok());
  EXPECT_EQ(cache.stats().misses, 4u);
}

// ---- server end-to-end ------------------------------------------------------

struct ServeFixture {
  hw::AcceleratorPlan plan;
  nn::WeightStore weights;
  nn::Network model;
};

ServeFixture make_serve_fixture() {
  ServeFixture fixture;
  fixture.model = nn::make_tc1();
  hw::HwNetwork hw_net = hw::with_default_annotations(fixture.model);
  fixture.plan = hw::plan_accelerator(hw_net).value();
  fixture.weights = nn::initialize_weights(fixture.model, 11).value();
  return fixture;
}

TEST(ServerTest, DemuxedOutputsAreBitExactVsDirectRun) {
  ServeFixture fixture = make_serve_fixture();
  auto pool = dataflow::ExecutorPool::create(fixture.plan, fixture.weights, 2);
  ASSERT_TRUE(pool.is_ok()) << pool.status().to_string();
  PoolBackend backend(
      std::make_shared<dataflow::ExecutorPool>(std::move(pool).value()));

  ServerOptions options;
  options.batcher.max_batch = 4;
  options.batcher.preferred_batch = 2;
  options.batcher.max_delay_seconds = 0.002;
  auto server = Server::create(options, interactive_and_bulk(), {&backend});
  ASSERT_TRUE(server.is_ok()) << server.status().to_string();

  const auto inputs = condor::testing::random_inputs(fixture.model, 6, 23);
  std::vector<std::future<Result<Tensor>>> futures;
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    futures.push_back(server.value().submit(i % 2, inputs[i]));
  }

  // Oracle: an independent single executor over the same plan + weights.
  auto single = dataflow::AcceleratorExecutor::create(fixture.plan,
                                                      fixture.weights);
  ASSERT_TRUE(single.is_ok());
  auto expected = single.value().run_batch(inputs);
  ASSERT_TRUE(expected.is_ok());

  for (std::size_t i = 0; i < futures.size(); ++i) {
    Result<Tensor> output = futures[i].get();
    ASSERT_TRUE(output.is_ok()) << output.status().to_string();
    ASSERT_EQ(output.value().size(), expected.value()[i].size());
    EXPECT_EQ(std::memcmp(output.value().data().data(),
                          expected.value()[i].data().data(),
                          output.value().size() * sizeof(float)),
              0)
        << "request " << i << " demuxed to the wrong output";
  }
  server.value().shutdown();
  const ServerStats stats = server.value().stats();
  EXPECT_EQ(stats.images_served, inputs.size());
  EXPECT_EQ(stats.backend_failures, 0u);
  EXPECT_EQ(stats.tenants[0].completed + stats.tenants[1].completed,
            inputs.size());
}

TEST(ServerTest, AdmissionRejectsResolveImmediately) {
  ServeFixture fixture = make_serve_fixture();
  auto pool = dataflow::ExecutorPool::create(fixture.plan, fixture.weights, 1);
  ASSERT_TRUE(pool.is_ok());
  PoolBackend backend(
      std::make_shared<dataflow::ExecutorPool>(std::move(pool).value()));
  auto server =
      Server::create(ServerOptions{}, interactive_and_bulk(), {&backend});
  ASSERT_TRUE(server.is_ok());
  // Unknown tenant: the future is ready before any backend runs.
  auto future = server.value().submit(9, tiny_input());
  ASSERT_EQ(future.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  Result<Tensor> output = future.get();
  ASSERT_FALSE(output.is_ok());
  EXPECT_EQ(output.status().code(), StatusCode::kNotFound);
}

TEST(ServerTest, ConfigurationIsValidated) {
  ServeFixture fixture = make_serve_fixture();
  auto pool = dataflow::ExecutorPool::create(fixture.plan, fixture.weights, 1);
  ASSERT_TRUE(pool.is_ok());
  PoolBackend backend(
      std::make_shared<dataflow::ExecutorPool>(std::move(pool).value()));
  EXPECT_FALSE(Server::create(ServerOptions{}, {}, {&backend}).is_ok());
  EXPECT_FALSE(Server::create(ServerOptions{}, one_tenant(), {}).is_ok());
  EXPECT_FALSE(
      Server::create(ServerOptions{}, one_tenant(), {nullptr}).is_ok());
}

// ---- load generator ---------------------------------------------------------

TEST(LoadGen, OpenLoopCompletesBitExactAndBeatsSerialDispatch) {
  ServeFixture fixture = make_serve_fixture();
  auto pool = dataflow::ExecutorPool::create(fixture.plan, fixture.weights, 2);
  ASSERT_TRUE(pool.is_ok());
  auto accel = make_service_model(pool.value().plan());
  ASSERT_TRUE(accel.is_ok()) << accel.status().to_string();

  LoadGenOptions options;
  options.requests = 96;
  options.batcher.max_batch = 16;
  options.batcher.preferred_batch = 4;
  options.batcher.max_delay_seconds = 0.025;
  auto report = run_open_loop(pool.value(), accel.value(), options);
  ASSERT_TRUE(report.is_ok()) << report.status().to_string();

  EXPECT_EQ(report.value().completed, options.requests);
  EXPECT_EQ(report.value().rejected, 0u);
  EXPECT_TRUE(report.value().bitexact_vs_direct);
  EXPECT_TRUE(report.value().p99_within_bound)
      << "p99 " << report.value().latency.p99_ms << " ms vs bound "
      << report.value().p99_bound_ms << " ms";
  // At 2.5x the serial capacity, batching must outrun per-request dispatch.
  EXPECT_GT(report.value().speedup, 1.2);
  EXPECT_GT(report.value().mean_batch, 1.0);
}

TEST(LoadGen, LatencySummaryUsesNearestRank) {
  LatencySummary summary = summarize_latencies({4.0, 1.0, 3.0, 2.0});
  EXPECT_DOUBLE_EQ(summary.p50_ms, 2.0);
  EXPECT_DOUBLE_EQ(summary.p99_ms, 4.0);
  EXPECT_DOUBLE_EQ(summary.max_ms, 4.0);
  EXPECT_DOUBLE_EQ(summary.mean_ms, 2.5);
  const LatencySummary empty = summarize_latencies({});
  EXPECT_DOUBLE_EQ(empty.p99_ms, 0.0);
}

}  // namespace
}  // namespace condor::serve

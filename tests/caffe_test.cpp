// Tests for the Caffe frontend: prototxt text-format parsing, the typed
// caffe.proto codec, import to the Condor IR, and export/import round trips.
#include <gtest/gtest.h>

#include "caffe/export.hpp"
#include "caffe/import.hpp"
#include "caffe/text_format.hpp"
#include "nn/models.hpp"
#include "nn/weights.hpp"

namespace condor::caffe {
namespace {

// A faithful excerpt of BVLC caffe/examples/mnist/lenet.prototxt.
constexpr const char* kLenetPrototxt = R"(
name: "LeNet"
layer {
  name: "data"
  type: "Input"
  top: "data"
  input_param { shape: { dim: 64 dim: 1 dim: 28 dim: 28 } }
}
layer {
  name: "conv1"
  type: "Convolution"
  bottom: "data"
  top: "conv1"
  param { lr_mult: 1 }
  param { lr_mult: 2 }
  convolution_param {
    num_output: 20
    kernel_size: 5
    stride: 1
    weight_filler { type: "xavier" }
    bias_filler { type: "constant" }
  }
}
layer {
  name: "pool1"
  type: "Pooling"
  bottom: "conv1"
  top: "pool1"
  pooling_param { pool: MAX kernel_size: 2 stride: 2 }
}
layer {
  name: "conv2"
  type: "Convolution"
  bottom: "pool1"
  top: "conv2"
  convolution_param { num_output: 50 kernel_size: 5 stride: 1 }
}
layer {
  name: "pool2"
  type: "Pooling"
  bottom: "conv2"
  top: "pool2"
  pooling_param { pool: MAX kernel_size: 2 stride: 2 }
}
layer {
  name: "ip1"
  type: "InnerProduct"
  bottom: "pool2"
  top: "ip1"
  inner_product_param { num_output: 500 }
}
layer {
  name: "relu1"
  type: "ReLU"
  bottom: "ip1"
  top: "ip1"
}
layer {
  name: "ip2"
  type: "InnerProduct"
  bottom: "ip1"
  top: "ip2"
  inner_product_param { num_output: 10 }
}
layer {
  name: "prob"
  type: "Softmax"
  bottom: "ip2"
  top: "prob"
}
)";

TEST(TextFormat, ParsesScalarsMessagesAndComments) {
  auto result = parse_text_format(R"(
# a comment
name: "net"  # trailing comment
count: 3
ratio: -1.5
enabled: true
pool: MAX
nested { a: 1 b { c: "x" } }
repeated: 1
repeated: 2
)");
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  const TextMessage& root = result.value();
  EXPECT_EQ(root.get_string("name").value(), "net");
  EXPECT_EQ(root.get_int("count").value(), 3);
  EXPECT_DOUBLE_EQ(root.get_double("ratio").value(), -1.5);
  EXPECT_TRUE(root.get_bool_or("enabled", false));
  EXPECT_EQ(root.get_string("pool").value(), "MAX");
  ASSERT_NE(root.message("nested"), nullptr);
  EXPECT_EQ(root.message("nested")->message("b")->get_string("c").value(), "x");
  EXPECT_EQ(root.scalars("repeated").size(), 2u);
  EXPECT_EQ(root.get_int_or("missing", 9), 9);
}

TEST(TextFormat, MessageWithoutColon) {
  auto result = parse_text_format("inner_param { shape { dim: 1 } }");
  ASSERT_TRUE(result.is_ok());
  EXPECT_NE(result.value().message("inner_param"), nullptr);
}

TEST(TextFormat, DeepNestingBounded) {
  std::string deep;
  for (int i = 0; i < 100000; ++i) {
    deep += "a{";
  }
  deep += std::string(100000, '}');
  auto result = parse_text_format(deep);
  ASSERT_FALSE(result.is_ok());
  EXPECT_NE(result.status().message().find("nesting"), std::string::npos);
}

TEST(TextFormat, Errors) {
  EXPECT_FALSE(parse_text_format("name").is_ok());           // no value
  EXPECT_FALSE(parse_text_format("a { b: 1 ").is_ok());      // unclosed
  EXPECT_FALSE(parse_text_format("}").is_ok());              // stray brace
  EXPECT_FALSE(parse_text_format("a: \"unterminated").is_ok());
  EXPECT_FALSE(parse_text_format("a b").is_ok());            // missing colon
}

TEST(Import, LenetPrototxtMatchesModelZoo) {
  auto imported = network_from_prototxt(kLenetPrototxt);
  ASSERT_TRUE(imported.is_ok()) << imported.status().to_string();
  const nn::Network& net = imported.value();
  const nn::Network zoo = nn::make_lenet();
  ASSERT_EQ(net.layer_count(), zoo.layer_count());
  auto net_shapes = net.infer_shapes().value();
  auto zoo_shapes = zoo.infer_shapes().value();
  for (std::size_t i = 0; i < net.layer_count(); ++i) {
    EXPECT_EQ(net.layers()[i].kind, zoo.layers()[i].kind) << i;
    EXPECT_EQ(net_shapes[i].output, zoo_shapes[i].output) << i;
    EXPECT_EQ(net.layers()[i].activation, zoo.layers()[i].activation) << i;
  }
  // The in-place ReLU fused into ip1.
  EXPECT_EQ(net.find_layer("ip1")->activation, nn::Activation::kReLU);
}

TEST(Import, LegacyInputDimStyle) {
  auto result = network_from_prototxt(R"(
name: "legacy"
input: "data"
input_dim: 1
input_dim: 3
input_dim: 8
input_dim: 8
layer {
  name: "conv"
  type: "Convolution"
  bottom: "data"
  top: "conv"
  convolution_param { num_output: 4 kernel_size: 3 }
}
)");
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  EXPECT_EQ(result.value().input_shape().value(), (Shape{3, 8, 8}));
}

TEST(Import, InputShapeStyle) {
  auto result = network_from_prototxt(R"(
input: "data"
input_shape { dim: 1 dim: 2 dim: 6 dim: 6 }
layer {
  name: "conv"
  type: "Convolution"
  bottom: "data"
  top: "conv"
  convolution_param { num_output: 1 kernel_size: 3 pad: 1 stride: 2 }
}
)");
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  const nn::LayerSpec* conv = result.value().find_layer("conv");
  ASSERT_NE(conv, nullptr);
  EXPECT_EQ(conv->pad, 1u);
  EXPECT_EQ(conv->stride, 2u);
}

TEST(Import, RectangularKernel) {
  auto result = network_from_prototxt(R"(
input: "data"
input_shape { dim: 1 dim: 1 dim: 8 dim: 8 }
layer {
  name: "conv"
  type: "Convolution"
  bottom: "data"
  top: "conv"
  convolution_param { num_output: 1 kernel_h: 3 kernel_w: 5 }
}
)");
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  EXPECT_EQ(result.value().find_layer("conv")->kernel_h, 3u);
  EXPECT_EQ(result.value().find_layer("conv")->kernel_w, 5u);
}

TEST(Import, UnsupportedTypeRejected) {
  auto result = network_from_prototxt(R"(
input: "data"
input_shape { dim: 1 dim: 1 dim: 8 dim: 8 }
layer { name: "l" type: "LRN" bottom: "data" top: "l" }
)");
  ASSERT_FALSE(result.is_ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnsupported);
}

TEST(Import, MissingInputRejected) {
  auto result = network_from_prototxt(R"(
layer { name: "l" type: "Softmax" bottom: "x" top: "l" }
)");
  EXPECT_FALSE(result.is_ok());
}

TEST(Import, SoftmaxWithLossDegradesToSoftmax) {
  auto result = network_from_prototxt(R"(
input: "data"
input_shape { dim: 1 dim: 1 dim: 4 dim: 4 }
layer {
  name: "ip"
  type: "InnerProduct"
  bottom: "data"
  top: "ip"
  inner_product_param { num_output: 3 }
}
layer { name: "loss" type: "SoftmaxWithLoss" bottom: "ip" top: "loss" }
)");
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  EXPECT_EQ(result.value().layers().back().kind, nn::LayerKind::kSoftmax);
}

TEST(Import, ResidualRouteAndUpsample) {
  // data -> c1 -+-> Eltwise(c1, data) -> Concat(res, c1) -> Upsample x2.
  auto result = network_from_prototxt(R"(
input: "data"
input_shape { dim: 1 dim: 2 dim: 4 dim: 4 }
layer {
  name: "c1"
  type: "Convolution"
  bottom: "data"
  top: "c1"
  convolution_param { num_output: 2 kernel_size: 1 }
}
layer {
  name: "res"
  type: "Eltwise"
  bottom: "c1"
  bottom: "data"
  top: "res"
  eltwise_param { operation: SUM }
}
layer {
  name: "route"
  type: "Concat"
  bottom: "res"
  bottom: "c1"
  top: "route"
  concat_param { axis: 1 }
}
layer {
  name: "up"
  type: "Upsample"
  bottom: "route"
  top: "up"
  upsample_param { scale: 2 }
}
)");
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  const nn::Network& network = result.value();
  ASSERT_EQ(network.layer_count(), 5u);
  EXPECT_EQ(network.join_count(), 2u);
  EXPECT_EQ(network.layers()[2].kind, nn::LayerKind::kEltwiseAdd);
  auto res_producers = network.producers(2);
  ASSERT_TRUE(res_producers.is_ok());
  EXPECT_EQ(res_producers.value(), (std::vector<std::size_t>{1, 0}));
  EXPECT_EQ(network.layers()[3].kind, nn::LayerKind::kConcat);
  EXPECT_EQ(network.layers()[4].kind, nn::LayerKind::kUpsample);
  EXPECT_EQ(network.layers()[4].stride, 2u);
  auto shapes = network.infer_shapes();
  ASSERT_TRUE(shapes.is_ok()) << shapes.status().to_string();
  EXPECT_EQ(shapes.value().back().output, (Shape{4, 8, 8}));

  // Only SUM joins are representable.
  EXPECT_FALSE(network_from_prototxt(R"(
input: "data"
input_shape { dim: 1 dim: 1 dim: 4 dim: 4 }
layer {
  name: "c1"
  type: "Convolution"
  bottom: "data"
  top: "c1"
  convolution_param { num_output: 1 kernel_size: 1 }
}
layer {
  name: "m"
  type: "Eltwise"
  bottom: "c1"
  bottom: "data"
  top: "m"
  eltwise_param { operation: PROD }
}
)")
                   .is_ok());
}

TEST(Import, LeakyReluNegativeSlope) {
  const auto prototxt = [](const char* slope) {
    return std::string(R"(
input: "data"
input_shape { dim: 1 dim: 1 dim: 4 dim: 4 }
layer {
  name: "c1"
  type: "Convolution"
  bottom: "data"
  top: "c1"
  convolution_param { num_output: 1 kernel_size: 1 }
}
layer {
  name: "act"
  type: "ReLU"
  bottom: "c1"
  top: "c1"
  relu_param { negative_slope: )") +
           slope + " }\n}\n";
  };
  // The Darknet slope fuses into the conv as a leaky ReLU.
  auto leaky = network_from_prototxt(prototxt("0.1"));
  ASSERT_TRUE(leaky.is_ok()) << leaky.status().to_string();
  ASSERT_EQ(leaky.value().layer_count(), 2u);
  EXPECT_EQ(leaky.value().layers()[1].activation, nn::Activation::kLeakyReLU);
  // Any other slope cannot be represented by the datapaths.
  auto rejected = network_from_prototxt(prototxt("0.2"));
  ASSERT_FALSE(rejected.is_ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kUnsupported);
  EXPECT_NE(rejected.status().to_string().find("got 0.2"), std::string::npos)
      << rejected.status().to_string();
}

constexpr const char* kBatchNormPrototxt = R"(
input: "data"
input_shape { dim: 1 dim: 1 dim: 2 dim: 2 }
layer {
  name: "c1"
  type: "Convolution"
  bottom: "data"
  top: "c1"
  convolution_param { num_output: 2 kernel_size: 1 bias_term: false }
}
layer {
  name: "bn"
  type: "BatchNorm"
  bottom: "c1"
  top: "c1"
  batch_norm_param { eps: 0 }
}
layer {
  name: "sc"
  type: "Scale"
  bottom: "c1"
  top: "c1"
  scale_param { bias_term: true }
}
layer { name: "prob" type: "Softmax" bottom: "c1" top: "prob" }
)";

TEST(Import, BatchNormNeedsFoldSink) {
  // Weights-free topology import cannot represent BatchNorm statistics.
  auto result = network_from_prototxt(kBatchNormPrototxt);
  ASSERT_FALSE(result.is_ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnsupported);
}

TEST(Import, BatchNormScaleFoldsIntoConv) {
  // With eps 0 and scale_factor 2 the statistics resolve to mean {1, -1}
  // and variance {4, 0.25}:
  //   factor[0] = gamma/sqrt(var) = 2/2 = 1,  factor[1] = 3/0.5 = 6
  //   w'[0] = 1*1 = 1,  w'[1] = 2*6 = 12
  //   b'[0] = (0-1)*1 + 0.5 = -0.5,  b'[1] = (0+1)*6 - 1 = 5
  std::vector<BatchNormFold> folds;
  auto network = network_from_prototxt(kBatchNormPrototxt, &folds);
  ASSERT_TRUE(network.is_ok()) << network.status().to_string();
  // BatchNorm and Scale vanished into the conv, which gained a bias.
  ASSERT_EQ(network.value().layer_count(), 3u);
  EXPECT_TRUE(network.value().layers()[1].has_bias);
  ASSERT_EQ(folds.size(), 1u);
  EXPECT_EQ(folds[0].conv, "c1");
  EXPECT_EQ(folds[0].batch_norm, "bn");
  EXPECT_EQ(folds[0].scale, "sc");
  EXPECT_EQ(folds[0].epsilon, 0.0F);
  EXPECT_FALSE(folds[0].conv_had_bias);

  NetParameter net;
  const auto blob = [](std::vector<float> data) {
    BlobProto proto;
    proto.shape = BlobShape{{static_cast<std::int64_t>(data.size())}};
    proto.data = std::move(data);
    return proto;
  };
  LayerParameter conv;
  conv.name = "c1";
  conv.type = "Convolution";
  conv.blobs.push_back(blob({1.0F, 2.0F}));
  net.layer.push_back(std::move(conv));
  LayerParameter bn;
  bn.name = "bn";
  bn.type = "BatchNorm";
  bn.blobs.push_back(blob({2.0F, -2.0F}));  // mean sums
  bn.blobs.push_back(blob({8.0F, 0.5F}));   // variance sums
  bn.blobs.push_back(blob({2.0F}));         // scale factor
  net.layer.push_back(std::move(bn));
  LayerParameter scale;
  scale.name = "sc";
  scale.type = "Scale";
  scale.blobs.push_back(blob({2.0F, 3.0F}));    // gamma
  scale.blobs.push_back(blob({0.5F, -1.0F}));   // beta
  net.layer.push_back(std::move(scale));

  auto weights = weights_from_net_parameter(net, network.value(), folds);
  ASSERT_TRUE(weights.is_ok()) << weights.status().to_string();
  const nn::LayerParameters* params = weights.value().find("c1");
  ASSERT_NE(params, nullptr);
  EXPECT_EQ(params->weights[0], 1.0F);
  EXPECT_EQ(params->weights[1], 12.0F);
  EXPECT_EQ(params->bias[0], -0.5F);
  EXPECT_EQ(params->bias[1], 5.0F);
}

TEST(ExportImport, PrototxtRoundTripAllModels) {
  for (const nn::Network& model :
       {nn::make_tc1(), nn::make_lenet(), nn::make_vgg16(),
        nn::make_tiny_resnet(), nn::make_lenet_skip()}) {
    auto prototxt = to_prototxt(model);
    ASSERT_TRUE(prototxt.is_ok()) << model.name();
    auto reimported = network_from_prototxt(prototxt.value());
    ASSERT_TRUE(reimported.is_ok())
        << model.name() << ": " << reimported.status().to_string();
    ASSERT_EQ(reimported.value().layer_count(), model.layer_count()) << model.name();
    EXPECT_EQ(reimported.value().join_count(), model.join_count()) << model.name();
    auto original_shapes = model.infer_shapes().value();
    auto round_shapes = reimported.value().infer_shapes().value();
    for (std::size_t i = 0; i < model.layer_count(); ++i) {
      EXPECT_EQ(round_shapes[i].output, original_shapes[i].output)
          << model.name() << " layer " << i;
      EXPECT_EQ(reimported.value().layers()[i].activation,
                model.layers()[i].activation)
          << model.name() << " layer " << i;
    }
  }
}

TEST(ExportImport, CaffemodelWeightsRoundTripBitExact) {
  const nn::Network lenet = nn::make_lenet();
  auto weights = nn::initialize_weights(lenet, 77);
  ASSERT_TRUE(weights.is_ok());
  auto bytes = to_caffemodel(lenet, weights.value());
  ASSERT_TRUE(bytes.is_ok());
  auto restored = weights_from_caffemodel(bytes.value(), lenet);
  ASSERT_TRUE(restored.is_ok()) << restored.status().to_string();
  for (const auto& [name, params] : weights.value().all()) {
    const nn::LayerParameters* other = restored.value().find(name);
    ASSERT_NE(other, nullptr);
    EXPECT_EQ(max_abs_diff(params.weights, other->weights), 0.0F) << name;
    EXPECT_EQ(max_abs_diff(params.bias, other->bias), 0.0F) << name;
  }
}

TEST(ExportImport, FullLoadPath) {
  const nn::Network tc1 = nn::make_tc1();
  auto weights = nn::initialize_weights(tc1, 5);
  ASSERT_TRUE(weights.is_ok());
  auto prototxt = to_prototxt(tc1);
  auto caffemodel = to_caffemodel(tc1, weights.value());
  ASSERT_TRUE(prototxt.is_ok());
  ASSERT_TRUE(caffemodel.is_ok());
  auto model = load_caffe_model(prototxt.value(), caffemodel.value());
  ASSERT_TRUE(model.is_ok()) << model.status().to_string();
  EXPECT_EQ(model.value().network.layer_count(), tc1.layer_count());
  EXPECT_TRUE(model.value().weights.validate_against(model.value().network).is_ok());
}

TEST(Caffemodel, MissingBlobRejected) {
  const nn::Network tc1 = nn::make_tc1();
  // A NetParameter with the right layer names but no blobs.
  NetParameter net;
  net.name = "tc1";
  for (const nn::LayerSpec& layer : tc1.layers()) {
    if (!layer.has_weights()) {
      continue;
    }
    LayerParameter lp;
    lp.name = layer.name;
    lp.type = "Convolution";
    net.layer.push_back(std::move(lp));
  }
  auto bytes = encode_net_parameter(net);
  auto result = weights_from_caffemodel(bytes, tc1);
  EXPECT_FALSE(result.is_ok());
}

TEST(Caffemodel, DecoderSkipsUnknownFields) {
  // Encode a net parameter, then append an unknown field at top level.
  const nn::Network tc1 = nn::make_tc1();
  auto weights = nn::initialize_weights(tc1, 6);
  ASSERT_TRUE(weights.is_ok());
  auto bytes = to_caffemodel(tc1, weights.value());
  ASSERT_TRUE(bytes.is_ok());
  protowire::Writer extra;
  extra.string_field(999, "future extension");
  auto extended = bytes.value();
  extended.insert(extended.end(), extra.view().begin(), extra.view().end());
  auto restored = weights_from_caffemodel(extended, tc1);
  EXPECT_TRUE(restored.is_ok()) << restored.status().to_string();
}

TEST(Caffemodel, LegacyBlobDimensions) {
  BlobProto blob;
  blob.num = 2;
  blob.channels = 3;
  blob.height = 4;
  blob.width = 5;
  EXPECT_EQ(blob.resolved_shape(),
            (std::vector<std::int64_t>{2, 3, 4, 5}));
  BlobProto shaped;
  shaped.shape = BlobShape{{7, 8}};
  EXPECT_EQ(shaped.resolved_shape(), (std::vector<std::int64_t>{7, 8}));
}

}  // namespace
}  // namespace condor::caffe

// Unit tests for the dataflow primitives: the SPSC blocking FIFO (scalar
// and burst paths, close/reopen lifecycle, multi-threaded stress), the
// stencil filter's domain inequalities, and the graph runner.
#include <gtest/gtest.h>

#include <numeric>
#include <thread>
#include <vector>

#include "common/thread_pool.hpp"
#include "dataflow/fifo.hpp"
#include "dataflow/filter.hpp"
#include "dataflow/graph.hpp"
#include "nn/layer.hpp"

namespace condor::dataflow {
namespace {

TEST(Fifo, FifoOrderPreserved) {
  Stream fifo(8);
  for (int i = 0; i < 5; ++i) {
    fifo.write(static_cast<float>(i));
  }
  fifo.close();
  float value = 0.0F;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(fifo.read(value));
    EXPECT_EQ(value, static_cast<float>(i));
  }
  EXPECT_FALSE(fifo.read(value));  // closed and drained
}

TEST(Fifo, BlockingProducerConsumer) {
  Stream fifo(2);  // much smaller than the transfer
  constexpr int kCount = 10000;
  std::thread producer([&fifo] {
    for (int i = 0; i < kCount; ++i) {
      fifo.write(static_cast<float>(i));
    }
    fifo.close();
  });
  double sum = 0.0;
  float value = 0.0F;
  int received = 0;
  while (fifo.read(value)) {
    sum += value;
    ++received;
  }
  producer.join();
  EXPECT_EQ(received, kCount);
  EXPECT_DOUBLE_EQ(sum, static_cast<double>(kCount) * (kCount - 1) / 2.0);
}

TEST(Fifo, StatsTrackOccupancyAndBlocks) {
  Stream fifo(4);
  for (int i = 0; i < 4; ++i) {
    fifo.write(1.0F);
  }
  FifoStats stats = fifo.stats();
  EXPECT_EQ(stats.capacity, 4u);
  EXPECT_EQ(stats.max_occupancy, 4u);
  EXPECT_EQ(stats.total_writes, 4u);
  EXPECT_EQ(stats.write_blocks, 0u);
  // A write into a full FIFO registers a block once a reader frees space.
  std::thread writer([&fifo] { fifo.write(2.0F); });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  float value = 0.0F;
  ASSERT_TRUE(fifo.read(value));
  writer.join();
  EXPECT_GE(fifo.stats().write_blocks, 1u);
}

TEST(Fifo, ZeroCapacityClampedToOne) {
  Stream fifo(0);
  EXPECT_EQ(fifo.capacity(), 1u);
  fifo.write(3.0F);
  float value = 0.0F;
  ASSERT_TRUE(fifo.read(value));
  EXPECT_EQ(value, 3.0F);
}

TEST(Fifo, CloseWakesBlockedReaders) {
  Stream fifo(4);
  std::thread reader([&fifo] {
    float value = 0.0F;
    EXPECT_FALSE(fifo.read(value));
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  fifo.close();
  reader.join();
}

TEST(Fifo, CloseWakesBlockedWriters) {
  Stream fifo(1);
  ASSERT_TRUE(fifo.write(1.0F));  // fill the FIFO
  std::thread writer([&fifo] {
    // Blocked on a full FIFO; close() must wake it and fail the write
    // instead of leaving the thread parked forever.
    EXPECT_FALSE(fifo.write(2.0F));
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  fifo.close();
  writer.join();
  // The element written before close is still drainable.
  float value = 0.0F;
  ASSERT_TRUE(fifo.read(value));
  EXPECT_EQ(value, 1.0F);
  EXPECT_FALSE(fifo.read(value));
}

TEST(Fifo, WriteAfterCloseIsAnError) {
  Stream fifo(4);
  ASSERT_TRUE(fifo.write(1.0F));
  fifo.close();
  EXPECT_FALSE(fifo.write(2.0F));
  const float burst[2] = {3.0F, 4.0F};
  EXPECT_FALSE(fifo.write_burst(burst));
  float value = 0.0F;
  ASSERT_TRUE(fifo.read(value));  // pre-close element still drains
  EXPECT_EQ(value, 1.0F);
}

TEST(Fifo, CloseWhileReaderBlockedMidBurst) {
  Stream fifo(4);
  std::vector<float> out(10, -1.0F);
  std::size_t got = 0;
  std::thread reader(
      [&] { got = fifo.read_burst(std::span<float>(out)); });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  const float items[3] = {0.0F, 1.0F, 2.0F};
  ASSERT_TRUE(fifo.write_burst(items));
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  fifo.close();
  reader.join();
  // The burst comes back short with everything written before EOS.
  EXPECT_EQ(got, 3u);
  for (std::size_t i = 0; i < got; ++i) {
    EXPECT_EQ(out[i], static_cast<float>(i));
  }
}

TEST(Fifo, BurstLargerThanCapacityChunks) {
  // A capacity-1 stream still moves arbitrarily large bursts: the transfer
  // degenerates to element-wise chunks but never deadlocks or truncates.
  Stream fifo(1);
  constexpr std::size_t kCount = 1000;
  std::vector<float> sent(kCount);
  std::iota(sent.begin(), sent.end(), 0.0F);
  std::thread producer([&] {
    EXPECT_TRUE(fifo.write_burst(sent));
    fifo.close();
  });
  std::vector<float> received(kCount, -1.0F);
  EXPECT_EQ(fifo.read_burst(std::span<float>(received)), kCount);
  producer.join();
  EXPECT_EQ(received, sent);
}

TEST(Fifo, StressBurstScalarInterleave) {
  // Producer and consumer mix scalar and burst transfers of co-prime sizes
  // against a small ring so every wrap offset and partial chunk is hit.
  // Element order must survive exactly.
  Stream fifo(7);
  constexpr std::size_t kCount = 200000;
  std::thread producer([&fifo] {
    std::vector<float> burst;
    std::size_t next = 0;
    std::size_t step = 1;
    while (next < kCount) {
      const std::size_t n = std::min<std::size_t>(step, kCount - next);
      if (step % 4 == 0) {
        for (std::size_t i = 0; i < n; ++i) {
          ASSERT_TRUE(fifo.write(static_cast<float>(next + i)));
        }
      } else {
        burst.resize(n);
        std::iota(burst.begin(), burst.end(), static_cast<float>(next));
        ASSERT_TRUE(fifo.write_burst(burst));
      }
      next += n;
      step = step % 13 + 1;  // 1..13, co-prime with the capacity
    }
    fifo.close();
  });
  std::vector<float> chunk;
  std::size_t expected = 0;
  std::size_t step = 3;
  while (expected < kCount) {
    const std::size_t n = std::min<std::size_t>(step, kCount - expected);
    if (step % 5 == 0) {
      float value = 0.0F;
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_TRUE(fifo.read(value));
        ASSERT_EQ(value, static_cast<float>(expected + i));
      }
    } else {
      chunk.assign(n, -1.0F);
      ASSERT_EQ(fifo.read_burst(std::span<float>(chunk)), n);
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(chunk[i], static_cast<float>(expected + i));
      }
    }
    expected += n;
    step = step % 11 + 1;
  }
  float value = 0.0F;
  EXPECT_FALSE(fifo.read(value));  // closed and drained
  producer.join();
  EXPECT_EQ(fifo.stats().total_writes, kCount);
}

TEST(Fifo, ReopenRearmsStreamAndResetsStats) {
  Stream fifo(4, "s");
  for (int run = 0; run < 3; ++run) {
    const float items[3] = {1.0F, 2.0F, 3.0F};
    ASSERT_TRUE(fifo.write_burst(items));
    fifo.close();
    float drained[3] = {};
    ASSERT_EQ(fifo.read_burst(std::span<float>(drained)), 3u);
    float value = 0.0F;
    EXPECT_FALSE(fifo.read(value));
    EXPECT_FALSE(fifo.write(9.0F));  // still closed
    const FifoStats stats = fifo.stats();
    EXPECT_EQ(stats.total_writes, 3u);  // per-run, not cumulative
    EXPECT_EQ(stats.max_occupancy, 3u);
    fifo.reopen();
    EXPECT_FALSE(fifo.closed());
    EXPECT_EQ(fifo.stats().total_writes, 0u);
  }
}

// ---- Filter domain inequalities -------------------------------------------

/// Brute-force oracle: (y, x) is in the domain of access (ky, kx) iff some
/// output point (oy, ox) reads it at that window position.
bool brute_force_in_domain(const hw::WindowAccess& access, const LayerPass& pass,
                           std::size_t y, std::size_t x) {
  for (std::size_t oy = 0; oy < pass.out_h; ++oy) {
    for (std::size_t ox = 0; ox < pass.out_w; ++ox) {
      if (oy * pass.stride + access.ky == y && ox * pass.stride + access.kx == x) {
        return true;
      }
    }
  }
  return false;
}

struct DomainParam {
  std::size_t in = 8;
  std::size_t window = 3;
  std::size_t stride = 1;
};

class FilterDomain : public ::testing::TestWithParam<DomainParam> {};

TEST_P(FilterDomain, MatchesBruteForceOracle) {
  const DomainParam& param = GetParam();
  LayerPass pass;
  pass.in_h = pass.in_w = param.in;
  pass.window_h = pass.window_w = param.window;
  pass.stride = param.stride;
  pass.out_h = (param.in - param.window) / param.stride + 1;
  pass.out_w = pass.out_h;

  for (std::size_t ky = 0; ky < param.window; ++ky) {
    for (std::size_t kx = 0; kx < param.window; ++kx) {
      const hw::WindowAccess access{ky, kx};
      for (std::size_t y = 0; y < pass.in_h; ++y) {
        for (std::size_t x = 0; x < pass.in_w; ++x) {
          EXPECT_EQ(FilterModule::in_domain(access, pass, y, x),
                    brute_force_in_domain(access, pass, y, x))
              << "access (" << ky << "," << kx << ") element (" << y << "," << x
              << ")";
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(DomainSweep, FilterDomain,
                         ::testing::Values(DomainParam{8, 3, 1},
                                           DomainParam{8, 2, 2},
                                           DomainParam{9, 3, 2},
                                           DomainParam{12, 5, 1},
                                           DomainParam{10, 1, 1},
                                           DomainParam{10, 4, 3}));

TEST(FilterDomain, MatchCountEqualsOutputPoints) {
  // Every access contributes exactly one element per output point.
  LayerPass pass;
  pass.in_h = pass.in_w = 11;
  pass.window_h = pass.window_w = 4;
  pass.stride = 2;
  pass.out_h = (11 - 4) / 2 + 1;
  pass.out_w = pass.out_h;
  for (std::size_t ky = 0; ky < 4; ++ky) {
    for (std::size_t kx = 0; kx < 4; ++kx) {
      std::size_t matches = 0;
      for (std::size_t y = 0; y < pass.in_h; ++y) {
        for (std::size_t x = 0; x < pass.in_w; ++x) {
          matches += FilterModule::in_domain({ky, kx}, pass, y, x) ? 1 : 0;
        }
      }
      EXPECT_EQ(matches, pass.out_h * pass.out_w);
    }
  }
}

// ---- Graph runner ------------------------------------------------------------

class ProducerModule final : public Module {
 public:
  ProducerModule(Stream& out, int count) : Module("producer"), out_(out), count_(count) {}
  Fire fire(const RunContext&) override {
    for (int i = 0; i < count_; ++i) {
      CONDOR_CO_WRITE_ONE(out_, static_cast<float>(i),
                          internal_error("producer: stream closed early"));
    }
    out_.close();
    co_return Status::ok();
  }

 private:
  Stream& out_;
  int count_;
};

class SummerModule final : public Module {
 public:
  SummerModule(Stream& in, double& sum) : Module("summer"), in_(in), sum_(sum) {}
  Fire fire(const RunContext&) override {
    sum_ = 0.0;
    for (;;) {
      float value = 0.0F;
      bool got = false;
      CONDOR_CO_READ_ONE_OR_EOS(in_, value, got);
      if (!got) {
        break;
      }
      sum_ += value;
    }
    co_return Status::ok();
  }

 private:
  Stream& in_;
  double& sum_;
};

class FailingModule final : public Module {
 public:
  explicit FailingModule(Stream& out) : Module("failing"), out_(out) {}
  Fire fire(const RunContext&) override {
    out_.close();  // release downstream before erroring
    co_return internal_error("deliberate failure");
  }

 private:
  Stream& out_;
};

TEST(Graph, RunsModulesToCompletion) {
  Graph graph;
  Stream& stream = graph.make_stream(4, "s");
  double sum = 0.0;
  graph.add_module<ProducerModule>(stream, 1000);
  graph.add_module<SummerModule>(stream, sum);
  ASSERT_TRUE(graph.run().is_ok());
  EXPECT_DOUBLE_EQ(sum, 999.0 * 1000.0 / 2.0);
  EXPECT_EQ(graph.module_count(), 2u);
  EXPECT_EQ(graph.stream_count(), 1u);
  EXPECT_EQ(graph.stream_stats()[0].total_writes, 1000u);
}

TEST(Graph, PropagatesModuleFailure) {
  Graph graph;
  Stream& stream = graph.make_stream(4, "s");
  double sum = 0.0;
  graph.add_module<FailingModule>(stream);
  graph.add_module<SummerModule>(stream, sum);
  const Status status = graph.run();
  EXPECT_FALSE(status.is_ok());
  EXPECT_EQ(status.code(), StatusCode::kInternal);
}

TEST(Graph, RunsOnPersistentPoolAcrossReopens) {
  // The executor's scheduling mode: one pool reused across batches, with
  // reopen_streams() re-arming the FIFOs between runs.
  Graph graph;
  Stream& stream = graph.make_stream(4, "s");
  double sum = 0.0;
  graph.add_module<ProducerModule>(stream, 1000);
  graph.add_module<SummerModule>(stream, sum);
  ThreadPool pool(1);
  for (int run = 0; run < 3; ++run) {
    if (run > 0) {
      graph.reopen_streams();
    }
    ASSERT_TRUE(graph.run({}, &pool, GraphRunOptions{}).is_ok())
        << "run " << run;
    EXPECT_DOUBLE_EQ(sum, 999.0 * 1000.0 / 2.0);
    EXPECT_EQ(graph.stream_stats()[0].total_writes, 1000u);
  }
  // The cooperative scheduler never grows the pool: a 1-worker pool runs
  // any module count (here the calling thread plus at most one worker).
  EXPECT_EQ(pool.worker_count(), 1u);
  EXPECT_LE(graph.last_run_workers(), graph.module_count());
}

TEST(Graph, WorkerCountDoesNotChangeResults) {
  // The cooperative scheduler is the only scheduler; any requested worker
  // count (clamped to the module count) produces identical results.
  for (const std::size_t workers : {std::size_t{1}, std::size_t{2},
                                    std::size_t{8}}) {
    Graph graph;
    Stream& stream = graph.make_stream(4, "s");
    double sum = 0.0;
    graph.add_module<ProducerModule>(stream, 1000);
    graph.add_module<SummerModule>(stream, sum);
    ThreadPool pool(1);
    GraphRunOptions options;
    options.workers = workers;
    ASSERT_TRUE(graph.run({}, &pool, options).is_ok()) << workers;
    EXPECT_DOUBLE_EQ(sum, 999.0 * 1000.0 / 2.0) << workers;
    EXPECT_LE(graph.last_run_workers(), graph.module_count()) << workers;
  }
}

}  // namespace
}  // namespace condor::dataflow

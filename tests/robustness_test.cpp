// Robustness suite: every binary/text decoder must handle arbitrary
// corruption gracefully — return an error Status or a (harmlessly) parsed
// value, never crash, hang, or trip UB. Deterministic mutation fuzzing
// over valid fixtures.
#include <gtest/gtest.h>

#include "caffe/caffe_pb.hpp"
#include "caffe/export.hpp"
#include "caffe/import.hpp"
#include "caffe/text_format.hpp"
#include "common/rng.hpp"
#include "hw/hw_ir.hpp"
#include "json/json.hpp"
#include "nn/models.hpp"
#include "nn/weights.hpp"
#include "onnx/export.hpp"
#include "onnx/import.hpp"
#include "runtime/xclbin.hpp"

namespace condor {
namespace {

/// Applies `count` random single-byte mutations (flip / overwrite / drop a
/// suffix) to a copy of `data`.
std::vector<std::byte> mutate(std::span<const std::byte> data, Rng& rng,
                              int count) {
  std::vector<std::byte> out(data.begin(), data.end());
  for (int i = 0; i < count && !out.empty(); ++i) {
    const std::size_t position = rng.bounded(out.size());
    switch (rng.bounded(3)) {
      case 0:
        out[position] ^= std::byte{static_cast<std::uint8_t>(1 + rng.bounded(255))};
        break;
      case 1:
        out[position] = std::byte{static_cast<std::uint8_t>(rng.bounded(256))};
        break;
      default:
        out.resize(position);  // truncate
        break;
    }
  }
  return out;
}

constexpr int kRounds = 200;

TEST(Robustness, CaffemodelDecoderSurvivesMutations) {
  const nn::Network model = nn::make_tc1();
  auto weights = nn::initialize_weights(model, 1).value();
  const auto valid = caffe::to_caffemodel(model, weights).value();
  Rng rng(0xCAFE);
  for (int round = 0; round < kRounds; ++round) {
    const auto corrupted = mutate(valid, rng, 1 + static_cast<int>(rng.bounded(8)));
    auto decoded = caffe::decode_net_parameter(corrupted);
    if (decoded.is_ok()) {
      // Structurally parseable garbage is fine; the typed weight extraction
      // must still validate shapes.
      auto extracted = caffe::weights_from_net_parameter(decoded.value(), model);
      (void)extracted;  // either outcome is acceptable; no crash
    }
  }
}

TEST(Robustness, WeightFileDecoderSurvivesMutations) {
  auto weights = nn::initialize_weights(nn::make_tc1(), 2).value();
  const auto valid = weights.serialize();
  Rng rng(0xBEEF);
  for (int round = 0; round < kRounds; ++round) {
    const auto corrupted = mutate(valid, rng, 1 + static_cast<int>(rng.bounded(8)));
    auto decoded = nn::WeightStore::deserialize(corrupted);
    (void)decoded;
  }
}

TEST(Robustness, XclbinDecoderSurvivesMutations) {
  runtime::Xclbin bin;
  bin.set_text_section("meta.json", R"({"board": "aws-f1"})");
  bin.set_text_section("network.json", "{}");
  const auto valid = bin.serialize();
  Rng rng(0xD00D);
  for (int round = 0; round < kRounds; ++round) {
    const auto corrupted = mutate(valid, rng, 1 + static_cast<int>(rng.bounded(8)));
    auto decoded = runtime::Xclbin::deserialize(corrupted);
    (void)decoded;
  }
}

TEST(Robustness, OnnxDecoderSurvivesMutations) {
  const nn::Network model = nn::make_tc1();
  auto weights = nn::initialize_weights(model, 3).value();
  const auto valid = onnx::to_onnx(model, weights).value();
  Rng rng(0xF00D);
  for (int round = 0; round < kRounds; ++round) {
    const auto corrupted = mutate(valid, rng, 1 + static_cast<int>(rng.bounded(8)));
    auto decoded = onnx::load_onnx_model(corrupted);
    (void)decoded;
  }
}

TEST(Robustness, JsonParserSurvivesTextMutations) {
  const std::string valid =
      hw::to_json_text(hw::with_default_annotations(nn::make_lenet()));
  Rng rng(0xABCD);
  for (int round = 0; round < kRounds; ++round) {
    std::string corrupted = valid;
    const int mutations = 1 + static_cast<int>(rng.bounded(6));
    for (int m = 0; m < mutations && !corrupted.empty(); ++m) {
      const std::size_t position = rng.bounded(corrupted.size());
      switch (rng.bounded(3)) {
        case 0:
          corrupted[position] =
              static_cast<char>(32 + rng.bounded(95));  // printable swap
          break;
        case 1:
          corrupted.insert(position, 1,
                           static_cast<char>(32 + rng.bounded(95)));
          break;
        default:
          corrupted.resize(position);
          break;
      }
    }
    auto parsed = json::parse(corrupted);
    if (parsed.is_ok()) {
      // If it still parses as JSON, the IR loader must still validate.
      auto network = hw::from_json(parsed.value());
      (void)network;
    }
  }
}

TEST(Robustness, PrototxtParserSurvivesTextMutations) {
  const std::string valid = caffe::to_prototxt(nn::make_lenet()).value();
  Rng rng(0x1234);
  for (int round = 0; round < kRounds; ++round) {
    std::string corrupted = valid;
    const std::size_t position = rng.bounded(corrupted.size());
    switch (rng.bounded(3)) {
      case 0:
        corrupted[position] = static_cast<char>(rng.bounded(128));
        break;
      case 1:
        corrupted.insert(position, 1, '{');
        break;
      default:
        corrupted.resize(position);
        break;
    }
    auto network = caffe::network_from_prototxt(corrupted);
    (void)network;
  }
}

TEST(Robustness, RandomBytesNeverCrashAnyDecoder) {
  Rng rng(0x5EED);
  for (int round = 0; round < kRounds; ++round) {
    std::vector<std::byte> noise(rng.bounded(512));
    for (std::byte& b : noise) {
      b = std::byte{static_cast<std::uint8_t>(rng.bounded(256))};
    }
    (void)caffe::decode_net_parameter(noise);
    (void)nn::WeightStore::deserialize(noise);
    (void)runtime::Xclbin::deserialize(noise);
    (void)onnx::decode_model(noise);
  }
}

}  // namespace
}  // namespace condor

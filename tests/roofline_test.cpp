// Tests for the roofline analysis.
#include <gtest/gtest.h>

#include "hw/dse.hpp"
#include "hw/roofline.hpp"
#include "nn/models.hpp"

namespace condor::hw {
namespace {

TEST(Roofline, BoardRoofsFormulas) {
  const RooflineRoofs roofs = board_roofs(aws_f1_board(), 200.0, 4.0);
  // 6840 DSP / 4 per MAC * 2 FLOP * 200 MHz = 684 GFLOPS.
  EXPECT_NEAR(roofs.peak_gflops, 684.0, 0.1);
  // 64 Gb/s = 8 GB/s.
  EXPECT_NEAR(roofs.bandwidth_gbps, 8.0, 1e-9);
  EXPECT_NEAR(roofs.ridge_intensity(), 684.0 / 8.0, 1e-6);
  // Attainable follows the min of the two roofs.
  EXPECT_NEAR(roofs.attainable_gflops(1.0), 8.0, 1e-9);
  EXPECT_NEAR(roofs.attainable_gflops(1000.0), 684.0, 1e-6);
  EXPECT_NEAR(roofs.attainable_gflops(roofs.ridge_intensity()), 684.0, 1e-6);
}

TEST(Roofline, FixedPointMacsRaiseTheComputeRoof) {
  const RooflineRoofs fp32 = board_roofs(aws_f1_board(), 200.0, 4.0);
  const RooflineRoofs fixed16 = board_roofs(aws_f1_board(), 200.0, 1.0);
  EXPECT_NEAR(fixed16.peak_gflops, 4.0 * fp32.peak_gflops, 1e-6);
}

TEST(Roofline, DesignPointsAreConsistent) {
  for (const nn::Network& model : {nn::make_tc1(), nn::make_lenet()}) {
    HwNetwork net = with_default_annotations(model, "aws-f1", 200.0);
    auto evaluated = evaluate_design_point(net);
    ASSERT_TRUE(evaluated.is_ok());
    auto plan = plan_accelerator(net);
    auto point = roofline_point(plan.value(), evaluated.value().performance,
                                model.name());
    ASSERT_TRUE(point.is_ok()) << point.status().to_string();
    EXPECT_GT(point.value().intensity, 0.0);
    // Achieved can never exceed the attainable roof.
    EXPECT_LE(point.value().achieved_gflops,
              point.value().attainable_gflops * 1.0001)
        << model.name();
    EXPECT_GT(point.value().efficiency(), 0.0);
    EXPECT_LE(point.value().efficiency(), 1.0001);
  }
}

TEST(Roofline, DseImprovesEfficiency) {
  const nn::Network features = nn::make_lenet().feature_extraction_prefix();
  HwNetwork net = with_default_annotations(features, "aws-f1", 250.0);
  auto base = evaluate_design_point(net);
  auto dse = explore(net);
  ASSERT_TRUE(base.is_ok());
  ASSERT_TRUE(dse.is_ok());
  auto base_point =
      roofline_point(plan_accelerator(net).value(), base.value().performance,
                     "base");
  auto tuned_point = roofline_point(plan_accelerator(dse.value().best.config).value(),
                                    dse.value().best.performance, "tuned");
  ASSERT_TRUE(base_point.is_ok());
  ASSERT_TRUE(tuned_point.is_ok());
  EXPECT_GT(tuned_point.value().efficiency(), base_point.value().efficiency());
}

}  // namespace
}  // namespace condor::hw

// Zero-allocation steady state (ISSUE 5 tentpole part B).
//
// The PE and filter module bodies wrap their run() in an
// common::AllocProbe::Scope; this binary overrides the global allocation
// functions to notify the probe, so once a counter is armed every heap
// allocation performed *inside those scopes* is counted. The contract under
// test: the first run_batch calls may allocate freely (scratch arenas grow
// to their high-water marks, weight caches fill), but after warmup further
// run_batch calls perform no per-image heap allocations in the module
// bodies — for every datapath and at intra-layer parallel_out > 1.
//
// Allocations outside the probed scopes (executor bookkeeping, output
// tensor construction, ThreadPool task plumbing) are intentionally not
// counted: the zero-allocation guarantee covers the streaming module
// bodies, which is where per-image work happens.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <new>

#include "common/alloc_probe.hpp"
#include "dataflow/executor.hpp"
#include "hw/accel_plan.hpp"
#include "nn/models.hpp"
#include "nn/numeric.hpp"
#include "test_util.hpp"

// Global allocation hooks: forward to malloc/free and tell the probe. Kept
// deliberately minimal — no logging, no reentrancy hazards.
void* operator new(std::size_t size) {
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p == nullptr) {
    throw std::bad_alloc();
  }
  condor::common::AllocProbe::notify();
  return p;
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace condor {
namespace {

/// Builds an executor for `network` at `data_type` / `parallel_out`, runs
/// two warmup batches, then counts module-body allocations of a third.
/// Also asserts the weight-residency contract: the cold run streams weight
/// bytes, every warm run streams exactly zero. `fuse_chain` > 1 clusters
/// blocks of that many consecutive feature-extraction layers onto fused
/// PEs (the network must be a linear chain), exercising the PE-local
/// fused-pass fast path — whose grow-only double buffers must hold the
/// same zero-allocation and zero-weight-traffic contract warm.
void expect_steady_state_allocates_nothing(const nn::Network& network,
                                           nn::DataType data_type,
                                           std::size_t parallel_out,
                                           std::uint64_t seed,
                                           std::size_t fuse_chain = 1) {
  auto weights = nn::initialize_weights(network, seed);
  ASSERT_TRUE(weights.is_ok()) << weights.status().to_string();

  hw::HwNetwork hw_net = hw::with_default_annotations(network);
  hw_net.hw.data_type = data_type;
  for (std::size_t i = 1; i < hw_net.hw.layers.size(); ++i) {
    hw_net.hw.layers[i].parallel_out = parallel_out;
  }
  if (fuse_chain > 1) {
    int group = 0;
    std::size_t i = 1;
    const auto is_feature = [&](std::size_t index) {
      const nn::LayerSpec& layer = network.layers()[index];
      return layer.is_feature_extraction() ||
             layer.kind == nn::LayerKind::kActivation;
    };
    while (i < network.layer_count()) {
      if (!is_feature(i)) {
        ++i;
        continue;
      }
      std::size_t end = i;
      while (end + 1 < network.layer_count() && is_feature(end + 1)) {
        ++end;
      }
      for (std::size_t u = i; u <= end; u += fuse_chain) {
        const std::size_t span = std::min(fuse_chain, end - u + 1);
        if (span < 2) {
          continue;
        }
        for (std::size_t m = 0; m < span; ++m) {
          hw_net.hw.layers[u + m].pe_group = group;
        }
        ++group;
      }
      i = end + 1;
    }
    ASSERT_GT(group, 0) << "fuse_chain produced no fused groups";
  }
  ASSERT_TRUE(hw_net.validate().is_ok()) << hw_net.validate().to_string();
  auto plan = hw::plan_accelerator(hw_net);
  ASSERT_TRUE(plan.is_ok()) << plan.status().to_string();

  auto executor =
      dataflow::AcceleratorExecutor::create(plan.value(), weights.value());
  ASSERT_TRUE(executor.is_ok()) << executor.status().to_string();

  const auto inputs = testing::random_inputs(network, 2, seed + 1);

  // Warmup: scratch arenas grow to their high-water marks and the packed /
  // quantized weight caches fill. Two rounds so the second round's own
  // growth (if any) would already have been flushed out. The first round is
  // counted too, as a canary: it MUST allocate (scratch growth), proving
  // the operator-new hook is live and the later zero reading is meaningful.
  std::atomic<std::size_t> warmup_allocations{0};
  std::atomic<std::size_t>* prev0 = common::AllocProbe::arm(&warmup_allocations);
  {
    auto outputs = executor.value().run_batch(inputs);
    common::AllocProbe::arm(prev0);
    ASSERT_TRUE(outputs.is_ok()) << outputs.status().to_string();
  }
  ASSERT_GT(warmup_allocations.load(), 0U)
      << "cold run must allocate scratch; is the allocation hook linked?";
  // The cold run is also the one-time weight load.
  EXPECT_GT(executor.value().last_run_stats().weight_bytes_streamed, 0U)
      << "first run must stream the resident weight slices";
  {
    auto outputs = executor.value().run_batch(inputs);
    ASSERT_TRUE(outputs.is_ok()) << outputs.status().to_string();
    EXPECT_EQ(executor.value().last_run_stats().weight_bytes_streamed, 0U)
        << "warm run re-streamed weights despite residency";
  }

  std::atomic<std::size_t> allocations{0};
  std::atomic<std::size_t>* prev = common::AllocProbe::arm(&allocations);
  auto outputs = executor.value().run_batch(inputs);
  common::AllocProbe::arm(prev);
  ASSERT_TRUE(outputs.is_ok()) << outputs.status().to_string();
  EXPECT_EQ(allocations.load(), 0U)
      << "module bodies allocated in steady state (" << allocations.load()
      << " allocations)";
  EXPECT_EQ(executor.value().last_run_stats().weight_bytes_streamed, 0U)
      << "steady-state run re-streamed weights despite residency";
  if (fuse_chain > 1) {
    EXPECT_GT(executor.value().last_run_stats().fused_local_passes, 0U)
        << "fused clustering did not exercise the PE-local fast path";
  }
}

TEST(SteadyStateAlloc, ProbeCountsOnlyInsideArmedScopes) {
  // Untracked: no scope.
  // Direct operator-new calls: new-expressions may legally be elided by the
  // compiler, plain function calls may not.
  std::atomic<std::size_t> count{0};
  std::atomic<std::size_t>* prev = common::AllocProbe::arm(&count);
  ::operator delete(::operator new(16));
  EXPECT_EQ(count.load(), 0U);
  {
    const common::AllocProbe::Scope scope;
    ::operator delete(::operator new(16));
  }
  EXPECT_EQ(count.load(), 1U);
  {
    const common::AllocProbe::Scope scope;
    const common::AllocProbe::Pause pause;
    ::operator delete(::operator new(16));
  }
  EXPECT_EQ(count.load(), 1U) << "paused scope must not count";
  common::AllocProbe::arm(prev);
  // Disarmed again: scopes no longer count.
  {
    const common::AllocProbe::Scope scope;
    ::operator delete(::operator new(16));
  }
  EXPECT_EQ(count.load(), 1U);
}

TEST(SteadyStateAlloc, LeNetFloat32) {
  expect_steady_state_allocates_nothing(nn::make_lenet(),
                                        nn::DataType::kFloat32, 1, 41);
}

TEST(SteadyStateAlloc, LeNetFixed16) {
  expect_steady_state_allocates_nothing(nn::make_lenet(),
                                        nn::DataType::kFixed16, 1, 43);
}

TEST(SteadyStateAlloc, LeNetFixed8) {
  expect_steady_state_allocates_nothing(nn::make_lenet(),
                                        nn::DataType::kFixed8, 1, 47);
}

TEST(SteadyStateAlloc, TinyNetFloat32ParallelLanes) {
  testing::TinyNetConfig config;
  config.in_channels = 2;
  config.conv_outputs = 6;
  config.pad = 1;
  config.with_pool = true;
  config.with_fc = true;
  expect_steady_state_allocates_nothing(testing::make_tiny_net(config),
                                        nn::DataType::kFloat32, 2, 53);
}

TEST(SteadyStateAlloc, TinyNetFixed16ParallelLanes) {
  testing::TinyNetConfig config;
  config.in_channels = 2;
  config.conv_outputs = 6;
  config.with_fc = true;
  expect_steady_state_allocates_nothing(testing::make_tiny_net(config),
                                        nn::DataType::kFixed16, 2, 59);
}

// Fused clusterings: the PE-local fused-pass buffers are grow-only and
// double-buffered by swap, so a warm fused run must allocate nothing and
// move zero weight bytes — same contract as the round-trip path.
TEST(SteadyStateAlloc, LeNetFusedPairsFloat32) {
  expect_steady_state_allocates_nothing(nn::make_lenet(),
                                        nn::DataType::kFloat32, 1, 73,
                                        /*fuse_chain=*/2);
}

TEST(SteadyStateAlloc, LeNetFusedWholeStageFixed8) {
  expect_steady_state_allocates_nothing(nn::make_lenet(),
                                        nn::DataType::kFixed8, 1, 79,
                                        /*fuse_chain=*/4);
}

TEST(SteadyStateAlloc, TinyNetFusedFixed16ParallelLanes) {
  testing::TinyNetConfig config;
  config.in_channels = 2;
  config.conv_outputs = 6;
  config.with_pool = true;
  config.with_fc = true;
  expect_steady_state_allocates_nothing(testing::make_tiny_net(config),
                                        nn::DataType::kFixed16, 2, 83,
                                        /*fuse_chain=*/2);
}

// DAG topologies: the join and broadcast modules must hold the same
// zero-allocation steady-state contract as the linear-chain modules.
TEST(SteadyStateAlloc, TinyResnetFloat32) {
  expect_steady_state_allocates_nothing(nn::make_tiny_resnet(),
                                        nn::DataType::kFloat32, 1, 61);
}

TEST(SteadyStateAlloc, TinyResnetFixed16) {
  expect_steady_state_allocates_nothing(nn::make_tiny_resnet(),
                                        nn::DataType::kFixed16, 1, 67);
}

TEST(SteadyStateAlloc, LenetSkipFixed8) {
  expect_steady_state_allocates_nothing(nn::make_lenet_skip(),
                                        nn::DataType::kFixed8, 1, 71);
}

}  // namespace
}  // namespace condor

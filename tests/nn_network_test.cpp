// Unit tests for the NN IR: layer descriptors, shape inference, validation,
// FLOP accounting, and the model zoo topologies.
#include <gtest/gtest.h>

#include "nn/models.hpp"
#include "nn/network.hpp"
#include "test_util.hpp"

namespace condor::nn {
namespace {

TEST(Layer, WindowOutputExtent) {
  // Paper eq. (2): 32 - 5 + 1 = 28.
  EXPECT_EQ(window_output_extent(32, 5, 1, 0).value(), 28u);
  // Paper eq. (3): floor((28 - 2) / 2) + 1 = 14.
  EXPECT_EQ(window_output_extent(28, 2, 2, 0).value(), 14u);
  // Padding: (32 + 2*1 - 3)/1 + 1 = 32 (SAME-style).
  EXPECT_EQ(window_output_extent(32, 3, 1, 1).value(), 32u);
  // Odd leftover columns are dropped (floor semantics).
  EXPECT_EQ(window_output_extent(7, 2, 2, 0).value(), 3u);
  // Errors.
  EXPECT_FALSE(window_output_extent(4, 5, 1, 0).is_ok());
  EXPECT_FALSE(window_output_extent(4, 0, 1, 0).is_ok());
  EXPECT_FALSE(window_output_extent(4, 2, 0, 0).is_ok());
  // Window fits thanks to padding.
  EXPECT_TRUE(window_output_extent(4, 5, 1, 1).is_ok());
}

TEST(Layer, ParseRoundTrips) {
  for (const LayerKind kind :
       {LayerKind::kInput, LayerKind::kConvolution, LayerKind::kPooling,
        LayerKind::kInnerProduct, LayerKind::kActivation, LayerKind::kSoftmax}) {
    EXPECT_EQ(parse_layer_kind(to_string(kind)).value(), kind);
  }
  for (const Activation act : {Activation::kNone, Activation::kReLU,
                               Activation::kSigmoid, Activation::kTanH}) {
    EXPECT_EQ(parse_activation(to_string(act)).value(), act);
  }
  EXPECT_EQ(parse_pool_method("MAX").value(), PoolMethod::kMax);
  EXPECT_EQ(parse_pool_method("AVE").value(), PoolMethod::kAverage);
  EXPECT_FALSE(parse_layer_kind("bogus").is_ok());
  EXPECT_FALSE(parse_activation("bogus").is_ok());
  EXPECT_FALSE(parse_pool_method("bogus").is_ok());
}

TEST(Layer, Activations) {
  EXPECT_EQ(apply_activation(Activation::kReLU, -2.0F), 0.0F);
  EXPECT_EQ(apply_activation(Activation::kReLU, 3.0F), 3.0F);
  EXPECT_NEAR(apply_activation(Activation::kSigmoid, 0.0F), 0.5F, 1e-6F);
  EXPECT_NEAR(apply_activation(Activation::kTanH, 0.0F), 0.0F, 1e-6F);
  EXPECT_EQ(apply_activation(Activation::kNone, -7.5F), -7.5F);
}

TEST(Network, LeNetShapes) {
  const Network lenet = make_lenet();
  ASSERT_TRUE(lenet.validate().is_ok());
  auto shapes = lenet.infer_shapes();
  ASSERT_TRUE(shapes.is_ok());
  // data, conv1, pool1, conv2, pool2, ip1, ip2, prob
  ASSERT_EQ(shapes.value().size(), 8u);
  EXPECT_EQ(shapes.value()[0].output, (Shape{1, 28, 28}));
  EXPECT_EQ(shapes.value()[1].output, (Shape{20, 24, 24}));
  EXPECT_EQ(shapes.value()[2].output, (Shape{20, 12, 12}));
  EXPECT_EQ(shapes.value()[3].output, (Shape{50, 8, 8}));
  EXPECT_EQ(shapes.value()[4].output, (Shape{50, 4, 4}));
  EXPECT_EQ(shapes.value()[5].output, (Shape{500}));
  EXPECT_EQ(shapes.value()[6].output, (Shape{10}));
  EXPECT_EQ(shapes.value()[7].output, (Shape{10}));
}

TEST(Network, LeNetParameterCount) {
  // conv1: 20*1*25+20 = 520; conv2: 50*20*25+50 = 25050;
  // ip1: 500*800+500 = 400500; ip2: 10*500+10 = 5010. Total 431080.
  EXPECT_EQ(make_lenet().parameter_count().value(), 431080u);
}

TEST(Network, Tc1IsUspsScale) {
  const Network tc1 = make_tc1();
  ASSERT_TRUE(tc1.validate().is_ok());
  EXPECT_EQ(tc1.input_shape().value(), (Shape{1, 16, 16}));
  EXPECT_EQ(tc1.output_shape().value(), (Shape{10}));
  EXPECT_LT(tc1.parameter_count().value(), 5000u);  // tiny network
}

TEST(Network, Vgg16Shapes) {
  const Network vgg = make_vgg16();
  ASSERT_TRUE(vgg.validate().is_ok());
  auto shapes = vgg.infer_shapes();
  ASSERT_TRUE(shapes.is_ok());
  // 1 input + 13 conv + 5 pool + 3 fc + softmax = 23 layers.
  EXPECT_EQ(vgg.layer_count(), 23u);
  EXPECT_EQ(shapes.value().back().output, (Shape{1000}));
  // After the five pools: 512 x 7 x 7.
  const LayerShapes& fc6 = shapes.value()[vgg.classifier_begin()];
  EXPECT_EQ(fc6.input, (Shape{512, 7, 7}));
  // ~138M parameters.
  EXPECT_NEAR(static_cast<double>(vgg.parameter_count().value()), 138.3e6, 1e6);
}

TEST(Network, FlopsMatchHandCounts) {
  const Network lenet = make_lenet();
  auto shapes = lenet.infer_shapes().value();
  // conv1: 24*24*20 outputs * 25 MACs * 2 + bias adds (11520).
  const std::uint64_t conv1 =
      layer_flops(lenet.layers()[1], shapes[1].input, shapes[1].output);
  EXPECT_EQ(conv1, 2ull * 25 * 20 * 24 * 24 + 20ull * 24 * 24);
  // pool1: 20*12*12 outputs * 4 window ops.
  const std::uint64_t pool1 =
      layer_flops(lenet.layers()[2], shapes[2].input, shapes[2].output);
  EXPECT_EQ(pool1, 20ull * 12 * 12 * 4);
  // ip2: 2*500*10 + 10.
  const std::uint64_t ip2 =
      layer_flops(lenet.layers()[6], shapes[6].input, shapes[6].output);
  EXPECT_EQ(ip2, 2ull * 500 * 10 + 10);
  // Feature extraction strictly smaller than total.
  EXPECT_LT(lenet.feature_extraction_flops().value(),
            lenet.total_flops().value());
}

TEST(Network, FeatureExtractionPrefix) {
  const Network lenet = make_lenet();
  const Network prefix = lenet.feature_extraction_prefix();
  EXPECT_EQ(prefix.layer_count(), 5u);  // data, conv1, pool1, conv2, pool2
  EXPECT_TRUE(prefix.validate().is_ok());
  EXPECT_EQ(prefix.output_shape().value(), (Shape{50, 4, 4}));
  EXPECT_EQ(prefix.feature_extraction_flops().value(),
            lenet.feature_extraction_flops().value());
}

TEST(Network, ValidateRejectsStructuralErrors) {
  using condor::testing::TinyNetConfig;
  // No input layer first.
  {
    Network net("bad");
    LayerSpec conv;
    conv.name = "c";
    conv.kind = LayerKind::kConvolution;
    conv.num_output = 1;
    conv.kernel_h = conv.kernel_w = 1;
    net.add(conv);
    EXPECT_FALSE(net.validate().is_ok());
  }
  // Duplicate names.
  {
    Network net = condor::testing::make_tiny_net(TinyNetConfig{});
    LayerSpec dup = net.layers()[1];
    EXPECT_FALSE([&] {
      Network copy = net;
      copy.add(dup);
      return copy.validate();
    }()
                     .is_ok());
  }
  // Convolution after inner product.
  {
    TinyNetConfig config;
    config.with_fc = true;
    Network net = condor::testing::make_tiny_net(config);
    LayerSpec conv;
    conv.name = "late_conv";
    conv.kind = LayerKind::kConvolution;
    conv.num_output = 1;
    conv.kernel_h = conv.kernel_w = 1;
    net.add(conv);
    EXPECT_FALSE(net.validate().is_ok());
  }
  // Softmax not last.
  {
    TinyNetConfig config;
    config.with_softmax = true;
    Network net = condor::testing::make_tiny_net(config);
    LayerSpec fc;
    fc.name = "after_softmax";
    fc.kind = LayerKind::kInnerProduct;
    fc.num_output = 2;
    net.add(fc);
    EXPECT_FALSE(net.validate().is_ok());
  }
  // Empty network.
  EXPECT_FALSE(Network("empty").validate().is_ok());
}

TEST(Network, InferRejectsWindowLargerThanMap) {
  testing::TinyNetConfig config;
  config.in_size = 4;
  config.kernel = 6;
  const Network net = testing::make_tiny_net(config);
  EXPECT_FALSE(net.infer_shapes().is_ok());
}

TEST(Network, SummaryMentionsEveryLayer) {
  const Network lenet = make_lenet();
  const std::string summary = lenet.summary();
  for (const LayerSpec& layer : lenet.layers()) {
    EXPECT_NE(summary.find(layer.name), std::string::npos) << layer.name;
  }
}

TEST(Network, ParameterShapes) {
  const Network lenet = make_lenet();
  auto shapes = lenet.infer_shapes().value();
  auto conv1 = parameter_shapes(lenet.layers()[1], shapes[1].input);
  ASSERT_TRUE(conv1.is_ok());
  EXPECT_EQ(conv1.value().weights, (Shape{20, 1, 5, 5}));
  EXPECT_EQ(conv1.value().bias, (Shape{20}));
  auto ip1 = parameter_shapes(lenet.layers()[5], shapes[5].input);
  ASSERT_TRUE(ip1.is_ok());
  EXPECT_EQ(ip1.value().weights, (Shape{500, 800}));
  // Pooling has no parameters.
  EXPECT_FALSE(parameter_shapes(lenet.layers()[2], shapes[2].input).is_ok());
}

TEST(ModelZoo, LookupByName) {
  EXPECT_EQ(make_model("tc1").value().name(), "tc1");
  EXPECT_EQ(make_model("LeNet").value().name(), "lenet");
  EXPECT_EQ(make_model("VGG-16").value().name(), "vgg16");
  EXPECT_FALSE(make_model("alexnet").is_ok());
}

}  // namespace
}  // namespace condor::nn

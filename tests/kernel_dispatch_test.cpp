// Runtime SIMD dispatch tests (nn/kernels_simd.hpp).
//
// Two layers of byte-equality evidence:
//  1. Kernel level — every compiled-in dispatch variant of the packed MAC
//     microkernels is compared byte-for-byte against the scalar kernel over
//     an edge-case shape grid (oc counts straddling the vector widths,
//     out_w == 0, tap_count == 0, strided taps, empty inner products).
//  2. Executor level — full accelerator runs of the same plan produce
//     byte-identical outputs when the process dispatch is pinned to each
//     available level (float32, fixed16 and fixed8 datapaths, at several
//     parallel_out degrees).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

#include "common/rng.hpp"
#include "dataflow/executor.hpp"
#include "hw/accel_plan.hpp"
#include "nn/kernels.hpp"
#include "nn/kernels_simd.hpp"
#include "nn/models.hpp"
#include "nn/numeric.hpp"
#include "test_util.hpp"

namespace condor {
namespace {

using nn::kernels::SimdLevel;
using testing::TinyNetConfig;

constexpr SimdLevel kAllLevels[] = {SimdLevel::kScalar, SimdLevel::kAvx2,
                                    SimdLevel::kAvx512};

/// Pins the process-wide kernel dispatch for one scope, restoring the
/// previous level on exit. `installed()` reports the level that actually
/// took effect (requests above max_supported clamp).
class ScopedSimdLevel {
 public:
  explicit ScopedSimdLevel(SimdLevel level)
      : previous_(nn::kernels::active_simd_level()),
        installed_(nn::kernels::set_active_simd_level_for_testing(level)) {}
  ~ScopedSimdLevel() { nn::kernels::set_active_simd_level_for_testing(previous_); }
  ScopedSimdLevel(const ScopedSimdLevel&) = delete;
  ScopedSimdLevel& operator=(const ScopedSimdLevel&) = delete;

  [[nodiscard]] SimdLevel installed() const noexcept { return installed_; }

 private:
  SimdLevel previous_;
  SimdLevel installed_;
};

template <typename T>
T random_value(Rng& rng);

template <>
float random_value<float>(Rng& rng) {
  return rng.uniform(-2.0F, 2.0F);
}

template <>
std::int32_t random_value<std::int32_t>(Rng& rng) {
  // Small codes: products and sums stay exact in the int32 accumulator too.
  return static_cast<std::int32_t>(rng.next_u64() % 255U) - 127;
}

template <>
std::int64_t random_value<std::int64_t>(Rng& rng) {
  // Accumulator seeds (bias values) for the widening fixed16 datapath.
  return static_cast<std::int64_t>(rng.next_u64() % 65535U) - 32767;
}

template <typename T>
std::vector<T> random_vector(std::size_t count, Rng& rng) {
  std::vector<T> values(count);
  for (T& v : values) {
    v = random_value<T>(rng);
  }
  return values;
}

/// Byte comparison that is meaningful for float: NaN-safe, -0.0 != +0.0.
template <typename Acc>
void expect_bytes_equal(const std::vector<Acc>& got,
                        const std::vector<Acc>& want, const char* what) {
  ASSERT_EQ(got.size(), want.size());
  EXPECT_EQ(0, std::memcmp(got.data(), want.data(), got.size() * sizeof(Acc)))
      << what << ": dispatch variant diverges from scalar";
}

/// Runs the conv row kernel of every available level over one shape and
/// compares against the scalar result byte-for-byte.
template <typename T, typename Acc>
void check_conv_shape(std::size_t oc_count, std::size_t out_w,
                      std::size_t tap_count, std::size_t x_stride,
                      std::uint64_t seed) {
  Rng rng(seed);
  // Tap rows: each must cover out_w strided reads.
  const std::size_t row_len = out_w == 0 ? 1 : out_w * x_stride;
  std::vector<std::vector<T>> rows;
  std::vector<const T*> taps;
  rows.reserve(tap_count);
  for (std::size_t t = 0; t < tap_count; ++t) {
    rows.push_back(random_vector<T>(row_len, rng));
    taps.push_back(rows.back().data());
  }
  // Weight block with a stride wider than the tile (oc-sliced lane case).
  const std::size_t packed_stride = oc_count + 3;
  const std::vector<T> packed =
      random_vector<T>(std::max<std::size_t>(tap_count, 1) * packed_stride, rng);
  const std::vector<Acc> seed_acc =
      random_vector<Acc>(std::max<std::size_t>(oc_count * out_w, 1), rng);

  std::vector<Acc> want = seed_acc;
  nn::kernels::conv_row_kernel<T, Acc>(SimdLevel::kScalar)(
      want.data(), oc_count, out_w, taps.data(), tap_count, x_stride,
      packed.data(), packed_stride);

  for (const SimdLevel level : kAllLevels) {
    const auto kernel = nn::kernels::conv_row_kernel<T, Acc>(level);
    if (kernel == nullptr) {
      continue;  // not compiled in or CPU lacks the ISA
    }
    std::vector<Acc> got = seed_acc;
    kernel(got.data(), oc_count, out_w, taps.data(), tap_count, x_stride,
           packed.data(), packed_stride);
    SCOPED_TRACE(::testing::Message()
                 << "level=" << nn::kernels::to_string(level)
                 << " oc=" << oc_count << " out_w=" << out_w
                 << " taps=" << tap_count << " x_stride=" << x_stride);
    expect_bytes_equal(got, want, "conv_accumulate_row");
  }
}

template <typename T, typename Acc>
void check_inner_product_shape(std::size_t out_count, std::size_t in_count,
                               std::uint64_t seed) {
  Rng rng(seed);
  const std::vector<T> x = random_vector<T>(std::max<std::size_t>(in_count, 1), rng);
  const std::size_t packed_stride = out_count + 5;
  const std::vector<T> packed = random_vector<T>(
      std::max<std::size_t>(in_count, 1) * packed_stride, rng);
  const std::vector<Acc> seed_acc =
      random_vector<Acc>(std::max<std::size_t>(out_count, 1), rng);

  std::vector<Acc> want = seed_acc;
  nn::kernels::inner_product_kernel<T, Acc>(SimdLevel::kScalar)(
      want.data(), out_count, x.data(), in_count, packed.data(), packed_stride);

  for (const SimdLevel level : kAllLevels) {
    const auto kernel = nn::kernels::inner_product_kernel<T, Acc>(level);
    if (kernel == nullptr) {
      continue;
    }
    std::vector<Acc> got = seed_acc;
    kernel(got.data(), out_count, x.data(), in_count, packed.data(),
           packed_stride);
    SCOPED_TRACE(::testing::Message()
                 << "level=" << nn::kernels::to_string(level)
                 << " out=" << out_count << " in=" << in_count);
    expect_bytes_equal(got, want, "inner_product_accumulate");
  }
}

template <typename T, typename Acc>
void sweep_conv_shapes() {
  // oc counts straddle both vector widths (4/8 for AVX2, 8/16 for AVX-512)
  // and the 4-point × 2-vector register blocks.
  const std::size_t oc_counts[] = {1, 3, 4, 7, 8, 9, 15, 16, 17, 31, 33, 40};
  const std::size_t out_ws[] = {0, 1, 2, 3, 4, 5, 9};
  const std::size_t tap_counts[] = {0, 1, 3, 9};
  const std::size_t strides[] = {1, 2};
  std::uint64_t seed = 1;
  for (const std::size_t oc : oc_counts) {
    for (const std::size_t w : out_ws) {
      for (const std::size_t t : tap_counts) {
        for (const std::size_t s : strides) {
          check_conv_shape<T, Acc>(oc, w, t, s, seed++);
        }
      }
    }
  }
}

template <typename T, typename Acc>
void sweep_inner_product_shapes() {
  const std::size_t out_counts[] = {1, 3, 4, 7, 8, 9, 15, 16, 17, 31, 33, 64, 67};
  const std::size_t in_counts[] = {0, 1, 2, 5, 37};
  std::uint64_t seed = 1000;
  for (const std::size_t out : out_counts) {
    for (const std::size_t in : in_counts) {
      check_inner_product_shape<T, Acc>(out, in, seed++);
    }
  }
}

TEST(KernelDispatch, LevelNamesRoundTrip) {
  for (const SimdLevel level : kAllLevels) {
    SimdLevel parsed = SimdLevel::kScalar;
    ASSERT_TRUE(nn::kernels::parse_simd_level(nn::kernels::to_string(level),
                                              parsed));
    EXPECT_EQ(parsed, level);
  }
  SimdLevel parsed = SimdLevel::kAvx2;
  EXPECT_FALSE(nn::kernels::parse_simd_level("sse9", parsed));
  EXPECT_FALSE(nn::kernels::parse_simd_level("", parsed));
  EXPECT_EQ(parsed, SimdLevel::kAvx2) << "failed parse must not clobber out";
}

TEST(KernelDispatch, ScalarKernelsAlwaysAvailable) {
  EXPECT_NE(nullptr,
            (nn::kernels::conv_row_kernel<float, float>(SimdLevel::kScalar)));
  EXPECT_NE(nullptr, (nn::kernels::conv_row_kernel<std::int32_t, std::int64_t>(
                         SimdLevel::kScalar)));
  EXPECT_NE(nullptr, (nn::kernels::conv_row_kernel<std::int32_t, std::int32_t>(
                         SimdLevel::kScalar)));
  EXPECT_NE(nullptr, (nn::kernels::inner_product_kernel<float, float>(
                         SimdLevel::kScalar)));
  EXPECT_NE(nullptr,
            (nn::kernels::inner_product_kernel<std::int32_t, std::int64_t>(
                SimdLevel::kScalar)));
  EXPECT_NE(nullptr,
            (nn::kernels::inner_product_kernel<std::int32_t, std::int32_t>(
                SimdLevel::kScalar)));
}

TEST(KernelDispatch, AvailabilityMatchesMaxSupported) {
  const SimdLevel max = nn::kernels::max_supported_simd_level();
  for (const SimdLevel level : kAllLevels) {
    const bool expect_present = level <= max;
    EXPECT_EQ(expect_present,
              (nn::kernels::conv_row_kernel<float, float>(level)) != nullptr)
        << nn::kernels::to_string(level);
    EXPECT_EQ(expect_present,
              (nn::kernels::inner_product_kernel<float, float>(level)) != nullptr)
        << nn::kernels::to_string(level);
  }
}

TEST(KernelDispatch, TestingOverrideClampsAndRestores) {
  const SimdLevel before = nn::kernels::active_simd_level();
  const SimdLevel max = nn::kernels::max_supported_simd_level();
  {
    ScopedSimdLevel pinned(SimdLevel::kAvx512);
    EXPECT_LE(pinned.installed(), max);
    EXPECT_EQ(pinned.installed(), nn::kernels::active_simd_level());
  }
  EXPECT_EQ(before, nn::kernels::active_simd_level());
  {
    ScopedSimdLevel pinned(SimdLevel::kScalar);
    EXPECT_EQ(SimdLevel::kScalar, pinned.installed());
    EXPECT_EQ(SimdLevel::kScalar, nn::kernels::active_simd_level());
  }
  EXPECT_EQ(before, nn::kernels::active_simd_level());
}

TEST(KernelDispatch, CpuFeatureStringIsNonEmpty) {
  EXPECT_FALSE(nn::kernels::cpu_feature_string().empty());
}

TEST(KernelDispatch, ConvFloatMatchesScalarByteForByte) {
  sweep_conv_shapes<float, float>();
}

TEST(KernelDispatch, ConvFixed16MatchesScalarByteForByte) {
  sweep_conv_shapes<std::int32_t, std::int64_t>();
}

TEST(KernelDispatch, ConvFixed8MatchesScalarByteForByte) {
  sweep_conv_shapes<std::int32_t, std::int32_t>();
}

TEST(KernelDispatch, InnerProductFloatMatchesScalarByteForByte) {
  sweep_inner_product_shapes<float, float>();
}

TEST(KernelDispatch, InnerProductFixed16MatchesScalarByteForByte) {
  sweep_inner_product_shapes<std::int32_t, std::int64_t>();
}

TEST(KernelDispatch, InnerProductFixed8MatchesScalarByteForByte) {
  sweep_inner_product_shapes<std::int32_t, std::int32_t>();
}

/// The public kernels.hpp entry points must follow the installed dispatch
/// and stay byte-identical across levels.
TEST(KernelDispatch, PublicEntryPointsFollowDispatch) {
  Rng rng(77);
  const std::size_t oc = 13;
  const std::size_t out_w = 4;
  const std::size_t taps_n = 9;
  std::vector<std::vector<float>> rows;
  std::vector<const float*> taps;
  for (std::size_t t = 0; t < taps_n; ++t) {
    rows.push_back(random_vector<float>(out_w, rng));
    taps.push_back(rows.back().data());
  }
  const std::vector<float> packed = random_vector<float>(taps_n * oc, rng);
  const std::vector<float> seed_acc = random_vector<float>(oc * out_w, rng);

  std::vector<std::vector<float>> results;
  for (const SimdLevel level : kAllLevels) {
    ScopedSimdLevel pinned(level);
    if (pinned.installed() != level) {
      continue;  // level not supported on this host
    }
    std::vector<float> acc = seed_acc;
    nn::kernels::conv_accumulate_row<float, float>(
        acc.data(), oc, out_w, taps.data(), taps_n, 1, packed.data(), oc);
    results.push_back(std::move(acc));
  }
  ASSERT_FALSE(results.empty());
  for (std::size_t i = 1; i < results.size(); ++i) {
    expect_bytes_equal(results[i], results.front(), "public conv entry");
  }
}

/// Runs one accelerator plan at every supported dispatch level and expects
/// byte-identical batch outputs.
void expect_executor_outputs_level_invariant(const nn::Network& network,
                                             nn::DataType data_type,
                                             std::size_t parallel_out,
                                             std::size_t batch,
                                             std::uint64_t seed) {
  auto weights = nn::initialize_weights(network, seed);
  ASSERT_TRUE(weights.is_ok()) << weights.status().to_string();

  hw::HwNetwork hw_net = hw::with_default_annotations(network);
  hw_net.hw.data_type = data_type;
  for (std::size_t i = 1; i < hw_net.hw.layers.size(); ++i) {
    hw_net.hw.layers[i].parallel_out = parallel_out;
  }
  auto plan = hw::plan_accelerator(hw_net);
  ASSERT_TRUE(plan.is_ok()) << plan.status().to_string();

  const auto inputs = testing::random_inputs(network, batch, seed + 1);

  std::vector<std::vector<Tensor>> per_level;
  std::vector<SimdLevel> levels_run;
  for (const SimdLevel level : kAllLevels) {
    ScopedSimdLevel pinned(level);
    if (pinned.installed() != level) {
      continue;
    }
    auto executor =
        dataflow::AcceleratorExecutor::create(plan.value(), weights.value());
    ASSERT_TRUE(executor.is_ok()) << executor.status().to_string();
    auto outputs = executor.value().run_batch(inputs);
    ASSERT_TRUE(outputs.is_ok()) << outputs.status().to_string();
    EXPECT_EQ(executor.value().last_run_stats().simd_level,
              nn::kernels::to_string(level));
    per_level.push_back(std::move(outputs).value());
    levels_run.push_back(level);
  }
  ASSERT_GE(per_level.size(), 1U);

  const std::vector<Tensor>& want = per_level.front();
  for (std::size_t l = 1; l < per_level.size(); ++l) {
    ASSERT_EQ(per_level[l].size(), want.size());
    for (std::size_t i = 0; i < want.size(); ++i) {
      const auto& got = per_level[l][i];
      ASSERT_EQ(got.shape(), want[i].shape());
      EXPECT_EQ(0, std::memcmp(got.data().data(), want[i].data().data(),
                               got.data().size() * sizeof(float)))
          << "image " << i << ": level "
          << nn::kernels::to_string(levels_run[l])
          << " diverges from " << nn::kernels::to_string(levels_run.front());
    }
  }
}

class ExecutorLevelInvariance
    : public ::testing::TestWithParam<std::tuple<nn::DataType, std::size_t>> {};

std::string executor_param_name(
    const ::testing::TestParamInfo<ExecutorLevelInvariance::ParamType>& info) {
  return std::string(nn::to_string(std::get<0>(info.param))) + "_po" +
         std::to_string(std::get<1>(info.param));
}

TEST_P(ExecutorLevelInvariance, TinyNetOutputsByteIdenticalAcrossLevels) {
  const auto [data_type, parallel_out] = GetParam();
  TinyNetConfig config;
  config.in_channels = 2;
  config.conv_outputs = 6;
  config.pad = 1;
  config.with_pool = true;
  config.with_fc = true;
  config.activation = nn::Activation::kReLU;
  expect_executor_outputs_level_invariant(testing::make_tiny_net(config),
                                          data_type, parallel_out, 2, 21);
}

INSTANTIATE_TEST_SUITE_P(
    DatapathsAndLanes, ExecutorLevelInvariance,
    ::testing::Combine(::testing::Values(nn::DataType::kFloat32,
                                         nn::DataType::kFixed16,
                                         nn::DataType::kFixed8),
                       ::testing::Values(std::size_t{1}, std::size_t{2},
                                         std::size_t{4})),
    executor_param_name);

TEST(KernelDispatch, LeNetFloatOutputsByteIdenticalAcrossLevels) {
  expect_executor_outputs_level_invariant(nn::make_lenet(),
                                          nn::DataType::kFloat32, 2, 2, 33);
}

TEST(KernelDispatch, LeNetFixed16OutputsByteIdenticalAcrossLevels) {
  expect_executor_outputs_level_invariant(nn::make_lenet(),
                                          nn::DataType::kFixed16, 2, 1, 35);
}

}  // namespace
}  // namespace condor

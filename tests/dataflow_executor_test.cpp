// Integration tests of the functional dataflow engine: the accelerator
// simulation must match the golden CPU reference bit-for-bit on every
// model, geometry and batch size (the central correctness property of the
// reproduction).
#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <string>

#include "common/strings.hpp"
#include "dataflow/executor.hpp"
#include "dataflow/executor_pool.hpp"
#include "hw/accel_plan.hpp"
#include "hw/dse.hpp"
#include "nn/models.hpp"
#include "nn/quantization.hpp"
#include "nn/reference.hpp"
#include "test_util.hpp"

namespace condor {
namespace {

using testing::TinyNetConfig;

/// Runs `network` through both engines and EXPECTs bit-identical outputs.
void expect_dataflow_matches_reference(const nn::Network& network,
                                       std::size_t batch, std::uint64_t seed,
                                       const hw::LayerHw* uniform_hw = nullptr) {
  auto weights = nn::initialize_weights(network, seed);
  ASSERT_TRUE(weights.is_ok()) << weights.status().to_string();

  auto engine = nn::ReferenceEngine::create(network, weights.value());
  ASSERT_TRUE(engine.is_ok()) << engine.status().to_string();

  hw::HwNetwork hw_net = hw::with_default_annotations(network);
  if (uniform_hw != nullptr) {
    for (std::size_t i = 1; i < hw_net.hw.layers.size(); ++i) {
      hw_net.hw.layers[i] = *uniform_hw;
    }
  }
  auto plan = hw::plan_accelerator(hw_net);
  ASSERT_TRUE(plan.is_ok()) << plan.status().to_string();

  auto executor =
      dataflow::AcceleratorExecutor::create(plan.value(), weights.value());
  ASSERT_TRUE(executor.is_ok()) << executor.status().to_string();

  const auto inputs = testing::random_inputs(network, batch, seed + 1);
  auto outputs = executor.value().run_batch(inputs);
  ASSERT_TRUE(outputs.is_ok()) << outputs.status().to_string();
  ASSERT_EQ(outputs.value().size(), batch);

  for (std::size_t i = 0; i < batch; ++i) {
    auto expected = engine.value().forward(inputs[i]);
    ASSERT_TRUE(expected.is_ok()) << expected.status().to_string();
    EXPECT_EQ(outputs.value()[i].shape().element_count(),
              expected.value().shape().element_count());
    EXPECT_EQ(max_abs_diff(outputs.value()[i], expected.value()), 0.0F)
        << "image " << i << " diverges from the golden reference";
  }
}

TEST(DataflowExecutor, SingleConvolutionMatchesReference) {
  TinyNetConfig config;
  expect_dataflow_matches_reference(testing::make_tiny_net(config), 2, 7);
}

TEST(DataflowExecutor, ConvolutionWithReluMatchesReference) {
  TinyNetConfig config;
  config.activation = nn::Activation::kReLU;
  expect_dataflow_matches_reference(testing::make_tiny_net(config), 2, 11);
}

TEST(DataflowExecutor, ConvolutionWithTanhMatchesReference) {
  TinyNetConfig config;
  config.activation = nn::Activation::kTanH;
  expect_dataflow_matches_reference(testing::make_tiny_net(config), 1, 13);
}

TEST(DataflowExecutor, StridedConvolutionMatchesReference) {
  TinyNetConfig config;
  config.in_size = 9;
  config.stride = 2;
  expect_dataflow_matches_reference(testing::make_tiny_net(config), 2, 17);
}

TEST(DataflowExecutor, PaddedConvolutionMatchesReference) {
  TinyNetConfig config;
  config.pad = 1;
  expect_dataflow_matches_reference(testing::make_tiny_net(config), 2, 19);
}

TEST(DataflowExecutor, ConvPoolMatchesReference) {
  TinyNetConfig config;
  config.with_pool = true;
  expect_dataflow_matches_reference(testing::make_tiny_net(config), 2, 23);
}

TEST(DataflowExecutor, AveragePoolMatchesReference) {
  TinyNetConfig config;
  config.with_pool = true;
  config.pool_method = nn::PoolMethod::kAverage;
  expect_dataflow_matches_reference(testing::make_tiny_net(config), 2, 29);
}

TEST(DataflowExecutor, FullPipelineWithClassifierMatchesReference) {
  TinyNetConfig config;
  config.with_pool = true;
  config.with_fc = true;
  config.with_softmax = true;
  expect_dataflow_matches_reference(testing::make_tiny_net(config), 3, 31);
}

TEST(DataflowExecutor, Tc1MatchesReference) {
  expect_dataflow_matches_reference(nn::make_tc1(), 4, 37);
}

TEST(DataflowExecutor, LeNetMatchesReference) {
  expect_dataflow_matches_reference(nn::make_lenet(), 2, 41);
}

TEST(DataflowExecutor, Tc1LargerBatchMatchesReference) {
  expect_dataflow_matches_reference(nn::make_tc1(), 16, 43);
}

TEST(DataflowExecutor, FusedFeatureLayersMatchReference) {
  // Cluster conv+pool onto one PE (pe_group fusion) — exercises the outer
  // layer loop, the loopback channel and the filter conditionals.
  TinyNetConfig config;
  config.with_pool = true;
  config.with_fc = true;
  hw::LayerHw fused;
  const nn::Network network = testing::make_tiny_net(config);
  hw::HwNetwork hw_net = hw::with_default_annotations(network);
  hw_net.hw.layers[1].pe_group = 0;  // conv1
  hw_net.hw.layers[2].pe_group = 0;  // pool1

  auto weights = nn::initialize_weights(network, 47);
  ASSERT_TRUE(weights.is_ok());
  auto engine = nn::ReferenceEngine::create(network, weights.value());
  ASSERT_TRUE(engine.is_ok());
  auto plan = hw::plan_accelerator(hw_net);
  ASSERT_TRUE(plan.is_ok()) << plan.status().to_string();
  ASSERT_EQ(plan.value().pes.size(), 2u);  // fused feature PE + classifier

  auto executor =
      dataflow::AcceleratorExecutor::create(plan.value(), weights.value());
  ASSERT_TRUE(executor.is_ok());
  const auto inputs = testing::random_inputs(network, 3, 53);
  auto outputs = executor.value().run_batch(inputs);
  ASSERT_TRUE(outputs.is_ok()) << outputs.status().to_string();
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    auto expected = engine.value().forward(inputs[i]);
    ASSERT_TRUE(expected.is_ok());
    EXPECT_EQ(max_abs_diff(outputs.value()[i], expected.value()), 0.0F);
  }
}

TEST(DataflowExecutor, FusedClassifierLayersMatchReference) {
  // Cluster ip1+ip2 onto one classifier PE — exercises the multi-pass
  // ClassifierPeModule.
  const nn::Network network = nn::make_lenet();
  hw::HwNetwork hw_net = hw::with_default_annotations(network);
  hw_net.hw.layers[5].pe_group = 4;  // ip1
  hw_net.hw.layers[6].pe_group = 4;  // ip2

  auto weights = nn::initialize_weights(network, 71);
  ASSERT_TRUE(weights.is_ok());
  auto engine = nn::ReferenceEngine::create(network, weights.value());
  ASSERT_TRUE(engine.is_ok());
  auto plan = hw::plan_accelerator(hw_net);
  ASSERT_TRUE(plan.is_ok()) << plan.status().to_string();
  ASSERT_EQ(plan.value().pes.size(), 5u);  // 4 feature + 1 fused classifier
  ASSERT_EQ(plan.value().pes.back().layer_indices.size(), 2u);

  auto executor =
      dataflow::AcceleratorExecutor::create(plan.value(), weights.value());
  ASSERT_TRUE(executor.is_ok());
  const auto inputs = testing::random_inputs(network, 2, 73);
  auto outputs = executor.value().run_batch(inputs);
  ASSERT_TRUE(outputs.is_ok()) << outputs.status().to_string();
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    EXPECT_EQ(max_abs_diff(outputs.value()[i],
                           engine.value().forward(inputs[i]).value()),
              0.0F);
  }
}

TEST(DataflowExecutor, StandaloneActivationPeMatchesReference) {
  // An activation as the very first compute layer maps to a standalone
  // element-wise PE with a degenerate 1x1 memory subsystem.
  nn::Network network("act-first");
  nn::LayerSpec input;
  input.name = "data";
  input.kind = nn::LayerKind::kInput;
  input.input_channels = 2;
  input.input_height = 6;
  input.input_width = 6;
  network.add(input);
  nn::LayerSpec act;
  act.name = "relu_in";
  act.kind = nn::LayerKind::kActivation;
  act.activation = nn::Activation::kReLU;
  network.add(act);
  nn::LayerSpec conv;
  conv.name = "conv";
  conv.kind = nn::LayerKind::kConvolution;
  conv.num_output = 3;
  conv.kernel_h = conv.kernel_w = 3;
  network.add(conv);
  ASSERT_TRUE(network.validate().is_ok());

  auto plan = hw::plan_accelerator(hw::with_default_annotations(network));
  ASSERT_TRUE(plan.is_ok()) << plan.status().to_string();
  ASSERT_EQ(plan.value().pes.front().kind, hw::PeKind::kElementwise);
  ASSERT_TRUE(plan.value().pes.front().memory.has_value());
  EXPECT_EQ(plan.value().pes.front().memory->window_h, 1u);

  expect_dataflow_matches_reference(network, 2, 79);
}

TEST(DataflowExecutor, RejectsWrongInputShape) {
  const nn::Network network = testing::make_tiny_net(TinyNetConfig{});
  auto weights = nn::initialize_weights(network, 59);
  ASSERT_TRUE(weights.is_ok());
  auto plan = hw::plan_accelerator(hw::with_default_annotations(network));
  ASSERT_TRUE(plan.is_ok());
  auto executor =
      dataflow::AcceleratorExecutor::create(plan.value(), weights.value());
  ASSERT_TRUE(executor.is_ok());
  std::vector<Tensor> bad = {Tensor(Shape{1, 4, 4})};
  auto result = executor.value().run_batch(bad);
  EXPECT_FALSE(result.is_ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidInput);
}

TEST(DataflowExecutor, ParallelInputLanesMatchReference) {
  // parallel_in > 1 replicates the memory subsystem: one filter chain per
  // concurrently-read input map (paper §3.2). Results stay bit-exact.
  const nn::Network network = nn::make_lenet();
  hw::HwNetwork hw_net = hw::with_default_annotations(network);
  hw_net.hw.layers[2].parallel_in = 4;  // pool1 (20 maps over 4 lanes)
  hw_net.hw.layers[3].parallel_in = 5;  // conv2 (20 maps over 5 lanes)
  ASSERT_TRUE(hw_net.validate().is_ok());

  auto weights = nn::initialize_weights(network, 91);
  ASSERT_TRUE(weights.is_ok());
  auto engine = nn::ReferenceEngine::create(network, weights.value());
  ASSERT_TRUE(engine.is_ok());
  auto plan = hw::plan_accelerator(hw_net);
  ASSERT_TRUE(plan.is_ok());
  auto executor =
      dataflow::AcceleratorExecutor::create(plan.value(), weights.value());
  ASSERT_TRUE(executor.is_ok());

  const auto inputs = testing::random_inputs(network, 2, 93);
  auto outputs = executor.value().run_batch(inputs);
  ASSERT_TRUE(outputs.is_ok()) << outputs.status().to_string();
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    EXPECT_EQ(max_abs_diff(outputs.value()[i],
                           engine.value().forward(inputs[i]).value()),
              0.0F);
  }
  // The module census reflects the replicated chains: conv2 alone owns
  // 5 lanes x 25 filters.
  EXPECT_GT(executor.value().last_run_stats().modules, 150u);
}

TEST(DataflowExecutor, ParallelOutSweepMatchesReference) {
  // parallel_out > 1 partitions each pass's output channels across compute
  // lanes (the paper's intra-layer unfolding). Sweep degrees including
  // non-divisors of LeNet's map counts (conv1: 20, conv2: 50, ip2: 10);
  // every degree must stay bit-exact against the golden reference.
  const nn::Network network = nn::make_lenet();
  for (const std::size_t degree : {std::size_t{1}, std::size_t{2},
                                   std::size_t{4}, std::size_t{7}}) {
    SCOPED_TRACE("parallel_out = " + std::to_string(degree));
    hw::LayerHw uniform;
    uniform.parallel_out = degree;
    expect_dataflow_matches_reference(network, 2, 101 + degree, &uniform);
  }
}

TEST(DataflowExecutor, ParallelOutDegreesAgreeBitForBit) {
  // Randomized cross-degree check: the same random inputs through executors
  // built at parallel_out 2, 4 and 7 must reproduce the sequential
  // (parallel_out = 1) outputs byte for byte, not merely within tolerance —
  // each output element's accumulation chain never leaves its lane.
  TinyNetConfig config;
  config.in_channels = 3;
  config.in_size = 12;
  config.conv_outputs = 10;  // non-multiple of 4 and 7
  config.activation = nn::Activation::kReLU;
  config.with_pool = true;
  config.with_fc = true;
  config.fc_outputs = 9;  // non-multiple of every swept degree
  const nn::Network network = testing::make_tiny_net(config);
  auto weights = nn::initialize_weights(network, 113);
  ASSERT_TRUE(weights.is_ok());
  const auto inputs = testing::random_inputs(network, 3, 127);

  const auto run_at = [&](std::size_t degree) {
    hw::HwNetwork hw_net = hw::with_default_annotations(network);
    for (std::size_t i = 1; i < hw_net.hw.layers.size(); ++i) {
      hw_net.hw.layers[i].parallel_out = degree;
    }
    auto plan = hw::plan_accelerator(hw_net);
    EXPECT_TRUE(plan.is_ok()) << plan.status().to_string();
    auto executor =
        dataflow::AcceleratorExecutor::create(plan.value(), weights.value());
    EXPECT_TRUE(executor.is_ok());
    auto outputs = executor.value().run_batch(inputs);
    EXPECT_TRUE(outputs.is_ok()) << outputs.status().to_string();
    return std::move(outputs).value();
  };

  const std::vector<Tensor> baseline = run_at(1);
  ASSERT_EQ(baseline.size(), inputs.size());
  for (const std::size_t degree : {std::size_t{2}, std::size_t{4},
                                   std::size_t{7}}) {
    SCOPED_TRACE("parallel_out = " + std::to_string(degree));
    const std::vector<Tensor> outputs = run_at(degree);
    ASSERT_EQ(outputs.size(), baseline.size());
    for (std::size_t i = 0; i < outputs.size(); ++i) {
      EXPECT_EQ(max_abs_diff(outputs[i], baseline[i]), 0.0F)
          << "image " << i << " diverges from the sequential run";
    }
  }
}

TEST(DataflowExecutor, DseSelectedParallelPlanMatchesReference) {
  // End-to-end DSE -> executor: the exploration on LeNet's feature prefix
  // picks parallel_out > 1 somewhere, and the selected configuration must
  // still validate bit-exact through the dataflow engine.
  const nn::Network network = nn::make_lenet().feature_extraction_prefix();
  auto dse =
      hw::explore(hw::with_default_annotations(network, "aws-f1", 250.0));
  ASSERT_TRUE(dse.is_ok()) << dse.status().to_string();
  const hw::HwNetwork& best = dse.value().best.config;
  std::size_t max_parallel_out = 1;
  for (const hw::LayerHw& layer : best.hw.layers) {
    max_parallel_out = std::max(max_parallel_out, layer.parallel_out);
  }
  ASSERT_GT(max_parallel_out, 1u)
      << "DSE no longer unfolds output channels on LeNet features";

  auto weights = nn::initialize_weights(network, 131);
  ASSERT_TRUE(weights.is_ok());
  auto engine = nn::ReferenceEngine::create(network, weights.value());
  ASSERT_TRUE(engine.is_ok());
  auto plan = hw::plan_accelerator(best);
  ASSERT_TRUE(plan.is_ok()) << plan.status().to_string();
  auto executor =
      dataflow::AcceleratorExecutor::create(plan.value(), weights.value());
  ASSERT_TRUE(executor.is_ok());

  const auto inputs = testing::random_inputs(network, 2, 137);
  auto outputs = executor.value().run_batch(inputs);
  ASSERT_TRUE(outputs.is_ok()) << outputs.status().to_string();
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    EXPECT_EQ(max_abs_diff(outputs.value()[i],
                           engine.value().forward(inputs[i]).value()),
              0.0F);
  }
}

TEST(DataflowExecutor, ParallelLanesOnFusedPeMatchReference) {
  // Lanes + fusion together: conv+pool fused onto one PE with two lanes.
  testing::TinyNetConfig config;
  config.in_channels = 4;
  config.with_pool = true;
  const nn::Network network = testing::make_tiny_net(config);
  hw::HwNetwork hw_net = hw::with_default_annotations(network);
  hw_net.hw.layers[1].pe_group = 0;
  hw_net.hw.layers[2].pe_group = 0;
  hw_net.hw.layers[1].parallel_in = 2;
  ASSERT_TRUE(hw_net.validate().is_ok());

  auto weights = nn::initialize_weights(network, 95);
  ASSERT_TRUE(weights.is_ok());
  auto engine = nn::ReferenceEngine::create(network, weights.value());
  ASSERT_TRUE(engine.is_ok());
  auto plan = hw::plan_accelerator(hw_net);
  ASSERT_TRUE(plan.is_ok());
  auto executor =
      dataflow::AcceleratorExecutor::create(plan.value(), weights.value());
  ASSERT_TRUE(executor.is_ok());
  const auto inputs = testing::random_inputs(network, 3, 97);
  auto outputs = executor.value().run_batch(inputs);
  ASSERT_TRUE(outputs.is_ok()) << outputs.status().to_string();
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    EXPECT_EQ(max_abs_diff(outputs.value()[i],
                           engine.value().forward(inputs[i]).value()),
              0.0F);
  }
}

TEST(DataflowExecutor, WeightStreamsCarryExpectedTraffic) {
  // Weight residency: every weighted PE receives its slice exactly once per
  // compiled design, regardless of batch size — and a warm run moves zero
  // weight bytes.
  const nn::Network network = nn::make_tc1();
  auto weights = nn::initialize_weights(network, 83);
  ASSERT_TRUE(weights.is_ok());
  auto plan = hw::plan_accelerator(hw::with_default_annotations(network));
  ASSERT_TRUE(plan.is_ok());
  auto executor =
      dataflow::AcceleratorExecutor::create(plan.value(), weights.value());
  ASSERT_TRUE(executor.is_ok());
  const std::size_t batch = 3;
  const auto inputs = testing::random_inputs(network, batch, 89);
  auto outputs = executor.value().run_batch(inputs);
  ASSERT_TRUE(outputs.is_ok());

  // conv1: (6*1*3*3 + 6) weights once; conv2: (12*6*4*4 + 12) once;
  // ip1 (classifier): (10*48 + 10) once — batch size never multiplies them.
  const std::uint64_t conv1_expected = 6ull * 9 + 6;
  const std::uint64_t conv2_expected = 12ull * 6 * 16 + 12;
  const std::uint64_t ip1_expected = 10ull * 48 + 10;
  std::uint64_t conv1_seen = 0;
  std::uint64_t conv2_seen = 0;
  std::uint64_t ip1_seen = 0;
  const auto stats = executor.value().last_run_stats();
  std::size_t weight_streams = 0;
  for (std::size_t s = 0; s < stats.stream_stats.size(); ++s) {
    // Identify weight streams by their write totals matching expectations.
    const std::uint64_t writes = stats.stream_stats[s].total_writes;
    if (writes == conv1_expected) {
      conv1_seen = writes;
      ++weight_streams;
    } else if (writes == conv2_expected) {
      conv2_seen = writes;
      ++weight_streams;
    } else if (writes == ip1_expected) {
      ip1_seen = writes;
      ++weight_streams;
    }
  }
  EXPECT_EQ(conv1_seen, conv1_expected);
  EXPECT_EQ(conv2_seen, conv2_expected);
  EXPECT_EQ(ip1_seen, ip1_expected);
  EXPECT_GE(weight_streams, 3u);
  EXPECT_EQ(stats.weight_bytes_streamed,
            (conv1_expected + conv2_expected + ip1_expected) * sizeof(float));

  // Warm run over the same design: zero weight bytes on any stream.
  auto warm = executor.value().run_batch(inputs);
  ASSERT_TRUE(warm.is_ok());
  EXPECT_EQ(executor.value().last_run_stats().weight_bytes_streamed, 0u);
}

TEST(DataflowExecutor, RepeatedRunBatchIsBitIdentical) {
  // The executor compiles its design once and reuses graph + pool across
  // calls; every subsequent batch must still match the reference exactly
  // (reopened streams carry no state over, stats are per-run).
  const nn::Network network = nn::make_tc1();
  auto weights = nn::initialize_weights(network, 101);
  ASSERT_TRUE(weights.is_ok());
  auto engine = nn::ReferenceEngine::create(network, weights.value());
  ASSERT_TRUE(engine.is_ok());
  auto plan = hw::plan_accelerator(hw::with_default_annotations(network));
  ASSERT_TRUE(plan.is_ok());
  auto executor =
      dataflow::AcceleratorExecutor::create(plan.value(), weights.value());
  ASSERT_TRUE(executor.is_ok());

  const auto inputs = testing::random_inputs(network, 3, 103);
  auto first = executor.value().run_batch(inputs);
  ASSERT_TRUE(first.is_ok()) << first.status().to_string();
  const dataflow::RunStats first_stats = executor.value().last_run_stats();
  EXPECT_GT(first_stats.weight_bytes_streamed, 0u);

  // The first warm run establishes the steady-state per-stream traffic;
  // every later warm run must match it exactly. It differs from the first
  // (cold) run only on the weight streams, which residency empties.
  std::optional<dataflow::RunStats> warm_stats;
  for (int run = 0; run < 3; ++run) {
    auto again = executor.value().run_batch(inputs);
    ASSERT_TRUE(again.is_ok()) << "run " << run << ": "
                               << again.status().to_string();
    ASSERT_EQ(again.value().size(), inputs.size());
    for (std::size_t i = 0; i < inputs.size(); ++i) {
      EXPECT_EQ(max_abs_diff(again.value()[i], first.value()[i]), 0.0F)
          << "run " << run << " image " << i << " differs from the first run";
    }
    const dataflow::RunStats stats = executor.value().last_run_stats();
    EXPECT_EQ(stats.weight_bytes_streamed, 0u) << "run " << run;
    ASSERT_EQ(stats.stream_stats.size(), first_stats.stream_stats.size());
    if (!warm_stats.has_value()) {
      warm_stats = stats;
      // Warm traffic never exceeds cold traffic on any stream.
      for (std::size_t s = 0; s < stats.stream_stats.size(); ++s) {
        EXPECT_LE(stats.stream_stats[s].total_writes,
                  first_stats.stream_stats[s].total_writes);
      }
      continue;
    }
    for (std::size_t s = 0; s < stats.stream_stats.size(); ++s) {
      EXPECT_EQ(stats.stream_stats[s].total_writes,
                warm_stats->stream_stats[s].total_writes);
    }
  }
  // A different batch through the same compiled design also stays exact.
  const auto other = testing::random_inputs(network, 5, 107);
  auto outputs = executor.value().run_batch(other);
  ASSERT_TRUE(outputs.is_ok()) << outputs.status().to_string();
  for (std::size_t i = 0; i < other.size(); ++i) {
    EXPECT_EQ(max_abs_diff(outputs.value()[i],
                           engine.value().forward(other[i]).value()),
              0.0F);
  }
}

TEST(DataflowExecutor, ImagesOverlapInThePipeline) {
  // Multi-image pipelining: with per-image weight drains gone and inter-PE
  // edges sized to hold a full blob, image k+1 enters the graph while image
  // k is still in flight. The datamover framing counters prove it.
  const nn::Network network = nn::make_lenet();
  auto weights = nn::initialize_weights(network, 131);
  ASSERT_TRUE(weights.is_ok());
  auto plan = hw::plan_accelerator(hw::with_default_annotations(network));
  ASSERT_TRUE(plan.is_ok());
  auto executor =
      dataflow::AcceleratorExecutor::create(plan.value(), weights.value());
  ASSERT_TRUE(executor.is_ok());
  const auto inputs = testing::random_inputs(network, 4, 137);
  auto outputs = executor.value().run_batch(inputs);
  ASSERT_TRUE(outputs.is_ok()) << outputs.status().to_string();
  const dataflow::RunStats& stats = executor.value().last_run_stats();
  EXPECT_GE(stats.images_in_flight_hwm, 2u)
      << "batch of 4 never held two images in flight: pipeline serialized";
  EXPECT_LE(stats.images_in_flight_hwm, inputs.size());
}

TEST(DataflowExecutor, ParallelismMatrixStaysBitExact) {
  // The acceptance matrix of the parallel_in execution path: every numeric
  // datapath x parallel_out {1,2,4} x parallel_in {1,2} x instances {1,2}
  // must reproduce its software oracle byte for byte.
  const nn::Network network = nn::make_tc1();
  auto weights = nn::initialize_weights(network, 149);
  ASSERT_TRUE(weights.is_ok());
  auto fengine = nn::ReferenceEngine::create(network, weights.value());
  ASSERT_TRUE(fengine.is_ok());
  const auto inputs = testing::random_inputs(network, 4, 151);

  for (const nn::DataType data_type :
       {nn::DataType::kFloat32, nn::DataType::kFixed16,
        nn::DataType::kFixed8}) {
    const bool fixed = nn::is_fixed_point(data_type);
    std::optional<nn::QuantizedEngine> qengine;
    if (fixed) {
      auto engine =
          nn::QuantizedEngine::create(network, weights.value(), data_type);
      ASSERT_TRUE(engine.is_ok()) << engine.status().to_string();
      qengine = std::move(engine).value();
    }
    std::vector<Tensor> expected;
    for (const Tensor& image : inputs) {
      auto oracle =
          fixed ? qengine->forward(image) : fengine.value().forward(image);
      ASSERT_TRUE(oracle.is_ok()) << oracle.status().to_string();
      expected.push_back(std::move(oracle).value());
    }
    for (const std::size_t parallel_out :
         {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
      for (const std::size_t parallel_in : {std::size_t{1}, std::size_t{2}}) {
        for (const std::size_t instances :
             {std::size_t{1}, std::size_t{2}}) {
          SCOPED_TRACE(strings::format(
              "%s po=%zu pi=%zu inst=%zu",
              std::string(nn::to_string(data_type)).c_str(), parallel_out,
              parallel_in, instances));
          hw::HwNetwork hw_net = hw::with_default_annotations(network);
          hw_net.hw.data_type = data_type;
          for (std::size_t i = 1; i < hw_net.hw.layers.size(); ++i) {
            hw_net.hw.layers[i].parallel_out = parallel_out;
            // conv1 sees one input map; parallel_in applies downstream.
            if (i >= 2) {
              hw_net.hw.layers[i].parallel_in = parallel_in;
            }
          }
          ASSERT_TRUE(hw_net.validate().is_ok());
          auto plan = hw::plan_accelerator(hw_net);
          ASSERT_TRUE(plan.is_ok()) << plan.status().to_string();
          auto pool = dataflow::ExecutorPool::create(
              std::move(plan).value(), weights.value(), instances);
          ASSERT_TRUE(pool.is_ok()) << pool.status().to_string();
          auto outputs = pool.value().run_batch(inputs);
          ASSERT_TRUE(outputs.is_ok()) << outputs.status().to_string();
          ASSERT_EQ(outputs.value().size(), inputs.size());
          for (std::size_t i = 0; i < inputs.size(); ++i) {
            EXPECT_EQ(max_abs_diff(outputs.value()[i], expected[i]), 0.0F)
                << "image " << i << " diverges from the oracle";
          }
        }
      }
    }
  }
}

TEST(DataflowExecutor, EmptyBatchIsOk) {
  const nn::Network network = testing::make_tiny_net(TinyNetConfig{});
  auto weights = nn::initialize_weights(network, 61);
  ASSERT_TRUE(weights.is_ok());
  auto plan = hw::plan_accelerator(hw::with_default_annotations(network));
  ASSERT_TRUE(plan.is_ok());
  auto executor =
      dataflow::AcceleratorExecutor::create(plan.value(), weights.value());
  ASSERT_TRUE(executor.is_ok());
  auto result = executor.value().run_batch({});
  ASSERT_TRUE(result.is_ok());
  EXPECT_TRUE(result.value().empty());
}

// ---- Parameterized geometry sweep (property-style) ----------------------

struct GeometryParam {
  std::size_t in_channels;
  std::size_t in_size;
  std::size_t kernel;
  std::size_t stride;
  std::size_t pad;
};

class DataflowGeometry : public ::testing::TestWithParam<GeometryParam> {};

TEST_P(DataflowGeometry, MatchesReference) {
  const GeometryParam& param = GetParam();
  TinyNetConfig config;
  config.in_channels = param.in_channels;
  config.in_size = param.in_size;
  config.kernel = param.kernel;
  config.stride = param.stride;
  config.pad = param.pad;
  config.conv_outputs = 2;
  expect_dataflow_matches_reference(testing::make_tiny_net(config), 2,
                                    1000 + param.in_size * 10 + param.kernel);
}

INSTANTIATE_TEST_SUITE_P(
    WindowSweep, DataflowGeometry,
    ::testing::Values(GeometryParam{1, 6, 1, 1, 0},   // 1x1 window
                      GeometryParam{1, 6, 2, 1, 0},   // even window
                      GeometryParam{1, 7, 3, 1, 0},   // odd window
                      GeometryParam{2, 8, 3, 1, 0},   // multi-channel
                      GeometryParam{3, 9, 4, 1, 0},   // wide window
                      GeometryParam{1, 12, 5, 1, 0},  // LeNet-style 5x5
                      GeometryParam{2, 9, 3, 2, 0},   // stride 2
                      GeometryParam{1, 10, 3, 3, 0},  // stride > pad
                      GeometryParam{2, 8, 3, 1, 1},   // SAME-style padding
                      GeometryParam{1, 6, 5, 1, 2},   // heavy padding
                      GeometryParam{4, 6, 3, 1, 1},   // channels > maps
                      GeometryParam{1, 16, 7, 2, 3}));  // big window + stride

}  // namespace
}  // namespace condor

// TC1 (the USPS network of [25]) through the *manual* frontend path:
// the user authors the Condor JSON network representation and the external
// weight file directly — no Caffe involved — and deploys on-premise.
//
// Also demonstrates Figure 5's batch pipelining on the resulting
// accelerator, and how the achieved clock reacts to the board choice.
#include <cstdio>

#include "common/byte_io.hpp"
#include "common/logging.hpp"
#include "condor/flow.hpp"
#include "hw/hw_ir.hpp"
#include "nn/models.hpp"
#include "nn/synthetic_digits.hpp"
#include "nn/weights.hpp"
#include "runtime/opencl_like.hpp"
#include "sim/accel_sim.hpp"

using namespace condor;

namespace {

int fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.to_string().c_str());
  return 1;
}

}  // namespace

int main() {
  log::set_level(log::Level::kInfo);

  // -- Author the Condor-specific inputs ----------------------------------
  const nn::Network tc1 = nn::make_tc1();
  hw::HwNetwork hw_net = hw::with_default_annotations(tc1, "aws-f1", 150.0);
  const std::string network_json = hw::to_json_text(hw_net);
  (void)write_text_file("/tmp/tc1.network.json", network_json);

  auto weights = nn::initialize_weights(tc1, 3);
  if (!weights.is_ok()) return fail(weights.status());
  (void)weights.value().save("/tmp/tc1.weights.bin");
  std::printf("wrote /tmp/tc1.network.json and /tmp/tc1.weights.bin\n\n");
  std::printf("network representation (excerpt):\n%.600s...\n\n",
              network_json.c_str());

  // -- Run the flow from the Condor-specific files -------------------------
  condorflow::FrontendInput input;
  auto json_text = read_text_file("/tmp/tc1.network.json");
  auto weight_bytes = read_file("/tmp/tc1.weights.bin");
  if (!json_text.is_ok()) return fail(json_text.status());
  if (!weight_bytes.is_ok()) return fail(weight_bytes.status());
  input.network_json_text = json_text.value();
  input.weight_file_bytes = weight_bytes.value();

  condorflow::FlowOptions options;
  options.deployment = condorflow::Deployment::kOnPremise;
  options.output_dir = "/tmp/condor-tc1";

  auto flow = condorflow::Flow::run(input, options);
  if (!flow.is_ok()) return fail(flow.status());
  std::printf("%s\n", flow.value().synthesis.to_string(flow.value().plan.board).c_str());

  // -- Classify USPS-style 16x16 digits through the host API ---------------
  auto device = runtime::ocl::get_device("aws-f1");
  if (!device.is_ok()) return fail(device.status());
  runtime::ocl::Context context(device.value());
  auto program =
      runtime::ocl::Program::create_with_binary(context, flow.value().xclbin_bytes);
  if (!program.is_ok()) return fail(program.status());
  runtime::ocl::Kernel kernel(program.value(), flow.value().kernel_name);

  const auto digits = nn::make_digit_dataset(8, 16);
  const std::size_t image_floats = digits.front().image.size();
  runtime::ocl::Buffer in_buffer(context, digits.size() * image_floats * sizeof(float));
  runtime::ocl::Buffer out_buffer(context, digits.size() * 10 * sizeof(float));
  runtime::ocl::Buffer weight_buffer(context, flow.value().weight_file_bytes.size());
  runtime::ocl::CommandQueue queue(context);
  (void)queue.enqueue_write_buffer(weight_buffer, 0, flow.value().weight_file_bytes);
  for (std::size_t i = 0; i < digits.size(); ++i) {
    const auto* bytes = reinterpret_cast<const std::byte*>(digits[i].image.raw());
    (void)queue.enqueue_write_buffer(
        in_buffer, i * image_floats * sizeof(float),
        std::span<const std::byte>(bytes, image_floats * sizeof(float)));
  }
  (void)kernel.set_arg(0, in_buffer);
  (void)kernel.set_arg(1, out_buffer);
  (void)kernel.set_arg(2, weight_buffer);
  (void)kernel.set_arg(3, static_cast<std::int32_t>(digits.size()));
  auto task = queue.enqueue_task(kernel);
  if (!task.is_ok()) return fail(task.status());
  auto stats = task.value().kernel_stats();
  if (!stats.is_ok()) return fail(stats.status());
  std::printf("batch of %zu USPS-style digits: %.3f ms device time @ %.0f MHz\n",
              digits.size(), stats.value().simulated_seconds * 1e3,
              stats.value().clock_mhz);

  // -- Batch pipelining (the Figure 5 effect on this accelerator) ----------
  auto point = hw::evaluate_design_point(flow.value().network);
  if (!point.is_ok()) return fail(point.status());
  const sim::AcceleratorSim accel =
      sim::build_accelerator_sim(point.value().performance);
  std::printf("\nbatch pipelining (mean us/image):\n");
  for (const std::size_t batch : {1U, 4U, 16U, 64U}) {
    auto bp = sim::simulate_batch(accel, batch);
    if (!bp.is_ok()) return fail(bp.status());
    std::printf("  batch %3zu: %8.2f us\n", batch,
                bp.value().mean_ms_per_image * 1e3);
  }
  return 0;
}

// Automated design space exploration demo (the paper's step-2 future work).
//
// Explores the inter-layer parallelism knobs of the LeNet features-
// extraction subgraph on the F1 board and prints the accepted trajectory:
// configuration → resources → achieved clock → throughput. Shows the
// resource/performance tension the DSE navigates (wider unrolls cost DSPs
// and clock; the walk stops at the headroom budget).
#include <cstdio>

#include "common/logging.hpp"
#include "common/strings.hpp"
#include "hw/dse.hpp"
#include "nn/models.hpp"

using namespace condor;

int main() {
  log::set_level(log::Level::kInfo);

  const nn::Network features = nn::make_lenet().feature_extraction_prefix();
  hw::HwNetwork hw_net = hw::with_default_annotations(features, "aws-f1", 250.0);

  hw::DseOptions options;
  options.max_utilization = 0.85;

  auto result = hw::explore(hw_net, options);
  if (!result.is_ok()) {
    std::fprintf(stderr, "DSE failed: %s\n", result.status().to_string().c_str());
    return 1;
  }

  std::printf("\nexplored %zu design points (%zu feasible); trajectory:\n\n",
              result.value().points_evaluated, result.value().points_feasible);
  std::printf("%4s  %-34s %7s %7s %8s %10s\n", "step", "parallelism (per layer)",
              "DSP %", "LUT %", "MHz", "GFLOPS");
  for (std::size_t step = 0; step < result.value().trajectory.size(); ++step) {
    const hw::DsePoint& point = result.value().trajectory[step];
    std::string config;
    for (std::size_t l = 1; l < point.config.net.layer_count(); ++l) {
      const nn::LayerSpec& layer = point.config.net.layers()[l];
      if (!layer.is_feature_extraction()) {
        continue;
      }
      const hw::LayerHw& annot = point.config.hw.layers[l];
      config += strings::format("%s:%zux%zu ", layer.name.c_str(),
                                annot.parallel_in, annot.parallel_out);
    }
    const hw::BoardSpec& board = hw::aws_f1_board();
    std::printf("%4zu  %-34s %6.1f%% %6.1f%% %8.0f %10.2f\n", step, config.c_str(),
                point.resources.dsp_percent(board),
                point.resources.lut_percent(board), point.achieved_mhz,
                point.gflops());
  }

  const hw::DsePoint& best = result.value().best;
  std::printf("\nbest: %.2f GFLOPS @ %.0f MHz\n", best.gflops(), best.achieved_mhz);
  std::printf("%s", hw::describe(hw::plan_accelerator(best.config).value()).c_str());
  return 0;
}

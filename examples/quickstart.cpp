// Quickstart: from a Caffe model to a running accelerator in ~50 lines.
//
//   1. Take a pre-trained Caffe model (prototxt + caffemodel). Since no
//      checkpoint ships with the repository, we synthesize one for LeNet
//      from the model zoo — the files on disk are what a real user would
//      bring.
//   2. Run the Condor flow on-premise: frontend → layer/network creation →
//      simulated synthesis → xclbin + weight file + default host code.
//   3. Use the SDAccel-style host API to program the device and classify a
//      batch of digits.
#include <cstdio>

#include "caffe/export.hpp"
#include "common/byte_io.hpp"
#include "common/logging.hpp"
#include "condor/flow.hpp"
#include "nn/models.hpp"
#include "nn/synthetic_digits.hpp"
#include "nn/weights.hpp"
#include "runtime/opencl_like.hpp"

using namespace condor;

namespace {

int fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.to_string().c_str());
  return 1;
}

}  // namespace

int main() {
  log::set_level(log::Level::kInfo);

  // -- 1. The user's Caffe model ------------------------------------------
  const nn::Network lenet = nn::make_lenet();
  auto weights = nn::initialize_weights(lenet, /*seed=*/1);
  if (!weights.is_ok()) return fail(weights.status());
  if (auto s = caffe::write_caffe_fixture(lenet, weights.value(), "/tmp/lenet");
      !s.is_ok()) {
    return fail(s);
  }
  std::printf("wrote /tmp/lenet.prototxt and /tmp/lenet.caffemodel\n");

  // -- 2. The Condor flow ---------------------------------------------------
  condorflow::FrontendInput input;
  auto prototxt = read_text_file("/tmp/lenet.prototxt");
  auto caffemodel = read_file("/tmp/lenet.caffemodel");
  if (!prototxt.is_ok()) return fail(prototxt.status());
  if (!caffemodel.is_ok()) return fail(caffemodel.status());
  input.prototxt_text = prototxt.value();
  input.caffemodel_bytes = caffemodel.value();
  input.board_id = "aws-f1";
  input.target_frequency_mhz = 200.0;

  condorflow::FlowOptions options;
  options.deployment = condorflow::Deployment::kOnPremise;
  options.output_dir = "/tmp/condor-quickstart";

  auto flow = condorflow::Flow::run(input, options);
  if (!flow.is_ok()) return fail(flow.status());
  std::printf("\n%s\n", flow.value().synthesis.to_string(flow.value().plan.board).c_str());

  // -- 3. Run it through the host API --------------------------------------
  auto device = runtime::ocl::get_device("aws-f1");
  if (!device.is_ok()) return fail(device.status());
  runtime::ocl::Context context(device.value());
  auto program =
      runtime::ocl::Program::create_with_binary(context, flow.value().xclbin_bytes);
  if (!program.is_ok()) return fail(program.status());
  runtime::ocl::Kernel kernel(program.value(), flow.value().kernel_name);

  const auto digits = nn::make_digit_dataset(/*count=*/10, /*size=*/28);
  const std::size_t image_floats = digits.front().image.size();
  const std::size_t batch = digits.size();

  runtime::ocl::Buffer in_buffer(context, batch * image_floats * sizeof(float));
  runtime::ocl::Buffer out_buffer(context, batch * 10 * sizeof(float));
  runtime::ocl::Buffer weight_buffer(context, flow.value().weight_file_bytes.size());

  runtime::ocl::CommandQueue queue(context);
  (void)queue.enqueue_write_buffer(weight_buffer, 0, flow.value().weight_file_bytes);
  for (std::size_t i = 0; i < batch; ++i) {
    const auto* bytes =
        reinterpret_cast<const std::byte*>(digits[i].image.raw());
    (void)queue.enqueue_write_buffer(
        in_buffer, i * image_floats * sizeof(float),
        std::span<const std::byte>(bytes, image_floats * sizeof(float)));
  }
  (void)kernel.set_arg(0, in_buffer);
  (void)kernel.set_arg(1, out_buffer);
  (void)kernel.set_arg(2, weight_buffer);
  (void)kernel.set_arg(3, static_cast<std::int32_t>(batch));

  // The queue is in-order, so the task runs after the transfers above; its
  // device-time statistics ride on the returned event.
  auto task = queue.enqueue_task(kernel);
  if (!task.is_ok()) return fail(task.status());
  auto stats = task.value().kernel_stats();
  if (!stats.is_ok()) return fail(stats.status());

  std::printf("device time: %.3f ms for %zu images (%.0f img/s @ %.0f MHz)\n",
              stats.value().simulated_seconds * 1e3, batch,
              stats.value().images_per_second(batch), stats.value().clock_mhz);
  std::printf("\nclass probabilities (untrained weights, so near-uniform):\n");
  for (std::size_t i = 0; i < batch; ++i) {
    std::vector<float> probs(10);
    auto read = queue.enqueue_read_buffer(
        out_buffer, i * 10 * sizeof(float),
        std::span<std::byte>(reinterpret_cast<std::byte*>(probs.data()),
                             10 * sizeof(float)));
    if (!read.is_ok()) return fail(read.status());
    read.value().wait();  // reads are zero-copy; the data lands on completion
    std::size_t best = 0;
    for (std::size_t c = 1; c < 10; ++c) {
      if (probs[c] > probs[best]) best = c;
    }
    std::printf("  digit glyph %d -> argmax class %zu (p=%.3f)\n",
                digits[i].label, best, probs[best]);
  }
  std::printf("\nartifacts written to /tmp/condor-quickstart (xclbin, weights,\n"
              "host.cpp, network.json, synthesis.rpt, hls_src/)\n");
  return 0;
}

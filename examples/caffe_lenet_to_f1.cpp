// Cloud deployment walkthrough: Caffe LeNet → AWS F1 (paper §3.3 step 8).
//
// Runs the full cloud path the paper contributes: the flow stages the
// generated binary in an S3 bucket, requests AFI creation, polls the image
// until it becomes available, loads it onto a slot of an f1.2xlarge
// instance, and classifies a batch of synthetic MNIST-style digits on the
// programmed slot.
#include <cstdio>

#include "caffe/export.hpp"
#include "cloud/afi.hpp"
#include "cloud/f1.hpp"
#include "cloud/s3.hpp"
#include "common/logging.hpp"
#include "condor/flow.hpp"
#include "nn/models.hpp"
#include "nn/synthetic_digits.hpp"
#include "nn/weights.hpp"

using namespace condor;

namespace {

int fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.to_string().c_str());
  return 1;
}

}  // namespace

int main() {
  log::set_level(log::Level::kInfo);

  // The simulated AWS environment (the FPGA Developer AMI would provide
  // the credentials and tooling in the real flow).
  cloud::ObjectStore store("/tmp/condor-aws");
  cloud::AfiService afi_service(store, /*ingestion_polls=*/3);

  // The user's pre-trained Caffe model (synthesized fixture, see quickstart).
  const nn::Network lenet = nn::make_lenet();
  auto weights = nn::initialize_weights(lenet, 2);
  if (!weights.is_ok()) return fail(weights.status());
  auto prototxt = caffe::to_prototxt(lenet);
  auto caffemodel = caffe::to_caffemodel(lenet, weights.value());
  if (!prototxt.is_ok()) return fail(prototxt.status());
  if (!caffemodel.is_ok()) return fail(caffemodel.status());

  condorflow::FrontendInput input;
  input.prototxt_text = prototxt.value();
  input.caffemodel_bytes = caffemodel.value();
  input.board_id = "aws-f1";
  input.target_frequency_mhz = 200.0;

  condorflow::FlowOptions options;
  options.deployment = condorflow::Deployment::kCloud;
  options.s3_bucket = "my-condor-bucket";

  auto flow = condorflow::Flow::run(input, options, &store, &afi_service);
  if (!flow.is_ok()) return fail(flow.status());
  std::printf("AFI requested: %s / %s (state: %s)\n",
              flow.value().afi->afi_id.c_str(), flow.value().afi->agfi_id.c_str(),
              std::string(cloud::to_string(flow.value().afi->state)).c_str());

  // Poll until the image is available, as `aws ec2 describe-fpga-images`
  // loops would.
  auto available = afi_service.wait_until_available(flow.value().afi->afi_id);
  if (!available.is_ok()) return fail(available.status());
  std::printf("AFI is now available.\n");

  // Spin up an F1 instance and program slot 0.
  cloud::F1Instance instance(cloud::F1InstanceType::k2xlarge, afi_service);
  if (auto s = instance.load_afi(0, available.value().agfi_id); !s.is_ok()) {
    return fail(s);
  }
  auto described = instance.describe_slot(0);
  std::printf("%s on %s\n", described.value().c_str(),
              instance.instance_id().c_str());

  // Run a batch on the slot.
  auto kernel = instance.slot_kernel(0);
  if (!kernel.is_ok()) return fail(kernel.status());
  if (auto s = kernel.value()->load_weights(flow.value().weight_file_bytes);
      !s.is_ok()) {
    return fail(s);
  }

  const auto digits = nn::make_digit_dataset(16, 28);
  std::vector<Tensor> inputs;
  for (const nn::DigitSample& sample : digits) {
    inputs.push_back(sample.image);
  }
  auto outputs = kernel.value()->run(inputs);
  if (!outputs.is_ok()) return fail(outputs.status());

  const runtime::KernelStats& stats = kernel.value()->last_stats();
  std::printf(
      "\nprocessed %zu images in %.3f ms of device time (%.0f img/s @ %.0f "
      "MHz; host functional simulation took %.1f ms)\n",
      inputs.size(), stats.simulated_seconds * 1e3,
      stats.images_per_second(inputs.size()), stats.clock_mhz,
      stats.host_wall_seconds * 1e3);
  std::size_t agreements = 0;
  for (std::size_t i = 0; i < outputs.value().size(); ++i) {
    agreements += argmax(outputs.value()[i]) ==
                  static_cast<std::size_t>(digits[i].label);
  }
  std::printf("argmax agreement with glyph labels: %zu/%zu "
              "(weights are untrained; agreement is chance-level)\n",
              agreements, outputs.value().size());
  return 0;
}

// ONNX frontend + quantization study in one walkthrough.
//
//   1. A user exports LeNet to ONNX (we synthesize the .onnx fixture).
//   2. The Condor flow builds the accelerator straight from the ONNX file
//      (the frontend extension the paper announces in §3.1.1).
//   3. The quantization study re-costs the same design at fixed16/fixed8
//      and reports the resources/clock/accuracy trade on real digit
//      classifications.
#include <cstdio>

#include "common/byte_io.hpp"
#include "common/logging.hpp"
#include "condor/flow.hpp"
#include "hw/dse.hpp"
#include "nn/models.hpp"
#include "nn/quantization.hpp"
#include "nn/reference.hpp"
#include "nn/synthetic_digits.hpp"
#include "nn/weights.hpp"
#include "onnx/export.hpp"

using namespace condor;

namespace {

int fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.to_string().c_str());
  return 1;
}

}  // namespace

int main() {
  log::set_level(log::Level::kInfo);

  // -- 1. The user's ONNX model --------------------------------------------
  const nn::Network lenet = nn::make_lenet();
  auto weights = nn::initialize_weights(lenet, 8);
  if (!weights.is_ok()) return fail(weights.status());
  auto onnx_bytes = onnx::to_onnx(lenet, weights.value());
  if (!onnx_bytes.is_ok()) return fail(onnx_bytes.status());
  (void)write_file("/tmp/lenet.onnx", onnx_bytes.value());
  std::printf("wrote /tmp/lenet.onnx (%zu bytes)\n\n", onnx_bytes.value().size());

  // -- 2. Build straight from the .onnx file --------------------------------
  condorflow::FrontendInput input;
  auto file_bytes = read_file("/tmp/lenet.onnx");
  if (!file_bytes.is_ok()) return fail(file_bytes.status());
  input.onnx_bytes = std::move(file_bytes).value();
  auto flow = condorflow::Flow::run(input, condorflow::FlowOptions{});
  if (!flow.is_ok()) return fail(flow.status());
  std::printf("\nbuilt '%s' from ONNX: %zu PEs @ %.0f MHz\n\n",
              flow.value().network.net.name().c_str(),
              flow.value().plan.pes.size(),
              flow.value().synthesis.achieved_clock_mhz);

  // -- 3. Quantization study on the same design -----------------------------
  auto float_engine = nn::ReferenceEngine::create(lenet, weights.value());
  if (!float_engine.is_ok()) return fail(float_engine.status());
  const auto digits = nn::make_digit_dataset(10, 28);

  std::printf("%-8s %8s %8s %8s %14s\n", "type", "DSP", "BRAM", "MHz",
              "mean |dprob|");
  for (const nn::DataType type :
       {nn::DataType::kFloat32, nn::DataType::kFixed16, nn::DataType::kFixed8}) {
    hw::DseOptions options;
    options.cost = hw::cost_model_for(type);
    options.timing = hw::timing_model_for(type);
    auto point = hw::evaluate_design_point(flow.value().network, options);
    if (!point.is_ok()) return fail(point.status());

    auto quant = nn::QuantizedEngine::create(lenet, weights.value(), type);
    if (!quant.is_ok()) return fail(quant.status());
    float mean_err = 0.0F;
    for (const nn::DigitSample& sample : digits) {
      const Tensor reference = float_engine.value().forward(sample.image).value();
      const Tensor quantized = quant.value().forward(sample.image).value();
      mean_err += nn::compare_outputs(reference, quantized).mean_abs_error;
    }
    mean_err /= static_cast<float>(digits.size());
    std::printf("%-8s %8llu %8llu %8.0f %14.2e\n",
                std::string(nn::to_string(type)).c_str(),
                (unsigned long long)point.value().resources.total.dsps,
                (unsigned long long)point.value().resources.total.bram36,
                point.value().achieved_mhz, mean_err);
  }
  std::printf("\nfixed16 buys back most of the float design's DSPs and clock\n"
              "headroom at ~1e-5 probability error — the trade Qiu et al. [14]\n"
              "report, reproduced on Condor's own architecture.\n");
  return 0;
}

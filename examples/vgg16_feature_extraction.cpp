// VGG-16 at the limits of the methodology (paper §4).
//
// Demonstrates the two VGG-16 findings the paper reports:
//  * the full network is rejected — its fully-connected layers are not
//    synthesizable with the current methodology (392 MiB of on-chip
//    weights);
//  * the features-extraction part maps fine and reaches the highest
//    GFLOPS of the three networks (Table 2), because its large feature
//    maps amortize the window fill and expose abundant parallelism.
//
// Also prints a generated filter source so the non-uniform memory
// partitioning is visible, and validates the functional engine on the
// first convolution block (the full 30-GFLOP network is left to the
// timing simulator).
#include <cstdio>

#include "common/logging.hpp"
#include "dataflow/executor.hpp"
#include "hls/codegen.hpp"
#include "hw/dse.hpp"
#include "nn/models.hpp"
#include "nn/reference.hpp"
#include "nn/weights.hpp"
#include "common/rng.hpp"

using namespace condor;

namespace {

int fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.to_string().c_str());
  return 1;
}

}  // namespace

int main() {
  log::set_level(log::Level::kWarning);

  // -- 1. Full VGG-16 is rejected ------------------------------------------
  {
    hw::HwNetwork full = hw::with_default_annotations(nn::make_vgg16());
    auto plan = hw::plan_accelerator(full);
    if (plan.is_ok()) {
      std::fprintf(stderr, "full VGG-16 should not be synthesizable!\n");
      return 1;
    }
    std::printf("full VGG-16: %s\n\n", plan.status().to_string().c_str());
  }

  // -- 2. The features-extraction part maps fine ---------------------------
  const nn::Network features = nn::make_vgg16().feature_extraction_prefix();
  hw::HwNetwork hw_net = hw::with_default_annotations(features, "aws-f1", 250.0);
  auto point = hw::evaluate_design_point(hw_net);
  if (!point.is_ok()) return fail(point.status());
  std::printf("VGG-16 features: %zu PEs, %.2f GFLOPS @ %.0f MHz (sequential "
              "feature maps)\n\n",
              point.value().performance.pes.size(), point.value().gflops(),
              point.value().achieved_mhz);

  auto plan = hw::plan_accelerator(hw_net);
  std::printf("%s\n", hw::describe(plan.value()).c_str());

  // -- 3. Generated filter code (non-uniform memory partitioning) ----------
  auto filter_src =
      hls::generate_filter_source(plan.value(), 1, hw::WindowAccess{2, 2});
  if (!filter_src.is_ok()) return fail(filter_src.status());
  std::printf("generated %s:\n%s\n", filter_src.value().file_name.c_str(),
              filter_src.value().code.c_str());

  // -- 4. Functional check on the first conv block -------------------------
  nn::Network block1("vgg16-block1");
  for (std::size_t i = 0; i < 4 && i < features.layer_count(); ++i) {
    block1.add(features.layers()[i]);  // data, conv1_1, conv1_2, pool1
  }
  auto weights = nn::initialize_weights(block1, 5);
  if (!weights.is_ok()) return fail(weights.status());
  auto engine = nn::ReferenceEngine::create(block1, weights.value());
  if (!engine.is_ok()) return fail(engine.status());
  auto block_plan = hw::plan_accelerator(hw::with_default_annotations(block1));
  if (!block_plan.is_ok()) return fail(block_plan.status());
  auto executor =
      dataflow::AcceleratorExecutor::create(block_plan.value(), weights.value());
  if (!executor.is_ok()) return fail(executor.status());

  Rng rng(99);
  Tensor image(Shape{3, 224, 224});
  for (float& v : image.data()) {
    v = rng.uniform(0.0F, 1.0F);
  }
  std::printf("running one 224x224 image through block 1 (conv1_1 + conv1_2 + "
              "pool1) on the dataflow engine...\n");
  auto outputs = executor.value().run_batch(std::span<const Tensor>(&image, 1));
  if (!outputs.is_ok()) return fail(outputs.status());
  auto expected = engine.value().forward(image);
  if (!expected.is_ok()) return fail(expected.status());
  std::printf("dataflow engine vs golden reference: max |diff| = %g (%s)\n",
              max_abs_diff(outputs.value()[0], expected.value()),
              max_abs_diff(outputs.value()[0], expected.value()) == 0.0F
                  ? "bit-exact"
                  : "MISMATCH");
  return 0;
}

// Open-loop serving benchmark: dynamic batching vs per-request dispatch.
//
// Drives Poisson arrivals (2.5x the serial per-request capacity) of
// single-image LeNet requests into the serving layer's BatcherCore over a
// 4-instance ExecutorPool, at float32 and fixed8. The batcher coalesces
// requests under a 25 ms deadline and each batch shards across the pool
// through the chunk-stealing runtime — which is where the speedup lives: a
// lone request can never occupy more than one instance, a batch fills all
// of them. Latency is measured in the device-time domain (virtual clock
// over the pipeline simulation, like multi_slot_scaling), so the reported
// p50/p99/img/s are deterministic for the seed and independent of the
// simulation host. Every dispatched batch also executes functionally and
// the demux is checked byte-for-byte against a direct run_batch.
//
// Writes the report to argv[1] (default BENCH_serve_load.json) and exits
// nonzero if batching fails to reach 2x serial throughput, the p99 exceeds
// max_delay + one batch service time, or the demux is not bit-exact.
#include <cstdio>
#include <fstream>

#include "common/logging.hpp"
#include "dataflow/executor_pool.hpp"
#include "hw/accel_plan.hpp"
#include "hw/hw_ir.hpp"
#include "json/json.hpp"
#include "nn/models.hpp"
#include "nn/numeric.hpp"
#include "nn/weights.hpp"
#include "serve/loadgen.hpp"

namespace {

using namespace condor;

constexpr std::size_t kInstances = 4;
constexpr std::size_t kRequests = 512;

serve::LoadGenOptions make_options() {
  serve::LoadGenOptions options;
  options.requests = kRequests;
  options.batcher.max_batch = 32;
  options.batcher.preferred_batch = 8;
  options.batcher.max_delay_seconds = 0.025;
  return options;
}

json::Value summary_json(const serve::LatencySummary& summary) {
  json::Object object;
  object.set("mean_ms", summary.mean_ms);
  object.set("p50_ms", summary.p50_ms);
  object.set("p99_ms", summary.p99_ms);
  object.set("max_ms", summary.max_ms);
  return object;
}

}  // namespace

int main(int argc, char** argv) {
  log::set_level(log::Level::kError);
  const char* out_path = argc > 1 ? argv[1] : "BENCH_serve_load.json";

  std::printf("== Open-loop serving: dynamic batching vs per-request "
              "dispatch ==\n");
  std::printf("LeNet, %zu instances, %zu requests, max_batch 32, "
              "max_delay 25 ms\n\n",
              kInstances, kRequests);

  const nn::Network model = nn::make_lenet();
  auto weights = nn::initialize_weights(model, 7);
  if (!weights.is_ok()) {
    std::fprintf(stderr, "%s\n", weights.status().to_string().c_str());
    return 1;
  }

  json::Array results;
  bool all_criteria_met = true;
  for (const nn::DataType data_type :
       {nn::DataType::kFloat32, nn::DataType::kFixed8}) {
    hw::HwNetwork hw_net = hw::with_default_annotations(model);
    hw_net.hw.data_type = data_type;
    auto plan = hw::plan_accelerator(hw_net);
    if (!plan.is_ok()) {
      std::fprintf(stderr, "%s\n", plan.status().to_string().c_str());
      return 1;
    }
    auto pool = dataflow::ExecutorPool::create(plan.value(), weights.value(),
                                               kInstances);
    if (!pool.is_ok()) {
      std::fprintf(stderr, "%s\n", pool.status().to_string().c_str());
      return 1;
    }
    auto accel = serve::make_service_model(pool.value().plan());
    if (!accel.is_ok()) {
      std::fprintf(stderr, "%s\n", accel.status().to_string().c_str());
      return 1;
    }
    auto report =
        serve::run_open_loop(pool.value(), accel.value(), make_options());
    if (!report.is_ok()) {
      std::fprintf(stderr, "%s\n", report.status().to_string().c_str());
      return 1;
    }
    const serve::LoadGenReport& r = report.value();
    const bool met =
        r.speedup >= 2.0 && r.p99_within_bound && r.bitexact_vs_direct;
    all_criteria_met = all_criteria_met && met;

    const std::string type_name(nn::to_string(data_type));
    std::printf("%s: offered %.1f req/s\n", type_name.c_str(), r.offered_rps);
    std::printf("  serial  %8.1f img/s   p50 %7.2f ms   p99 %7.2f ms\n",
                r.serial_images_per_second, r.serial_latency.p50_ms,
                r.serial_latency.p99_ms);
    std::printf("  batched %8.1f img/s   p50 %7.2f ms   p99 %7.2f ms\n",
                r.images_per_second, r.latency.p50_ms, r.latency.p99_ms);
    std::printf("  speedup %.2fx, %zu batches (mean %.1f, largest %zu), "
                "p99 bound %.2f ms, demux %s  [%s]\n\n",
                r.speedup, r.batches, r.mean_batch, r.largest_batch,
                r.p99_bound_ms, r.bitexact_vs_direct ? "bit-exact" : "MISMATCH",
                met ? "ok" : "CRITERIA NOT MET");

    json::Object entry;
    entry.set("data_type", type_name);
    entry.set("offered_rps", r.offered_rps);
    entry.set("requests", r.requests);
    entry.set("completed", r.completed);
    entry.set("rejected", r.rejected);
    entry.set("serial_images_per_second", r.serial_images_per_second);
    entry.set("serial_latency", summary_json(r.serial_latency));
    entry.set("batched_images_per_second", r.images_per_second);
    entry.set("batched_latency", summary_json(r.latency));
    entry.set("batches", r.batches);
    entry.set("mean_batch", r.mean_batch);
    entry.set("largest_batch", r.largest_batch);
    entry.set("max_batch_service_ms", r.max_batch_service_seconds * 1e3);
    entry.set("speedup", r.speedup);
    entry.set("p99_bound_ms", r.p99_bound_ms);
    entry.set("p99_within_bound", r.p99_within_bound);
    entry.set("bitexact_vs_direct", r.bitexact_vs_direct);
    results.push_back(std::move(entry));
  }

  json::Object doc;
  doc.set("bench", "serve_load");
  doc.set("model", "lenet");
  {
    const serve::LoadGenOptions options = make_options();
    json::Object config;
    config.set("instances", kInstances);
    config.set("requests", options.requests);
    config.set("seed", options.seed);
    config.set("max_batch", options.batcher.max_batch);
    config.set("preferred_batch", options.batcher.preferred_batch);
    config.set("max_delay_ms", options.batcher.max_delay_seconds * 1e3);
    config.set("rate", "auto (2.5x serial capacity)");
    doc.set("config", std::move(config));
  }
  doc.set("results", std::move(results));

  std::ofstream out(out_path);
  out << json::dump(json::Value(std::move(doc))) << "\n";
  if (!out.good()) {
    std::fprintf(stderr, "failed to write %s\n", out_path);
    return 1;
  }
  std::printf("report written to %s\n", out_path);
  return all_criteria_met ? 0 : 1;
}

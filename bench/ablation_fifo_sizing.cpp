// Ablation A6: FIFO sizing of the memory subsystem, validated at element
// granularity.
//
// The paper (§3.2, after Cong et al. DAC'14) claims that sizing each
// inter-filter FIFO as the spatial distance between its two accesses makes
// the pipeline work "correctly without stalls". The cycle-stepped element
// simulator checks that claim directly, per layer geometry of the model
// zoo, and probes both directions:
//
//   * planned capacities   -> completes at the source-limited minimum
//                             (one element per cycle + drain),
//   * 2x capacities        -> identical cycle count: extra depth buys
//                             nothing (the sizing is exact, not padded),
//   * row-gap FIFO halved  -> the pipeline deadlocks: the sizing is
//                             load-bearing, not an optimization.
#include <cstdio>

#include "common/logging.hpp"
#include "nn/models.hpp"
#include "sim/element_sim.hpp"

namespace {

using namespace condor;

const char* verdict(const sim::ElementSimResult& result) {
  if (result.deadlocked) {
    return "DEADLOCK";
  }
  return result.stall_free() ? "stall-free" : "throttled";
}

}  // namespace

int main() {
  log::set_level(log::Level::kError);
  std::printf("== Ablation A6: memory-subsystem FIFO sizing (element-level) ==\n\n");
  std::printf("%-10s %-10s %8s | %12s %12s | %12s %12s\n", "network", "layer",
              "geometry", "planned", "", "2x planned", "undersized");

  for (const nn::Network& model : {nn::make_tc1(), nn::make_lenet()}) {
    const nn::Network features = model.feature_extraction_prefix();
    auto shapes = features.infer_shapes().value();
    for (std::size_t i = 1; i < features.layer_count(); ++i) {
      const nn::LayerSpec& layer = features.layers()[i];
      if (!layer.is_feature_extraction()) {
        continue;
      }
      sim::ElementSimConfig config;
      config.map_h = shapes[i].input[1] + 2 * layer.pad;
      config.map_w = shapes[i].input[2] + 2 * layer.pad;
      config.window_h = layer.kernel_h;
      config.window_w = layer.kernel_w;
      config.stride = layer.stride;

      auto planned = sim::simulate_memory_pipeline(config);

      sim::ElementSimConfig oversized = config;
      oversized.fifo_capacities = sim::planned_capacities(config);
      for (std::size_t& capacity : oversized.fifo_capacities) {
        capacity *= 2;
      }
      auto doubled = sim::simulate_memory_pipeline(oversized);

      sim::ElementSimConfig undersized = config;
      undersized.fifo_capacities = sim::planned_capacities(config);
      for (std::size_t& capacity : undersized.fifo_capacities) {
        if (capacity > 1) {
          capacity /= 2;  // halve the row-gap FIFOs
        }
      }
      auto halved = sim::simulate_memory_pipeline(undersized);

      if (!planned.is_ok() || !doubled.is_ok() || !halved.is_ok()) {
        std::printf("%-10s %-10s simulation error\n", model.name().c_str(),
                    layer.name.c_str());
        continue;
      }
      std::printf("%-10s %-10s %3zux%-4zu | %6llu cyc %-10s | %-12s %-12s\n",
                  model.name().c_str(), layer.name.c_str(), config.window_h,
                  config.map_w,
                  (unsigned long long)planned.value().total_cycles,
                  verdict(planned.value()),
                  doubled.value().total_cycles == planned.value().total_cycles
                      ? "same cycles"
                      : "DIFFERENT",
                  verdict(halved.value()));
    }
  }
  std::printf(
      "\nshape: planned capacities hit the one-element-per-cycle bound;\n"
      "doubling them changes nothing (the spatial-distance sizing is exact);\n"
      "halving the cross-row FIFOs wedges the pipeline (elements for the\n"
      "window's lower rows can no longer coexist with the buffered span).\n");
  return 0;
}

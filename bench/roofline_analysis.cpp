// Roofline analysis of the Condor designs (after Zhang et al. FPGA'15, the
// design-selection device of the paper's related work [13]).
//
// Places every evaluated design under the F1 board's compute and bandwidth
// roofs: operational intensity (FLOP per DDR byte), attainable performance
// at that intensity, achieved performance, and the efficiency gap the
// pipeline imbalance leaves on the table.
#include <cstdio>

#include "common/logging.hpp"
#include "hw/dse.hpp"
#include "hw/roofline.hpp"
#include "nn/models.hpp"

namespace {

using namespace condor;

void print_point(const hw::RooflinePoint& point) {
  std::printf("  %-24s %12.2f %14.2f %12.2f %10.0f%%\n", point.name.c_str(),
              point.intensity, point.attainable_gflops, point.achieved_gflops,
              100.0 * point.efficiency());
}

}  // namespace

int main() {
  log::set_level(log::Level::kError);
  std::printf("== Roofline analysis on AWS F1 ==\n\n");

  const hw::RooflineRoofs roofs = hw::board_roofs(hw::aws_f1_board(), 200.0);
  std::printf(
      "board roofs @ 200 MHz (fp32, 4 DSP/MAC): compute %.0f GFLOPS, "
      "bandwidth %.1f GB/s, ridge at %.1f FLOP/byte\n\n",
      roofs.peak_gflops, roofs.bandwidth_gbps, roofs.ridge_intensity());

  std::printf("  %-24s %12s %14s %12s %11s\n", "design", "FLOP/byte",
              "attainable GF", "achieved GF", "efficiency");

  // Table 1 deployments (sequential feature maps).
  for (const nn::Network& model : {nn::make_tc1(), nn::make_lenet()}) {
    hw::HwNetwork net = hw::with_default_annotations(model, "aws-f1", 200.0);
    auto point = hw::evaluate_design_point(net);
    if (!point.is_ok()) {
      continue;
    }
    auto placed =
        hw::roofline_point(hw::plan_accelerator(net).value(),
                           point.value().performance, model.name() + " (seq)");
    if (placed.is_ok()) {
      print_point(placed.value());
    }
  }

  // Features-only designs, DSE-tuned.
  for (const char* name : {"tc1", "lenet", "vgg16"}) {
    const nn::Network features =
        nn::make_model(name).value().feature_extraction_prefix();
    hw::HwNetwork net = hw::with_default_annotations(features, "aws-f1", 250.0);
    auto dse = hw::explore(net);
    if (!dse.is_ok()) {
      continue;
    }
    auto plan = hw::plan_accelerator(dse.value().best.config);
    auto placed = hw::roofline_point(plan.value(),
                                     dse.value().best.performance,
                                     std::string(name) + " features (DSE)");
    if (placed.is_ok()) {
      print_point(placed.value());
    }
  }

  std::printf(
      "\nshape: with fp32 weight slices streamed from DDR, every Condor\n"
      "design sits left of the %.1f FLOP/byte ridge — the attainable roof is\n"
      "bandwidth-sloped, exactly the communication-bound regime Zhang et al.\n"
      "optimize against. The efficiency column shows how much of that roof\n"
      "the spatial pipeline realizes: tiny sequential designs idle almost\n"
      "all of it, while the DSE-tuned LeNet features reach ~97%% of the\n"
      "bandwidth-limited bound (quantization, ablation A5, is the lever that\n"
      "would move the ridge itself).\n",
      roofs.ridge_intensity());
  return 0;
}

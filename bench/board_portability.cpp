// Board portability: the same Condor input deployed across the board
// database (paper §3.1.1 — the network representation names "the desired
// board"; §3.1.3 — on-premise boards vs the F1 cloud).
//
// For each model x board, reports whether the mapping synthesizes, and at
// what utilization/clock/throughput. Shows the resource wall moving: TC1
// fits everywhere except the ZedBoard (tanh DSPs), LeNet additionally needs
// the BRAM for its on-chip classifier weights, VGG-16 features need a large
// fabric.
#include <cstdio>

#include "common/logging.hpp"
#include "hw/dse.hpp"
#include "nn/models.hpp"

namespace {

using namespace condor;

}  // namespace

int main() {
  log::set_level(log::Level::kError);
  std::printf("== Board portability (default sequential configuration) ==\n\n");
  std::printf("%-18s %-10s %8s %8s %8s %8s %10s\n", "model", "board", "LUT %",
              "DSP %", "BRAM %", "MHz", "GFLOPS");

  const nn::Network models[] = {nn::make_tc1(), nn::make_lenet(),
                                nn::make_vgg16().feature_extraction_prefix()};
  for (const nn::Network& model : models) {
    for (const hw::BoardSpec& board : hw::board_database()) {
      hw::HwNetwork net = hw::with_default_annotations(
          model, board.id, board.max_frequency_mhz);
      hw::DseOptions options;
      options.max_utilization = 1.0;  // report the raw fit
      auto point = hw::evaluate_design_point(net, options);
      if (!point.is_ok()) {
        std::printf("%-18s %-10s does not fit (%s)\n", model.name().c_str(),
                    board.id.c_str(),
                    std::string(to_string(point.status().code())).c_str());
        continue;
      }
      std::printf("%-18s %-10s %8.2f %8.2f %8.2f %8.0f %10.2f\n",
                  model.name().c_str(), board.id.c_str(),
                  point.value().resources.lut_percent(board),
                  point.value().resources.dsp_percent(board),
                  point.value().resources.bram_percent(board),
                  point.value().achieved_mhz, point.value().gflops());
    }
    std::printf("\n");
  }
  std::printf(
      "shape: the resource wall moves with the board class — the ZedBoard\n"
      "rejects even TC1 (its fp32 tanh pipelines exceed 220 DSPs), the ZC706\n"
      "carries the small nets, and the datacenter parts carry everything\n"
      "mapped so far; GFLOPS follows the achieved clock per board.\n");
  return 0;
}

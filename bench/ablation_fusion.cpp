// Ablation A2: layer fusion (PE clustering) vs full spatial unfolding.
//
// The paper's methodology can map several logical layers onto one PE when
// resources are scarce (§3.2). This ablation sweeps the clustering factor
// on LeNet and TC1 — from the fully unfolded 1:1 mapping (maximum
// intra-layer parallelism, the Table 1 configuration) down to a single PE
// implementing the whole features stage — and reports the area/throughput
// trade the clustering buys.
//
// Expected shape: fusing saves LUT/FF/DSP roughly in proportion to the PE
// count, while throughput degrades because a fused PE time-multiplexes its
// layers (the high-level pipeline loses stages).
#include <cstdio>
#include <vector>

#include "common/logging.hpp"
#include "hw/dse.hpp"
#include "nn/models.hpp"

namespace {

using namespace condor;

/// Assigns pe_group ids clustering every `cluster` consecutive
/// feature-extraction layers (classifier layers stay 1:1).
hw::HwNetwork clustered(const nn::Network& model, std::size_t cluster) {
  hw::HwNetwork net = hw::with_default_annotations(model, "aws-f1", 200.0);
  int group = 0;
  std::size_t in_group = 0;
  for (std::size_t l = 1; l < net.net.layer_count(); ++l) {
    const nn::LayerSpec& layer = net.net.layers()[l];
    if (!layer.is_feature_extraction()) {
      break;
    }
    net.hw.layers[l].pe_group = group;
    if (++in_group == cluster) {
      ++group;
      in_group = 0;
    }
  }
  return net;
}

}  // namespace

int main() {
  log::set_level(log::Level::kError);

  std::printf("== Ablation A2: layer fusion vs spatial unfolding ==\n\n");
  for (const nn::Network& model : {nn::make_tc1(), nn::make_lenet()}) {
    std::printf("%s:\n", model.name().c_str());
    std::printf("  %-12s %5s %10s %10s %7s %8s %10s %12s\n", "clustering",
                "PEs", "LUT", "DSP", "BRAM", "MHz", "GFLOPS", "img/s");
    const std::size_t feature_layers =
        model.feature_extraction_prefix().layer_count() - 1;
    for (std::size_t cluster = 1; cluster <= feature_layers; ++cluster) {
      const hw::HwNetwork net = clustered(model, cluster);
      auto point = hw::evaluate_design_point(net);
      if (!point.is_ok()) {
        std::printf("  cluster=%zu: %s\n", cluster,
                    point.status().to_string().c_str());
        continue;
      }
      const char* label = cluster == 1 ? "1:1 (paper)" : "";
      std::printf("  %-4zu%-8s %5zu %10llu %10llu %7llu %8.0f %10.2f %12.1f\n",
                  cluster, label, point.value().performance.pes.size(),
                  (unsigned long long)point.value().resources.total.luts,
                  (unsigned long long)point.value().resources.total.dsps,
                  (unsigned long long)point.value().resources.total.bram36,
                  point.value().achieved_mhz, point.value().gflops(),
                  point.value().performance.images_per_second());
    }
    std::printf("\n");
  }
  std::printf(
      "shape: larger clusters -> fewer PEs, smaller LUT/DSP footprint, lower "
      "throughput (time-multiplexed layers).\n");
  return 0;
}

// Ablation A2: fusion-aware DSE — searched PE clustering vs fixed mapping.
//
// The paper's methodology can map several logical layers onto one PE when
// resources are scarce (§3.2). Earlier revisions of this ablation swept a
// hand-assigned clustering factor; now that the explorer enumerates fusion
// degrees itself (DseOptions::max_fused), the ablation sweeps the *search
// bound* instead: for each model x board it runs the full fusion-aware DSE
// at max_fused = 1 (the fixed 1:1 clustering, pre-fusion behavior) up to
// the whole feature stage, and reports the best design the search found.
//
// Expected shape: on a roomy board (aws-f1) the search ties the fixed
// mapping's throughput while trimming area (fused pooling passes are free
// riders on the producer conv's raster, so clustering them costs nothing).
// On tight boards (zc706) the fixed clustering exhausts fabric before the
// parallelism climb saturates; fusing shares window memory subsystems and
// the freed LUT/DSP buys deeper parallel_out/parallel_in, so the searched
// front strictly dominates.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "common/logging.hpp"
#include "hw/accel_plan.hpp"
#include "hw/dse.hpp"
#include "nn/models.hpp"

namespace {

using namespace condor;

struct Scenario {
  const char* board;
  double frequency_mhz;
  nn::Network model;
};

/// Largest fused chain in the winning plan (1 == nothing fused).
std::size_t max_chain(const hw::DsePoint& point) {
  const auto plan = hw::plan_accelerator(point.config);
  std::size_t chain = 1;
  for (const hw::PePlan& pe : plan.value().pes) {
    chain = std::max(chain, pe.layer_indices.size());
  }
  return chain;
}

}  // namespace

int main() {
  log::set_level(log::Level::kError);

  std::printf("== Ablation A2: fusion-aware DSE vs fixed clustering ==\n\n");
  const std::vector<Scenario> scenarios = {
      {"aws-f1", 200.0, nn::make_tc1()},
      {"aws-f1", 200.0, nn::make_lenet()},
      {"zc706", 150.0, nn::make_lenet()},
      {"zc706", 150.0, nn::make_vgg16()},
  };
  for (const Scenario& scenario : scenarios) {
    const nn::Network features = scenario.model.feature_extraction_prefix();
    std::printf("%s features @ %s %.0f MHz:\n", scenario.model.name().c_str(),
                scenario.board, scenario.frequency_mhz);
    std::printf("  %-12s %5s %6s %10s %8s %6s %6s %10s %12s\n", "max_fused",
                "PEs", "chain", "LUT", "DSP", "BRAM", "MHz", "GFLOPS",
                "img/s");
    const std::size_t feature_layers = features.layer_count() - 1;
    const hw::HwNetwork net = hw::with_default_annotations(
        features, scenario.board, scenario.frequency_mhz);
    for (std::size_t bound = 1; bound <= feature_layers; ++bound) {
      hw::DseOptions options;
      options.max_fused = bound;
      auto result = hw::explore(net, options);
      if (!result.is_ok()) {
        std::printf("  max_fused=%zu: %s\n", bound,
                    result.status().to_string().c_str());
        continue;
      }
      const hw::DsePoint& best = result.value().best;
      const char* label = bound == 1 ? "1 (fixed)" : "";
      char bound_text[24];
      std::snprintf(bound_text, sizeof bound_text, "%zu", bound);
      std::printf("  %-12s %5zu %6zu %10llu %8llu %6llu %6.0f %10.2f %12.1f\n",
                  bound == 1 ? label : bound_text,
                  hw::plan_accelerator(best.config).value().pes.size(),
                  max_chain(best),
                  (unsigned long long)best.resources.total.luts,
                  (unsigned long long)best.resources.total.dsps,
                  (unsigned long long)best.resources.total.bram36,
                  best.achieved_mhz, best.gflops(),
                  best.performance.images_per_second());
    }
    std::printf("\n");
  }
  std::printf(
      "shape: on roomy boards the searched optimum ties the fixed mapping's "
      "throughput at smaller area; on tight boards fusion frees fabric the "
      "climb converts into deeper parallelism and strictly higher modeled "
      "throughput.\n");
  return 0;
}

// Reproduces paper Figure 5: "Mean time to process an image in relation to
// the images batch size".
//
// The high-level pipeline of PEs (the paper's intra-layer parallelism)
// overlaps consecutive images, so the mean time per image decreases with
// the batch size and converges once the pipeline is saturated — "for both
// cases convergence is reached approximately when the batch size is bigger
// than the total number of layers of the network".
//
// The curve comes from the event-driven pipeline simulation of the exact
// deployments evaluated in Table 1 (TC1 @ 100 MHz, LeNet @ 180 MHz, no
// parallel feature-map processing).
#include <cstdio>
#include <vector>

#include "common/logging.hpp"
#include "hw/dse.hpp"
#include "nn/models.hpp"
#include "sim/accel_sim.hpp"

namespace {

using namespace condor;

}  // namespace

int main() {
  log::set_level(log::Level::kError);

  const std::vector<std::size_t> batches = {1, 2, 4, 8, 16, 32, 64, 128, 256};

  std::printf("== Figure 5: mean time to process an image vs batch size ==\n\n");

  for (const nn::Network& model : {nn::make_tc1(), nn::make_lenet()}) {
    hw::HwNetwork hw_net = hw::with_default_annotations(model, "aws-f1", 200.0);
    auto point = hw::evaluate_design_point(hw_net);
    if (!point.is_ok()) {
      std::fprintf(stderr, "%s: %s\n", model.name().c_str(),
                   point.status().to_string().c_str());
      return 1;
    }
    const sim::AcceleratorSim accel =
        sim::build_accelerator_sim(point.value().performance);
    auto sweep = sim::sweep_batches(accel, batches);
    if (!sweep.is_ok()) {
      std::fprintf(stderr, "%s\n", sweep.status().to_string().c_str());
      return 1;
    }

    std::printf("%s  (%zu layers, %zu pipeline stages, %.0f MHz)\n",
                model.name().c_str(), model.layer_count(), accel.stages.size(),
                point.value().achieved_mhz);
    std::printf("  %8s %16s %14s\n", "batch", "mean ms/image", "vs batch=1");
    const double first = sweep.value().front().mean_ms_per_image;
    double plateau = sweep.value().back().mean_ms_per_image;
    for (const sim::BatchPoint& p : sweep.value()) {
      std::printf("  %8zu %16.4f %13.2fx\n", p.batch, p.mean_ms_per_image,
                  first / p.mean_ms_per_image);
    }
    // Paper's convergence claim: by batch > #layers the curve is within a
    // few percent of its plateau.
    double at_layers = 0.0;
    for (const sim::BatchPoint& p : sweep.value()) {
      if (p.batch >= model.layer_count()) {
        at_layers = p.mean_ms_per_image;
        break;
      }
    }
    std::printf(
        "  convergence: batch >= #layers is within %.1f%% of the plateau "
        "(%s)\n\n",
        100.0 * (at_layers - plateau) / plateau,
        (at_layers - plateau) / plateau < 0.25 ? "OK" : "FAIL");
  }
  return 0;
}

// Multi-slot F1 scaling (deployment extension).
//
// An f1.16xlarge instance exposes 8 FPGA slots; the same AFI can be loaded
// on every slot and batches sharded across them. This bench loads the
// LeNet AFI on 1..8 slots of a simulated f1.16xlarge and drives the real
// sharded runtime (F1Instance::run_batch_sharded: a dynamic chunk queue
// with one host driver thread per slot) instead of looping slots serially.
// It reports both the device-time aggregate throughput — near-linear
// scaling, since slots share nothing but the (simulated) host — and the
// host wall-clock aggregate, which is bounded by the host's cores.
#include <cstdio>
#include <thread>

#include "caffe/export.hpp"
#include "cloud/afi.hpp"
#include "cloud/f1.hpp"
#include "cloud/s3.hpp"
#include "common/logging.hpp"
#include "condor/flow.hpp"
#include "nn/models.hpp"
#include "nn/synthetic_digits.hpp"
#include "nn/weights.hpp"

namespace {

using namespace condor;

}  // namespace

int main() {
  log::set_level(log::Level::kError);
  std::printf("== Multi-slot F1 scaling (f1.16xlarge, LeNet AFI) ==\n\n");

  cloud::ObjectStore store("/tmp/condor-bench-multislot");
  cloud::AfiService afi(store, 0);

  const nn::Network model = nn::make_lenet();
  auto weights = nn::initialize_weights(model, 7).value();
  condorflow::FrontendInput input;
  input.prototxt_text = caffe::to_prototxt(model).value();
  input.caffemodel_bytes = caffe::to_caffemodel(model, weights).value();
  condorflow::FlowOptions options;
  options.deployment = condorflow::Deployment::kCloud;
  options.s3_bucket = "multislot-bucket";
  auto flow = condorflow::Flow::run(input, options, &store, &afi);
  if (!flow.is_ok()) {
    std::fprintf(stderr, "%s\n", flow.status().to_string().c_str());
    return 1;
  }
  auto available = afi.wait_until_available(flow.value().afi->afi_id);
  if (!available.is_ok()) {
    std::fprintf(stderr, "%s\n", available.status().to_string().c_str());
    return 1;
  }

  cloud::F1Instance instance(cloud::F1InstanceType::k16xlarge, afi);
  constexpr std::size_t kImagesTotal = 64;
  const auto digits = nn::make_digit_dataset(kImagesTotal, 28);

  std::vector<Tensor> inputs;
  for (std::size_t i = 0; i < kImagesTotal; ++i) {
    inputs.push_back(digits[i % digits.size()].image);
  }

  std::printf("host cores: %u\n\n", std::thread::hardware_concurrency());
  std::printf("  %6s %16s %14s %10s %16s\n", "slots", "agg img/s", "speedup",
              "eff", "wall img/s");
  double single_slot = 0.0;
  for (std::size_t slots = 1; slots <= instance.slots(); slots *= 2) {
    // Program the slots (idempotent reloads for already-programmed ones).
    for (std::size_t s = 0; s < slots; ++s) {
      if (auto status = instance.load_afi(s, available.value().agfi_id);
          !status.is_ok()) {
        std::fprintf(stderr, "%s\n", status.to_string().c_str());
        return 1;
      }
      auto kernel = instance.slot_kernel(s);
      (void)kernel.value()->load_weights(flow.value().weight_file_bytes);
    }
    // One dispatch through the sharded runtime: slots pull chunks from a
    // shared queue and run concurrently on their own host driver threads.
    cloud::MultiSlotRunStats stats;
    auto outputs = instance.run_batch_sharded(inputs, slots, &stats);
    if (!outputs.is_ok()) {
      std::fprintf(stderr, "%s\n", outputs.status().to_string().c_str());
      return 1;
    }
    const double throughput =
        static_cast<double>(kImagesTotal) / stats.device_seconds;
    if (slots == 1) {
      single_slot = throughput;
    }
    std::printf("  %6zu %16.1f %13.2fx %9.0f%% %16.1f\n", slots, throughput,
                throughput / single_slot,
                100.0 * throughput / single_slot / static_cast<double>(slots),
                stats.images_per_second(kImagesTotal));
  }
  std::printf(
      "\nshape: near-linear device-time scaling with mild tail-off from\n"
      "pipeline fill on the smaller per-slot shards; the wall-clock column\n"
      "is the functional simulation and is bounded by the host's cores.\n");
  return 0;
}

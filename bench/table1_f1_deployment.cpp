// Reproduces paper Table 1: "AWS F1 deployment results".
//
// Deploys TC1 and LeNet through the full Condor flow (Caffe fixture →
// frontend → layer/network creation → simulated synthesis → xclbin → S3 →
// AFI → F1 slot), then reports resource occupation, steady-state GFLOPS
// (from the cycle-approximate pipeline simulation at the achieved clock)
// and power efficiency, next to the paper's published values.
//
// Configuration matches the paper's: "the generated network processes each
// feature map sequentially but can exploit full intra-layers parallelism"
// — i.e. default annotations (all parallel degrees 1, one PE per layer).
#include <cstdio>
#include <string>
#include <vector>

#include "caffe/export.hpp"
#include "cloud/afi.hpp"
#include "cloud/f1.hpp"
#include "cloud/s3.hpp"
#include "common/logging.hpp"
#include "condor/flow.hpp"
#include "condor/report.hpp"
#include "nn/models.hpp"
#include "nn/weights.hpp"

namespace {

using namespace condor;

struct PaperRow {
  const char* name;
  double lut, ff, dsp, bram, mhz, gflops, gflops_w;
};

constexpr PaperRow kPaper[] = {
    {"TC1", 10.47, 9.02, 5.63, 0.97, 100.0, 8.36, 1.56},
    {"LeNet", 9.48, 8.60, 2.53, 24.38, 180.0, 3.35, 0.78},
};

Result<condorflow::DeploymentReport> deploy(const nn::Network& model,
                                            cloud::ObjectStore& store,
                                            cloud::AfiService& afi) {
  CONDOR_ASSIGN_OR_RETURN(nn::WeightStore weights,
                          nn::initialize_weights(model, 2018));
  // Enter the frontend the way a user would: through the Caffe files.
  CONDOR_ASSIGN_OR_RETURN(std::string prototxt, caffe::to_prototxt(model));
  CONDOR_ASSIGN_OR_RETURN(auto caffemodel, caffe::to_caffemodel(model, weights));

  condorflow::FrontendInput input;
  input.prototxt_text = prototxt;
  input.caffemodel_bytes = std::move(caffemodel);
  input.board_id = "aws-f1";
  input.target_frequency_mhz = 200.0;

  condorflow::FlowOptions options;
  options.deployment = condorflow::Deployment::kCloud;
  options.s3_bucket = "condor-table1";

  CONDOR_ASSIGN_OR_RETURN(condorflow::FlowResult flow,
                          condorflow::Flow::run(input, options, &store, &afi));

  // Exercise the deployment path end to end: wait for the AFI, load it on
  // an F1 slot, and verify the programmed clock.
  CONDOR_ASSIGN_OR_RETURN(cloud::AfiRecord record,
                          afi.wait_until_available(flow.afi->afi_id));
  cloud::F1Instance instance(cloud::F1InstanceType::k2xlarge, afi);
  CONDOR_RETURN_IF_ERROR(instance.load_afi(0, record.agfi_id));

  return condorflow::make_deployment_report(flow);
}

}  // namespace

int main() {
  log::set_level(log::Level::kError);
  cloud::ObjectStore store("/tmp/condor-bench-table1");
  cloud::AfiService afi(store, /*ingestion_polls=*/1);

  std::vector<condorflow::DeploymentReport> rows;
  for (const nn::Network& model : {nn::make_tc1(), nn::make_lenet()}) {
    auto report = deploy(model, store, afi);
    if (!report.is_ok()) {
      std::fprintf(stderr, "deployment of %s failed: %s\n", model.name().c_str(),
                   report.status().to_string().c_str());
      return 1;
    }
    rows.push_back(std::move(report).value());
  }

  std::printf("== Table 1: AWS F1 deployment results ==\n\n");
  std::printf("%-8s %-10s %7s %7s %7s %7s %8s %8s %10s\n", "", "", "LUT %",
              "FF %", "DSP %", "BRAM %", "MHz", "GFLOPS", "GFLOPS/W");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const condorflow::DeploymentReport& r = rows[i];
    const PaperRow& p = kPaper[i];
    std::printf("%-8s %-10s %7.2f %7.2f %7.2f %7.2f %8.0f %8.2f %10.2f\n",
                p.name, "paper", p.lut, p.ff, p.dsp, p.bram, p.mhz, p.gflops,
                p.gflops_w);
    std::printf("%-8s %-10s %7.2f %7.2f %7.2f %7.2f %8.0f %8.2f %10.2f\n", "",
                "measured", r.lut_pct, r.ff_pct, r.dsp_pct, r.bram_pct,
                r.achieved_mhz, r.gflops, r.gflops_per_w);
  }
  std::printf(
      "\nShape checks: TC1 DSP%% > LeNet DSP%% (tanh pipelines): %s | "
      "LeNet BRAM%% >> TC1 BRAM%% (on-chip FC weights): %s | "
      "TC1 GFLOPS > LeNet GFLOPS (FC-bound LeNet): %s | "
      "TC1 GFLOPS/W > LeNet: %s\n",
      rows[0].dsp_pct > rows[1].dsp_pct ? "OK" : "FAIL",
      rows[1].bram_pct > 5.0 * rows[0].bram_pct ? "OK" : "FAIL",
      rows[0].gflops > rows[1].gflops ? "OK" : "FAIL",
      rows[0].gflops_per_w > rows[1].gflops_per_w ? "OK" : "FAIL");
  return 0;
}

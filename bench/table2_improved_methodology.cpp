// Reproduces paper Table 2: "Preliminary results of the improved
// methodology for the features extraction part".
//
// The improved methodology adds inter-layer parallelism (multiple input
// feature maps read concurrently, multiple output maps computed in
// parallel) and evaluates the features-extraction subgraph only — the
// paper notes the classification part is still under investigation and
// VGG-16's fully-connected layers are not synthesizable with the current
// methodology (we verify that rejection too).
//
// The parallelism degrees are chosen by the automated model-driven DSE
// (the paper's step 2, implemented here as the future-work extension).
#include <cstdio>
#include <vector>

#include "common/logging.hpp"
#include "hw/dse.hpp"
#include "nn/models.hpp"

namespace {

using namespace condor;

struct PaperRow {
  const char* name;
  double gflops;
};

constexpr PaperRow kPaper[] = {{"TC1", 16.56}, {"LeNet", 53.51}, {"VGG-16", 113.30}};

}  // namespace

int main() {
  log::set_level(log::Level::kError);

  std::printf("== Table 2: improved methodology, features extraction only ==\n\n");

  // First: the paper's stated limitation — the full VGG-16 (with its FC
  // layers) must be rejected as unsynthesizable by the current methodology.
  {
    hw::HwNetwork full_vgg = hw::with_default_annotations(nn::make_vgg16());
    auto plan = hw::plan_accelerator(full_vgg);
    std::printf("VGG-16 full network: %s\n",
                !plan.is_ok() && plan.status().code() == StatusCode::kUnsynthesizable
                    ? "rejected (fully-connected layers unsynthesizable) -- "
                      "matches the paper"
                    : "UNEXPECTEDLY ACCEPTED");
    if (!plan.is_ok()) {
      std::printf("  reason: %s\n\n", plan.status().message().c_str());
    }
  }

  // The paper reports *preliminary* figures without disclosing the chosen
  // parallel degrees; back-computing from its GFLOPS places them around
  // 2-4. The reproduction row therefore uses a fixed preliminary
  // configuration (parallel_in = 2, parallel_out = 4, clamped per layer);
  // the last column shows what the automated model-driven DSE (this
  // reproduction's future-work extension) reaches on the same subgraph.
  std::printf("%-8s %12s %14s %10s %16s\n", "", "paper", "preliminary",
              "achieved", "automated DSE");
  const nn::Network models[] = {nn::make_tc1(), nn::make_lenet(), nn::make_vgg16()};
  std::vector<double> measured;
  for (std::size_t i = 0; i < 3; ++i) {
    const nn::Network features = models[i].feature_extraction_prefix();
    hw::HwNetwork hw_net = hw::with_default_annotations(features, "aws-f1", 250.0);

    // Fixed preliminary configuration, clamped to each layer's map counts.
    auto shapes = hw_net.net.infer_shapes();
    if (!shapes.is_ok()) {
      std::fprintf(stderr, "%s\n", shapes.status().to_string().c_str());
      return 1;
    }
    for (std::size_t l = 1; l < hw_net.hw.layers.size(); ++l) {
      const nn::LayerSpec& layer = hw_net.net.layers()[l];
      if (!layer.is_feature_extraction()) {
        continue;
      }
      hw_net.hw.layers[l].parallel_in =
          std::min<std::size_t>(2, shapes.value()[l].input[0]);
      hw_net.hw.layers[l].parallel_out =
          std::min<std::size_t>(4, shapes.value()[l].output[0]);
    }
    auto preliminary = hw::evaluate_design_point(hw_net);
    if (!preliminary.is_ok()) {
      std::fprintf(stderr, "preliminary point for %s failed: %s\n",
                   models[i].name().c_str(),
                   preliminary.status().to_string().c_str());
      return 1;
    }

    // Multi-start automated DSE: one walk from the sequential configuration
    // and one from the preliminary seed; keep the better endpoint.
    hw::DseOptions options;
    options.max_utilization = 0.85;
    double dse_best = 0.0;
    for (const hw::HwNetwork& seed :
         {hw::with_default_annotations(features, "aws-f1", 250.0), hw_net}) {
      auto dse = hw::explore(seed, options);
      if (!dse.is_ok()) {
        std::fprintf(stderr, "DSE for %s failed: %s\n", models[i].name().c_str(),
                     dse.status().to_string().c_str());
        return 1;
      }
      dse_best = std::max(dse_best, dse.value().best.gflops());
    }
    measured.push_back(preliminary.value().gflops());
    std::printf("%-8s %9.2f GF %11.2f GF %7.0f MHz %13.2f GF\n", kPaper[i].name,
                kPaper[i].gflops, preliminary.value().gflops(),
                preliminary.value().achieved_mhz, dse_best);
  }

  std::printf("\nShape check: monotonic GFLOPS growth TC1 < LeNet < VGG-16: %s\n",
              measured[0] < measured[1] && measured[1] < measured[2] ? "OK"
                                                                     : "FAIL");
  return 0;
}

// Ablation A5: fixed-point quantization study.
//
// The paper's accelerator computes in single-precision float; related work
// it cites (Qiu et al., FPGA'16) quantizes data to cut bandwidth and
// resources "with negligible impact on the resulting accuracy". This bench
// quantifies that trade on Condor's own designs: for TC1 and LeNet at the
// Table 1 configuration, it re-costs the accelerator with the fixed16 /
// fixed8 model presets (single-DSP integer MACs, LUT multipliers,
// table-based activations, narrower weight stores and FIFOs), measures
// the numerical error of the dynamically-scaled fixed-point datapath
// against the float reference on synthetic digits, and runs the real
// dataflow executor at each datapath: measured software GOPS plus the max
// |diff| against the matching software reference (0 = the executor is
// bit-exact at that DataType, the property the test suite enforces).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <vector>

#include "common/logging.hpp"
#include "dataflow/executor.hpp"
#include "hw/accel_plan.hpp"
#include "hw/dse.hpp"
#include "nn/models.hpp"
#include "nn/quantization.hpp"
#include "nn/reference.hpp"
#include "nn/synthetic_digits.hpp"
#include "nn/weights.hpp"

namespace {

using namespace condor;

/// Runs the dataflow executor over `images` with the network planned at
/// `type`; reports measured GOPS and the max |diff| against `oracle` (the
/// software reference of the same numeric datapath).
struct ExecutorRun {
  double gops = 0.0;
  float max_diff = 0.0F;
  bool ok = false;
};

ExecutorRun run_executor(const nn::Network& model, const nn::WeightStore& weights,
                         nn::DataType type, const std::vector<Tensor>& images,
                         const nn::QuantizedEngine& oracle) {
  ExecutorRun result;
  hw::HwNetwork net = hw::with_default_annotations(model, "aws-f1", 250.0);
  net.hw.data_type = type;
  auto plan = hw::plan_accelerator(net);
  if (!plan.is_ok()) {
    return result;
  }
  auto executor = dataflow::AcceleratorExecutor::create(plan.value(), weights);
  if (!executor.is_ok()) {
    return result;
  }
  executor.value().run_batch(images).value();  // warm-up: compile the design
  const auto start = std::chrono::steady_clock::now();
  auto outputs = executor.value().run_batch(images);
  const auto stop = std::chrono::steady_clock::now();
  if (!outputs.is_ok()) {
    return result;
  }
  const double seconds = std::chrono::duration<double>(stop - start).count();
  const auto flops = model.total_flops();
  if (flops.is_ok() && seconds > 0.0) {
    result.gops = static_cast<double>(flops.value()) *
                  static_cast<double>(images.size()) / seconds / 1e9;
  }
  for (std::size_t i = 0; i < images.size(); ++i) {
    result.max_diff = std::max(
        result.max_diff,
        max_abs_diff(outputs.value()[i], oracle.forward(images[i]).value()));
  }
  result.ok = true;
  return result;
}

}  // namespace

int main() {
  log::set_level(log::Level::kError);
  std::printf("== Ablation A5: fixed-point quantization ==\n\n");

  for (const nn::Network& model : {nn::make_tc1(), nn::make_lenet()}) {
    std::printf("%s (Table 1 configuration):\n", model.name().c_str());
    std::printf("  %-8s %10s %8s %7s %8s %10s %14s %12s %10s %12s\n", "type",
                "LUT", "DSP", "BRAM", "MHz", "GOPS", "mean|err|",
                "argmax agree", "exec GOPS", "exec max|d|");

    auto weights = nn::initialize_weights(model, 2018).value();
    auto float_engine = nn::ReferenceEngine::create(model, weights).value();
    const auto digits =
        nn::make_digit_dataset(20, model.input_shape().value()[1]);
    std::vector<Tensor> images;
    images.reserve(digits.size());
    for (const nn::DigitSample& sample : digits) {
      images.push_back(sample.image);
    }

    for (const nn::DataType type :
         {nn::DataType::kFloat32, nn::DataType::kFixed16, nn::DataType::kFixed8}) {
      hw::HwNetwork net = hw::with_default_annotations(model, "aws-f1", 250.0);
      hw::DseOptions options;
      options.cost = hw::cost_model_for(type);
      options.timing = hw::timing_model_for(type);
      options.max_utilization = 1.0;
      auto point = hw::evaluate_design_point(net, options);
      if (!point.is_ok()) {
        std::printf("  %-8s %s\n", std::string(nn::to_string(type)).c_str(),
                    point.status().to_string().c_str());
        continue;
      }

      // Numerical error vs the float reference.
      float mean_err = 0.0F;
      std::size_t agree = 0;
      auto quant_engine = nn::QuantizedEngine::create(model, weights, type).value();
      for (const nn::DigitSample& sample : digits) {
        const Tensor reference = float_engine.forward(sample.image).value();
        const Tensor quantized = quant_engine.forward(sample.image).value();
        const nn::QuantizationError error =
            nn::compare_outputs(reference, quantized);
        mean_err += error.mean_abs_error;
        agree += error.argmax_match ? 1 : 0;
      }
      mean_err /= static_cast<float>(digits.size());

      // The real dataflow executor at this datapath, checked against the
      // software reference of the same DataType (diff 0 = bit-exact).
      const ExecutorRun exec =
          run_executor(model, weights, type, images, quant_engine);

      std::printf(
          "  %-8s %10llu %8llu %7llu %8.0f %10.2f %14.2e %9zu/%zu %10.2f %12.2e\n",
          std::string(nn::to_string(type)).c_str(),
          (unsigned long long)point.value().resources.total.luts,
          (unsigned long long)point.value().resources.total.dsps,
          (unsigned long long)point.value().resources.total.bram36,
          point.value().achieved_mhz, point.value().gflops(), mean_err, agree,
          digits.size(), exec.gops, (double)exec.max_diff);
    }
    std::printf("\n");
  }
  std::printf(
      "shape: fixed16 cuts DSPs several-fold and lifts the achieved clock\n"
      "(table-based activations erase TC1's tanh critical path) with\n"
      "per-class probability errors in the 1e-4..1e-2 range; fixed8 goes\n"
      "further on resources at visibly higher numerical error — the same\n"
      "trade Qiu et al. report.\n");
  return 0;
}

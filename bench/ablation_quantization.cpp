// Ablation A5: fixed-point quantization study.
//
// The paper's accelerator computes in single-precision float; related work
// it cites (Qiu et al., FPGA'16) quantizes data to cut bandwidth and
// resources "with negligible impact on the resulting accuracy". This bench
// quantifies that trade on Condor's own designs: for TC1 and LeNet at the
// Table 1 configuration, it re-costs the accelerator with the fixed16 /
// fixed8 model presets (single-DSP integer MACs, LUT multipliers,
// table-based activations, narrower weight stores and FIFOs) and measures
// the numerical error of the dynamically-scaled fixed-point datapath
// against the float reference on synthetic digits.
#include <cstdio>

#include "common/logging.hpp"
#include "hw/dse.hpp"
#include "nn/models.hpp"
#include "nn/quantization.hpp"
#include "nn/reference.hpp"
#include "nn/synthetic_digits.hpp"
#include "nn/weights.hpp"

namespace {

using namespace condor;

}  // namespace

int main() {
  log::set_level(log::Level::kError);
  std::printf("== Ablation A5: fixed-point quantization ==\n\n");

  for (const nn::Network& model : {nn::make_tc1(), nn::make_lenet()}) {
    std::printf("%s (Table 1 configuration):\n", model.name().c_str());
    std::printf("  %-8s %10s %8s %7s %8s %10s %14s %12s\n", "type", "LUT",
                "DSP", "BRAM", "MHz", "GOPS", "mean|err|", "argmax agree");

    auto weights = nn::initialize_weights(model, 2018).value();
    auto float_engine = nn::ReferenceEngine::create(model, weights).value();
    const auto digits =
        nn::make_digit_dataset(20, model.input_shape().value()[1]);

    for (const nn::DataType type :
         {nn::DataType::kFloat32, nn::DataType::kFixed16, nn::DataType::kFixed8}) {
      hw::HwNetwork net = hw::with_default_annotations(model, "aws-f1", 250.0);
      hw::DseOptions options;
      options.cost = hw::cost_model_for(type);
      options.timing = hw::timing_model_for(type);
      options.max_utilization = 1.0;
      auto point = hw::evaluate_design_point(net, options);
      if (!point.is_ok()) {
        std::printf("  %-8s %s\n", std::string(nn::to_string(type)).c_str(),
                    point.status().to_string().c_str());
        continue;
      }

      // Numerical error vs the float reference.
      float mean_err = 0.0F;
      std::size_t agree = 0;
      auto quant_engine = nn::QuantizedEngine::create(model, weights, type).value();
      for (const nn::DigitSample& sample : digits) {
        const Tensor reference = float_engine.forward(sample.image).value();
        const Tensor quantized = quant_engine.forward(sample.image).value();
        const nn::QuantizationError error =
            nn::compare_outputs(reference, quantized);
        mean_err += error.mean_abs_error;
        agree += error.argmax_match ? 1 : 0;
      }
      mean_err /= static_cast<float>(digits.size());

      std::printf("  %-8s %10llu %8llu %7llu %8.0f %10.2f %14.2e %9zu/%zu\n",
                  std::string(nn::to_string(type)).c_str(),
                  (unsigned long long)point.value().resources.total.luts,
                  (unsigned long long)point.value().resources.total.dsps,
                  (unsigned long long)point.value().resources.total.bram36,
                  point.value().achieved_mhz, point.value().gflops(), mean_err,
                  agree, digits.size());
    }
    std::printf("\n");
  }
  std::printf(
      "shape: fixed16 cuts DSPs several-fold and lifts the achieved clock\n"
      "(table-based activations erase TC1's tanh critical path) with\n"
      "per-class probability errors in the 1e-4..1e-2 range; fixed8 goes\n"
      "further on resources at visibly higher numerical error — the same\n"
      "trade Qiu et al. report.\n");
  return 0;
}

// Micro-benchmarks (google-benchmark) of the engine substrate: FIFO
// throughput, filter-chain streaming rate, functional accelerator execution
// vs the golden CPU reference, and the discrete-event simulator's event rate.
//
// These quantify the *host-side* cost of the simulation infrastructure —
// they are not device-performance claims (those come from the cycle
// simulator in the table/figure benches).
#include <benchmark/benchmark.h>

#include <span>
#include <thread>
#include <vector>

#include "common/logging.hpp"
#include "dataflow/executor.hpp"
#include "dataflow/fifo.hpp"
#include "hw/accel_plan.hpp"
#include "nn/models.hpp"
#include "nn/reference.hpp"
#include "nn/weights.hpp"
#include "sim/pipeline.hpp"
#include "common/rng.hpp"

namespace {

using namespace condor;

void BM_FifoSingleThreaded(benchmark::State& state) {
  dataflow::Stream fifo(static_cast<std::size_t>(state.range(0)));
  const std::size_t burst = fifo.capacity();
  float value = 0.0F;
  for (auto _ : state) {
    for (std::size_t i = 0; i < burst; ++i) {
      fifo.write(1.0F);
    }
    for (std::size_t i = 0; i < burst; ++i) {
      benchmark::DoNotOptimize(fifo.read(value));
    }
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(burst));
}
BENCHMARK(BM_FifoSingleThreaded)->Arg(16)->Arg(256);

void BM_FifoProducerConsumer(benchmark::State& state) {
  constexpr std::size_t kCount = 100'000;
  for (auto _ : state) {
    dataflow::Stream fifo(static_cast<std::size_t>(state.range(0)));
    std::thread producer([&fifo] {
      for (std::size_t i = 0; i < kCount; ++i) {
        fifo.write(static_cast<float>(i));
      }
      fifo.close();
    });
    float value = 0.0F;
    std::size_t received = 0;
    while (fifo.read(value)) {
      ++received;
    }
    producer.join();
    if (received != kCount) {
      state.SkipWithError("lost elements");
    }
  }
  state.SetItemsProcessed(state.iterations() * kCount);
}
BENCHMARK(BM_FifoProducerConsumer)->Arg(16)->Arg(1024);

/// Burst transfers across the same two-thread handoff: rows move per FIFO
/// call, so the synchronization cost amortizes over the burst length.
void BM_FifoBurstProducerConsumer(benchmark::State& state) {
  constexpr std::size_t kCount = 100'000;
  constexpr std::size_t kBurst = 128;
  std::vector<float> out(kBurst);
  for (auto _ : state) {
    dataflow::Stream fifo(static_cast<std::size_t>(state.range(0)));
    std::thread producer([&] {
      std::vector<float> burst(kBurst);
      for (std::size_t sent = 0; sent < kCount; sent += kBurst) {
        const std::size_t n = std::min(kBurst, kCount - sent);
        burst.assign(n, static_cast<float>(sent));
        fifo.write_burst(std::span<const float>(burst.data(), n));
      }
      fifo.close();
    });
    std::size_t received = 0;
    std::size_t got = 0;
    while ((got = fifo.read_burst(std::span<float>(out))) != 0) {
      received += got;
    }
    producer.join();
    if (received != kCount) {
      state.SkipWithError("lost elements");
    }
  }
  state.SetItemsProcessed(state.iterations() * kCount);
}
BENCHMARK(BM_FifoBurstProducerConsumer)->Arg(16)->Arg(1024);

/// One image through the full KPN accelerator (thread-per-module).
void BM_AcceleratorFunctional(benchmark::State& state, const nn::Network& model) {
  auto weights = nn::initialize_weights(model, 1).value();
  auto plan =
      hw::plan_accelerator(hw::with_default_annotations(model)).value();
  auto executor =
      dataflow::AcceleratorExecutor::create(plan, std::move(weights)).value();
  Rng rng(2);
  const Shape input_shape = model.input_shape().value();
  std::vector<Tensor> batch;
  for (int i = 0; i < 4; ++i) {
    Tensor image(input_shape);
    for (float& v : image.data()) {
      v = rng.uniform(-1.0F, 1.0F);
    }
    batch.push_back(std::move(image));
  }
  for (auto _ : state) {
    auto outputs = executor.run_batch(batch);
    if (!outputs.is_ok()) {
      state.SkipWithError("run failed");
    }
    benchmark::DoNotOptimize(outputs);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(batch.size()));
}
void BM_AcceleratorFunctional_TC1(benchmark::State& state) {
  BM_AcceleratorFunctional(state, nn::make_tc1());
}
void BM_AcceleratorFunctional_LeNet(benchmark::State& state) {
  BM_AcceleratorFunctional(state, nn::make_lenet());
}
BENCHMARK(BM_AcceleratorFunctional_TC1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_AcceleratorFunctional_LeNet)->Unit(benchmark::kMillisecond);

/// Steady-state serving: repeated batches through ONE executor, so the
/// compiled design, stream topology and worker pool are reused and only
/// data moves per iteration (the paper's deployment scenario — a resident
/// accelerator fed batch after batch).
void BM_AcceleratorRepeatedBatch(benchmark::State& state) {
  const nn::Network model = nn::make_lenet();
  auto weights = nn::initialize_weights(model, 1).value();
  auto plan =
      hw::plan_accelerator(hw::with_default_annotations(model)).value();
  auto executor =
      dataflow::AcceleratorExecutor::create(plan, std::move(weights)).value();
  Rng rng(2);
  const Shape input_shape = model.input_shape().value();
  const std::size_t batch_size = static_cast<std::size_t>(state.range(0));
  std::vector<Tensor> batch;
  for (std::size_t i = 0; i < batch_size; ++i) {
    Tensor image(input_shape);
    for (float& v : image.data()) {
      v = rng.uniform(-1.0F, 1.0F);
    }
    batch.push_back(std::move(image));
  }
  // Warm-up: the first call compiles the design.
  if (!executor.run_batch(batch).is_ok()) {
    state.SkipWithError("warm-up failed");
  }
  for (auto _ : state) {
    auto outputs = executor.run_batch(batch);
    if (!outputs.is_ok()) {
      state.SkipWithError("run failed");
    }
    benchmark::DoNotOptimize(outputs);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(batch_size));
}
BENCHMARK(BM_AcceleratorRepeatedBatch)->Arg(16)->Unit(benchmark::kMillisecond);

/// The golden reference, for an apples-to-apples host-cost comparison.
void BM_Reference(benchmark::State& state, const nn::Network& model) {
  auto weights = nn::initialize_weights(model, 1).value();
  auto engine = nn::ReferenceEngine::create(model, std::move(weights)).value();
  Rng rng(2);
  Tensor image(model.input_shape().value());
  for (float& v : image.data()) {
    v = rng.uniform(-1.0F, 1.0F);
  }
  for (auto _ : state) {
    auto out = engine.forward(image);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations());
}
void BM_Reference_TC1(benchmark::State& state) {
  BM_Reference(state, nn::make_tc1());
}
void BM_Reference_LeNet(benchmark::State& state) {
  BM_Reference(state, nn::make_lenet());
}
BENCHMARK(BM_Reference_TC1)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Reference_LeNet)->Unit(benchmark::kMillisecond);

void BM_PipelineSimulator(benchmark::State& state) {
  const std::size_t stages = static_cast<std::size_t>(state.range(0));
  std::vector<sim::StageSpec> specs;
  for (std::size_t s = 0; s < stages; ++s) {
    specs.push_back({"s" + std::to_string(s), 100 + s * 17, 1});
  }
  for (auto _ : state) {
    auto run = sim::simulate_pipeline(specs, 256);
    benchmark::DoNotOptimize(run);
  }
  state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_PipelineSimulator)->Arg(6)->Arg(18);

}  // namespace

int main(int argc, char** argv) {
  condor::log::set_level(condor::log::Level::kError);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

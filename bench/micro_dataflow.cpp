// Micro-benchmarks (google-benchmark) of the engine substrate: FIFO
// throughput, filter-chain streaming rate, functional accelerator execution
// vs the golden CPU reference, and the discrete-event simulator's event rate.
//
// These quantify the *host-side* cost of the simulation infrastructure —
// they are not device-performance claims (those come from the cycle
// simulator in the table/figure benches).
#include <benchmark/benchmark.h>

#include <memory>
#include <span>
#include <thread>
#include <vector>

#include "common/logging.hpp"
#include "dataflow/executor.hpp"
#include "dataflow/executor_pool.hpp"
#include "dataflow/fifo.hpp"
#include "dataflow/graph.hpp"
#include "hw/accel_plan.hpp"
#include "nn/kernels.hpp"
#include "nn/kernels_simd.hpp"
#include "nn/models.hpp"
#include "nn/reference.hpp"
#include "nn/weights.hpp"
#include "sim/pipeline.hpp"
#include "common/rng.hpp"

namespace {

using namespace condor;

void BM_FifoSingleThreaded(benchmark::State& state) {
  dataflow::Stream fifo(static_cast<std::size_t>(state.range(0)));
  const std::size_t burst = fifo.capacity();
  float value = 0.0F;
  for (auto _ : state) {
    for (std::size_t i = 0; i < burst; ++i) {
      fifo.write(1.0F);
    }
    for (std::size_t i = 0; i < burst; ++i) {
      benchmark::DoNotOptimize(fifo.read(value));
    }
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(burst));
}
BENCHMARK(BM_FifoSingleThreaded)->Arg(16)->Arg(256);

void BM_FifoProducerConsumer(benchmark::State& state) {
  constexpr std::size_t kCount = 100'000;
  for (auto _ : state) {
    dataflow::Stream fifo(static_cast<std::size_t>(state.range(0)));
    std::thread producer([&fifo] {
      for (std::size_t i = 0; i < kCount; ++i) {
        fifo.write(static_cast<float>(i));
      }
      fifo.close();
    });
    float value = 0.0F;
    std::size_t received = 0;
    while (fifo.read(value)) {
      ++received;
    }
    producer.join();
    if (received != kCount) {
      state.SkipWithError("lost elements");
    }
  }
  state.SetItemsProcessed(state.iterations() * kCount);
}
BENCHMARK(BM_FifoProducerConsumer)->Arg(16)->Arg(1024);

/// Burst transfers across the same two-thread handoff: rows move per FIFO
/// call, so the synchronization cost amortizes over the burst length.
void BM_FifoBurstProducerConsumer(benchmark::State& state) {
  constexpr std::size_t kCount = 100'000;
  constexpr std::size_t kBurst = 128;
  std::vector<float> out(kBurst);
  for (auto _ : state) {
    dataflow::Stream fifo(static_cast<std::size_t>(state.range(0)));
    std::thread producer([&] {
      std::vector<float> burst(kBurst);
      for (std::size_t sent = 0; sent < kCount; sent += kBurst) {
        const std::size_t n = std::min(kBurst, kCount - sent);
        burst.assign(n, static_cast<float>(sent));
        fifo.write_burst(std::span<const float>(burst.data(), n));
      }
      fifo.close();
    });
    std::size_t received = 0;
    std::size_t got = 0;
    while ((got = fifo.read_burst(std::span<float>(out))) != 0) {
      received += got;
    }
    producer.join();
    if (received != kCount) {
      state.SkipWithError("lost elements");
    }
  }
  state.SetItemsProcessed(state.iterations() * kCount);
}
BENCHMARK(BM_FifoBurstProducerConsumer)->Arg(16)->Arg(1024);

/// One image through the full KPN accelerator.
void BM_AcceleratorFunctional(benchmark::State& state, const nn::Network& model) {
  auto weights = nn::initialize_weights(model, 1).value();
  auto plan =
      hw::plan_accelerator(hw::with_default_annotations(model)).value();
  auto executor =
      dataflow::AcceleratorExecutor::create(plan, std::move(weights)).value();
  Rng rng(2);
  const Shape input_shape = model.input_shape().value();
  std::vector<Tensor> batch;
  for (int i = 0; i < 4; ++i) {
    Tensor image(input_shape);
    for (float& v : image.data()) {
      v = rng.uniform(-1.0F, 1.0F);
    }
    batch.push_back(std::move(image));
  }
  for (auto _ : state) {
    auto outputs = executor.run_batch(batch);
    if (!outputs.is_ok()) {
      state.SkipWithError("run failed");
    }
    benchmark::DoNotOptimize(outputs);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(batch.size()));
}
void BM_AcceleratorFunctional_TC1(benchmark::State& state) {
  BM_AcceleratorFunctional(state, nn::make_tc1());
}
void BM_AcceleratorFunctional_LeNet(benchmark::State& state) {
  BM_AcceleratorFunctional(state, nn::make_lenet());
}
/// The DAG path: two residual blocks plus a concat head, so every image
/// crosses broadcast fan-outs and two-operand join PEs.
void BM_AcceleratorResidual(benchmark::State& state) {
  BM_AcceleratorFunctional(state, nn::make_tiny_resnet());
}
BENCHMARK(BM_AcceleratorFunctional_TC1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_AcceleratorFunctional_LeNet)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_AcceleratorResidual)->Unit(benchmark::kMillisecond);

/// Steady-state serving: repeated batches through ONE executor, so the
/// compiled design, stream topology and worker pool are reused and only
/// data moves per iteration (the paper's deployment scenario — a resident
/// accelerator fed batch after batch).
void BM_AcceleratorRepeatedBatch(benchmark::State& state) {
  const nn::Network model = nn::make_lenet();
  auto weights = nn::initialize_weights(model, 1).value();
  auto plan =
      hw::plan_accelerator(hw::with_default_annotations(model)).value();
  auto executor =
      dataflow::AcceleratorExecutor::create(plan, std::move(weights)).value();
  Rng rng(2);
  const Shape input_shape = model.input_shape().value();
  const std::size_t batch_size = static_cast<std::size_t>(state.range(0));
  std::vector<Tensor> batch;
  for (std::size_t i = 0; i < batch_size; ++i) {
    Tensor image(input_shape);
    for (float& v : image.data()) {
      v = rng.uniform(-1.0F, 1.0F);
    }
    batch.push_back(std::move(image));
  }
  // Warm-up: the first call compiles the design.
  if (!executor.run_batch(batch).is_ok()) {
    state.SkipWithError("warm-up failed");
  }
  for (auto _ : state) {
    auto outputs = executor.run_batch(batch);
    if (!outputs.is_ok()) {
      state.SkipWithError("run failed");
    }
    benchmark::DoNotOptimize(outputs);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(batch_size));
}
BENCHMARK(BM_AcceleratorRepeatedBatch)->Arg(16)->Unit(benchmark::kMillisecond);

/// Fused-chain serving: LeNet's whole feature stage clustered onto one
/// fused PE, repeated 16-image batches through one resident executor.
/// Arg: 0 = legacy loopback round trip (every intermediate pass re-enters
/// the memory subsystem through mux -> filters -> port FIFOs), 1 = the
/// PE-local fused-pass fast path (intermediates stay in the PE's grow-only
/// double buffer). Identical clustering, byte-identical outputs — the gap
/// between the rows is the locality win.
void BM_AcceleratorFusedChain(benchmark::State& state) {
  const bool fast_path = state.range(0) != 0;
  const nn::Network model = nn::make_lenet();
  auto weights = nn::initialize_weights(model, 1).value();
  hw::HwNetwork hw_net = hw::with_default_annotations(model);
  for (std::size_t i = 1; i < hw_net.hw.layers.size(); ++i) {
    if (!model.layers()[i].is_feature_extraction()) {
      break;
    }
    hw_net.hw.layers[i].pe_group = 0;
  }
  auto plan = hw::plan_accelerator(hw_net).value();
  auto executor =
      dataflow::AcceleratorExecutor::create(plan, std::move(weights)).value();
  executor.set_fused_pass_locality(fast_path);
  Rng rng(2);
  const Shape input_shape = model.input_shape().value();
  std::vector<Tensor> batch;
  for (int i = 0; i < 16; ++i) {
    Tensor image(input_shape);
    for (float& v : image.data()) {
      v = rng.uniform(-1.0F, 1.0F);
    }
    batch.push_back(std::move(image));
  }
  if (!executor.run_batch(batch).is_ok()) {
    state.SkipWithError("warm-up failed");
  }
  for (auto _ : state) {
    auto outputs = executor.run_batch(batch);
    if (!outputs.is_ok()) {
      state.SkipWithError("run failed");
    }
    benchmark::DoNotOptimize(outputs);
  }
  state.SetLabel(fast_path ? "pe-local" : "loopback");
  state.counters["fused_local_passes"] = static_cast<double>(
      executor.last_run_stats().fused_local_passes);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(batch.size()));
}
BENCHMARK(BM_AcceleratorFusedChain)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

/// Weight residency + multi-image pipelining on LeNet at batch 1 / 4 / 16.
/// arg1 selects the serving mode: 0 = resident (one executor reused across
/// iterations — warm runs stream zero weight bytes and overlap images),
/// 1 = drain (a fresh executor per iteration, re-streaming and re-latching
/// every weight slice — the cost the legacy per-image drain paid
/// continuously). The gap between the two rows is the residency win; the
/// sub-linear growth of the resident row across batch sizes is the
/// pipelining win.
void BM_AcceleratorBatchPipelining(benchmark::State& state) {
  const nn::Network model = nn::make_lenet();
  auto weights = nn::initialize_weights(model, 1).value();
  auto plan =
      hw::plan_accelerator(hw::with_default_annotations(model)).value();
  const auto shared_plan =
      std::make_shared<const condor::hw::AcceleratorPlan>(std::move(plan));
  const auto shared_weights =
      std::make_shared<const condor::nn::WeightStore>(std::move(weights));
  Rng rng(2);
  const Shape input_shape = model.input_shape().value();
  const std::size_t batch_size = static_cast<std::size_t>(state.range(0));
  const bool drain = state.range(1) != 0;
  std::vector<Tensor> batch;
  for (std::size_t i = 0; i < batch_size; ++i) {
    Tensor image(input_shape);
    for (float& v : image.data()) {
      v = rng.uniform(-1.0F, 1.0F);
    }
    batch.push_back(std::move(image));
  }
  auto resident = dataflow::AcceleratorExecutor::create(shared_plan,
                                                        shared_weights)
                      .value();
  if (!resident.run_batch(batch).is_ok()) {
    state.SkipWithError("warm-up failed");
  }
  for (auto _ : state) {
    if (drain) {
      auto executor = dataflow::AcceleratorExecutor::create(shared_plan,
                                                            shared_weights)
                          .value();
      auto outputs = executor.run_batch(batch);
      if (!outputs.is_ok()) {
        state.SkipWithError("run failed");
      }
      benchmark::DoNotOptimize(outputs);
    } else {
      auto outputs = resident.run_batch(batch);
      if (!outputs.is_ok()) {
        state.SkipWithError("run failed");
      }
      benchmark::DoNotOptimize(outputs);
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(batch_size));
  if (!drain) {
    state.counters["weight_bytes_warm"] = static_cast<double>(
        resident.last_run_stats().weight_bytes_streamed);
    state.counters["images_in_flight_hwm"] = static_cast<double>(
        resident.last_run_stats().images_in_flight_hwm);
  }
}
BENCHMARK(BM_AcceleratorBatchPipelining)
    ->ArgNames({"batch", "drain"})
    ->Args({1, 0})
    ->Args({4, 0})
    ->Args({16, 0})
    ->Args({1, 1})
    ->Args({4, 1})
    ->Args({16, 1})
    ->Unit(benchmark::kMillisecond);

/// The golden reference, for an apples-to-apples host-cost comparison.
void BM_Reference(benchmark::State& state, const nn::Network& model) {
  auto weights = nn::initialize_weights(model, 1).value();
  auto engine = nn::ReferenceEngine::create(model, std::move(weights)).value();
  Rng rng(2);
  Tensor image(model.input_shape().value());
  for (float& v : image.data()) {
    v = rng.uniform(-1.0F, 1.0F);
  }
  for (auto _ : state) {
    auto out = engine.forward(image);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations());
}
void BM_Reference_TC1(benchmark::State& state) {
  BM_Reference(state, nn::make_tc1());
}
void BM_Reference_LeNet(benchmark::State& state) {
  BM_Reference(state, nn::make_lenet());
}
BENCHMARK(BM_Reference_TC1)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Reference_LeNet)->Unit(benchmark::kMillisecond);

/// The packed OC-contiguous conv microkernel (nn/kernels.hpp) against the
/// scalar oc-outer schedule it replaced, on one conv-shaped workload
/// (32 output maps of 16x16, 16 input channels, 3x3 window). Args:
/// {0, _} = the pre-repack scalar schedule baseline; {1, level} = the
/// packed kernel pinned to SIMD dispatch level `level` (0 scalar, 1 avx2,
/// 2 avx512 — unsupported levels skip). Compare items/s (MACs) between
/// rows; all run on a single thread. The label records the variant.
void BM_ConvMicrokernel(benchmark::State& state) {
  // Runtime-opaque dimensions: the replaced scalar schedule ran with
  // runtime loop bounds (LayerPass fields), so the baseline must not be
  // constant-folded into a fully unrolled SIMD loop the original never saw.
  volatile std::size_t dims[5] = {16, 32, 3, 16, 16};
  const std::size_t kInC = dims[0];
  const std::size_t kOutC = dims[1];
  const std::size_t kK = dims[2];
  const std::size_t kOutH = dims[3];
  const std::size_t kOutW = dims[4];
  const std::size_t kInH = kOutH + kK - 1;
  const std::size_t kInW = kOutW + kK - 1;
  const std::size_t kTaps = kK * kK;
  const std::size_t kPoints = kOutH * kOutW;

  Rng rng(3);
  std::vector<float> frame(kInC * kInH * kInW);
  std::vector<float> weights(kOutC * kInC * kTaps);
  std::vector<float> bias(kOutC);
  for (float& v : frame) v = rng.uniform(-1.0F, 1.0F);
  for (float& v : weights) v = rng.uniform(-1.0F, 1.0F);
  for (float& v : bias) v = rng.uniform(-1.0F, 1.0F);
  std::vector<float> out(kOutC * kPoints);

  const bool packed_variant = state.range(0) != 0;
  const auto requested_level =
      static_cast<nn::kernels::SimdLevel>(state.range(1));
  const nn::kernels::SimdLevel previous_level =
      nn::kernels::active_simd_level();
  if (packed_variant &&
      nn::kernels::set_active_simd_level_for_testing(requested_level) !=
          requested_level) {
    nn::kernels::set_active_simd_level_for_testing(previous_level);
    state.SkipWithError("SIMD level unsupported on this host");
    return;
  }
  const std::vector<float> packed =
      nn::kernels::pack_conv_weights<float>(weights, kOutC, kInC, kK, kK);
  std::vector<float> acc(kPoints * kOutC);
  std::vector<const float*> taps(kTaps);

  for (auto _ : state) {
    if (!packed_variant) {
      // The pre-repack schedule: oc outer, strided weight walk with an
      // index multiply per access, one scalar accumulator per point.
      for (std::size_t oc = 0; oc < kOutC; ++oc) {
        for (std::size_t oy = 0; oy < kOutH; ++oy) {
          for (std::size_t ox = 0; ox < kOutW; ++ox) {
            float value = bias[oc];
            for (std::size_t ic = 0; ic < kInC; ++ic) {
              for (std::size_t ky = 0; ky < kK; ++ky) {
                for (std::size_t kx = 0; kx < kK; ++kx) {
                  value += frame[(ic * kInH + oy + ky) * kInW + ox + kx] *
                           weights[((oc * kInC + ic) * kK + ky) * kK + kx];
                }
              }
            }
            out[(oc * kOutH + oy) * kOutW + ox] = value;
          }
        }
      }
    } else {
      // The packed point-major tile the reference and the PE now run.
      for (std::size_t point = 0; point < kPoints; ++point) {
        for (std::size_t j = 0; j < kOutC; ++j) {
          acc[point * kOutC + j] = bias[j];
        }
      }
      for (std::size_t ic = 0; ic < kInC; ++ic) {
        const float* channel = frame.data() + ic * kInH * kInW;
        const float* packed_ic = packed.data() + ic * kTaps * kOutC;
        for (std::size_t oy = 0; oy < kOutH; ++oy) {
          for (std::size_t ky = 0; ky < kK; ++ky) {
            for (std::size_t kx = 0; kx < kK; ++kx) {
              taps[ky * kK + kx] = channel + (oy + ky) * kInW + kx;
            }
          }
          nn::kernels::conv_accumulate_row(acc.data() + oy * kOutW * kOutC,
                                           kOutC, kOutW, taps.data(), kTaps,
                                           1, packed_ic, kOutC);
        }
      }
      for (std::size_t j = 0; j < kOutC; ++j) {
        for (std::size_t point = 0; point < kPoints; ++point) {
          out[j * kPoints + point] = acc[point * kOutC + j];
        }
      }
    }
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
  if (packed_variant) {
    nn::kernels::set_active_simd_level_for_testing(previous_level);
  }
  std::string label = packed_variant ? "packed-" : "scalar";
  if (packed_variant) {
    label += nn::kernels::to_string(requested_level);
  }
  state.SetLabel(label);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(kOutC * kInC * kTaps *
                                                    kPoints));
}
BENCHMARK(BM_ConvMicrokernel)
    ->Args({0, 0})
    ->Args({1, 0})
    ->Args({1, 1})
    ->Args({1, 2});

/// Steady-state LeNet serving at uniform intra-layer unfolding degrees:
/// parallel_out output-channel lanes per PE on the shared pool (Arg =
/// degree). On a single hardware thread the degrees should roughly tie;
/// with cores to spare the higher degrees cut batch latency.
void BM_AcceleratorParallelOut(benchmark::State& state) {
  const nn::Network model = nn::make_lenet();
  auto weights = nn::initialize_weights(model, 1).value();
  hw::HwNetwork hw_net = hw::with_default_annotations(model);
  for (std::size_t i = 1; i < hw_net.hw.layers.size(); ++i) {
    hw_net.hw.layers[i].parallel_out = static_cast<std::size_t>(state.range(0));
  }
  auto plan = hw::plan_accelerator(hw_net).value();
  auto executor =
      dataflow::AcceleratorExecutor::create(plan, std::move(weights)).value();
  Rng rng(2);
  const Shape input_shape = model.input_shape().value();
  std::vector<Tensor> batch;
  for (int i = 0; i < 8; ++i) {
    Tensor image(input_shape);
    for (float& v : image.data()) {
      v = rng.uniform(-1.0F, 1.0F);
    }
    batch.push_back(std::move(image));
  }
  if (!executor.run_batch(batch).is_ok()) {
    state.SkipWithError("warm-up failed");
  }
  for (auto _ : state) {
    auto outputs = executor.run_batch(batch);
    if (!outputs.is_ok()) {
      state.SkipWithError("run failed");
    }
    benchmark::DoNotOptimize(outputs);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(batch.size()));
}
BENCHMARK(BM_AcceleratorParallelOut)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

/// Steady-state LeNet serving per numeric datapath (Arg: 0 = float32,
/// 1 = fixed16, 2 = fixed8). The fixed designs run the integer MAC
/// microkernels plus per-blob dynamic requantization and the per-edge
/// format side-channels — this measures that host-side overhead against
/// the float datapath on the identical topology.
void BM_AcceleratorDataType(benchmark::State& state) {
  const nn::DataType type = state.range(0) == 0   ? nn::DataType::kFloat32
                            : state.range(0) == 1 ? nn::DataType::kFixed16
                                                  : nn::DataType::kFixed8;
  const nn::Network model = nn::make_lenet();
  auto weights = nn::initialize_weights(model, 1).value();
  hw::HwNetwork hw_net = hw::with_default_annotations(model);
  hw_net.hw.data_type = type;
  auto plan = hw::plan_accelerator(hw_net).value();
  auto executor =
      dataflow::AcceleratorExecutor::create(plan, std::move(weights)).value();
  Rng rng(2);
  const Shape input_shape = model.input_shape().value();
  std::vector<Tensor> batch;
  for (int i = 0; i < 8; ++i) {
    Tensor image(input_shape);
    for (float& v : image.data()) {
      v = rng.uniform(-1.0F, 1.0F);
    }
    batch.push_back(std::move(image));
  }
  if (!executor.run_batch(batch).is_ok()) {
    state.SkipWithError("warm-up failed");
  }
  for (auto _ : state) {
    auto outputs = executor.run_batch(batch);
    if (!outputs.is_ok()) {
      state.SkipWithError("run failed");
    }
    benchmark::DoNotOptimize(outputs);
  }
  state.SetLabel(std::string(nn::to_string(type)));
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(batch.size()));
}
BENCHMARK(BM_AcceleratorDataType)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Unit(benchmark::kMillisecond);

/// Multi-instance serving: a LeNet batch of 64 sharded dynamically across
/// N replicated accelerator instances (Arg = N) by the ExecutorPool. On a
/// single hardware thread the counts should roughly tie (the replicas time-
/// slice one core); with cores to spare, wall-clock throughput approaches
/// N-fold. The label records the host's hardware threads so checked-in
/// results stay interpretable.
void BM_AcceleratorInstances(benchmark::State& state) {
  const std::size_t instances = static_cast<std::size_t>(state.range(0));
  const nn::Network model = nn::make_lenet();
  auto weights = nn::initialize_weights(model, 1).value();
  auto plan =
      hw::plan_accelerator(hw::with_default_annotations(model)).value();
  auto pool =
      dataflow::ExecutorPool::create(plan, std::move(weights), instances)
          .value();
  Rng rng(2);
  const Shape input_shape = model.input_shape().value();
  std::vector<Tensor> batch;
  for (int i = 0; i < 64; ++i) {
    Tensor image(input_shape);
    for (float& v : image.data()) {
      v = rng.uniform(-1.0F, 1.0F);
    }
    batch.push_back(std::move(image));
  }
  // Warm-up: every instance compiles its design on first use, and with a
  // dynamic queue an instance might see its first chunk mid-measurement.
  if (!pool.run_batch(batch).is_ok()) {
    state.SkipWithError("warm-up failed");
  }
  for (auto _ : state) {
    auto outputs = pool.run_batch(batch);
    if (!outputs.is_ok()) {
      state.SkipWithError("run failed");
    }
    benchmark::DoNotOptimize(outputs);
  }
  state.SetLabel("host_threads=" +
                 std::to_string(std::thread::hardware_concurrency()));
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(batch.size()));
}
BENCHMARK(BM_AcceleratorInstances)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    // At ~90 ms per 64-image iteration the default 0.5 s budget averages
    // only a handful of iterations; a longer window keeps host-share drift
    // from dominating the instance-count comparison.
    ->MinTime(4.0)
    ->Unit(benchmark::kMillisecond);

void BM_PipelineSimulator(benchmark::State& state) {
  const std::size_t stages = static_cast<std::size_t>(state.range(0));
  std::vector<sim::StageSpec> specs;
  for (std::size_t s = 0; s < stages; ++s) {
    specs.push_back({"s" + std::to_string(s), 100 + s * 17, 1});
  }
  for (auto _ : state) {
    auto run = sim::simulate_pipeline(specs, 256);
    benchmark::DoNotOptimize(run);
  }
  state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_PipelineSimulator)->Arg(6)->Arg(18);

}  // namespace

int main(int argc, char** argv) {
  condor::log::set_level(condor::log::Level::kError);
  benchmark::Initialize(&argc, argv);
  // Recorded next to host_threads so checked-in BENCH json stays
  // interpretable: which microkernel dispatch level the run used and what
  // the host CPU offered (see nn/kernels_simd.hpp; CONDOR_SIMD overrides).
  benchmark::AddCustomContext(
      "simd_level", std::string(condor::nn::kernels::to_string(
                        condor::nn::kernels::active_simd_level())));
  benchmark::AddCustomContext("cpu_features",
                              condor::nn::kernels::cpu_feature_string());
  benchmark::AddCustomContext(
      "host_threads", std::to_string(std::thread::hardware_concurrency()));
  // The cooperative scheduler is the only scheduler; recorded so older
  // BENCH json rows (which carried a scheduler switch) stay comparable.
  benchmark::AddCustomContext("scheduler", "coop");
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

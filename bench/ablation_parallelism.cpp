// Ablation A3: inter-layer parallelism sweep (parallel feature maps).
//
// Sweeps parallel_in x parallel_out on the bottleneck convolution of the
// LeNet features stage (conv2) and on a VGG-16 block, reporting how
// throughput, DSP cost and the achieved clock move — the three-way tension
// the automated DSE navigates. Also prints the DSE trajectory endpoint for
// reference.
#include <cstdio>

#include "common/logging.hpp"
#include "hw/dse.hpp"
#include "nn/models.hpp"

namespace {

using namespace condor;

void sweep(const nn::Network& features, std::size_t layer_index,
           const std::vector<std::pair<std::size_t, std::size_t>>& degrees) {
  std::printf("  %-10s %10s %10s %8s %10s %14s\n", "Pin x Pout", "DSP", "LUT",
              "MHz", "GFLOPS", "bottleneck");
  for (const auto& [pin, pout] : degrees) {
    hw::HwNetwork net = hw::with_default_annotations(features, "aws-f1", 250.0);
    net.hw.layers[layer_index].parallel_in = pin;
    net.hw.layers[layer_index].parallel_out = pout;
    if (!net.validate().is_ok()) {
      continue;
    }
    auto point = hw::evaluate_design_point(net);
    if (!point.is_ok()) {
      std::printf("  %3zu x %-4zu  -> %s\n", pin, pout,
                  point.status().to_string().c_str());
      continue;
    }
    // Name of the PE with the largest interval.
    const hw::PeTiming* bottleneck = &point.value().performance.pes.front();
    for (const hw::PeTiming& pe : point.value().performance.pes) {
      if (pe.interval() + pe.fill_latency >
          bottleneck->interval() + bottleneck->fill_latency) {
        bottleneck = &pe;
      }
    }
    std::printf("  %3zu x %-4zu %10llu %10llu %8.0f %10.2f %14s\n", pin, pout,
                (unsigned long long)point.value().resources.total.dsps,
                (unsigned long long)point.value().resources.total.luts,
                point.value().achieved_mhz, point.value().gflops(),
                bottleneck->name.c_str());
  }
}

}  // namespace

int main() {
  log::set_level(log::Level::kError);
  std::printf("== Ablation A3: inter-layer parallelism sweep ==\n\n");

  {
    const nn::Network features = nn::make_lenet().feature_extraction_prefix();
    std::printf("LeNet features, sweeping conv2 (20 in-maps, 50 out-maps):\n");
    sweep(features, /*conv2=*/3,
          {{1, 1}, {1, 2}, {1, 5}, {1, 10}, {2, 5}, {4, 5}, {2, 10}, {4, 10},
           {5, 10}, {10, 10}, {20, 25}});
    std::printf("\n");
  }
  {
    const nn::Network features = nn::make_vgg16().feature_extraction_prefix();
    std::printf("VGG-16 features, sweeping conv1_2 (64 in, 64 out):\n");
    sweep(features, /*conv1_2=*/2,
          {{1, 1}, {1, 2}, {1, 4}, {2, 2}, {2, 4}, {4, 4}, {4, 8}});
    std::printf("\n");
  }
  {
    std::printf("automated DSE endpoints for comparison:\n");
    for (const char* name : {"tc1", "lenet"}) {
      const nn::Network features =
          nn::make_model(name).value().feature_extraction_prefix();
      auto result =
          hw::explore(hw::with_default_annotations(features, "aws-f1", 250.0));
      if (result.is_ok()) {
        std::printf("  %-8s %.2f GFLOPS @ %.0f MHz after %zu evaluated points\n",
                    name, result.value().best.gflops(),
                    result.value().best.achieved_mhz,
                    result.value().points_evaluated);
      }
    }
  }
  std::printf(
      "\nshape: throughput rises with Pin*Pout until DSP budget or the "
      "achieved clock caps it; the bottleneck migrates between layers.\n");
  return 0;
}

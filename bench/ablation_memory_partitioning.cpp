// Ablation A1: on-chip buffering strategy for the sliding-window reuse.
//
// Compares the paper's non-uniform memory partitioning (Cong et al. DAC'14:
// one FIFO per inter-access gap, sized by spatial distance) against the two
// classical alternatives for every feature-extraction layer of TC1, LeNet
// and VGG-16:
//
//   full-map      — buffer the whole input feature map on chip (BRAM-backed
//                   double buffer), the naive dataflow staging;
//   line-buffer   — a monolithic (Kh-1) full-line + Kw register buffer, all
//                   of it in BRAM with one memory port per access resolved
//                   by replication (the standard systolic approach);
//   non-uniform   — the paper's scheme; small inter-access FIFOs map to
//                   LUTRAM/SRLs, only cross-row gaps may touch BRAM.
//
// Expected shape: non-uniform <= line-buffer << full-map, with the gap
// growing with map size (VGG's 224-wide maps).
#include <cstdio>

#include "common/logging.hpp"
#include "hw/accel_plan.hpp"
#include "hw/resource_model.hpp"
#include "nn/models.hpp"

namespace {

using namespace condor;

struct BufferCost {
  std::uint64_t bram = 0;
  std::uint64_t luts = 0;
};

/// Paper scheme: cost the actual FIFO chain.
BufferCost nonuniform_cost(std::size_t kh, std::size_t kw, std::size_t map_w,
                           const hw::CostModel& cost) {
  BufferCost total;
  for (const hw::FilterNode& node : hw::plan_filter_chain(kh, kw, map_w)) {
    const hw::Resources r = hw::fifo_cost(node.fifo_to_next_depth, cost);
    total.bram += r.bram36;
    total.luts += r.luts;
  }
  return total;
}

/// Monolithic line buffer: (Kh-1) * map_w + Kw elements in BRAM, replicated
/// per row for port bandwidth (Kh read ports on dual-ported BRAM).
BufferCost linebuffer_cost(std::size_t kh, std::size_t kw, std::size_t map_w,
                           const hw::CostModel& cost) {
  const std::size_t elements = (kh - 1) * map_w + kw;
  const std::uint64_t base =
      (elements * sizeof(float) + cost.bram_bytes - 1) / cost.bram_bytes;
  BufferCost total;
  total.bram = std::max<std::uint64_t>(base, 1) * ((kh + 1) / 2);
  total.luts = 220;  // address generation
  return total;
}

/// Whole-map ping-pong staging.
BufferCost fullmap_cost(std::size_t map_h, std::size_t map_w,
                        const hw::CostModel& cost) {
  const std::size_t elements = 2 * map_h * map_w;
  BufferCost total;
  total.bram = std::max<std::uint64_t>(
      (elements * sizeof(float) + cost.bram_bytes - 1) / cost.bram_bytes, 1);
  total.luts = 180;
  return total;
}

}  // namespace

int main() {
  log::set_level(log::Level::kError);
  const hw::CostModel cost;

  std::printf("== Ablation A1: reuse-buffer strategy, per conv/pool layer ==\n");
  std::printf("(BRAM36 blocks; LUTs for the non-uniform FIFO chain)\n\n");
  std::printf("%-10s %-10s %8s %9s %10s %12s %12s %12s\n", "network", "layer",
              "window", "map", "buffered", "full-map", "line-buffer",
              "non-uniform");

  for (const nn::Network& model :
       {nn::make_tc1(), nn::make_lenet(), nn::make_vgg16()}) {
    const nn::Network features = model.feature_extraction_prefix();
    auto shapes = features.infer_shapes().value();
    std::uint64_t total_full = 0;
    std::uint64_t total_line = 0;
    std::uint64_t total_nonuniform_bram = 0;
    std::uint64_t total_nonuniform_luts = 0;
    for (std::size_t i = 1; i < features.layer_count(); ++i) {
      const nn::LayerSpec& layer = features.layers()[i];
      if (!layer.is_feature_extraction()) {
        continue;
      }
      const std::size_t map_h = shapes[i].input[1] + 2 * layer.pad;
      const std::size_t map_w = shapes[i].input[2] + 2 * layer.pad;
      const BufferCost full = fullmap_cost(map_h, map_w, cost);
      const BufferCost line =
          linebuffer_cost(layer.kernel_h, layer.kernel_w, map_w, cost);
      const BufferCost nonuniform =
          nonuniform_cost(layer.kernel_h, layer.kernel_w, map_w, cost);
      total_full += full.bram;
      total_line += line.bram;
      total_nonuniform_bram += nonuniform.bram;
      total_nonuniform_luts += nonuniform.luts;
      const std::size_t buffered =
          (layer.kernel_h - 1) * map_w + layer.kernel_w - 1;
      std::printf("%-10s %-10s %4zux%-3zu %4zux%-4zu %10zu %10llub %10llub %6llub+%llul\n",
                  model.name().c_str(), layer.name.c_str(), layer.kernel_h,
                  layer.kernel_w, map_h, map_w, buffered,
                  (unsigned long long)full.bram, (unsigned long long)line.bram,
                  (unsigned long long)nonuniform.bram,
                  (unsigned long long)nonuniform.luts);
    }
    std::printf("%-10s %-10s %38s %10llub %10llub %6llub+%llul\n\n",
                model.name().c_str(), "TOTAL", "",
                (unsigned long long)total_full, (unsigned long long)total_line,
                (unsigned long long)total_nonuniform_bram,
                (unsigned long long)total_nonuniform_luts);
    if (!(total_nonuniform_bram <= total_line &&
          total_nonuniform_bram <= total_full)) {
      std::printf("  shape FAIL for %s\n", model.name().c_str());
    }
  }
  std::printf(
      "shape: non-uniform partitioning never exceeds either alternative in\n"
      "BRAM (its small inter-access FIFOs live in LUTRAM); the full-map\n"
      "gap explodes with map size (VGG-16's 224-wide maps: ~90 BRAM/layer\n"
      "vs 0-2). For tiny maps a monolithic line buffer wastes whole BRAM\n"
      "blocks per layer where the FIFO chain pays a few dozen LUTs.\n");
  return 0;
}

#include "common/strings.hpp"

#include <cstdarg>
#include <cstdint>
#include <cstdio>

namespace condor::strings {

namespace {
constexpr bool is_space(char c) noexcept {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' || c == '\v';
}
}  // namespace

std::string_view trim(std::string_view text) noexcept {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && is_space(text[begin])) {
    ++begin;
  }
  while (end > begin && is_space(text[end - 1])) {
    --end;
  }
  return text.substr(begin, end - begin);
}

std::vector<std::string_view> split(std::string_view text, char sep) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      out.push_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

bool starts_with(std::string_view text, std::string_view prefix) noexcept {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view text, std::string_view suffix) noexcept {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) {
      out += sep;
    }
    out += parts[i];
  }
  return out;
}

std::string to_lower(std::string_view text) {
  std::string out(text);
  for (char& c : out) {
    if (c >= 'A' && c <= 'Z') {
      c = static_cast<char>(c - 'A' + 'a');
    }
  }
  return out;
}

std::string format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string human_bytes(std::uint64_t bytes) {
  constexpr const char* kSuffixes[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  double value = static_cast<double>(bytes);
  int suffix = 0;
  while (value >= 1024.0 && suffix < 4) {
    value /= 1024.0;
    ++suffix;
  }
  if (suffix == 0) {
    return format("%llu B", static_cast<unsigned long long>(bytes));
  }
  return format("%.1f %s", value, kSuffixes[suffix]);
}

std::string fixed(double value, int digits) {
  return format("%.*f", digits, value);
}

}  // namespace condor::strings

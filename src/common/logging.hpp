// Minimal leveled logger for the framework.
//
// Tools like the Condor flow driver narrate their steps (mirroring the
// console output of the original Python framework); tests set the level to
// kError to stay quiet. Thread-safe: a single mutex serializes sink writes.
#pragma once

#include <mutex>
#include <sstream>
#include <string>
#include <string_view>

namespace condor::log {

enum class Level { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kOff = 4 };

/// Global log threshold; messages below it are discarded.
void set_level(Level level) noexcept;
Level level() noexcept;

/// Emits one formatted line ("[LEVEL] tag: message") to stderr if `level`
/// passes the threshold.
void write(Level level, std::string_view tag, std::string_view message);

/// RAII line builder: condor::log::Line(Level::kInfo, "dse") << "explored "
/// << n << " points";  The line is emitted on destruction.
class Line {
 public:
  Line(Level level, std::string_view tag) : level_(level), tag_(tag) {}
  Line(const Line&) = delete;
  Line& operator=(const Line&) = delete;
  ~Line() { write(level_, tag_, stream_.str()); }

  template <typename T>
  Line& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  Level level_;
  std::string tag_;
  std::ostringstream stream_;
};

}  // namespace condor::log

#define CONDOR_LOG_DEBUG(tag) ::condor::log::Line(::condor::log::Level::kDebug, (tag))
#define CONDOR_LOG_INFO(tag) ::condor::log::Line(::condor::log::Level::kInfo, (tag))
#define CONDOR_LOG_WARN(tag) ::condor::log::Line(::condor::log::Level::kWarning, (tag))
#define CONDOR_LOG_ERROR(tag) ::condor::log::Line(::condor::log::Level::kError, (tag))

// Byte-buffer reader/writer used by the binary codecs (protobuf wire format,
// caffemodel fixtures, weight files, the xclbin-like artifact container).
//
// All multi-byte integers are little-endian on the wire, matching both the
// protobuf fixed-width encoding and the Xilinx container conventions.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "common/status.hpp"

namespace condor {

/// Append-only byte sink.
class ByteWriter {
 public:
  void u8(std::uint8_t value) { buffer_.push_back(std::byte{value}); }

  void u32le(std::uint32_t value) {
    for (int i = 0; i < 4; ++i) {
      u8(static_cast<std::uint8_t>(value >> (8 * i)));
    }
  }

  void u64le(std::uint64_t value) {
    for (int i = 0; i < 8; ++i) {
      u8(static_cast<std::uint8_t>(value >> (8 * i)));
    }
  }

  void f32le(float value) {
    std::uint32_t bits = 0;
    std::memcpy(&bits, &value, sizeof(bits));
    u32le(bits);
  }

  void f64le(double value) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &value, sizeof(bits));
    u64le(bits);
  }

  void bytes(std::span<const std::byte> data) {
    buffer_.insert(buffer_.end(), data.begin(), data.end());
  }

  void bytes(const void* data, std::size_t size) {
    const auto* begin = static_cast<const std::byte*>(data);
    buffer_.insert(buffer_.end(), begin, begin + size);
  }

  void string_bytes(std::string_view text) { bytes(text.data(), text.size()); }

  [[nodiscard]] std::size_t size() const noexcept { return buffer_.size(); }
  [[nodiscard]] std::span<const std::byte> view() const noexcept { return buffer_; }
  [[nodiscard]] std::vector<std::byte> take() && { return std::move(buffer_); }

  /// Overwrites 4 bytes at `offset` (for back-patching section sizes).
  Status patch_u32le(std::size_t offset, std::uint32_t value);

 private:
  std::vector<std::byte> buffer_;
};

/// Bounds-checked sequential reader over a byte span.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::byte> data) noexcept : data_(data) {}

  [[nodiscard]] std::size_t position() const noexcept { return pos_; }
  [[nodiscard]] std::size_t remaining() const noexcept { return data_.size() - pos_; }
  [[nodiscard]] bool at_end() const noexcept { return pos_ == data_.size(); }

  Result<std::uint8_t> u8();
  Result<std::uint32_t> u32le();
  Result<std::uint64_t> u64le();
  Result<float> f32le();
  Result<double> f64le();

  /// Returns a view over the next `size` bytes and advances.
  Result<std::span<const std::byte>> bytes(std::size_t size);

  /// Reads `size` bytes into an owned string (for names/labels).
  Result<std::string> string_bytes(std::size_t size);

  /// Skips `size` bytes.
  Status skip(std::size_t size);

 private:
  std::span<const std::byte> data_;
  std::size_t pos_ = 0;
};

/// CRC-32 (IEEE 802.3, reflected) used to checksum artifact sections.
std::uint32_t crc32(std::span<const std::byte> data) noexcept;

/// Whole-file helpers (binary).
Status write_file(const std::string& path, std::span<const std::byte> data);
Result<std::vector<std::byte>> read_file(const std::string& path);
Status write_text_file(const std::string& path, std::string_view text);
Result<std::string> read_text_file(const std::string& path);

}  // namespace condor

// Test-injectable heap-allocation probe for steady-state guarantees.
//
// The dataflow modules promise a zero-allocation steady state: after a
// warmup batch has grown every scratch buffer and weight cache to its
// high-water size, later batches must not touch the heap inside the module
// bodies. That promise is enforced by steady_state_alloc_test, which
// overrides the global operator new/delete in its own binary and forwards
// every allocation to AllocProbe::notify().
//
// Counting is doubly gated so production builds and unrelated test threads
// are unaffected:
//   - each instrumented module body holds an AllocProbe::Scope (a
//     thread-local RAII depth marker — only allocations made while a Scope
//     is alive on the calling thread are considered), and
//   - a test arms a global atomic counter via AllocProbe::arm; with no
//     counter armed notify() is a cheap early-out.
// Without the operator-new override (every binary except the alloc test)
// notify() is never called and a Scope is two thread-local increments.
#pragma once

#include <atomic>
#include <cstddef>

namespace condor::common {

class AllocProbe {
 public:
  /// Marks the current thread as "inside an instrumented module body" for
  /// the lifetime of the object. Nestable.
  class Scope {
   public:
    Scope() noexcept { ++depth(); }
    ~Scope() { --depth(); }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;
  };

  /// Suspends counting on the current thread for the lifetime of the
  /// object. Used around the few intentionally-allocating operations inside
  /// an instrumented body — the thread-pool fork of the intra-layer compute
  /// lanes (type-erased task plumbing owned by the pool, not module
  /// scratch) — so the probe measures exactly the module's own steady-state
  /// promise. Nestable.
  class Pause {
   public:
    Pause() noexcept { ++paused(); }
    ~Pause() { --paused(); }
    Pause(const Pause&) = delete;
    Pause& operator=(const Pause&) = delete;
  };

  /// Arms `counter` as the global allocation sink (nullptr disarms).
  /// Returns the previously armed counter so tests can restore it.
  static std::atomic<std::size_t>* arm(
      std::atomic<std::size_t>* counter) noexcept;

  /// Records one allocation event if the calling thread is inside a Scope
  /// and a counter is armed. Called by the test binary's operator new.
  static void notify() noexcept;

 private:
  static int& depth() noexcept;
  static int& paused() noexcept;
};

}  // namespace condor::common

// Deterministic pseudo-random number generation (xoshiro256**).
//
// All randomness in the reproduction (weight initialization, synthetic
// datasets, workload generators) flows through this generator so that every
// test, example and benchmark is bit-reproducible across runs and platforms.
#pragma once

#include <cstdint>
#include <limits>

namespace condor {

/// xoshiro256** by Blackman & Vigna: fast, high-quality, tiny state.
class Rng {
 public:
  /// Seeds the four 64-bit words of state from a single seed via splitmix64,
  /// as recommended by the xoshiro authors.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) noexcept {
    std::uint64_t x = seed;
    for (auto& word : state_) {
      // splitmix64 step
      x += 0x9E3779B97F4A7C15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      word = z ^ (z >> 31);
    }
  }

  /// Next 64 uniformly distributed bits.
  std::uint64_t next_u64() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double next_double() noexcept {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform float in [lo, hi).
  float uniform(float lo, float hi) noexcept {
    return lo + static_cast<float>(next_double()) * (hi - lo);
  }

  /// Uniform integer in [0, bound) via Lemire's multiply-shift reduction.
  std::uint64_t bounded(std::uint64_t bound) noexcept {
    if (bound == 0) {
      return 0;
    }
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next_u64()) * bound) >> 64);
  }

  /// Approximate standard normal via the sum of 12 uniforms (Irwin-Hall),
  /// adequate for weight initialization and noise injection.
  float normal(float mean = 0.0F, float stddev = 1.0F) noexcept {
    float acc = 0.0F;
    for (int i = 0; i < 12; ++i) {
      acc += static_cast<float>(next_double());
    }
    return mean + (acc - 6.0F) * stddev;
  }

  // UniformRandomBitGenerator interface, so Rng works with <algorithm>.
  using result_type = std::uint64_t;
  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }
  result_type operator()() noexcept { return next_u64(); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace condor

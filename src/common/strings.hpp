// Small string helpers shared by the parsers (prototxt, JSON) and report
// printers. Kept deliberately allocation-light: views in, owned strings out
// only where ownership is needed.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace condor::strings {

/// Removes leading/trailing ASCII whitespace.
std::string_view trim(std::string_view text) noexcept;

/// Splits on `sep`, keeping empty fields.
std::vector<std::string_view> split(std::string_view text, char sep);

/// True if `text` starts with / ends with the given affix.
bool starts_with(std::string_view text, std::string_view prefix) noexcept;
bool ends_with(std::string_view text, std::string_view suffix) noexcept;

/// Joins `parts` with `sep` in between.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// Lowercases ASCII characters.
std::string to_lower(std::string_view text);

/// printf-style formatting into a std::string.
[[gnu::format(printf, 1, 2)]] std::string format(const char* fmt, ...);

/// Renders a byte count with binary suffix ("1.5 KiB", "3.2 MiB").
std::string human_bytes(std::uint64_t bytes);

/// Fixed-point decimal rendering with `digits` fractional digits,
/// used by the table printers so bench output matches the paper layout.
std::string fixed(double value, int digits);

}  // namespace condor::strings

// Fixed-size worker pool used by the golden CPU reference (batch inference)
// and the benchmark drivers. Tasks are type-erased void() callables; the pool
// joins on destruction (Core Guidelines CP: no detached threads, async work
// joined before the data it touches dies).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace condor {

/// The host's worker-thread budget: the `CONDOR_THREADS` environment
/// variable when set to a positive integer, otherwise
/// `hardware_concurrency()` (at least 1). Read once and cached — the
/// override exists so deployments can bound total worker growth when many
/// executor instances share one host (each instance's *correctness* floor,
/// one worker per KPN module, is never subject to the budget; only the
/// perf-optional lane headroom is).
std::size_t thread_budget() noexcept;

class ThreadPool {
 public:
  /// `workers == 0` means thread_budget() (CONDOR_THREADS override or
  /// hardware_concurrency, at least 1).
  explicit ThreadPool(std::size_t workers = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; wake exactly one worker.
  void submit(std::function<void()> task);

  /// Grows the pool to at least `workers` threads (never shrinks). Safe to
  /// call concurrently with submit() and with other ensure_workers() calls:
  /// executor instances share one pool and size it independently.
  void ensure_workers(std::size_t workers);

  /// Blocks until every submitted task has finished executing.
  void wait_idle();

  /// Convenience: runs fn(i) for i in [0, count) across the pool and waits.
  void parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn);

  /// Fork-join over [0, count) that is safe to call from *inside* a pool
  /// task (unlike parallel_for, whose wait_idle() would wait on the calling
  /// task itself). The caller participates: shards are handed out through a
  /// shared counter that the calling thread also drains, so if every worker
  /// is busy (e.g. pinned on blocked dataflow modules) the caller simply
  /// runs all shards itself — helpers that arrive late find the counter
  /// exhausted and return. Completion is tracked by a call-local latch, not
  /// the pool-global idle state. Used for intra-module compute lanes
  /// (parallel_out) and reference-engine output-channel sharding.
  void parallel_shards(std::size_t count,
                       const std::function<void(std::size_t)>& fn);

  [[nodiscard]] std::size_t worker_count() const noexcept {
    return worker_count_.load(std::memory_order_relaxed);
  }

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
  std::vector<std::thread> threads_;     ///< guarded by mutex_
  std::atomic<std::size_t> worker_count_{0};
};

}  // namespace condor

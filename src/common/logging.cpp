#include "common/logging.hpp"

#include <atomic>
#include <cstdio>

namespace condor::log {
namespace {

std::atomic<Level> g_level{Level::kWarning};
std::mutex g_sink_mutex;

constexpr std::string_view level_name(Level level) noexcept {
  switch (level) {
    case Level::kDebug:
      return "DEBUG";
    case Level::kInfo:
      return "INFO";
    case Level::kWarning:
      return "WARN";
    case Level::kError:
      return "ERROR";
    case Level::kOff:
      return "OFF";
  }
  return "?";
}

}  // namespace

void set_level(Level level) noexcept { g_level.store(level, std::memory_order_relaxed); }

Level level() noexcept { return g_level.load(std::memory_order_relaxed); }

void write(Level msg_level, std::string_view tag, std::string_view message) {
  if (msg_level < level()) {
    return;
  }
  std::lock_guard<std::mutex> lock(g_sink_mutex);
  std::fprintf(stderr, "[%.*s] %.*s: %.*s\n",
               static_cast<int>(level_name(msg_level).size()), level_name(msg_level).data(),
               static_cast<int>(tag.size()), tag.data(),
               static_cast<int>(message.size()), message.data());
}

}  // namespace condor::log

// Lightweight status / result types used across the Condor framework.
//
// The framework prefers recoverable error reporting (bad user input, missing
// files, unsynthesizable networks) over exceptions on hot paths. `Status`
// carries an error code plus a human-readable message; `Result<T>` couples a
// Status with a value. Both are cheap to move and copy-on-error only.
#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace condor {

/// Broad error categories. Messages carry the detail; codes drive control
/// flow (e.g. the DSE treats kUnsynthesizable differently from kInvalidInput).
enum class StatusCode {
  kOk = 0,
  kInvalidInput,     ///< malformed user input (prototxt, JSON, weights)
  kNotFound,         ///< missing file / object / layer reference
  kUnsynthesizable,  ///< design does not fit the selected board
  kUnsupported,      ///< valid input, feature not implemented by methodology
  kInternal,         ///< framework invariant violated
  kUnavailable,      ///< transient: cloud service not ready (e.g. AFI pending)
};

/// Returns a stable lowercase identifier for a status code ("ok",
/// "invalid-input", ...). Useful in logs and test assertions.
std::string_view to_string(StatusCode code) noexcept;

/// A success-or-error value. Default-constructed Status is OK.
class [[nodiscard]] Status {
 public:
  Status() noexcept = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {
    assert(code != StatusCode::kOk && "use Status::ok() for success");
  }

  static Status ok() noexcept { return Status(); }

  [[nodiscard]] bool is_ok() const noexcept { return code_ == StatusCode::kOk; }
  explicit operator bool() const noexcept { return is_ok(); }

  [[nodiscard]] StatusCode code() const noexcept { return code_; }
  [[nodiscard]] const std::string& message() const noexcept { return message_; }

  /// "ok" or "<code>: <message>".
  [[nodiscard]] std::string to_string() const;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

inline Status invalid_input(std::string message) {
  return {StatusCode::kInvalidInput, std::move(message)};
}
inline Status not_found(std::string message) {
  return {StatusCode::kNotFound, std::move(message)};
}
inline Status unsynthesizable(std::string message) {
  return {StatusCode::kUnsynthesizable, std::move(message)};
}
inline Status unsupported(std::string message) {
  return {StatusCode::kUnsupported, std::move(message)};
}
inline Status internal_error(std::string message) {
  return {StatusCode::kInternal, std::move(message)};
}
inline Status unavailable(std::string message) {
  return {StatusCode::kUnavailable, std::move(message)};
}

/// Value-or-error. Accessing value() on an error result is a programming
/// error (asserted in debug builds).
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.is_ok() && "a Result built from Status must be an error");
  }

  [[nodiscard]] bool is_ok() const noexcept { return status_.is_ok(); }
  explicit operator bool() const noexcept { return is_ok(); }

  [[nodiscard]] const Status& status() const noexcept { return status_; }

  [[nodiscard]] T& value() & {
    assert(is_ok());
    return *value_;
  }
  [[nodiscard]] const T& value() const& {
    assert(is_ok());
    return *value_;
  }
  [[nodiscard]] T&& value() && {
    assert(is_ok());
    return std::move(*value_);
  }

  [[nodiscard]] T value_or(T fallback) const& {
    return is_ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagate an error Status from an expression that yields Status.
#define CONDOR_RETURN_IF_ERROR(expr)                  \
  do {                                                \
    ::condor::Status status_macro_tmp_ = (expr);      \
    if (!status_macro_tmp_.is_ok()) {                 \
      return status_macro_tmp_;                       \
    }                                                 \
  } while (false)

/// Bind `lhs` to the value of a Result-yielding expression or propagate its
/// error. Usage: CONDOR_ASSIGN_OR_RETURN(auto net, parse_network(text));
#define CONDOR_ASSIGN_OR_RETURN(lhs, expr)            \
  CONDOR_ASSIGN_OR_RETURN_IMPL_(                      \
      CONDOR_MACRO_CONCAT_(result_tmp_, __LINE__), lhs, expr)

#define CONDOR_MACRO_CONCAT_INNER_(a, b) a##b
#define CONDOR_MACRO_CONCAT_(a, b) CONDOR_MACRO_CONCAT_INNER_(a, b)
#define CONDOR_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                  \
  if (!tmp.is_ok()) {                                 \
    return tmp.status();                              \
  }                                                   \
  lhs = std::move(tmp).value()

}  // namespace condor

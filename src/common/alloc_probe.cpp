#include "common/alloc_probe.hpp"

namespace condor::common {
namespace {

std::atomic<std::atomic<std::size_t>*> g_counter{nullptr};

}  // namespace

int& AllocProbe::depth() noexcept {
  thread_local int t_depth = 0;
  return t_depth;
}

int& AllocProbe::paused() noexcept {
  thread_local int t_paused = 0;
  return t_paused;
}

std::atomic<std::size_t>* AllocProbe::arm(
    std::atomic<std::size_t>* counter) noexcept {
  return g_counter.exchange(counter, std::memory_order_acq_rel);
}

void AllocProbe::notify() noexcept {
  std::atomic<std::size_t>* counter =
      g_counter.load(std::memory_order_acquire);
  if (counter == nullptr || depth() <= 0 || paused() > 0) {
    return;
  }
  counter->fetch_add(1, std::memory_order_relaxed);
}

}  // namespace condor::common

#include "common/status.hpp"

namespace condor {

std::string_view to_string(StatusCode code) noexcept {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidInput:
      return "invalid-input";
    case StatusCode::kNotFound:
      return "not-found";
    case StatusCode::kUnsynthesizable:
      return "unsynthesizable";
    case StatusCode::kUnsupported:
      return "unsupported";
    case StatusCode::kInternal:
      return "internal";
    case StatusCode::kUnavailable:
      return "unavailable";
  }
  return "unknown";
}

std::string Status::to_string() const {
  if (is_ok()) {
    return "ok";
  }
  std::string out(condor::to_string(code_));
  out += ": ";
  out += message_;
  return out;
}

}  // namespace condor

#include "common/byte_io.hpp"

#include <array>
#include <cstdio>

#include "common/strings.hpp"

namespace condor {

Status ByteWriter::patch_u32le(std::size_t offset, std::uint32_t value) {
  if (offset + 4 > buffer_.size()) {
    return internal_error("patch_u32le out of range");
  }
  for (int i = 0; i < 4; ++i) {
    buffer_[offset + static_cast<std::size_t>(i)] =
        std::byte{static_cast<std::uint8_t>(value >> (8 * i))};
  }
  return Status::ok();
}

Result<std::uint8_t> ByteReader::u8() {
  if (remaining() < 1) {
    return invalid_input("byte stream truncated (u8)");
  }
  return static_cast<std::uint8_t>(data_[pos_++]);
}

Result<std::uint32_t> ByteReader::u32le() {
  if (remaining() < 4) {
    return invalid_input("byte stream truncated (u32)");
  }
  std::uint32_t value = 0;
  for (int i = 0; i < 4; ++i) {
    value |= static_cast<std::uint32_t>(data_[pos_ + static_cast<std::size_t>(i)]) << (8 * i);
  }
  pos_ += 4;
  return value;
}

Result<std::uint64_t> ByteReader::u64le() {
  if (remaining() < 8) {
    return invalid_input("byte stream truncated (u64)");
  }
  std::uint64_t value = 0;
  for (int i = 0; i < 8; ++i) {
    value |= static_cast<std::uint64_t>(data_[pos_ + static_cast<std::size_t>(i)]) << (8 * i);
  }
  pos_ += 8;
  return value;
}

Result<float> ByteReader::f32le() {
  CONDOR_ASSIGN_OR_RETURN(std::uint32_t bits, u32le());
  float value = 0.0F;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

Result<double> ByteReader::f64le() {
  CONDOR_ASSIGN_OR_RETURN(std::uint64_t bits, u64le());
  double value = 0.0;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

Result<std::span<const std::byte>> ByteReader::bytes(std::size_t size) {
  if (remaining() < size) {
    return invalid_input("byte stream truncated (bytes)");
  }
  auto view = data_.subspan(pos_, size);
  pos_ += size;
  return view;
}

Result<std::string> ByteReader::string_bytes(std::size_t size) {
  CONDOR_ASSIGN_OR_RETURN(auto view, bytes(size));
  return std::string(reinterpret_cast<const char*>(view.data()), view.size());
}

Status ByteReader::skip(std::size_t size) {
  if (remaining() < size) {
    return invalid_input("byte stream truncated (skip)");
  }
  pos_ += size;
  return Status::ok();
}

namespace {

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1U) != 0 ? (crc >> 1) ^ 0xEDB88320U : crc >> 1;
    }
    table[i] = crc;
  }
  return table;
}

}  // namespace

std::uint32_t crc32(std::span<const std::byte> data) noexcept {
  static const std::array<std::uint32_t, 256> kTable = make_crc_table();
  std::uint32_t crc = 0xFFFFFFFFU;
  for (std::byte b : data) {
    crc = (crc >> 8) ^ kTable[(crc ^ static_cast<std::uint32_t>(b)) & 0xFFU];
  }
  return crc ^ 0xFFFFFFFFU;
}

Status write_file(const std::string& path, std::span<const std::byte> data) {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    return not_found("cannot open for writing: " + path);
  }
  const std::size_t written = data.empty() ? 0 : std::fwrite(data.data(), 1, data.size(), file);
  std::fclose(file);
  if (written != data.size()) {
    return internal_error("short write: " + path);
  }
  return Status::ok();
}

Result<std::vector<std::byte>> read_file(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return not_found("cannot open for reading: " + path);
  }
  std::fseek(file, 0, SEEK_END);
  const long size = std::ftell(file);
  std::fseek(file, 0, SEEK_SET);
  std::vector<std::byte> data(size > 0 ? static_cast<std::size_t>(size) : 0);
  const std::size_t read = data.empty() ? 0 : std::fread(data.data(), 1, data.size(), file);
  std::fclose(file);
  if (read != data.size()) {
    return internal_error("short read: " + path);
  }
  return data;
}

Status write_text_file(const std::string& path, std::string_view text) {
  return write_file(path, std::span<const std::byte>(
                              reinterpret_cast<const std::byte*>(text.data()), text.size()));
}

Result<std::string> read_text_file(const std::string& path) {
  CONDOR_ASSIGN_OR_RETURN(auto data, read_file(path));
  return std::string(reinterpret_cast<const char*>(data.data()), data.size());
}

}  // namespace condor

#include "common/thread_pool.hpp"

#include <atomic>

namespace condor {

ThreadPool::ThreadPool(std::size_t workers) {
  if (workers == 0) {
    workers = std::thread::hardware_concurrency();
    if (workers == 0) {
      workers = 1;
    }
  }
  threads_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_available_.notify_all();
  for (std::thread& thread : threads_) {
    thread.join();
  }
}

void ThreadPool::ensure_workers(std::size_t workers) {
  // Callers grow the pool between runs, never concurrently with submit()
  // from other threads, so touching threads_ here is safe.
  while (threads_.size() < workers) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_available_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& fn) {
  if (count == 0) {
    return;
  }
  // Chunk so each worker grabs a contiguous range: predictable memory access
  // (Per.19) and one task per worker rather than one per element.
  const std::size_t chunks = std::min(count, worker_count());
  std::atomic<std::size_t> next{0};
  for (std::size_t c = 0; c < chunks; ++c) {
    submit([&next, count, &fn] {
      for (std::size_t i = next.fetch_add(1, std::memory_order_relaxed); i < count;
           i = next.fetch_add(1, std::memory_order_relaxed)) {
        fn(i);
      }
    });
  }
  wait_idle();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // stopping_ and drained
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--in_flight_ == 0) {
        all_done_.notify_all();
      }
    }
  }
}

}  // namespace condor

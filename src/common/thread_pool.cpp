#include "common/thread_pool.hpp"

#include <atomic>
#include <cstdlib>
#include <memory>

namespace condor {

std::size_t thread_budget() noexcept {
  static const std::size_t budget = [] {
    if (const char* env = std::getenv("CONDOR_THREADS"); env != nullptr) {
      char* end = nullptr;
      const unsigned long long value = std::strtoull(env, &end, 10);
      if (end != env && *end == '\0' && value > 0) {
        return static_cast<std::size_t>(value);
      }
    }
    const std::size_t hw = std::thread::hardware_concurrency();
    return hw == 0 ? std::size_t{1} : hw;
  }();
  return budget;
}

ThreadPool::ThreadPool(std::size_t workers) {
  if (workers == 0) {
    workers = thread_budget();
  }
  threads_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
  worker_count_.store(threads_.size(), std::memory_order_relaxed);
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_available_.notify_all();
  for (std::thread& thread : threads_) {
    thread.join();
  }
}

void ThreadPool::ensure_workers(std::size_t workers) {
  // Executor instances sharing one pool grow it concurrently with each
  // other and with submit(), so membership changes take the queue mutex.
  std::lock_guard<std::mutex> lock(mutex_);
  while (threads_.size() < workers) {
    threads_.emplace_back([this] { worker_loop(); });
  }
  worker_count_.store(threads_.size(), std::memory_order_relaxed);
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_available_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& fn) {
  if (count == 0) {
    return;
  }
  // Chunk so each worker grabs a contiguous range: predictable memory access
  // (Per.19) and one task per worker rather than one per element.
  const std::size_t chunks = std::min(count, worker_count());
  std::atomic<std::size_t> next{0};
  for (std::size_t c = 0; c < chunks; ++c) {
    submit([&next, count, &fn] {
      for (std::size_t i = next.fetch_add(1, std::memory_order_relaxed); i < count;
           i = next.fetch_add(1, std::memory_order_relaxed)) {
        fn(i);
      }
    });
  }
  wait_idle();
}

void ThreadPool::parallel_shards(std::size_t count,
                                 const std::function<void(std::size_t)>& fn) {
  if (count == 0) {
    return;
  }
  if (count == 1) {
    fn(0);
    return;
  }
  struct SharedState {
    std::atomic<std::size_t> next{0};
    std::size_t count = 0;
    std::function<void(std::size_t)> fn;
    std::mutex mutex;
    std::condition_variable finished;
    std::size_t done = 0;
  };
  auto state = std::make_shared<SharedState>();
  state->count = count;
  state->fn = fn;
  const auto drain = [](SharedState& s) {
    std::size_t completed = 0;
    for (std::size_t i = s.next.fetch_add(1, std::memory_order_relaxed);
         i < s.count; i = s.next.fetch_add(1, std::memory_order_relaxed)) {
      s.fn(i);
      ++completed;
    }
    if (completed > 0) {
      std::lock_guard<std::mutex> lock(s.mutex);
      s.done += completed;
      if (s.done == s.count) {
        s.finished.notify_all();
      }
    }
  };
  // Helpers are best-effort: each grabs shards until the counter runs dry.
  // The shared state is owned by shared_ptr so a helper scheduled after the
  // join completed still finds valid (exhausted) state.
  for (std::size_t h = 1; h < count; ++h) {
    submit([state, drain] { drain(*state); });
  }
  drain(*state);
  std::unique_lock<std::mutex> lock(state->mutex);
  state->finished.wait(lock, [&] { return state->done == state->count; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // stopping_ and drained
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--in_flight_ == 0) {
        all_done_.notify_all();
      }
    }
  }
}

}  // namespace condor

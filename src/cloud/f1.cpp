#include "cloud/f1.hpp"

#include <atomic>

#include "common/strings.hpp"

namespace condor::cloud {

std::size_t slot_count(F1InstanceType type) noexcept {
  switch (type) {
    case F1InstanceType::k2xlarge:
      return 1;
    case F1InstanceType::k4xlarge:
      return 2;
    case F1InstanceType::k16xlarge:
      return 8;
  }
  return 1;
}

std::string_view to_string(F1InstanceType type) noexcept {
  switch (type) {
    case F1InstanceType::k2xlarge:
      return "f1.2xlarge";
    case F1InstanceType::k4xlarge:
      return "f1.4xlarge";
    case F1InstanceType::k16xlarge:
      return "f1.16xlarge";
  }
  return "?";
}

F1Instance::F1Instance(F1InstanceType type, AfiService& afi_service)
    : type_(type), afi_service_(afi_service) {
  static std::atomic<std::uint64_t> next_id{0x0f1};
  instance_id_ = strings::format("i-%017llx",
                                 static_cast<unsigned long long>(next_id++));
  slots_.resize(slot_count(type));
}

Status F1Instance::load_afi(std::size_t slot, const std::string& afi_id) {
  if (slot >= slots_.size()) {
    return invalid_input(strings::format("instance %s has no slot %zu",
                                         instance_id_.c_str(), slot));
  }
  CONDOR_ASSIGN_OR_RETURN(auto payload, afi_service_.fetch_image_payload(afi_id));
  CONDOR_ASSIGN_OR_RETURN(runtime::Xclbin xclbin,
                          runtime::Xclbin::deserialize(payload));
  CONDOR_ASSIGN_OR_RETURN(runtime::LoadedKernel kernel,
                          runtime::LoadedKernel::from_xclbin(xclbin));
  slots_[slot].kernel =
      std::make_unique<runtime::LoadedKernel>(std::move(kernel));
  slots_[slot].loaded_agfi = afi_id;
  return Status::ok();
}

Status F1Instance::clear_slot(std::size_t slot) {
  if (slot >= slots_.size()) {
    return invalid_input("no such slot");
  }
  slots_[slot].kernel.reset();
  slots_[slot].loaded_agfi.reset();
  return Status::ok();
}

Result<std::string> F1Instance::describe_slot(std::size_t slot) const {
  if (slot >= slots_.size()) {
    return invalid_input("no such slot");
  }
  if (!slots_[slot].loaded_agfi.has_value()) {
    return strings::format("slot %zu: cleared", slot);
  }
  return strings::format("slot %zu: loaded %s (clock %.0f MHz)", slot,
                         slots_[slot].loaded_agfi->c_str(),
                         slots_[slot].kernel->clock_mhz());
}

Result<runtime::LoadedKernel*> F1Instance::slot_kernel(std::size_t slot) {
  if (slot >= slots_.size()) {
    return invalid_input("no such slot");
  }
  if (slots_[slot].kernel == nullptr) {
    return unavailable(strings::format("slot %zu has no AFI loaded", slot));
  }
  return slots_[slot].kernel.get();
}

}  // namespace condor::cloud

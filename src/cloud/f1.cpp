#include "cloud/f1.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>

#include "common/strings.hpp"
#include "dataflow/executor_pool.hpp"

namespace condor::cloud {

std::size_t slot_count(F1InstanceType type) noexcept {
  switch (type) {
    case F1InstanceType::k2xlarge:
      return 1;
    case F1InstanceType::k4xlarge:
      return 2;
    case F1InstanceType::k16xlarge:
      return 8;
  }
  return 1;
}

std::string_view to_string(F1InstanceType type) noexcept {
  switch (type) {
    case F1InstanceType::k2xlarge:
      return "f1.2xlarge";
    case F1InstanceType::k4xlarge:
      return "f1.4xlarge";
    case F1InstanceType::k16xlarge:
      return "f1.16xlarge";
  }
  return "?";
}

F1Instance::F1Instance(F1InstanceType type, AfiService& afi_service)
    : type_(type), afi_service_(afi_service) {
  static std::atomic<std::uint64_t> next_id{0x0f1};
  instance_id_ = strings::format("i-%017llx",
                                 static_cast<unsigned long long>(next_id++));
  slots_.resize(slot_count(type));
}

Status F1Instance::load_afi(std::size_t slot, const std::string& afi_id) {
  if (slot >= slots_.size()) {
    return invalid_input(strings::format("instance %s has no slot %zu",
                                         instance_id_.c_str(), slot));
  }
  CONDOR_ASSIGN_OR_RETURN(auto payload, afi_service_.fetch_image_payload(afi_id));
  CONDOR_ASSIGN_OR_RETURN(runtime::Xclbin xclbin,
                          runtime::Xclbin::deserialize(payload));
  CONDOR_ASSIGN_OR_RETURN(runtime::LoadedKernel kernel,
                          runtime::LoadedKernel::from_xclbin(xclbin));
  slots_[slot].kernel =
      std::make_unique<runtime::LoadedKernel>(std::move(kernel));
  slots_[slot].loaded_agfi = afi_id;
  return Status::ok();
}

Status F1Instance::clear_slot(std::size_t slot) {
  if (slot >= slots_.size()) {
    return invalid_input("no such slot");
  }
  slots_[slot].kernel.reset();
  slots_[slot].loaded_agfi.reset();
  return Status::ok();
}

Result<std::string> F1Instance::describe_slot(std::size_t slot) const {
  if (slot >= slots_.size()) {
    return invalid_input("no such slot");
  }
  if (!slots_[slot].loaded_agfi.has_value()) {
    return strings::format("slot %zu: cleared", slot);
  }
  return strings::format("slot %zu: loaded %s (clock %.0f MHz)", slot,
                         slots_[slot].loaded_agfi->c_str(),
                         slots_[slot].kernel->clock_mhz());
}

Result<std::vector<Tensor>> F1Instance::run_batch_sharded(
    std::span<const Tensor> inputs, std::size_t slots,
    MultiSlotRunStats* stats) {
  if (slots == 0 || slots > slots_.size()) {
    return invalid_input(strings::format(
        "instance %s cannot shard over %zu slots (has %zu)",
        instance_id_.c_str(), slots, slots_.size()));
  }
  for (std::size_t s = 0; s < slots; ++s) {
    if (slots_[s].kernel == nullptr) {
      return unavailable(strings::format("slot %zu has no AFI loaded", s));
    }
    if (!slots_[s].kernel->weights_loaded()) {
      return invalid_input(strings::format("slot %zu has no weights bound", s));
    }
  }

  MultiSlotRunStats local;
  local.images_per_slot.assign(slots, 0);
  std::vector<double> device_seconds(slots, 0.0);
  std::vector<Tensor> outputs(inputs.size());

  const auto wall_start = std::chrono::steady_clock::now();
  // Same dynamic chunk queue the in-process ExecutorPool uses; each slot is
  // an independent device so only the chunk handout needs coordination.
  // Per-slot census/device-time entries are written solely by that slot's
  // driver thread.
  const std::size_t chunk_size = std::max<std::size_t>(
      1, inputs.size() / (slots * 4));
  const Status status = dataflow::dispatch_chunks(
      inputs.size(), slots, chunk_size,
      [&](std::size_t slot, std::size_t begin, std::size_t end) {
        runtime::KernelStats run_stats;
        Result<std::vector<Tensor>> chunk_result =
            slots_[slot].kernel->run(inputs.subspan(begin, end - begin),
                                     &run_stats);
        if (!chunk_result.is_ok()) {
          // Name the failing device: with up to 8 slots sharing a batch the
          // caller needs to know which one to clear/reload.
          return Status(chunk_result.status().code(),
                        strings::format(
                            "slot %zu (images [%zu, %zu)): %s", slot, begin,
                            end, chunk_result.status().message().c_str()));
        }
        std::vector<Tensor> chunk_out = std::move(chunk_result).value();
        std::move(chunk_out.begin(), chunk_out.end(), outputs.begin() + begin);
        local.images_per_slot[slot] += end - begin;
        // Chunks on one slot run back to back, so its device time adds up.
        device_seconds[slot] += run_stats.simulated_seconds;
        return Status::ok();
      });
  const auto wall_end = std::chrono::steady_clock::now();
  CONDOR_RETURN_IF_ERROR(status);

  local.wall_seconds =
      std::chrono::duration<double>(wall_end - wall_start).count();
  local.device_seconds =
      *std::max_element(device_seconds.begin(), device_seconds.end());
  if (stats != nullptr) {
    *stats = std::move(local);
  }
  return outputs;
}

Result<runtime::LoadedKernel*> F1Instance::slot_kernel(std::size_t slot) {
  if (slot >= slots_.size()) {
    return invalid_input("no such slot");
  }
  if (slots_[slot].kernel == nullptr) {
    return unavailable(strings::format("slot %zu has no AFI loaded", slot));
  }
  return slots_[slot].kernel.get();
}

}  // namespace condor::cloud

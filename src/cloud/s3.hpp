// Simulated Amazon S3: a directory-backed object store.
//
// The AFI creation flow (paper §3.3 step 8) stages the design checkpoint in
// "a user-specified Amazon S3 Bucket"; this store reproduces the put/get/
// list/delete surface the framework uses, with bucket and key validation,
// persisted under a root directory so artifacts survive across processes
// (like real S3 outlives an instance).
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "common/status.hpp"

namespace condor::cloud {

class ObjectStore {
 public:
  /// `root` is created on demand; each bucket is a subdirectory.
  explicit ObjectStore(std::string root) : root_(std::move(root)) {}

  Status create_bucket(const std::string& bucket);
  [[nodiscard]] bool bucket_exists(const std::string& bucket) const;

  Status put_object(const std::string& bucket, const std::string& key,
                    std::span<const std::byte> data);
  Result<std::vector<std::byte>> get_object(const std::string& bucket,
                                            const std::string& key) const;
  Status delete_object(const std::string& bucket, const std::string& key);
  [[nodiscard]] bool object_exists(const std::string& bucket,
                                   const std::string& key) const;

  /// Keys in a bucket with the given prefix, sorted.
  Result<std::vector<std::string>> list_objects(const std::string& bucket,
                                                const std::string& prefix = "") const;

  [[nodiscard]] const std::string& root() const noexcept { return root_; }

  /// Bucket names: 3-63 chars of [a-z0-9.-], as AWS enforces.
  static Status validate_bucket_name(const std::string& bucket);
  /// Keys must be non-empty, relative, without ".." traversal.
  static Status validate_key(const std::string& key);

 private:
  [[nodiscard]] std::string object_path(const std::string& bucket,
                                        const std::string& key) const;

  std::string root_;
};

}  // namespace condor::cloud

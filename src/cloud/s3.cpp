#include "cloud/s3.hpp"

#include <algorithm>
#include <filesystem>

#include "common/byte_io.hpp"
#include "common/strings.hpp"

namespace condor::cloud {

namespace fs = std::filesystem;

Status ObjectStore::validate_bucket_name(const std::string& bucket) {
  if (bucket.size() < 3 || bucket.size() > 63) {
    return invalid_input("bucket name must be 3-63 characters: '" + bucket + "'");
  }
  for (const char c : bucket) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                    c == '.' || c == '-';
    if (!ok) {
      return invalid_input("bucket name has invalid character: '" + bucket + "'");
    }
  }
  if (bucket.front() == '-' || bucket.back() == '-') {
    return invalid_input("bucket name cannot start/end with '-': '" + bucket + "'");
  }
  return Status::ok();
}

Status ObjectStore::validate_key(const std::string& key) {
  if (key.empty() || key.size() > 1024) {
    return invalid_input("object key must be 1-1024 characters");
  }
  if (key.front() == '/') {
    return invalid_input("object key must be relative: '" + key + "'");
  }
  for (const auto& part : strings::split(key, '/')) {
    if (part == "..") {
      return invalid_input("object key must not contain '..': '" + key + "'");
    }
  }
  return Status::ok();
}

std::string ObjectStore::object_path(const std::string& bucket,
                                     const std::string& key) const {
  return root_ + "/" + bucket + "/" + key;
}

Status ObjectStore::create_bucket(const std::string& bucket) {
  CONDOR_RETURN_IF_ERROR(validate_bucket_name(bucket));
  std::error_code ec;
  fs::create_directories(fs::path(root_) / bucket, ec);
  if (ec) {
    return internal_error("cannot create bucket directory: " + ec.message());
  }
  return Status::ok();
}

bool ObjectStore::bucket_exists(const std::string& bucket) const {
  std::error_code ec;
  return fs::is_directory(fs::path(root_) / bucket, ec);
}

Status ObjectStore::put_object(const std::string& bucket, const std::string& key,
                               std::span<const std::byte> data) {
  CONDOR_RETURN_IF_ERROR(validate_bucket_name(bucket));
  CONDOR_RETURN_IF_ERROR(validate_key(key));
  if (!bucket_exists(bucket)) {
    return not_found("bucket does not exist: '" + bucket + "'");
  }
  const fs::path path = fs::path(object_path(bucket, key));
  std::error_code ec;
  fs::create_directories(path.parent_path(), ec);
  if (ec) {
    return internal_error("cannot create key prefix: " + ec.message());
  }
  return write_file(path.string(), data);
}

Result<std::vector<std::byte>> ObjectStore::get_object(const std::string& bucket,
                                                       const std::string& key) const {
  CONDOR_RETURN_IF_ERROR(validate_key(key));
  if (!object_exists(bucket, key)) {
    return not_found("NoSuchKey: s3://" + bucket + "/" + key);
  }
  return read_file(object_path(bucket, key));
}

Status ObjectStore::delete_object(const std::string& bucket, const std::string& key) {
  CONDOR_RETURN_IF_ERROR(validate_key(key));
  std::error_code ec;
  fs::remove(object_path(bucket, key), ec);
  if (ec) {
    return internal_error("cannot delete object: " + ec.message());
  }
  return Status::ok();
}

bool ObjectStore::object_exists(const std::string& bucket,
                                const std::string& key) const {
  std::error_code ec;
  return fs::is_regular_file(object_path(bucket, key), ec);
}

Result<std::vector<std::string>> ObjectStore::list_objects(
    const std::string& bucket, const std::string& prefix) const {
  if (!bucket_exists(bucket)) {
    return not_found("bucket does not exist: '" + bucket + "'");
  }
  std::vector<std::string> keys;
  const fs::path bucket_path = fs::path(root_) / bucket;
  std::error_code ec;
  for (auto it = fs::recursive_directory_iterator(bucket_path, ec);
       !ec && it != fs::recursive_directory_iterator(); it.increment(ec)) {
    if (!it->is_regular_file()) {
      continue;
    }
    const std::string key =
        fs::relative(it->path(), bucket_path, ec).generic_string();
    if (strings::starts_with(key, prefix)) {
      keys.push_back(key);
    }
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

}  // namespace condor::cloud

// Simulated Amazon FPGA Image (AFI) service.
//
// Mirrors the `aws ec2 create-fpga-image` flow the framework drives (paper
// §3.3 step 8): the design checkpoint (here: the xclbin) is staged in an S3
// bucket, the service returns an AFI id (afi-...) plus a Global AFI id
// (agfi-...), and the image asynchronously transitions pending → available.
// F1 instances load AFIs by global id. The registry is persisted inside the
// object store (bucket "condor-afi-registry") so AFIs outlive processes,
// like the real service.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "cloud/s3.hpp"
#include "common/status.hpp"

namespace condor::cloud {

enum class AfiState { kPending, kAvailable, kFailed };

std::string_view to_string(AfiState state) noexcept;

struct AfiRecord {
  std::string afi_id;        ///< "afi-xxxxxxxxxxxxxxxxx"
  std::string agfi_id;       ///< "agfi-xxxxxxxxxxxxxxxxx" (global, load-by-id)
  std::string name;
  std::string description;
  std::string source_bucket;
  std::string source_key;    ///< the staged design (xclbin/tarball)
  AfiState state = AfiState::kPending;
  /// Remaining ingestion "polls" before the AFI becomes available: the real
  /// service takes tens of minutes; the simulation takes a few describes.
  int pending_polls = 0;
};

class AfiService {
 public:
  /// `ingestion_polls`: how many describe_fpga_image calls an AFI stays
  /// pending for (0 = immediately available; default mimics asynchrony).
  explicit AfiService(ObjectStore& store, int ingestion_polls = 2);

  /// create-fpga-image: validates the staged object and registers a new
  /// pending AFI. Fails if the S3 object is missing or not a valid design.
  Result<AfiRecord> create_fpga_image(const std::string& name,
                                      const std::string& description,
                                      const std::string& bucket,
                                      const std::string& key);

  /// describe-fpga-images for one id (accepts afi- or agfi- ids). Each call
  /// on a pending AFI advances its ingestion.
  Result<AfiRecord> describe_fpga_image(const std::string& id);

  /// Blocks (logically) until available: polls describe until the state
  /// leaves kPending. Fails on kFailed.
  Result<AfiRecord> wait_until_available(const std::string& id,
                                         int max_polls = 100);

  /// All registered AFIs.
  Result<std::vector<AfiRecord>> list_images();

  /// Fetches the design bytes behind an available AFI (used by F1 slots).
  Result<std::vector<std::byte>> fetch_image_payload(const std::string& id);

 private:
  Status persist(const AfiRecord& record);
  Result<AfiRecord> lookup(const std::string& id);

  ObjectStore& store_;
  int ingestion_polls_;
};

}  // namespace condor::cloud

// Simulated AWS EC2 F1 instances.
//
// An F1 instance exposes one or more FPGA slots (f1.2xlarge: 1, f1.4xlarge:
// 2, f1.16xlarge: 8), each a VU9P behind the AWS shell. Loading an AFI onto
// a slot (the `fpga-load-local-image` step) fetches the image payload from
// the AFI service and programs the slot; the slot then behaves as an
// SDAccel device the host OpenCL code can target.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cloud/afi.hpp"
#include "common/status.hpp"
#include "runtime/kernel_runner.hpp"

namespace condor::cloud {

enum class F1InstanceType { k2xlarge, k4xlarge, k16xlarge };

std::size_t slot_count(F1InstanceType type) noexcept;
std::string_view to_string(F1InstanceType type) noexcept;

/// One FPGA slot of an instance.
struct FpgaSlot {
  std::optional<std::string> loaded_agfi;
  std::unique_ptr<runtime::LoadedKernel> kernel;
};

class F1Instance {
 public:
  F1Instance(F1InstanceType type, AfiService& afi_service);

  [[nodiscard]] F1InstanceType type() const noexcept { return type_; }
  [[nodiscard]] std::size_t slots() const noexcept { return slots_.size(); }
  [[nodiscard]] const std::string& instance_id() const noexcept { return instance_id_; }

  /// fpga-load-local-image: programs `slot` with the AFI (by afi-/agfi- id).
  /// Fails while the AFI is still pending.
  Status load_afi(std::size_t slot, const std::string& afi_id);

  /// fpga-clear-local-image.
  Status clear_slot(std::size_t slot);

  /// Describes what is loaded ("fpga-describe-local-image").
  Result<std::string> describe_slot(std::size_t slot) const;

  /// Access to the programmed accelerator of a slot.
  Result<runtime::LoadedKernel*> slot_kernel(std::size_t slot);

 private:
  F1InstanceType type_;
  std::string instance_id_;
  AfiService& afi_service_;
  std::vector<FpgaSlot> slots_;
};

}  // namespace condor::cloud

// Simulated AWS EC2 F1 instances.
//
// An F1 instance exposes one or more FPGA slots (f1.2xlarge: 1, f1.4xlarge:
// 2, f1.16xlarge: 8), each a VU9P behind the AWS shell. Loading an AFI onto
// a slot (the `fpga-load-local-image` step) fetches the image payload from
// the AFI service and programs the slot; the slot then behaves as an
// SDAccel device the host OpenCL code can target.
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "cloud/afi.hpp"
#include "common/status.hpp"
#include "runtime/kernel_runner.hpp"
#include "tensor/tensor.hpp"

namespace condor::cloud {

enum class F1InstanceType { k2xlarge, k4xlarge, k16xlarge };

std::size_t slot_count(F1InstanceType type) noexcept;
std::string_view to_string(F1InstanceType type) noexcept;

/// One FPGA slot of an instance.
struct FpgaSlot {
  std::optional<std::string> loaded_agfi;
  std::unique_ptr<runtime::LoadedKernel> kernel;
};

/// Aggregate timing of one sharded multi-slot dispatch.
struct MultiSlotRunStats {
  double wall_seconds = 0.0;    ///< host wall time of the whole dispatch
  double device_seconds = 0.0;  ///< max over slots — the slots run concurrently
  /// Images each slot ended up executing (dynamic sharding census).
  std::vector<std::size_t> images_per_slot;

  [[nodiscard]] double images_per_second(std::size_t batch) const noexcept {
    return wall_seconds > 0.0 ? static_cast<double>(batch) / wall_seconds : 0.0;
  }
};

class F1Instance {
 public:
  F1Instance(F1InstanceType type, AfiService& afi_service);

  [[nodiscard]] F1InstanceType type() const noexcept { return type_; }
  [[nodiscard]] std::size_t slots() const noexcept { return slots_.size(); }
  [[nodiscard]] const std::string& instance_id() const noexcept { return instance_id_; }

  /// fpga-load-local-image: programs `slot` with the AFI (by afi-/agfi- id).
  /// Fails while the AFI is still pending.
  Status load_afi(std::size_t slot, const std::string& afi_id);

  /// fpga-clear-local-image.
  Status clear_slot(std::size_t slot);

  /// Describes what is loaded ("fpga-describe-local-image").
  Result<std::string> describe_slot(std::size_t slot) const;

  /// Access to the programmed accelerator of a slot.
  Result<runtime::LoadedKernel*> slot_kernel(std::size_t slot);

  /// Shards `inputs` dynamically across slots [0, slots) — all must be
  /// programmed with weights bound — and returns the outputs in input
  /// order, bit-exact vs a single-slot run. Each slot is driven by its own
  /// host thread through a shared chunk queue (the slots are independent
  /// devices, so a straggler takes fewer chunks). On the first failure no
  /// new chunks are handed out and the first error is returned.
  Result<std::vector<Tensor>> run_batch_sharded(
      std::span<const Tensor> inputs, std::size_t slots,
      MultiSlotRunStats* stats = nullptr);

 private:
  F1InstanceType type_;
  std::string instance_id_;
  AfiService& afi_service_;
  std::vector<FpgaSlot> slots_;
};

}  // namespace condor::cloud

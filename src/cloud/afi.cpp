#include "cloud/afi.hpp"

#include "common/byte_io.hpp"
#include "common/rng.hpp"
#include "common/strings.hpp"
#include "json/json.hpp"
#include "runtime/xclbin.hpp"

namespace condor::cloud {
namespace {

constexpr const char* kRegistryBucket = "condor-afi-registry";

std::string make_suffix(Rng& rng) {
  static constexpr char kAlphabet[] = "0123456789abcdef";
  std::string suffix;
  suffix.reserve(17);
  for (int i = 0; i < 17; ++i) {
    suffix.push_back(kAlphabet[rng.bounded(16)]);
  }
  return suffix;
}

json::Value to_json(const AfiRecord& record) {
  json::Object obj;
  obj.set("afi_id", record.afi_id);
  obj.set("agfi_id", record.agfi_id);
  obj.set("name", record.name);
  obj.set("description", record.description);
  obj.set("source_bucket", record.source_bucket);
  obj.set("source_key", record.source_key);
  obj.set("state", std::string(to_string(record.state)));
  obj.set("pending_polls", static_cast<std::int64_t>(record.pending_polls));
  return obj;
}

Result<AfiRecord> record_from_json(const json::Value& value) {
  if (!value.is_object()) {
    return invalid_input("AFI record must be a JSON object");
  }
  const json::Object& obj = value.object();
  AfiRecord record;
  const auto get = [&obj](const char* key) -> Result<std::string> {
    const json::Value* entry = obj.find(key);
    if (entry == nullptr) {
      return not_found(std::string("AFI record missing '") + key + "'");
    }
    return entry->as_string();
  };
  CONDOR_ASSIGN_OR_RETURN(record.afi_id, get("afi_id"));
  CONDOR_ASSIGN_OR_RETURN(record.agfi_id, get("agfi_id"));
  CONDOR_ASSIGN_OR_RETURN(record.name, get("name"));
  CONDOR_ASSIGN_OR_RETURN(record.description, get("description"));
  CONDOR_ASSIGN_OR_RETURN(record.source_bucket, get("source_bucket"));
  CONDOR_ASSIGN_OR_RETURN(record.source_key, get("source_key"));
  CONDOR_ASSIGN_OR_RETURN(std::string state, get("state"));
  if (state == "available") {
    record.state = AfiState::kAvailable;
  } else if (state == "failed") {
    record.state = AfiState::kFailed;
  } else {
    record.state = AfiState::kPending;
  }
  if (const json::Value* polls = obj.find("pending_polls"); polls != nullptr) {
    CONDOR_ASSIGN_OR_RETURN(std::int64_t value_polls, polls->as_int());
    record.pending_polls = static_cast<int>(value_polls);
  }
  return record;
}

}  // namespace

std::string_view to_string(AfiState state) noexcept {
  switch (state) {
    case AfiState::kPending:
      return "pending";
    case AfiState::kAvailable:
      return "available";
    case AfiState::kFailed:
      return "failed";
  }
  return "?";
}

AfiService::AfiService(ObjectStore& store, int ingestion_polls)
    : store_(store), ingestion_polls_(ingestion_polls) {
  (void)store_.create_bucket(kRegistryBucket);
}

Result<AfiRecord> AfiService::create_fpga_image(const std::string& name,
                                                const std::string& description,
                                                const std::string& bucket,
                                                const std::string& key) {
  // Validate the staged design before accepting the request, as the real
  // ingestion pipeline rejects malformed checkpoints.
  CONDOR_ASSIGN_OR_RETURN(auto payload, store_.get_object(bucket, key));
  auto parsed = runtime::Xclbin::deserialize(payload);
  AfiRecord record;
  record.name = name;
  record.description = description;
  record.source_bucket = bucket;
  record.source_key = key;
  record.state = parsed.is_ok() ? AfiState::kPending : AfiState::kFailed;
  record.pending_polls = parsed.is_ok() ? ingestion_polls_ : 0;

  // Ids are derived from the payload checksum so re-creating the same image
  // is deterministic (and testable).
  Rng rng(crc32(payload) ^ 0xA51D5EEDULL);
  const std::string suffix = make_suffix(rng);
  record.afi_id = "afi-" + suffix;
  record.agfi_id = "agfi-" + suffix;

  CONDOR_RETURN_IF_ERROR(persist(record));
  return record;
}

Status AfiService::persist(const AfiRecord& record) {
  const std::string text = json::dump(to_json(record));
  return store_.put_object(
      kRegistryBucket, record.afi_id + ".json",
      std::span<const std::byte>(reinterpret_cast<const std::byte*>(text.data()),
                                 text.size()));
}

Result<AfiRecord> AfiService::lookup(const std::string& id) {
  std::string afi_id = id;
  if (strings::starts_with(id, "agfi-")) {
    afi_id = "afi-" + id.substr(5);
  }
  auto payload = store_.get_object(kRegistryBucket, afi_id + ".json");
  if (!payload.is_ok()) {
    return not_found("no such AFI: '" + id + "'");
  }
  const std::string text(reinterpret_cast<const char*>(payload.value().data()),
                         payload.value().size());
  CONDOR_ASSIGN_OR_RETURN(json::Value value, json::parse(text));
  return record_from_json(value);
}

Result<AfiRecord> AfiService::describe_fpga_image(const std::string& id) {
  CONDOR_ASSIGN_OR_RETURN(AfiRecord record, lookup(id));
  if (record.state == AfiState::kPending) {
    if (record.pending_polls > 0) {
      --record.pending_polls;
    }
    if (record.pending_polls == 0) {
      record.state = AfiState::kAvailable;
    }
    CONDOR_RETURN_IF_ERROR(persist(record));
  }
  return record;
}

Result<AfiRecord> AfiService::wait_until_available(const std::string& id,
                                                   int max_polls) {
  for (int poll = 0; poll < max_polls; ++poll) {
    CONDOR_ASSIGN_OR_RETURN(AfiRecord record, describe_fpga_image(id));
    if (record.state == AfiState::kAvailable) {
      return record;
    }
    if (record.state == AfiState::kFailed) {
      return unavailable("AFI '" + id + "' failed ingestion");
    }
  }
  return unavailable(strings::format("AFI '%s' still pending after %d polls",
                                     id.c_str(), max_polls));
}

Result<std::vector<AfiRecord>> AfiService::list_images() {
  CONDOR_ASSIGN_OR_RETURN(auto keys, store_.list_objects(kRegistryBucket));
  std::vector<AfiRecord> records;
  for (const std::string& key : keys) {
    if (!strings::ends_with(key, ".json")) {
      continue;
    }
    CONDOR_ASSIGN_OR_RETURN(AfiRecord record,
                            lookup(key.substr(0, key.size() - 5)));
    records.push_back(std::move(record));
  }
  return records;
}

Result<std::vector<std::byte>> AfiService::fetch_image_payload(const std::string& id) {
  CONDOR_ASSIGN_OR_RETURN(AfiRecord record, lookup(id));
  if (record.state != AfiState::kAvailable) {
    return unavailable("AFI '" + id + "' is " +
                       std::string(to_string(record.state)));
  }
  return store_.get_object(record.source_bucket, record.source_key);
}

}  // namespace condor::cloud

#include "tensor/tensor.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/strings.hpp"

namespace condor {

std::size_t Shape::element_count() const noexcept {
  std::size_t count = 1;
  for (const std::size_t dim : dims_) {
    count *= dim;
  }
  return count;
}

std::string Shape::to_string() const {
  std::string out = "(";
  for (std::size_t i = 0; i < dims_.size(); ++i) {
    if (i != 0) {
      out += ", ";
    }
    out += std::to_string(dims_[i]);
  }
  out += ")";
  return out;
}

Tensor::Tensor(Shape shape, std::vector<float> data)
    : shape_(std::move(shape)), data_(std::move(data)) {
  assert(data_.size() == shape_.element_count() &&
         "tensor data size must match shape");
}

Status Tensor::reshape(Shape new_shape) {
  if (new_shape.element_count() != data_.size()) {
    return invalid_input(strings::format(
        "reshape %s -> %s changes element count", shape_.to_string().c_str(),
        new_shape.to_string().c_str()));
  }
  shape_ = std::move(new_shape);
  return Status::ok();
}

void Tensor::fill(float value) noexcept {
  std::fill(data_.begin(), data_.end(), value);
}

float max_abs_diff(const Tensor& a, const Tensor& b) noexcept {
  assert(a.shape() == b.shape());
  float max_diff = 0.0F;
  const auto va = a.data();
  const auto vb = b.data();
  for (std::size_t i = 0; i < va.size(); ++i) {
    max_diff = std::max(max_diff, std::fabs(va[i] - vb[i]));
  }
  return max_diff;
}

bool allclose(const Tensor& a, const Tensor& b, float atol, float rtol) noexcept {
  if (a.shape() != b.shape()) {
    return false;
  }
  const auto va = a.data();
  const auto vb = b.data();
  for (std::size_t i = 0; i < va.size(); ++i) {
    const float diff = std::fabs(va[i] - vb[i]);
    if (diff > atol + rtol * std::fabs(vb[i])) {
      return false;
    }
  }
  return true;
}

std::size_t argmax(const Tensor& t) noexcept {
  const auto view = t.data();
  if (view.empty()) {
    return 0;
  }
  return static_cast<std::size_t>(
      std::max_element(view.begin(), view.end()) - view.begin());
}

}  // namespace condor

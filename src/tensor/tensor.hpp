// Dense float32 N-D tensor used throughout the NN substrate.
//
// Layout is row-major over the shape vector; feature maps use CHW order
// (channels, height, width) matching Caffe's blob convention with the batch
// dimension handled one image at a time by the inference engines (the
// accelerator streams images individually through the pipeline).
#pragma once

#include <cstddef>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

#include "common/status.hpp"

namespace condor {

/// Tensor shape: a small vector of extents. Rank 0 denotes a scalar.
class Shape {
 public:
  Shape() = default;
  Shape(std::initializer_list<std::size_t> dims) : dims_(dims) {}
  explicit Shape(std::vector<std::size_t> dims) : dims_(std::move(dims)) {}

  [[nodiscard]] std::size_t rank() const noexcept { return dims_.size(); }
  [[nodiscard]] std::size_t operator[](std::size_t axis) const noexcept {
    return dims_[axis];
  }
  [[nodiscard]] const std::vector<std::size_t>& dims() const noexcept { return dims_; }

  /// Product of all extents (1 for rank 0).
  [[nodiscard]] std::size_t element_count() const noexcept;

  /// "(3, 32, 32)"
  [[nodiscard]] std::string to_string() const;

  bool operator==(const Shape& other) const noexcept = default;

 private:
  std::vector<std::size_t> dims_;
};

/// Owned dense tensor of float32.
class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(Shape shape, float fill = 0.0F)
      : shape_(std::move(shape)), data_(shape_.element_count(), fill) {}
  Tensor(Shape shape, std::vector<float> data);

  [[nodiscard]] const Shape& shape() const noexcept { return shape_; }
  [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }
  [[nodiscard]] bool empty() const noexcept { return data_.empty(); }

  [[nodiscard]] std::span<float> data() noexcept { return data_; }
  [[nodiscard]] std::span<const float> data() const noexcept { return data_; }

  [[nodiscard]] float* raw() noexcept { return data_.data(); }
  [[nodiscard]] const float* raw() const noexcept { return data_.data(); }

  // Flat access.
  [[nodiscard]] float& operator[](std::size_t index) noexcept { return data_[index]; }
  [[nodiscard]] float operator[](std::size_t index) const noexcept { return data_[index]; }

  // CHW convenience accessors (rank-3 tensors).
  [[nodiscard]] float& at(std::size_t c, std::size_t h, std::size_t w) noexcept {
    return data_[(c * shape_[1] + h) * shape_[2] + w];
  }
  [[nodiscard]] float at(std::size_t c, std::size_t h, std::size_t w) const noexcept {
    return data_[(c * shape_[1] + h) * shape_[2] + w];
  }

  // Rank-4 accessor (out_channels, in_channels, kh, kw) for conv weights.
  [[nodiscard]] float& at4(std::size_t o, std::size_t i, std::size_t kh,
                           std::size_t kw) noexcept {
    return data_[((o * shape_[1] + i) * shape_[2] + kh) * shape_[3] + kw];
  }
  [[nodiscard]] float at4(std::size_t o, std::size_t i, std::size_t kh,
                          std::size_t kw) const noexcept {
    return data_[((o * shape_[1] + i) * shape_[2] + kh) * shape_[3] + kw];
  }

  /// Reinterprets the data under a new shape with identical element count.
  Status reshape(Shape new_shape);

  void fill(float value) noexcept;

  bool operator==(const Tensor& other) const noexcept = default;

 private:
  Shape shape_;
  std::vector<float> data_;
};

/// Max |a-b| over all elements; tensors must have equal shapes (asserts).
float max_abs_diff(const Tensor& a, const Tensor& b) noexcept;

/// Element-wise approximate equality with absolute + relative tolerance.
bool allclose(const Tensor& a, const Tensor& b, float atol = 1e-5F,
              float rtol = 1e-5F) noexcept;

/// Index of the largest element (argmax over flat data); 0 for empty.
std::size_t argmax(const Tensor& t) noexcept;

}  // namespace condor

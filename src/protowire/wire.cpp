#include "protowire/wire.hpp"

namespace condor::protowire {

void put_varint(ByteWriter& out, std::uint64_t value) {
  while (value >= 0x80) {
    out.u8(static_cast<std::uint8_t>((value & 0x7F) | 0x80));
    value >>= 7;
  }
  out.u8(static_cast<std::uint8_t>(value));
}

Result<std::uint64_t> get_varint(ByteReader& in) {
  std::uint64_t value = 0;
  for (int shift = 0; shift < 64; shift += 7) {
    CONDOR_ASSIGN_OR_RETURN(std::uint8_t byte, in.u8());
    value |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      return value;
    }
  }
  return invalid_input("protowire: varint longer than 10 bytes");
}

void Writer::tag(std::uint32_t field, WireType type) {
  put_varint(out_, (static_cast<std::uint64_t>(field) << 3) |
                       static_cast<std::uint64_t>(type));
}

void Writer::varint_field(std::uint32_t field, std::uint64_t value) {
  tag(field, WireType::kVarint);
  put_varint(out_, value);
}

void Writer::float_field(std::uint32_t field, float value) {
  tag(field, WireType::kI32);
  out_.f32le(value);
}

void Writer::double_field(std::uint32_t field, double value) {
  tag(field, WireType::kI64);
  out_.f64le(value);
}

void Writer::string_field(std::uint32_t field, std::string_view value) {
  tag(field, WireType::kLen);
  put_varint(out_, value.size());
  out_.string_bytes(value);
}

void Writer::bytes_field(std::uint32_t field, std::span<const std::byte> value) {
  tag(field, WireType::kLen);
  put_varint(out_, value.size());
  out_.bytes(value);
}

void Writer::message_field(std::uint32_t field, const Writer& nested) {
  bytes_field(field, nested.view());
}

void Writer::packed_floats(std::uint32_t field, std::span<const float> values) {
  tag(field, WireType::kLen);
  put_varint(out_, values.size() * 4);
  for (const float value : values) {
    out_.f32le(value);
  }
}

Result<Tag> Reader::read_tag() {
  CONDOR_ASSIGN_OR_RETURN(std::uint64_t key, get_varint(in_));
  Tag tag;
  tag.field_number = static_cast<std::uint32_t>(key >> 3);
  const auto wire_bits = static_cast<std::uint8_t>(key & 0x7);
  switch (wire_bits) {
    case 0:
      tag.wire_type = WireType::kVarint;
      break;
    case 1:
      tag.wire_type = WireType::kI64;
      break;
    case 2:
      tag.wire_type = WireType::kLen;
      break;
    case 5:
      tag.wire_type = WireType::kI32;
      break;
    default:
      return invalid_input("protowire: unsupported wire type " +
                           std::to_string(wire_bits));
  }
  if (tag.field_number == 0) {
    return invalid_input("protowire: field number 0 is reserved");
  }
  return tag;
}

Result<std::uint64_t> Reader::read_varint() { return get_varint(in_); }

Result<float> Reader::read_float() { return in_.f32le(); }

Result<double> Reader::read_double() { return in_.f64le(); }

Result<std::span<const std::byte>> Reader::read_len() {
  CONDOR_ASSIGN_OR_RETURN(std::uint64_t size, get_varint(in_));
  if (size > in_.remaining()) {
    return invalid_input("protowire: LEN payload exceeds buffer");
  }
  return in_.bytes(static_cast<std::size_t>(size));
}

Result<std::string> Reader::read_string() {
  CONDOR_ASSIGN_OR_RETURN(auto payload, read_len());
  return std::string(reinterpret_cast<const char*>(payload.data()), payload.size());
}

Status Reader::read_packed_floats(const Tag& tag, std::vector<float>& out) {
  if (tag.wire_type == WireType::kI32) {
    CONDOR_ASSIGN_OR_RETURN(float value, read_float());
    out.push_back(value);
    return Status::ok();
  }
  if (tag.wire_type != WireType::kLen) {
    return invalid_input("protowire: packed floats must be LEN or I32");
  }
  CONDOR_ASSIGN_OR_RETURN(auto payload, read_len());
  if (payload.size() % 4 != 0) {
    return invalid_input("protowire: packed float payload not multiple of 4");
  }
  ByteReader floats(payload);
  out.reserve(out.size() + payload.size() / 4);
  while (!floats.at_end()) {
    CONDOR_ASSIGN_OR_RETURN(float value, floats.f32le());
    out.push_back(value);
  }
  return Status::ok();
}

Status Reader::skip(const Tag& tag) {
  switch (tag.wire_type) {
    case WireType::kVarint: {
      CONDOR_ASSIGN_OR_RETURN(std::uint64_t ignored, get_varint(in_));
      (void)ignored;
      return Status::ok();
    }
    case WireType::kI64:
      return in_.skip(8);
    case WireType::kI32:
      return in_.skip(4);
    case WireType::kLen: {
      CONDOR_ASSIGN_OR_RETURN(std::uint64_t size, get_varint(in_));
      if (size > in_.remaining()) {
        return invalid_input("protowire: skip past end of buffer");
      }
      return in_.skip(static_cast<std::size_t>(size));
    }
  }
  return internal_error("protowire: unreachable wire type");
}

}  // namespace condor::protowire

// From-scratch Google Protocol Buffers *wire format* codec.
//
// Caffe's `.caffemodel` files are binary protobuf messages (NetParameter).
// Rather than depending on libprotobuf, Condor implements the wire format
// directly: varints, zigzag, and the four wire types that proto2 emits
// (VARINT, I64, LEN, I32). The `caffe` module builds typed encoders/decoders
// for the NetParameter/LayerParameter/BlobProto schema on top of this layer.
//
// Reference: https://protobuf.dev/programming-guides/encoding/
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "common/byte_io.hpp"
#include "common/status.hpp"

namespace condor::protowire {

/// Wire types from the protobuf encoding spec.
enum class WireType : std::uint8_t {
  kVarint = 0,  ///< int32/64, uint32/64, sint*, bool, enum
  kI64 = 1,     ///< fixed64, sfixed64, double
  kLen = 2,     ///< string, bytes, sub-message, packed repeated
  kI32 = 5,     ///< fixed32, sfixed32, float
};

/// A decoded field key: (field number, wire type).
struct Tag {
  std::uint32_t field_number = 0;
  WireType wire_type = WireType::kVarint;
};

// -- Primitive codecs ---------------------------------------------------

/// Appends a base-128 varint.
void put_varint(ByteWriter& out, std::uint64_t value);

/// ZigZag maps signed to unsigned so small negatives stay small.
constexpr std::uint64_t zigzag_encode(std::int64_t value) noexcept {
  return (static_cast<std::uint64_t>(value) << 1) ^
         static_cast<std::uint64_t>(value >> 63);
}
constexpr std::int64_t zigzag_decode(std::uint64_t value) noexcept {
  return static_cast<std::int64_t>(value >> 1) ^
         -static_cast<std::int64_t>(value & 1);
}

// -- Message writer ------------------------------------------------------

/// Serializes one message. Nested messages are built with a nested Writer
/// and embedded with `message()`.
class Writer {
 public:
  void varint_field(std::uint32_t field, std::uint64_t value);
  void bool_field(std::uint32_t field, bool value) {
    varint_field(field, value ? 1 : 0);
  }
  void sint_field(std::uint32_t field, std::int64_t value) {
    varint_field(field, zigzag_encode(value));
  }
  /// proto2 int32/int64 negative values are encoded as 10-byte varints.
  void int_field(std::uint32_t field, std::int64_t value) {
    varint_field(field, static_cast<std::uint64_t>(value));
  }
  void float_field(std::uint32_t field, float value);
  void double_field(std::uint32_t field, double value);
  void string_field(std::uint32_t field, std::string_view value);
  void bytes_field(std::uint32_t field, std::span<const std::byte> value);
  void message_field(std::uint32_t field, const Writer& nested);
  /// Packed repeated float (LEN-encoded array) — Caffe blob data uses this.
  void packed_floats(std::uint32_t field, std::span<const float> values);

  [[nodiscard]] std::span<const std::byte> view() const noexcept {
    return out_.view();
  }
  [[nodiscard]] std::vector<std::byte> take() && { return std::move(out_).take(); }

 private:
  void tag(std::uint32_t field, WireType type);
  ByteWriter out_;
};

// -- Message reader ------------------------------------------------------

/// Streaming reader over one serialized message. The typical decode loop:
///
///   Reader reader(bytes);
///   while (!reader.at_end()) {
///     auto tag = reader.read_tag();  // check status
///     switch (tag.field_number) { ...typed reads... default: reader.skip(tag); }
///   }
class Reader {
 public:
  explicit Reader(std::span<const std::byte> data) noexcept : in_(data) {}

  [[nodiscard]] bool at_end() const noexcept { return in_.at_end(); }

  Result<Tag> read_tag();
  Result<std::uint64_t> read_varint();
  Result<float> read_float();
  Result<double> read_double();
  Result<std::span<const std::byte>> read_len();  ///< raw LEN payload
  Result<std::string> read_string();

  /// Decodes a packed-repeated-float payload, appending to `out`. Also
  /// accepts the unpacked encoding (a single I32 value) for robustness.
  Status read_packed_floats(const Tag& tag, std::vector<float>& out);

  /// Skips one field of the given wire type (unknown-field tolerance).
  Status skip(const Tag& tag);

 private:
  ByteReader in_;
};

/// Decodes a varint from a ByteReader (exposed for tests).
Result<std::uint64_t> get_varint(ByteReader& in);

}  // namespace condor::protowire

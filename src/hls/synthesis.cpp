#include "hls/synthesis.hpp"

#include "common/strings.hpp"

namespace condor::hls {

std::string SynthesisReport::to_string(const hw::BoardSpec& board) const {
  std::string out = strings::format(
      "== Vivado HLS (simulated) synthesis report ==\n"
      "target clock : %.1f MHz\n"
      "achieved     : %.1f MHz (%s)\n",
      target_clock_mhz, achieved_clock_mhz, timing_met ? "met" : "NOT met");
  out += strings::format("%-22s %12s %12s %8s\n", "module", "latency", "interval",
                         "clock");
  for (const ModuleReport& module : modules) {
    out += strings::format("%-22s %12llu %12llu %7.1f\n", module.module.c_str(),
                           static_cast<unsigned long long>(module.latency_cycles),
                           static_cast<unsigned long long>(module.interval_cycles),
                           module.estimated_clock_mhz);
  }
  out += resources.to_string(board);
  return out;
}

Result<SynthesisReport> synthesize(const hw::AcceleratorPlan& plan,
                                   const SynthesisOptions& options) {
  SynthesisReport report;
  report.target_clock_mhz = plan.source.hw.target_frequency_mhz;

  CONDOR_ASSIGN_OR_RETURN(report.resources,
                          hw::estimate_resources(plan, options.cost));
  report.achieved_clock_mhz =
      hw::achieved_frequency_mhz(plan, report.resources, options.timing);
  report.timing_met = report.achieved_clock_mhz >= report.target_clock_mhz;

  // Per-module latency/interval from the performance model at the achieved
  // clock (interval governs II between images).
  CONDOR_ASSIGN_OR_RETURN(
      hw::PerformanceEstimate perf,
      hw::estimate_performance(plan, report.resources, report.achieved_clock_mhz));
  for (std::size_t p = 0; p < plan.pes.size(); ++p) {
    ModuleReport module;
    module.module = plan.pes[p].name;
    module.interval_cycles = perf.pes[p].interval();
    module.latency_cycles = perf.pes[p].interval() + perf.pes[p].fill_latency;
    module.estimated_clock_mhz = hw::pe_fmax_mhz(plan, p, options.timing);
    module.resources = hw::pe_cost(plan, p, options.cost);
    report.modules.push_back(std::move(module));
  }
  return report;
}

}  // namespace condor::hls

#include "hls/cosim.hpp"

#include <algorithm>

#include "common/rng.hpp"
#include "common/strings.hpp"
#include "dataflow/executor.hpp"
#include "nn/reference.hpp"
#include "sim/element_sim.hpp"

namespace condor::hls {

std::string CosimReport::to_string() const {
  std::string out = strings::format(
      "== C/RTL co-simulation (simulated) ==\n"
      "functional : %s (max |diff| = %g over %zu images)\n",
      functional_pass ? "PASS" : "FAIL", static_cast<double>(max_abs_diff),
      images);
  for (const CosimPeReport& pe : pes) {
    out += strings::format("  %-20s %s  (%llu cycles, fill %llu)\n",
                           pe.name.c_str(),
                           pe.stall_free ? "stall-free" : "THROTTLED",
                           static_cast<unsigned long long>(pe.cycles),
                           static_cast<unsigned long long>(pe.fill_cycles));
  }
  out += strings::format("overall    : %s\n", pass() ? "PASS" : "FAIL");
  return out;
}

Result<CosimReport> cosimulate(const hw::AcceleratorPlan& plan,
                               const nn::WeightStore& weights,
                               std::size_t batch, std::uint64_t seed) {
  CosimReport report;
  report.images = batch;

  // -- Functional: KPN accelerator vs golden reference --------------------
  CONDOR_ASSIGN_OR_RETURN(
      nn::ReferenceEngine engine,
      nn::ReferenceEngine::create(plan.source.net, weights));
  CONDOR_ASSIGN_OR_RETURN(dataflow::AcceleratorExecutor executor,
                          dataflow::AcceleratorExecutor::create(plan, weights));
  CONDOR_ASSIGN_OR_RETURN(Shape input_shape, plan.source.net.input_shape());
  Rng rng(seed);
  std::vector<Tensor> inputs;
  inputs.reserve(batch);
  for (std::size_t i = 0; i < batch; ++i) {
    Tensor image(input_shape);
    for (float& value : image.data()) {
      value = rng.uniform(-1.0F, 1.0F);
    }
    inputs.push_back(std::move(image));
  }
  CONDOR_ASSIGN_OR_RETURN(std::vector<Tensor> outputs,
                          executor.run_batch(inputs));
  for (std::size_t i = 0; i < batch; ++i) {
    CONDOR_ASSIGN_OR_RETURN(Tensor expected, engine.forward(inputs[i]));
    report.max_abs_diff =
        std::max(report.max_abs_diff, max_abs_diff(outputs[i], expected));
  }
  report.functional_pass = report.max_abs_diff == 0.0F;

  // -- Cycle-level: each feature PE's memory subsystem --------------------
  CONDOR_ASSIGN_OR_RETURN(auto shapes, plan.source.net.infer_shapes());
  for (const hw::PePlan& pe : plan.pes) {
    if (!pe.memory.has_value() || pe.kind != hw::PeKind::kFeature) {
      continue;
    }
    // Simulate the PE's largest-window pass at full port rate.
    const std::size_t index = pe.layer_indices.front();
    const nn::LayerSpec& layer = plan.source.net.layers()[index];
    sim::ElementSimConfig config;
    config.map_h = shapes[index].input[1] + 2 * layer.pad;
    config.map_w = shapes[index].input[2] + 2 * layer.pad;
    config.window_h = pe.memory->window_h;
    config.window_w = pe.memory->window_w;
    config.stride = layer.stride;
    CONDOR_ASSIGN_OR_RETURN(sim::ElementSimResult result,
                            sim::simulate_memory_pipeline(config));
    CosimPeReport pe_report;
    pe_report.name = pe.name;
    pe_report.stall_free = result.stall_free();
    pe_report.cycles = result.total_cycles;
    pe_report.fill_cycles = result.fill_cycles;
    report.pes.push_back(std::move(pe_report));
  }
  return report;
}

}  // namespace condor::hls

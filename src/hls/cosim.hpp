// C/RTL co-simulation (the Vivado HLS "cosim" step, simulated).
//
// In the original flow, co-simulation runs the generated RTL against the C
// model and signs off functional equivalence plus the achieved initiation
// interval. The reproduction's analog combines its two validation engines:
//
//   * functional — the full KPN accelerator vs the golden CPU reference,
//     expected bit-exact;
//   * cycle-level — every feature PE's memory subsystem through the
//     element-granularity simulator, expected stall-free with the planned
//     FIFO capacities.
//
// Used by tests and available to users through `condor validate`.
#pragma once

#include <string>
#include <vector>

#include "common/status.hpp"
#include "hw/accel_plan.hpp"
#include "nn/weights.hpp"

namespace condor::hls {

/// Per-PE cycle-level verdict.
struct CosimPeReport {
  std::string name;
  bool stall_free = false;
  std::uint64_t cycles = 0;
  std::uint64_t fill_cycles = 0;
};

struct CosimReport {
  bool functional_pass = false;  ///< bit-exact vs the golden reference
  float max_abs_diff = 0.0F;
  std::size_t images = 0;
  std::vector<CosimPeReport> pes;  ///< feature PEs only

  [[nodiscard]] bool pass() const noexcept {
    if (!functional_pass) {
      return false;
    }
    for (const CosimPeReport& pe : pes) {
      if (!pe.stall_free) {
        return false;
      }
    }
    return true;
  }

  [[nodiscard]] std::string to_string() const;
};

/// Runs co-simulation on `batch` deterministic random images (seeded).
Result<CosimReport> cosimulate(const hw::AcceleratorPlan& plan,
                               const nn::WeightStore& weights,
                               std::size_t batch = 2, std::uint64_t seed = 2018);

}  // namespace condor::hls

// Simulated Vivado HLS synthesis.
//
// Consumes the generated sources' structural description (via the plan) and
// produces per-module synthesis reports — latency, initiation interval,
// resource usage, estimated clock — in the same shape Vivado HLS emits
// them. The original flow gates layer creation on these reports; ours gates
// the same steps and additionally records them in the xclbin artifact.
#pragma once

#include <string>
#include <vector>

#include "common/status.hpp"
#include "hw/accel_plan.hpp"
#include "hw/performance_model.hpp"
#include "hw/resource_model.hpp"
#include "hw/timing_model.hpp"

namespace condor::hls {

/// Report for one synthesized module (a PE or a filter).
struct ModuleReport {
  std::string module;
  std::uint64_t latency_cycles = 0;   ///< per-image latency
  std::uint64_t interval_cycles = 0;  ///< initiation interval (per image)
  double estimated_clock_mhz = 0.0;
  hw::Resources resources;
};

/// The whole-design synthesis outcome.
struct SynthesisReport {
  std::vector<ModuleReport> modules;
  hw::ResourceReport resources;
  double achieved_clock_mhz = 0.0;
  double target_clock_mhz = 0.0;
  bool timing_met = false;  ///< achieved >= target

  [[nodiscard]] std::string to_string(const hw::BoardSpec& board) const;
};

struct SynthesisOptions {
  hw::CostModel cost;
  hw::TimingModel timing;
};

/// Runs the simulated synthesis of a plan. Fails (kUnsynthesizable) when
/// the design does not fit the board.
Result<SynthesisReport> synthesize(const hw::AcceleratorPlan& plan,
                                   const SynthesisOptions& options = {});

}  // namespace condor::hls

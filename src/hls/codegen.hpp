// HLS C++ code generation (paper §3.3, steps 3a/3b and 4):
//
//   "the C code performing the computation of the layer is automatically
//    generated, and the PE is synthesized via Vivado HLS" / "given the size
//    of the sliding window and the size of the input image, the code for
//    the filters is automatically generated".
//
// This module reproduces the generator: for every PE and filter of an
// accelerator plan it emits compilable Vivado-HLS-style C++ (hls::stream
// interfaces, DATAFLOW/PIPELINE/ARRAY_PARTITION pragmas). In the original
// flow the text goes to Vivado HLS; here it is consumed by hls::synthesize
// (the simulated toolchain) and shipped inside the xclbin artifact so users
// can inspect exactly what would be synthesized.
#pragma once

#include <string>
#include <vector>

#include "common/status.hpp"
#include "dataflow/program.hpp"
#include "hw/accel_plan.hpp"

namespace condor::hls {

/// One generated translation unit.
struct GeneratedSource {
  std::string file_name;  ///< e.g. "pe0_conv1.cpp"
  std::string module;     ///< module name within the design
  std::string code;
};

/// Emits the PE kernel source for plan.pes[pe_index].
Result<GeneratedSource> generate_pe_source(const hw::AcceleratorPlan& plan,
                                           std::size_t pe_index);

/// Emits one filter source for access (ky, kx) of the given PE's memory
/// subsystem (feature PEs only).
Result<GeneratedSource> generate_filter_source(const hw::AcceleratorPlan& plan,
                                               std::size_t pe_index,
                                               const hw::WindowAccess& access);

/// Emits the top-level dataflow wrapper that instantiates every module and
/// the AXI interface pragmas SDAccel expects of an RTL kernel.
Result<GeneratedSource> generate_top_source(const hw::AcceleratorPlan& plan);

/// Every source of the design: one top, one per PE, one per filter.
Result<std::vector<GeneratedSource>> generate_all_sources(
    const hw::AcceleratorPlan& plan);

}  // namespace condor::hls

#include "condor/power_model.hpp"

namespace condor::condorflow {

double estimate_power_w(const hw::BoardSpec& board, const hw::Resources& used,
                        double frequency_mhz, const PowerModel& model) {
  const double hz = frequency_mhz * 1e6;
  const double dynamic =
      model.watts_per_dsp_hz * static_cast<double>(used.dsps) * hz +
      model.watts_per_bram_hz * static_cast<double>(used.bram36) * hz +
      model.watts_per_logic_hz * static_cast<double>(used.luts + used.ffs) * hz;
  return board.static_power_w + dynamic;
}

}  // namespace condor::condorflow

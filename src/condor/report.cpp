#include "condor/report.hpp"

#include "common/strings.hpp"
#include "hw/performance_model.hpp"
#include "sim/accel_sim.hpp"

namespace condor::condorflow {

Result<DeploymentReport> make_deployment_report(const FlowResult& result,
                                                const PowerModel& power) {
  DeploymentReport report;
  report.name = result.network.net.name();
  const hw::BoardSpec& board = result.plan.board;
  report.lut_pct = result.synthesis.resources.lut_percent(board);
  report.ff_pct = result.synthesis.resources.ff_percent(board);
  report.dsp_pct = result.synthesis.resources.dsp_percent(board);
  report.bram_pct = result.synthesis.resources.bram_percent(board);
  report.achieved_mhz = result.synthesis.achieved_clock_mhz;

  CONDOR_ASSIGN_OR_RETURN(
      hw::PerformanceEstimate perf,
      hw::estimate_performance(result.plan, result.synthesis.resources,
                               report.achieved_mhz));
  const sim::AcceleratorSim accel_sim = sim::build_accelerator_sim(perf);
  CONDOR_ASSIGN_OR_RETURN(report.gflops, sim::steady_state_gflops(accel_sim));

  report.power_w = estimate_power_w(board, result.synthesis.resources.total,
                                    report.achieved_mhz, power);
  report.gflops_per_w =
      report.power_w > 0.0 ? report.gflops / report.power_w : 0.0;
  return report;
}

std::string format_deployment_table(const std::vector<DeploymentReport>& rows) {
  std::string out = strings::format("%-8s %7s %7s %7s %7s %8s %8s %10s\n", "",
                                    "LUT %", "FF %", "DSP %", "BRAM %", "MHz",
                                    "GFLOPS", "GFLOPS/W");
  for (const DeploymentReport& row : rows) {
    out += strings::format("%-8s %7.2f %7.2f %7.2f %7.2f %8.0f %8.2f %10.2f\n",
                           row.name.c_str(), row.lut_pct, row.ff_pct, row.dsp_pct,
                           row.bram_pct, row.achieved_mhz, row.gflops,
                           row.gflops_per_w);
  }
  return out;
}

}  // namespace condor::condorflow

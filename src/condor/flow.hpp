// The Condor end-to-end automation flow (paper §3.3).
//
// Drives the eight steps of the design automation flow across the three
// tiers of the framework:
//
//   1. Input Analysis            — Caffe prototxt/caffemodel or the Condor
//                                  JSON + weight file → HwNetwork + weights
//   2. Design Space Exploration  — optional automated DSE (the paper's
//                                  future-work extension) or the manual
//                                  annotations supplied by the user
//   3. Features-extraction stage — PE + filter characterization (codegen +
//                                  simulated HLS), layer creation
//   4. Classification stage      — fully-connected 1x1-convolution PEs
//   5. Connection of the layers  — the accelerator plan's stream edges
//   6. SDAccel integration       — kernel.xml + packaging (.xo folded into
//                                  the container)
//   7. Deployment on board       — XOCC stand-in: synthesis sign-off,
//                                  xclbin emission, default host code
//   8. AFI creation (cloud only) — stage the binary in S3, create-fpga-image,
//                                  return the AFI id for F1 instances
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "caffe/import.hpp"
#include "cloud/afi.hpp"
#include "cloud/s3.hpp"
#include "common/status.hpp"
#include "hls/codegen.hpp"
#include "hls/synthesis.hpp"
#include "hw/dse.hpp"
#include "hw/hw_ir.hpp"
#include "runtime/xclbin.hpp"

namespace condor::condorflow {

/// Frontend input (paper §3.1.1): exactly one of the three sources.
struct FrontendInput {
  // Source A: a pre-trained Caffe model.
  std::optional<std::string> prototxt_text;
  std::vector<std::byte> caffemodel_bytes;
  // Source B: the Condor-specific formats.
  std::optional<std::string> network_json_text;
  std::vector<std::byte> weight_file_bytes;
  // Source C: an ONNX model (the frontend extension the paper plans).
  std::optional<std::vector<std::byte>> onnx_bytes;

  // Hardware annotations applied when importing from Caffe (the Condor
  // JSON already carries its own).
  std::string board_id = "aws-f1";
  double target_frequency_mhz = 200.0;
};

enum class Deployment { kOnPremise, kCloud };

struct FlowOptions {
  Deployment deployment = Deployment::kOnPremise;
  /// Run the automated model-driven DSE before planning. When false the
  /// user-provided parallelism annotations are used as-is (the paper's
  /// "human intervention" mode).
  bool run_dse = false;
  hw::DseOptions dse;
  hls::SynthesisOptions synthesis;
  /// Cloud staging bucket (created if missing).
  std::string s3_bucket = "condor-artifacts";
  /// When set, artifacts (xclbin, weights, host code, reports, HLS sources)
  /// are also written under this directory.
  std::optional<std::string> output_dir;
};

/// Everything the flow produces.
struct FlowResult {
  hw::HwNetwork network;          ///< post-DSE configuration
  nn::WeightStore weights;
  hw::AcceleratorPlan plan;
  std::vector<hls::GeneratedSource> sources;
  hls::SynthesisReport synthesis;
  runtime::Xclbin xclbin;
  std::vector<std::byte> xclbin_bytes;
  std::vector<std::byte> weight_file_bytes;
  std::string kernel_name;
  std::string host_code;
  std::optional<cloud::AfiRecord> afi;  ///< cloud deployments only
};

/// Step 1 in isolation (exposed for tests): resolves the frontend input to
/// a hardware-annotated network + weights.
Result<std::pair<hw::HwNetwork, nn::WeightStore>> analyze_input(
    const FrontendInput& input);

class Flow {
 public:
  /// On-premise runs need no cloud environment; cloud runs require both.
  static Result<FlowResult> run(const FrontendInput& input,
                                const FlowOptions& options,
                                cloud::ObjectStore* store = nullptr,
                                cloud::AfiService* afi_service = nullptr);
};

}  // namespace condor::condorflow

// Deployment reporting: the rows of the paper's Table 1 (resource
// occupation, performance, power efficiency of an F1 deployment).
#pragma once

#include <string>
#include <vector>

#include "common/status.hpp"
#include "condor/flow.hpp"
#include "condor/power_model.hpp"

namespace condor::condorflow {

/// One evaluated deployment (one row of Table 1).
struct DeploymentReport {
  std::string name;
  double lut_pct = 0.0;
  double ff_pct = 0.0;
  double dsp_pct = 0.0;
  double bram_pct = 0.0;
  double achieved_mhz = 0.0;
  double gflops = 0.0;       ///< steady-state, from the cycle simulation
  double power_w = 0.0;
  double gflops_per_w = 0.0;
};

/// Derives the report from a completed flow run: utilization from the
/// synthesis report, GFLOPS from a long simulated batch at the achieved
/// clock, power from the power model.
Result<DeploymentReport> make_deployment_report(const FlowResult& result,
                                                const PowerModel& power = {});

/// Formats reports in the layout of paper Table 1.
std::string format_deployment_table(const std::vector<DeploymentReport>& rows);

}  // namespace condor::condorflow

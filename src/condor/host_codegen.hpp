// Default host code generation (paper §3.3 step 7):
//
//   "We also generate and provide the user with a default host code to run
//    and test the performance of the resulting accelerator. The user can
//    use this code as is or edit and adapt it according to her needs."
//
// The emitted program targets the condor::runtime::ocl API (the SDAccel
// OpenCL stand-in), loads the xclbin and the external weight file, streams
// a batch through the kernel and prints throughput.
#pragma once

#include <string>

#include "hw/hw_ir.hpp"

namespace condor::condorflow {

/// Emits the default host program for `network`'s accelerator. `kernel_name`
/// must match the kernel registered in the xclbin's meta.json.
std::string generate_host_code(const hw::HwNetwork& network,
                               const std::string& kernel_name);

}  // namespace condor::condorflow

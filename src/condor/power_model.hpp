// Board power model.
//
// F1 instances expose no power telemetry; the paper's GFLOPS/W figures
// imply roughly 4-6 W board power for both designs. This model combines the
// board's static (shell + idle fabric) power with activity-proportional
// dynamic terms per resource class, the standard CMOS P ≈ α·C·V²·f form
// collapsed into per-resource coefficients calibrated to that range.
#pragma once

#include "hw/board.hpp"
#include "hw/resource_model.hpp"

namespace condor::condorflow {

struct PowerModel {
  double watts_per_dsp_hz = 30e-12;    ///< W / (DSP * Hz)
  double watts_per_bram_hz = 15e-12;   ///< W / (BRAM36 * Hz)
  double watts_per_logic_hz = 12e-15;  ///< W / ((LUT+FF) * Hz)
};

/// Total board power of a design at `frequency_mhz`.
double estimate_power_w(const hw::BoardSpec& board, const hw::Resources& used,
                        double frequency_mhz, const PowerModel& model = {});

}  // namespace condor::condorflow

#include "condor/flow.hpp"

#include <filesystem>

#include "common/byte_io.hpp"
#include "common/logging.hpp"
#include "common/strings.hpp"
#include "condor/host_codegen.hpp"
#include "onnx/import.hpp"
#include "json/json.hpp"

namespace condor::condorflow {
namespace {

constexpr std::string_view kTag = "flow";

json::Value make_metadata(const hw::HwNetwork& network,
                          const hls::SynthesisReport& synthesis,
                          const std::string& kernel_name) {
  json::Object meta;
  meta.set("generator", "condor");
  meta.set("network", network.net.name());
  meta.set("board", network.hw.board_id);
  meta.set("kernel", kernel_name);
  meta.set("target_mhz", network.hw.target_frequency_mhz);
  meta.set("achieved_mhz", synthesis.achieved_clock_mhz);
  meta.set("data_type", std::string(nn::to_string(network.hw.data_type)));
  return meta;
}

Status write_artifacts(const FlowResult& result, const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return internal_error("cannot create output dir: " + ec.message());
  }
  CONDOR_RETURN_IF_ERROR(
      write_file(dir + "/accelerator.xclbin", result.xclbin_bytes));
  CONDOR_RETURN_IF_ERROR(write_file(dir + "/weights.bin", result.weight_file_bytes));
  CONDOR_RETURN_IF_ERROR(write_text_file(dir + "/host.cpp", result.host_code));
  CONDOR_RETURN_IF_ERROR(write_text_file(
      dir + "/network.json", hw::to_json_text(result.network)));
  CONDOR_RETURN_IF_ERROR(write_text_file(
      dir + "/synthesis.rpt", result.synthesis.to_string(result.plan.board)));
  const std::string src_dir = dir + "/hls_src";
  std::filesystem::create_directories(src_dir, ec);
  if (ec) {
    return internal_error("cannot create hls_src dir: " + ec.message());
  }
  for (const hls::GeneratedSource& source : result.sources) {
    CONDOR_RETURN_IF_ERROR(
        write_text_file(src_dir + "/" + source.file_name, source.code));
  }
  return Status::ok();
}

}  // namespace

Result<std::pair<hw::HwNetwork, nn::WeightStore>> analyze_input(
    const FrontendInput& input) {
  const bool has_caffe = input.prototxt_text.has_value();
  const bool has_condor = input.network_json_text.has_value();
  const bool has_onnx = input.onnx_bytes.has_value();
  if (static_cast<int>(has_caffe) + static_cast<int>(has_condor) +
          static_cast<int>(has_onnx) !=
      1) {
    return invalid_input(
        "frontend needs exactly one input source: a Caffe model, an ONNX "
        "model, or the Condor network representation");
  }
  if (has_onnx) {
    CONDOR_ASSIGN_OR_RETURN(onnx::OnnxModel model,
                            onnx::load_onnx_model(*input.onnx_bytes));
    hw::HwNetwork network = hw::with_default_annotations(
        std::move(model.network), input.board_id, input.target_frequency_mhz);
    return std::make_pair(std::move(network), std::move(model.weights));
  }
  if (has_caffe) {
    CONDOR_ASSIGN_OR_RETURN(
        caffe::CaffeModel model,
        caffe::load_caffe_model(*input.prototxt_text, input.caffemodel_bytes));
    hw::HwNetwork network = hw::with_default_annotations(
        std::move(model.network), input.board_id, input.target_frequency_mhz);
    return std::make_pair(std::move(network), std::move(model.weights));
  }
  CONDOR_ASSIGN_OR_RETURN(hw::HwNetwork network,
                          hw::from_json_text(*input.network_json_text));
  CONDOR_ASSIGN_OR_RETURN(nn::WeightStore weights,
                          nn::WeightStore::deserialize(input.weight_file_bytes));
  CONDOR_RETURN_IF_ERROR(weights.validate_against(network.net));
  return std::make_pair(std::move(network), std::move(weights));
}

Result<FlowResult> Flow::run(const FrontendInput& input, const FlowOptions& options,
                             cloud::ObjectStore* store,
                             cloud::AfiService* afi_service) {
  FlowResult result;

  // -- Step 1: input analysis -------------------------------------------
  CONDOR_LOG_INFO(kTag) << "step 1: input analysis";
  CONDOR_ASSIGN_OR_RETURN(auto analyzed, analyze_input(input));
  result.network = std::move(analyzed.first);
  result.weights = std::move(analyzed.second);

  // A fixed-point annotation re-derives the cost/timing presets so the DSE
  // and the synthesis estimates price the datapath the design actually
  // runs. Explicitly overridden models in the options are left alone for
  // float32 networks (the ablation benches rely on that).
  hw::DseOptions dse_options = options.dse;
  hls::SynthesisOptions synthesis_options = options.synthesis;
  if (nn::is_fixed_point(result.network.hw.data_type)) {
    const nn::DataType type = result.network.hw.data_type;
    CONDOR_LOG_INFO(kTag) << "numeric datapath: " << nn::to_string(type);
    dse_options.cost = hw::cost_model_for(type);
    dse_options.timing = hw::timing_model_for(type);
    synthesis_options.cost = dse_options.cost;
    synthesis_options.timing = dse_options.timing;
  }

  // -- Step 2: design space exploration ----------------------------------
  if (options.run_dse) {
    CONDOR_LOG_INFO(kTag) << "step 2: automated design space exploration";
    CONDOR_ASSIGN_OR_RETURN(hw::DseResult dse,
                            hw::explore(result.network, dse_options));
    result.network = std::move(dse.best.config);
  } else {
    CONDOR_LOG_INFO(kTag) << "step 2: DSE skipped (manual annotations)";
  }

  // -- Steps 3-5: layer creation + connection ----------------------------
  CONDOR_LOG_INFO(kTag) << "steps 3-5: layer creation and network creation";
  CONDOR_ASSIGN_OR_RETURN(result.plan, hw::plan_accelerator(result.network));
  CONDOR_ASSIGN_OR_RETURN(result.sources, hls::generate_all_sources(result.plan));
  CONDOR_ASSIGN_OR_RETURN(result.synthesis,
                          hls::synthesize(result.plan, synthesis_options));

  // -- Step 6: SDAccel integration ---------------------------------------
  CONDOR_LOG_INFO(kTag) << "step 6: SDAccel integration (kernel.xml + packaging)";
  result.kernel_name = result.network.net.name() + "_top";
  const std::string kernel_xml =
      runtime::generate_kernel_xml(result.kernel_name);

  // -- Step 7: deployment binary -----------------------------------------
  CONDOR_LOG_INFO(kTag) << "step 7: xclbin generation ("
                        << strings::format("%.0f MHz achieved",
                                           result.synthesis.achieved_clock_mhz)
                        << ")";
  result.xclbin.set_text_section("network.json", hw::to_json_text(result.network));
  result.xclbin.set_text_section("kernel.xml", kernel_xml);
  result.xclbin.set_text_section("synth.rpt",
                                 result.synthesis.to_string(result.plan.board));
  result.xclbin.set_text_section(
      "meta.json",
      json::dump(make_metadata(result.network, result.synthesis, result.kernel_name)));
  for (const hls::GeneratedSource& source : result.sources) {
    result.xclbin.set_text_section("src/" + source.file_name, source.code);
  }
  result.xclbin_bytes = result.xclbin.serialize();
  result.weight_file_bytes = result.weights.serialize();
  result.host_code = generate_host_code(result.network, result.kernel_name);

  if (options.output_dir.has_value()) {
    CONDOR_RETURN_IF_ERROR(write_artifacts(result, *options.output_dir));
  }

  // -- Step 8: AFI creation (cloud only) ----------------------------------
  if (options.deployment == Deployment::kCloud) {
    if (store == nullptr || afi_service == nullptr) {
      return invalid_input(
          "cloud deployment requires an object store and an AFI service "
          "(run inside the FPGA Developer AMI environment)");
    }
    CONDOR_LOG_INFO(kTag) << "step 8: staging design in s3://" << options.s3_bucket;
    CONDOR_RETURN_IF_ERROR(store->create_bucket(options.s3_bucket));
    const std::string key =
        result.network.net.name() + "/accelerator.xclbin";
    CONDOR_RETURN_IF_ERROR(
        store->put_object(options.s3_bucket, key, result.xclbin_bytes));
    CONDOR_ASSIGN_OR_RETURN(
        cloud::AfiRecord afi,
        afi_service->create_fpga_image(
            result.network.net.name(),
            "Condor-generated CNN accelerator for " + result.network.net.name(),
            options.s3_bucket, key));
    CONDOR_LOG_INFO(kTag) << "step 8: AFI " << afi.afi_id << " ("
                          << cloud::to_string(afi.state) << ")";
    result.afi = std::move(afi);
  }
  return result;
}

}  // namespace condor::condorflow

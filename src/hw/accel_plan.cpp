#include "hw/accel_plan.hpp"

#include <algorithm>

#include "common/logging.hpp"
#include "common/strings.hpp"

namespace condor::hw {
namespace {

constexpr std::string_view kTag = "accel-plan";

/// Inter-PE stream FIFOs only decouple rates; a shallow constant depth per
/// parallel lane suffices (the memory subsystem does the real buffering).
constexpr std::size_t kStreamFifoDepth = 16;

/// Fraction of board BRAM a classifier PE may claim for on-chip weights.
/// Classifier weights must reside on chip with the current methodology
/// (streaming FC weights is the "optimization of the classification part"
/// the paper leaves as future work), so exceeding this makes the design
/// unsynthesizable — the VGG-16 FC case called out in §4.
constexpr double kClassifierWeightBramFraction = 0.8;

constexpr std::size_t kBramBytes = 4608;  // one 36Kb block

bool is_transcendental(nn::Activation activation) noexcept {
  return activation == nn::Activation::kSigmoid ||
         activation == nn::Activation::kTanH;
}

}  // namespace

std::size_t MemoryPipelinePlan::buffered_elements() const noexcept {
  std::size_t total = 0;
  for (const FilterNode& node : filters) {
    total += node.fifo_to_next_depth;
  }
  return total;
}

std::vector<FilterNode> plan_filter_chain(std::size_t window_h,
                                          std::size_t window_w,
                                          std::size_t map_w) {
  // Enumerate window accesses in lexicographically inverse order: the head
  // of the chain sees the freshest stream element, which corresponds to the
  // largest (ky, kx) offset; the tail holds the oldest live element (0, 0).
  std::vector<FilterNode> chain;
  chain.reserve(window_h * window_w);
  for (std::size_t ky = window_h; ky-- > 0;) {
    for (std::size_t kx = window_w; kx-- > 0;) {
      FilterNode node;
      node.access = {ky, kx};
      chain.push_back(node);
    }
  }
  // FIFO between consecutive filters = spatial distance between the two
  // accesses in the row-major linearization of the input map.
  for (std::size_t i = 0; i + 1 < chain.size(); ++i) {
    const auto linear = [map_w](const WindowAccess& a) {
      return a.ky * map_w + a.kx;
    };
    chain[i].fifo_to_next_depth =
        linear(chain[i].access) - linear(chain[i + 1].access);
  }
  return chain;
}

Result<AcceleratorPlan> plan_accelerator(const HwNetwork& network) {
  CONDOR_RETURN_IF_ERROR(network.validate());
  CONDOR_ASSIGN_OR_RETURN(auto shapes, network.net.infer_shapes());
  CONDOR_ASSIGN_OR_RETURN(BoardSpec board, find_board(network.hw.board_id));

  AcceleratorPlan plan;
  plan.source = network;
  plan.board = board;

  const auto& layers = network.net.layers();
  const auto& annots = network.hw.layers;
  CONDOR_ASSIGN_OR_RETURN(const auto order, network.net.topological_order());
  CONDOR_ASSIGN_OR_RETURN(const auto consumers, network.net.consumers());

  // ---- Cluster layers into PEs ----------------------------------------
  // Layers are visited in topological order so every producer is planned
  // before its consumers; pe_of_layer records where each layer landed and
  // later drives the DAG edge derivation.
  constexpr std::size_t kUnplanned = static_cast<std::size_t>(-1);
  std::vector<std::size_t> pe_of_layer(layers.size(), kUnplanned);

  for (const std::size_t i : order) {
    const nn::LayerSpec& layer = layers[i];
    if (layer.kind == nn::LayerKind::kInput) {
      continue;
    }

    if (layer.kind == nn::LayerKind::kSoftmax) {
      // The normalization layer runs in the generated host code (it needs a
      // global reduction over the class scores, a poor fit for the spatial
      // pipeline and negligible work for the CPU).
      plan.softmax_on_host = true;
      continue;
    }

    CONDOR_ASSIGN_OR_RETURN(const auto prods, network.net.producers(i));

    // A layer may ride along inside the PE planned immediately before it
    // only when it consumes that PE's tail stream and nothing else taps it:
    // in a DAG, adjacency in topological order alone is not enough. Join
    // PEs never host extra passes — their module computes one merge.
    const bool chains_from_last_pe =
        prods.size() == 1 && !plan.pes.empty() &&
        pe_of_layer[prods.front()] == plan.pes.size() - 1 &&
        consumers[prods.front()].size() == 1 &&
        plan.pes.back().kind != PeKind::kJoin;

    if (layer.kind == nn::LayerKind::kActivation && chains_from_last_pe) {
      // Element-wise activations fold into the upstream PE's output loop.
      PePlan& host_pe = plan.pes.back();
      host_pe.layer_indices.push_back(i);
      host_pe.uses_transcendental |= is_transcendental(layer.activation);
      pe_of_layer[i] = plan.pes.size() - 1;
      continue;
    }

    const bool fuse_with_previous =
        annots[i].pe_group >= 0 && chains_from_last_pe &&
        annots[plan.pes.back().layer_indices.front()].pe_group ==
            annots[i].pe_group;

    if (fuse_with_previous) {
      plan.pes.back().layer_indices.push_back(i);
      pe_of_layer[i] = plan.pes.size() - 1;
    } else {
      PePlan pe;
      pe.layer_indices.push_back(i);
      switch (layer.kind) {
        case nn::LayerKind::kConvolution:
        case nn::LayerKind::kPooling:
          pe.kind = PeKind::kFeature;
          break;
        case nn::LayerKind::kInnerProduct:
          pe.kind = PeKind::kClassifier;
          break;
        case nn::LayerKind::kActivation:
        case nn::LayerKind::kUpsample:
          pe.kind = PeKind::kElementwise;
          break;
        case nn::LayerKind::kEltwiseAdd:
        case nn::LayerKind::kConcat:
          pe.kind = PeKind::kJoin;
          break;
        default:
          return internal_error("unexpected layer kind during clustering");
      }
      // The PE adopts the parallelism annotation of its first layer; fused
      // followers execute under the same port structure (paper §3.2).
      pe.parallel_in = annots[i].parallel_in;
      pe.parallel_out = annots[i].parallel_out;
      pe_of_layer[i] = plan.pes.size();
      plan.pes.push_back(std::move(pe));
    }
    if (layer.activation != nn::Activation::kNone) {
      plan.pes.back().uses_transcendental |= is_transcendental(layer.activation);
    }
  }

  if (plan.pes.empty()) {
    return invalid_input("network has no synthesizable layers");
  }

  // ---- Derive per-PE structures ----------------------------------------
  for (std::size_t p = 0; p < plan.pes.size(); ++p) {
    PePlan& pe = plan.pes[p];
    const nn::LayerSpec& first = layers[pe.layer_indices.front()];
    pe.name = strings::format("pe%zu_%s", p, first.name.c_str());

    if (pe.kind == PeKind::kFeature || pe.kind == PeKind::kElementwise) {
      // Memory subsystem: sized by the largest window among the fused
      // layers; FIFO depths by the largest input feature map (paper §3.2).
      // A standalone element-wise PE degenerates to a single 1x1 access.
      std::size_t window_h = 1;
      std::size_t window_w = 1;
      std::size_t map_h = 1;
      std::size_t map_w = 1;
      for (const std::size_t index : pe.layer_indices) {
        const nn::LayerSpec& fused = layers[index];
        if (!fused.is_feature_extraction()) {
          // Element-wise pass: a 1x1 window over its blob.
          const Shape& in = shapes[index].input;
          if (in.rank() == 3) {
            map_h = std::max(map_h, in[1]);
            map_w = std::max(map_w, in[2]);
          } else {
            map_w = std::max(map_w, in.element_count());
          }
          continue;
        }
        window_h = std::max(window_h, fused.kernel_h);
        window_w = std::max(window_w, fused.kernel_w);
        map_h = std::max(map_h, shapes[index].input[1] + 2 * fused.pad);
        map_w = std::max(map_w, shapes[index].input[2] + 2 * fused.pad);
      }
      MemoryPipelinePlan memory;
      memory.window_h = window_h;
      memory.window_w = window_w;
      memory.map_h = map_h;
      memory.map_w = map_w;
      memory.filters = plan_filter_chain(window_h, window_w, map_w);
      pe.memory = std::move(memory);
    }

    // Weight storage and concurrent MAC datapaths.
    for (const std::size_t index : pe.layer_indices) {
      const nn::LayerSpec& fused = layers[index];
      if (fused.kind == nn::LayerKind::kConvolution) {
        // Feature PEs hold the weight slice for the output maps currently
        // being computed (double-buffered so the datamover can prefetch the
        // next slice); the full set streams from on-board memory.
        const std::size_t in_channels = shapes[index].input[0];
        const std::size_t slice =
            in_channels * fused.kernel_h * fused.kernel_w * pe.parallel_out +
            (fused.has_bias ? pe.parallel_out : 0);
        pe.weight_elements = std::max(pe.weight_elements, 2 * slice);
        pe.macs_per_cycle =
            std::max(pe.macs_per_cycle, pe.parallel_in * pe.parallel_out *
                                            fused.kernel_h * fused.kernel_w);
      } else if (fused.kind == nn::LayerKind::kInnerProduct) {
        // Classifier weights reside fully on chip with the current
        // methodology (see kClassifierWeightBramFraction).
        const std::size_t in_count = shapes[index].input.element_count();
        pe.weight_elements += in_count * fused.num_output +
                              (fused.has_bias ? fused.num_output : 0);
        pe.macs_per_cycle =
            std::max<std::size_t>(pe.macs_per_cycle, pe.parallel_in * pe.parallel_out);
      } else if (fused.kind == nn::LayerKind::kPooling) {
        // No multipliers; the window adder/comparator tree is costed by the
        // resource model from the memory subsystem geometry.
      }
    }

    if (pe.kind == PeKind::kClassifier) {
      const std::uint64_t weight_bytes =
          static_cast<std::uint64_t>(pe.weight_elements) * sizeof(float);
      const std::uint64_t budget_bytes = static_cast<std::uint64_t>(
          static_cast<double>(board.capacity.bram36) * kBramBytes *
          kClassifierWeightBramFraction);
      if (weight_bytes > budget_bytes) {
        return unsynthesizable(strings::format(
            "classifier PE '%s' needs %s of on-chip weight storage but board "
            "%s offers at most %s; fully-connected layers of this size are "
            "not synthesizable with the current methodology",
            pe.name.c_str(), strings::human_bytes(weight_bytes).c_str(),
            board.id.c_str(), strings::human_bytes(budget_bytes).c_str()));
      }
    }
  }

  // ---- Stream edges: the inter-PE DAG with datamover at the rims --------
  // Each PE contributes the edges feeding its head layer, in producer
  // (= operand port) order; a linear chain therefore reproduces the legacy
  // datamover -> pe0 -> ... -> peN -> datamover edge list byte-for-byte.
  for (std::size_t p = 0; p < plan.pes.size(); ++p) {
    const std::size_t head = plan.pes[p].layer_indices.front();
    CONDOR_ASSIGN_OR_RETURN(const auto prods, network.net.producers(head));
    for (std::size_t port = 0; port < prods.size(); ++port) {
      const std::size_t prod = prods[port];
      StreamEdge edge;
      edge.to_pe = p;
      edge.to_port = port;
      if (layers[prod].kind == nn::LayerKind::kInput) {
        edge.from_pe = StreamEdge::kDatamover;
        edge.fifo_depth = kStreamFifoDepth * plan.pes[p].parallel_in;
      } else {
        const std::size_t from = pe_of_layer[prod];
        if (from == kUnplanned) {
          return internal_error(strings::format(
              "layer '%s' consumes '%s' which was not mapped to any PE",
              layers[head].name.c_str(), layers[prod].name.c_str()));
        }
        edge.from_pe = from;
        edge.fifo_depth =
            kStreamFifoDepth *
            std::max(plan.pes[from].parallel_out, plan.pes[p].parallel_in);
      }
      plan.edges.push_back(edge);
    }
  }
  // The sink layer's PE feeds the output datamover (softmax, when deferred
  // to the host, post-processes that stream on the CPU side).
  std::size_t sink_layer = layers.size() - 1;
  if (plan.softmax_on_host) {
    CONDOR_ASSIGN_OR_RETURN(const auto prods,
                            network.net.producers(sink_layer));
    sink_layer = prods.front();
  }
  if (pe_of_layer[sink_layer] == kUnplanned) {
    return internal_error("network sink was not mapped to any PE");
  }
  StreamEdge out_edge;
  out_edge.from_pe = pe_of_layer[sink_layer];
  out_edge.to_pe = StreamEdge::kDatamover;
  out_edge.fifo_depth =
      kStreamFifoDepth * plan.pes[out_edge.from_pe].parallel_out;
  plan.edges.push_back(out_edge);

  CONDOR_LOG_INFO(kTag) << "planned " << plan.pes.size() << " PEs for '"
                        << network.net.name() << "' on " << board.id;
  return plan;
}

std::string describe(const AcceleratorPlan& plan) {
  // The datapath is mentioned only when it deviates from the paper's
  // float32, keeping the default dump byte-identical.
  const std::string datapath =
      nn::is_fixed_point(plan.data_type())
          ? strings::format(" [%s datapath]",
                            std::string(nn::to_string(plan.data_type())).c_str())
          : "";
  std::string out = strings::format(
      "accelerator for '%s' on %s: %zu PEs%s%s\n", plan.source.net.name().c_str(),
      plan.board.id.c_str(), plan.pes.size(),
      plan.softmax_on_host ? " (+softmax on host)" : "", datapath.c_str());
  for (const PePlan& pe : plan.pes) {
    const char* kind = "feature";
    switch (pe.kind) {
      case PeKind::kFeature:
        kind = "feature";
        break;
      case PeKind::kClassifier:
        kind = "classifier";
        break;
      case PeKind::kElementwise:
        kind = "elementwise";
        break;
      case PeKind::kJoin:
        kind = "join";
        break;
    }
    out += strings::format("  %-20s %-11s layers=%zu Pin=%zu Pout=%zu", pe.name.c_str(),
                           kind, pe.layer_indices.size(), pe.parallel_in,
                           pe.parallel_out);
    if (pe.memory.has_value()) {
      out += strings::format("  window=%zux%zu filters=%zu buffered=%zu",
                             pe.memory->window_h, pe.memory->window_w,
                             pe.memory->filters.size(),
                             pe.memory->buffered_elements());
    }
    if (pe.weight_elements > 0) {
      out += strings::format("  weights=%zu", pe.weight_elements);
    }
    out += "\n";
  }
  return out;
}

}  // namespace condor::hw

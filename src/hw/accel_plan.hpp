// Accelerator planning: the core-logic "Layer Creation" and "Network
// Creation" modules (paper §3.1.2, §3.2, §3.3 steps 3-5).
//
// From a hardware-annotated network this derives the complete structural
// description of the dataflow accelerator:
//
//  * one PE per layer cluster (pe_group fusion, or 1:1 spatial unfolding),
//  * for every feature-extraction PE, the memory subsystem: per parallel
//    input map, a pipeline of filters interleaved by FIFOs implementing
//    non-uniform memory partitioning (Cong et al., DAC'14). Filters are
//    ordered in lexicographically inverse order of their window access and
//    each inter-filter FIFO is sized as the spatial distance between the two
//    accesses it separates, so exactly the live span of the sliding window
//    ((Kh-1)*W + Kw-1 elements) is buffered on chip,
//  * fully-connected layers planned as single-input/single-output 1x1
//    convolution PEs without a memory subsystem (§3.3 step 4),
//  * the inter-PE stream edges and the datamover attachment points.
//
// The plan is consumed by three backends: the resource model (area), the
// HLS code generator (C sources), and the dataflow engine (simulation).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "hw/hw_ir.hpp"

namespace condor::hw {

enum class PeKind {
  kFeature,     ///< convolution / pooling (possibly fused run of them)
  kClassifier,  ///< fully-connected layers as 1x1 convolutions
  kElementwise, ///< standalone activation / upsample that could not be fused
  kJoin,        ///< two-input eltwise-add / concat merge point of a DAG
};

/// One access point of the sliding window, identified by its (ky, kx)
/// offset within the window.
struct WindowAccess {
  std::size_t ky = 0;
  std::size_t kx = 0;
};

/// One filter in a memory pipeline plus the FIFO connecting it to the next
/// filter downstream (depth 0 for the last filter in the chain).
struct FilterNode {
  WindowAccess access;
  std::size_t fifo_to_next_depth = 0;
};

/// The reuse-buffer pipeline for ONE concurrently-read input feature map.
/// A PE with parallel_in = P instantiates P copies.
struct MemoryPipelinePlan {
  std::size_t window_h = 0;  ///< largest window among the fused layers
  std::size_t window_w = 0;
  std::size_t map_h = 0;     ///< largest input map among the fused layers
  std::size_t map_w = 0;     ///< (governs FIFO sizing, paper §3.2)
  std::vector<FilterNode> filters;  ///< lexicographically inverse order

  /// Total elements held in inter-filter FIFOs = (Kh-1)*W + (Kw-1).
  [[nodiscard]] std::size_t buffered_elements() const noexcept;
};

/// One processing element of the high-level pipeline.
struct PePlan {
  std::string name;
  PeKind kind = PeKind::kFeature;
  std::vector<std::size_t> layer_indices;  ///< network layer indices, in order
  std::size_t parallel_in = 1;
  std::size_t parallel_out = 1;
  std::optional<MemoryPipelinePlan> memory;  ///< feature PEs only

  // Derived figures used by the resource/performance models.
  std::size_t weight_elements = 0;  ///< on-chip weight+bias storage (floats)
  std::size_t macs_per_cycle = 0;   ///< concurrent MAC datapaths
  bool uses_transcendental = false; ///< tanh/sigmoid present (DSP-heavy)
};

/// A FIFO stream edge between PEs (or datamover endpoints). The edge list
/// carries the plan's DAG: a PE appearing as from_pe on several edges fans
/// its output blob out to every consumer, and a join PE receives its two
/// operands on to_port 0 and 1 (matching its layer's `inputs` order).
struct StreamEdge {
  std::size_t from_pe = 0;  ///< index into pes, or kDatamover
  std::size_t to_pe = 0;
  std::size_t to_port = 0;  ///< operand index at the consumer (joins: 0/1)
  std::size_t fifo_depth = 0;
  static constexpr std::size_t kDatamover = static_cast<std::size_t>(-1);
};

/// Complete structural plan of one accelerator.
struct AcceleratorPlan {
  HwNetwork source;
  BoardSpec board;
  std::vector<PePlan> pes;       ///< topological pipeline order
  std::vector<StreamEdge> edges; ///< the inter-PE DAG, datamover at the rims
  bool softmax_on_host = false;  ///< final softmax deferred to host code

  /// Depth of the high-level pipeline (#PEs) — governs the batch size at
  /// which Figure 5's mean-time-per-image curve converges.
  [[nodiscard]] std::size_t pipeline_depth() const noexcept { return pes.size(); }

  /// Numeric datapath selected by the source annotations; honored by the
  /// dataflow engine, the HLS code generator and the cost/timing models.
  [[nodiscard]] nn::DataType data_type() const noexcept {
    return source.hw.data_type;
  }
};

/// Derives the filter chain for a Kh x Kw window over a map_w-wide input:
/// accesses in lexicographically inverse order, FIFO depths equal to the
/// spatial distance to the next access. Exposed for direct unit testing.
std::vector<FilterNode> plan_filter_chain(std::size_t window_h, std::size_t window_w,
                                          std::size_t map_w);

/// Builds the accelerator plan. Fails with kUnsynthesizable when a layer
/// cannot be mapped (e.g. a classifier layer whose weight storage exceeds
/// any single PE's addressable BRAM — the VGG-16 FC case from the paper).
Result<AcceleratorPlan> plan_accelerator(const HwNetwork& network);

/// Human-readable plan dump (one line per PE + memory subsystem summary).
std::string describe(const AcceleratorPlan& plan);

}  // namespace condor::hw

#include "hw/board.hpp"

#include <algorithm>
#include <cmath>

#include "common/strings.hpp"

namespace condor::hw {

Resources& Resources::operator+=(const Resources& other) noexcept {
  luts += other.luts;
  ffs += other.ffs;
  dsps += other.dsps;
  bram36 += other.bram36;
  return *this;
}

Resources Resources::scaled(std::uint64_t factor) const noexcept {
  return Resources{luts * factor, ffs * factor, dsps * factor, bram36 * factor};
}

bool Resources::fits_within(const Resources& budget) const noexcept {
  return luts <= budget.luts && ffs <= budget.ffs && dsps <= budget.dsps &&
         bram36 <= budget.bram36;
}

double Resources::max_utilization(const Resources& budget) const noexcept {
  const auto ratio = [](std::uint64_t used, std::uint64_t avail) {
    if (avail == 0) {
      return used == 0 ? 0.0 : std::numeric_limits<double>::infinity();
    }
    return static_cast<double>(used) / static_cast<double>(avail);
  };
  return std::max({ratio(luts, budget.luts), ratio(ffs, budget.ffs),
                   ratio(dsps, budget.dsps), ratio(bram36, budget.bram36)});
}

std::string Resources::to_string() const {
  return strings::format("LUT=%llu FF=%llu DSP=%llu BRAM36=%llu",
                         static_cast<unsigned long long>(luts),
                         static_cast<unsigned long long>(ffs),
                         static_cast<unsigned long long>(dsps),
                         static_cast<unsigned long long>(bram36));
}

const std::vector<BoardSpec>& board_database() {
  static const std::vector<BoardSpec> kBoards = {
      {
          .id = "aws-f1",
          .display_name = "AWS EC2 F1 (xcvu9p, AWS shell)",
          .part = "xcvu9p-flgb2104-2-i",
          // VU9P totals: 1,182,240 LUT / 2,364,480 FF / 6,840 DSP /
          // 2,160 BRAM36. The paper's Table 1 percentages are reported
          // against the full device, so capacity keeps device totals; the
          // shell cost appears as platform overhead in the resource model.
          .capacity = {1'182'240, 2'364'480, 6'840, 2'160},
          .max_frequency_mhz = 250.0,
          .dram_bandwidth_gbps = 64.0,  // 4x DDR4-2133 channels
          .static_power_w = 3.5,
          .cloud = true,
      },
      {
          .id = "zc706",
          .display_name = "Xilinx ZC706 (Zynq-7045)",
          .part = "xc7z045-ffg900-2",
          .capacity = {218'600, 437'200, 900, 545},
          .max_frequency_mhz = 200.0,
          .dram_bandwidth_gbps = 12.8,
          .static_power_w = 1.8,
          .cloud = false,
      },
      {
          .id = "zedboard",
          .display_name = "Avnet ZedBoard (Zynq-7020)",
          .part = "xc7z020-clg484-1",
          .capacity = {53'200, 106'400, 220, 140},
          .max_frequency_mhz = 150.0,
          .dram_bandwidth_gbps = 4.2,
          .static_power_w = 1.2,
          .cloud = false,
      },
      {
          .id = "kcu1500",
          .display_name = "Xilinx KCU1500 (Kintex UltraScale KU115)",
          .part = "xcku115-flvb2104-2-e",
          .capacity = {663'360, 1'326'720, 5'520, 2'160},
          .max_frequency_mhz = 250.0,
          .dram_bandwidth_gbps = 38.4,
          .static_power_w = 2.8,
          .cloud = false,
      },
  };
  return kBoards;
}

Result<BoardSpec> find_board(std::string_view id) {
  const std::string lower = strings::to_lower(id);
  for (const BoardSpec& board : board_database()) {
    if (board.id == lower) {
      return board;
    }
  }
  return not_found("unknown board '" + std::string(id) + "'");
}

const BoardSpec& aws_f1_board() { return board_database().front(); }

}  // namespace condor::hw

// Roofline analysis (after Zhang et al., FPGA'15 [13], who select CNN
// accelerator designs with a roofline model).
//
// For a board: the compute roof is the peak MAC throughput the DSP budget
// sustains at a clock; the bandwidth roof is operational intensity times
// DDR bandwidth. For a design point: operational intensity = accelerator
// FLOPs per byte moved over DDR per image, attainable performance =
// min(compute roof, intensity * bandwidth), and achieved performance from
// the performance model. The gap between achieved and attainable exposes
// pipeline imbalance (bottleneck PEs idling the rest of the array).
#pragma once

#include <string>
#include <vector>

#include "common/status.hpp"
#include "hw/performance_model.hpp"

namespace condor::hw {

/// Board-level roofs at a given clock and numeric type cost.
struct RooflineRoofs {
  double peak_gflops = 0.0;        ///< DSP-budget compute roof
  double bandwidth_gbps = 0.0;     ///< DDR roof slope
  /// Intensity where the two roofs meet (FLOP/byte).
  [[nodiscard]] double ridge_intensity() const noexcept {
    return bandwidth_gbps > 0.0 ? peak_gflops / bandwidth_gbps : 0.0;
  }
  /// Attainable performance at a given operational intensity.
  [[nodiscard]] double attainable_gflops(double intensity) const noexcept;
};

/// One design point placed under the roofs.
struct RooflinePoint {
  std::string name;
  double intensity = 0.0;          ///< FLOP per DDR byte
  double attainable_gflops = 0.0;  ///< roof at this intensity
  double achieved_gflops = 0.0;    ///< from the performance model
  /// Fraction of the attainable roof actually achieved (0..1).
  [[nodiscard]] double efficiency() const noexcept {
    return attainable_gflops > 0.0 ? achieved_gflops / attainable_gflops : 0.0;
  }
};

/// Computes the board roofs. `macs_per_dsp_budget`: how many DSPs one
/// fully-pipelined MAC costs with the active cost model (4 for fp32: 2 for
/// the multiply + 2 for the add; 1 for fixed16).
RooflineRoofs board_roofs(const BoardSpec& board, double frequency_mhz,
                          double dsps_per_mac = 4.0);

/// Places a design under the roofs using its performance estimate.
Result<RooflinePoint> roofline_point(const AcceleratorPlan& plan,
                                     const PerformanceEstimate& estimate,
                                     std::string name);

}  // namespace condor::hw

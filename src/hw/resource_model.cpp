#include "hw/resource_model.hpp"

#include <cmath>

#include "common/strings.hpp"

namespace condor::hw {
namespace {

std::uint64_t ceil_div(std::uint64_t a, std::uint64_t b) noexcept {
  return (a + b - 1) / b;
}

/// BRAM blocks needed to hold `elements` datapath words.
std::uint64_t bram_for_elements(std::size_t elements, const CostModel& cost) {
  if (elements == 0) {
    return 0;
  }
  return ceil_div(static_cast<std::uint64_t>(elements) * cost.element_bytes,
                  cost.bram_bytes);
}

}  // namespace

CostModel cost_model_for(nn::DataType type) {
  CostModel cost;  // float32 defaults
  cost.element_bytes = nn::bytes_per_element(type);
  switch (type) {
    case nn::DataType::kFloat32:
      break;
    case nn::DataType::kFixed16:
      // int16 MAC: one DSP48 multiplier, fabric adder; activations as
      // BRAM-backed lookup tables.
      cost.fmul = {30, 60, 1, 0};
      cost.fadd = {18, 20, 0, 0};
      cost.fcmp = {18, 12, 0, 0};
      cost.fdiv = {220, 300, 0, 0};
      cost.ftanh = {120, 160, 0, 2};
      cost.fsigmoid = {120, 160, 0, 2};
      cost.fifo_lut_per_element = 0.3;
      break;
    case nn::DataType::kFixed8:
      // int8 multipliers fit in LUTs (or two per DSP — modeled as fabric).
      cost.fmul = {40, 30, 0, 0};
      cost.fadd = {10, 12, 0, 0};
      cost.fcmp = {10, 8, 0, 0};
      cost.fdiv = {120, 160, 0, 0};
      cost.ftanh = {60, 80, 0, 1};
      cost.fsigmoid = {60, 80, 0, 1};
      cost.fifo_lut_per_element = 0.15;
      break;
  }
  return cost;
}

Resources fifo_cost(std::size_t depth, const CostModel& cost) {
  if (depth == 0) {
    return {};
  }
  if (depth <= cost.fifo_lutram_threshold) {
    Resources r;
    r.luts = static_cast<std::uint64_t>(
        std::ceil(cost.fifo_lut_per_element * static_cast<double>(depth)));
    r.ffs = 40;  // handshake + pointers
    return r;
  }
  Resources r;
  r.luts = 90;  // BRAM FIFO wrapper logic
  r.ffs = 120;
  r.bram36 = bram_for_elements(depth, cost);
  return r;
}

Resources pe_cost(const AcceleratorPlan& plan, std::size_t pe_index,
                  const CostModel& cost) {
  const PePlan& pe = plan.pes[pe_index];
  const auto& layers = plan.source.net.layers();
  Resources total = cost.pe_base;
  total += cost.pe_per_layer.scaled(pe.layer_indices.size());

  // Arithmetic datapath. Conv/classifier: one fp32 multiplier per concurrent
  // MAC plus a balanced adder tree; pooling: comparator or adder tree per
  // window; activations: one pipeline per parallel output lane.
  std::size_t mul_units = 0;
  std::size_t add_units = 0;
  std::size_t cmp_units = 0;
  std::size_t div_units = 0;
  std::size_t tanh_units = 0;
  std::size_t sigmoid_units = 0;
  // Activation pipelines are shared across a fused PE's time-multiplexed
  // layers (only one layer's activation runs at a time), so their unit
  // counts max-share across layers — identical to summing for the
  // single-layer PE case.
  std::size_t act_mul_units = 0;
  std::size_t act_cmp_units = 0;
  std::size_t act_tanh_units = 0;
  std::size_t act_sigmoid_units = 0;
  for (const std::size_t index : pe.layer_indices) {
    const nn::LayerSpec& layer = layers[index];
    switch (layer.kind) {
      case nn::LayerKind::kConvolution: {
        const std::size_t window = layer.kernel_h * layer.kernel_w;
        const std::size_t lanes = pe.parallel_in * pe.parallel_out;
        mul_units = std::max(mul_units, window * lanes);
        // Adder tree (window*lanes - lanes) + accumulator + bias add.
        add_units = std::max(add_units, window * lanes - lanes + pe.parallel_out +
                                            (layer.has_bias ? pe.parallel_out : 0));
        break;
      }
      case nn::LayerKind::kPooling: {
        const std::size_t window = layer.kernel_h * layer.kernel_w;
        const std::size_t lanes = pe.parallel_in;
        if (layer.pool_method == nn::PoolMethod::kMax) {
          cmp_units = std::max(cmp_units, (window - 1) * lanes);
        } else {
          add_units = std::max(add_units, (window - 1) * lanes);
          mul_units = std::max<std::size_t>(mul_units, lanes);  // x 1/N
        }
        break;
      }
      case nn::LayerKind::kInnerProduct: {
        const std::size_t lanes = pe.parallel_in * pe.parallel_out;
        mul_units = std::max(mul_units, lanes);
        add_units = std::max(add_units, lanes + (layer.has_bias ? 1 : 0));
        break;
      }
      case nn::LayerKind::kEltwiseAdd:
        // One adder lane per parallel output map; the fixed-point realign
        // shifts are wiring, not arithmetic units.
        add_units = std::max(add_units, pe.parallel_out);
        break;
      case nn::LayerKind::kConcat:
      case nn::LayerKind::kUpsample:
        break;  // pure routing: stream muxes are covered by pe_base
      default:
        break;
    }
    switch (layer.activation) {
      case nn::Activation::kTanH:
        act_tanh_units = std::max(act_tanh_units, pe.parallel_out);
        break;
      case nn::Activation::kSigmoid:
        act_sigmoid_units = std::max(act_sigmoid_units, pe.parallel_out);
        break;
      case nn::Activation::kReLU:
        // A comparator against zero.
        act_cmp_units = std::max(act_cmp_units, pe.parallel_out);
        break;
      case nn::Activation::kLeakyReLU:
        // Sign test, then x * slope on the low branch.
        act_cmp_units = std::max(act_cmp_units, pe.parallel_out);
        act_mul_units = std::max(act_mul_units, pe.parallel_out);
        break;
      case nn::Activation::kNone:
        break;
    }
  }
  mul_units += act_mul_units;
  cmp_units += act_cmp_units;
  tanh_units += act_tanh_units;
  sigmoid_units += act_sigmoid_units;
  total += cost.fmul.scaled(mul_units);
  total += cost.fadd.scaled(add_units);
  total += cost.fcmp.scaled(cmp_units);
  total += cost.fdiv.scaled(div_units);
  total += cost.ftanh.scaled(tanh_units);
  total += cost.fsigmoid.scaled(sigmoid_units);

  // Memory subsystem: parallel_in replicas of the filter chain + its FIFOs.
  if (pe.memory.has_value()) {
    Resources chain = cost.filter.scaled(pe.memory->filters.size());
    for (const FilterNode& node : pe.memory->filters) {
      chain += fifo_cost(node.fifo_to_next_depth, cost);
    }
    total += chain.scaled(pe.parallel_in);
  }

  // On-chip weight storage (slice buffers for feature PEs, full weights for
  // classifier PEs).
  total.bram36 += bram_for_elements(pe.weight_elements, cost);

  // Input re-scan / output accumulation staging buffers are added by
  // estimate_resources_unchecked: the on-chip-vs-spill decision needs the
  // board budget, which pe_cost alone does not see.
  return total;
}

ResourceReport estimate_resources_unchecked(const AcceleratorPlan& plan,
                                            const CostModel& cost) {
  ResourceReport report;
  report.platform =
      plan.board.cloud ? cost.platform_f1 : cost.platform_onprem;
  report.total = report.platform;
  report.spills_to_ddr.assign(plan.pes.size(), false);

  const auto shapes_result = plan.source.net.infer_shapes();
  const auto& shapes = shapes_result.value();  // plan guarantees validity
  const std::uint64_t buffer_budget_bram = static_cast<std::uint64_t>(
      static_cast<double>(plan.board.capacity.bram36) *
      cost.buffer_spill_fraction);

  for (std::size_t p = 0; p < plan.pes.size(); ++p) {
    const PePlan& pe = plan.pes[p];
    Resources r = pe_cost(plan, p, cost);

    // Stage buffers (see pe_cost comment): decided here because the spill
    // policy depends on the board budget.
    if (pe.kind == PeKind::kFeature) {
      std::uint64_t stage_bram = 0;
      for (const std::size_t index : pe.layer_indices) {
        const nn::LayerSpec& layer = plan.source.net.layers()[index];
        if (layer.kind != nn::LayerKind::kConvolution) {
          continue;
        }
        const Shape& in = shapes[index].input;
        const Shape& out = shapes[index].output;
        const bool multi_pass = shapes[index].output[0] > pe.parallel_out &&
                                in[0] > pe.parallel_in;
        if (multi_pass) {
          // Ping-pong staging of the input set + output accumulators.
          stage_bram = std::max(
              stage_bram, 2 * bram_for_elements(in.element_count(), cost) +
                              bram_for_elements(out[1] * out[2] * pe.parallel_out,
                                                cost));
        } else {
          stage_bram = std::max(
              stage_bram,
              bram_for_elements(out[1] * out[2] * pe.parallel_out, cost));
        }
      }
      if (stage_bram > buffer_budget_bram) {
        report.spills_to_ddr[p] = true;  // re-stream from DDR instead
      } else {
        r.bram36 += stage_bram;
      }
    }

    report.modules.push_back({pe.name, r});
    report.total += r;
  }

  report.modules.push_back({"datamover", cost.datamover});
  report.total += cost.datamover;

  // Inter-PE stream FIFOs.
  Resources stream_fifos;
  for (const StreamEdge& edge : plan.edges) {
    stream_fifos += fifo_cost(edge.fifo_depth, cost);
  }
  report.modules.push_back({"stream_fifos", stream_fifos});
  report.total += stream_fifos;

  return report;
}

Result<ResourceReport> estimate_resources(const AcceleratorPlan& plan,
                                          const CostModel& cost) {
  ResourceReport report = estimate_resources_unchecked(plan, cost);
  if (!report.total.fits_within(plan.board.capacity)) {
    return unsynthesizable(strings::format(
        "design needs %s but board %s offers %s",
        report.total.to_string().c_str(), plan.board.id.c_str(),
        plan.board.capacity.to_string().c_str()));
  }
  return report;
}

double ResourceReport::lut_percent(const BoardSpec& board) const noexcept {
  return 100.0 * static_cast<double>(total.luts) /
         static_cast<double>(board.capacity.luts);
}
double ResourceReport::ff_percent(const BoardSpec& board) const noexcept {
  return 100.0 * static_cast<double>(total.ffs) /
         static_cast<double>(board.capacity.ffs);
}
double ResourceReport::dsp_percent(const BoardSpec& board) const noexcept {
  return 100.0 * static_cast<double>(total.dsps) /
         static_cast<double>(board.capacity.dsps);
}
double ResourceReport::bram_percent(const BoardSpec& board) const noexcept {
  return 100.0 * static_cast<double>(total.bram36) /
         static_cast<double>(board.capacity.bram36);
}

std::string ResourceReport::to_string(const BoardSpec& board) const {
  std::string out = strings::format("%-22s %10s %10s %6s %8s\n", "module", "LUT",
                                    "FF", "DSP", "BRAM36");
  out += strings::format("%-22s %10llu %10llu %6llu %8llu\n", "platform",
                         static_cast<unsigned long long>(platform.luts),
                         static_cast<unsigned long long>(platform.ffs),
                         static_cast<unsigned long long>(platform.dsps),
                         static_cast<unsigned long long>(platform.bram36));
  for (const ModuleEstimate& module : modules) {
    out += strings::format("%-22s %10llu %10llu %6llu %8llu\n",
                           module.name.c_str(),
                           static_cast<unsigned long long>(module.resources.luts),
                           static_cast<unsigned long long>(module.resources.ffs),
                           static_cast<unsigned long long>(module.resources.dsps),
                           static_cast<unsigned long long>(module.resources.bram36));
  }
  out += strings::format("%-22s %10llu %10llu %6llu %8llu\n", "TOTAL",
                         static_cast<unsigned long long>(total.luts),
                         static_cast<unsigned long long>(total.ffs),
                         static_cast<unsigned long long>(total.dsps),
                         static_cast<unsigned long long>(total.bram36));
  out += strings::format("%-22s %9.2f%% %9.2f%% %5.2f%% %7.2f%%\n", "utilization",
                         lut_percent(board), ff_percent(board), dsp_percent(board),
                         bram_percent(board));
  return out;
}

}  // namespace condor::hw

// Timing-closure model: the achieved post-implementation clock.
//
// In the original flow, Vivado place-and-route decides the kernel clock the
// design actually closes at; the paper reports 100 MHz for TC1 and 180 MHz
// for LeNet on F1. This model reproduces the dominant effects:
//
//  * deep floating-point adder trees (wide unrolled windows) lengthen the
//    critical path — a few percent per tree level;
//  * transcendental activation pipelines (tanh/sigmoid, exp-based fp32)
//    close far below fabric speed in 2017-era HLS — they cap TC1 near
//    100 MHz;
//  * heavily-utilized designs (BRAM columns for big weight stores, DSP
//    congestion, LUT pressure) pay a routing penalty — LeNet's ~24% BRAM
//    pulls it from ~215 to ~180 MHz;
//  * SDAccel kernel clocks are configured in discrete 5 MHz steps.
//
// Constants live in TimingModel so tests and ablations can perturb them.
#pragma once

#include "hw/accel_plan.hpp"
#include "hw/resource_model.hpp"

namespace condor::hw {

struct TimingModel {
  double base_fmax_mhz = 250.0;          ///< HLS dataflow fabric ceiling
  double tree_level_factor = 0.97;       ///< per adder-tree level
  double transcendental_factor = 0.46;   ///< tanh/sigmoid critical path
  double bram_pressure_threshold = 15.0; ///< % BRAM before routing penalty
  double bram_pressure_factor = 0.85;
  double dsp_pressure_threshold = 30.0;  ///< % DSP before routing penalty
  double dsp_pressure_factor = 0.90;
  double lut_pressure_threshold = 50.0;  ///< % LUT before routing penalty
  double lut_pressure_factor = 0.85;
  double quantum_mhz = 5.0;              ///< kernel clock granularity
};

/// Timing-model presets per datapath numeric type (quantization study):
/// integer carry chains are shorter than fp adder cascades and table-based
/// activations lose the transcendental critical path entirely.
TimingModel timing_model_for(nn::DataType type);

/// Achieved Fmax of one PE in isolation (before design-level pressure).
double pe_fmax_mhz(const AcceleratorPlan& plan, std::size_t pe_index,
                   const TimingModel& model = {});

/// Achieved kernel clock for the whole design: min over PEs, degraded by
/// utilization pressure, clamped to the board ceiling and the requested
/// target, quantized down to the clock quantum. Never below the quantum.
double achieved_frequency_mhz(const AcceleratorPlan& plan,
                              const ResourceReport& report,
                              const TimingModel& model = {});

}  // namespace condor::hw

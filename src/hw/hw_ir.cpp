#include "hw/hw_ir.hpp"

#include <map>

#include "common/strings.hpp"

namespace condor::hw {

Status HwNetwork::validate() const {
  CONDOR_RETURN_IF_ERROR(net.validate());
  if (hw.layers.size() != net.layer_count()) {
    return invalid_input(strings::format(
        "hardware annotations cover %zu layers, network has %zu",
        hw.layers.size(), net.layer_count()));
  }
  CONDOR_ASSIGN_OR_RETURN(BoardSpec board, find_board(hw.board_id));
  if (hw.target_frequency_mhz <= 0.0 ||
      hw.target_frequency_mhz > board.max_frequency_mhz) {
    return invalid_input(strings::format(
        "target frequency %.1f MHz outside (0, %.1f] for board %s",
        hw.target_frequency_mhz, board.max_frequency_mhz, board.id.c_str()));
  }
  CONDOR_ASSIGN_OR_RETURN(auto shapes, net.infer_shapes());

  // PE groups must be contiguous runs of layers with compatible computation:
  // feature-extraction layers fuse with feature-extraction layers, classifier
  // with classifier (paper §3.2: "we cluster together in a single PE either
  // layers from the features extraction part or fully-connected layers").
  std::map<int, std::size_t> group_last_index;
  std::map<int, bool> group_is_feature;
  for (std::size_t i = 0; i < net.layer_count(); ++i) {
    const nn::LayerSpec& layer = net.layers()[i];
    const LayerHw& annot = hw.layers[i];
    if (annot.parallel_in == 0 || annot.parallel_out == 0) {
      return invalid_input("layer '" + layer.name +
                           "': parallelism degrees must be >= 1");
    }
    if (layer.kind == nn::LayerKind::kConvolution ||
        layer.kind == nn::LayerKind::kPooling) {
      const std::size_t in_maps = shapes[i].input[0];
      const std::size_t out_maps = shapes[i].output[0];
      if (annot.parallel_in > in_maps) {
        return invalid_input(strings::format(
            "layer '%s': parallel_in %zu exceeds %zu input maps",
            layer.name.c_str(), annot.parallel_in, in_maps));
      }
      if (annot.parallel_out > out_maps) {
        return invalid_input(strings::format(
            "layer '%s': parallel_out %zu exceeds %zu output maps",
            layer.name.c_str(), annot.parallel_out, out_maps));
      }
    }
    if (annot.pe_group >= 0) {
      if (layer.kind == nn::LayerKind::kInput) {
        return invalid_input("input layer cannot join a PE group");
      }
      const bool is_feature = layer.is_feature_extraction() ||
                              layer.kind == nn::LayerKind::kActivation;
      auto [it, inserted] = group_is_feature.emplace(annot.pe_group, is_feature);
      if (!inserted && it->second != is_feature) {
        return invalid_input(strings::format(
            "PE group %d mixes feature-extraction and classifier layers",
            annot.pe_group));
      }
      auto [last_it, first_seen] = group_last_index.emplace(annot.pe_group, i);
      if (!first_seen) {
        if (last_it->second + 1 != i) {
          return invalid_input(strings::format(
              "PE group %d is not a contiguous run of layers", annot.pe_group));
        }
        last_it->second = i;
      }
    }
  }
  return Status::ok();
}

HwNetwork with_default_annotations(nn::Network net, std::string board_id,
                                   double target_frequency_mhz) {
  HwNetwork out;
  out.hw.board_id = std::move(board_id);
  out.hw.target_frequency_mhz = target_frequency_mhz;
  out.hw.layers.assign(net.layer_count(), LayerHw{});
  out.net = std::move(net);
  return out;
}

json::Value to_json(const HwNetwork& network) {
  json::Object root;
  root.set("name", network.net.name());
  root.set("board", network.hw.board_id);
  root.set("target_frequency_mhz", network.hw.target_frequency_mhz);
  if (network.hw.data_type != nn::DataType::kFloat32) {
    // Emitted only for fixed datapaths so float32 files stay byte-identical
    // to the pre-datapath format.
    root.set("data_type", std::string(nn::to_string(network.hw.data_type)));
  }

  const nn::LayerSpec& input = network.net.layers().front();
  json::Object input_obj;
  input_obj.set("channels", input.input_channels);
  input_obj.set("height", input.input_height);
  input_obj.set("width", input.input_width);
  root.set("input", std::move(input_obj));

  json::Array layers;
  for (std::size_t i = 1; i < network.net.layer_count(); ++i) {
    const nn::LayerSpec& layer = network.net.layers()[i];
    const LayerHw& annot = network.hw.layers[i];
    json::Object obj;
    obj.set("name", layer.name);
    obj.set("type", std::string(nn::to_string(layer.kind)));
    switch (layer.kind) {
      case nn::LayerKind::kConvolution:
        obj.set("num_output", layer.num_output);
        obj.set("kernel_h", layer.kernel_h);
        obj.set("kernel_w", layer.kernel_w);
        obj.set("stride", layer.stride);
        if (layer.pad != 0) {
          obj.set("pad", layer.pad);
        }
        obj.set("bias", layer.has_bias);
        break;
      case nn::LayerKind::kPooling:
        obj.set("method", std::string(nn::to_string(layer.pool_method)));
        obj.set("kernel_h", layer.kernel_h);
        obj.set("kernel_w", layer.kernel_w);
        obj.set("stride", layer.stride);
        break;
      case nn::LayerKind::kInnerProduct:
        obj.set("num_output", layer.num_output);
        obj.set("bias", layer.has_bias);
        break;
      case nn::LayerKind::kUpsample:
        obj.set("scale", layer.stride);
        break;
      default:
        break;
    }
    if (!layer.inputs.empty()) {
      json::Array inputs;
      for (const std::string& producer : layer.inputs) {
        inputs.push_back(producer);
      }
      obj.set("inputs", std::move(inputs));
    }
    if (layer.activation != nn::Activation::kNone) {
      obj.set("activation", std::string(nn::to_string(layer.activation)));
    }
    json::Object hw_obj;
    hw_obj.set("parallel_in", annot.parallel_in);
    hw_obj.set("parallel_out", annot.parallel_out);
    if (annot.pe_group >= 0) {
      hw_obj.set("pe_group", static_cast<std::int64_t>(annot.pe_group));
    }
    obj.set("hardware", std::move(hw_obj));
    layers.push_back(std::move(obj));
  }
  root.set("layers", std::move(layers));
  return root;
}

std::string to_json_text(const HwNetwork& network) {
  return json::dump(to_json(network));
}

namespace {

Result<std::size_t> req_size(const json::Object& obj, std::string_view key) {
  const json::Value* value = obj.find(key);
  if (value == nullptr) {
    return not_found("missing field '" + std::string(key) + "'");
  }
  CONDOR_ASSIGN_OR_RETURN(std::int64_t number, value->as_int());
  if (number < 0) {
    return invalid_input("field '" + std::string(key) + "' must be >= 0");
  }
  return static_cast<std::size_t>(number);
}

}  // namespace

Result<HwNetwork> from_json(const json::Value& value) {
  if (!value.is_object()) {
    return invalid_input("network representation must be a JSON object");
  }
  const json::Object& root = value.object();
  HwNetwork out;

  if (const json::Value* name = root.find("name"); name != nullptr) {
    CONDOR_ASSIGN_OR_RETURN(std::string text, name->as_string());
    out.net.set_name(std::move(text));
  }
  if (const json::Value* board = root.find("board"); board != nullptr) {
    CONDOR_ASSIGN_OR_RETURN(out.hw.board_id, board->as_string());
  }
  if (const json::Value* freq = root.find("target_frequency_mhz"); freq != nullptr) {
    CONDOR_ASSIGN_OR_RETURN(out.hw.target_frequency_mhz, freq->as_double());
  }
  if (const json::Value* type = root.find("data_type"); type != nullptr) {
    CONDOR_ASSIGN_OR_RETURN(std::string type_text, type->as_string());
    CONDOR_ASSIGN_OR_RETURN(out.hw.data_type, nn::parse_data_type(type_text));
  }

  const json::Value* input = root.find("input");
  if (input == nullptr || !input->is_object()) {
    return invalid_input("network representation missing 'input' object");
  }
  nn::LayerSpec input_layer;
  input_layer.kind = nn::LayerKind::kInput;
  input_layer.name = "data";
  CONDOR_ASSIGN_OR_RETURN(input_layer.input_channels,
                          req_size(input->object(), "channels"));
  CONDOR_ASSIGN_OR_RETURN(input_layer.input_height,
                          req_size(input->object(), "height"));
  CONDOR_ASSIGN_OR_RETURN(input_layer.input_width,
                          req_size(input->object(), "width"));
  out.net.add(input_layer);
  out.hw.layers.push_back(LayerHw{});

  const json::Value* layers = root.find("layers");
  if (layers == nullptr || !layers->is_array()) {
    return invalid_input("network representation missing 'layers' array");
  }
  for (const json::Value& entry : layers->array()) {
    if (!entry.is_object()) {
      return invalid_input("layer entries must be JSON objects");
    }
    const json::Object& obj = entry.object();
    nn::LayerSpec layer;
    const json::Value* name = obj.find("name");
    const json::Value* type = obj.find("type");
    if (name == nullptr || type == nullptr) {
      return invalid_input("layer entry missing 'name' or 'type'");
    }
    CONDOR_ASSIGN_OR_RETURN(layer.name, name->as_string());
    CONDOR_ASSIGN_OR_RETURN(std::string type_text, type->as_string());
    CONDOR_ASSIGN_OR_RETURN(layer.kind, nn::parse_layer_kind(type_text));
    switch (layer.kind) {
      case nn::LayerKind::kConvolution: {
        CONDOR_ASSIGN_OR_RETURN(layer.num_output, req_size(obj, "num_output"));
        CONDOR_ASSIGN_OR_RETURN(layer.kernel_h, req_size(obj, "kernel_h"));
        CONDOR_ASSIGN_OR_RETURN(layer.kernel_w, req_size(obj, "kernel_w"));
        CONDOR_ASSIGN_OR_RETURN(layer.stride, req_size(obj, "stride"));
        if (obj.contains("pad")) {
          CONDOR_ASSIGN_OR_RETURN(layer.pad, req_size(obj, "pad"));
        }
        if (const json::Value* bias = obj.find("bias"); bias != nullptr) {
          CONDOR_ASSIGN_OR_RETURN(layer.has_bias, bias->as_bool());
        }
        break;
      }
      case nn::LayerKind::kPooling: {
        CONDOR_ASSIGN_OR_RETURN(layer.kernel_h, req_size(obj, "kernel_h"));
        CONDOR_ASSIGN_OR_RETURN(layer.kernel_w, req_size(obj, "kernel_w"));
        CONDOR_ASSIGN_OR_RETURN(layer.stride, req_size(obj, "stride"));
        if (const json::Value* method = obj.find("method"); method != nullptr) {
          CONDOR_ASSIGN_OR_RETURN(std::string method_text, method->as_string());
          CONDOR_ASSIGN_OR_RETURN(layer.pool_method,
                                  nn::parse_pool_method(method_text));
        }
        break;
      }
      case nn::LayerKind::kInnerProduct: {
        CONDOR_ASSIGN_OR_RETURN(layer.num_output, req_size(obj, "num_output"));
        if (const json::Value* bias = obj.find("bias"); bias != nullptr) {
          CONDOR_ASSIGN_OR_RETURN(layer.has_bias, bias->as_bool());
        }
        break;
      }
      case nn::LayerKind::kUpsample: {
        CONDOR_ASSIGN_OR_RETURN(layer.stride, req_size(obj, "scale"));
        break;
      }
      case nn::LayerKind::kActivation:
      case nn::LayerKind::kSoftmax:
      case nn::LayerKind::kEltwiseAdd:
      case nn::LayerKind::kConcat:
        break;
      case nn::LayerKind::kInput:
        return invalid_input(
            "layer list must not contain input layers; use the 'input' object");
    }
    if (const json::Value* inputs = obj.find("inputs"); inputs != nullptr) {
      if (!inputs->is_array()) {
        return invalid_input("layer 'inputs' must be an array of layer names");
      }
      for (const json::Value& producer : inputs->array()) {
        CONDOR_ASSIGN_OR_RETURN(std::string producer_name, producer.as_string());
        layer.inputs.push_back(std::move(producer_name));
      }
    }
    if (const json::Value* act = obj.find("activation"); act != nullptr) {
      CONDOR_ASSIGN_OR_RETURN(std::string act_text, act->as_string());
      CONDOR_ASSIGN_OR_RETURN(layer.activation, nn::parse_activation(act_text));
    }

    LayerHw annot;
    if (const json::Value* hw_entry = obj.find("hardware"); hw_entry != nullptr) {
      if (!hw_entry->is_object()) {
        return invalid_input("'hardware' must be an object");
      }
      const json::Object& hw_obj = hw_entry->object();
      if (hw_obj.contains("parallel_in")) {
        CONDOR_ASSIGN_OR_RETURN(annot.parallel_in, req_size(hw_obj, "parallel_in"));
      }
      if (hw_obj.contains("parallel_out")) {
        CONDOR_ASSIGN_OR_RETURN(annot.parallel_out, req_size(hw_obj, "parallel_out"));
      }
      if (const json::Value* group = hw_obj.find("pe_group"); group != nullptr) {
        CONDOR_ASSIGN_OR_RETURN(std::int64_t id, group->as_int());
        annot.pe_group = static_cast<int>(id);
      }
    }
    out.net.add(std::move(layer));
    out.hw.layers.push_back(annot);
  }

  CONDOR_RETURN_IF_ERROR(out.validate());
  return out;
}

Result<HwNetwork> from_json_text(std::string_view text) {
  CONDOR_ASSIGN_OR_RETURN(json::Value value, json::parse(text));
  return from_json(value);
}

}  // namespace condor::hw

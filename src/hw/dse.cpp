#include "hw/dse.hpp"

#include <algorithm>

#include "common/logging.hpp"
#include "common/strings.hpp"

namespace condor::hw {
namespace {

constexpr std::string_view kTag = "dse";

/// Sum of per-PE steady-state service times — the secondary objective that
/// lets the walk cross throughput plateaus (tied bottlenecks, clock steps).
std::uint64_t total_interval(const DsePoint& point) {
  std::uint64_t total = 0;
  for (const PeTiming& pe : point.performance.pes) {
    total += pe.interval() + pe.fill_latency;
  }
  return total;
}

}  // namespace

Result<DsePoint> evaluate_design_point(const HwNetwork& network,
                                       const DseOptions& options) {
  DsePoint point;
  point.config = network;
  CONDOR_ASSIGN_OR_RETURN(AcceleratorPlan plan, plan_accelerator(network));
  CONDOR_ASSIGN_OR_RETURN(point.resources,
                          estimate_resources(plan, options.cost));
  if (point.resources.total.max_utilization(plan.board.capacity) >
      options.max_utilization) {
    return unsynthesizable(strings::format(
        "utilization %.1f%% exceeds DSE headroom %.1f%%",
        100.0 * point.resources.total.max_utilization(plan.board.capacity),
        100.0 * options.max_utilization));
  }
  point.achieved_mhz =
      achieved_frequency_mhz(plan, point.resources, options.timing);
  CONDOR_ASSIGN_OR_RETURN(
      point.performance,
      estimate_performance(plan, point.resources, point.achieved_mhz));
  return point;
}

Result<DseResult> explore(const HwNetwork& network, const DseOptions& options) {
  CONDOR_RETURN_IF_ERROR(network.validate());
  CONDOR_ASSIGN_OR_RETURN(auto shapes, network.net.infer_shapes());

  DseResult result;
  auto start = evaluate_design_point(network, options);
  ++result.points_evaluated;
  if (!start.is_ok()) {
    return Status(start.status().code(), "DSE starting point infeasible: " +
                                             start.status().message());
  }
  ++result.points_feasible;
  result.trajectory.push_back(start.value());
  DsePoint current = std::move(start).value();
  DsePoint best = current;

  for (std::size_t move = 0; move < options.max_moves; ++move) {
    CONDOR_ASSIGN_OR_RETURN(AcceleratorPlan plan,
                            plan_accelerator(current.config));

    // Candidate generation: for every PE, double parallel_out / parallel_in
    // (clamped to the layers' map counts), applied to all of its layers.
    struct Candidate {
      DsePoint point;
      std::string description;
    };
    std::optional<Candidate> winner;

    for (std::size_t p = 0; p < plan.pes.size(); ++p) {
      const PePlan& pe = plan.pes[p];
      std::size_t max_out = 1;
      std::size_t max_in = 1;
      for (const std::size_t index : pe.layer_indices) {
        const nn::LayerSpec& layer = current.config.net.layers()[index];
        if (layer.kind == nn::LayerKind::kConvolution ||
            layer.kind == nn::LayerKind::kPooling) {
          max_out = std::max(max_out, shapes[index].output[0]);
          max_in = std::max(max_in, shapes[index].input[0]);
        } else if (layer.kind == nn::LayerKind::kInnerProduct) {
          max_out = std::max(max_out, shapes[index].output.element_count());
          max_in = std::max(max_in, shapes[index].input.element_count());
        }
      }
      max_out = std::min(max_out, options.max_parallel_degree);
      max_in = std::min(max_in, options.max_parallel_degree);

      const std::size_t layer0 = pe.layer_indices.front();
      const LayerHw& annot = current.config.hw.layers[layer0];
      struct Move {
        bool is_out;
        std::size_t degree;
      };
      std::vector<Move> moves;
      if (annot.parallel_out * 2 <= max_out) {
        moves.push_back({true, annot.parallel_out * 2});
      }
      if (options.explore_parallel_in && annot.parallel_in * 2 <= max_in) {
        moves.push_back({false, annot.parallel_in * 2});
      }

      for (const Move& m : moves) {
        HwNetwork candidate_net = current.config;
        for (const std::size_t index : pe.layer_indices) {
          LayerHw& layer_hw = candidate_net.hw.layers[index];
          (m.is_out ? layer_hw.parallel_out : layer_hw.parallel_in) = m.degree;
        }
        if (!candidate_net.validate().is_ok()) {
          continue;  // degree exceeds a fused layer's map count
        }
        auto evaluated = evaluate_design_point(candidate_net, options);
        ++result.points_evaluated;
        if (!evaluated.is_ok()) {
          continue;  // out of resources / past the headroom budget
        }
        ++result.points_feasible;
        Candidate candidate{std::move(evaluated).value(),
                            strings::format("%s %s=%zu", pe.name.c_str(),
                                            m.is_out ? "Pout" : "Pin", m.degree)};

        // Acceptance test against the CURRENT point: a candidate qualifies
        // by strict throughput gain, or as a plateau-escape move (bounded
        // regression bought with a substantial total-interval shrink).
        const double current_gflops = current.gflops();
        const std::uint64_t current_total = total_interval(current);
        const bool strict_gain =
            candidate.point.gflops() > current_gflops * 1.001;
        const bool plateau_escape =
            candidate.point.gflops() >=
                current_gflops * (1.0 - options.regression_tolerance) &&
            total_interval(candidate.point) <
                static_cast<std::uint64_t>(
                    static_cast<double>(current_total) *
                    (1.0 - options.interval_shrink_required));
        if (!strict_gain && !plateau_escape) {
          continue;
        }

        // Among qualifying candidates, take the best (throughput, then the
        // smaller total interval).
        const bool better_than_winner =
            !winner.has_value() ||
            candidate.point.gflops() > winner->point.gflops() * 1.0001 ||
            (candidate.point.gflops() > winner->point.gflops() * 0.9999 &&
             total_interval(candidate.point) < total_interval(winner->point));
        if (better_than_winner) {
          winner = std::move(candidate);
        }
      }
    }

    if (!winner.has_value()) {
      break;  // no qualifying move left
    }

    CONDOR_LOG_DEBUG(kTag) << "accept " << winner->description << " -> "
                           << strings::format("%.2f GFLOPS @ %.0f MHz",
                                              winner->point.gflops(),
                                              winner->point.achieved_mhz);
    current = std::move(winner->point);
    result.trajectory.push_back(current);
    if (current.gflops() > best.gflops()) {
      best = current;
    }
  }

  result.best = std::move(best);
  CONDOR_LOG_INFO(kTag) << "explored " << result.points_evaluated
                        << " points, best "
                        << strings::format("%.2f GFLOPS @ %.0f MHz",
                                           result.best.gflops(),
                                           result.best.achieved_mhz);
  return result;
}

}  // namespace condor::hw

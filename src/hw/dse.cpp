#include "hw/dse.hpp"

#include <algorithm>
#include <cstdint>
#include <optional>

#include "common/logging.hpp"
#include "common/strings.hpp"

namespace condor::hw {
namespace {

constexpr std::string_view kTag = "dse";

/// Sum of per-PE steady-state service times — the secondary objective that
/// lets the walk cross throughput plateaus (tied bottlenecks, clock steps).
std::uint64_t total_interval(const DsePoint& point) {
  std::uint64_t total = 0;
  for (const PeTiming& pe : point.performance.pes) {
    total += pe.interval() + pe.fill_latency;
  }
  return total;
}

/// One clustering's hill climb over the parallelism knobs. An infeasible
/// starting point is reported, not an error — the fusion search skips such
/// clusterings while the caller decides what a dead baseline means.
struct ClimbOutcome {
  bool feasible = false;
  Status start_failure = Status::ok();  ///< set when !feasible
  DsePoint best;
  std::vector<DsePoint> trajectory;
};

/// The tolerant steepest-ascent walk of the file header, with the PE
/// clustering held fixed at `network`'s pe_group annotations. Evaluation
/// counters accumulate into `counters` so a multi-clustering exploration
/// reports its true search volume.
Result<ClimbOutcome> climb(const HwNetwork& network, const DseOptions& options,
                           DseResult& counters) {
  CONDOR_ASSIGN_OR_RETURN(auto shapes, network.net.infer_shapes());

  ClimbOutcome outcome;
  auto start = evaluate_design_point(network, options);
  ++counters.points_evaluated;
  if (!start.is_ok()) {
    outcome.start_failure = start.status();
    return outcome;
  }
  outcome.feasible = true;
  ++counters.points_feasible;
  outcome.trajectory.push_back(start.value());
  DsePoint current = std::move(start).value();
  DsePoint best = current;

  for (std::size_t move = 0; move < options.max_moves; ++move) {
    CONDOR_ASSIGN_OR_RETURN(AcceleratorPlan plan,
                            plan_accelerator(current.config));

    // Candidate generation: for every PE, double parallel_out / parallel_in
    // (clamped to the layers' map counts), applied to all of its layers.
    struct Candidate {
      DsePoint point;
      std::string description;
    };
    std::optional<Candidate> winner;

    for (std::size_t p = 0; p < plan.pes.size(); ++p) {
      const PePlan& pe = plan.pes[p];
      std::size_t max_out = 1;
      std::size_t max_in = 1;
      for (const std::size_t index : pe.layer_indices) {
        const nn::LayerSpec& layer = current.config.net.layers()[index];
        if (layer.kind == nn::LayerKind::kConvolution ||
            layer.kind == nn::LayerKind::kPooling) {
          max_out = std::max(max_out, shapes[index].output[0]);
          max_in = std::max(max_in, shapes[index].input[0]);
        } else if (layer.kind == nn::LayerKind::kInnerProduct) {
          max_out = std::max(max_out, shapes[index].output.element_count());
          max_in = std::max(max_in, shapes[index].input.element_count());
        }
      }
      max_out = std::min(max_out, options.max_parallel_degree);
      max_in = std::min(max_in, options.max_parallel_degree);

      const std::size_t layer0 = pe.layer_indices.front();
      const LayerHw& annot = current.config.hw.layers[layer0];
      struct Move {
        bool is_out;
        std::size_t degree;
      };
      std::vector<Move> moves;
      if (annot.parallel_out * 2 <= max_out) {
        moves.push_back({true, annot.parallel_out * 2});
      }
      if (options.explore_parallel_in && annot.parallel_in * 2 <= max_in) {
        moves.push_back({false, annot.parallel_in * 2});
      }

      for (const Move& m : moves) {
        HwNetwork candidate_net = current.config;
        for (const std::size_t index : pe.layer_indices) {
          LayerHw& layer_hw = candidate_net.hw.layers[index];
          (m.is_out ? layer_hw.parallel_out : layer_hw.parallel_in) = m.degree;
        }
        if (!candidate_net.validate().is_ok()) {
          continue;  // degree exceeds a fused layer's map count
        }
        auto evaluated = evaluate_design_point(candidate_net, options);
        ++counters.points_evaluated;
        if (!evaluated.is_ok()) {
          continue;  // out of resources / past the headroom budget
        }
        ++counters.points_feasible;
        Candidate candidate{std::move(evaluated).value(),
                            strings::format("%s %s=%zu", pe.name.c_str(),
                                            m.is_out ? "Pout" : "Pin", m.degree)};

        // Acceptance test against the CURRENT point: a candidate qualifies
        // by strict throughput gain, or as a plateau-escape move (bounded
        // regression bought with a substantial total-interval shrink).
        const double current_gflops = current.gflops();
        const std::uint64_t current_total = total_interval(current);
        const bool strict_gain =
            candidate.point.gflops() > current_gflops * 1.001;
        const bool plateau_escape =
            candidate.point.gflops() >=
                current_gflops * (1.0 - options.regression_tolerance) &&
            total_interval(candidate.point) <
                static_cast<std::uint64_t>(
                    static_cast<double>(current_total) *
                    (1.0 - options.interval_shrink_required));
        if (!strict_gain && !plateau_escape) {
          continue;
        }

        // Among qualifying candidates, take the best (throughput, then the
        // smaller total interval).
        const bool better_than_winner =
            !winner.has_value() ||
            candidate.point.gflops() > winner->point.gflops() * 1.0001 ||
            (candidate.point.gflops() > winner->point.gflops() * 0.9999 &&
             total_interval(candidate.point) < total_interval(winner->point));
        if (better_than_winner) {
          winner = std::move(candidate);
        }
      }
    }

    if (!winner.has_value()) {
      break;  // no qualifying move left
    }

    CONDOR_LOG_DEBUG(kTag) << "accept " << winner->description << " -> "
                           << strings::format("%.2f GFLOPS @ %.0f MHz",
                                              winner->point.gflops(),
                                              winner->point.achieved_mhz);
    current = std::move(winner->point);
    outcome.trajectory.push_back(current);
    if (current.gflops() > best.gflops()) {
      best = current;
    }
  }

  outcome.best = std::move(best);
  return outcome;
}

/// Enumerates fusion clusterings (paper §3.2: several layers
/// time-multiplexed on one PE) as starting points for the climb.
///
/// Units are the base plan's feature PEs; a maximal run of units where each
/// PE's tail layer feeds exactly the next PE's head layer (single producer,
/// single consumer, contiguous layer indices — the planner's own chain
/// conditions) forms a segment. Per segment the fusion degree d groups
/// blocks of d consecutive units under a fresh pe_group; the cross product
/// over segments is walked odometer-style and truncated at
/// options.max_clusterings. The all-ones combo (the base clustering itself)
/// is skipped — the caller climbs it unconditionally.
Result<std::vector<HwNetwork>> enumerate_fusion_clusterings(
    const HwNetwork& base, const DseOptions& options) {
  std::vector<HwNetwork> clusterings;
  CONDOR_ASSIGN_OR_RETURN(AcceleratorPlan plan, plan_accelerator(base));
  CONDOR_ASSIGN_OR_RETURN(auto consumers, base.net.consumers());

  std::vector<std::vector<std::size_t>> segments;  // runs of plan PE indices
  std::vector<std::size_t> run;
  const auto flush_run = [&] {
    if (run.size() >= 2) {
      segments.push_back(run);
    }
    run.clear();
  };
  for (std::size_t p = 0; p < plan.pes.size(); ++p) {
    const PePlan& pe = plan.pes[p];
    if (pe.kind != PeKind::kFeature) {
      flush_run();
      continue;
    }
    if (!run.empty()) {
      const PePlan& prev = plan.pes[run.back()];
      const std::size_t tail = prev.layer_indices.back();
      const std::size_t head = pe.layer_indices.front();
      CONDOR_ASSIGN_OR_RETURN(auto prods, base.net.producers(head));
      const bool chained = head == tail + 1 && prods.size() == 1 &&
                           prods.front() == tail &&
                           consumers[tail].size() == 1;
      if (!chained) {
        flush_run();
      }
    }
    run.push_back(p);
  }
  flush_run();
  if (segments.empty()) {
    return clusterings;
  }

  // Fresh group ids, clear of anything the base annotations already use.
  int next_group = 0;
  for (const LayerHw& layer : base.hw.layers) {
    next_group = std::max(next_group, layer.pe_group + 1);
  }

  const auto degree_limit = [&](std::size_t s) {
    return std::min<std::size_t>(segments[s].size(),
                                 std::max<std::size_t>(options.max_fused, 1));
  };
  std::vector<std::size_t> degrees(segments.size(), 1);
  for (;;) {
    // Advance the odometer; starting from all-ones means the base clustering
    // itself is never emitted.
    std::size_t s = 0;
    while (s < degrees.size()) {
      if (++degrees[s] <= degree_limit(s)) {
        break;
      }
      degrees[s] = 1;
      ++s;
    }
    if (s == degrees.size()) {
      break;  // wrapped: every combo emitted
    }

    HwNetwork candidate = base;
    int group = next_group;
    for (std::size_t seg = 0; seg < segments.size(); ++seg) {
      const std::size_t d = degrees[seg];
      if (d < 2) {
        continue;
      }
      const std::vector<std::size_t>& units = segments[seg];
      for (std::size_t u = 0; u < units.size(); u += d) {
        const std::size_t span = std::min(d, units.size() - u);
        if (span < 2) {
          continue;  // a lone tail unit keeps its dedicated PE
        }
        for (std::size_t m = 0; m < span; ++m) {
          for (const std::size_t index : plan.pes[units[u + m]].layer_indices) {
            candidate.hw.layers[index].pe_group = group;
          }
        }
        ++group;
      }
    }
    if (candidate.validate().is_ok()) {
      clusterings.push_back(std::move(candidate));
    }
    if (clusterings.size() >= options.max_clusterings) {
      break;
    }
  }
  return clusterings;
}

}  // namespace

Result<DsePoint> evaluate_design_point(const HwNetwork& network,
                                       const DseOptions& options) {
  DsePoint point;
  point.config = network;
  CONDOR_ASSIGN_OR_RETURN(AcceleratorPlan plan, plan_accelerator(network));
  CONDOR_ASSIGN_OR_RETURN(point.resources,
                          estimate_resources(plan, options.cost));
  if (point.resources.total.max_utilization(plan.board.capacity) >
      options.max_utilization) {
    return unsynthesizable(strings::format(
        "utilization %.1f%% exceeds DSE headroom %.1f%%",
        100.0 * point.resources.total.max_utilization(plan.board.capacity),
        100.0 * options.max_utilization));
  }
  point.achieved_mhz =
      achieved_frequency_mhz(plan, point.resources, options.timing);
  CONDOR_ASSIGN_OR_RETURN(
      point.performance,
      estimate_performance(plan, point.resources, point.achieved_mhz));
  return point;
}

Result<DseResult> explore(const HwNetwork& network, const DseOptions& options) {
  CONDOR_RETURN_IF_ERROR(network.validate());

  DseResult result;
  // The base clustering climbs unconditionally; its infeasibility is the
  // caller's error (nothing at all fits the board).
  CONDOR_ASSIGN_OR_RETURN(ClimbOutcome base, climb(network, options, result));
  result.clusterings_explored = 1;
  if (!base.feasible) {
    return Status(base.start_failure.code(),
                  "DSE starting point infeasible: " +
                      base.start_failure.message());
  }
  DsePoint best = std::move(base.best);
  std::vector<DsePoint> trajectory = std::move(base.trajectory);

  // Fusion-aware search: every enumerated clustering seeds its own climb —
  // a fused PE frees window memory and compute units the walk can then
  // spend on higher parallel degrees elsewhere. Clusterings whose start is
  // unsynthesizable on this board are skipped, not fatal.
  if (options.max_fused > 1) {
    CONDOR_ASSIGN_OR_RETURN(std::vector<HwNetwork> clusterings,
                            enumerate_fusion_clusterings(network, options));
    for (const HwNetwork& clustering : clusterings) {
      CONDOR_ASSIGN_OR_RETURN(ClimbOutcome outcome,
                              climb(clustering, options, result));
      ++result.clusterings_explored;
      if (!outcome.feasible) {
        continue;
      }
      const bool better =
          outcome.best.gflops() > best.gflops() ||
          (outcome.best.gflops() == best.gflops() &&
           total_interval(outcome.best) < total_interval(best));
      if (better) {
        best = std::move(outcome.best);
        trajectory = std::move(outcome.trajectory);
      }
    }
  }

  result.best = std::move(best);
  result.trajectory = std::move(trajectory);
  CONDOR_LOG_INFO(kTag) << "explored " << result.points_evaluated
                        << " points over " << result.clusterings_explored
                        << " clustering(s), best "
                        << strings::format("%.2f GFLOPS @ %.0f MHz",
                                           result.best.gflops(),
                                           result.best.achieved_mhz);
  return result;
}

}  // namespace condor::hw

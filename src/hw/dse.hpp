// Design Space Exploration (paper §3.3 step 2).
//
// The paper's DSE "is still not automated and therefore requires human
// intervention, but in the future it will be performed automatically relying
// on resource consumption and performance models". This module implements
// that future work: an automated, model-driven exploration of the
// inter-layer parallelism knobs (parallel_in / parallel_out per
// feature-extraction layer).
//
// Strategy: tolerant steepest-ascent hill climbing. Starting from the
// sequential configuration (all degrees 1), each iteration evaluates, for
// every PE, doubling its parallel_out and its parallel_in, and takes the
// best candidate by (throughput, then lower total interval). A candidate is
// accepted when it strictly improves throughput, or when it substantially
// shrinks the summed per-PE interval at a bounded throughput regression —
// the latter escapes two real plateaus: several PEs tied at the bottleneck
// (improving one alone does not move the global number) and the
// achieved-frequency quantization ridge (deeper adder trees momentarily
// cost a clock step before the interval gains dominate). The best point
// ever visited is returned. Every accepted move strictly shrinks the total
// interval and degrees only double toward the per-layer map counts, so the
// walk terminates after O(sum_layers log(maps)) accepted moves; evaluations
// are purely analytical, mirroring how the real flow would avoid re-running
// HLS per point.
#pragma once

#include <vector>

#include "common/status.hpp"
#include "hw/hw_ir.hpp"
#include "hw/performance_model.hpp"
#include "hw/resource_model.hpp"
#include "hw/timing_model.hpp"

namespace condor::hw {

struct DseOptions {
  /// Headroom: accept configurations only while the max component
  /// utilization stays below this fraction (routing reality).
  double max_utilization = 0.85;
  /// Upper bound on any single parallel degree.
  std::size_t max_parallel_degree = 64;
  /// Explore parallel_in in addition to parallel_out.
  bool explore_parallel_in = true;
  /// Largest throughput regression a plateau-escaping move may cost.
  double regression_tolerance = 0.10;
  /// Minimum shrink of the summed interval for such a move to qualify.
  /// Small by design: in deep pipelines (VGG-16 has 18 PEs) halving one of
  /// many tied bottleneck stages only shrinks the sum by a few percent.
  double interval_shrink_required = 0.015;
  /// Safety cap on accepted moves.
  std::size_t max_moves = 400;
  /// Fusion-aware clustering search (paper §3.2 PE fusion as a DSE
  /// variable): the largest number of chained feature-extraction PEs a
  /// single fused PE may time-multiplex. 1 keeps the clustering fixed (the
  /// pre-fusion behavior); larger values enumerate fusion degrees per
  /// feature chain segment — each enumerated clustering seeds its own hill
  /// climb, and the best point across clusterings wins. Fusing shares one
  /// window memory subsystem and frees DSP/LUT the climb can spend on
  /// higher parallel_out / parallel_in.
  std::size_t max_fused = 1;
  /// Safety cap on enumerated fusion clusterings (cross product over
  /// segments, truncated breadth-first).
  std::size_t max_clusterings = 64;
  /// Cost/timing model overrides (ablations).
  CostModel cost;
  TimingModel timing;
};

/// One fully-evaluated design point.
struct DsePoint {
  HwNetwork config;
  ResourceReport resources;
  PerformanceEstimate performance;  ///< at the achieved frequency
  double achieved_mhz = 0.0;

  [[nodiscard]] double gflops() const noexcept { return performance.gflops(); }
};

struct DseResult {
  DsePoint best;
  std::size_t points_evaluated = 0;
  std::size_t points_feasible = 0;
  /// Fusion clusterings whose hill climb ran (1 when max_fused == 1).
  std::size_t clusterings_explored = 0;
  /// The accepted trajectory from the sequential start to the best point
  /// (useful for ablation plots of throughput vs area); the trajectory of
  /// the winning clustering when fusion search is on.
  std::vector<DsePoint> trajectory;
};

/// Evaluates one configuration end to end (plan → resources → timing →
/// performance). Fails when the configuration is unsynthesizable.
Result<DsePoint> evaluate_design_point(const HwNetwork& network,
                                       const DseOptions& options = {});

/// Runs the automated exploration starting from `network`'s annotations.
Result<DseResult> explore(const HwNetwork& network, const DseOptions& options = {});

}  // namespace condor::hw

#include "hw/roofline.hpp"

#include <algorithm>

namespace condor::hw {

double RooflineRoofs::attainable_gflops(double intensity) const noexcept {
  return std::min(peak_gflops, intensity * bandwidth_gbps);
}

RooflineRoofs board_roofs(const BoardSpec& board, double frequency_mhz,
                          double dsps_per_mac) {
  RooflineRoofs roofs;
  const double macs =
      static_cast<double>(board.capacity.dsps) / std::max(dsps_per_mac, 1e-9);
  roofs.peak_gflops = macs * 2.0 * frequency_mhz * 1e6 / 1e9;  // 2 FLOP/MAC
  roofs.bandwidth_gbps = board.dram_bandwidth_gbps / 8.0;  // bits -> bytes
  return roofs;
}

Result<RooflinePoint> roofline_point(const AcceleratorPlan& plan,
                                     const PerformanceEstimate& estimate,
                                     std::string name) {
  RooflinePoint point;
  point.name = std::move(name);
  point.achieved_gflops = estimate.gflops();

  // DDR bytes per image: the input blob in, the output blob out, plus every
  // PE's streamed traffic (weight slices, spills).
  CONDOR_ASSIGN_OR_RETURN(Shape input_shape, plan.source.net.input_shape());
  CONDOR_ASSIGN_OR_RETURN(Shape output_shape, plan.source.net.output_shape());
  double bytes = static_cast<double>(
      (input_shape.element_count() + output_shape.element_count()) *
      sizeof(float));
  for (const PeTiming& pe : estimate.pes) {
    bytes += static_cast<double>(pe.ddr_bytes_per_image);
  }
  if (bytes <= 0.0) {
    return internal_error("design moves no DDR bytes");
  }
  point.intensity = static_cast<double>(estimate.flops_per_image) / bytes;

  const RooflineRoofs roofs =
      board_roofs(plan.board, estimate.frequency_mhz);
  point.attainable_gflops = roofs.attainable_gflops(point.intensity);
  return point;
}

}  // namespace condor::hw

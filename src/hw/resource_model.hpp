// Post-synthesis resource estimation for accelerator plans.
//
// Mirrors the role of the Vivado HLS resource report + Vivado utilization
// report in the original flow. The per-primitive costs below are calibrated
// against typical Vivado HLS 2017.x figures for single-precision float
// operators on UltraScale+ (the F1 device) and are concentrated in one
// CostModel struct so the calibration is auditable and overridable in tests
// and ablation benches.
//
// The qualitative drivers the model must reproduce (paper Table 1):
//  * TC1 is DSP-heavier than LeNet despite smaller windows — its tanh
//    activations synthesize to exp-based fp32 pipelines that dominate DSP
//    usage, while LeNet's ReLU is free;
//  * LeNet is BRAM-heavy (24% vs TC1's ~1%) — its classifier weights
//    (~430k floats) reside fully on chip, per the current methodology;
//  * both designs sit near 10% LUT, dominated by the platform/shell
//    (SDAccel static region + AXI infrastructure) common to any kernel.
#pragma once

#include <string>
#include <vector>

#include "common/status.hpp"
#include "hw/accel_plan.hpp"
#include "nn/quantization.hpp"

namespace condor::hw {

/// Calibrated primitive costs. All float datapaths are single-precision.
struct CostModel {
  // fp32 arithmetic operators (DSP48E2-based, fully pipelined).
  Resources fmul{135, 210, 2, 0};
  Resources fadd{230, 360, 2, 0};
  Resources fcmp{105, 80, 0, 0};    ///< max/compare for pooling
  Resources fdiv{800, 1250, 0, 0};  ///< LUT-based divider
  /// exp-based transcendental activation pipelines (tanh/sigmoid).
  Resources ftanh{2900, 3400, 80, 0};
  Resources fsigmoid{2300, 2800, 52, 0};

  /// One stencil filter module: stream steering, domain inequalities.
  Resources filter{160, 220, 0, 0};
  /// PE control skeleton (loop nests, handshakes) + per fused layer add-on.
  Resources pe_base{1300, 1900, 6, 0};
  Resources pe_per_layer{340, 420, 2, 0};
  /// Custom datamover (AXI master, weight/partial-result movers).
  Resources datamover{9200, 12800, 4, 8};
  /// Platform overhead per board (shell, interconnect, OpenCL plumbing);
  /// indexed implicitly: the f1 shell is by far the largest.
  Resources platform_f1{98'000, 165'000, 12, 14};
  Resources platform_onprem{14'000, 22'000, 4, 8};

  /// FIFOs up to this depth map to SRL/LUTRAM, deeper ones to BRAM.
  std::size_t fifo_lutram_threshold = 128;
  /// LUT cost per element of a LUTRAM FIFO (32-bit wide SRL chains).
  double fifo_lut_per_element = 0.6;
  /// Bytes per 36Kb BRAM block.
  std::size_t bram_bytes = 4608;
  /// Bytes per datapath element; the presets derive this from
  /// nn::bytes_per_element (4 for float32, 2/1 for fixed16/fixed8 — shrinks
  /// weight stores and FIFO footprints).
  std::size_t element_bytes = 4;
  /// Fraction of board BRAM usable for on-chip data buffers before a PE
  /// must spill input re-scan traffic to on-board DDR.
  double buffer_spill_fraction = 0.25;
};

/// Resource estimate for one module of the design.
struct ModuleEstimate {
  std::string name;
  Resources resources;
};

/// Whole-design estimate.
struct ResourceReport {
  Resources platform;
  Resources total;                      ///< platform + all modules
  std::vector<ModuleEstimate> modules;  ///< one per PE + datamover
  /// Per-PE flag: true when the PE's input re-scan buffer did not fit on
  /// chip and partial results/input spill to on-board memory (adds DDR
  /// traffic, accounted by the performance model).
  std::vector<bool> spills_to_ddr;

  [[nodiscard]] double lut_percent(const BoardSpec& board) const noexcept;
  [[nodiscard]] double ff_percent(const BoardSpec& board) const noexcept;
  [[nodiscard]] double dsp_percent(const BoardSpec& board) const noexcept;
  [[nodiscard]] double bram_percent(const BoardSpec& board) const noexcept;

  /// Pretty utilization table (module rows + totals).
  [[nodiscard]] std::string to_string(const BoardSpec& board) const;
};

/// Estimates the FIFO cost for a single FIFO of `depth` elements.
Resources fifo_cost(std::size_t depth, const CostModel& cost = {});

/// Calibrated cost-model presets per datapath numeric type (quantization
/// study, after Qiu et al. FPGA'16): fixed16 MACs take a single DSP and
/// integer adders fold into fabric carry chains; fixed8 multipliers fit in
/// LUTs entirely; transcendental activations become lookup tables; weight
/// stores and FIFOs shrink with the element width.
CostModel cost_model_for(nn::DataType type);

/// Estimates resources for one PE (exposed for unit tests and ablations).
Resources pe_cost(const AcceleratorPlan& plan, std::size_t pe_index,
                  const CostModel& cost = {});

/// Full-design estimation. Fails with kUnsynthesizable when the estimate
/// exceeds the board capacity.
Result<ResourceReport> estimate_resources(const AcceleratorPlan& plan,
                                          const CostModel& cost = {});

/// Like estimate_resources but never fails on overflow — used by the DSE to
/// probe infeasible points and by ablation benches.
ResourceReport estimate_resources_unchecked(const AcceleratorPlan& plan,
                                            const CostModel& cost = {});

}  // namespace condor::hw

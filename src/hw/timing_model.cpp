#include "hw/timing_model.hpp"

#include <algorithm>
#include <cmath>

namespace condor::hw {

TimingModel timing_model_for(nn::DataType type) {
  TimingModel model;  // float32 defaults
  switch (type) {
    case nn::DataType::kFloat32:
      break;
    case nn::DataType::kFixed16:
      model.tree_level_factor = 0.985;
      model.transcendental_factor = 0.85;  // BRAM lookup, one read latency
      break;
    case nn::DataType::kFixed8:
      model.tree_level_factor = 0.99;
      model.transcendental_factor = 0.90;
      break;
  }
  return model;
}

double pe_fmax_mhz(const AcceleratorPlan& plan, std::size_t pe_index,
                   const TimingModel& model) {
  const PePlan& pe = plan.pes[pe_index];
  double fmax = model.base_fmax_mhz;

  // Adder-tree depth from the widest concurrent reduction in the PE.
  const std::size_t reduction_width = std::max<std::size_t>(pe.macs_per_cycle, 2);
  const int tree_depth = static_cast<int>(
      std::ceil(std::log2(static_cast<double>(reduction_width))));
  fmax *= std::pow(model.tree_level_factor, tree_depth);

  if (pe.uses_transcendental) {
    fmax *= model.transcendental_factor;
  }
  return fmax;
}

double achieved_frequency_mhz(const AcceleratorPlan& plan,
                              const ResourceReport& report,
                              const TimingModel& model) {
  double fmax = plan.board.max_frequency_mhz;
  for (std::size_t p = 0; p < plan.pes.size(); ++p) {
    fmax = std::min(fmax, pe_fmax_mhz(plan, p, model));
  }

  if (report.bram_percent(plan.board) > model.bram_pressure_threshold) {
    fmax *= model.bram_pressure_factor;
  }
  if (report.dsp_percent(plan.board) > model.dsp_pressure_threshold) {
    fmax *= model.dsp_pressure_factor;
  }
  if (report.lut_percent(plan.board) > model.lut_pressure_threshold) {
    fmax *= model.lut_pressure_factor;
  }

  fmax = std::min(fmax, plan.source.hw.target_frequency_mhz);
  // Quantize down to the kernel clock granularity.
  fmax = std::floor(fmax / model.quantum_mhz) * model.quantum_mhz;
  return std::max(fmax, model.quantum_mhz);
}

}  // namespace condor::hw

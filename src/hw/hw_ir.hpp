// The Condor-internal network representation (paper §3.1.1):
//
//   "the core-logic tier uses an internal JSON to describe the topology of
//    the network. It resembles the caffe prototxt file but contains more
//    information about the underlying hardware of the accelerator, such as
//    the desired board, the operating frequency and desired level of
//    parallelism of each layer."
//
// HwNetwork couples the pure topology (nn::Network) with those hardware
// annotations, and round-trips to the JSON file format the frontend accepts.
#pragma once

#include <string>
#include <vector>

#include "common/status.hpp"
#include "hw/board.hpp"
#include "json/json.hpp"
#include "nn/network.hpp"
#include "nn/numeric.hpp"

namespace condor::hw {

/// Per-layer hardware knobs (inter-layer parallelism + PE clustering).
struct LayerHw {
  /// Input feature maps read concurrently (paper: "reading multiple input
  /// feature maps concurrently").
  std::size_t parallel_in = 1;
  /// Output feature maps computed in parallel.
  std::size_t parallel_out = 1;
  /// PE cluster id: layers sharing an id are fused onto one PE (an outer
  /// loop iterates the fused layers). -1 requests a dedicated PE (the 1:1
  /// fully-unfolded mapping).
  int pe_group = -1;
};

/// Network-level hardware annotations.
struct HwAnnotations {
  std::string board_id = "aws-f1";
  double target_frequency_mhz = 200.0;
  /// Numeric datapath of the accelerator (paper computes in float32;
  /// fixed16/fixed8 select the dynamic fixed-point datapath of [14]).
  nn::DataType data_type = nn::DataType::kFloat32;
  std::vector<LayerHw> layers;  ///< parallel to nn::Network::layers()
};

/// Topology + hardware annotations; the unit the core-logic tier operates on.
struct HwNetwork {
  nn::Network net;
  HwAnnotations hw;

  /// Structural checks beyond nn::Network::validate(): annotation vector
  /// length, parallelism degrees positive and dividing the map counts,
  /// board id known, PE groups contiguous and kind-homogeneous (only like
  /// layers may be fused, paper §3.2).
  [[nodiscard]] Status validate() const;
};

/// Default annotations for a topology: every layer on its own PE, no
/// inter-layer parallelism (the configuration used for Table 1).
HwNetwork with_default_annotations(nn::Network net, std::string board_id = "aws-f1",
                                   double target_frequency_mhz = 200.0);

/// Serializes to the Condor JSON network representation.
json::Value to_json(const HwNetwork& network);
std::string to_json_text(const HwNetwork& network);

/// Parses the Condor JSON network representation.
Result<HwNetwork> from_json(const json::Value& value);
Result<HwNetwork> from_json_text(std::string_view text);

}  // namespace condor::hw

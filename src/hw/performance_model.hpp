// Analytical performance model of the dataflow accelerator.
//
// Models each PE as a pipelined stage with a per-image *interval* (cycles
// between accepting consecutive images in steady state) and a *latency*
// (fill time for the first image). The high-level pipeline of PEs then
// yields, for a batch of B images:
//
//     total_cycles(B) = fill_latency + (B - 1) * bottleneck_interval
//
// which produces the hyperbolically decreasing mean-time-per-image curve of
// paper Figure 5, converging once B exceeds roughly the number of pipeline
// stages. Steady-state GFLOPS = flops_per_image * f / bottleneck_interval.
//
// Compute intervals assume II=1 pipelined loops over output points with the
// window fully unrolled (the memory subsystem supplies all window elements
// per cycle) and sequential iteration over feature maps not covered by
// parallel_in/parallel_out. DDR traffic (spilled re-scan input) is converted
// to cycles through the board bandwidth and bounds the interval from below.
// Weights are resident: every PE's slice streams from DDR exactly once per
// design load, so weight traffic charges the first image's latency
// (weight_load_cycles) and never the steady-state interval.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "hw/accel_plan.hpp"
#include "hw/resource_model.hpp"

namespace condor::hw {

/// Per-PE timing breakdown.
struct PeTiming {
  std::string name;
  std::uint64_t compute_interval = 0;  ///< cycles/image, compute-bound
  std::uint64_t memory_interval = 0;   ///< cycles/image, DDR-traffic-bound
  std::uint64_t fill_latency = 0;      ///< extra cycles before first output
  std::uint64_t ddr_bytes_per_image = 0;
  /// Weight slice streamed once per design load (residency) — charged to
  /// the first image's latency, not the per-image interval.
  std::uint64_t resident_weight_bytes = 0;
  std::uint64_t weight_load_cycles = 0;

  [[nodiscard]] std::uint64_t interval() const noexcept {
    return std::max(compute_interval, memory_interval);
  }
};

/// Whole-accelerator performance estimate at a given clock.
struct PerformanceEstimate {
  double frequency_mhz = 0.0;
  std::vector<PeTiming> pes;
  std::uint64_t bottleneck_interval = 0;  ///< max PE interval (cycles)
  std::uint64_t image_latency = 0;        ///< first-image latency (cycles)
  std::uint64_t flops_per_image = 0;

  /// Total cycles to process a batch of `batch` images.
  [[nodiscard]] std::uint64_t batch_cycles(std::uint64_t batch) const noexcept;
  /// Mean seconds per image for a batch (Figure 5's y-axis).
  [[nodiscard]] double mean_seconds_per_image(std::uint64_t batch) const noexcept;
  /// Steady-state throughput.
  [[nodiscard]] double images_per_second() const noexcept;
  [[nodiscard]] double gflops() const noexcept;

  [[nodiscard]] std::string to_string() const;
};

/// Estimates timing for `plan` at `frequency_mhz`. `report` supplies the
/// per-PE DDR-spill flags (pass the estimate for the same plan).
Result<PerformanceEstimate> estimate_performance(const AcceleratorPlan& plan,
                                                 const ResourceReport& report,
                                                 double frequency_mhz);

}  // namespace condor::hw

// FPGA board database.
//
// The frontend's network representation names "the desired board" (paper
// §3.1.1); the core logic sizes the accelerator against that board's
// resources. The flagship target is the AWS F1 instance FPGA (Xilinx Virtex
// UltraScale+ VU9P behind the AWS shell); a few on-premise Zynq boards are
// included for the on-premise SDAccel deployment path.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.hpp"

namespace condor::hw {

/// Resource vector used for both budgets (board capacity) and estimates
/// (design usage). BRAM counted in 36Kb blocks.
struct Resources {
  std::uint64_t luts = 0;
  std::uint64_t ffs = 0;
  std::uint64_t dsps = 0;
  std::uint64_t bram36 = 0;

  Resources& operator+=(const Resources& other) noexcept;
  friend Resources operator+(Resources a, const Resources& b) noexcept {
    a += b;
    return a;
  }
  /// Component-wise scale (for replicated modules).
  [[nodiscard]] Resources scaled(std::uint64_t factor) const noexcept;

  /// True if every component of `this` fits within `budget`.
  [[nodiscard]] bool fits_within(const Resources& budget) const noexcept;

  /// Largest component-wise utilization ratio against `budget` (0..inf).
  [[nodiscard]] double max_utilization(const Resources& budget) const noexcept;

  [[nodiscard]] std::string to_string() const;
};

struct BoardSpec {
  std::string id;            ///< stable identifier used in the JSON IR
  std::string display_name;
  std::string part;          ///< FPGA part number
  Resources capacity;        ///< fabric resources available to user logic
  double max_frequency_mhz = 0.0;   ///< fabric ceiling for HLS dataflow designs
  double dram_bandwidth_gbps = 0.0; ///< on-board memory bandwidth
  double static_power_w = 0.0;      ///< shell + idle fabric power
  bool cloud = false;               ///< true when reached via AWS F1
};

/// All known boards. The AWS F1 entry reflects the VU9P with the AWS shell
/// area already subtracted (the shell reserves roughly one SLR's worth of
/// interface logic; AWS documents ~75% of the device for Custom Logic).
const std::vector<BoardSpec>& board_database();

/// Case-insensitive lookup by id ("aws-f1", "zc706", "zedboard", "kcu1500").
Result<BoardSpec> find_board(std::string_view id);

/// The board used by the paper's evaluation.
const BoardSpec& aws_f1_board();

}  // namespace condor::hw

#include "hw/performance_model.hpp"

#include <algorithm>

#include "common/strings.hpp"

namespace condor::hw {
namespace {

std::uint64_t ceil_div(std::uint64_t a, std::uint64_t b) noexcept {
  return (a + b - 1) / b;
}

}  // namespace

std::uint64_t PerformanceEstimate::batch_cycles(std::uint64_t batch) const noexcept {
  if (batch == 0) {
    return 0;
  }
  return image_latency + (batch - 1) * bottleneck_interval;
}

double PerformanceEstimate::mean_seconds_per_image(std::uint64_t batch) const noexcept {
  if (batch == 0 || frequency_mhz <= 0.0) {
    return 0.0;
  }
  const double cycles = static_cast<double>(batch_cycles(batch));
  return cycles / (frequency_mhz * 1e6) / static_cast<double>(batch);
}

double PerformanceEstimate::images_per_second() const noexcept {
  if (bottleneck_interval == 0) {
    return 0.0;
  }
  return frequency_mhz * 1e6 / static_cast<double>(bottleneck_interval);
}

double PerformanceEstimate::gflops() const noexcept {
  return images_per_second() * static_cast<double>(flops_per_image) / 1e9;
}

std::string PerformanceEstimate::to_string() const {
  std::string out = strings::format(
      "performance @ %.1f MHz: bottleneck=%llu cycles, latency=%llu cycles, "
      "%.1f img/s, %.2f GFLOPS\n",
      frequency_mhz, static_cast<unsigned long long>(bottleneck_interval),
      static_cast<unsigned long long>(image_latency), images_per_second(),
      gflops());
  for (const PeTiming& pe : pes) {
    out += strings::format(
        "  %-20s interval=%llu (compute=%llu, memory=%llu) fill=%llu ddr=%s "
        "resident_weights=%s\n",
        pe.name.c_str(), static_cast<unsigned long long>(pe.interval()),
        static_cast<unsigned long long>(pe.compute_interval),
        static_cast<unsigned long long>(pe.memory_interval),
        static_cast<unsigned long long>(pe.fill_latency),
        strings::human_bytes(pe.ddr_bytes_per_image).c_str(),
        strings::human_bytes(pe.resident_weight_bytes).c_str());
  }
  return out;
}

Result<PerformanceEstimate> estimate_performance(const AcceleratorPlan& plan,
                                                 const ResourceReport& report,
                                                 double frequency_mhz) {
  if (frequency_mhz <= 0.0) {
    return invalid_input("frequency must be positive");
  }
  if (report.spills_to_ddr.size() != plan.pes.size()) {
    return invalid_input("resource report does not match the plan");
  }
  CONDOR_ASSIGN_OR_RETURN(auto shapes, plan.source.net.infer_shapes());
  const auto& layers = plan.source.net.layers();

  PerformanceEstimate estimate;
  estimate.frequency_mhz = frequency_mhz;
  CONDOR_ASSIGN_OR_RETURN(estimate.flops_per_image,
                          plan.source.net.total_flops());
  if (plan.softmax_on_host) {
    // Host-side softmax is excluded from accelerator FLOPs (it overlaps
    // with the next batch on the CPU and is negligible).
    for (std::size_t i = 0; i < layers.size(); ++i) {
      if (layers[i].kind == nn::LayerKind::kSoftmax) {
        estimate.flops_per_image -=
            nn::layer_flops(layers[i], shapes[i].input, shapes[i].output);
      }
    }
  }

  // Bytes/cycle the datamover can sustain per stream at this clock.
  const double ddr_bytes_per_cycle =
      plan.board.dram_bandwidth_gbps * 1e9 / 8.0 / (frequency_mhz * 1e6);

  for (std::size_t p = 0; p < plan.pes.size(); ++p) {
    const PePlan& pe = plan.pes[p];
    PeTiming timing;
    timing.name = pe.name;

    for (std::size_t position = 0; position < pe.layer_indices.size();
         ++position) {
      const std::size_t index = pe.layer_indices[position];
      const nn::LayerSpec& layer = layers[index];
      const Shape& in = shapes[index].input;
      const Shape& out = shapes[index].output;
      // Fusion honesty (paper §3.2): a pooling or activation layer fused
      // BEHIND a producer inside the same PE is near-free — it consumes the
      // producer pass's output raster in lockstep (one comparison/op per
      // produced element, pipelined), so it adds no service interval of its
      // own. Convolution followers still time-multiplex and charge in full.
      const bool free_rider =
          position > 0 && (layer.kind == nn::LayerKind::kPooling ||
                           layer.kind == nn::LayerKind::kActivation);
      switch (layer.kind) {
        case nn::LayerKind::kConvolution: {
          // II=1 over output points; sequential over feature-map tiles not
          // covered by the parallel ports.
          const std::uint64_t passes = ceil_div(in[0], pe.parallel_in) *
                                       ceil_div(out[0], pe.parallel_out);
          timing.compute_interval += passes * out[1] * out[2];
          // Weight residency: the slice streams from DDR once per design
          // load and is latched on chip — first-image latency, not
          // steady-state traffic.
          timing.resident_weight_bytes +=
              static_cast<std::uint64_t>(out[0]) * in[0] * layer.kernel_h *
              layer.kernel_w * sizeof(float);
          if (report.spills_to_ddr[p]) {
            // Input set re-streamed once per output tile.
            timing.ddr_bytes_per_image +=
                ceil_div(out[0], pe.parallel_out) * in.element_count() *
                sizeof(float);
          }
          break;
        }
        case nn::LayerKind::kPooling: {
          if (free_rider) {
            break;
          }
          const std::uint64_t passes = ceil_div(in[0], pe.parallel_in);
          timing.compute_interval += passes * out[1] * out[2];
          break;
        }
        case nn::LayerKind::kInnerProduct: {
          // Single-input/single-output 1x1-convolution PE: one MAC per
          // cycle per (parallel_in x parallel_out) lane pair.
          const std::uint64_t macs =
              in.element_count() * static_cast<std::uint64_t>(out[0]);
          timing.compute_interval +=
              ceil_div(macs, pe.parallel_in * pe.parallel_out);
          // FC weights are resident too: streamed once per design load,
          // never per image.
          timing.resident_weight_bytes += macs * sizeof(float);
          break;
        }
        case nn::LayerKind::kActivation: {
          if (free_rider) {
            break;
          }
          timing.compute_interval += out.element_count();
          break;
        }
        case nn::LayerKind::kEltwiseAdd:
        case nn::LayerKind::kConcat:
        case nn::LayerKind::kUpsample: {
          // Join / routing PEs emit one output element per cycle; the
          // operand streams arrive concurrently so the merge does not add
          // a second pass over the data.
          timing.compute_interval += out.element_count();
          break;
        }
        default:
          break;
      }
    }

    // Fill latency: the sliding window must see (Kh-1) rows + Kw elements
    // before the first output, plus the module pipeline depth.
    constexpr std::uint64_t kModulePipelineDepth = 12;
    if (pe.memory.has_value()) {
      timing.fill_latency =
          (pe.memory->window_h - 1) * pe.memory->map_w + pe.memory->window_w +
          kModulePipelineDepth;
    } else {
      timing.fill_latency = kModulePipelineDepth;
    }

    timing.memory_interval = static_cast<std::uint64_t>(
        static_cast<double>(timing.ddr_bytes_per_image) / ddr_bytes_per_cycle);
    // One-time weight load at design-load time: pure first-image latency.
    timing.weight_load_cycles = static_cast<std::uint64_t>(
        static_cast<double>(timing.resident_weight_bytes) /
        ddr_bytes_per_cycle);

    estimate.image_latency +=
        timing.interval() + timing.fill_latency + timing.weight_load_cycles;
    // Steady-state interval includes the fill: the sliding window drains
    // and refills between consecutive images, so a PE cannot accept a new
    // image every `interval` cycles alone. This matches the event-driven
    // pipeline simulation's per-stage service time.
    estimate.bottleneck_interval = std::max(
        estimate.bottleneck_interval, timing.interval() + timing.fill_latency);
    estimate.pes.push_back(std::move(timing));
  }

  // The datamover input stream itself can bound the pipeline.
  CONDOR_ASSIGN_OR_RETURN(Shape input_shape, plan.source.net.input_shape());
  const auto input_bytes =
      static_cast<std::uint64_t>(input_shape.element_count()) * sizeof(float);
  const auto input_stream_cycles = static_cast<std::uint64_t>(
      static_cast<double>(input_bytes) / ddr_bytes_per_cycle);
  estimate.bottleneck_interval =
      std::max<std::uint64_t>(estimate.bottleneck_interval,
                              std::max<std::uint64_t>(input_stream_cycles, 1));

  return estimate;
}

}  // namespace condor::hw

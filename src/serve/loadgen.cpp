#include "serve/loadgen.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <map>

#include "common/rng.hpp"
#include "common/strings.hpp"
#include "hls/synthesis.hpp"
#include "hw/performance_model.hpp"

namespace condor::serve {
namespace {

/// Uniform double in (0, 1] — 53 mantissa bits, never exactly 0 so the
/// exponential transform below is total.
double uniform_unit(Rng& rng) {
  const double u =
      static_cast<double>(rng.next_u64() >> 11) * 0x1.0p-53;
  return u > 0.0 ? u : 0x1.0p-53;
}

/// Device-time service model: a batch of `images` shards across the pool's
/// instances, so its service time is the slowest instance's pipeline
/// simulation over ceil(images / instances) images — the same aggregation
/// LoadedKernel::run reports for a sharded kernel invocation.
class ServiceModel {
 public:
  ServiceModel(const sim::AcceleratorSim& accel, std::size_t instances)
      : accel_(accel), instances_(std::max<std::size_t>(1, instances)) {}

  Result<double> seconds(std::size_t images) {
    const std::size_t per_instance =
        (images + instances_ - 1) / instances_;
    const auto cached = cache_.find(per_instance);
    if (cached != cache_.end()) {
      return cached->second;
    }
    CONDOR_ASSIGN_OR_RETURN(sim::BatchPoint point,
                            sim::simulate_batch(accel_, per_instance));
    const double seconds = static_cast<double>(point.total_cycles) /
                           (accel_.frequency_mhz * 1e6);
    cache_.emplace(per_instance, seconds);
    return seconds;
  }

 private:
  const sim::AcceleratorSim& accel_;
  std::size_t instances_;
  std::map<std::size_t, double> cache_;
};

bool byte_equal(const Tensor& a, const Tensor& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data().data(), b.data().data(),
                     a.size() * sizeof(float)) == 0;
}

}  // namespace

LatencySummary summarize_latencies(std::vector<double> latencies_ms) {
  LatencySummary summary;
  if (latencies_ms.empty()) {
    return summary;
  }
  std::sort(latencies_ms.begin(), latencies_ms.end());
  double sum = 0.0;
  for (const double v : latencies_ms) {
    sum += v;
  }
  const auto rank = [&](double q) {
    const std::size_t index = static_cast<std::size_t>(
        std::ceil(q * static_cast<double>(latencies_ms.size())));
    return latencies_ms[std::min(latencies_ms.size() - 1,
                                 index == 0 ? 0 : index - 1)];
  };
  summary.mean_ms = sum / static_cast<double>(latencies_ms.size());
  summary.p50_ms = rank(0.50);
  summary.p99_ms = rank(0.99);
  summary.max_ms = latencies_ms.back();
  return summary;
}

Result<sim::AcceleratorSim> make_service_model(
    const hw::AcceleratorPlan& plan) {
  CONDOR_ASSIGN_OR_RETURN(hls::SynthesisReport report, hls::synthesize(plan));
  CONDOR_ASSIGN_OR_RETURN(
      hw::PerformanceEstimate estimate,
      hw::estimate_performance(plan, report.resources,
                               report.achieved_clock_mhz));
  return sim::build_accelerator_sim(estimate);
}

Result<LoadGenReport> run_open_loop(dataflow::ExecutorPool& pool,
                                    const sim::AcceleratorSim& accel,
                                    const LoadGenOptions& options) {
  if (options.requests == 0) {
    return invalid_input("load generator needs at least one request");
  }
  ServiceModel service(accel, pool.instances());
  CONDOR_ASSIGN_OR_RETURN(const double serial_service, service.seconds(1));

  LoadGenReport report;
  report.requests = options.requests;
  report.serial_service_seconds = serial_service;
  report.offered_rps = options.rate_rps > 0.0
                           ? options.rate_rps
                           : 2.5 / serial_service;

  // Arrival process + inputs, deterministic from the seed.
  const Shape input_shape = pool.plan().source.net.input_shape().value();
  Rng rng(options.seed);
  std::vector<double> arrivals(options.requests);
  std::vector<Tensor> inputs(options.requests);
  double t = 0.0;
  for (std::size_t i = 0; i < options.requests; ++i) {
    t += -std::log(uniform_unit(rng)) / report.offered_rps;
    arrivals[i] = t;
    Tensor image(input_shape);
    for (float& v : image.data()) {
      v = rng.uniform(-1.0F, 1.0F);
    }
    inputs[i] = std::move(image);
  }

  std::vector<TenantConfig> tenants = options.tenants;
  if (tenants.empty()) {
    TenantConfig tenant;
    tenant.name = "default";
    tenant.queue_capacity = options.requests;  // bench measures latency, not rejects
    tenants.push_back(tenant);
  }

  // ---- dynamic batching: discrete-event simulation in virtual time ------
  BatcherCore core(options.batcher, tenants);
  std::vector<Tensor> admitted_inputs;    // admission order == ticket order
  std::vector<Tensor> demuxed;            // by ticket
  std::vector<double> admitted_arrivals;  // by ticket
  std::vector<double> latencies_ms;
  admitted_inputs.reserve(options.requests);

  double now = 0.0;
  double free_at = 0.0;
  double last_completion = 0.0;
  std::size_t next_arrival = 0;
  std::size_t completed = 0;

  const auto admit_due_arrivals = [&]() {
    while (next_arrival < options.requests &&
           arrivals[next_arrival] <= now) {
      const std::size_t tenant = next_arrival % tenants.size();
      Result<std::uint64_t> ticket =
          core.admit(tenant, inputs[next_arrival], now);
      if (ticket.is_ok()) {
        admitted_inputs.push_back(inputs[next_arrival]);
        admitted_arrivals.push_back(arrivals[next_arrival]);
        demuxed.emplace_back();
      } else {
        ++report.rejected;
      }
      ++next_arrival;
    }
  };

  while (completed + report.rejected < options.requests) {
    admit_due_arrivals();
    if (now >= free_at) {
      if (std::optional<Batch> batch = core.form_batch(now)) {
        std::vector<Tensor> batch_inputs;
        batch_inputs.reserve(batch->requests.size());
        for (const Request& request : batch->requests) {
          batch_inputs.push_back(request.input);
        }
        CONDOR_ASSIGN_OR_RETURN(std::vector<Tensor> outputs,
                                pool.run_batch(batch_inputs));
        CONDOR_ASSIGN_OR_RETURN(const double batch_service,
                                service.seconds(batch->requests.size()));
        report.max_batch_service_seconds =
            std::max(report.max_batch_service_seconds, batch_service);
        const double completion = now + batch_service;
        free_at = completion;
        last_completion = std::max(last_completion, completion);
        for (std::size_t i = 0; i < batch->requests.size(); ++i) {
          const Request& request = batch->requests[i];
          demuxed[request.id - 1] = std::move(outputs[i]);
          latencies_ms.push_back((completion - request.arrival_seconds) * 1e3);
        }
        completed += batch->requests.size();
        core.complete(*batch);
        continue;
      }
    }
    // Advance the virtual clock to the next event: the next arrival, the
    // moment the backend frees up (a batch is already due), or the moment
    // the oldest queued request's deadline makes a batch due.
    double next = std::numeric_limits<double>::infinity();
    if (next_arrival < options.requests) {
      next = std::min(next, arrivals[next_arrival]);
    }
    if (core.queued() > 0) {
      if (core.batch_due(now)) {
        next = std::min(next, free_at);
      } else if (const std::optional<double> deadline = core.next_deadline()) {
        next = std::min(next, *deadline);
      }
    }
    if (!std::isfinite(next) || next <= now) {
      return internal_error(strings::format(
          "load generator stalled at t=%.6f (queued %zu, completed %zu)", now,
          core.queued(), completed));
    }
    now = next;
  }

  report.completed = completed;
  report.makespan_seconds = last_completion;
  report.images_per_second =
      last_completion > 0.0 ? static_cast<double>(completed) / last_completion
                            : 0.0;
  report.latency = summarize_latencies(latencies_ms);
  report.batches = core.counters().batches_formed;
  report.mean_batch =
      report.batches > 0 ? static_cast<double>(core.counters().requests_batched) /
                               static_cast<double>(report.batches)
                         : 0.0;
  report.largest_batch = core.counters().largest_batch;

  // ---- serial per-request baseline over the same arrivals ---------------
  {
    std::vector<double> serial_latencies_ms;
    serial_latencies_ms.reserve(options.requests);
    double serial_free = 0.0;
    for (std::size_t i = 0; i < options.requests; ++i) {
      const double start = std::max(arrivals[i], serial_free);
      serial_free = start + serial_service;
      serial_latencies_ms.push_back((serial_free - arrivals[i]) * 1e3);
    }
    report.serial_images_per_second =
        serial_free > 0.0 ? static_cast<double>(options.requests) / serial_free
                          : 0.0;
    report.serial_latency = summarize_latencies(std::move(serial_latencies_ms));
  }
  report.speedup = report.serial_images_per_second > 0.0
                       ? report.images_per_second / report.serial_images_per_second
                       : 0.0;

  // ---- demux bit-exactness vs one direct run_batch ----------------------
  CONDOR_ASSIGN_OR_RETURN(std::vector<Tensor> direct,
                          pool.run_batch(admitted_inputs));
  report.bitexact_vs_direct = direct.size() == demuxed.size();
  for (std::size_t i = 0; report.bitexact_vs_direct && i < direct.size(); ++i) {
    report.bitexact_vs_direct = byte_equal(direct[i], demuxed[i]);
  }

  report.p99_bound_ms = options.batcher.max_delay_seconds * 1e3 +
                        report.max_batch_service_seconds * 1e3;
  report.p99_within_bound = report.latency.p99_ms <= report.p99_bound_ms;
  return report;
}

}  // namespace condor::serve

#include "serve/plan_cache.hpp"

#include <algorithm>
#include <cstring>

#include "hw/hw_ir.hpp"

namespace condor::serve {
namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x00000100000001b3ULL;

void mix(std::uint64_t& hash, std::uint64_t value) {
  for (int shift = 0; shift < 64; shift += 8) {
    hash ^= (value >> shift) & 0xffU;
    hash *= kFnvPrime;
  }
}

void mix_bytes(std::uint64_t& hash, const void* data, std::size_t bytes) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < bytes; ++i) {
    hash ^= p[i];
    hash *= kFnvPrime;
  }
}

}  // namespace

std::uint64_t fingerprint(const nn::Network& network) {
  std::uint64_t hash = kFnvOffset;
  mix(hash, network.layer_count());
  for (std::size_t i = 0; i < network.layer_count(); ++i) {
    const nn::LayerSpec& layer = network.layers()[i];
    mix(hash, static_cast<std::uint64_t>(layer.kind));
    mix(hash, layer.input_channels);
    mix(hash, layer.input_height);
    mix(hash, layer.input_width);
    mix(hash, layer.kernel_h);
    mix(hash, layer.kernel_w);
    mix(hash, layer.stride);
    mix(hash, layer.pad);
    mix(hash, layer.num_output);
    mix(hash, layer.has_bias ? 1 : 0);
    mix(hash, static_cast<std::uint64_t>(layer.pool_method));
    mix(hash, static_cast<std::uint64_t>(layer.activation));
    // Producer wiring by index, with the implicit-chain rule applied, so a
    // chain written with explicit `inputs` hashes identically to one
    // relying on declaration order.
    const auto producers = network.producers(i);
    if (producers.is_ok()) {
      for (const std::size_t producer : producers.value()) {
        mix(hash, producer + 1);
      }
    }
    mix(hash, 0xfeU);  // layer separator
  }
  return hash;
}

std::uint64_t fingerprint(const nn::WeightStore& weights) {
  std::uint64_t hash = kFnvOffset;
  for (const auto& [name, params] : weights.all()) {
    mix_bytes(hash, name.data(), name.size());
    for (const Tensor* tensor : {&params.weights, &params.bias}) {
      mix(hash, tensor->size());
      mix_bytes(hash, tensor->data().data(),
                tensor->size() * sizeof(float));
    }
  }
  return hash;
}

std::uint64_t plan_fingerprint(const hw::HwNetwork& network) {
  std::uint64_t hash = kFnvOffset;
  mix_bytes(hash, network.hw.board_id.data(), network.hw.board_id.size());
  // Quantized to kHz so the digest is stable across formatting round trips.
  mix(hash, static_cast<std::uint64_t>(network.hw.target_frequency_mhz * 1e3));
  mix(hash, network.hw.layers.size());
  for (const hw::LayerHw& annot : network.hw.layers) {
    mix(hash, annot.parallel_in);
    mix(hash, annot.parallel_out);
    // +2 keeps the unfused (-1) marker distinct from group 0 and from the
    // layer separator.
    mix(hash, static_cast<std::uint64_t>(annot.pe_group + 2));
    mix(hash, 0xfdU);  // layer separator
  }
  return hash;
}

Result<std::shared_ptr<PlanCache::Entry>> PlanCache::get_or_create(
    const nn::Network& network, const nn::WeightStore& weights,
    nn::DataType data_type, std::size_t instances) {
  return get_or_create(hw::with_default_annotations(network), weights,
                       data_type, instances);
}

Result<std::shared_ptr<PlanCache::Entry>> PlanCache::get_or_create(
    const hw::HwNetwork& hw_network, const nn::WeightStore& weights,
    nn::DataType data_type, std::size_t instances) {
  Key key;
  key.network_hash = fingerprint(hw_network.net);
  key.weights_hash = fingerprint(weights);
  key.plan_hash = plan_fingerprint(hw_network);
  key.data_type = data_type;
  key.instances = instances;

  std::lock_guard<std::mutex> lock(mutex_);
  ++tick_;
  for (Slot& slot : slots_) {
    if (slot.key == key) {
      slot.last_used = tick_;
      ++stats_.hits;
      return slot.entry;
    }
  }
  ++stats_.misses;

  // Compile: plan the accelerator from the caller's annotations, replicate
  // the executor pool over the shared immutable plan + weights.
  hw::HwNetwork hw_net = hw_network;
  hw_net.hw.data_type = data_type;
  CONDOR_ASSIGN_OR_RETURN(hw::AcceleratorPlan plan,
                          hw::plan_accelerator(hw_net));
  auto shared_plan = std::make_shared<const hw::AcceleratorPlan>(std::move(plan));
  auto shared_weights = std::make_shared<const nn::WeightStore>(weights);
  CONDOR_ASSIGN_OR_RETURN(
      dataflow::ExecutorPool pool,
      dataflow::ExecutorPool::create(shared_plan, shared_weights, instances));

  auto entry = std::make_shared<Entry>();
  entry->plan = std::move(shared_plan);
  entry->pool = std::make_shared<dataflow::ExecutorPool>(std::move(pool));

  if (slots_.size() >= capacity_) {
    auto lru = std::min_element(slots_.begin(), slots_.end(),
                                [](const Slot& a, const Slot& b) {
                                  return a.last_used < b.last_used;
                                });
    slots_.erase(lru);
    ++stats_.evictions;
  }
  slots_.push_back(Slot{key, entry, tick_});
  return entry;
}

PlanCacheStats PlanCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::size_t PlanCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return slots_.size();
}

}  // namespace condor::serve

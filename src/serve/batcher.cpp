#include "serve/batcher.hpp"

#include <algorithm>
#include <limits>

#include "common/strings.hpp"

namespace condor::serve {
namespace {

/// Stride numerator: pass increments are kStrideScale / weight, so a
/// weight-8 tenant is picked 8x as often as a weight-1 tenant.
constexpr std::uint64_t kStrideScale = 1ULL << 20;

}  // namespace

std::string_view to_string(QosClass qos) noexcept {
  switch (qos) {
    case QosClass::kInteractive:
      return "interactive";
    case QosClass::kBulk:
      return "bulk";
  }
  return "?";
}

std::size_t default_weight(QosClass qos) noexcept {
  switch (qos) {
    case QosClass::kInteractive:
      return 8;
    case QosClass::kBulk:
      return 1;
  }
  return 1;
}

BatcherCore::BatcherCore(BatcherOptions options,
                         std::vector<TenantConfig> tenants)
    : options_(options) {
  if (options_.max_batch == 0) {
    options_.max_batch = 1;
  }
  if (options_.preferred_batch == 0) {
    options_.preferred_batch = std::max<std::size_t>(1, options_.max_batch / 4);
  }
  options_.preferred_batch =
      std::min(options_.preferred_batch, options_.max_batch);
  tenants_.reserve(tenants.size());
  for (TenantConfig& config : tenants) {
    if (config.weight == 0) {
      config.weight = default_weight(config.qos);
    }
    TenantState state;
    state.config = std::move(config);
    tenants_.push_back(std::move(state));
  }
}

Result<std::uint64_t> BatcherCore::admit(std::size_t tenant, Tensor input,
                                         double now) {
  if (tenant >= tenants_.size()) {
    return not_found(strings::format("unknown tenant index %zu (%zu tenants)",
                                     tenant, tenants_.size()));
  }
  TenantState& state = tenants_[tenant];
  if (in_flight_ >= options_.max_inflight) {
    ++state.counters.rejected;
    return unavailable(strings::format(
        "server at max in-flight (%zu requests admitted and incomplete)",
        options_.max_inflight));
  }
  if (state.queue.size() >= state.config.queue_capacity) {
    ++state.counters.rejected;
    return unavailable(strings::format(
        "tenant '%s' queue full (capacity %zu)", state.config.name.c_str(),
        state.config.queue_capacity));
  }
  Request request;
  request.id = next_id_++;
  request.tenant = tenant;
  request.arrival_seconds = now;
  request.deadline_seconds = now + options_.max_delay_seconds;
  request.input = std::move(input);
  if (state.queue.empty()) {
    // Newly backlogged: start at the scheduler's current position so an
    // idle spell does not bank catch-up credit against active tenants.
    state.pass = std::max(state.pass, pass_floor_);
  }
  state.queue.push_back(std::move(request));
  ++state.counters.admitted;
  ++queued_;
  ++in_flight_;
  return state.queue.back().id;
}

bool BatcherCore::batch_due(double now) const noexcept {
  if (queued_ == 0) {
    return false;
  }
  if (queued_ >= options_.preferred_batch) {
    return true;
  }
  const std::optional<double> deadline = next_deadline();
  return deadline.has_value() && *deadline <= now;
}

std::optional<double> BatcherCore::next_deadline() const noexcept {
  std::optional<double> earliest;
  for (const TenantState& state : tenants_) {
    // Per-tenant queues are FIFO, so the head carries the earliest deadline.
    if (!state.queue.empty() &&
        (!earliest.has_value() ||
         state.queue.front().deadline_seconds < *earliest)) {
      earliest = state.queue.front().deadline_seconds;
    }
  }
  return earliest;
}

std::optional<Request> BatcherCore::pop_weighted_fair() {
  TenantState* pick = nullptr;
  for (TenantState& state : tenants_) {
    if (state.queue.empty()) {
      continue;
    }
    if (pick == nullptr || state.pass < pick->pass) {
      pick = &state;
    }
  }
  if (pick == nullptr) {
    return std::nullopt;
  }
  pass_floor_ = pick->pass;
  pick->pass += kStrideScale / pick->config.weight;
  Request request = std::move(pick->queue.front());
  pick->queue.pop_front();
  --queued_;
  return request;
}

std::optional<Batch> BatcherCore::form_batch(double now, bool flush) {
  const bool deadline_hit =
      next_deadline().has_value() && *next_deadline() <= now;
  if (queued_ == 0 || (!flush && !batch_due(now))) {
    return std::nullopt;
  }
  Batch batch;
  batch.formed_at_seconds = now;
  batch.deadline_triggered = deadline_hit && queued_ < options_.preferred_batch;
  batch.requests.reserve(std::min(queued_, options_.max_batch));

  // Pass 1 — each tenant's expired FIFO head, earliest deadline first, at
  // most ONE per tenant. This is the hard latency guarantee: every tenant's
  // oldest request is in the very next batch formed after its deadline,
  // regardless of weights. Capping the pass at one request per tenant is
  // what keeps the guarantee multi-tenant: an overloaded tenant whose whole
  // backlog has blown its deadlines must not turn EDF into a global FIFO
  // that starves other tenants' (later) deadlines — beyond its head it
  // competes by weight like everyone else.
  std::vector<TenantState*> expired;
  for (TenantState& state : tenants_) {
    if (!state.queue.empty() && state.queue.front().deadline_seconds <= now) {
      expired.push_back(&state);
    }
  }
  std::sort(expired.begin(), expired.end(),
            [](const TenantState* a, const TenantState* b) {
              return a->queue.front().deadline_seconds <
                     b->queue.front().deadline_seconds;
            });
  for (TenantState* state : expired) {
    if (batch.requests.size() >= options_.max_batch) {
      break;
    }
    batch.requests.push_back(std::move(state->queue.front()));
    state->queue.pop_front();
    --queued_;
  }

  // Pass 2 — fill the remaining slots weight-proportionally across the
  // backlogged tenants (stride scheduling).
  while (batch.requests.size() < options_.max_batch) {
    std::optional<Request> request = pop_weighted_fair();
    if (!request.has_value()) {
      break;
    }
    batch.requests.push_back(std::move(*request));
  }

  for (const Request& request : batch.requests) {
    ++tenants_[request.tenant].counters.dispatched;
  }
  ++counters_.batches_formed;
  counters_.requests_batched += batch.requests.size();
  if (batch.deadline_triggered) {
    ++counters_.deadline_batches;
  }
  counters_.largest_batch =
      std::max(counters_.largest_batch, batch.requests.size());
  return batch;
}

void BatcherCore::complete(const Batch& batch) {
  for (const Request& request : batch.requests) {
    ++tenants_[request.tenant].counters.completed;
  }
  in_flight_ -= std::min(in_flight_, batch.requests.size());
}

}  // namespace condor::serve

// Dynamic request batcher with admission control and weighted fair
// scheduling — the state machine at the heart of the multi-tenant serving
// layer (serve::Server wraps it in threads; bench/serve_load drives it in
// virtual time).
//
// The serving problem: many sessions submit single-image requests, but the
// accelerator pool only reaches its throughput when images arrive in
// batches — a batch amortizes the pipeline fill over its images and, more
// importantly, is the unit the chunk-stealing runtime shards across
// replicated instances / F1 slots (a lone image can never occupy more than
// one slot). The batcher therefore coalesces queued requests into batches
// and bounds the latency cost of waiting:
//
//   * a batch becomes DUE when (a) max_batch requests are queued, (b) the
//     oldest queued request has waited max_delay (its deadline), or (c) at
//     least preferred_batch requests are queued. The caller only asks for a
//     batch when a backend is free, so (c) means "don't hold a usable batch
//     back while hardware sits idle"; (b) bounds the tail when traffic is
//     sparse.
//   * admission control: each tenant owns a bounded FIFO queue —
//     reject-on-full, never block — and a global cap bounds admitted but
//     incomplete requests across all tenants, so a flood degrades into
//     fast rejects instead of unbounded memory and latency.
//   * batch composition: each tenant's expired FIFO head is taken first
//     (earliest deadline first, at most one per tenant — this is what makes
//     the per-tenant latency bound hard, and the per-tenant cap is what
//     keeps it multi-tenant: a tenant whose whole flood has blown its
//     deadlines cannot turn the deadline pass into a global FIFO that
//     starves other tenants); remaining slots are filled by stride
//     scheduling across backlogged tenants, weight-proportional per QoS
//     class, so a flooding bulk tenant cannot crowd an interactive tenant
//     out of batches.
//
// The core is deliberately thread-free and clock-free: every entry point
// takes `now` in seconds, so the deterministic tests and the virtual-time
// load generator drive it with a fake clock while serve::Server drives it
// with a steady clock under its own mutex.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "tensor/tensor.hpp"

namespace condor::serve {

/// Service classes a tenant can subscribe to. The class sets the default
/// fair-share weight: interactive tenants outweigh bulk tenants, so under
/// contention their requests take proportionally more batch slots.
enum class QosClass {
  kInteractive,  ///< latency-sensitive sessions (default weight 8)
  kBulk,         ///< throughput traffic, e.g. offline scoring (weight 1)
};

std::string_view to_string(QosClass qos) noexcept;
std::size_t default_weight(QosClass qos) noexcept;

struct TenantConfig {
  std::string name;
  QosClass qos = QosClass::kInteractive;
  /// Fair-share weight; 0 derives the default from the QoS class.
  std::size_t weight = 0;
  /// Admission bound of this tenant's request queue (reject-on-full).
  std::size_t queue_capacity = 64;
};

struct BatcherOptions {
  /// Hard batch-size cap (the backend's sweet spot, e.g. instances * K).
  std::size_t max_batch = 16;
  /// Queue depth at which a batch is considered worth dispatching to an
  /// idle backend before any deadline expires. 0 derives max(1, max_batch/4).
  std::size_t preferred_batch = 0;
  /// Deadline: no admitted request waits longer than this for dispatch
  /// while a backend is available.
  double max_delay_seconds = 2e-3;
  /// Global cap on admitted-but-incomplete requests (all tenants).
  std::size_t max_inflight = 1024;
};

/// One admitted request. `id` is the demux ticket the server resolves back
/// to the caller's future; `deadline_seconds` = arrival + max_delay.
struct Request {
  std::uint64_t id = 0;
  std::size_t tenant = 0;
  double arrival_seconds = 0.0;
  double deadline_seconds = 0.0;
  Tensor input;
};

/// A formed batch, ready for one backend dispatch. Requests keep their
/// admission metadata so the dispatcher can demultiplex outputs and account
/// per-tenant latency.
struct Batch {
  std::vector<Request> requests;
  double formed_at_seconds = 0.0;
  /// True when an expired deadline (not queue depth) triggered formation.
  bool deadline_triggered = false;
};

struct TenantCounters {
  std::uint64_t admitted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t dispatched = 0;
  std::uint64_t completed = 0;
};

struct BatcherCounters {
  std::uint64_t batches_formed = 0;
  std::uint64_t requests_batched = 0;
  std::uint64_t deadline_batches = 0;  ///< formed because a deadline expired
  std::size_t largest_batch = 0;
};

class BatcherCore {
 public:
  BatcherCore(BatcherOptions options, std::vector<TenantConfig> tenants);

  /// Admission control. Returns the request's demux ticket, or rejects:
  /// kNotFound for an unknown tenant, kUnavailable when the tenant queue or
  /// the global in-flight cap is full. Never blocks.
  Result<std::uint64_t> admit(std::size_t tenant, Tensor input, double now);

  /// True when a batch should be dispatched to a free backend at `now`.
  [[nodiscard]] bool batch_due(double now) const noexcept;

  /// Forms the next batch (deadline-first, then weighted fair) if one is
  /// due — or, with `flush`, whenever anything is queued (shutdown drain).
  std::optional<Batch> form_batch(double now, bool flush = false);

  /// Earliest dispatch deadline among queued requests (for timed waits).
  [[nodiscard]] std::optional<double> next_deadline() const noexcept;

  /// Releases the batch's slots in the global in-flight window. Call after
  /// the backend completed (or failed) the dispatch.
  void complete(const Batch& batch);

  [[nodiscard]] std::size_t queued() const noexcept { return queued_; }
  [[nodiscard]] std::size_t in_flight() const noexcept { return in_flight_; }
  [[nodiscard]] std::size_t tenant_count() const noexcept {
    return tenants_.size();
  }
  [[nodiscard]] const TenantConfig& tenant_config(std::size_t tenant) const {
    return tenants_[tenant].config;
  }
  [[nodiscard]] const TenantCounters& tenant_counters(std::size_t tenant) const {
    return tenants_[tenant].counters;
  }
  [[nodiscard]] const BatcherCounters& counters() const noexcept {
    return counters_;
  }
  [[nodiscard]] const BatcherOptions& options() const noexcept {
    return options_;
  }

 private:
  struct TenantState {
    TenantConfig config;
    std::deque<Request> queue;
    /// Stride-scheduling pass value: the backlogged tenant with the lowest
    /// pass is served next; each pick advances it by kStrideScale / weight.
    std::uint64_t pass = 0;
    TenantCounters counters;
  };

  /// Pops the next request by stride scheduling across backlogged tenants.
  std::optional<Request> pop_weighted_fair();

  BatcherOptions options_;
  std::vector<TenantState> tenants_;
  BatcherCounters counters_;
  std::size_t queued_ = 0;
  std::size_t in_flight_ = 0;  ///< admitted, not yet complete()d
  std::uint64_t next_id_ = 1;
  /// Pass of the most recent pick: newly backlogged tenants start here so
  /// an idle spell never banks catch-up credit (standard stride lag fix).
  std::uint64_t pass_floor_ = 0;
};

}  // namespace condor::serve

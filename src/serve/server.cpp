#include "serve/server.hpp"

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "common/strings.hpp"

namespace condor::serve {

struct Server::Impl {
  Impl(ServerOptions options, std::vector<TenantConfig> tenants,
       std::vector<Backend*> backends)
      : core(options.batcher, std::move(tenants)),
        backends(std::move(backends)),
        epoch(std::chrono::steady_clock::now()) {}

  [[nodiscard]] double now_seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         epoch)
        .count();
  }

  void dispatch_loop(std::size_t backend_index);

  std::mutex mutex;
  std::condition_variable work_cv;
  BatcherCore core;
  std::vector<Backend*> backends;
  std::chrono::steady_clock::time_point epoch;
  /// Demux table: admission ticket -> the caller's promise.
  std::unordered_map<std::uint64_t, std::promise<Result<Tensor>>> promises;
  std::vector<std::thread> dispatchers;
  std::uint64_t batches_dispatched = 0;
  std::uint64_t images_served = 0;
  std::uint64_t backend_failures = 0;
  bool stopping = false;
};

void Server::Impl::dispatch_loop(std::size_t backend_index) {
  Backend& backend = *backends[backend_index];
  std::unique_lock<std::mutex> lock(mutex);
  for (;;) {
    // Wait until a batch is due for this (free) backend, or shutdown.
    for (;;) {
      if (stopping && core.queued() == 0) {
        return;
      }
      const double now = now_seconds();
      if (core.batch_due(now) || (stopping && core.queued() > 0)) {
        break;
      }
      const std::optional<double> deadline = core.next_deadline();
      if (deadline.has_value()) {
        work_cv.wait_until(
            lock, epoch + std::chrono::duration_cast<
                              std::chrono::steady_clock::duration>(
                              std::chrono::duration<double>(*deadline)));
      } else {
        work_cv.wait(lock);
      }
    }
    std::optional<Batch> batch =
        core.form_batch(now_seconds(), /*flush=*/stopping);
    if (!batch.has_value()) {
      continue;
    }
    // Collect inputs and claim the promises under the lock, run outside it.
    std::vector<Tensor> inputs;
    std::vector<std::promise<Result<Tensor>>> claimed;
    inputs.reserve(batch->requests.size());
    claimed.reserve(batch->requests.size());
    for (Request& request : batch->requests) {
      inputs.push_back(std::move(request.input));
      auto it = promises.find(request.id);
      claimed.push_back(std::move(it->second));
      promises.erase(it);
    }
    lock.unlock();
    Result<std::vector<Tensor>> outputs = backend.run_batch(inputs);
    if (outputs.is_ok()) {
      for (std::size_t i = 0; i < claimed.size(); ++i) {
        claimed[i].set_value(std::move(outputs.value()[i]));
      }
    } else {
      const Status status(
          outputs.status().code(),
          strings::format("backend '%s': %s",
                          std::string(backend.name()).c_str(),
                          outputs.status().message().c_str()));
      for (auto& promise : claimed) {
        promise.set_value(status);
      }
    }
    lock.lock();
    core.complete(*batch);
    ++batches_dispatched;
    if (outputs.is_ok()) {
      images_served += claimed.size();
    } else {
      ++backend_failures;
    }
    // Another dispatcher may already have a due batch waiting behind this
    // one's in-flight window.
    work_cv.notify_all();
  }
}

Result<Server> Server::create(ServerOptions options,
                              std::vector<TenantConfig> tenants,
                              std::vector<Backend*> backends) {
  if (tenants.empty()) {
    return invalid_input("server needs at least one tenant");
  }
  if (backends.empty()) {
    return invalid_input("server needs at least one backend");
  }
  for (const Backend* backend : backends) {
    if (backend == nullptr) {
      return invalid_input("null backend");
    }
  }
  auto impl =
      std::make_unique<Impl>(options, std::move(tenants), std::move(backends));
  for (std::size_t b = 0; b < impl->backends.size(); ++b) {
    impl->dispatchers.emplace_back(&Impl::dispatch_loop, impl.get(), b);
  }
  return Server(std::move(impl));
}

Server::Server(std::unique_ptr<Impl> impl) : impl_(std::move(impl)) {}

Server::Server(Server&&) noexcept = default;

Server& Server::operator=(Server&& other) noexcept {
  if (this != &other) {
    if (impl_ != nullptr) {
      shutdown();  // never drop an Impl with live dispatcher threads
    }
    impl_ = std::move(other.impl_);
  }
  return *this;
}

Server::~Server() {
  if (impl_ != nullptr) {
    shutdown();
  }
}

std::future<Result<Tensor>> Server::submit(std::size_t tenant, Tensor input) {
  std::promise<Result<Tensor>> promise;
  std::future<Result<Tensor>> future = promise.get_future();
  std::lock_guard<std::mutex> lock(impl_->mutex);
  if (impl_->stopping) {
    promise.set_value(unavailable("server is shutting down"));
    return future;
  }
  Result<std::uint64_t> ticket =
      impl_->core.admit(tenant, std::move(input), impl_->now_seconds());
  if (!ticket.is_ok()) {
    promise.set_value(ticket.status());
    return future;
  }
  impl_->promises.emplace(ticket.value(), std::move(promise));
  impl_->work_cv.notify_all();
  return future;
}

std::vector<std::future<Result<Tensor>>> Server::submit_many(
    std::size_t tenant, std::vector<Tensor> inputs) {
  std::vector<std::future<Result<Tensor>>> futures;
  futures.reserve(inputs.size());
  for (Tensor& input : inputs) {
    futures.push_back(submit(tenant, std::move(input)));
  }
  return futures;
}

void Server::shutdown() {
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    if (impl_->stopping && impl_->dispatchers.empty()) {
      return;
    }
    impl_->stopping = true;
    impl_->work_cv.notify_all();
  }
  for (std::thread& dispatcher : impl_->dispatchers) {
    dispatcher.join();
  }
  impl_->dispatchers.clear();
}

ServerStats Server::stats() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  ServerStats stats;
  stats.batcher = impl_->core.counters();
  for (std::size_t t = 0; t < impl_->core.tenant_count(); ++t) {
    stats.tenants.push_back(impl_->core.tenant_counters(t));
  }
  stats.batches_dispatched = impl_->batches_dispatched;
  stats.images_served = impl_->images_served;
  stats.backend_failures = impl_->backend_failures;
  return stats;
}

}  // namespace condor::serve

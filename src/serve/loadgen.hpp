// Open-loop load generator for the serving layer.
//
// Drives Poisson arrivals at a configured offered rate through the
// BatcherCore and an ExecutorPool, and reports per-request latency
// (p50/p99) and throughput for two serving policies over the SAME arrival
// sequence:
//
//   * serial   — per-request dispatch: every image runs alone, in arrival
//     order, the way a naive RPC handler would call run_batch(1). A lone
//     image occupies one accelerator instance; the rest of the pool idles.
//   * batched  — the dynamic batcher coalesces queued requests (up to
//     max_batch, bounded by the max_delay deadline) and each batch shards
//     across all pool instances through the chunk-stealing runtime.
//
// Timing runs in the device-time domain: every dispatched batch executes
// functionally through the real ExecutorPool (so outputs are real and the
// demux is checked byte-for-byte against a direct run_batch), while its
// service time comes from the same cycle-approximate pipeline simulation
// LoadedKernel reports — max over instances of simulate(ceil(n/instances)),
// i.e. the wall time of the concurrent slots. Arrivals, queueing and
// dispatch then advance on that virtual clock, which makes every latency
// figure deterministic for a given seed and independent of the simulation
// host — the same reason multi_slot_scaling reports device-side img/s.
#pragma once

#include <cstdint>
#include <vector>

#include "common/status.hpp"
#include "dataflow/executor_pool.hpp"
#include "serve/batcher.hpp"
#include "sim/accel_sim.hpp"

namespace condor::serve {

struct LoadGenOptions {
  /// Offered Poisson arrival rate (requests per second). 0 = auto: 2.5x
  /// the pool's serial per-request capacity.
  double rate_rps = 0.0;
  std::size_t requests = 512;
  std::uint64_t seed = 2024;
  BatcherOptions batcher;
  /// Tenant set; requests round-robin across tenants. Empty = one
  /// interactive tenant with a queue deep enough to avoid rejects.
  std::vector<TenantConfig> tenants;
};

struct LatencySummary {
  double mean_ms = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double max_ms = 0.0;
};

/// Computes the summary of a latency sample (milliseconds). Percentiles
/// use the nearest-rank method.
LatencySummary summarize_latencies(std::vector<double> latencies_ms);

struct LoadGenReport {
  double offered_rps = 0.0;
  std::size_t requests = 0;
  std::size_t completed = 0;
  std::size_t rejected = 0;

  // Dynamic batching results.
  double makespan_seconds = 0.0;  ///< virtual: first arrival -> last completion
  double images_per_second = 0.0;
  LatencySummary latency;
  std::size_t batches = 0;
  double mean_batch = 0.0;
  std::size_t largest_batch = 0;
  double max_batch_service_seconds = 0.0;

  // Serial per-request baseline over the same arrivals.
  double serial_images_per_second = 0.0;
  LatencySummary serial_latency;
  double serial_service_seconds = 0.0;  ///< device time of one lone image

  double speedup = 0.0;  ///< images_per_second / serial_images_per_second

  /// Demux check: every batched request's output byte-identical to a
  /// direct pool.run_batch over the same inputs in arrival order.
  bool bitexact_vs_direct = false;

  /// Tail bound the batcher guarantees: max_delay + one (largest) batch
  /// service time.
  double p99_bound_ms = 0.0;
  bool p99_within_bound = false;
};

/// Builds the device-time service model for `plan` (simulated synthesis +
/// analytical per-PE timing + pipeline simulation at the achieved clock).
Result<sim::AcceleratorSim> make_service_model(const hw::AcceleratorPlan& plan);

/// Runs the open-loop experiment. `pool` supplies both the functional
/// outputs and the instance count of the service model.
Result<LoadGenReport> run_open_loop(dataflow::ExecutorPool& pool,
                                    const sim::AcceleratorSim& accel,
                                    const LoadGenOptions& options);

}  // namespace condor::serve

// Warm plan cache for repeat serving sessions.
//
// Opening a session costs a full compile: hardware annotation, accelerator
// planning, simulated synthesis, executor-pool construction, and (cold
// cloud paths) an AFI load. None of that depends on the session — only on
// the network structure, the parameter bytes, the numeric datapath and the
// replica count — so repeat sessions for the same model must skip it. The
// cache keys entries by (network fingerprint, data_type, instances), where
// the fingerprint digests the topology and the weight bytes, and hands out
// shared_ptr entries: the pool inside is the shared_ptr<const> plan/weights
// residency from the executor layer, so N concurrent sessions share one
// compiled design and one resident weight image. Eviction is LRU; an entry
// still referenced by a session stays alive through its shared_ptr even
// after eviction.
//
// Cloud deployments can also pin the AFI id a plan was staged under on the
// entry (`afi_id`), so a warm hit skips the create-fpga-image round trip
// as well — the "warm AFI" half of the cache.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "dataflow/executor_pool.hpp"
#include "hw/accel_plan.hpp"
#include "hw/hw_ir.hpp"
#include "nn/network.hpp"
#include "nn/numeric.hpp"
#include "nn/weights.hpp"

namespace condor::serve {

/// Structural digest of a network: layer kinds, geometry, activations and
/// producer wiring (FNV-1a 64). Names do not contribute — two identically
/// shaped networks share hardware regardless of labeling.
std::uint64_t fingerprint(const nn::Network& network);

/// Digest of the parameter bytes (per-layer shapes + raw values). Folded
/// into the cache key so a weight update is a compile, not a stale hit.
std::uint64_t fingerprint(const nn::WeightStore& weights);

/// Digest of the plan parameters that shape the hardware beyond the
/// topology: board preset, target clock and the per-layer parallel_in /
/// parallel_out / pe_group (fusion clustering) annotations. Folded into the
/// cache key so tenants requesting differently fused or parallelized
/// designs of the same network never collide on one compiled plan.
std::uint64_t plan_fingerprint(const hw::HwNetwork& network);

struct PlanCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
};

class PlanCache {
 public:
  struct Entry {
    std::shared_ptr<const hw::AcceleratorPlan> plan;
    std::shared_ptr<dataflow::ExecutorPool> pool;
    /// AFI this plan is staged under, when a cloud deployment pinned one.
    std::string afi_id;
  };

  explicit PlanCache(std::size_t capacity = 8)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  /// Returns the warm entry for (network, weights, data_type, instances),
  /// or compiles plan + pool on a miss and caches it (evicting the least
  /// recently used entry at capacity). Thread-safe; the compile runs under
  /// the cache lock so concurrent sessions for the same key compile once.
  /// Uses the default hardware annotations (every layer on its own PE).
  Result<std::shared_ptr<Entry>> get_or_create(const nn::Network& network,
                                               const nn::WeightStore& weights,
                                               nn::DataType data_type,
                                               std::size_t instances);

  /// Annotated variant: the caller supplies the hardware annotations
  /// (board, clock, parallelism, fusion clustering), and their digest joins
  /// the key — two tenants serving the same topology with different fused
  /// designs get distinct compiled plans. `hw_network.hw.data_type` is
  /// overridden by `data_type` (it is part of the key either way).
  Result<std::shared_ptr<Entry>> get_or_create(const hw::HwNetwork& hw_network,
                                               const nn::WeightStore& weights,
                                               nn::DataType data_type,
                                               std::size_t instances);

  [[nodiscard]] PlanCacheStats stats() const;
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

 private:
  struct Key {
    std::uint64_t network_hash = 0;
    std::uint64_t weights_hash = 0;
    /// Digest of the plan parameters (plan_fingerprint): board preset,
    /// clock, parallelism and fusion clustering annotations.
    std::uint64_t plan_hash = 0;
    nn::DataType data_type = nn::DataType::kFloat32;
    std::size_t instances = 1;

    bool operator==(const Key& other) const noexcept {
      return network_hash == other.network_hash &&
             weights_hash == other.weights_hash &&
             plan_hash == other.plan_hash && data_type == other.data_type &&
             instances == other.instances;
    }
  };
  struct Slot {
    Key key;
    std::shared_ptr<Entry> entry;
    std::uint64_t last_used = 0;
  };

  std::size_t capacity_;
  mutable std::mutex mutex_;
  std::vector<Slot> slots_;
  std::uint64_t tick_ = 0;
  PlanCacheStats stats_;
};

}  // namespace condor::serve

// serve::Server — the multi-tenant request front door.
//
// Sessions submit single images (or small bursts) and get back futures; a
// dispatcher thread per backend pulls batches out of the shared BatcherCore
// (admission control, max_delay deadline, weighted fair QoS — see
// batcher.hpp), runs them through the backend's batch API, and
// demultiplexes the outputs to the per-request futures. Because images run
// independently through the accelerator pipeline, a request's output is
// bit-exact vs a direct run_batch of the same image no matter which batch
// it rode in — the demux is pure plumbing, never arithmetic.
//
// Backends adapt the two pool flavors the repo has:
//   * PoolBackend  — an in-process dataflow::ExecutorPool (replicated
//     executor instances over one shared plan + resident weights),
//   * F1SlotBackend — a cloud::F1Instance slot range driven through
//     run_batch_sharded (one AFI on every slot, chunk-stealing dispatch).
// A Server over several backends (e.g. two F1 instances) keeps one batch
// in flight per backend: each dispatcher forms the next batch only when
// its backend is free, which is exactly the condition under which the
// batcher's preferred_batch/deadline policy is latency-optimal.
#pragma once

#include <future>
#include <memory>
#include <span>
#include <string_view>
#include <vector>

#include "cloud/f1.hpp"
#include "common/status.hpp"
#include "dataflow/executor_pool.hpp"
#include "serve/batcher.hpp"
#include "tensor/tensor.hpp"

namespace condor::serve {

/// A batch-execution target the server can multiplex requests onto.
class Backend {
 public:
  virtual ~Backend() = default;
  [[nodiscard]] virtual std::string_view name() const noexcept = 0;
  virtual Result<std::vector<Tensor>> run_batch(
      std::span<const Tensor> inputs) = 0;
};

/// In-process executor pool (replicated accelerator instances).
class PoolBackend : public Backend {
 public:
  explicit PoolBackend(std::shared_ptr<dataflow::ExecutorPool> pool)
      : pool_(std::move(pool)) {}

  [[nodiscard]] std::string_view name() const noexcept override {
    return "executor-pool";
  }
  Result<std::vector<Tensor>> run_batch(
      std::span<const Tensor> inputs) override {
    return pool_->run_batch(inputs);
  }
  [[nodiscard]] dataflow::ExecutorPool& pool() noexcept { return *pool_; }

 private:
  std::shared_ptr<dataflow::ExecutorPool> pool_;
};

/// A cloud F1 instance's slot pool (all slots programmed with one AFI).
class F1SlotBackend : public Backend {
 public:
  F1SlotBackend(cloud::F1Instance& instance, std::size_t slots)
      : instance_(instance), slots_(slots) {}

  [[nodiscard]] std::string_view name() const noexcept override {
    return "f1-slot-pool";
  }
  Result<std::vector<Tensor>> run_batch(
      std::span<const Tensor> inputs) override {
    return instance_.run_batch_sharded(inputs, slots_);
  }

 private:
  cloud::F1Instance& instance_;
  std::size_t slots_;
};

struct ServerOptions {
  BatcherOptions batcher;
};

struct ServerStats {
  BatcherCounters batcher;
  std::vector<TenantCounters> tenants;
  std::uint64_t batches_dispatched = 0;
  std::uint64_t images_served = 0;
  std::uint64_t backend_failures = 0;
};

class Server {
 public:
  /// Validates the configuration and starts one dispatcher thread per
  /// backend. Backends must outlive the server.
  static Result<Server> create(ServerOptions options,
                               std::vector<TenantConfig> tenants,
                               std::vector<Backend*> backends);

  Server(Server&&) noexcept;
  Server& operator=(Server&&) noexcept;
  ~Server();

  /// Submits one image for `tenant`. The future resolves to the output
  /// blob, or to the admission error (queue full / in-flight cap) — an
  /// admission reject resolves immediately and never blocks the caller.
  std::future<Result<Tensor>> submit(std::size_t tenant, Tensor input);

  /// Small-batch convenience: each image becomes its own request (the
  /// batcher may regroup them with other tenants' traffic).
  std::vector<std::future<Result<Tensor>>> submit_many(
      std::size_t tenant, std::vector<Tensor> inputs);

  /// Stops admission, drains every queued request through the backends,
  /// and joins the dispatchers. Idempotent; the destructor calls it.
  void shutdown();

  [[nodiscard]] ServerStats stats() const;

 private:
  struct Impl;
  explicit Server(std::unique_ptr<Impl> impl);

  std::unique_ptr<Impl> impl_;
};

}  // namespace condor::serve

// Resumable module firings for the cooperative dataflow scheduler.
//
// A module body is a C++20 coroutine returning `Fire`: it runs until a
// stream operation would block, then suspends with a "blocked on stream S
// for read/write" record instead of parking the OS thread. The cooperative
// scheduler (`Graph::run`) — the only driver — re-fires a blocked module
// once a FIFO wakeup hook reports the stream ready, so a whole graph runs
// on any number of workers, including one.
//
// The driver contract is carried in a thread-local `FireContext`: the
// StreamBlock awaiter records the blocked stream/op and the innermost resume
// point there, then asks the scheduler (`on_block`) whether the suspension
// should stand. Nested firings (helper coroutines) chain through
// continuations with symmetric transfer, so one module firing is one logical
// stack that always resumes at its innermost suspension point.
//
// Coroutine frames are recycled through a per-module `FrameArena` (an
// exact-size freelist): after the first batch warms the arena, steady-state
// firings allocate nothing — preserving the zero-allocation contract of
// steady_state_alloc_test even though module bodies are now coroutines.
#pragma once

#include <coroutine>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <span>
#include <utility>

#include "common/status.hpp"
#include "dataflow/fifo.hpp"

namespace condor::dataflow {

class FrameArena;
struct FireContext;

/// Which FIFO endpoint a suspended firing is waiting on.
enum class StreamOp : std::uint8_t { kRead, kWrite };

/// Driver-side state for one module firing, published to the coroutine
/// machinery through `active_fire_context()`. The driver owns the instance;
/// the StreamBlock awaiter fills the blocked_* fields at every suspension.
struct FireContext {
  Stream* blocked_stream = nullptr;      ///< stream the firing waits on
  StreamOp blocked_op = StreamOp::kRead; ///< endpoint it waits for
  std::coroutine_handle<> resume_point;  ///< innermost suspension to resume
  void* user = nullptr;                  ///< scheduler's per-module record

  /// Cooperative hook: called (on the firing's thread) when the body would
  /// block. Returns true to keep the suspension (the scheduler re-fires via
  /// a FIFO wakeup) or false to cancel it and resume immediately (the
  /// stream turned ready while registering). nullptr selects the blocking
  /// driver: the suspension always stands and control returns from resume().
  bool (*on_block)(FireContext&) noexcept = nullptr;

  /// Called exactly once, from the final-suspend point of the *root* firing,
  /// with the firing's result. nullptr for drivers that poll done() instead.
  void (*on_done)(FireContext&, Status&&) = nullptr;
};

/// The FireContext the current thread is executing under. Drivers set this
/// around every resume (coroutine TLS must follow the firing across worker
/// threads); it is nullptr outside module execution.
inline FireContext*& active_fire_context() noexcept {
  thread_local FireContext* ctx = nullptr;
  return ctx;
}

/// Exact-size freelist for coroutine frames. One arena per module: frames of
/// a module's (finitely many) helper coroutines are returned here on
/// destruction and recycled on the next firing, so steady-state runs do not
/// touch the heap. Both lists are intrusive — the links live inside the
/// blocks themselves — so allocate/release never call operator new, which is
/// what keeps frame recycling invisible to the allocation probe in
/// steady_state_alloc_test. Not thread-safe — a module fires on one thread
/// at a time, which is exactly the serialization the schedulers guarantee.
class FrameArena {
 public:
  /// Prefix stored in front of every block so deallocation needs neither
  /// thread-local state nor a size hint, and so the free/all lists need no
  /// side storage. 32 bytes keeps the payload aligned for
  /// __STDCPP_DEFAULT_NEW_ALIGNMENT__.
  struct Header {
    FrameArena* arena;  ///< owning arena, nullptr for plain-malloc blocks
    std::size_t bytes;  ///< payload size (the freelist match key)
    Header* next_all;   ///< every block of this arena, for the destructor
    Header* next_free;  ///< next released block, valid while on the freelist
  };
  static_assert(sizeof(Header) % alignof(std::max_align_t) == 0,
                "frame payloads must stay max-aligned behind the header");

  FrameArena() = default;
  FrameArena(const FrameArena&) = delete;
  FrameArena& operator=(const FrameArena&) = delete;

  ~FrameArena() {
    Header* block = all_head_;
    while (block != nullptr) {
      Header* next = block->next_all;
      std::free(block);
      block = next;
    }
  }

  /// Returns a payload pointer for `bytes`, recycling a previously released
  /// frame of the same size when available. A module has only a handful of
  /// distinct frame sizes, so the linear freelist scan is short.
  void* allocate(std::size_t bytes) {
    for (Header** link = &free_head_; *link != nullptr;
         link = &(*link)->next_free) {
      if ((*link)->bytes == bytes) {
        Header* header = *link;
        *link = header->next_free;
        return static_cast<char*>(static_cast<void*>(header)) + sizeof(Header);
      }
    }
    void* base = std::malloc(sizeof(Header) + bytes);
    if (base == nullptr) {
      std::abort();  // frame allocation failure is not recoverable
    }
    Header* header = static_cast<Header*>(base);
    header->arena = this;
    header->bytes = bytes;
    header->next_all = all_head_;
    all_head_ = header;
    return static_cast<char*>(base) + sizeof(Header);
  }

  /// Pushes a block onto the freelist for reuse. Never allocates.
  void release(Header* header) {
    header->next_free = free_head_;
    free_head_ = header;
  }

 private:
  Header* free_head_ = nullptr;  ///< released blocks awaiting reuse
  Header* all_head_ = nullptr;   ///< every allocation, freed on destruction
};

/// The arena the current thread allocates coroutine frames from. Drivers set
/// this (to the firing module's arena) together with active_fire_context();
/// frames created with no arena fall back to plain malloc.
inline FrameArena*& active_frame_arena() noexcept {
  thread_local FrameArena* arena = nullptr;
  return arena;
}

/// A module firing (or nested helper firing): an eagerly-created, lazily-
/// started coroutine producing a Status. Root firings are resumed by a
/// driver; nested firings are co_awaited by their parent and chain back via
/// symmetric transfer. Move-only owner of the coroutine frame.
class Fire {
 public:
  struct promise_type;
  using Handle = std::coroutine_handle<promise_type>;

  Fire() = default;
  explicit Fire(Handle handle) : handle_(handle) {}
  Fire(Fire&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Fire& operator=(Fire&& other) noexcept {
    if (this != &other) {
      reset();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  ~Fire() { reset(); }

  /// Destroys the frame (must be suspended: initial, a stream block, or
  /// final). Root firings are reset by their driver before the run returns
  /// so frames never outlive the module's arena.
  void reset() {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }

  [[nodiscard]] bool valid() const noexcept { return static_cast<bool>(handle_); }
  [[nodiscard]] bool done() const noexcept { return handle_.done(); }
  [[nodiscard]] std::coroutine_handle<> handle() const noexcept { return handle_; }
  [[nodiscard]] Status& status() noexcept { return handle_.promise().status; }

  struct promise_type {
    Status status;
    std::coroutine_handle<> continuation;  ///< parent firing, null for roots
    FireContext* origin = active_fire_context();

    Fire get_return_object() { return Fire(Handle::from_promise(*this)); }
    std::suspend_always initial_suspend() noexcept { return {}; }

    /// Final suspend: resume the parent (nested firing) or report completion
    /// to the driver (root). Runs with the frame already suspended, so a
    /// scheduler woken by on_done may legally destroy the frame.
    struct FinalAwaiter {
      [[nodiscard]] bool await_ready() const noexcept { return false; }
      std::coroutine_handle<> await_suspend(Handle handle) const noexcept {
        promise_type& promise = handle.promise();
        if (promise.continuation) {
          return promise.continuation;
        }
        if (promise.origin != nullptr && promise.origin->on_done != nullptr) {
          promise.origin->on_done(*promise.origin, std::move(promise.status));
        }
        return std::noop_coroutine();
      }
      void await_resume() const noexcept {}
    };
    FinalAwaiter final_suspend() noexcept { return {}; }

    void return_value(Status value) noexcept { status = std::move(value); }
    void unhandled_exception() noexcept {
      status = internal_error("unhandled exception in module firing");
    }

    /// Frames come from the firing module's arena (set by the driver before
    /// the coroutine is created) and are recycled there on destruction.
    static void* operator new(std::size_t bytes) {
      FrameArena* arena = active_frame_arena();
      if (arena != nullptr) {
        return arena->allocate(bytes);
      }
      void* base = std::malloc(sizeof(FrameArena::Header) + bytes);
      if (base == nullptr) {
        std::abort();
      }
      auto* header = static_cast<FrameArena::Header*>(base);
      header->arena = nullptr;
      header->bytes = bytes;
      return static_cast<char*>(base) + sizeof(FrameArena::Header);
    }
    static void operator delete(void* payload) noexcept {
      auto* header = reinterpret_cast<FrameArena::Header*>(
          static_cast<char*>(payload) - sizeof(FrameArena::Header));
      if (header->arena != nullptr) {
        header->arena->release(header);
      } else {
        std::free(header);
      }
    }
  };

  /// Awaiting a nested firing: chain the parent as continuation and enter
  /// the child by symmetric transfer; the child's final suspend returns
  /// straight to the parent with the child's Status.
  [[nodiscard]] auto operator co_await() && noexcept {
    struct Awaiter {
      Handle child;
      [[nodiscard]] bool await_ready() const noexcept { return false; }
      std::coroutine_handle<> await_suspend(
          std::coroutine_handle<> parent) const noexcept {
        child.promise().continuation = parent;
        return child;
      }
      [[nodiscard]] Status await_resume() const noexcept {
        return std::move(child.promise().status);
      }
    };
    return Awaiter{handle_};
  }

 private:
  Handle handle_;
};

/// Awaiter for "this firing would block on `stream`": records the blocked
/// stream/op and the innermost resume point in the active FireContext, then
/// defers to the driver. In blocking mode (on_block == nullptr) the
/// suspension always stands — control returns from the driver's resume(),
/// which parks on the stream. In cooperative mode on_block registers the
/// wakeup and may cancel the suspension if the stream turned ready first.
struct StreamBlock {
  Stream* stream;
  StreamOp op;

  [[nodiscard]] bool await_ready() const noexcept { return false; }
  [[nodiscard]] bool await_suspend(std::coroutine_handle<> handle) const noexcept {
    FireContext& context = *active_fire_context();
    context.blocked_stream = stream;
    context.blocked_op = op;
    context.resume_point = handle;
    if (context.on_block == nullptr) {
      return true;
    }
    return context.on_block(context);
  }
  void await_resume() const noexcept {}
};

}  // namespace condor::dataflow

// Statement macros for stream access inside Fire coroutine bodies. The hot
// path is a plain non-blocking burst — no coroutine frame, no virtual call;
// only the would-block edge suspends. Each macro mirrors the blocking API's
// semantics exactly (including the close-while-writing hard error and the
// drain-then-EOS read contract), which is what keeps the cooperative and
// threaded executions bit-identical.

/// Reads exactly out.size() elements from `stream` into span `out`;
/// co_returns `on_eos` if the stream closes before the span fills.
#define CONDOR_CO_READ_EXACT(stream, out, on_eos)                             \
  do {                                                                        \
    std::span<float> condor_read_span_ = (out);                               \
    while (!condor_read_span_.empty()) {                                      \
      const ::condor::dataflow::TryTransfer condor_read_r_ =                  \
          (stream).try_read_burst(condor_read_span_);                         \
      condor_read_span_ = condor_read_span_.subspan(condor_read_r_.count);    \
      if (condor_read_span_.empty()) {                                        \
        break;                                                                \
      }                                                                       \
      if (condor_read_r_.closed) {                                            \
        co_return (on_eos);                                                   \
      }                                                                       \
      co_await ::condor::dataflow::StreamBlock{                               \
          &(stream), ::condor::dataflow::StreamOp::kRead};                    \
    }                                                                         \
  } while (false)

/// Reads one element into float lvalue `value`; co_returns `on_eos` at EOS.
#define CONDOR_CO_READ_ONE(stream, value, on_eos) \
  CONDOR_CO_READ_EXACT(stream, std::span<float>(&(value), 1), on_eos)

/// Reads one element into `value` and sets bool lvalue `got` — false means
/// the stream ended cleanly (no error).
#define CONDOR_CO_READ_ONE_OR_EOS(stream, value, got)                         \
  do {                                                                        \
    (got) = false;                                                            \
    for (;;) {                                                                \
      const ::condor::dataflow::TryTransfer condor_readeos_r_ =               \
          (stream).try_read_burst(std::span<float>(&(value), 1));             \
      if (condor_readeos_r_.count == 1) {                                     \
        (got) = true;                                                         \
        break;                                                                \
      }                                                                       \
      if (condor_readeos_r_.closed) {                                         \
        break;                                                                \
      }                                                                       \
      co_await ::condor::dataflow::StreamBlock{                               \
          &(stream), ::condor::dataflow::StreamOp::kRead};                    \
    }                                                                         \
  } while (false)

/// Writes the whole span `items` to `stream` in order; co_returns
/// `on_closed` if the stream is (or becomes) closed first.
#define CONDOR_CO_WRITE_BURST(stream, items, on_closed)                       \
  do {                                                                        \
    std::span<const float> condor_write_span_ = (items);                      \
    for (;;) {                                                                \
      const ::condor::dataflow::TryTransfer condor_write_r_ =                 \
          (stream).try_write_burst(condor_write_span_);                       \
      if (condor_write_r_.closed) {                                           \
        co_return (on_closed);                                                \
      }                                                                       \
      condor_write_span_ = condor_write_span_.subspan(condor_write_r_.count); \
      if (condor_write_span_.empty()) {                                       \
        break;                                                                \
      }                                                                       \
      co_await ::condor::dataflow::StreamBlock{                               \
          &(stream), ::condor::dataflow::StreamOp::kWrite};                   \
    }                                                                         \
  } while (false)

/// Writes one element (any float expression); co_returns `on_closed` if the
/// stream is closed.
#define CONDOR_CO_WRITE_ONE(stream, value, on_closed)                         \
  do {                                                                        \
    const float condor_write_one_v_ = (value);                                \
    CONDOR_CO_WRITE_BURST(                                                    \
        stream, std::span<const float>(&condor_write_one_v_, 1), on_closed);  \
  } while (false)

/// co_return-propagating analog of CONDOR_RETURN_IF_ERROR for Status
/// expressions inside Fire bodies (typically `co_await nested_firing(...)`).
#define CONDOR_CO_RETURN_IF_ERROR(expr)                                       \
  do {                                                                        \
    ::condor::Status condor_co_status_ = (expr);                              \
    if (!condor_co_status_.is_ok()) {                                         \
      co_return std::move(condor_co_status_);                                 \
    }                                                                         \
  } while (false)

// Stencil filter module — one access point of the sliding window.
//
// Paper §3.2: "Within a pipeline, each filter represents an access to the
// input feature map (a point of the sliding window) and extracts the
// elements from the input stream that belong to its data domain, sending
// them to the PE. It also sends each element read to the subsequent filter
// writing to the FIFO in between them."
//
// The data domain of access (ky, kx) for a given layer pass is the set of
// inequalities, evaluated per element coordinate (y, x):
//
//     y >= ky                 x >= kx
//     (y - ky) mod s == 0     (x - kx) mod s == 0
//     (y - ky) / s < out_h    (x - kx) / s < out_w
//
// i.e. the element is the (ky, kx) window entry of some output point. The
// matching elements leave toward the PE in output raster order, which is
// exactly the order the PE consumes them.
//
// The software implementation streams one input map per FIFO call: the
// whole map is burst-read from upstream into a private member buffer, the
// domain-matching elements (decided by a per-pass precomputed column
// pattern + the row inequality) are gathered and burst to the PE port, and
// the full map is burst onward to the next filter. The element order on
// every stream is identical to the element-at-a-time schedule — only the
// transfer granularity changes. Because each filter owns a private copy of
// the map, the chain forwards BEFORE writing its port: the map reaches
// every filter regardless of which tap the PE drains first, which keeps
// the pipeline deadlock-free at any FIFO capacity (see fire()).
//
// Conditionals for fused layers (paper: "a set of conditionals within the
// filters then ensures that the pipeline works properly ... according to
// the currently active layer"): when the active pass's window is smaller
// than this filter's access offset, the filter goes passive — it forwards
// the stream but contributes no window elements.
#pragma once

#include <vector>

#include "dataflow/fifo.hpp"
#include "dataflow/module.hpp"
#include "dataflow/program.hpp"

namespace condor::dataflow {

class FilterModule final : public Module {
 public:
  /// `downstream` is null for the last filter of the chain (its elements
  /// are the oldest live data and simply expire). `to_pe` carries matched
  /// window elements. `program` defines the deterministic schedule (the
  /// batch arrives per run). With inter-layer parallelism the memory
  /// subsystem is replicated per concurrently-read map: this chain is
  /// `lane` of `lane_count`, and sees the input channels c with
  /// c % lane_count == lane.
  FilterModule(std::string name, hw::WindowAccess access, const PeProgram& program,
               std::size_t lane, std::size_t lane_count, Stream& upstream,
               Stream* downstream, Stream& to_pe)
      : Module(std::move(name)),
        access_(access),
        program_(program),
        lane_(lane),
        lane_count_(lane_count),
        upstream_(upstream),
        downstream_(downstream),
        to_pe_(to_pe) {}

  Fire fire(const RunContext& ctx) override;

  /// Domain-membership test for one coordinate (exposed for unit tests).
  static bool in_domain(const hw::WindowAccess& access, const LayerPass& pass,
                        std::size_t y, std::size_t x) noexcept;

 private:
  hw::WindowAccess access_;
  const PeProgram& program_;
  std::size_t lane_;
  std::size_t lane_count_;
  Stream& upstream_;
  Stream* downstream_;
  Stream& to_pe_;

  /// Steady-state scratch: persists across images and run_batch calls so
  /// the map loop never allocates after warmup (see common/alloc_probe.hpp).
  std::vector<float> map_;
  std::vector<float> matched_;
  std::vector<std::size_t> match_cols_;
};

/// Source multiplexer feeding a feature PE's filter chains.
//
// Selects the external stream for the first pass and the PE's loopback
// stream for subsequent fused passes, inserts the zero border for padded
// convolutions (border handling happens at the chain entrance so filters
// operate on padded coordinates only), and deals input channel c to chain
// lane c % lanes (the replicated memory subsystems of inter-layer
// parallelism). Each padded map is assembled in a local buffer (border
// zeros + a burst read of the interior) and burst to the lane stream whole.
class SourceMuxModule final : public Module {
 public:
  /// `loopback` may be null when the program has a single pass.
  SourceMuxModule(std::string name, const PeProgram& program, Stream& external,
                  Stream* loopback, std::vector<Stream*> outs)
      : Module(std::move(name)),
        program_(program),
        external_(external),
        loopback_(loopback),
        outs_(std::move(outs)) {}

  Fire fire(const RunContext& ctx) override;

 private:
  const PeProgram& program_;
  Stream& external_;
  Stream* loopback_;
  std::vector<Stream*> outs_;

  /// Steady-state map/interior buffers (persist across images and batches).
  std::vector<float> map_;
  std::vector<float> interior_;
};

}  // namespace condor::dataflow

// Bounded blocking FIFO channel — the communication primitive of the
// accelerator (paper §3.2: "independent elements communicating over FIFOs
// ... using blocking reads and writes").
//
// Semantics match a hardware stream FIFO plus Kahn-process-network
// termination: writes block while full, reads block while empty, and
// close() lets readers drain remaining elements before read() reports
// end-of-stream. Occupancy statistics feed the FIFO-sizing ablation bench.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <string>
#include <vector>

namespace condor::dataflow {

/// Occupancy/throughput counters, sampled under the FIFO lock.
struct FifoStats {
  std::size_t capacity = 0;
  std::size_t max_occupancy = 0;   ///< high-water mark
  std::uint64_t total_writes = 0;
  std::uint64_t write_blocks = 0;  ///< writes that found the FIFO full
  std::uint64_t read_blocks = 0;   ///< reads that found the FIFO empty
};

template <typename T>
class Fifo {
 public:
  explicit Fifo(std::size_t capacity, std::string name = {})
      : capacity_(capacity == 0 ? 1 : capacity),
        name_(std::move(name)),
        ring_(capacity_) {}

  Fifo(const Fifo&) = delete;
  Fifo& operator=(const Fifo&) = delete;

  /// Blocking write; must not be called after close().
  void write(T value) {
    std::unique_lock<std::mutex> lock(mutex_);
    if (size_ == capacity_) {
      ++stats_.write_blocks;
      not_full_.wait(lock, [this] { return size_ < capacity_; });
    }
    ring_[(head_ + size_) % capacity_] = std::move(value);
    ++size_;
    ++stats_.total_writes;
    if (size_ > stats_.max_occupancy) {
      stats_.max_occupancy = size_;
    }
    lock.unlock();
    not_empty_.notify_one();
  }

  /// Blocking read. Returns false when the FIFO is closed and drained.
  bool read(T& out) {
    std::unique_lock<std::mutex> lock(mutex_);
    if (size_ == 0 && !closed_) {
      ++stats_.read_blocks;
    }
    not_empty_.wait(lock, [this] { return size_ > 0 || closed_; });
    if (size_ == 0) {
      return false;  // closed and drained
    }
    out = std::move(ring_[head_]);
    head_ = (head_ + 1) % capacity_;
    --size_;
    lock.unlock();
    not_full_.notify_one();
    return true;
  }

  /// Producer signals end-of-stream; readers drain then see EOS.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    not_empty_.notify_all();
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  [[nodiscard]] FifoStats stats() const {
    std::lock_guard<std::mutex> lock(mutex_);
    FifoStats out = stats_;
    out.capacity = capacity_;
    return out;
  }

 private:
  const std::size_t capacity_;
  const std::string name_;
  mutable std::mutex mutex_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::vector<T> ring_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
  bool closed_ = false;
  FifoStats stats_;
};

/// All accelerator streams carry single-precision floats.
using Stream = Fifo<float>;

}  // namespace condor::dataflow

// Bounded blocking FIFO channel — the communication primitive of the
// accelerator (paper §3.2: "independent elements communicating over FIFOs
// ... using blocking reads and writes").
//
// Semantics match a hardware stream FIFO plus Kahn-process-network
// termination: writes block while full, reads block while empty, and
// close() lets readers drain remaining elements before read() reports
// end-of-stream. Occupancy statistics feed the FIFO-sizing ablation bench.
//
// Implementation: a cache-line-padded single-producer/single-consumer ring
// buffer. The hot path is lock-free — monotonic head/tail counters with
// acquire/release ordering, peer-position caching so the common case touches
// only the producer's (or consumer's) own cache line. A blocked side first
// spins (skipped on single-core hosts, where the peer cannot run anyway),
// then yields, then parks on a condition variable. Parking is guarded by
// waiter counters with seq_cst fences on both sides of the Dekker-style
// handshake, plus a timed re-check as a liveness backstop.
//
// Exactly one producer thread and one consumer thread may use a Fifo at a
// time — which is precisely the dataflow graph's wiring invariant (every
// stream connects one upstream module to one downstream module).
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <new>
#include <span>
#include <string>
#include <thread>
#include <vector>

// ThreadSanitizer does not model atomic_thread_fence: the fence-based
// park/wake handshake would both warn (-Wtsan) and report false races.
// Under TSan the handshake degrades to unconditional mutex-synchronized
// notification — semantically a classic monitor, which TSan understands.
#if defined(__SANITIZE_THREAD__)
#define CONDOR_FIFO_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define CONDOR_FIFO_TSAN 1
#endif
#endif
#ifndef CONDOR_FIFO_TSAN
#define CONDOR_FIFO_TSAN 0
#endif

namespace condor::dataflow {

/// Occupancy/throughput counters, maintained as relaxed atomics by the
/// owning side of each field (writes by the producer, read blocks by the
/// consumer) so the lock-free fast path never serializes on a stats lock.
struct FifoStats {
  std::size_t capacity = 0;
  std::size_t max_occupancy = 0;   ///< high-water mark
  std::uint64_t total_writes = 0;
  std::uint64_t write_blocks = 0;  ///< writes that found the FIFO full
  std::uint64_t read_blocks = 0;   ///< reads that found the FIFO empty
};

namespace detail {

// Fixed rather than std::hardware_destructive_interference_size: the
// library value varies with tuning flags (and GCC warns on every use);
// 64 bytes is correct for every target this project builds on.
inline constexpr std::size_t kCacheLine = 64;

inline void spin_pause() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#endif
}

/// Spinning only helps when the peer can make progress on another core.
inline unsigned spin_iterations() noexcept {
  static const unsigned iters =
      std::thread::hardware_concurrency() > 1 ? 128U : 0U;
  return iters;
}

inline constexpr unsigned kYieldIterations = 64;

/// Park timeout: a pure liveness backstop — wakeups are delivered via the
/// waiter-counter handshake; the timed re-check bounds the cost of any
/// missed edge to one re-evaluation instead of a hang.
inline constexpr std::chrono::milliseconds kParkRecheck{5};

}  // namespace detail

template <typename T>
class Fifo {
 public:
  explicit Fifo(std::size_t capacity, std::string name = {})
      : capacity_(capacity == 0 ? 1 : capacity),
        name_(std::move(name)),
        ring_(capacity_) {}

  Fifo(const Fifo&) = delete;
  Fifo& operator=(const Fifo&) = delete;

  /// Blocking write of one element. Returns false — without writing — if
  /// the FIFO is (or becomes, while blocked) closed: writing after close()
  /// is a hard error the caller must surface, not undefined behavior.
  bool write(T value) {
    std::uint64_t head = head_.load(std::memory_order_relaxed);
    if (!await_space(head)) {
      return false;
    }
    ring_[prod_idx_] = std::move(value);
    advance(prod_idx_);
    publish_write(head, 1);
    return true;
  }

  /// Blocking burst write: moves the whole span into the stream, in order,
  /// publishing each chunk as space frees up (identical blocking semantics
  /// to element-wise writes — progress whenever one slot is free).
  /// Returns false if the FIFO is closed before every element is written.
  bool write_burst(std::span<const T> items) {
    while (!items.empty()) {
      std::uint64_t head = head_.load(std::memory_order_relaxed);
      if (!await_space(head)) {
        return false;
      }
      const std::size_t space = capacity_ - static_cast<std::size_t>(head - cached_tail_);
      const std::size_t chunk = std::min(space, items.size());
      copy_in(items.first(chunk));
      publish_write(head, chunk);
      items = items.subspan(chunk);
    }
    return true;
  }

  /// Blocking read. Returns false when the FIFO is closed and drained.
  bool read(T& out) {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    if (!await_data(tail)) {
      return false;
    }
    out = std::move(ring_[cons_idx_]);
    advance(cons_idx_);
    publish_read(tail, 1);
    return true;
  }

  /// Blocking burst read: fills `out` in stream order, consuming each chunk
  /// as it arrives. Returns the number of elements read — short only when
  /// the FIFO was closed and drained before `out` was full.
  std::size_t read_burst(std::span<T> out) {
    std::size_t total = 0;
    while (total < out.size()) {
      const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
      if (!await_data(tail)) {
        return total;
      }
      const std::size_t available = static_cast<std::size_t>(cached_head_ - tail);
      const std::size_t chunk = std::min(available, out.size() - total);
      copy_out(out.subspan(total, chunk));
      publish_read(tail, chunk);
      total += chunk;
    }
    return total;
  }

  /// Signals end-of-stream; readers drain remaining elements then see EOS.
  /// Also wakes any writer blocked on a full FIFO (error-path teardown):
  /// its pending write fails with `false` instead of hanging forever.
  void close() {
    {
      std::lock_guard<std::mutex> lock(park_mutex_);
      closed_.store(true, std::memory_order_release);
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  /// Re-arms a drained FIFO for another run over the same topology (the
  /// executor reuses its compiled graph across batches). Must only be
  /// called while no reader or writer is active. Clears EOS and statistics.
  void reopen() {
    std::lock_guard<std::mutex> lock(park_mutex_);
    closed_.store(false, std::memory_order_relaxed);
    head_.store(0, std::memory_order_relaxed);
    tail_.store(0, std::memory_order_relaxed);
    prod_idx_ = 0;
    cons_idx_ = 0;
    cached_tail_ = 0;
    cached_head_ = 0;
    total_writes_.store(0, std::memory_order_relaxed);
    write_blocks_.store(0, std::memory_order_relaxed);
    read_blocks_.store(0, std::memory_order_relaxed);
    max_occupancy_.store(0, std::memory_order_relaxed);
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] bool closed() const noexcept {
    return closed_.load(std::memory_order_acquire);
  }

  [[nodiscard]] FifoStats stats() const {
    FifoStats out;
    out.capacity = capacity_;
    out.max_occupancy = max_occupancy_.load(std::memory_order_relaxed);
    out.total_writes = total_writes_.load(std::memory_order_relaxed);
    out.write_blocks = write_blocks_.load(std::memory_order_relaxed);
    out.read_blocks = read_blocks_.load(std::memory_order_relaxed);
    return out;
  }

 private:
  void advance(std::size_t& idx) noexcept {
    if (++idx == capacity_) {
      idx = 0;
    }
  }

  /// Ensures at least one free slot (refreshing the cached tail), blocking
  /// if necessary. Returns false when the FIFO is closed.
  bool await_space(std::uint64_t head) {
    if (closed_.load(std::memory_order_acquire)) {
      return false;
    }
    if (head - cached_tail_ < capacity_) {
      return true;
    }
    cached_tail_ = tail_.load(std::memory_order_acquire);
    if (head - cached_tail_ < capacity_) {
      return true;
    }
    write_blocks_.fetch_add(1, std::memory_order_relaxed);
    const auto have_space = [&]() noexcept {
      cached_tail_ = tail_.load(std::memory_order_acquire);
      return head - cached_tail_ < capacity_;
    };
    if (!block_until(have_space, parked_writers_, not_full_,
                     /*fail_when_closed=*/true)) {
      return false;  // closed while blocked: the write is a hard error
    }
    return true;
  }

  /// Ensures at least one readable element (refreshing the cached head),
  /// blocking if necessary. Returns false when closed and drained.
  bool await_data(std::uint64_t tail) {
    if (cached_head_ != tail) {
      return true;
    }
    cached_head_ = head_.load(std::memory_order_acquire);
    if (cached_head_ != tail) {
      return true;
    }
    if (closed_.load(std::memory_order_acquire)) {
      // Re-check after the closed flag: a close racing the last writes must
      // not drop elements published before it.
      cached_head_ = head_.load(std::memory_order_acquire);
      return cached_head_ != tail;
    }
    read_blocks_.fetch_add(1, std::memory_order_relaxed);
    const auto have_data = [&]() noexcept {
      cached_head_ = head_.load(std::memory_order_acquire);
      return cached_head_ != tail;
    };
    block_until(have_data, parked_readers_, not_empty_,
                /*fail_when_closed=*/false);
    return cached_head_ != tail;  // false: closed and drained
  }

  /// Spin → yield → park until `ready()` holds or the FIFO is closed.
  /// On close, a writer (`fail_when_closed`) always fails — even if space
  /// freed up concurrently — while a reader drains whatever is published.
  template <typename Ready>
  bool block_until(const Ready& ready, std::atomic<int>& parked,
                   std::condition_variable& cv, bool fail_when_closed) {
    const auto on_close = [&] { return fail_when_closed ? false : ready(); };
    for (unsigned i = detail::spin_iterations(); i != 0; --i) {
      if (closed_.load(std::memory_order_acquire)) {
        return on_close();
      }
      if (ready()) {
        return true;
      }
      detail::spin_pause();
    }
    for (unsigned i = 0; i < detail::kYieldIterations; ++i) {
      if (closed_.load(std::memory_order_acquire)) {
        return on_close();
      }
      if (ready()) {
        return true;
      }
      std::this_thread::yield();
    }
    std::unique_lock<std::mutex> lock(park_mutex_);
    parked.fetch_add(1, std::memory_order_seq_cst);
#if !CONDOR_FIFO_TSAN
    std::atomic_thread_fence(std::memory_order_seq_cst);
#endif
    bool ok = false;
    for (;;) {
      if (closed_.load(std::memory_order_acquire)) {
        ok = on_close();
        break;
      }
      if (ready()) {
        ok = true;
        break;
      }
      cv.wait_for(lock, detail::kParkRecheck);
    }
    parked.fetch_sub(1, std::memory_order_relaxed);
    return ok;
  }

  /// Publishes `count` freshly written elements and wakes a parked reader
  /// if there may be one. A reader can only park after observing a truly
  /// empty FIFO (its parking fence orders the waiter counter before the
  /// predicate re-load), so the wake handshake — seq_cst fence pairing with
  /// the parking side's fence, then the waiter-counter check — only needs
  /// to run on the empty -> non-empty transition; steady-state writes skip
  /// it. The timed park re-check bounds any theoretically missed edge.
  void publish_write(std::uint64_t head, std::size_t count) {
    const std::uint64_t tail_now = tail_.load(std::memory_order_relaxed);
    head_.store(head + count, std::memory_order_release);
    total_writes_.fetch_add(count, std::memory_order_relaxed);
    const std::uint64_t occupancy = head + count - tail_now;
    if (occupancy > max_occupancy_.load(std::memory_order_relaxed)) {
      max_occupancy_.store(occupancy, std::memory_order_relaxed);
    }
    if (head == tail_now) {
      maybe_wake(parked_readers_, not_empty_);
    }
  }

  /// Publishes `count` freshly consumed slots; the full -> non-full
  /// transition mirrors the write side's wake handshake.
  void publish_read(std::uint64_t tail, std::size_t count) {
    const std::uint64_t head_now = head_.load(std::memory_order_relaxed);
    tail_.store(tail + count, std::memory_order_release);
    if (head_now - tail == capacity_) {
      maybe_wake(parked_writers_, not_full_);
    }
  }

  /// The waker half of the park handshake: the seq_cst fence pairs with the
  /// parking side's fence, so either this load observes the waiter counter
  /// or the waiter's predicate re-check observes the published position.
  void maybe_wake(std::atomic<int>& parked, std::condition_variable& cv) {
#if CONDOR_FIFO_TSAN
    (void)parked;
    wake(cv);
#else
    std::atomic_thread_fence(std::memory_order_seq_cst);
    if (parked.load(std::memory_order_relaxed) != 0) {
      wake(cv);
    }
#endif
  }

  void wake(std::condition_variable& cv) {
    // Taking the park mutex closes the window between a waiter's failed
    // predicate check and its wait(); notify outside the critical section.
    { std::lock_guard<std::mutex> lock(park_mutex_); }
    cv.notify_all();
  }

  /// Copies `items` into the ring starting at prod_idx_ (≤ 2 segments).
  void copy_in(std::span<const T> items) {
    const std::size_t first = std::min(items.size(), capacity_ - prod_idx_);
    std::copy_n(items.data(), first, ring_.data() + prod_idx_);
    std::copy_n(items.data() + first, items.size() - first, ring_.data());
    prod_idx_ += items.size();
    if (prod_idx_ >= capacity_) {
      prod_idx_ -= capacity_;
    }
  }

  /// Copies out of the ring starting at cons_idx_ (≤ 2 segments).
  void copy_out(std::span<T> out) {
    const std::size_t first = std::min(out.size(), capacity_ - cons_idx_);
    std::copy_n(ring_.data() + cons_idx_, first, out.data());
    std::copy_n(ring_.data(), out.size() - first, out.data() + first);
    cons_idx_ += out.size();
    if (cons_idx_ >= capacity_) {
      cons_idx_ -= capacity_;
    }
  }

  const std::size_t capacity_;
  const std::string name_;
  std::vector<T> ring_;

  // Producer-owned line: position, cached peer position, producer stats.
  alignas(detail::kCacheLine) std::atomic<std::uint64_t> head_{0};
  std::size_t prod_idx_ = 0;
  std::uint64_t cached_tail_ = 0;
  std::atomic<std::uint64_t> total_writes_{0};
  std::atomic<std::uint64_t> write_blocks_{0};
  std::atomic<std::uint64_t> max_occupancy_{0};

  // Consumer-owned line.
  alignas(detail::kCacheLine) std::atomic<std::uint64_t> tail_{0};
  std::size_t cons_idx_ = 0;
  std::uint64_t cached_head_ = 0;
  std::atomic<std::uint64_t> read_blocks_{0};

  // Shared cold state: EOS flag and the park/wake machinery.
  alignas(detail::kCacheLine) std::atomic<bool> closed_{false};
  std::atomic<int> parked_writers_{0};
  std::atomic<int> parked_readers_{0};
  std::mutex park_mutex_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
};

/// All accelerator streams carry single-precision floats.
using Stream = Fifo<float>;

}  // namespace condor::dataflow

// Bounded blocking FIFO channel — the communication primitive of the
// accelerator (paper §3.2: "independent elements communicating over FIFOs
// ... using blocking reads and writes").
//
// Semantics match a hardware stream FIFO plus Kahn-process-network
// termination: writes block while full, reads block while empty, and
// close() lets readers drain remaining elements before read() reports
// end-of-stream. Occupancy statistics feed the FIFO-sizing ablation bench.
//
// Implementation: a cache-line-padded single-producer/single-consumer ring
// buffer. The hot path is lock-free — monotonic head/tail counters with
// acquire/release ordering, peer-position caching so the common case touches
// only the producer's (or consumer's) own cache line. A blocked side first
// spins (skipped on single-core hosts, where the peer cannot run anyway),
// then yields, then parks on a condition variable. Parking is guarded by
// waiter counters with seq_cst fences on both sides of the Dekker-style
// handshake, plus a timed re-check as a liveness backstop.
//
// Exactly one producer thread and one consumer thread may use a Fifo at a
// time — which is precisely the dataflow graph's wiring invariant (every
// stream connects one upstream module to one downstream module).
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <new>
#include <span>
#include <string>
#include <thread>
#include <vector>

// ThreadSanitizer does not model atomic_thread_fence: the fence-based
// park/wake handshake would both warn (-Wtsan) and report false races.
// Under TSan the handshake degrades to unconditional mutex-synchronized
// notification — semantically a classic monitor, which TSan understands.
#if defined(__SANITIZE_THREAD__)
#define CONDOR_FIFO_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define CONDOR_FIFO_TSAN 1
#endif
#endif
#ifndef CONDOR_FIFO_TSAN
#define CONDOR_FIFO_TSAN 0
#endif

namespace condor::dataflow {

/// Occupancy/throughput counters, maintained as relaxed atomics by the
/// owning side of each field (writes by the producer, read blocks by the
/// consumer) so the lock-free fast path never serializes on a stats lock.
struct FifoStats {
  std::size_t capacity = 0;
  std::size_t max_occupancy = 0;   ///< high-water mark
  std::uint64_t total_writes = 0;
  std::uint64_t write_blocks = 0;  ///< writes that found the FIFO full
  std::uint64_t read_blocks = 0;   ///< reads that found the FIFO empty
  /// Transitions of an endpoint into a blocked state (parked thread or
  /// suspended cooperative firing) — the scheduler-hotspot signal surfaced
  /// through `condor validate` and the bench context.
  std::uint64_t blocked_reads = 0;
  std::uint64_t blocked_writes = 0;
};

/// Readiness-notification hook for the cooperative scheduler: one endpoint
/// (reader or writer) of a Fifo registers a hook, and the peer invokes
/// wake() from every publish and on close (unconditionally — see
/// publish_write for why edge-filtering the wake is unsound). wake() must
/// be cheap, non-blocking, and tolerant of spurious calls — the scheduler
/// re-checks actual readiness after every wake.
class FifoWakeHook {
 public:
  virtual ~FifoWakeHook() = default;
  virtual void wake() noexcept = 0;
};

/// Result of a non-blocking burst: how many elements transferred, and
/// whether the transfer stopped because the FIFO is closed (for reads:
/// closed *and drained* — a definitive EOS).
struct TryTransfer {
  std::size_t count = 0;
  bool closed = false;
};

namespace detail {

// Fixed rather than std::hardware_destructive_interference_size: the
// library value varies with tuning flags (and GCC warns on every use);
// 64 bytes is correct for every target this project builds on.
inline constexpr std::size_t kCacheLine = 64;

inline void spin_pause() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#endif
}

/// Spinning only helps when the peer can make progress on another core.
inline unsigned spin_iterations() noexcept {
  static const unsigned iters =
      std::thread::hardware_concurrency() > 1 ? 128U : 0U;
  return iters;
}

inline constexpr unsigned kYieldIterations = 64;

/// Park timeout: a pure liveness backstop — wakeups are delivered via the
/// waiter-counter handshake; the timed re-check bounds the cost of any
/// missed edge to one re-evaluation instead of a hang.
inline constexpr std::chrono::milliseconds kParkRecheck{5};

}  // namespace detail

template <typename T>
class Fifo {
 public:
  explicit Fifo(std::size_t capacity, std::string name = {})
      : capacity_(capacity == 0 ? 1 : capacity),
        name_(std::move(name)),
        ring_(capacity_) {}

  Fifo(const Fifo&) = delete;
  Fifo& operator=(const Fifo&) = delete;

  /// Blocking write of one element. Returns false — without writing — if
  /// the FIFO is (or becomes, while blocked) closed: writing after close()
  /// is a hard error the caller must surface, not undefined behavior.
  bool write(T value) {
    std::uint64_t head = head_.load(std::memory_order_relaxed);
    if (!await_space(head)) {
      return false;
    }
    ring_[prod_idx_] = std::move(value);
    advance(prod_idx_);
    publish_write(head, 1);
    return true;
  }

  /// Blocking burst write: moves the whole span into the stream, in order,
  /// publishing each chunk as space frees up (identical blocking semantics
  /// to element-wise writes — progress whenever one slot is free).
  /// Returns false if the FIFO is closed before every element is written.
  bool write_burst(std::span<const T> items) {
    while (!items.empty()) {
      std::uint64_t head = head_.load(std::memory_order_relaxed);
      if (!await_space(head)) {
        return false;
      }
      const std::size_t space = capacity_ - static_cast<std::size_t>(head - cached_tail_);
      const std::size_t chunk = std::min(space, items.size());
      copy_in(items.first(chunk));
      publish_write(head, chunk);
      items = items.subspan(chunk);
    }
    return true;
  }

  /// Blocking read. Returns false when the FIFO is closed and drained.
  bool read(T& out) {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    if (!await_data(tail)) {
      return false;
    }
    out = std::move(ring_[cons_idx_]);
    advance(cons_idx_);
    publish_read(tail, 1);
    return true;
  }

  /// Non-blocking burst read: consumes whatever is immediately available
  /// into the front of `out` and returns without parking. `closed` is true
  /// only when the FIFO is closed *and* drained (EOS): a close racing the
  /// final writes re-checks the head so published elements are never
  /// dropped.
  TryTransfer try_read_burst(std::span<T> out) {
    std::size_t total = 0;
    while (total < out.size()) {
      const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
      if (cached_head_ == tail) {
        cached_head_ = head_.load(std::memory_order_acquire);
      }
      if (cached_head_ == tail) {
        if (!closed_.load(std::memory_order_acquire)) {
          return {total, false};
        }
        cached_head_ = head_.load(std::memory_order_acquire);
        if (cached_head_ == tail) {
          return {total, true};
        }
      }
      const std::size_t available = static_cast<std::size_t>(cached_head_ - tail);
      const std::size_t chunk = std::min(available, out.size() - total);
      copy_out(out.subspan(total, chunk));
      publish_read(tail, chunk);
      total += chunk;
    }
    return {total, false};
  }

  /// Non-blocking burst write: moves as much of `items` as currently fits
  /// and returns without parking. `closed` is true when the FIFO is closed
  /// (writing after close is a hard error the caller must surface).
  TryTransfer try_write_burst(std::span<const T> items) {
    if (closed_.load(std::memory_order_acquire)) {
      return {0, true};
    }
    std::size_t total = 0;
    while (total < items.size()) {
      const std::uint64_t head = head_.load(std::memory_order_relaxed);
      if (head - cached_tail_ >= capacity_) {
        cached_tail_ = tail_.load(std::memory_order_acquire);
        if (head - cached_tail_ >= capacity_) {
          return {total, false};
        }
      }
      const std::size_t space =
          capacity_ - static_cast<std::size_t>(head - cached_tail_);
      const std::size_t chunk = std::min(space, items.size() - total);
      copy_in(items.subspan(total, chunk));
      publish_write(head, chunk);
      total += chunk;
    }
    return {total, false};
  }

  /// Blocking burst read: fills `out` in stream order, consuming each chunk
  /// as it arrives. Returns the number of elements read — short only when
  /// the FIFO was closed and drained before `out` was full.
  std::size_t read_burst(std::span<T> out) {
    std::size_t total = 0;
    while (total < out.size()) {
      const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
      if (!await_data(tail)) {
        return total;
      }
      const std::size_t available = static_cast<std::size_t>(cached_head_ - tail);
      const std::size_t chunk = std::min(available, out.size() - total);
      copy_out(out.subspan(total, chunk));
      publish_read(tail, chunk);
      total += chunk;
    }
    return total;
  }

  /// Signals end-of-stream; readers drain remaining elements then see EOS.
  /// Also wakes any writer blocked on a full FIFO (error-path teardown):
  /// its pending write fails with `false` instead of hanging forever.
  /// Registered wakeup hooks fire on both endpoints — a cooperatively
  /// suspended firing re-checks readiness and sees the close.
  void close() {
    FifoWakeHook* reader_hook = nullptr;
    FifoWakeHook* writer_hook = nullptr;
    {
      std::lock_guard<std::mutex> lock(park_mutex_);
      closed_.store(true, std::memory_order_release);
#if CONDOR_FIFO_TSAN
      reader_hook = reader_hook_.load(std::memory_order_relaxed);
      writer_hook = writer_hook_.load(std::memory_order_relaxed);
#endif
    }
    not_empty_.notify_all();
    not_full_.notify_all();
#if !CONDOR_FIFO_TSAN
    // Pair with the suspending side's waiter_sync() fence: either this load
    // observes a hook registered before the suspension committed, or the
    // suspender's readiness re-check observes closed_.
    std::atomic_thread_fence(std::memory_order_seq_cst);
    reader_hook = reader_hook_.load(std::memory_order_relaxed);
    writer_hook = writer_hook_.load(std::memory_order_relaxed);
#endif
    if (reader_hook != nullptr) {
      reader_hook->wake();
    }
    if (writer_hook != nullptr) {
      writer_hook->wake();
    }
  }

  /// Re-arms a drained FIFO for another run over the same topology (the
  /// executor reuses its compiled graph across batches). Must only be
  /// called while no reader or writer is active. Clears EOS and statistics.
  void reopen() {
    std::lock_guard<std::mutex> lock(park_mutex_);
    closed_.store(false, std::memory_order_relaxed);
    head_.store(0, std::memory_order_relaxed);
    tail_.store(0, std::memory_order_relaxed);
    prod_idx_ = 0;
    cons_idx_ = 0;
    cached_tail_ = 0;
    cached_head_ = 0;
    total_writes_.store(0, std::memory_order_relaxed);
    write_blocks_.store(0, std::memory_order_relaxed);
    read_blocks_.store(0, std::memory_order_relaxed);
    blocked_reads_.store(0, std::memory_order_relaxed);
    blocked_writes_.store(0, std::memory_order_relaxed);
    max_occupancy_.store(0, std::memory_order_relaxed);
    reader_hook_.store(nullptr, std::memory_order_relaxed);
    writer_hook_.store(nullptr, std::memory_order_relaxed);
  }

  /// True when a read would make progress: data available, or closed (the
  /// read then reports EOS instead of blocking). Safe from any thread.
  [[nodiscard]] bool read_ready() const noexcept {
    if (head_.load(std::memory_order_acquire) !=
        tail_.load(std::memory_order_acquire)) {
      return true;
    }
    return closed_.load(std::memory_order_acquire);
  }

  /// True when a write would make progress: free space, or closed (the
  /// write then fails fast instead of blocking). Safe from any thread.
  [[nodiscard]] bool write_ready() const noexcept {
    if (closed_.load(std::memory_order_acquire)) {
      return true;
    }
    return head_.load(std::memory_order_acquire) -
               tail_.load(std::memory_order_acquire) <
           capacity_;
  }

  /// Registers the cooperative wakeup hook for the consumer endpoint
  /// (nullptr clears). Hooks are sticky: the scheduler registers once per
  /// suspension and tolerates spurious wakes, so the peer may invoke a
  /// stale hook harmlessly.
  void set_reader_hook(FifoWakeHook* hook) noexcept {
#if CONDOR_FIFO_TSAN
    std::lock_guard<std::mutex> lock(park_mutex_);
#endif
    reader_hook_.store(hook, std::memory_order_seq_cst);
  }

  /// Registers the cooperative wakeup hook for the producer endpoint.
  void set_writer_hook(FifoWakeHook* hook) noexcept {
#if CONDOR_FIFO_TSAN
    std::lock_guard<std::mutex> lock(park_mutex_);
#endif
    writer_hook_.store(hook, std::memory_order_seq_cst);
  }

  /// The suspender half of the cooperative Dekker handshake: after
  /// registering its hook and publishing its blocked state, the scheduler
  /// calls this then re-checks readiness. Pairs with the fence (or mutex
  /// section, under TSan) in wake_reader()/wake_writer()/close(), so either
  /// the peer sees the hook or the re-check sees the peer's transition.
  void waiter_sync() noexcept {
#if CONDOR_FIFO_TSAN
    std::lock_guard<std::mutex> lock(park_mutex_);
#else
    std::atomic_thread_fence(std::memory_order_seq_cst);
#endif
  }

  /// Statistics entry points for the cooperative scheduler, which blocks in
  /// its own suspension machinery rather than in await_data/await_space.
  void record_read_block() noexcept {
    read_blocks_.fetch_add(1, std::memory_order_relaxed);
    blocked_reads_.fetch_add(1, std::memory_order_relaxed);
  }
  void record_write_block() noexcept {
    write_blocks_.fetch_add(1, std::memory_order_relaxed);
    blocked_writes_.fetch_add(1, std::memory_order_relaxed);
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] bool closed() const noexcept {
    return closed_.load(std::memory_order_acquire);
  }

  [[nodiscard]] FifoStats stats() const {
    FifoStats out;
    out.capacity = capacity_;
    out.max_occupancy = max_occupancy_.load(std::memory_order_relaxed);
    out.total_writes = total_writes_.load(std::memory_order_relaxed);
    out.write_blocks = write_blocks_.load(std::memory_order_relaxed);
    out.read_blocks = read_blocks_.load(std::memory_order_relaxed);
    out.blocked_reads = blocked_reads_.load(std::memory_order_relaxed);
    out.blocked_writes = blocked_writes_.load(std::memory_order_relaxed);
    return out;
  }

 private:
  void advance(std::size_t& idx) noexcept {
    if (++idx == capacity_) {
      idx = 0;
    }
  }

  /// Ensures at least one free slot (refreshing the cached tail), blocking
  /// if necessary. Returns false when the FIFO is closed.
  bool await_space(std::uint64_t head) {
    if (closed_.load(std::memory_order_acquire)) {
      return false;
    }
    if (head - cached_tail_ < capacity_) {
      return true;
    }
    cached_tail_ = tail_.load(std::memory_order_acquire);
    if (head - cached_tail_ < capacity_) {
      return true;
    }
    write_blocks_.fetch_add(1, std::memory_order_relaxed);
    blocked_writes_.fetch_add(1, std::memory_order_relaxed);
    const auto have_space = [&]() noexcept {
      cached_tail_ = tail_.load(std::memory_order_acquire);
      return head - cached_tail_ < capacity_;
    };
    if (!block_until(have_space, parked_writers_, not_full_,
                     /*fail_when_closed=*/true)) {
      return false;  // closed while blocked: the write is a hard error
    }
    return true;
  }

  /// Ensures at least one readable element (refreshing the cached head),
  /// blocking if necessary. Returns false when closed and drained.
  bool await_data(std::uint64_t tail) {
    if (cached_head_ != tail) {
      return true;
    }
    cached_head_ = head_.load(std::memory_order_acquire);
    if (cached_head_ != tail) {
      return true;
    }
    if (closed_.load(std::memory_order_acquire)) {
      // Re-check after the closed flag: a close racing the last writes must
      // not drop elements published before it.
      cached_head_ = head_.load(std::memory_order_acquire);
      return cached_head_ != tail;
    }
    read_blocks_.fetch_add(1, std::memory_order_relaxed);
    blocked_reads_.fetch_add(1, std::memory_order_relaxed);
    const auto have_data = [&]() noexcept {
      cached_head_ = head_.load(std::memory_order_acquire);
      return cached_head_ != tail;
    };
    block_until(have_data, parked_readers_, not_empty_,
                /*fail_when_closed=*/false);
    return cached_head_ != tail;  // false: closed and drained
  }

  /// Spin → yield → park until `ready()` holds or the FIFO is closed.
  /// On close, a writer (`fail_when_closed`) always fails — even if space
  /// freed up concurrently — while a reader drains whatever is published.
  template <typename Ready>
  bool block_until(const Ready& ready, std::atomic<int>& parked,
                   std::condition_variable& cv, bool fail_when_closed) {
    const auto on_close = [&] { return fail_when_closed ? false : ready(); };
    for (unsigned i = detail::spin_iterations(); i != 0; --i) {
      if (closed_.load(std::memory_order_acquire)) {
        return on_close();
      }
      if (ready()) {
        return true;
      }
      detail::spin_pause();
    }
    for (unsigned i = 0; i < detail::kYieldIterations; ++i) {
      if (closed_.load(std::memory_order_acquire)) {
        return on_close();
      }
      if (ready()) {
        return true;
      }
      std::this_thread::yield();
    }
    std::unique_lock<std::mutex> lock(park_mutex_);
    parked.fetch_add(1, std::memory_order_seq_cst);
#if !CONDOR_FIFO_TSAN
    std::atomic_thread_fence(std::memory_order_seq_cst);
#endif
    bool ok = false;
    for (;;) {
      if (closed_.load(std::memory_order_acquire)) {
        ok = on_close();
        break;
      }
      if (ready()) {
        ok = true;
        break;
      }
      cv.wait_for(lock, detail::kParkRecheck);
    }
    parked.fetch_sub(1, std::memory_order_relaxed);
    return ok;
  }

  /// Publishes `count` freshly written elements and runs the reader-side
  /// wake handshake. The wake is unconditional: any pre-filter here (an
  /// empty -> non-empty edge test from a stale tail snapshot, or a relaxed
  /// peek at the hook slot) executes its loads before the head store has
  /// drained the store buffer, while a concurrently suspending reader's
  /// hook/state stores are buffered the same way during its readiness
  /// re-check — the classic two-sided Dekker miss. Parked threads absorbed
  /// that window via the timed park re-check; cooperative hooks have no
  /// backstop, so the handshake must start with wake_reader()'s seq_cst
  /// fence every time. The waiter-counter and hook checks after the fence
  /// keep the steady-state cost to the fence itself.
  void publish_write(std::uint64_t head, std::size_t count) {
    const std::uint64_t tail_now = tail_.load(std::memory_order_relaxed);
    head_.store(head + count, std::memory_order_release);
    total_writes_.fetch_add(count, std::memory_order_relaxed);
    const std::uint64_t occupancy = head + count - tail_now;
    if (occupancy > max_occupancy_.load(std::memory_order_relaxed)) {
      max_occupancy_.store(occupancy, std::memory_order_relaxed);
    }
    wake_reader();
  }

  /// Publishes `count` freshly consumed slots; unconditional wake for the
  /// same reason as publish_write (a full -> non-full or hook pre-filter
  /// would race a concurrently suspending writer).
  void publish_read(std::uint64_t tail, std::size_t count) {
    tail_.store(tail + count, std::memory_order_release);
    wake_writer();
  }

  /// Wakes the consumer endpoint on the empty -> non-empty transition: a
  /// parked thread via the CV handshake, and/or a cooperatively suspended
  /// firing via its registered hook. Both paths use the same Dekker
  /// structure — publish position, synchronize, then check for a waiter —
  /// so either this side delivers the wake or the suspending side's
  /// readiness re-check sees the published position.
  void wake_reader() {
#if CONDOR_FIFO_TSAN
    FifoWakeHook* hook = nullptr;
    {
      std::lock_guard<std::mutex> lock(park_mutex_);
      hook = reader_hook_.load(std::memory_order_relaxed);
    }
    not_empty_.notify_all();
    if (hook != nullptr) {
      hook->wake();
    }
#else
    std::atomic_thread_fence(std::memory_order_seq_cst);
    if (parked_readers_.load(std::memory_order_relaxed) != 0) {
      wake(not_empty_);
    }
    if (FifoWakeHook* hook = reader_hook_.load(std::memory_order_relaxed);
        hook != nullptr) {
      hook->wake();
    }
#endif
  }

  /// Wakes the producer endpoint on the full -> non-full transition.
  void wake_writer() {
#if CONDOR_FIFO_TSAN
    FifoWakeHook* hook = nullptr;
    {
      std::lock_guard<std::mutex> lock(park_mutex_);
      hook = writer_hook_.load(std::memory_order_relaxed);
    }
    not_full_.notify_all();
    if (hook != nullptr) {
      hook->wake();
    }
#else
    std::atomic_thread_fence(std::memory_order_seq_cst);
    if (parked_writers_.load(std::memory_order_relaxed) != 0) {
      wake(not_full_);
    }
    if (FifoWakeHook* hook = writer_hook_.load(std::memory_order_relaxed);
        hook != nullptr) {
      hook->wake();
    }
#endif
  }

  void wake(std::condition_variable& cv) {
    // Taking the park mutex closes the window between a waiter's failed
    // predicate check and its wait(); notify outside the critical section.
    { std::lock_guard<std::mutex> lock(park_mutex_); }
    cv.notify_all();
  }

  /// Copies `items` into the ring starting at prod_idx_ (≤ 2 segments).
  void copy_in(std::span<const T> items) {
    const std::size_t first = std::min(items.size(), capacity_ - prod_idx_);
    std::copy_n(items.data(), first, ring_.data() + prod_idx_);
    std::copy_n(items.data() + first, items.size() - first, ring_.data());
    prod_idx_ += items.size();
    if (prod_idx_ >= capacity_) {
      prod_idx_ -= capacity_;
    }
  }

  /// Copies out of the ring starting at cons_idx_ (≤ 2 segments).
  void copy_out(std::span<T> out) {
    const std::size_t first = std::min(out.size(), capacity_ - cons_idx_);
    std::copy_n(ring_.data() + cons_idx_, first, out.data());
    std::copy_n(ring_.data(), out.size() - first, out.data() + first);
    cons_idx_ += out.size();
    if (cons_idx_ >= capacity_) {
      cons_idx_ -= capacity_;
    }
  }

  const std::size_t capacity_;
  const std::string name_;
  std::vector<T> ring_;

  // Producer-owned line: position, cached peer position, producer stats.
  alignas(detail::kCacheLine) std::atomic<std::uint64_t> head_{0};
  std::size_t prod_idx_ = 0;
  std::uint64_t cached_tail_ = 0;
  std::atomic<std::uint64_t> total_writes_{0};
  std::atomic<std::uint64_t> write_blocks_{0};
  std::atomic<std::uint64_t> blocked_writes_{0};
  std::atomic<std::uint64_t> max_occupancy_{0};

  // Consumer-owned line.
  alignas(detail::kCacheLine) std::atomic<std::uint64_t> tail_{0};
  std::size_t cons_idx_ = 0;
  std::uint64_t cached_head_ = 0;
  std::atomic<std::uint64_t> read_blocks_{0};
  std::atomic<std::uint64_t> blocked_reads_{0};

  // Shared cold state: EOS flag, the park/wake machinery, and the
  // cooperative scheduler's readiness hooks.
  alignas(detail::kCacheLine) std::atomic<bool> closed_{false};
  std::atomic<int> parked_writers_{0};
  std::atomic<int> parked_readers_{0};
  std::atomic<FifoWakeHook*> reader_hook_{nullptr};
  std::atomic<FifoWakeHook*> writer_hook_{nullptr};
  std::mutex park_mutex_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
};

/// All accelerator streams carry single-precision floats.
using Stream = Fifo<float>;

}  // namespace condor::dataflow

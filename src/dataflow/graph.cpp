#include "dataflow/graph.hpp"

#include <thread>

#include "common/logging.hpp"

namespace condor::dataflow {

Stream& Graph::make_stream(std::size_t capacity, std::string name) {
  streams_.push_back(std::make_unique<Stream>(capacity, std::move(name)));
  return *streams_.back();
}

Status Graph::run() {
  std::vector<Status> statuses(modules_.size());
  {
    std::vector<std::thread> threads;
    threads.reserve(modules_.size());
    for (std::size_t i = 0; i < modules_.size(); ++i) {
      threads.emplace_back([this, i, &statuses] {
        statuses[i] = modules_[i]->run();
        if (!statuses[i].is_ok()) {
          CONDOR_LOG_ERROR("dataflow")
              << "module '" << modules_[i]->name()
              << "' failed: " << statuses[i].to_string();
        }
      });
    }
    for (std::thread& thread : threads) {
      thread.join();
    }
  }
  for (const Status& status : statuses) {
    if (!status.is_ok()) {
      return status;
    }
  }
  return Status::ok();
}

std::vector<FifoStats> Graph::stream_stats() const {
  std::vector<FifoStats> out;
  out.reserve(streams_.size());
  for (const auto& stream : streams_) {
    out.push_back(stream->stats());
  }
  return out;
}

}  // namespace condor::dataflow

#include "dataflow/graph.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <coroutine>
#include <mutex>
#include <utility>

#include "common/alloc_probe.hpp"
#include "common/logging.hpp"
#include "dataflow/fire.hpp"

namespace condor::dataflow {

Stream& Graph::make_stream(std::size_t capacity, std::string name) {
  streams_.push_back(std::make_unique<Stream>(capacity, std::move(name)));
  return *streams_.back();
}

namespace {

// Module scheduling states for the cooperative run. The state machine
// guarantees each record sits in the ready ring at most once: only the
// kBlocked -> kReady CAS (in wake()) enqueues, and a record can reach
// kBlocked again only after being dequeued and resumed.
constexpr int kReady = 0;    ///< in the ready ring, awaiting a worker
constexpr int kRunning = 1;  ///< a worker is resuming the firing
constexpr int kBlocked = 2;  ///< suspended on a stream, hook registered
constexpr int kDone = 3;     ///< firing completed, status recorded

struct CoopRun;

/// Per-module scheduler record. Doubles as the FIFO wakeup hook for every
/// stream the module blocks on: one sticky hook per (module, endpoint)
/// suffices because wakes are permitted to be spurious — a resumed module
/// whose stream is still not ready simply re-blocks.
struct ModuleRec final : FifoWakeHook {
  Module* module = nullptr;
  Fire task;
  FireContext fire_ctx;
  std::coroutine_handle<> resume_handle;
  std::atomic<int> state{kReady};
  Status status;
  CoopRun* run = nullptr;

  void wake() noexcept override;
};

/// One cooperative graph execution. Held by shared_ptr so pool worker tasks
/// that start after the run already finished (the scheduler cannot cancel
/// queued submissions) observe `finished` on a still-valid object and exit
/// without touching the Graph.
struct CoopRun {
  explicit CoopRun(std::size_t module_count)
      : recs(module_count), ring(module_count) {}

  std::vector<ModuleRec> recs;
  Graph* graph = nullptr;

  std::mutex mutex;
  std::condition_variable cv;
  // Fixed-capacity ring of ready records (each enqueued at most once, so
  // module_count slots suffice). Pre-sized: push_ready runs inside FIFO
  // publish calls, i.e. inside module bodies whose steady state must not
  // allocate.
  std::vector<ModuleRec*> ring;
  std::size_t ring_head = 0;
  std::size_t ring_count = 0;
  std::size_t inflight = 0;  ///< resumes currently executing
  std::size_t done = 0;
  bool finished = false;
  bool torn_down = false;
  Status teardown_cause;

  void push_ready(ModuleRec* rec) {
    {
      std::lock_guard<std::mutex> lock(mutex);
      ring[(ring_head + ring_count) % ring.size()] = rec;
      ++ring_count;
    }
    cv.notify_one();
  }

  /// Resumes `rec` at its innermost suspension point and returns when the
  /// firing either completed or genuinely suspended on a stream. The TLS
  /// fire context/arena follow the firing to whichever worker runs it.
  void resume(ModuleRec* rec) {
    FireContext* prev_ctx = std::exchange(active_fire_context(), &rec->fire_ctx);
    FrameArena* prev_arena =
        std::exchange(active_frame_arena(), &rec->module->frame_arena());
    ++rec->module->counters().fires;
    const std::coroutine_handle<> handle = rec->resume_handle;
    {
      // The zero-allocation steady-state contract covers executed module
      // code; the probe scope is thread-local RAII and so wraps each resume
      // rather than living inside the (thread-migrating) coroutine.
      const common::AllocProbe::Scope probe_scope;
      handle.resume();
    }
    active_frame_arena() = prev_arena;
    active_fire_context() = prev_ctx;
    // Past this point `rec` must not be touched: if the firing suspended,
    // a wakeup may already have handed it to another worker.
  }

  /// Worker loop: drain ready records; detect completion and wedges. Runs
  /// on the calling thread and on worker-1 pool tasks.
  void work() {
    std::unique_lock<std::mutex> lock(mutex);
    for (;;) {
      if (finished) {
        return;
      }
      if (ring_count > 0) {
        ModuleRec* rec = ring[ring_head];
        ring_head = (ring_head + 1) % ring.size();
        --ring_count;
        ++inflight;
        rec->state.store(kRunning, std::memory_order_relaxed);
        lock.unlock();
        resume(rec);
        lock.lock();
        --inflight;
        continue;
      }
      if (done == recs.size() && inflight == 0) {
        // inflight == 0 matters even with every firing done: a worker that
        // tore down a wedge counts as inflight while it walks the graph's
        // streams outside the lock, and the caller destroys the graph as
        // soon as work() returns.
        finished = true;
        cv.notify_all();
        return;
      }
      if (done < recs.size() && inflight == 0) {
        // Nothing ready, nothing running, not everyone done: every wake
        // originates inside some resume, so no future wake can arrive —
        // the graph is wedged. Tear it down by closing all streams; the
        // woken firings fail fast and drain.
        stall(lock);
        continue;
      }
      cv.wait(lock);
    }
  }

  /// Wedge teardown, called with `lock` held.
  void stall(std::unique_lock<std::mutex>& lock) {
    if (torn_down) {
      // Post-teardown every stream is closed, so no firing can suspend
      // again and all must drain; a second stall is unreachable. Fail
      // defensively rather than spinning.
      if (teardown_cause.is_ok()) {
        teardown_cause = internal_error("dataflow wedge after teardown");
      }
      finished = true;
      cv.notify_all();
      return;
    }
    torn_down = true;
    // The true cause is the lowest-index module error that existed at
    // teardown time; errors recorded later are close-induced cascades.
    for (const ModuleRec& rec : recs) {
      if (rec.state.load(std::memory_order_relaxed) == kDone &&
          !rec.status.is_ok()) {
        teardown_cause = rec.status;
        break;
      }
    }
    if (teardown_cause.is_ok()) {
      teardown_cause = internal_error(
          "dataflow wedge: every module blocked with no pending wake");
    }
    // Count as inflight while outside the lock: the drained firings bump
    // `done` to the total on other workers, and the run must not finish
    // (freeing the graph under us) until the close loop is over.
    ++inflight;
    lock.unlock();
    // Closing invokes wakeup hooks, which re-acquire the run mutex.
    for (const auto& stream : graph->streams()) {
      stream->close();
    }
    lock.lock();
    --inflight;
  }
};

void ModuleRec::wake() noexcept {
  // Hooks are sticky, so steady-state publishes wake a module that is
  // happily running; the load keeps those on a read-only fast path and
  // reserves the CAS for genuinely suspended records.
  if (state.load(std::memory_order_seq_cst) != kBlocked) {
    return;
  }
  int expected = kBlocked;
  if (state.compare_exchange_strong(expected, kReady,
                                    std::memory_order_seq_cst)) {
    run->push_ready(this);
  }
}

/// Cooperative on_block: register the wakeup hook on the blocked stream,
/// publish the blocked state, then re-check readiness (Dekker handshake
/// against the peer's transition wake). The suspension always stands; when
/// the re-check finds the stream already ready, the record wakes itself
/// through the ready ring rather than cancelling the suspension inline.
bool coop_on_block(FireContext& fc) noexcept {
  auto* rec = static_cast<ModuleRec*>(fc.user);
  rec->resume_handle = fc.resume_point;
  // Counters must be bumped before the kBlocked store: the instant the
  // store lands, a waker may hand the record to another worker, and nothing
  // after that may touch non-atomic per-module state.
  ++rec->module->counters().blocked;
  Stream& stream = *fc.blocked_stream;
  const bool is_read = fc.blocked_op == StreamOp::kRead;
  if (is_read) {
    stream.record_read_block();
    stream.set_reader_hook(rec);
  } else {
    stream.record_write_block();
    stream.set_writer_hook(rec);
  }
  rec->state.store(kBlocked, std::memory_order_seq_cst);
  stream.waiter_sync();
  if (is_read ? stream.read_ready() : stream.write_ready()) {
    // The stream turned ready before the registration committed, so no
    // transition wake is coming: self-deliver one through the ready ring,
    // exactly as a waker would. The suspension must stand (never resume
    // inline): a bare kBlocked -> kRunning CAS here cannot tell WHICH
    // suspension it cancels — a stale-hook spurious wake landing in this
    // window can have re-fired the record on another worker and re-blocked
    // it at a later suspension point (ABA), and an inline resume would then
    // re-enter the frame at the stale resume label. Routing through the
    // ring instead makes the worst case a spurious re-fire, which the
    // design tolerates, and the popping worker always reads the freshest
    // resume_handle.
    rec->wake();
  }
  return true;
}

/// Root-firing completion: records the status, marks the module done, and
/// bumps the run's done count. Runs at the firing's final-suspend point
/// (frame already suspended), so the run owner may destroy the frame as
/// soon as it observes the count.
void coop_on_done(FireContext& fc, Status&& status) {
  auto* rec = static_cast<ModuleRec*>(fc.user);
  rec->status = std::move(status);
  if (!rec->status.is_ok()) {
    CONDOR_LOG_ERROR("dataflow")
        << "module '" << rec->module->name()
        << "' failed: " << rec->status.to_string();
  }
  rec->state.store(kDone, std::memory_order_relaxed);
  CoopRun& run = *rec->run;
  {
    std::lock_guard<std::mutex> lock(run.mutex);
    ++run.done;
  }
  // The worker returning from this resume re-evaluates done==total itself;
  // idle peers only need a nudge when this was the last firing.
  run.cv.notify_all();
}

}  // namespace

Status Graph::run(const RunContext& ctx, ThreadPool* pool) {
  return run(ctx, pool, GraphRunOptions{});
}

Status Graph::run(const RunContext& ctx, ThreadPool* pool,
                  const GraphRunOptions& options) {
  if (modules_.empty()) {
    return Status::ok();
  }
  // Effective worker count: caller + (workers-1) pool tasks, never more
  // than one per module, sequential on the caller when it comes out as 1.
  std::size_t workers = options.workers != 0 ? options.workers : thread_budget();
  workers = std::clamp<std::size_t>(workers, 1, modules_.size());
  if (pool == nullptr) {
    workers = 1;
  }
  last_run_workers_ = workers;
  return run_cooperative(ctx, pool, workers);
}

Status Graph::run_cooperative(const RunContext& ctx, ThreadPool* pool,
                              std::size_t workers) {
  auto run = std::make_shared<CoopRun>(modules_.size());
  run->graph = this;
  for (std::size_t i = 0; i < modules_.size(); ++i) {
    ModuleRec& rec = run->recs[i];
    rec.module = modules_[i].get();
    rec.run = run.get();
    rec.module->counters() = Module::FireCounters{};
    rec.fire_ctx.user = &rec;
    rec.fire_ctx.on_block = &coop_on_block;
    rec.fire_ctx.on_done = &coop_on_done;
    // Create the root firing with this record's context/arena active so the
    // promise captures the right origin and the frame lands in the module's
    // arena.
    FireContext* prev_ctx = std::exchange(active_fire_context(), &rec.fire_ctx);
    FrameArena* prev_arena =
        std::exchange(active_frame_arena(), &rec.module->frame_arena());
    rec.task = rec.module->fire(ctx);
    active_frame_arena() = prev_arena;
    active_fire_context() = prev_ctx;
    rec.resume_handle = rec.task.handle();
    // Seed the ready ring directly: no workers are running yet.
    run->ring[i] = &rec;
  }
  run->ring_count = modules_.size();

  for (std::size_t w = 1; w < workers; ++w) {
    pool->submit([run] { run->work(); });
  }
  run->work();

  // The run is finished: clear the sticky hooks (streams outlive this run)
  // and destroy the firings before their modules' arenas see further use.
  for (const auto& stream : streams_) {
    stream->set_reader_hook(nullptr);
    stream->set_writer_hook(nullptr);
  }
  Status result = Status::ok();
  if (run->torn_down) {
    result = run->teardown_cause;
  } else {
    for (const ModuleRec& rec : run->recs) {
      if (!rec.status.is_ok()) {
        result = rec.status;
        break;
      }
    }
  }
  for (ModuleRec& rec : run->recs) {
    rec.task.reset();
  }
  return result;
}

void Graph::reopen_streams() {
  for (const auto& stream : streams_) {
    stream->reopen();
  }
}

std::vector<FifoStats> Graph::stream_stats() const {
  std::vector<FifoStats> out;
  out.reserve(streams_.size());
  for (const auto& stream : streams_) {
    out.push_back(stream->stats());
  }
  return out;
}

std::vector<ModuleRunStats> Graph::module_stats() const {
  std::vector<ModuleRunStats> out;
  out.reserve(modules_.size());
  for (const auto& module : modules_) {
    const Module::FireCounters& counters = module->counters();
    out.push_back(ModuleRunStats{module->name(), counters.fires, counters.blocked});
  }
  return out;
}

}  // namespace condor::dataflow

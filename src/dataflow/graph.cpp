#include "dataflow/graph.hpp"

#include <thread>

#include "common/logging.hpp"

namespace condor::dataflow {

Stream& Graph::make_stream(std::size_t capacity, std::string name) {
  streams_.push_back(std::make_unique<Stream>(capacity, std::move(name)));
  return *streams_.back();
}

Status Graph::run(const RunContext& ctx, ThreadPool* pool) {
  std::vector<Status> statuses(modules_.size());
  const auto body = [this, &ctx, &statuses](std::size_t i) {
    statuses[i] = modules_[i]->run(ctx);
    if (!statuses[i].is_ok()) {
      CONDOR_LOG_ERROR("dataflow")
          << "module '" << modules_[i]->name()
          << "' failed: " << statuses[i].to_string();
    }
  };
  if (pool != nullptr) {
    // Every module must be schedulable at once: a smaller pool would wedge
    // with runnable-but-unscheduled producers behind blocked consumers.
    pool->ensure_workers(modules_.size());
    for (std::size_t i = 0; i < modules_.size(); ++i) {
      pool->submit([&body, i] { body(i); });
    }
    pool->wait_idle();
  } else {
    std::vector<std::thread> threads;
    threads.reserve(modules_.size());
    for (std::size_t i = 0; i < modules_.size(); ++i) {
      threads.emplace_back([&body, i] { body(i); });
    }
    for (std::thread& thread : threads) {
      thread.join();
    }
  }
  for (const Status& status : statuses) {
    if (!status.is_ok()) {
      return status;
    }
  }
  return Status::ok();
}

void Graph::reopen_streams() {
  for (const auto& stream : streams_) {
    stream->reopen();
  }
}

std::vector<FifoStats> Graph::stream_stats() const {
  std::vector<FifoStats> out;
  out.reserve(streams_.size());
  for (const auto& stream : streams_) {
    out.push_back(stream->stats());
  }
  return out;
}

}  // namespace condor::dataflow

#include "dataflow/executor.hpp"

#include <algorithm>
#include <cstdlib>
#include <string_view>

#include "common/strings.hpp"
#include "dataflow/filter.hpp"
#include "dataflow/join.hpp"
#include "dataflow/pe.hpp"
#include "nn/kernels_simd.hpp"
#include "nn/reference.hpp"

namespace condor::dataflow {
namespace {

/// Minimum capacity of small glue FIFOs.
constexpr std::size_t kGlueFifoDepth = 8;

/// Capacity of the datamover weight streams. Weight slices transfer as
/// bursts, so the depth only bounds the chunk size of each handoff.
constexpr std::size_t kWeightFifoDepth = 1024;

/// Minimum capacity of the inter-PE blob streams. The hardware plan sizes
/// these edges for FPGA BRAM; the software KPN widens shallow ones so blob
/// bursts move in few chunks and each module firing moves more data per
/// suspension (KPN results are capacity-independent, and enlarging a
/// channel can never introduce a deadlock).
constexpr std::size_t kMinEdgeDepth = 1024;

/// Ceiling on the image-pipelining edge widening below (elements). Inter-PE
/// edges grow to hold one full blob plus a word so image k can finish
/// draining downstream while image k+1 already streams in behind it; blobs
/// beyond this cap fall back to the plan/kMinEdgeDepth sizing (correctness
/// is capacity-independent, only the overlap depth shrinks).
constexpr std::size_t kMaxPipelineEdgeDepth = std::size_t{1} << 18;

/// Environment default of the fused-pass locality fast path: enabled unless
/// CONDOR_FUSED_LOCAL is "0"/"off"/"false" (the legacy loopback round trip,
/// kept for A/B benchmarking — results are bit-identical either way).
bool fused_locality_env_default() noexcept {
  const char* env = std::getenv("CONDOR_FUSED_LOCAL");
  if (env == nullptr) {
    return true;
  }
  const std::string_view value(env);
  return !(value == "0" || value == "off" || value == "false");
}

}  // namespace

Result<AcceleratorExecutor> AcceleratorExecutor::create(hw::AcceleratorPlan plan,
                                                        nn::WeightStore weights) {
  return create(std::make_shared<const hw::AcceleratorPlan>(std::move(plan)),
                std::make_shared<const nn::WeightStore>(std::move(weights)));
}

Result<AcceleratorExecutor> AcceleratorExecutor::create(
    std::shared_ptr<const hw::AcceleratorPlan> plan,
    std::shared_ptr<const nn::WeightStore> weights) {
  if (plan == nullptr || weights == nullptr) {
    return invalid_input("executor needs a plan and a weight store");
  }
  CONDOR_RETURN_IF_ERROR(weights->validate_against(plan->source.net));
  return AcceleratorExecutor(std::move(plan), std::move(weights));
}

bool AcceleratorExecutor::fused_locality_enabled() const noexcept {
  return fused_local_override_.value_or(fused_locality_env_default());
}

void AcceleratorExecutor::set_fused_pass_locality(bool enabled) noexcept {
  const bool current = fused_locality_enabled();
  fused_local_override_ = enabled;
  if (design_ != nullptr && current != enabled) {
    // The graph topology changes (loopback streams appear/disappear), so
    // the compiled instance is stale; the next run recompiles.
    design_.reset();
  }
}

Status AcceleratorExecutor::build_design() {
  auto design = std::make_unique<CompiledDesign>();

  // The programs reference the weight store and the plan; both live in the
  // executor and outlive the design. Programs are filled before any module
  // takes a reference, so the vector's final addresses are stable.
  design->programs.reserve(plan_->pes.size());
  const bool fused_local = fused_locality_enabled();
  for (std::size_t p = 0; p < plan_->pes.size(); ++p) {
    CONDOR_ASSIGN_OR_RETURN(PeProgram program,
                            build_pe_program(*plan_, p, *weights_));
    // Fused-pass fast path: multi-pass feature/element-wise PEs keep their
    // intermediate blobs on chip (dataflow/pe.hpp) instead of looping them
    // through mux -> filters -> ports. Classifier PEs already run their
    // passes in-register, and join PEs are single-pass.
    const hw::PeKind kind = plan_->pes[p].kind;
    program.fused_local = fused_local && program.passes.size() > 1 &&
                          (kind == hw::PeKind::kFeature ||
                           kind == hw::PeKind::kElementwise);
    design->programs.push_back(std::move(program));
  }
  const std::vector<PeProgram>& programs = design->programs;
  Graph& graph = design->graph;
  CONDOR_ASSIGN_OR_RETURN(auto shapes, plan_->source.net.infer_shapes());

  // The network input blob size: what datamover-sourced edges carry.
  CONDOR_ASSIGN_OR_RETURN(Shape net_input_shape,
                          plan_->source.net.input_shape());
  const std::size_t input_elements = net_input_shape.element_count();

  // One stream per plan edge — the plan's edge list IS the DAG, so the
  // wiring below needs no linearity assumption. Each edge is sized to
  // buffer one full image blob (when that fits under kMaxPipelineEdgeDepth)
  // so consecutive images genuinely overlap: the producer parks image k's
  // whole output in the channel and moves on to image k+1 without waiting
  // for the consumer to catch up. For residual topologies the same sizing
  // also keeps the skip edge from artificially deadlocking the diamond: a
  // whole image parks on the short edge while the long path computes.
  const auto edge_blob_elements = [&](const hw::StreamEdge& edge) {
    return edge.from_pe == hw::StreamEdge::kDatamover
               ? input_elements
               : programs[edge.from_pe].output_elements();
  };
  std::vector<Stream*> edge_streams;
  edge_streams.reserve(plan_->edges.size());
  for (std::size_t e = 0; e < plan_->edges.size(); ++e) {
    const std::size_t blob_elements = edge_blob_elements(plan_->edges[e]);
    std::size_t depth =
        std::max<std::size_t>(plan_->edges[e].fifo_depth, kMinEdgeDepth);
    if (blob_elements + 1 <= kMaxPipelineEdgeDepth) {
      depth = std::max(depth, blob_elements + 1);
    }
    edge_streams.push_back(
        &graph.make_stream(depth, strings::format("stream_edge_%zu", e)));
  }

  // Fixed datapaths add a per-edge format side-channel: one frac_bits word
  // per image, always written ahead of the blob data (dataflow/pe.hpp). The
  // float32 design is structurally untouched.
  const nn::DataType data_type = plan_->data_type();
  std::vector<Stream*> fmt_streams(plan_->edges.size(), nullptr);
  if (nn::is_fixed_point(data_type)) {
    for (std::size_t e = 0; e < plan_->edges.size(); ++e) {
      fmt_streams[e] = &graph.make_stream(
          kGlueFifoDepth, strings::format("fmt_edge_%zu", e));
    }
  }

  // Resolve each producer's out-edges and each consumer's in-ports from the
  // edge list. A producer with several out-edges gets a BroadcastModule
  // behind a private stream; its consumers then see ordinary edges.
  const std::size_t kNoEdge = static_cast<std::size_t>(-1);
  std::vector<std::vector<std::size_t>> out_edges_of(plan_->pes.size());
  std::vector<std::size_t> datamover_out_edges;
  std::vector<std::vector<std::size_t>> in_edge_of(plan_->pes.size());
  std::size_t sink_edge = kNoEdge;
  for (std::size_t e = 0; e < plan_->edges.size(); ++e) {
    const hw::StreamEdge& edge = plan_->edges[e];
    if (edge.from_pe == hw::StreamEdge::kDatamover) {
      datamover_out_edges.push_back(e);
    } else {
      out_edges_of[edge.from_pe].push_back(e);
    }
    if (edge.to_pe == hw::StreamEdge::kDatamover) {
      if (sink_edge != kNoEdge) {
        return internal_error("plan has more than one output edge");
      }
      sink_edge = e;
    } else {
      auto& ports = in_edge_of[edge.to_pe];
      if (ports.size() <= edge.to_port) {
        ports.resize(edge.to_port + 1, kNoEdge);
      }
      if (ports[edge.to_port] != kNoEdge) {
        return internal_error("plan wires one PE port twice");
      }
      ports[edge.to_port] = e;
    }
  }
  if (sink_edge == kNoEdge) {
    return internal_error("plan has no output edge");
  }

  // Returns the stream a producer writes: the single out-edge directly, or
  // a private stream drained by a BroadcastModule feeding every out-edge.
  const auto make_producer_outs =
      [&](const std::string& name, const std::vector<std::size_t>& edges,
          std::size_t blob_elements, Stream*& out,
          Stream*& fmt_out) -> Status {
    if (edges.empty()) {
      return internal_error("producer '" + name + "' has no out-edge");
    }
    if (edges.size() == 1) {
      out = edge_streams[edges.front()];
      fmt_out = fmt_streams[edges.front()];
      return Status::ok();
    }
    std::size_t depth = kMinEdgeDepth;
    if (blob_elements + 1 <= kMaxPipelineEdgeDepth) {
      depth = std::max(depth, blob_elements + 1);
    }
    out = &graph.make_stream(depth, name + "_fanout");
    fmt_out = nullptr;
    std::vector<Stream*> outs;
    std::vector<Stream*> fmt_outs;
    for (const std::size_t e : edges) {
      outs.push_back(edge_streams[e]);
      if (fmt_streams[e] != nullptr) {
        fmt_outs.push_back(fmt_streams[e]);
      }
    }
    if (nn::is_fixed_point(data_type)) {
      fmt_out = &graph.make_stream(kGlueFifoDepth, name + "_fanout_fmt");
    }
    graph.add_module<BroadcastModule>(name + "_broadcast", blob_elements, *out,
                                      std::move(outs), data_type, fmt_out,
                                      std::move(fmt_outs));
    return Status::ok();
  };

  for (std::size_t p = 0; p < plan_->pes.size(); ++p) {
    const hw::PePlan& pe = plan_->pes[p];
    const PeProgram& program = programs[p];
    const std::vector<std::size_t>& in_ports = in_edge_of[p];
    const std::size_t expected_ports =
        pe.kind == hw::PeKind::kJoin ? 2 : 1;
    if (in_ports.size() != expected_ports ||
        std::find(in_ports.begin(), in_ports.end(), kNoEdge) !=
            in_ports.end()) {
      return internal_error(strings::format(
          "PE '%s' expects %zu input port(s) but the plan wires %zu",
          pe.name.c_str(), expected_ports, in_ports.size()));
    }
    Stream& external_in = *edge_streams[in_ports.front()];
    Stream* fmt_in = fmt_streams[in_ports.front()];
    Stream* pe_out = nullptr;
    Stream* fmt_out = nullptr;
    CONDOR_RETURN_IF_ERROR(make_producer_outs(pe.name, out_edges_of[p],
                                              program.output_elements(),
                                              pe_out, fmt_out));

    // Weight delivery from the datamover: every PE gets a one-time
    // configuration load on the first run after compilation; it latches the
    // packed slices and later images/runs skip the stream entirely
    // (residency — see dataflow/pe.hpp).
    Stream* weight_stream = nullptr;
    if (program.weight_stream_elements() > 0) {
      weight_stream = &graph.make_stream(kWeightFifoDepth, pe.name + "_weights");
      graph.add_module<WeightMoverModule>(pe.name + "_weight_mover", program,
                                          *weight_stream);
      design->weight_streams.push_back(weight_stream);
    }

    // Intra-layer parallelism (paper §3.2): the plan's parallel_out degree
    // becomes that many compute lanes fork-joined on the executor's
    // persistent pool; extra_lane_workers tracks how many workers beyond
    // one-per-module those lanes can occupy concurrently.
    const std::size_t parallel_out = std::max<std::size_t>(pe.parallel_out, 1);
    design->extra_lane_workers += parallel_out - 1;

    if (pe.kind == hw::PeKind::kJoin) {
      // Two-input merge point: no memory subsystem, no weights — the module
      // reads both operand edges directly (ports 0/1 in `inputs` order).
      graph.add_module<JoinModule>(
          pe.name, program, external_in, *edge_streams[in_ports[1]], *pe_out,
          data_type, fmt_in, fmt_streams[in_ports[1]], fmt_out);
      continue;
    }

    if (pe.kind == hw::PeKind::kClassifier) {
      graph.add_module<ClassifierPeModule>(
          pe.name, program, external_in, weight_stream, *pe_out, parallel_out,
          std::max<std::size_t>(pe.parallel_in, 1), runtime_pool(), data_type,
          fmt_in, fmt_out);
      continue;
    }

    // Feature / element-wise PE: source mux + one replicated filter chain
    // per concurrently-read input map (parallel_in, paper §3.2) + PE.
    const hw::MemoryPipelinePlan& memory = *pe.memory;
    const std::size_t window_h = std::max<std::size_t>(memory.window_h, 1);
    const std::size_t window_w = std::max<std::size_t>(memory.window_w, 1);
    const std::size_t lanes = std::max<std::size_t>(pe.parallel_in, 1);
    const std::size_t map_w = std::max<std::size_t>(memory.map_w, 1);

    Stream* loopback = nullptr;
    if (program.passes.size() > 1 && !program.fused_local) {
      loopback = &graph.make_stream(
          std::max<std::size_t>(program.max_loopback_elements(), 1),
          pe.name + "_loopback");
    }
    // Thirty-two rows of skid on the chain entrance and the PE ports. The mux
    // and the filters move whole rows per burst; with the cooperative
    // scheduler every full/empty edge is a suspend/re-fire round-trip, so
    // the skid directly sets how many rows a module processes per firing.
    // Two rows kept threads off each other's park path; thirty-two cuts the
    // suspension count by ~4x at row-scale memory cost (in hardware these
    // are direct wires either way).
    const std::size_t row_buffer_depth =
        std::max<std::size_t>(32 * map_w + 4, kGlueFifoDepth);
    std::vector<Stream*> chain_heads;
    for (std::size_t lane = 0; lane < lanes; ++lane) {
      chain_heads.push_back(&graph.make_stream(
          row_buffer_depth,
          strings::format("%s_chain_in_l%zu", pe.name.c_str(), lane)));
    }
    graph.add_module<SourceMuxModule>(pe.name + "_mux", program, external_in,
                                      loopback, chain_heads);

    // Filter chains in lexicographically inverse access order; each
    // filter's PE-port stream carries the same row-scale skid as the chain
    // entrance, and the inter-filter FIFOs hold at least eight rows so a
    // filter forwards several consumed rows per firing instead of
    // suspending after each one. (The hardware plan's fifo_to_next_depth
    // still wins when it is larger — KPN results are capacity-independent,
    // so the widening is observable only in the software schedule.)
    const std::size_t port_depth = row_buffer_depth;
    std::vector<Stream*> ports(lanes * window_h * window_w, nullptr);
    for (std::size_t lane = 0; lane < lanes; ++lane) {
      Stream* upstream = chain_heads[lane];
      for (std::size_t f = 0; f < memory.filters.size(); ++f) {
        const hw::FilterNode& node = memory.filters[f];
        const bool last = f + 1 == memory.filters.size();
        Stream* downstream = nullptr;
        if (!last) {
          downstream = &graph.make_stream(
              std::max<std::size_t>(node.fifo_to_next_depth, 8 * map_w + 4),
              strings::format("%s_chain_l%zu_%zu", pe.name.c_str(), lane, f));
        }
        Stream& port = graph.make_stream(
            port_depth,
            strings::format("%s_port_l%zu_%zu_%zu", pe.name.c_str(), lane,
                            node.access.ky, node.access.kx));
        ports[lane * window_h * window_w + node.access.ky * window_w +
              node.access.kx] = &port;
        graph.add_module<FilterModule>(
            strings::format("%s_filter_l%zu_%zu_%zu", pe.name.c_str(), lane,
                            node.access.ky, node.access.kx),
            node.access, program, lane, lanes, *upstream, downstream, port);
        upstream = downstream;
      }
    }

    graph.add_module<FeaturePeModule>(
        pe.name, program, window_h, window_w, lanes, std::move(ports),
        weight_stream, loopback, *pe_out, parallel_out, runtime_pool(),
        data_type, fmt_in, fmt_out);
  }

  // Datamover halves. The input half fans out through a BroadcastModule
  // when several PEs read the network input directly.
  Stream* source_out = nullptr;
  Stream* source_fmt = nullptr;
  CONDOR_RETURN_IF_ERROR(make_producer_outs("datamover_in",
                                            datamover_out_edges,
                                            input_elements, source_out,
                                            source_fmt));
  // The output blob shape the sink collects: the sink edge's producer.
  const std::size_t out_pe = plan_->edges[sink_edge].from_pe;
  const std::size_t out_elements = programs[out_pe].output_elements();
  design->output_shape = Shape{out_elements};
  // Recover the true blob shape of the last mapped layer for nicer output.
  const std::size_t last_layer = plan_->pes[out_pe].layer_indices.back();
  if (shapes[last_layer].output.element_count() == out_elements) {
    design->output_shape = shapes[last_layer].output;
  }
  graph.add_module<InputMoverModule>("datamover_in", *source_out, data_type,
                                     source_fmt);
  design->sink = &graph.add_module<OutputMoverModule>(
      "datamover_out", design->output_shape, *edge_streams[sink_edge],
      data_type, fmt_streams[sink_edge]);

  design_ = std::move(design);
  return Status::ok();
}

Result<std::vector<Tensor>> AcceleratorExecutor::run_batch(
    std::span<const Tensor> inputs) {
  if (inputs.empty()) {
    return std::vector<Tensor>{};
  }
  CONDOR_ASSIGN_OR_RETURN(Shape input_shape, plan_->source.net.input_shape());
  for (const Tensor& image : inputs) {
    if (image.shape() != input_shape) {
      return invalid_input(strings::format(
          "input shape %s does not match network input %s",
          image.shape().to_string().c_str(), input_shape.to_string().c_str()));
    }
  }

  // The pool must exist before the design: PE modules capture it for their
  // parallel_out compute lanes.
  if (shared_pool_ == nullptr && pool_ == nullptr) {
    pool_ = std::make_unique<ThreadPool>(1);
  }
  ThreadPool* pool = runtime_pool();
  if (design_ == nullptr) {
    CONDOR_RETURN_IF_ERROR(build_design());
  } else {
    design_->graph.reopen_streams();
  }

  GraphRunOptions options;
  options.workers = scheduler_workers_;

  // Size the pool for the scheduler plus headroom for the intra-layer
  // compute lanes, so forked oc slices actually run concurrently instead of
  // queueing behind module firings. The headroom is a pure throughput lever
  // capped by the host thread budget (CONDOR_THREADS or
  // hardware_concurrency) — parallel_shards' caller participation keeps the
  // lanes correct at any headroom, including zero.
  const std::size_t lane_cap = extra_lane_worker_cap_ > 0
                                   ? extra_lane_worker_cap_
                                   : thread_budget();
  const std::size_t lane_headroom =
      std::min(design_->extra_lane_workers, lane_cap);
  const std::size_t modules = design_->graph.module_count();
  // The scheduler needs W workers of which one is the calling thread; the
  // pool never has to scale with module_count().
  const std::size_t target = options.workers > 0
                                 ? options.workers
                                 : thread_budget();
  const std::size_t coop_workers =
      std::clamp<std::size_t>(target, 1, std::max<std::size_t>(modules, 1));
  pool->ensure_workers(std::max<std::size_t>(
      1, coop_workers - 1 + lane_headroom));

  design_->telemetry.reset();
  RunContext ctx;
  ctx.batch = inputs.size();
  ctx.inputs = inputs;
  ctx.telemetry = &design_->telemetry;
  const Status run_status = design_->graph.run(ctx, pool, options);

  stats_.modules = design_->graph.module_count();
  stats_.streams = design_->graph.stream_count();
  stats_.stream_stats = design_->graph.stream_stats();
  stats_.simd_level = nn::kernels::to_string(nn::kernels::active_simd_level());
  stats_.scheduler = "coop";
  stats_.workers = design_->graph.last_run_workers();
  stats_.module_stats = design_->graph.module_stats();
  stats_.weight_bytes_streamed = 0;
  for (const Stream* stream : design_->weight_streams) {
    // Per-run counters (reopen_streams resets them), so a warm run's total
    // is its own traffic: zero once every PE holds its weights resident.
    stats_.weight_bytes_streamed +=
        stream->stats().total_writes * sizeof(float);
  }
  stats_.images_in_flight_hwm =
      design_->telemetry.images_in_flight_hwm.load(std::memory_order_relaxed);
  stats_.fused_local_passes = 0;
  for (const PeProgram& program : design_->programs) {
    if (program.fused_local) {
      stats_.fused_local_passes += program.passes.size() - 1;
    }
  }

  if (!run_status.is_ok()) {
    // A failed run leaves streams partially drained; drop the instance so
    // the next call re-compiles from the (immutable) plan.
    design_.reset();
    return run_status;
  }

  std::vector<Tensor> outputs = std::move(design_->sink->outputs());
  if (plan_->softmax_on_host) {
    // The generated host code applies the normalization layer (paper eq. 5).
    for (Tensor& blob : outputs) {
      blob = nn::forward_softmax(blob);
    }
  }
  return outputs;
}

}  // namespace condor::dataflow

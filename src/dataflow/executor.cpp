#include "dataflow/executor.hpp"

#include <algorithm>

#include "common/strings.hpp"
#include "dataflow/datamover.hpp"
#include "dataflow/filter.hpp"
#include "dataflow/graph.hpp"
#include "dataflow/pe.hpp"
#include "dataflow/program.hpp"
#include "nn/reference.hpp"

namespace condor::dataflow {
namespace {

/// Capacity of the mux -> first-filter stream and of small glue FIFOs.
constexpr std::size_t kGlueFifoDepth = 8;

}  // namespace

Result<AcceleratorExecutor> AcceleratorExecutor::create(hw::AcceleratorPlan plan,
                                                        nn::WeightStore weights) {
  CONDOR_RETURN_IF_ERROR(weights.validate_against(plan.source.net));
  return AcceleratorExecutor(std::move(plan), std::move(weights));
}

Result<std::vector<Tensor>> AcceleratorExecutor::run_batch(
    const std::vector<Tensor>& inputs) {
  if (inputs.empty()) {
    return std::vector<Tensor>{};
  }
  CONDOR_ASSIGN_OR_RETURN(Shape input_shape, plan_.source.net.input_shape());
  for (const Tensor& image : inputs) {
    if (image.shape() != input_shape) {
      return invalid_input(strings::format(
          "input shape %s does not match network input %s",
          image.shape().to_string().c_str(), input_shape.to_string().c_str()));
    }
  }
  const std::size_t batch = inputs.size();

  // The programs reference the weight store and the plan; both outlive the
  // graph run below.
  std::vector<PeProgram> programs;
  programs.reserve(plan_.pes.size());
  for (std::size_t p = 0; p < plan_.pes.size(); ++p) {
    CONDOR_ASSIGN_OR_RETURN(PeProgram program,
                            build_pe_program(plan_, p, weights_));
    programs.push_back(std::move(program));
  }

  Graph graph;

  // Inter-PE streams (datamover -> pe0 -> ... -> peN -> datamover), using
  // the depths the plan assigned to the stream edges.
  std::vector<Stream*> pe_streams;  // pe_streams[p] = input stream of PE p
  pe_streams.reserve(plan_.pes.size() + 1);
  for (std::size_t e = 0; e < plan_.edges.size(); ++e) {
    pe_streams.push_back(&graph.make_stream(
        plan_.edges[e].fifo_depth, strings::format("stream_edge_%zu", e)));
  }

  // The output blob shape the sink collects: the last PE's emission.
  const std::size_t out_elements = programs.back().output_elements();

  for (std::size_t p = 0; p < plan_.pes.size(); ++p) {
    const hw::PePlan& pe = plan_.pes[p];
    const PeProgram& program = programs[p];
    Stream& external_in = *pe_streams[p];
    Stream& pe_out = *pe_streams[p + 1];

    // Weight delivery from the datamover: classifier PEs get a one-time
    // configuration load; feature PEs receive their slices per image.
    Stream* weight_stream = nullptr;
    if (program.weight_stream_elements() > 0) {
      weight_stream = &graph.make_stream(256, pe.name + "_weights");
      const std::size_t repeats =
          pe.kind == hw::PeKind::kClassifier ? 1 : batch;
      graph.add_module<WeightMoverModule>(pe.name + "_weight_mover", program,
                                          repeats, *weight_stream);
    }

    if (pe.kind == hw::PeKind::kClassifier) {
      graph.add_module<ClassifierPeModule>(pe.name, program, batch, external_in,
                                           weight_stream, pe_out);
      continue;
    }

    // Feature / element-wise PE: source mux + one replicated filter chain
    // per concurrently-read input map (parallel_in, paper §3.2) + PE.
    const hw::MemoryPipelinePlan& memory = *pe.memory;
    const std::size_t window_h = std::max<std::size_t>(memory.window_h, 1);
    const std::size_t window_w = std::max<std::size_t>(memory.window_w, 1);
    const std::size_t lanes = std::max<std::size_t>(pe.parallel_in, 1);

    Stream* loopback = nullptr;
    if (program.passes.size() > 1) {
      loopback = &graph.make_stream(
          std::max<std::size_t>(program.max_loopback_elements(), 1),
          pe.name + "_loopback");
    }
    std::vector<Stream*> chain_heads;
    for (std::size_t lane = 0; lane < lanes; ++lane) {
      chain_heads.push_back(&graph.make_stream(
          kGlueFifoDepth,
          strings::format("%s_chain_in_l%zu", pe.name.c_str(), lane)));
    }
    graph.add_module<SourceMuxModule>(pe.name + "_mux", program, batch,
                                      external_in, loopback, chain_heads);

    // Filter chains in lexicographically inverse access order; each
    // filter's PE-port stream holds one output row of skid (decouples the
    // software thread schedule; in hardware these are direct wires).
    const std::size_t port_depth = std::max<std::size_t>(memory.map_w, 4);
    std::vector<Stream*> ports(lanes * window_h * window_w, nullptr);
    for (std::size_t lane = 0; lane < lanes; ++lane) {
      Stream* upstream = chain_heads[lane];
      for (std::size_t f = 0; f < memory.filters.size(); ++f) {
        const hw::FilterNode& node = memory.filters[f];
        const bool last = f + 1 == memory.filters.size();
        Stream* downstream = nullptr;
        if (!last) {
          downstream = &graph.make_stream(
              node.fifo_to_next_depth,
              strings::format("%s_chain_l%zu_%zu", pe.name.c_str(), lane, f));
        }
        Stream& port = graph.make_stream(
            port_depth,
            strings::format("%s_port_l%zu_%zu_%zu", pe.name.c_str(), lane,
                            node.access.ky, node.access.kx));
        ports[lane * window_h * window_w + node.access.ky * window_w +
              node.access.kx] = &port;
        graph.add_module<FilterModule>(
            strings::format("%s_filter_l%zu_%zu_%zu", pe.name.c_str(), lane,
                            node.access.ky, node.access.kx),
            node.access, program, batch, lane, lanes, *upstream, downstream,
            port);
        upstream = downstream;
      }
    }

    graph.add_module<FeaturePeModule>(pe.name, program, batch, window_h,
                                      window_w, lanes, std::move(ports),
                                      weight_stream, loopback, pe_out);
  }

  // Datamover halves.
  CONDOR_ASSIGN_OR_RETURN(auto shapes, plan_.source.net.infer_shapes());
  Shape output_shape{out_elements};
  // Recover the true blob shape of the last mapped layer for nicer output.
  const std::size_t last_layer = plan_.pes.back().layer_indices.back();
  if (shapes[last_layer].output.element_count() == out_elements) {
    output_shape = shapes[last_layer].output;
  }
  graph.add_module<InputMoverModule>("datamover_in", inputs, *pe_streams.front());
  auto& sink = graph.add_module<OutputMoverModule>("datamover_out", batch,
                                                   output_shape,
                                                   *pe_streams.back());

  CONDOR_RETURN_IF_ERROR(graph.run());

  stats_.modules = graph.module_count();
  stats_.streams = graph.stream_count();
  stats_.stream_stats = graph.stream_stats();

  std::vector<Tensor> outputs = std::move(sink.outputs());
  if (plan_.softmax_on_host) {
    // The generated host code applies the normalization layer (paper eq. 5).
    for (Tensor& blob : outputs) {
      blob = nn::forward_softmax(blob);
    }
  }
  return outputs;
}

}  // namespace condor::dataflow

// Processing element modules.
//
// FeaturePeModule executes convolution / pooling / element-wise passes fed
// by its memory subsystem (the filter chain): per input channel it receives
// the full sliding window of every output point, one element per active
// access port, in output raster order. Convolution accumulates into on-chip
// output-map accumulators (seeded with the bias) so the input streams
// through exactly once; accumulation order matches the golden reference
// bit-for-bit (input channel outer, window row, window column). Port data
// is prefetched one input-channel stripe at a time, one exact whole-stripe
// read per port (each port's stripe is out_h * out_w matched elements in
// output raster order), so the PE pays one FIFO transaction per tap per
// channel instead of one per output row; the arithmetic order over the
// fetched values is unchanged.
//
// Convolution passes run the packed OC-contiguous microkernel
// (nn/kernels.hpp) over a per-pass weight repack, and honor the plan's
// parallel_out degree — the paper's intra-layer spatial unfolding — by
// partitioning the output-channel range across `parallel_out` compute
// lanes fork-joined on the executor's worker pool. Every lane owns a
// disjoint oc slice with its own accumulator tile, so each output
// element's accumulation chain (bias seed, then ic-major adds) is
// byte-identical at any lane count.
//
// The plan's parallel_in degree is likewise executed, not just modeled: a
// convolution pass stages `parallel_in` consecutive input-channel stripes
// per iteration — one from each replicated filter chain, exactly the
// channels the provisioned input lanes carry — and the compute lanes then
// accumulate the staged stripes in ascending-ic order. The per-element
// accumulation chain is untouched (bias, then ic-major adds), so any
// parallel_in degree is byte-identical; what changes is the schedule: one
// fork-join and one staging round-trip per group of parallel_in channels
// instead of per channel. Fully-connected passes stripe the flattened
// input across parallel_in contiguous segments accumulated back-to-back —
// the GEMV microkernel vectorizes over output neurons only, so splitting
// the input walk at any boundary leaves every sum byte-identical too.
//
// ClassifierPeModule implements fully-connected layers as single-input/
// single-output 1x1-convolution PEs (paper §3.3 step 4): no memory
// subsystem, weights resident on chip (repacked once per batch into the
// transposed GEMV layout), one multiply-accumulate stream over the
// flattened input; parallel_out partitions the output neurons the same way.
//
// Fixed-point datapath (plan data_type fixed16/fixed8, see nn/numeric.hpp):
// blob streams carry integer codes stored in float words (|code| < 2^15 is
// exact in a float mantissa; the mux's zero border is code 0, so the memory
// subsystem is numeric-type agnostic). Each blob's dynamic Q-format travels
// out of band on a per-edge format stream: one word per image, written by
// the producer BEFORE the blob data (so readers never wait on a format word
// behind unconsumed blob data). Fused passes keep the intermediate format
// in a PE-local variable — the loopback channel has no format stream. PEs
// quantize their own weights from the raw float weight stream with the same
// nn/numeric.hpp helpers the QuantizedEngine uses, MAC raw codes in a
// widened integer accumulator, and requantize the full output blob at every
// pass boundary — bit-exact against nn::QuantizedEngine by construction.
//
// Zero-allocation steady state: every per-image buffer (accumulator tiles,
// port-stripe staging, dequantize/requantize scratch) is a module member
// that persists across images AND across run_batch calls (the executor's
// compiled design owns the modules for its whole life). Buffers resize to
// each pass's needs; once a warmup batch has grown them to their high-water
// capacity no later image touches the heap.
//
// Weight residency extends the same ownership rule to the weights
// themselves: each PE drains its weight stream exactly once per compiled
// design — before the first image of the first run — and latches the
// packed (and, for fixed datapaths, quantized) blocks in its per-pass
// cache. Every later image AND every later run_batch over the same design
// runs entirely from the resident copy; the warm path moves zero weight
// bytes (RunStats.weight_bytes_streamed counts the proof). Residency is
// invalidated with the design: plan and WeightStore are immutable
// shared_ptr<const> state, so any change recompiles the graph and rebuilds
// both the movers and these caches. steady_state_alloc_test enforces the
// allocation and the weight-traffic halves of the contract.
#pragma once

#include <cstdint>
#include <span>
#include <type_traits>
#include <vector>

#include "common/thread_pool.hpp"
#include "dataflow/fifo.hpp"
#include "dataflow/module.hpp"
#include "dataflow/program.hpp"
#include "nn/numeric.hpp"

namespace condor::dataflow {

/// Where a pass's output blob goes: an inter-module stream (the downstream
/// edge, or the loopback of a round-trip fused design) or — on the
/// fused-pass fast path — a PE-local grow-only buffer that never touches a
/// FIFO. Exactly one of the two is set.
struct PassSink {
  Stream* stream = nullptr;
  std::vector<float>* local = nullptr;
};

class FeaturePeModule final : public Module {
 public:
  /// `ports[lane * window_h_max * window_w_max + ky * window_w_max + kx]`
  /// is the stream from chain `lane`'s filter for access (ky, kx) — one
  /// replicated chain per concurrently-read input map (inter-layer
  /// parallelism); channel c belongs to lane c % lanes. `weights`
  /// (nullable when no pass carries parameters) delivers the one-time
  /// weight load from the datamover (latched resident on first receipt);
  /// `loopback` (nullable) carries
  /// intermediate fused-pass results back to the source mux; `out` is the
  /// downstream PE stream. `parallel_out` compute lanes split each
  /// convolution pass's output channels across `lane_pool` (nullable for
  /// sequential execution). For a fixed `data_type`, `fmt_in` / `fmt_out`
  /// carry the per-image input/output blob formats (one frac_bits word per
  /// image, ahead of the blob data).
  FeaturePeModule(std::string name, const PeProgram& program,
                  std::size_t window_h_max, std::size_t window_w_max,
                  std::size_t lanes, std::vector<Stream*> ports, Stream* weights,
                  Stream* loopback, Stream& out, std::size_t parallel_out = 1,
                  ThreadPool* lane_pool = nullptr,
                  nn::DataType data_type = nn::DataType::kFloat32,
                  Stream* fmt_in = nullptr, Stream* fmt_out = nullptr)
      : Module(std::move(name)),
        program_(program),
        window_h_max_(window_h_max),
        window_w_max_(window_w_max),
        lanes_(lanes),
        parallel_out_(parallel_out == 0 ? 1 : parallel_out),
        lane_pool_(lane_pool),
        data_type_(data_type),
        ports_(std::move(ports)),
        weights_(weights),
        loopback_(loopback),
        out_(out),
        fmt_in_(fmt_in),
        fmt_out_(fmt_out) {}

  Fire fire(const RunContext& ctx) override;

 private:
  // The pass/stripe helpers are nested firings (Fire coroutines co_awaited
  // by the body): a stream suspension inside a helper suspends the whole
  // module firing at that innermost point.

  /// One-time weight latch: drains the weight stream (first run of a
  /// compiled design only) and derives every pass's resident blocks into
  /// weight_cache_. A no-op once every weighted pass is ready.
  Fire latch_resident_weights();

  /// `pass_index` selects the pass's resident weight-cache slot (latched by
  /// latch_resident_weights before the first image).
  Fire run_pass(std::size_t pass_index, const LayerPass& pass, PassSink sink);

  /// Fixed-point pass: codes in, codes out. `in_frac` is the input blob's
  /// format; the requantized output blob's format lands in `out_frac` (and,
  /// when `fmt_sink` is non-null, on the wire ahead of the blob).
  Fire run_pass_fixed(std::size_t pass_index, const LayerPass& pass,
                      PassSink sink, Stream* fmt_sink, int in_frac,
                      int& out_frac);

  /// The convolution body of run_pass_fixed, templated over the widened
  /// accumulator (int64 for fixed16, int32 for fixed8 — see nn/kernels.hpp).
  template <typename Acc>
  Fire run_conv_pass_fixed(std::size_t pass_index, const LayerPass& pass,
                           PassSink sink, Stream* fmt_sink, int in_frac,
                           int& out_frac);

  /// Burst-reads one full input-channel stripe — every active port of
  /// `lane`, one exact whole-stripe read per port — into `stage`, laid out
  /// tap-major (tap, oy, ox). Each port's element order is the same as the
  /// row-at-a-time schedule; only the transfer granularity changes (one
  /// FIFO transaction per tap instead of per output row). `stage` is the
  /// caller's slot within the group staging buffer (parallel_in stripes
  /// per group).
  Fire read_port_stripe(const LayerPass& pass, std::size_t lane,
                        std::span<float> stage);

  /// Fast-path input for fused passes after the first: this pass reads the
  /// retained previous-pass blob (fused_prev_) instead of the port FIFOs.
  [[nodiscard]] bool local_input(std::size_t pass_index) const noexcept {
    return program_.fused_local && pass_index > 0;
  }

  /// Fast-path analog of read_port_stripe: stages channel `channel`'s full
  /// tap-major stripe from the retained previous-pass blob, reproducing the
  /// round-trip route exactly — the mux's zero border (padded coordinates,
  /// zeros outside the interior) and each filter's matched domain
  /// (y = oy*stride + ky, x = ox*stride + kx) — so stage holds the
  /// identical values in the identical layout and the arithmetic downstream
  /// cannot tell the routes apart.
  void gather_local_stripe(const LayerPass& pass, std::size_t channel,
                           std::span<float> stage) const noexcept;

  /// Fast-path analog of a whole-map port read (1x1-window passes): the
  /// padded in_h x in_w map of channel `channel` from the retained blob.
  void gather_local_map(const LayerPass& pass, std::size_t channel,
                        std::span<float> map) const noexcept;

  /// Pass-indexed cache of resident weight blocks, latched from the weight
  /// stream's one-time load (latch_resident_weights) and reused for every
  /// image and every run_batch of the compiled design. The WeightStore is
  /// immutable, so the repack (and the fixed paths' quantization) is a pure
  /// function of the pass; a plan/weight change recompiles the design and
  /// starts from empty slots.
  struct PassWeightCache {
    bool ready = false;
    std::vector<float> packed;              ///< float path: (ic,ky,kx,oc)
    std::vector<float> bias;                ///< float path: raw bias seeds
    std::vector<std::int32_t> packed_codes; ///< fixed path: same, as codes
    std::vector<std::int32_t> bias_codes;
    int weight_frac = 0;
    int bias_frac = 0;
  };

  /// Derives pass `pass_index`'s resident blocks from the freshly drained
  /// weight_buffer_/bias_buffer_ (datapath-aware: float repack or
  /// quantize + repack).
  void derive_pass_cache(std::size_t pass_index, const LayerPass& pass);

  /// The per-lane accumulator tiles of the fixed conv path, selected by the
  /// widened accumulator type.
  template <typename Acc>
  std::vector<std::vector<Acc>>& fixed_lane_acc() noexcept {
    if constexpr (std::is_same_v<Acc, std::int64_t>) {
      return lane_acc64_;
    } else {
      return lane_acc32_;
    }
  }

  const PeProgram& program_;
  std::size_t window_h_max_;
  std::size_t window_w_max_;
  std::size_t lanes_;
  std::size_t parallel_out_;
  ThreadPool* lane_pool_;
  nn::DataType data_type_;
  std::vector<Stream*> ports_;
  Stream* weights_;
  Stream* loopback_;
  Stream& out_;
  Stream* fmt_in_;
  Stream* fmt_out_;

  // --- steady-state scratch arena (see the header comment) ---------------
  // The outer per-lane vectors are sized once to parallel_out_ and never
  // shrink, so the inner tiles keep their high-water capacity even when a
  // pass clamps its compute-lane count below parallel_out_.
  std::vector<PassWeightCache> weight_cache_;  ///< one slot per pass
  std::vector<float> weight_buffer_;           ///< raw stream drain
  std::vector<float> bias_buffer_;
  std::vector<float> stage_;                   ///< port-stripe staging
  std::vector<std::int32_t> int_stage_;        ///< fixed: stage as codes
  std::vector<std::vector<float>> lane_acc_;   ///< float conv acc tiles
  std::vector<std::vector<std::int64_t>> lane_acc64_;  ///< fixed16 tiles
  std::vector<std::vector<std::int32_t>> lane_acc32_;  ///< fixed8 tiles
  std::vector<std::vector<const float*>> lane_taps_;
  std::vector<std::vector<const std::int32_t*>> lane_taps_fixed_;
  std::vector<float> out_blob_;                ///< activated output / values
  std::vector<float> map_;
  std::vector<std::int32_t> emit_codes_;       ///< requantize scratch
  std::vector<float> emit_blob_;
  /// Fused-pass fast path: the previous pass's output blob, retained
  /// PE-locally in exactly the byte sequence the loopback would have
  /// carried ((c, y, x) order; fixed datapaths: requantized codes in float
  /// words), and the buffer the current pass appends into. Double-buffered
  /// and swapped per pass; clear() keeps the high-water capacity, so the
  /// warm steady state stays off the heap.
  std::vector<float> fused_prev_;
  std::vector<float> fused_next_;
};

class ClassifierPeModule final : public Module {
 public:
  /// `weights` delivers the one-time runtime weight load (the classifier's
  /// parameters stay chip-resident across the batch AND across batches —
  /// the stream is drained once per compiled design). `parallel_in`
  /// stripes the flattened input across that many contiguous segments
  /// accumulated back-to-back (byte-identical at any degree; see the file
  /// header). `fmt_in` / `fmt_out` are the format side-channels of a fixed
  /// `data_type` (see FeaturePeModule).
  ClassifierPeModule(std::string name, const PeProgram& program, Stream& in,
                     Stream* weights, Stream& out, std::size_t parallel_out = 1,
                     std::size_t parallel_in = 1,
                     ThreadPool* lane_pool = nullptr,
                     nn::DataType data_type = nn::DataType::kFloat32,
                     Stream* fmt_in = nullptr, Stream* fmt_out = nullptr)
      : Module(std::move(name)),
        program_(program),
        parallel_out_(parallel_out == 0 ? 1 : parallel_out),
        parallel_in_(parallel_in == 0 ? 1 : parallel_in),
        lane_pool_(lane_pool),
        data_type_(data_type),
        in_(in),
        weights_(weights),
        out_(out),
        fmt_in_(fmt_in),
        fmt_out_(fmt_out) {}

  Fire fire(const RunContext& ctx) override;

 private:
  /// The fixed-point batch loop, templated over the widened accumulator
  /// (int64 for fixed16, int32 for fixed8). A nested firing (see
  /// FeaturePeModule).
  template <typename Acc>
  Fire run_fixed(const RunContext& ctx);

  /// Chip-resident quantized weights of one weighted pass (fixed path).
  struct FixedPassWeights {
    std::vector<std::int32_t> packed;  ///< (in, out) transposed codes
    std::vector<std::int32_t> bias_codes;
    int weight_frac = 0;
    int bias_frac = 0;
  };

  /// Per-lane accumulator scratch of the fixed path, selected by the
  /// widened accumulator type.
  template <typename Acc>
  std::vector<std::vector<Acc>>& fixed_lane_acc() noexcept {
    if constexpr (std::is_same_v<Acc, std::int64_t>) {
      return lane_acc64_;
    } else {
      return lane_acc32_;
    }
  }

  const PeProgram& program_;
  std::size_t parallel_out_;
  std::size_t parallel_in_;
  ThreadPool* lane_pool_;
  nn::DataType data_type_;
  Stream& in_;
  Stream* weights_;
  Stream& out_;
  Stream* fmt_in_;
  Stream* fmt_out_;

  // --- steady-state scratch + resident weights (persist across batches;
  // the weight stream is drained exactly once per compiled design — warm
  // runs find it closed and empty) ----------------------------------------
  bool resident_ready_ = false;
  std::vector<std::vector<float>> packed_weights_;  ///< float path, per pass
  std::vector<std::vector<float>> pass_bias_;
  std::vector<FixedPassWeights> resident_;          ///< fixed path, per pass
  std::vector<float> weight_buffer_;
  std::vector<float> words_;
  std::vector<float> current_;
  std::vector<float> next_;
  std::vector<std::int32_t> codes_;                 ///< fixed: current blob
  std::vector<float> values_;
  std::vector<std::int32_t> wcodes_;
  std::vector<std::vector<std::int64_t>> lane_acc64_;
  std::vector<std::vector<std::int32_t>> lane_acc32_;
};

}  // namespace condor::dataflow

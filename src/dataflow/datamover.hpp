// Datamover halves: the custom module that "exchanges data with the
// accelerator using streaming connections" (paper §3.2). In the functional
// simulation the input half streams the batch's images from (simulated)
// on-board memory into the first PE, and the output half collects result
// blobs. The weight half streams each PE's slices exactly once per compiled
// design — the PE latches them (weight residency, dataflow/pe.hpp) and every
// later image and every later run_batch over the same design reuses the
// resident copy, so the warm path is weight-traffic-free. PE programs hold
// references into the WeightStore, which stands in for the weight regions
// of on-board memory; a changed plan or weight store always recompiles the
// design, which rebuilds the movers and re-arms the one-time load.
//
// All three movers transfer whole blobs per FIFO call (burst writes /
// reads): the datamover models a DMA engine, and blob-granular bursts are
// what keep the host-side simulation off the suspend/wake slow path.
//
// The input and output halves also frame images for the run telemetry
// (RunTelemetry): the source counts an image as injected once its blob is
// fully in the first channel, the sink counts it retired once the blob is
// collected — their difference proves how many images the pipeline held
// concurrently.
//
// For a fixed-point plan (see nn/numeric.hpp and dataflow/pe.hpp) the input
// half quantizes each image with a per-image dynamic format — publishing
// the format word on the side-channel BEFORE the blob of codes — and the
// output half reads the final blob's format word, then dequantizes the
// collected codes back to floats.
#pragma once

#include <cstdint>
#include <vector>

#include "common/alloc_probe.hpp"
#include "dataflow/fifo.hpp"
#include "dataflow/module.hpp"
#include "dataflow/program.hpp"
#include "nn/numeric.hpp"
#include "tensor/tensor.hpp"

namespace condor::dataflow {

/// Streams each input tensor's elements in CHW raster order. Fixed
/// datapaths quantize per image and announce the format on `fmt_out` ahead
/// of the codes.
class InputMoverModule final : public Module {
 public:
  InputMoverModule(std::string name, Stream& out,
                   nn::DataType data_type = nn::DataType::kFloat32,
                   Stream* fmt_out = nullptr)
      : Module(std::move(name)),
        data_type_(data_type),
        out_(out),
        fmt_out_(fmt_out) {}

  Fire fire(const RunContext& ctx) override {
    if (ctx.inputs.size() != ctx.batch) {
      co_return internal_error("input mover: run context carries no inputs");
    }
    if (!nn::is_fixed_point(data_type_)) {
      for (const Tensor& image : ctx.inputs) {
        CONDOR_CO_WRITE_BURST(
            out_, image.data(),
            internal_error("input mover: output stream closed early"));
        if (ctx.telemetry != nullptr) {
          ctx.telemetry->on_image_injected();
        }
      }
      out_.close();
      co_return Status::ok();
    }
    const int bits = nn::total_bits(data_type_);
    for (const Tensor& image : ctx.inputs) {
      const nn::FixedPointFormat format =
          nn::quantize_span(image.data(), bits, codes_);
      blob_.assign(codes_.begin(), codes_.end());
      if (fmt_out_ == nullptr) {
        co_return internal_error("input mover: format stream closed early");
      }
      CONDOR_CO_WRITE_ONE(
          *fmt_out_, static_cast<float>(format.frac_bits),
          internal_error("input mover: format stream closed early"));
      CONDOR_CO_WRITE_BURST(
          out_, blob_,
          internal_error("input mover: output stream closed early"));
      if (ctx.telemetry != nullptr) {
        ctx.telemetry->on_image_injected();
      }
    }
    out_.close();
    fmt_out_->close();
    co_return Status::ok();
  }

 private:
  nn::DataType data_type_;
  Stream& out_;
  Stream* fmt_out_;
  // Quantization scratch persists across runs so steady-state firings
  // allocate nothing.
  std::vector<std::int32_t> codes_;
  std::vector<float> blob_;
};

/// Streams a PE's weights from (simulated) on-board memory, in canonical
/// order: per weighted pass, the weight tensor row-major, then the bias.
/// The load happens exactly once per compiled design — the receiving PE
/// latches the slices (weight residency), so every later image of the first
/// run and every subsequent warm run over the same design sees only a
/// closed, empty weight stream. Residency is invalidated with the design
/// itself: a new plan or weight store recompiles the graph, recreating this
/// module with `sent_` cleared.
class WeightMoverModule final : public Module {
 public:
  WeightMoverModule(std::string name, const PeProgram& program, Stream& out)
      : Module(std::move(name)), program_(program), out_(out) {}

  Fire fire(const RunContext& ctx) override {
    (void)ctx;
    if (!sent_) {
      for (const LayerPass& pass : program_.passes) {
        if (pass.params == nullptr) {
          continue;
        }
        CONDOR_CO_WRITE_BURST(
            out_, pass.params->weights.data(),
            internal_error("weight mover: output stream closed early"));
        CONDOR_CO_WRITE_BURST(
            out_, pass.params->bias.data(),
            internal_error("weight mover: output stream closed early"));
      }
      sent_ = true;
    }
    out_.close();
    co_return Status::ok();
  }

 private:
  const PeProgram& program_;
  Stream& out_;
  bool sent_ = false;  ///< one-time load latch; lives as long as the design
};

/// Collects `batch` output blobs of `output_shape` from the final stream.
/// Fixed datapaths read the blob's format word from `fmt_in` first and
/// dequantize the collected codes in place.
class OutputMoverModule final : public Module {
 public:
  OutputMoverModule(std::string name, Shape output_shape, Stream& in,
                    nn::DataType data_type = nn::DataType::kFloat32,
                    Stream* fmt_in = nullptr)
      : Module(std::move(name)),
        output_shape_(std::move(output_shape)),
        data_type_(data_type),
        in_(in),
        fmt_in_(fmt_in) {}

  Fire fire(const RunContext& ctx) override {
    const bool fixed = nn::is_fixed_point(data_type_);
    {
      // The output vector escapes to the caller (run_batch moves it out
      // every run), so its storage is outside the zero-allocation contract,
      // same as the Tensor payloads below.
      const common::AllocProbe::Pause pause;
      outputs_.clear();
      outputs_.reserve(ctx.batch);
    }
    for (std::size_t image = 0; image < ctx.batch; ++image) {
      int frac = 0;
      if (fixed) {
        if (fmt_in_ == nullptr) {
          co_return internal_error("output mover: format stream ended early");
        }
        float word = 0.0F;
        CONDOR_CO_READ_ONE(
            *fmt_in_, word,
            internal_error("output mover: format stream ended early"));
        frac = static_cast<int>(word);
      }
      // Output tensor construction is intentionally outside the
      // zero-allocation contract (it escapes to the caller); pause the
      // probe for exactly that allocation.
      Tensor blob = [&] {
        const common::AllocProbe::Pause pause;
        return Tensor(output_shape_);
      }();
      const std::span<float> data = blob.data();
      CONDOR_CO_READ_EXACT(
          in_, data, internal_error("output mover: stream ended early"));
      if (fixed) {
        for (float& value : data) {
          value = nn::dequantize_code(static_cast<std::int64_t>(value), frac);
        }
      }
      outputs_.push_back(std::move(blob));
      if (ctx.telemetry != nullptr) {
        ctx.telemetry->on_image_retired();
      }
    }
    float extra = 0.0F;
    bool got_extra = false;
    CONDOR_CO_READ_ONE_OR_EOS(in_, extra, got_extra);
    if (got_extra) {
      co_return internal_error("output mover: trailing elements in stream");
    }
    co_return Status::ok();
  }

  [[nodiscard]] std::vector<Tensor>& outputs() noexcept { return outputs_; }

 private:
  Shape output_shape_;
  nn::DataType data_type_;
  Stream& in_;
  Stream* fmt_in_;
  std::vector<Tensor> outputs_;
};

}  // namespace condor::dataflow

// Datamover halves: the custom module that "exchanges data with the
// accelerator using streaming connections" (paper §3.2). In the functional
// simulation the input half streams the batch's images from (simulated)
// on-board memory into the first PE, and the output half collects result
// blobs. Weight streaming is implicit: PE programs hold references into the
// WeightStore, which stands in for the weight regions of on-board memory.
#pragma once

#include <vector>

#include "dataflow/fifo.hpp"
#include "dataflow/module.hpp"
#include "dataflow/program.hpp"
#include "tensor/tensor.hpp"

namespace condor::dataflow {

/// Streams each input tensor's elements in CHW raster order.
class InputMoverModule final : public Module {
 public:
  InputMoverModule(std::string name, const std::vector<Tensor>& inputs, Stream& out)
      : Module(std::move(name)), inputs_(inputs), out_(out) {}

  Status run() override {
    for (const Tensor& image : inputs_) {
      for (const float value : image.data()) {
        out_.write(value);
      }
    }
    out_.close();
    return Status::ok();
  }

 private:
  const std::vector<Tensor>& inputs_;
  Stream& out_;
};

/// Streams a PE's weights from (simulated) on-board memory, in canonical
/// order: per weighted pass, the weight tensor row-major, then the bias.
/// `repeats` = batch size for feature PEs (slices re-fetched per image) or
/// 1 for classifier PEs (runtime configuration load, then chip-resident).
class WeightMoverModule final : public Module {
 public:
  WeightMoverModule(std::string name, const PeProgram& program,
                    std::size_t repeats, Stream& out)
      : Module(std::move(name)), program_(program), repeats_(repeats), out_(out) {}

  Status run() override {
    for (std::size_t r = 0; r < repeats_; ++r) {
      for (const LayerPass& pass : program_.passes) {
        if (pass.params == nullptr) {
          continue;
        }
        for (const float value : pass.params->weights.data()) {
          out_.write(value);
        }
        for (const float value : pass.params->bias.data()) {
          out_.write(value);
        }
      }
    }
    out_.close();
    return Status::ok();
  }

 private:
  const PeProgram& program_;
  std::size_t repeats_;
  Stream& out_;
};

/// Collects `batch` output blobs of `output_shape` from the final stream.
class OutputMoverModule final : public Module {
 public:
  OutputMoverModule(std::string name, std::size_t batch, Shape output_shape,
                    Stream& in)
      : Module(std::move(name)),
        batch_(batch),
        output_shape_(std::move(output_shape)),
        in_(in) {}

  Status run() override {
    outputs_.reserve(batch_);
    for (std::size_t image = 0; image < batch_; ++image) {
      Tensor blob(output_shape_);
      for (float& value : blob.data()) {
        if (!in_.read(value)) {
          return internal_error("output mover: stream ended early");
        }
      }
      outputs_.push_back(std::move(blob));
    }
    float extra = 0.0F;
    if (in_.read(extra)) {
      return internal_error("output mover: trailing elements in stream");
    }
    return Status::ok();
  }

  [[nodiscard]] std::vector<Tensor>& outputs() noexcept { return outputs_; }

 private:
  std::size_t batch_;
  Shape output_shape_;
  Stream& in_;
  std::vector<Tensor> outputs_;
};

}  // namespace condor::dataflow

// Dataflow graph container and threaded runner.
//
// Owns the modules and stream FIFOs of one accelerator instance and
// executes them Kahn-process-network style: one concurrently-running task
// per module, all joined before run() returns (no detached work). The first
// module error is reported; remaining modules are still joined (blocking
// channels guarantee progress or termination because an erroring module
// closes its outputs).
//
// Scheduling: run() can execute on a caller-provided persistent
// common::ThreadPool (grown to at least module_count() workers, since every
// module must be live at once for the blocking channels to drain) — the
// executor reuses one pool across batches instead of spawning
// modules_.size() OS threads per run. Without a pool, run() falls back to
// per-run std::threads.
#pragma once

#include <memory>
#include <vector>

#include "common/status.hpp"
#include "common/thread_pool.hpp"
#include "dataflow/fifo.hpp"
#include "dataflow/module.hpp"

namespace condor::dataflow {

class Graph {
 public:
  /// Creates a stream FIFO owned by the graph.
  Stream& make_stream(std::size_t capacity, std::string name);

  /// Adds a module (construction order is irrelevant to execution).
  template <typename M, typename... Args>
  M& add_module(Args&&... args) {
    auto module = std::make_unique<M>(std::forward<Args>(args)...);
    M& ref = *module;
    modules_.push_back(std::move(module));
    return ref;
  }

  /// Runs every module concurrently and joins them all. With `pool`, module
  /// bodies are submitted to the (grown) persistent pool; otherwise one
  /// std::thread per module is spawned for this run only.
  /// Returns the first module failure (by module order), or OK.
  Status run(const RunContext& ctx = {}, ThreadPool* pool = nullptr);

  /// Re-arms every stream (clears EOS + stats) for another run over the
  /// same topology. Only valid between runs.
  void reopen_streams();

  [[nodiscard]] std::size_t module_count() const noexcept { return modules_.size(); }
  [[nodiscard]] std::size_t stream_count() const noexcept { return streams_.size(); }

  /// Post-run FIFO statistics (name + counters), for the ablation benches.
  [[nodiscard]] std::vector<FifoStats> stream_stats() const;
  [[nodiscard]] const std::vector<std::unique_ptr<Stream>>& streams() const noexcept {
    return streams_;
  }

 private:
  std::vector<std::unique_ptr<Stream>> streams_;
  std::vector<std::unique_ptr<Module>> modules_;
};

}  // namespace condor::dataflow

// Dataflow graph container and threaded runner.
//
// Owns the modules and stream FIFOs of one accelerator instance and
// executes them Kahn-process-network style: one thread per module, all
// threads joined before run() returns (no detached work). The first module
// error is reported; remaining modules are still joined (blocking channels
// guarantee progress or termination because an erroring module closes its
// outputs).
#pragma once

#include <memory>
#include <vector>

#include "common/status.hpp"
#include "dataflow/fifo.hpp"
#include "dataflow/module.hpp"

namespace condor::dataflow {

class Graph {
 public:
  /// Creates a stream FIFO owned by the graph.
  Stream& make_stream(std::size_t capacity, std::string name);

  /// Adds a module (construction order is irrelevant to execution).
  template <typename M, typename... Args>
  M& add_module(Args&&... args) {
    auto module = std::make_unique<M>(std::forward<Args>(args)...);
    M& ref = *module;
    modules_.push_back(std::move(module));
    return ref;
  }

  /// Runs every module on its own thread and joins them all.
  /// Returns the first module failure (by module order), or OK.
  Status run();

  [[nodiscard]] std::size_t module_count() const noexcept { return modules_.size(); }
  [[nodiscard]] std::size_t stream_count() const noexcept { return streams_.size(); }

  /// Post-run FIFO statistics (name + counters), for the ablation benches.
  [[nodiscard]] std::vector<FifoStats> stream_stats() const;
  [[nodiscard]] const std::vector<std::unique_ptr<Stream>>& streams() const noexcept {
    return streams_;
  }

 private:
  std::vector<std::unique_ptr<Stream>> streams_;
  std::vector<std::unique_ptr<Module>> modules_;
};

}  // namespace condor::dataflow

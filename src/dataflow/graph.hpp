// Dataflow graph container and module scheduler.
//
// Owns the modules and stream FIFOs of one accelerator instance and
// executes them to completion under a readiness-driven cooperative
// scheduler on the caller's ThreadPool. Modules are resumable firings
// (Module::fire) that run until a stream would block, then suspend; FIFO
// wakeup hooks re-enqueue a module only once its blocked stream turns
// ready. Any worker count executes any graph — a 40-module design runs on
// 2 workers, or purely sequentially on the calling thread when the
// effective worker count is one — so the pool never needs one OS thread
// per module.
//
// Execution is KPN-faithful — blocking semantics, per-stream FIFO order,
// deterministic dataflow — so results are bit-identical regardless of
// worker count. The first module error is reported (by module order); a
// wedged run (every module blocked, typically after a module error left
// channels unserviced) is torn down by closing all streams, which fails
// the remaining firings fast instead of hanging.
#pragma once

#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "common/status.hpp"
#include "common/thread_pool.hpp"
#include "dataflow/fifo.hpp"
#include "dataflow/module.hpp"

namespace condor::dataflow {

/// Per-module execution counters of the most recent run.
struct ModuleRunStats {
  std::string_view name;
  std::uint64_t fires = 0;    ///< times the module was resumed
  std::uint64_t blocked = 0;  ///< times it suspended on a stream
};

struct GraphRunOptions {
  /// Worker-thread target: 0 means min(thread_budget(), module_count());
  /// any value is clamped to [1, module_count()]. An effective count of 1
  /// runs sequentially on the calling thread.
  std::size_t workers = 0;
};

class Graph {
 public:
  /// Creates a stream FIFO owned by the graph.
  Stream& make_stream(std::size_t capacity, std::string name);

  /// Adds a module (construction order is irrelevant to execution).
  template <typename M, typename... Args>
  M& add_module(Args&&... args) {
    auto module = std::make_unique<M>(std::forward<Args>(args)...);
    M& ref = *module;
    modules_.push_back(std::move(module));
    return ref;
  }

  /// Runs every module to completion. Returns the first module failure (by
  /// module order), or OK.
  Status run(const RunContext& ctx = {}, ThreadPool* pool = nullptr);

  /// As above with an explicit worker-count target.
  Status run(const RunContext& ctx, ThreadPool* pool,
             const GraphRunOptions& options);

  /// Re-arms every stream (clears EOS + stats) for another run over the
  /// same topology. Only valid between runs.
  void reopen_streams();

  [[nodiscard]] std::size_t module_count() const noexcept { return modules_.size(); }
  [[nodiscard]] std::size_t stream_count() const noexcept { return streams_.size(); }

  /// Post-run FIFO statistics (name + counters), for the ablation benches.
  [[nodiscard]] std::vector<FifoStats> stream_stats() const;
  [[nodiscard]] const std::vector<std::unique_ptr<Stream>>& streams() const noexcept {
    return streams_;
  }

  /// Per-module fire/blocked counters of the most recent run.
  [[nodiscard]] std::vector<ModuleRunStats> module_stats() const;

  /// Worker threads (including the caller) of the most recent run.
  [[nodiscard]] std::size_t last_run_workers() const noexcept {
    return last_run_workers_;
  }

 private:
  Status run_cooperative(const RunContext& ctx, ThreadPool* pool,
                         std::size_t workers);

  std::vector<std::unique_ptr<Stream>> streams_;
  std::vector<std::unique_ptr<Module>> modules_;
  std::size_t last_run_workers_ = 0;
};

}  // namespace condor::dataflow

// PeProgram: the per-image schedule of a PE and its memory subsystem.
//
// A PE may implement several fused logical layers (paper §3.2: "an
// additional outer loop that iterates through the implemented layers, and a
// set of conditionals to infer which input ports must be read"). The
// program lists one LayerPass per fused layer; the filter modules, the
// source multiplexer and the PE all iterate the same program so the stream
// contents stay deterministic without control tokens — exactly like the
// synthesized hardware, where the schedule is compiled into each module's
// loop nest.
#pragma once

#include <cstddef>
#include <vector>

#include "common/status.hpp"
#include "hw/accel_plan.hpp"
#include "nn/network.hpp"
#include "nn/weights.hpp"

namespace condor::dataflow {

enum class PassKind {
  kConvolution,
  kPooling,
  kElementwise,
  kInnerProduct,
  kEltwiseAdd,  ///< two-input join: element-wise sum (join PEs only)
  kConcat,      ///< two-input join: channel concatenation (join PEs only)
  kUpsample,    ///< nearest-neighbour spatial replication by `scale`
};

/// One fused layer's geometry and parameters as seen by the dataflow
/// modules. Spatial coordinates are in the *padded* frame: the source mux
/// inserts the zero border, so filters and PEs never see padding logic.
struct LayerPass {
  PassKind kind = PassKind::kConvolution;
  // Input geometry (padded).
  std::size_t in_channels = 0;
  std::size_t in_h = 0;  ///< includes 2*pad
  std::size_t in_w = 0;
  std::size_t pad = 0;   ///< zero border the mux inserts per side
  // Window.
  std::size_t window_h = 1;
  std::size_t window_w = 1;
  std::size_t stride = 1;
  /// Nearest-neighbour replication factor (kUpsample only). Kept apart from
  /// `stride`, which the filter modules interpret as subsampling.
  std::size_t scale = 1;
  // Output geometry.
  std::size_t out_channels = 0;
  std::size_t out_h = 0;
  std::size_t out_w = 0;
  // Operation details.
  nn::PoolMethod pool_method = nn::PoolMethod::kMax;
  nn::Activation activation = nn::Activation::kNone;
  bool has_bias = false;
  const nn::LayerParameters* params = nullptr;  ///< conv / inner-product

  [[nodiscard]] std::size_t input_elements() const noexcept {
    return in_channels * in_h * in_w;
  }
  [[nodiscard]] std::size_t output_elements() const noexcept {
    return out_channels * out_h * out_w;
  }
};

/// The full schedule of one PE.
struct PeProgram {
  std::vector<LayerPass> passes;

  /// Fused-pass locality (executor fast path): when set, intermediate
  /// fused-pass blobs stay inside the PE in a grow-only local buffer — the
  /// mux, the filter chains and the PE all run only pass 0 through the
  /// memory subsystem, and every later pass gathers its window stripes from
  /// the retained previous-pass blob (dataflow/pe.hpp). The gather
  /// reproduces the mux padding and the filter domain exactly, so results
  /// are bit-identical to the loopback round-trip; what changes is the
  /// traffic (no loopback/chain/port FIFO transactions for fused passes).
  bool fused_local = false;

  /// Weight elements the datamover streams to this PE, in canonical order
  /// (per weighted pass: all weights oc-major, then the biases). Every PE
  /// receives this exactly once per compiled design (weight residency: the
  /// slices latch on chip at the first run and every warm run moves zero
  /// weight bytes — see pe.hpp).
  [[nodiscard]] std::size_t weight_stream_elements() const noexcept;

  /// Elements entering the PE's subsystem from the upstream stream
  /// (pass 0 input, *before* mux padding).
  [[nodiscard]] std::size_t external_input_elements() const noexcept;
  /// Elements the PE emits downstream (last pass output).
  [[nodiscard]] std::size_t output_elements() const noexcept {
    return passes.empty() ? 0 : passes.back().output_elements();
  }
  /// Largest intermediate blob routed through the loopback channel.
  [[nodiscard]] std::size_t max_loopback_elements() const noexcept;
};

/// Builds the program for plan.pes[pe_index], resolving weights from
/// `weights` (pointers remain owned by the store — it must outlive the run).
Result<PeProgram> build_pe_program(const hw::AcceleratorPlan& plan,
                                   std::size_t pe_index,
                                   const nn::WeightStore& weights);

}  // namespace condor::dataflow

#include "dataflow/executor_pool.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>

#include "common/strings.hpp"
#include "common/thread_pool.hpp"

namespace condor::dataflow {
namespace {

/// Chunks per instance the dynamic splitter aims for: enough granularity
/// that a straggler sheds load to its peers, small enough that per-chunk
/// dispatch cost (stream reopen + pipeline fill) stays amortized.
constexpr std::size_t kChunksPerInstance = 4;

std::size_t pick_chunk_size(std::size_t batch, std::size_t drivers) {
  if (drivers <= 1) {
    // A lone driver has no peers to shed load to; chunking would only
    // multiply the per-chunk reopen + pipeline-fill cost.
    return batch;
  }
  return std::max<std::size_t>(1, batch / (drivers * kChunksPerInstance));
}

}  // namespace

Status dispatch_chunks(
    std::size_t batch, std::size_t workers, std::size_t chunk_size,
    const std::function<Status(std::size_t worker, std::size_t begin,
                               std::size_t end)>& run_chunk) {
  if (batch == 0) {
    return Status::ok();
  }
  if (workers == 0 || chunk_size == 0) {
    return invalid_input("dispatch_chunks needs workers and a chunk size");
  }
  std::atomic<std::size_t> cursor{0};
  std::atomic<bool> poisoned{false};
  std::mutex error_mutex;
  Status first_error = Status::ok();

  const auto drive = [&](std::size_t worker) {
    for (;;) {
      if (poisoned.load(std::memory_order_acquire)) {
        return;
      }
      const std::size_t begin =
          cursor.fetch_add(chunk_size, std::memory_order_relaxed);
      if (begin >= batch) {
        return;
      }
      const std::size_t end = std::min(begin + chunk_size, batch);
      const Status status = run_chunk(worker, begin, end);
      if (!status.is_ok()) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (first_error.is_ok()) {
          first_error = status;
        }
        poisoned.store(true, std::memory_order_release);
        return;
      }
    }
  };

  if (workers == 1 || batch <= chunk_size) {
    drive(0);
  } else {
    // One driver thread per instance; the calling thread drives instance 0
    // so a pool of N instances costs N-1 extra threads per dispatch.
    std::vector<std::thread> drivers;
    drivers.reserve(workers - 1);
    for (std::size_t w = 1; w < workers; ++w) {
      drivers.emplace_back(drive, w);
    }
    drive(0);
    for (std::thread& driver : drivers) {
      driver.join();
    }
  }
  return first_error;
}

Result<ExecutorPool> ExecutorPool::create(hw::AcceleratorPlan plan,
                                          nn::WeightStore weights,
                                          std::size_t instances) {
  return create(std::make_shared<const hw::AcceleratorPlan>(std::move(plan)),
                std::make_shared<const nn::WeightStore>(std::move(weights)),
                instances);
}

Result<ExecutorPool> ExecutorPool::create(
    std::shared_ptr<const hw::AcceleratorPlan> plan,
    std::shared_ptr<const nn::WeightStore> weights, std::size_t instances) {
  if (instances == 0) {
    return invalid_input("executor pool needs at least one instance");
  }
  ExecutorPool pool(std::move(plan), std::move(weights));
  // All replicas run on one host-sized pool: the cooperative scheduler
  // needs no per-module worker floor, so worker demand is a property of
  // the machine, not of instances * module_count. The lane-worker cap is
  // likewise the whole budget — lanes from every replica share the same
  // workers instead of carving the budget into per-instance slices.
  pool.shared_pool_ =
      std::make_unique<ThreadPool>(std::max<std::size_t>(1, thread_budget()));
  pool.executors_.reserve(instances);
  pool.utilization_.resize(instances);
  for (std::size_t i = 0; i < instances; ++i) {
    CONDOR_ASSIGN_OR_RETURN(AcceleratorExecutor executor,
                            AcceleratorExecutor::create(pool.plan_,
                                                        pool.weights_));
    executor.set_shared_pool(pool.shared_pool_.get());
    pool.executors_.push_back(
        std::make_unique<AcceleratorExecutor>(std::move(executor)));
  }
  return pool;
}

Result<std::vector<Tensor>> ExecutorPool::run_batch(
    std::span<const Tensor> inputs) {
  const std::size_t batch = inputs.size();
  pool_stats_ = PoolRunStats{};
  pool_stats_.batch = batch;
  pool_stats_.images_per_instance.assign(executors_.size(), 0);
  if (batch == 0) {
    return std::vector<Tensor>{};
  }
  if (executors_.size() == 1) {
    pool_stats_.chunk_size = batch;
    pool_stats_.images_per_instance[0] = batch;
    const auto start = std::chrono::steady_clock::now();
    auto outputs = executors_[0]->run_batch(inputs);
    utilization_[0].busy_seconds +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    if (outputs.is_ok()) {
      utilization_[0].images += batch;
      ++utilization_[0].chunks;
    }
    return outputs;
  }

  // Drivers beyond the host's thread budget cannot run concurrently — they
  // would only time-slice one core while paying the chunking overhead
  // (smaller chunks mean more stream-reopen/pipeline-fill cycles). Cap the
  // concurrent drivers at the budget; surplus replicas simply draw no
  // chunks this batch, so N instances on a small host cost the same as the
  // largest count the host can actually parallelize.
  const std::size_t drivers = std::min(
      executors_.size(), std::max<std::size_t>(1, thread_budget()));
  const std::size_t chunk_size = pick_chunk_size(batch, drivers);
  pool_stats_.chunk_size = chunk_size;
  std::vector<Tensor> outputs(batch);
  // images_per_instance slots are written only by that instance's driver;
  // outputs[begin, end) only by the chunk's owner — no synchronization
  // needed beyond the dispatcher's join.
  std::vector<std::size_t>& census = pool_stats_.images_per_instance;
  const Status status = dispatch_chunks(
      batch, drivers, chunk_size,
      [&](std::size_t instance, std::size_t begin, std::size_t end) {
        const auto start = std::chrono::steady_clock::now();
        auto chunk_out =
            executors_[instance]->run_batch(inputs.subspan(begin, end - begin));
        utilization_[instance].busy_seconds +=
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          start)
                .count();
        if (!chunk_out.is_ok()) {
          return chunk_out.status();
        }
        std::move(chunk_out.value().begin(), chunk_out.value().end(),
                  outputs.begin() + begin);
        census[instance] += end - begin;
        utilization_[instance].images += end - begin;
        ++utilization_[instance].chunks;
        return Status::ok();
      });
  CONDOR_RETURN_IF_ERROR(status);
  return outputs;
}

}  // namespace condor::dataflow

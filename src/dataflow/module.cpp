#include "dataflow/module.hpp"

#include <coroutine>
#include <utility>

#include "common/alloc_probe.hpp"

namespace condor::dataflow {

Status Module::run(const RunContext& ctx) {
  counters_ = FireCounters{};
  // on_block/on_done stay null: every StreamBlock suspension returns control
  // to this loop, which parks the thread on the blocked stream — the
  // classical one-thread-per-module KPN execution.
  FireContext fire_ctx;
  FireContext* prev_ctx = std::exchange(active_fire_context(), &fire_ctx);
  FrameArena* prev_arena = std::exchange(active_frame_arena(), &arena_);
  Fire task = fire(ctx);
  std::coroutine_handle<> next = task.handle();
  for (;;) {
    ++counters_.fires;
    {
      // The allocation probe's zero-allocation contract covers executed
      // module code; the probe scope is thread-local RAII, so it wraps each
      // resume rather than living inside the (migratable) coroutine.
      const common::AllocProbe::Scope probe_scope;
      next.resume();
    }
    if (task.done()) {
      break;
    }
    ++counters_.blocked;
    if (fire_ctx.blocked_op == StreamOp::kRead) {
      fire_ctx.blocked_stream->wait_read_ready();
    } else {
      fire_ctx.blocked_stream->wait_write_ready();
    }
    next = fire_ctx.resume_point;
  }
  active_fire_context() = prev_ctx;
  active_frame_arena() = prev_arena;
  Status status = std::move(task.status());
  task.reset();
  return status;
}

}  // namespace condor::dataflow

#include "dataflow/join.hpp"

#include <algorithm>
#include <span>

#include "nn/layer.hpp"

namespace condor::dataflow {
namespace {

/// Reads one format word (a blob's frac_bits) from a format side-channel.
Fire read_fmt_word(Stream* stream, int& frac, const std::string& name) {
  if (stream == nullptr) {
    co_return internal_error("join '" + name + "': format stream ended early");
  }
  float word = 0.0F;
  CONDOR_CO_READ_ONE(
      *stream, word,
      internal_error("join '" + name + "': format stream ended early"));
  frac = static_cast<int>(word);
  co_return Status::ok();
}

/// The canonical fixed layer-boundary emission (see pe.cpp): one fresh
/// dynamic format over the activated value blob, the format word ahead of
/// the codes stored in float words.
Fire emit_requantized(const std::string& name, Stream& sink, Stream* fmt_sink,
                      std::span<const float> values, int total_bits,
                      std::vector<std::int32_t>& codes,
                      std::vector<float>& blob) {
  const nn::FixedPointFormat format =
      nn::quantize_span(values, total_bits, codes);
  if (fmt_sink == nullptr) {
    co_return internal_error("join '" + name + "': format sink closed");
  }
  CONDOR_CO_WRITE_ONE(
      *fmt_sink, static_cast<float>(format.frac_bits),
      internal_error("join '" + name + "': format sink closed mid-pass"));
  blob.assign(codes.begin(), codes.end());
  CONDOR_CO_WRITE_BURST(
      sink, blob, internal_error("join '" + name + "': sink closed mid-pass"));
  co_return Status::ok();
}

}  // namespace

Fire JoinModule::fire(const RunContext& ctx) {
  if (program_.passes.size() != 1) {
    co_return internal_error("join '" + name() +
                             "': program must hold exactly one pass");
  }
  const LayerPass& pass = program_.passes.front();
  if (pass.kind != PassKind::kEltwiseAdd && pass.kind != PassKind::kConcat) {
    co_return internal_error("join '" + name() + "': pass is not a join");
  }
  const std::size_t out_count = pass.output_elements();
  const std::size_t first_count = pass.input_elements();
  // Eltwise operands are congruent; concat's second operand supplies the
  // channels the first does not (build_pe_program's in_* convention).
  const std::size_t second_count = pass.kind == PassKind::kEltwiseAdd
                                       ? first_count
                                       : out_count - first_count;
  const bool fixed = nn::is_fixed_point(data_type_);
  const int bits = nn::total_bits(data_type_);

  for (std::size_t image = 0; image < ctx.batch; ++image) {
    int fa = 0;
    int fb = 0;
    if (fixed) {
      // Both operand formats arrive ahead of their blobs, so reading them
      // back-to-back cannot deadlock against either producer.
      CONDOR_CO_RETURN_IF_ERROR(co_await read_fmt_word(fmt_in0_, fa, name()));
      CONDOR_CO_RETURN_IF_ERROR(co_await read_fmt_word(fmt_in1_, fb, name()));
    }
    a_.resize(first_count);
    b_.resize(second_count);
    CONDOR_CO_READ_EXACT(
        in0_, std::span<float>(a_),
        internal_error("join '" + name() + "': operand 0 ended early"));
    CONDOR_CO_READ_EXACT(
        in1_, std::span<float>(b_),
        internal_error("join '" + name() + "': operand 1 ended early"));
    out_blob_.resize(out_count);

    if (!fixed) {
      if (pass.kind == PassKind::kEltwiseAdd) {
        for (std::size_t i = 0; i < out_count; ++i) {
          out_blob_[i] = nn::apply_activation(pass.activation, a_[i] + b_[i]);
        }
      } else {
        // forward_concat's order: both operands copied, then the joined
        // blob activated (kNone is the identity either way).
        std::copy(a_.begin(), a_.end(), out_blob_.begin());
        std::copy(b_.begin(), b_.end(), out_blob_.begin() + first_count);
        for (float& value : out_blob_) {
          value = nn::apply_activation(pass.activation, value);
        }
      }
      CONDOR_CO_WRITE_BURST(
          out_, out_blob_,
          internal_error("join '" + name() + "': sink closed mid-pass"));
      continue;
    }

    if (pass.kind == PassKind::kEltwiseAdd) {
      // fixed_eltwise_add: realign both operand codes to the finer format
      // (exact int64 shift), add, then the canonical boundary step.
      const int common = std::max(fa, fb);
      for (std::size_t i = 0; i < out_count; ++i) {
        const std::int64_t raw =
            nn::realign_code(static_cast<std::int32_t>(a_[i]), fa, common) +
            nn::realign_code(static_cast<std::int32_t>(b_[i]), fb, common);
        out_blob_[i] =
            nn::apply_activation(pass.activation, nn::dequantize_code(raw, common));
      }
    } else {
      // fixed_concat: rebuild in value space, each operand dequantized with
      // its own dynamic format, then one fresh format over the whole blob.
      for (std::size_t i = 0; i < first_count; ++i) {
        out_blob_[i] = nn::apply_activation(
            pass.activation,
            nn::dequantize_code(static_cast<std::int64_t>(a_[i]), fa));
      }
      for (std::size_t i = 0; i < second_count; ++i) {
        out_blob_[first_count + i] = nn::apply_activation(
            pass.activation,
            nn::dequantize_code(static_cast<std::int64_t>(b_[i]), fb));
      }
    }
    CONDOR_CO_RETURN_IF_ERROR(co_await emit_requantized(
        name(), out_, fmt_out_, out_blob_, bits, emit_codes_, emit_blob_));
  }
  out_.close();
  if (fmt_out_ != nullptr) {
    fmt_out_->close();
  }
  co_return Status::ok();
}

Fire BroadcastModule::fire(const RunContext& ctx) {
  const bool fixed = nn::is_fixed_point(data_type_);
  for (std::size_t image = 0; image < ctx.batch; ++image) {
    if (fixed) {
      int frac = 0;
      CONDOR_CO_RETURN_IF_ERROR(co_await read_fmt_word(fmt_in_, frac, name()));
      for (Stream* fmt_out : fmt_outs_) {
        CONDOR_CO_WRITE_ONE(
            *fmt_out, static_cast<float>(frac),
            internal_error("broadcast '" + name() +
                           "': format sink closed mid-image"));
      }
    }
    blob_.resize(blob_elements_);
    CONDOR_CO_READ_EXACT(
        in_, std::span<float>(blob_),
        internal_error("broadcast '" + name() + "': upstream ended early"));
    for (Stream* out : outs_) {
      CONDOR_CO_WRITE_BURST(
          *out, blob_,
          internal_error("broadcast '" + name() + "': sink closed mid-image"));
    }
  }
  for (Stream* out : outs_) {
    out->close();
  }
  for (Stream* fmt_out : fmt_outs_) {
    fmt_out->close();
  }
  co_return Status::ok();
}

}  // namespace condor::dataflow

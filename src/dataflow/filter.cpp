#include "dataflow/filter.hpp"

namespace condor::dataflow {

bool FilterModule::in_domain(const hw::WindowAccess& access, const LayerPass& pass,
                             std::size_t y, std::size_t x) noexcept {
  if (y < access.ky || x < access.kx) {
    return false;
  }
  const std::size_t ry = y - access.ky;
  const std::size_t rx = x - access.kx;
  if (ry % pass.stride != 0 || rx % pass.stride != 0) {
    return false;
  }
  return ry / pass.stride < pass.out_h && rx / pass.stride < pass.out_w;
}

Fire FilterModule::fire(const RunContext& ctx) {
  // Row/match staging lives in members that persist across images and
  // run_batch calls; after a warmup batch the loop never allocates.
  std::vector<float>& row = row_;
  std::vector<float>& matched = matched_;
  std::vector<std::size_t>& match_cols = match_cols_;
  for (std::size_t image = 0; image < ctx.batch; ++image) {
    for (const LayerPass& pass : program_.passes) {
      if (pass.kind == PassKind::kInnerProduct) {
        continue;  // classifier passes bypass the memory subsystem
      }
      // Conditional for fused layers with a smaller window: this access
      // point is outside the active window, so the filter only forwards.
      const bool active =
          access_.ky < pass.window_h && access_.kx < pass.window_w;
      // The column part of the domain inequalities is row-invariant:
      // precompute the matching x positions once per pass.
      match_cols.clear();
      if (active) {
        for (std::size_t x = access_.kx; x < pass.in_w; ++x) {
          const std::size_t rx = x - access_.kx;
          if (rx % pass.stride == 0 && rx / pass.stride < pass.out_w) {
            match_cols.push_back(x);
          }
        }
      }
      row.resize(pass.in_w);
      matched.reserve(match_cols.size());
      for (std::size_t c = lane_; c < pass.in_channels; c += lane_count_) {
        for (std::size_t y = 0; y < pass.in_h; ++y) {
          CONDOR_CO_READ_EXACT(
              upstream_, std::span<float>(row),
              internal_error("filter '" + name() + "': upstream ended mid-pass"));
          const bool row_matches =
              active && y >= access_.ky &&
              (y - access_.ky) % pass.stride == 0 &&
              (y - access_.ky) / pass.stride < pass.out_h;
          if (row_matches && !match_cols.empty()) {
            matched.clear();
            for (const std::size_t x : match_cols) {
              matched.push_back(row[x]);
            }
            CONDOR_CO_WRITE_BURST(
                to_pe_, matched,
                internal_error("filter '" + name() + "': PE port closed mid-pass"));
          }
          if (downstream_ != nullptr) {
            CONDOR_CO_WRITE_BURST(
                *downstream_, row,
                internal_error("filter '" + name() +
                               "': downstream closed mid-pass"));
          }
        }
      }
    }
  }
  to_pe_.close();
  if (downstream_ != nullptr) {
    downstream_->close();
  }
  co_return Status::ok();
}

Fire SourceMuxModule::fire(const RunContext& ctx) {
  std::vector<float>& row = row_;
  for (std::size_t image = 0; image < ctx.batch; ++image) {
    for (std::size_t pi = 0; pi < program_.passes.size(); ++pi) {
      const LayerPass& pass = program_.passes[pi];
      if (pass.kind == PassKind::kInnerProduct) {
        continue;
      }
      Stream* source = pi == 0 ? &external_ : loopback_;
      if (source == nullptr) {
        co_return internal_error("mux '" + name() + "': missing loopback stream");
      }
      const std::size_t inner_h = pass.in_h - 2 * pass.pad;
      const std::size_t inner_w = pass.in_w - 2 * pass.pad;
      row.assign(pass.in_w, 0.0F);
      for (std::size_t c = 0; c < pass.in_channels; ++c) {
        Stream& out = *outs_[c % outs_.size()];
        for (std::size_t y = 0; y < pass.in_h; ++y) {
          const bool border_row = y < pass.pad || y >= pass.pad + inner_h;
          if (border_row) {
            std::fill(row.begin(), row.end(), 0.0F);
          } else {
            // Zero padding is inserted at the chain entrance: the row is
            // border zeros around a burst-read interior segment.
            std::fill_n(row.begin(), pass.pad, 0.0F);
            std::fill(row.begin() + static_cast<std::ptrdiff_t>(pass.pad + inner_w),
                      row.end(), 0.0F);
            const std::span<float> interior =
                std::span<float>(row).subspan(pass.pad, inner_w);
            CONDOR_CO_READ_EXACT(
                *source, interior,
                internal_error("mux '" + name() + "': source ended mid-pass"));
          }
          CONDOR_CO_WRITE_BURST(
              out, row,
              internal_error("mux '" + name() + "': chain closed mid-pass"));
        }
      }
    }
  }
  for (Stream* out : outs_) {
    out->close();
  }
  co_return Status::ok();
}

}  // namespace condor::dataflow

#include "dataflow/filter.hpp"

namespace condor::dataflow {

bool FilterModule::in_domain(const hw::WindowAccess& access, const LayerPass& pass,
                             std::size_t y, std::size_t x) noexcept {
  if (y < access.ky || x < access.kx) {
    return false;
  }
  const std::size_t ry = y - access.ky;
  const std::size_t rx = x - access.kx;
  if (ry % pass.stride != 0 || rx % pass.stride != 0) {
    return false;
  }
  return ry / pass.stride < pass.out_h && rx / pass.stride < pass.out_w;
}

Status FilterModule::run() {
  for (std::size_t image = 0; image < batch_; ++image) {
    for (const LayerPass& pass : program_.passes) {
      if (pass.kind == PassKind::kInnerProduct) {
        continue;  // classifier passes bypass the memory subsystem
      }
      // Conditional for fused layers with a smaller window: this access
      // point is outside the active window, so the filter only forwards.
      const bool active =
          access_.ky < pass.window_h && access_.kx < pass.window_w;
      for (std::size_t c = lane_; c < pass.in_channels; c += lane_count_) {
        for (std::size_t y = 0; y < pass.in_h; ++y) {
          for (std::size_t x = 0; x < pass.in_w; ++x) {
            float value = 0.0F;
            if (!upstream_.read(value)) {
              return internal_error("filter '" + name() +
                                    "': upstream ended mid-pass");
            }
            if (active && in_domain(access_, pass, y, x)) {
              to_pe_.write(value);
            }
            if (downstream_ != nullptr) {
              downstream_->write(value);
            }
          }
        }
      }
    }
  }
  to_pe_.close();
  if (downstream_ != nullptr) {
    downstream_->close();
  }
  return Status::ok();
}

Status SourceMuxModule::run() {
  for (std::size_t image = 0; image < batch_; ++image) {
    for (std::size_t pi = 0; pi < program_.passes.size(); ++pi) {
      const LayerPass& pass = program_.passes[pi];
      if (pass.kind == PassKind::kInnerProduct) {
        continue;
      }
      Stream* source = pi == 0 ? &external_ : loopback_;
      if (source == nullptr) {
        return internal_error("mux '" + name() + "': missing loopback stream");
      }
      const std::size_t inner_h = pass.in_h - 2 * pass.pad;
      const std::size_t inner_w = pass.in_w - 2 * pass.pad;
      for (std::size_t c = 0; c < pass.in_channels; ++c) {
        Stream& out = *outs_[c % outs_.size()];
        for (std::size_t y = 0; y < pass.in_h; ++y) {
          for (std::size_t x = 0; x < pass.in_w; ++x) {
            const bool border = y < pass.pad || x < pass.pad ||
                                y >= pass.pad + inner_h || x >= pass.pad + inner_w;
            if (border) {
              out.write(0.0F);  // zero padding inserted at the chain entrance
              continue;
            }
            float value = 0.0F;
            if (!source->read(value)) {
              return internal_error("mux '" + name() + "': source ended mid-pass");
            }
            out.write(value);
          }
        }
      }
    }
  }
  for (Stream* out : outs_) {
    out->close();
  }
  return Status::ok();
}

}  // namespace condor::dataflow

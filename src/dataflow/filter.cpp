#include "dataflow/filter.hpp"

#include <algorithm>

namespace condor::dataflow {

bool FilterModule::in_domain(const hw::WindowAccess& access, const LayerPass& pass,
                             std::size_t y, std::size_t x) noexcept {
  if (y < access.ky || x < access.kx) {
    return false;
  }
  const std::size_t ry = y - access.ky;
  const std::size_t rx = x - access.kx;
  if (ry % pass.stride != 0 || rx % pass.stride != 0) {
    return false;
  }
  return ry / pass.stride < pass.out_h && rx / pass.stride < pass.out_w;
}

Fire FilterModule::fire(const RunContext& ctx) {
  // Map/match staging lives in members that persist across images and
  // run_batch calls; after a warmup batch the loop never allocates.
  for (std::size_t image = 0; image < ctx.batch; ++image) {
    for (std::size_t pi = 0; pi < program_.passes.size(); ++pi) {
      const LayerPass& pass = program_.passes[pi];
      if (pass.kind == PassKind::kInnerProduct) {
        continue;  // classifier passes bypass the memory subsystem
      }
      if (program_.fused_local && pi > 0) {
        // Fused-pass fast path: intermediates stay inside the PE, which
        // gathers its own window stripes — nothing flows down the chain.
        continue;
      }
      // Conditional for fused layers with a smaller window: this access
      // point is outside the active window, so the filter only forwards.
      const bool active =
          access_.ky < pass.window_h && access_.kx < pass.window_w;
      // The column part of the domain inequalities is row-invariant:
      // precompute the matching x positions once per pass.
      match_cols_.clear();
      if (active) {
        for (std::size_t x = access_.kx; x < pass.in_w; ++x) {
          const std::size_t rx = x - access_.kx;
          if (rx % pass.stride == 0 && rx / pass.stride < pass.out_w) {
            match_cols_.push_back(x);
          }
        }
      }
      map_.resize(pass.in_h * pass.in_w);
      for (std::size_t c = lane_; c < pass.in_channels; c += lane_count_) {
        // One exact read per map: the filter privately buffers the whole
        // channel, so the chain's progress never depends on the PE's port
        // consumption order (see the forwarding note below).
        CONDOR_CO_READ_EXACT(
            upstream_, std::span<float>(map_),
            internal_error("filter '" + name() + "': upstream ended mid-pass"));
        matched_.clear();
        if (active && !match_cols_.empty()) {
          for (std::size_t y = access_.ky; y < pass.in_h; ++y) {
            const std::size_t ry = y - access_.ky;
            if (ry % pass.stride != 0 || ry / pass.stride >= pass.out_h) {
              continue;
            }
            const float* row = map_.data() + y * pass.in_w;
            for (const std::size_t x : match_cols_) {
              matched_.push_back(row[x]);
            }
          }
        }
        // Forward the map BEFORE the port write. The PE drains ports in
        // ascending (ky, kx) tap order while the chain runs in inverse
        // access order, so a filter that blocked on its port first could
        // starve the later-chain filters whose taps the PE wants earlier.
        // Forward-first keeps the chain live at any FIFO capacity: every
        // filter gets its private copy of the map, and each pending port
        // burst drains when the PE reaches that tap.
        if (downstream_ != nullptr) {
          CONDOR_CO_WRITE_BURST(
              *downstream_, map_,
              internal_error("filter '" + name() +
                             "': downstream closed mid-pass"));
        }
        if (!matched_.empty()) {
          CONDOR_CO_WRITE_BURST(
              to_pe_, matched_,
              internal_error("filter '" + name() + "': PE port closed mid-pass"));
        }
      }
    }
  }
  to_pe_.close();
  if (downstream_ != nullptr) {
    downstream_->close();
  }
  co_return Status::ok();
}

Fire SourceMuxModule::fire(const RunContext& ctx) {
  for (std::size_t image = 0; image < ctx.batch; ++image) {
    for (std::size_t pi = 0; pi < program_.passes.size(); ++pi) {
      const LayerPass& pass = program_.passes[pi];
      if (pass.kind == PassKind::kInnerProduct) {
        continue;
      }
      if (program_.fused_local && pi > 0) {
        continue;  // fused intermediates never re-enter the chain
      }
      Stream* source = pi == 0 ? &external_ : loopback_;
      if (source == nullptr) {
        co_return internal_error("mux '" + name() + "': missing loopback stream");
      }
      const std::size_t inner_h = pass.in_h - 2 * pass.pad;
      const std::size_t inner_w = pass.in_w - 2 * pass.pad;
      // Zero padding is inserted at the chain entrance: the padded map is
      // border zeros around the burst-read interior. The border cells are
      // written once per pass (the per-channel scatter only touches the
      // interior), and the whole padded map leaves in one burst.
      map_.assign(pass.in_h * pass.in_w, 0.0F);
      for (std::size_t c = 0; c < pass.in_channels; ++c) {
        Stream& out = *outs_[c % outs_.size()];
        if (pass.pad == 0) {
          CONDOR_CO_READ_EXACT(
              *source, std::span<float>(map_),
              internal_error("mux '" + name() + "': source ended mid-pass"));
        } else {
          interior_.resize(inner_h * inner_w);
          CONDOR_CO_READ_EXACT(
              *source, std::span<float>(interior_),
              internal_error("mux '" + name() + "': source ended mid-pass"));
          for (std::size_t iy = 0; iy < inner_h; ++iy) {
            std::copy_n(interior_.data() + iy * inner_w, inner_w,
                        map_.data() + (pass.pad + iy) * pass.in_w + pass.pad);
          }
        }
        CONDOR_CO_WRITE_BURST(
            out, map_,
            internal_error("mux '" + name() + "': chain closed mid-pass"));
      }
    }
  }
  for (Stream* out : outs_) {
    out->close();
  }
  co_return Status::ok();
}

}  // namespace condor::dataflow

// Actor base class for dataflow modules (filters, PEs, datamover halves).
//
// Each module runs as one worker task (the KPN execution of the spatial
// design) and communicates exclusively through Fifo channels, mirroring the
// independent always-running hardware blocks of the accelerator. Per-run
// parameters (the batch and its input tensors) arrive through RunContext so
// the same module graph can be re-executed batch after batch without being
// rebuilt.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "tensor/tensor.hpp"

namespace condor::dataflow {

/// Per-run parameters shared by every module of one graph execution.
struct RunContext {
  std::size_t batch = 0;             ///< images in this run
  std::span<const Tensor> inputs;    ///< batch inputs (datamover); a view so
                                     ///< shard dispatchers can hand each
                                     ///< instance a sub-range without copying
};

class Module {
 public:
  explicit Module(std::string name) : name_(std::move(name)) {}
  virtual ~Module() = default;

  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  /// The module body: consume inputs, produce outputs, return when the
  /// configured workload (the context's batch of images) is complete. An
  /// error status aborts the whole graph run.
  virtual Status run(const RunContext& ctx) = 0;

  [[nodiscard]] const std::string& name() const noexcept { return name_; }

 private:
  std::string name_;
};

}  // namespace condor::dataflow

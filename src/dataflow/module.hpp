// Actor base class for dataflow modules (filters, PEs, datamover halves).
//
// Each module's body is a resumable coroutine (`fire`, returning Fire) that
// communicates exclusively through Fifo channels, mirroring the independent
// always-running hardware blocks of the accelerator. Bodies execute under
// the cooperative readiness-driven scheduler in Graph::run (any worker
// count, including 1). Per-run parameters (the batch and its input tensors)
// arrive through RunContext so the same module graph can be re-executed
// batch after batch without being rebuilt.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "dataflow/fire.hpp"
#include "tensor/tensor.hpp"

namespace condor::dataflow {

/// Cross-module telemetry for one graph execution. The datamover halves
/// that frame images bump these counters — the source after pushing each
/// image into the graph, the sink after collecting each output blob — so a
/// run can prove how deeply consecutive images overlapped in the pipeline.
/// The high-water mark is of `injected - retired` sampled at each
/// injection; the sink's counter is read with acquire semantics, so a
/// momentarily stale (low) value can only over-report in-flight depth by
/// images that retired during the sample, never under-report it.
struct RunTelemetry {
  std::atomic<std::uint64_t> images_injected{0};
  std::atomic<std::uint64_t> images_retired{0};
  std::atomic<std::uint64_t> images_in_flight_hwm{0};

  void reset() noexcept {
    images_injected.store(0, std::memory_order_relaxed);
    images_retired.store(0, std::memory_order_relaxed);
    images_in_flight_hwm.store(0, std::memory_order_relaxed);
  }

  void on_image_injected() noexcept {
    const std::uint64_t injected =
        images_injected.fetch_add(1, std::memory_order_acq_rel) + 1;
    const std::uint64_t in_flight =
        injected - images_retired.load(std::memory_order_acquire);
    std::uint64_t hwm = images_in_flight_hwm.load(std::memory_order_relaxed);
    while (in_flight > hwm &&
           !images_in_flight_hwm.compare_exchange_weak(
               hwm, in_flight, std::memory_order_relaxed)) {
    }
  }

  void on_image_retired() noexcept {
    images_retired.fetch_add(1, std::memory_order_acq_rel);
  }
};

/// Per-run parameters shared by every module of one graph execution.
struct RunContext {
  std::size_t batch = 0;             ///< images in this run
  std::span<const Tensor> inputs;    ///< batch inputs (datamover); a view so
                                     ///< shard dispatchers can hand each
                                     ///< instance a sub-range without copying
  RunTelemetry* telemetry = nullptr; ///< optional image-framing counters
};

class Module {
 public:
  /// Scheduler-maintained execution counters for one run: how often the
  /// module was fired (resumed) and how often it suspended on a stream.
  /// Maintained by the scheduler driving the module (module execution is
  /// serialized, so plain integers suffice).
  struct FireCounters {
    std::uint64_t fires = 0;
    std::uint64_t blocked = 0;
  };

  explicit Module(std::string name) : name_(std::move(name)) {}
  virtual ~Module() = default;

  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  /// The module body: a coroutine that consumes inputs, produces outputs,
  /// and co_returns when the configured workload (the context's batch of
  /// images) is complete. Stream accesses go through the CONDOR_CO_* macros
  /// so the body suspends — instead of parking — when a FIFO would block.
  /// An error status aborts the whole graph run.
  virtual Fire fire(const RunContext& ctx) = 0;

  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  /// The arena this module's coroutine frames are recycled through.
  [[nodiscard]] FrameArena& frame_arena() noexcept { return arena_; }
  [[nodiscard]] FireCounters& counters() noexcept { return counters_; }
  [[nodiscard]] const FireCounters& counters() const noexcept {
    return counters_;
  }

 private:
  std::string name_;
  FrameArena arena_;
  FireCounters counters_;
};

}  // namespace condor::dataflow

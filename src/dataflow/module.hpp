// Actor base class for dataflow modules (filters, PEs, datamover halves).
//
// Each module runs as one thread (the KPN execution of the spatial design)
// and communicates exclusively through Fifo channels, mirroring the
// independent always-running hardware blocks of the accelerator.
#pragma once

#include <string>

#include "common/status.hpp"

namespace condor::dataflow {

class Module {
 public:
  explicit Module(std::string name) : name_(std::move(name)) {}
  virtual ~Module() = default;

  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  /// The module body: consume inputs, produce outputs, return when the
  /// configured workload (batch of images) is complete. An error status
  /// aborts the whole graph run.
  virtual Status run() = 0;

  [[nodiscard]] const std::string& name() const noexcept { return name_; }

 private:
  std::string name_;
};

}  // namespace condor::dataflow

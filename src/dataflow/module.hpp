// Actor base class for dataflow modules (filters, PEs, datamover halves).
//
// Each module's body is a resumable coroutine (`fire`, returning Fire) that
// communicates exclusively through Fifo channels, mirroring the independent
// always-running hardware blocks of the accelerator. The same body executes
// under two drivers: the cooperative readiness-driven scheduler in
// Graph::run (default — any worker count), or the blocking `run` driver
// below, which parks the calling thread at every suspension and so
// reproduces the historical thread-per-module KPN execution. Per-run
// parameters (the batch and its input tensors) arrive through RunContext so
// the same module graph can be re-executed batch after batch without being
// rebuilt.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "dataflow/fire.hpp"
#include "tensor/tensor.hpp"

namespace condor::dataflow {

/// Per-run parameters shared by every module of one graph execution.
struct RunContext {
  std::size_t batch = 0;             ///< images in this run
  std::span<const Tensor> inputs;    ///< batch inputs (datamover); a view so
                                     ///< shard dispatchers can hand each
                                     ///< instance a sub-range without copying
};

class Module {
 public:
  /// Scheduler-maintained execution counters for one run: how often the
  /// module was fired (resumed) and how often it suspended on a stream.
  /// Maintained by whichever driver executes the module (module execution
  /// is serialized, so plain integers suffice).
  struct FireCounters {
    std::uint64_t fires = 0;
    std::uint64_t blocked = 0;
  };

  explicit Module(std::string name) : name_(std::move(name)) {}
  virtual ~Module() = default;

  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  /// The module body: a coroutine that consumes inputs, produces outputs,
  /// and co_returns when the configured workload (the context's batch of
  /// images) is complete. Stream accesses go through the CONDOR_CO_* macros
  /// so the body suspends — instead of parking — when a FIFO would block.
  /// An error status aborts the whole graph run.
  virtual Fire fire(const RunContext& ctx) = 0;

  /// Blocking driver: executes fire() to completion on the calling thread,
  /// parking on the blocked stream between resumes (thread-per-module KPN
  /// mode, selectable via CONDOR_SCHED=threads).
  Status run(const RunContext& ctx);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  /// The arena this module's coroutine frames are recycled through.
  [[nodiscard]] FrameArena& frame_arena() noexcept { return arena_; }
  [[nodiscard]] FireCounters& counters() noexcept { return counters_; }
  [[nodiscard]] const FireCounters& counters() const noexcept {
    return counters_;
  }

 private:
  std::string name_;
  FrameArena arena_;
  FireCounters counters_;
};

}  // namespace condor::dataflow

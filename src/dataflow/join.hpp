// DAG glue modules: the two-input join PE and the stream fan-out.
//
// JoinModule executes a kJoin PE (hw/accel_plan.hpp): exactly one
// eltwise-add or concat pass over two operand streams, framed per image.
// The operands arrive on ports 0 and 1 in the layer's `inputs` order. The
// float path mirrors nn::reference (add then activation; concat copies
// first/second then activates the joined blob). The fixed path mirrors
// nn::fixed_eltwise_add / nn::fixed_concat exactly: eltwise realigns both
// operand codes to the finer of the two dynamic formats (an exact int64
// shift), adds, and runs the canonical dequantize→activate→requantize
// boundary step; concat rebuilds the joined blob in value space — each
// operand dequantized with its own format — and requantizes the whole blob
// with one fresh format. Either way the output format word leaves on the
// format side-channel BEFORE the blob of codes, like every other producer.
//
// BroadcastModule fans one producer stream out to every consumer edge of a
// DAG node with multiple readers (the skip connection of a residual block):
// per image it stages the blob once and bursts a private copy to each
// consumer (the format word, when fixed, is replicated first). In hardware
// this is a stream duplicator — pure wiring; here it also decouples the
// consumers' back-pressure from each other up to the edge FIFO capacities.
//
// Both modules follow the zero-allocation steady-state contract of
// dataflow/pe.hpp: all per-image scratch lives in members that persist
// across images and run_batch calls.
#pragma once

#include <cstdint>
#include <vector>

#include "dataflow/fifo.hpp"
#include "dataflow/module.hpp"
#include "dataflow/program.hpp"
#include "nn/numeric.hpp"

namespace condor::dataflow {

class JoinModule final : public Module {
 public:
  /// `program` must hold exactly one kEltwiseAdd / kConcat pass. `in0` /
  /// `in1` carry the operands in the layer's `inputs` order; `fmt_in0` /
  /// `fmt_in1` / `fmt_out` are the per-edge format side-channels of a fixed
  /// `data_type` (null on the float32 datapath).
  JoinModule(std::string name, const PeProgram& program, Stream& in0,
             Stream& in1, Stream& out,
             nn::DataType data_type = nn::DataType::kFloat32,
             Stream* fmt_in0 = nullptr, Stream* fmt_in1 = nullptr,
             Stream* fmt_out = nullptr)
      : Module(std::move(name)),
        program_(program),
        data_type_(data_type),
        in0_(in0),
        in1_(in1),
        out_(out),
        fmt_in0_(fmt_in0),
        fmt_in1_(fmt_in1),
        fmt_out_(fmt_out) {}

  Fire fire(const RunContext& ctx) override;

 private:
  const PeProgram& program_;
  nn::DataType data_type_;
  Stream& in0_;
  Stream& in1_;
  Stream& out_;
  Stream* fmt_in0_;
  Stream* fmt_in1_;
  Stream* fmt_out_;

  // --- steady-state scratch arena (see dataflow/pe.hpp) -------------------
  std::vector<float> a_;                  ///< first operand blob
  std::vector<float> b_;                  ///< second operand blob
  std::vector<float> out_blob_;           ///< joined values
  std::vector<std::int32_t> emit_codes_;  ///< fixed: requantize scratch
  std::vector<float> emit_blob_;
};

class BroadcastModule final : public Module {
 public:
  /// Replicates `blob_elements` words per image from `in` to every stream
  /// in `outs` (and the format word from `fmt_in` to every `fmt_outs`
  /// stream when the datapath is fixed).
  BroadcastModule(std::string name, std::size_t blob_elements, Stream& in,
                  std::vector<Stream*> outs,
                  nn::DataType data_type = nn::DataType::kFloat32,
                  Stream* fmt_in = nullptr,
                  std::vector<Stream*> fmt_outs = {})
      : Module(std::move(name)),
        blob_elements_(blob_elements),
        data_type_(data_type),
        in_(in),
        outs_(std::move(outs)),
        fmt_in_(fmt_in),
        fmt_outs_(std::move(fmt_outs)) {}

  Fire fire(const RunContext& ctx) override;

 private:
  std::size_t blob_elements_;
  nn::DataType data_type_;
  Stream& in_;
  std::vector<Stream*> outs_;
  Stream* fmt_in_;
  std::vector<Stream*> fmt_outs_;

  std::vector<float> blob_;  ///< per-image staging (steady-state member)
};

}  // namespace condor::dataflow

#include "dataflow/program.hpp"

#include <algorithm>

#include "common/strings.hpp"

namespace condor::dataflow {

std::size_t PeProgram::external_input_elements() const noexcept {
  if (passes.empty()) {
    return 0;
  }
  const LayerPass& first = passes.front();
  // Unpadded: the mux inserts the border itself.
  return first.in_channels * (first.in_h - 2 * first.pad) *
         (first.in_w - 2 * first.pad);
}

std::size_t PeProgram::weight_stream_elements() const noexcept {
  std::size_t total = 0;
  for (const LayerPass& pass : passes) {
    if (pass.params == nullptr) {
      continue;
    }
    total += pass.params->weights.size() + pass.params->bias.size();
  }
  return total;
}

std::size_t PeProgram::max_loopback_elements() const noexcept {
  std::size_t max_elements = 0;
  for (std::size_t i = 0; i + 1 < passes.size(); ++i) {
    max_elements = std::max(max_elements, passes[i].output_elements());
  }
  return max_elements;
}

Result<PeProgram> build_pe_program(const hw::AcceleratorPlan& plan,
                                   std::size_t pe_index,
                                   const nn::WeightStore& weights) {
  const hw::PePlan& pe = plan.pes[pe_index];
  CONDOR_ASSIGN_OR_RETURN(auto shapes, plan.source.net.infer_shapes());
  const auto& layers = plan.source.net.layers();

  PeProgram program;
  for (const std::size_t index : pe.layer_indices) {
    const nn::LayerSpec& layer = layers[index];
    const Shape& in = shapes[index].input;
    const Shape& out = shapes[index].output;
    LayerPass pass;
    pass.activation = layer.activation;
    switch (layer.kind) {
      case nn::LayerKind::kConvolution:
        pass.kind = PassKind::kConvolution;
        pass.in_channels = in[0];
        pass.pad = layer.pad;
        pass.in_h = in[1] + 2 * layer.pad;
        pass.in_w = in[2] + 2 * layer.pad;
        pass.window_h = layer.kernel_h;
        pass.window_w = layer.kernel_w;
        pass.stride = layer.stride;
        pass.out_channels = out[0];
        pass.out_h = out[1];
        pass.out_w = out[2];
        pass.has_bias = layer.has_bias;
        pass.params = weights.find(layer.name);
        if (pass.params == nullptr) {
          return not_found("no weights for layer '" + layer.name + "'");
        }
        break;
      case nn::LayerKind::kPooling:
        pass.kind = PassKind::kPooling;
        pass.in_channels = in[0];
        pass.in_h = in[1];
        pass.in_w = in[2];
        pass.window_h = layer.kernel_h;
        pass.window_w = layer.kernel_w;
        pass.stride = layer.stride;
        pass.out_channels = out[0];
        pass.out_h = out[1];
        pass.out_w = out[2];
        pass.pool_method = layer.pool_method;
        break;
      case nn::LayerKind::kActivation:
        // Element-wise pass: a 1x1 window over whatever shape precedes.
        pass.kind = PassKind::kElementwise;
        if (in.rank() == 3) {
          pass.in_channels = in[0];
          pass.in_h = in[1];
          pass.in_w = in[2];
        } else {
          pass.in_channels = 1;
          pass.in_h = 1;
          pass.in_w = in.element_count();
        }
        pass.out_channels = pass.in_channels;
        pass.out_h = pass.in_h;
        pass.out_w = pass.in_w;
        break;
      case nn::LayerKind::kEltwiseAdd:
      case nn::LayerKind::kConcat:
        // Two-input join: in_* describes the FIRST operand (the shape
        // inference convention); the second operand's element count is
        // output - first for concat and equals the first for eltwise-add.
        pass.kind = layer.kind == nn::LayerKind::kEltwiseAdd
                        ? PassKind::kEltwiseAdd
                        : PassKind::kConcat;
        pass.in_channels = in[0];
        pass.in_h = in[1];
        pass.in_w = in[2];
        pass.out_channels = out[0];
        pass.out_h = out[1];
        pass.out_w = out[2];
        break;
      case nn::LayerKind::kUpsample:
        // Nearest-neighbour replication: a 1x1 window walked at stride 1
        // (so the filter chain passes every element through) with the
        // replication factor carried separately in `scale`.
        pass.kind = PassKind::kUpsample;
        pass.in_channels = in[0];
        pass.in_h = in[1];
        pass.in_w = in[2];
        pass.scale = layer.stride;
        pass.out_channels = out[0];
        pass.out_h = out[1];
        pass.out_w = out[2];
        break;
      case nn::LayerKind::kInnerProduct:
        pass.kind = PassKind::kInnerProduct;
        pass.in_channels = 1;
        pass.in_h = 1;
        pass.in_w = in.element_count();
        pass.out_channels = 1;
        pass.out_h = 1;
        pass.out_w = out.element_count();
        pass.has_bias = layer.has_bias;
        pass.params = weights.find(layer.name);
        if (pass.params == nullptr) {
          return not_found("no weights for layer '" + layer.name + "'");
        }
        break;
      default:
        return internal_error(strings::format(
            "layer '%s' of kind %s cannot be scheduled on a PE",
            layer.name.c_str(), std::string(nn::to_string(layer.kind)).c_str()));
    }
    program.passes.push_back(pass);
  }
  return program;
}

}  // namespace condor::dataflow

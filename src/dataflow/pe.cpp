#include "dataflow/pe.hpp"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <utility>

#include "common/alloc_probe.hpp"
#include "nn/kernels.hpp"
#include "nn/layer.hpp"

namespace condor::dataflow {
namespace {

/// Drains `count` elements from a weight stream into `buffer`. A nested
/// firing: the caller co_awaits it, so a dry stream suspends the whole
/// module firing at this read.
Fire read_weights(Stream* stream, std::size_t count, std::vector<float>& buffer,
                  const std::string& pe_name) {
  buffer.resize(count);
  if (stream == nullptr) {
    co_return internal_error("PE '" + pe_name + "': weight stream ended early");
  }
  CONDOR_CO_READ_EXACT(
      *stream, std::span<float>(buffer),
      internal_error("PE '" + pe_name + "': weight stream ended early"));
  co_return Status::ok();
}

/// Reads one format word (a blob's frac_bits) from a format side-channel.
Fire read_fmt_word(Stream* stream, int& frac, const std::string& pe_name) {
  if (stream == nullptr) {
    co_return internal_error("PE '" + pe_name + "': format stream ended early");
  }
  float word = 0.0F;
  CONDOR_CO_READ_ONE(
      *stream, word,
      internal_error("PE '" + pe_name + "': format stream ended early"));
  frac = static_cast<int>(word);
  co_return Status::ok();
}

/// The canonical fixed layer-boundary step (mirrors the QuantizedEngine's
/// requantize_layer_output): chooses a fresh dynamic format for the full
/// activated float blob, quantizes to codes, and emits — format word first
/// (when this edge has a format side-channel; fused intermediates keep the
/// format in a PE-local variable instead), then the codes stored in float
/// words. A local sink (fused-pass fast path) takes the identical
/// codes-as-floats sequence without any FIFO transaction. `codes` / `blob`
/// are caller-owned scratch (module members) so the steady state stays off
/// the heap.
Fire emit_requantized(const std::string& pe_name, PassSink sink,
                      Stream* fmt_sink, std::span<const float> values,
                      int total_bits, int& out_frac,
                      std::vector<std::int32_t>& codes,
                      std::vector<float>& blob) {
  const nn::FixedPointFormat format =
      nn::quantize_span(values, total_bits, codes);
  out_frac = format.frac_bits;
  if (sink.local != nullptr) {
    sink.local->insert(sink.local->end(), codes.begin(), codes.end());
    co_return Status::ok();
  }
  if (fmt_sink != nullptr) {
    CONDOR_CO_WRITE_ONE(
        *fmt_sink, static_cast<float>(format.frac_bits),
        internal_error("PE '" + pe_name + "': format sink closed mid-pass"));
  }
  blob.assign(codes.begin(), codes.end());
  CONDOR_CO_WRITE_BURST(
      *sink.stream, blob,
      internal_error("PE '" + pe_name + "': sink closed mid-pass"));
  co_return Status::ok();
}

/// Routes one float pass-output blob to its sink: appended to the PE-local
/// fused buffer (fast path — no FIFO transaction) or burst-written to the
/// stream. Append semantics match the per-channel burst sites (pooling,
/// element-wise), so the local buffer accumulates the exact stream byte
/// sequence.
Fire write_blob(const std::string& pe_name, PassSink sink,
                const std::vector<float>& blob) {
  if (sink.local != nullptr) {
    sink.local->insert(sink.local->end(), blob.begin(), blob.end());
    co_return Status::ok();
  }
  CONDOR_CO_WRITE_BURST(
      *sink.stream, blob,
      internal_error("PE '" + pe_name + "': sink closed mid-pass"));
  co_return Status::ok();
}

/// Casts a blob of code-carrying float words back to integer codes (codes
/// fit 16 bits, so the float representation is exact).
void codes_from_floats(std::span<const float> words,
                       std::vector<std::int32_t>& codes) {
  codes.resize(words.size());
  for (std::size_t i = 0; i < words.size(); ++i) {
    codes[i] = static_cast<std::int32_t>(words[i]);
  }
}

/// Executes fn(lane) for each of `lanes` compute lanes: inline when there is
/// a single lane or no pool, fork-joined on the pool otherwise
/// (parallel_shards is safe to call from inside a module task). Templated on
/// the callable so the inline single-lane path never materializes a
/// std::function (which would heap-allocate per pass); only the actual
/// fork-join submission pays that cost.
template <typename Fn>
void run_lanes(ThreadPool* pool, std::size_t lanes, const Fn& fn) {
  if (lanes <= 1 || pool == nullptr) {
    for (std::size_t lane = 0; lane < lanes; ++lane) {
      fn(lane);
    }
    return;
  }
  // The fork itself heap-allocates (type-erased tasks + shared join state
  // owned by the pool) — pool plumbing, not module scratch, so it is
  // excluded from the steady-state allocation probe. The lane bodies run
  // on worker threads outside the probed scope either way.
  const common::AllocProbe::Pause pause;
  pool->parallel_shards(lanes, fn);
}

/// Contiguous output-channel slice [begin, end) owned by `lane` out of
/// `lanes` over `total` channels (ceil-chunked, robust to non-divisors and
/// lanes > total).
struct OcSlice {
  std::size_t begin = 0;
  std::size_t end = 0;
  [[nodiscard]] std::size_t width() const noexcept { return end - begin; }
};

OcSlice oc_slice(std::size_t total, std::size_t lanes, std::size_t lane) {
  const std::size_t chunk = (total + lanes - 1) / lanes;
  const std::size_t begin = std::min(total, lane * chunk);
  return {begin, std::min(total, begin + chunk)};
}

}  // namespace

Fire FeaturePeModule::fire(const RunContext& ctx) {
  const bool fixed = nn::is_fixed_point(data_type_);
  weight_cache_.resize(program_.passes.size());
  // One-time weight latch (paper §3.2: the full set streams from on-board
  // memory once, then stays chip-resident): the datamover's single load is
  // drained and derived into the per-pass caches before the first image.
  // Warm runs find every cache ready and skip the stream entirely.
  CONDOR_CO_RETURN_IF_ERROR(co_await latch_resident_weights());
  for (std::size_t image = 0; image < ctx.batch; ++image) {
    int frac = 0;
    if (fixed) {
      // The upstream producer announces the image blob's dynamic format
      // ahead of the blob data.
      CONDOR_CO_RETURN_IF_ERROR(co_await read_fmt_word(fmt_in_, frac, name()));
    }
    for (std::size_t pi = 0; pi < program_.passes.size(); ++pi) {
      const LayerPass& pass = program_.passes[pi];
      const bool last = pi + 1 == program_.passes.size();
      PassSink sink;
      if (last) {
        sink.stream = &out_;
      } else if (program_.fused_local) {
        // Fast path: the intermediate blob stays on chip, accumulating the
        // exact byte sequence the loopback round-trip would carry. clear()
        // keeps the high-water capacity (zero-allocation warm state).
        fused_next_.clear();
        sink.local = &fused_next_;
      } else {
        if (loopback_ == nullptr) {
          co_return internal_error("PE '" + name() +
                                   "': missing loopback stream");
        }
        sink.stream = loopback_;
      }
      if (!fixed) {
        CONDOR_CO_RETURN_IF_ERROR(co_await run_pass(pi, pass, sink));
      } else {
        // Fused intermediate blobs keep their format PE-local (no format
        // side-channel on the loopback edge or the fast path); only the
        // last pass publishes.
        int out_frac = 0;
        CONDOR_CO_RETURN_IF_ERROR(co_await run_pass_fixed(
            pi, pass, sink, last ? fmt_out_ : nullptr, frac, out_frac));
        frac = out_frac;
      }
      if (sink.local != nullptr) {
        std::swap(fused_prev_, fused_next_);
      }
    }
  }
  out_.close();
  if (loopback_ != nullptr) {
    loopback_->close();
  }
  if (fmt_out_ != nullptr) {
    fmt_out_->close();
  }
  co_return Status::ok();
}

Fire FeaturePeModule::latch_resident_weights() {
  for (std::size_t pi = 0; pi < program_.passes.size(); ++pi) {
    const LayerPass& pass = program_.passes[pi];
    if (pass.params == nullptr || weight_cache_[pi].ready) {
      continue;
    }
    // Fixed datapaths stream the same raw floats and quantize locally.
    CONDOR_CO_RETURN_IF_ERROR(co_await read_weights(
        weights_, pass.params->weights.size(), weight_buffer_, name()));
    CONDOR_CO_RETURN_IF_ERROR(co_await read_weights(
        weights_, pass.params->bias.size(), bias_buffer_, name()));
    derive_pass_cache(pi, pass);
  }
  co_return Status::ok();
}

void FeaturePeModule::derive_pass_cache(std::size_t pass_index,
                                        const LayerPass& pass) {
  // The resident blocks are a pure function of the (immutable) pass
  // parameters; output channel innermost so the MAC hot loop is contiguous.
  PassWeightCache& cache = weight_cache_[pass_index];
  if (!nn::is_fixed_point(data_type_)) {
    cache.packed = nn::kernels::pack_conv_weights(
        std::span<const float>(weight_buffer_), pass.out_channels,
        pass.in_channels, pass.window_h, pass.window_w);
    cache.bias = bias_buffer_;
    cache.ready = true;
    return;
  }
  // Quantize the raw slice exactly as the QuantizedEngine quantizes the
  // layer's parameter blobs: one dynamic format over the full weight
  // tensor, one over the bias — identical codes by construction.
  const int bits = nn::total_bits(data_type_);
  std::vector<std::int32_t> wcodes;
  cache.weight_frac = nn::quantize_span(weight_buffer_, bits, wcodes).frac_bits;
  cache.bias_frac = bits - 1;
  if (pass.has_bias) {
    cache.bias_frac =
        nn::quantize_span(bias_buffer_, bits, cache.bias_codes).frac_bits;
  }
  cache.packed_codes = nn::kernels::pack_conv_weights<std::int32_t>(
      wcodes, pass.out_channels, pass.in_channels, pass.window_h,
      pass.window_w);
  cache.ready = true;
}

Fire FeaturePeModule::read_port_stripe(const LayerPass& pass,
                                       std::size_t lane,
                                       std::span<float> stage) {
  // One exact read per tap: each filter delivers its whole per-channel
  // stripe (out_h rows of out_w matched elements, oy ascending — the exact
  // per-port element order of the row-at-a-time schedule) in a single
  // burst, staged tap-major. The filters forward the map down the chain
  // before writing their port, so ascending tap order here cannot starve a
  // later-chain filter (see filter.hpp).
  const std::size_t lane_stride = window_h_max_ * window_w_max_;
  const std::size_t stripe_points = pass.out_h * pass.out_w;
  for (std::size_t ky = 0; ky < pass.window_h; ++ky) {
    for (std::size_t kx = 0; kx < pass.window_w; ++kx) {
      Stream* port = ports_[lane * lane_stride + ky * window_w_max_ + kx];
      const std::size_t tap = ky * pass.window_w + kx;
      std::span<float> dst(stage.data() + tap * stripe_points, stripe_points);
      CONDOR_CO_READ_EXACT(
          *port, dst,
          internal_error("PE '" + name() + "': port stream ended early"));
    }
  }
  co_return Status::ok();
}

void FeaturePeModule::gather_local_stripe(const LayerPass& pass,
                                          std::size_t channel,
                                          std::span<float> stage) const
    noexcept {
  // The retained blob holds the previous pass's output in (c, y, x) order —
  // the exact loopback byte sequence. The round-trip route would pad it
  // (mux: zero border of `pad` per side) and match each access's domain
  // (filter: y = oy*stride + ky, x = ox*stride + kx in the padded frame);
  // gathering straight from the blob with the same index arithmetic yields
  // the identical values in the identical tap-major layout, so the
  // accumulation downstream cannot tell the routes apart.
  const std::size_t inner_h = pass.in_h - 2 * pass.pad;
  const std::size_t inner_w = pass.in_w - 2 * pass.pad;
  const float* map = fused_prev_.data() + channel * inner_h * inner_w;
  const std::size_t stripe_points = pass.out_h * pass.out_w;
  for (std::size_t ky = 0; ky < pass.window_h; ++ky) {
    for (std::size_t kx = 0; kx < pass.window_w; ++kx) {
      const std::size_t tap = ky * pass.window_w + kx;
      float* dst = stage.data() + tap * stripe_points;
      for (std::size_t oy = 0; oy < pass.out_h; ++oy) {
        const std::size_t y = oy * pass.stride + ky;
        for (std::size_t ox = 0; ox < pass.out_w; ++ox) {
          const std::size_t x = ox * pass.stride + kx;
          const bool interior = y >= pass.pad && y < pass.pad + inner_h &&
                                x >= pass.pad && x < pass.pad + inner_w;
          dst[oy * pass.out_w + ox] =
              interior ? map[(y - pass.pad) * inner_w + (x - pass.pad)]
                       : 0.0F;
        }
      }
    }
  }
}

void FeaturePeModule::gather_local_map(const LayerPass& pass,
                                       std::size_t channel,
                                       std::span<float> map) const noexcept {
  // Whole padded map of one channel (1x1-window passes read maps, not
  // stripes): border zeros around the retained interior — exactly the mux's
  // padding step.
  const std::size_t inner_h = pass.in_h - 2 * pass.pad;
  const std::size_t inner_w = pass.in_w - 2 * pass.pad;
  const float* src = fused_prev_.data() + channel * inner_h * inner_w;
  if (pass.pad == 0) {
    std::copy_n(src, inner_h * inner_w, map.data());
    return;
  }
  std::fill(map.begin(), map.end(), 0.0F);
  for (std::size_t iy = 0; iy < inner_h; ++iy) {
    std::copy_n(src + iy * inner_w, inner_w,
                map.data() + (pass.pad + iy) * pass.in_w + pass.pad);
  }
}

Fire FeaturePeModule::run_pass(std::size_t pass_index, const LayerPass& pass,
                               PassSink sink) {
  const std::size_t lane_stride = window_h_max_ * window_w_max_;

  switch (pass.kind) {
    case PassKind::kConvolution: {
      const std::size_t oc_total = pass.out_channels;
      const std::size_t map_points = pass.out_h * pass.out_w;
      const std::size_t tap_count = pass.window_h * pass.window_w;

      // Resident blocks, latched once per design (latch_resident_weights).
      const PassWeightCache& cache = weight_cache_[pass_index];
      const std::vector<float>& packed = cache.packed;
      const std::vector<float>& bias = cache.bias;

      // parallel_out compute lanes, each owning a disjoint oc slice with a
      // point-major accumulator tile seeded with the bias. Per output
      // element the accumulation chain (bias, then ic-major (ky, kx) adds)
      // is byte-identical to the single-lane schedule.
      const std::size_t compute_lanes =
          std::clamp<std::size_t>(parallel_out_, 1, std::max<std::size_t>(oc_total, 1));
      if (lane_acc_.size() < compute_lanes) {
        lane_acc_.resize(compute_lanes);
      }
      if (lane_taps_.size() < compute_lanes) {
        lane_taps_.resize(compute_lanes);
      }
      for (std::size_t lane = 0; lane < compute_lanes; ++lane) {
        const OcSlice slice = oc_slice(oc_total, compute_lanes, lane);
        lane_acc_[lane].resize(map_points * slice.width());
        float* acc = lane_acc_[lane].data();
        for (std::size_t point = 0; point < map_points; ++point) {
          for (std::size_t j = 0; j < slice.width(); ++j) {
            acc[point * slice.width() + j] =
                pass.has_bias ? bias[slice.begin + j] : 0.0F;
          }
        }
        lane_taps_[lane].resize(tap_count);
      }

      // Stream parallel_in consecutive input-channel stripes per group —
      // one per provisioned input lane, in the identical FIFO read order
      // of the channel-at-a-time schedule — then fork the compute lanes
      // once over the whole staged group. Each lane walks the group's
      // stripes in ascending-ic order, so every output element keeps its
      // exact accumulation chain (bias, then ic-major adds) at any
      // parallel_in degree.
      const std::size_t group = std::clamp<std::size_t>(
          lanes_, 1, std::max<std::size_t>(pass.in_channels, 1));
      const std::size_t stripe_elems = pass.out_h * tap_count * pass.out_w;
      stage_.resize(group * stripe_elems);
      for (std::size_t ic0 = 0; ic0 < pass.in_channels; ic0 += group) {
        const std::size_t members = std::min(group, pass.in_channels - ic0);
        for (std::size_t s = 0; s < members; ++s) {
          const std::span<float> slot =
              std::span<float>(stage_).subspan(s * stripe_elems, stripe_elems);
          if (local_input(pass_index)) {
            gather_local_stripe(pass, ic0 + s, slot);
          } else {
            CONDOR_CO_RETURN_IF_ERROR(
                co_await read_port_stripe(pass, (ic0 + s) % lanes_, slot));
          }
        }
        run_lanes(lane_pool_, compute_lanes, [&](std::size_t lane) {
          const OcSlice slice = oc_slice(oc_total, compute_lanes, lane);
          if (slice.width() == 0) {
            return;
          }
          float* acc = lane_acc_[lane].data();
          const float** taps = lane_taps_[lane].data();
          for (std::size_t s = 0; s < members; ++s) {
            const float* packed_ic =
                packed.data() + (ic0 + s) * tap_count * oc_total;
            const float* stripe = stage_.data() + s * stripe_elems;
            for (std::size_t oy = 0; oy < pass.out_h; ++oy) {
              for (std::size_t tap = 0; tap < tap_count; ++tap) {
                taps[tap] = stripe + (tap * pass.out_h + oy) * pass.out_w;
              }
              nn::kernels::conv_accumulate_row(
                  acc + oy * pass.out_w * slice.width(), slice.width(),
                  pass.out_w, taps, tap_count, 1, packed_ic + slice.begin,
                  oc_total);
            }
          }
        });
      }

      // Activation + transpose into the (oc, oy, ox) emission order; each
      // lane writes its disjoint contiguous output block.
      out_blob_.resize(oc_total * map_points);
      run_lanes(lane_pool_, compute_lanes, [&](std::size_t lane) {
        const OcSlice slice = oc_slice(oc_total, compute_lanes, lane);
        const float* acc = lane_acc_[lane].data();
        for (std::size_t j = 0; j < slice.width(); ++j) {
          float* out_map = out_blob_.data() + (slice.begin + j) * map_points;
          for (std::size_t point = 0; point < map_points; ++point) {
            out_map[point] = nn::apply_activation(
                pass.activation, acc[point * slice.width() + j]);
          }
        }
      });
      CONDOR_CO_RETURN_IF_ERROR(co_await write_blob(name(), sink, out_blob_));
      co_return Status::ok();
    }

    case PassKind::kPooling: {
      // Whole-channel staging: every tap's stripe prefetches in one exact
      // read (tap-major, see read_port_stripe), the channel's output map
      // computes in memory, and leaves in one burst. The reduction still
      // walks taps in ascending (ky, kx) order per output point, so the
      // float reduction order is unchanged. Channel c's window arrives on
      // chain lane c % lanes.
      const std::size_t tap_count = pass.window_h * pass.window_w;
      const std::size_t stripe_points = pass.out_h * pass.out_w;
      const float window_size = static_cast<float>(tap_count);
      stage_.resize(tap_count * stripe_points);
      out_blob_.resize(stripe_points);
      for (std::size_t c = 0; c < pass.in_channels; ++c) {
        if (local_input(pass_index)) {
          gather_local_stripe(pass, c, std::span<float>(stage_));
        } else {
          CONDOR_CO_RETURN_IF_ERROR(co_await read_port_stripe(
              pass, c % lanes_, std::span<float>(stage_)));
        }
        for (std::size_t oy = 0; oy < pass.out_h; ++oy) {
          for (std::size_t ox = 0; ox < pass.out_w; ++ox) {
            float result = pass.pool_method == nn::PoolMethod::kMax
                               ? -std::numeric_limits<float>::infinity()
                               : 0.0F;
            for (std::size_t tap = 0; tap < tap_count; ++tap) {
              const float value =
                  stage_[(tap * pass.out_h + oy) * pass.out_w + ox];
              if (pass.pool_method == nn::PoolMethod::kMax) {
                result = std::max(result, value);
              } else {
                result += value;
              }
            }
            if (pass.pool_method == nn::PoolMethod::kAverage) {
              result /= window_size;
            }
            out_blob_[oy * pass.out_w + ox] =
                nn::apply_activation(pass.activation, result);
          }
        }
        CONDOR_CO_RETURN_IF_ERROR(
            co_await write_blob(name(), sink, out_blob_));
      }
      co_return Status::ok();
    }

    case PassKind::kElementwise: {
      // 1x1 window: only access (0, 0) of the channel's lane. The whole
      // channel map transfers as one burst.
      map_.resize(pass.in_h * pass.in_w);
      for (std::size_t c = 0; c < pass.in_channels; ++c) {
        if (local_input(pass_index)) {
          gather_local_map(pass, c, std::span<float>(map_));
        } else {
          Stream* port = ports_[(c % lanes_) * lane_stride];
          CONDOR_CO_READ_EXACT(
              *port, std::span<float>(map_),
              internal_error("PE '" + name() + "': port stream ended early"));
        }
        for (float& value : map_) {
          value = nn::apply_activation(pass.activation, value);
        }
        CONDOR_CO_RETURN_IF_ERROR(co_await write_blob(name(), sink, map_));
      }
      co_return Status::ok();
    }

    case PassKind::kUpsample: {
      // Nearest-neighbour replication, channel at a time: the activation
      // applies to the source element (exactly forward_upsample's order)
      // and each scaled row replicates `scale` times.
      const std::size_t scale = pass.scale;
      map_.resize(pass.in_h * pass.in_w);
      out_blob_.resize(pass.out_h * pass.out_w);
      for (std::size_t c = 0; c < pass.in_channels; ++c) {
        if (local_input(pass_index)) {
          gather_local_map(pass, c, std::span<float>(map_));
        } else {
          Stream* port = ports_[(c % lanes_) * lane_stride];
          CONDOR_CO_READ_EXACT(
              *port, std::span<float>(map_),
              internal_error("PE '" + name() + "': port stream ended early"));
        }
        for (std::size_t y = 0; y < pass.in_h; ++y) {
          float* out_row = out_blob_.data() + y * scale * pass.out_w;
          for (std::size_t x = 0; x < pass.in_w; ++x) {
            const float value =
                nn::apply_activation(pass.activation, map_[y * pass.in_w + x]);
            for (std::size_t sx = 0; sx < scale; ++sx) {
              out_row[x * scale + sx] = value;
            }
          }
          for (std::size_t sy = 1; sy < scale; ++sy) {
            std::copy(out_row, out_row + pass.out_w,
                      out_row + sy * pass.out_w);
          }
        }
        CONDOR_CO_RETURN_IF_ERROR(
            co_await write_blob(name(), sink, out_blob_));
      }
      co_return Status::ok();
    }

    case PassKind::kInnerProduct:
      co_return internal_error(
          "feature PE cannot execute an inner-product pass");
    case PassKind::kEltwiseAdd:
    case PassKind::kConcat:
      co_return internal_error(
          "feature PE cannot execute a two-input join pass");
  }
  co_return internal_error("unhandled pass kind");
}

template <typename Acc>
Fire FeaturePeModule::run_conv_pass_fixed(std::size_t pass_index,
                                          const LayerPass& pass, PassSink sink,
                                          Stream* fmt_sink, int in_frac,
                                          int& out_frac) {
  const int bits = nn::total_bits(data_type_);
  const std::size_t oc_total = pass.out_channels;
  const std::size_t map_points = pass.out_h * pass.out_w;
  const std::size_t tap_count = pass.window_h * pass.window_w;

  // Resident quantized blocks, latched once per design from the one-time
  // weight load (latch_resident_weights / derive_pass_cache): codes
  // identical to the QuantizedEngine's parameter quantization.
  const PassWeightCache& cache = weight_cache_[pass_index];
  const int acc_frac = cache.weight_frac + in_frac;
  const std::vector<std::int32_t>& packed = cache.packed_codes;

  // Same lane decomposition as the float path: disjoint oc slices with
  // integer accumulator tiles. Integer accumulation is exact, so the lane
  // count cannot perturb any sum.
  const std::size_t compute_lanes = std::clamp<std::size_t>(
      parallel_out_, 1, std::max<std::size_t>(oc_total, 1));
  std::vector<std::vector<Acc>>& lane_acc = fixed_lane_acc<Acc>();
  if (lane_acc.size() < compute_lanes) {
    lane_acc.resize(compute_lanes);
  }
  if (lane_taps_fixed_.size() < compute_lanes) {
    lane_taps_fixed_.resize(compute_lanes);
  }
  for (std::size_t lane = 0; lane < compute_lanes; ++lane) {
    const OcSlice slice = oc_slice(oc_total, compute_lanes, lane);
    lane_acc[lane].resize(map_points * slice.width());
    Acc* acc = lane_acc[lane].data();
    for (std::size_t point = 0; point < map_points; ++point) {
      for (std::size_t j = 0; j < slice.width(); ++j) {
        acc[point * slice.width() + j] =
            pass.has_bias
                ? static_cast<Acc>(
                      nn::realign_code(cache.bias_codes[slice.begin + j],
                                       cache.bias_frac, acc_frac))
                : Acc{0};
      }
    }
    lane_taps_fixed_[lane].resize(tap_count);
  }

  // The port streams carry codes in float words; stage parallel_in
  // consecutive input-channel stripes per group (same FIFO read order as
  // the channel-at-a-time schedule), cast the group back to integer codes
  // (exact — see codes_from_floats), and fork the compute lanes once over
  // the whole group. Integer accumulation is exact, so neither the group
  // size nor the lane count can perturb any sum.
  const std::size_t group = std::clamp<std::size_t>(
      lanes_, 1, std::max<std::size_t>(pass.in_channels, 1));
  const std::size_t stripe_elems = pass.out_h * tap_count * pass.out_w;
  stage_.resize(group * stripe_elems);
  for (std::size_t ic0 = 0; ic0 < pass.in_channels; ic0 += group) {
    const std::size_t members = std::min(group, pass.in_channels - ic0);
    for (std::size_t s = 0; s < members; ++s) {
      const std::span<float> slot =
          std::span<float>(stage_).subspan(s * stripe_elems, stripe_elems);
      if (local_input(pass_index)) {
        // The retained blob carries codes in float words; the gather's zero
        // border is code 0, exactly the mux's border.
        gather_local_stripe(pass, ic0 + s, slot);
      } else {
        CONDOR_CO_RETURN_IF_ERROR(
            co_await read_port_stripe(pass, (ic0 + s) % lanes_, slot));
      }
    }
    codes_from_floats(
        std::span<const float>(stage_.data(), members * stripe_elems),
        int_stage_);
    run_lanes(lane_pool_, compute_lanes, [&](std::size_t lane) {
      const OcSlice slice = oc_slice(oc_total, compute_lanes, lane);
      if (slice.width() == 0) {
        return;
      }
      Acc* acc = lane_acc[lane].data();
      const std::int32_t** taps = lane_taps_fixed_[lane].data();
      for (std::size_t s = 0; s < members; ++s) {
        const std::int32_t* packed_ic =
            packed.data() + (ic0 + s) * tap_count * oc_total;
        const std::int32_t* stripe = int_stage_.data() + s * stripe_elems;
        for (std::size_t oy = 0; oy < pass.out_h; ++oy) {
          for (std::size_t tap = 0; tap < tap_count; ++tap) {
            taps[tap] = stripe + (tap * pass.out_h + oy) * pass.out_w;
          }
          nn::kernels::conv_accumulate_row(
              acc + oy * pass.out_w * slice.width(), slice.width(),
              pass.out_w, taps, tap_count, 1, packed_ic + slice.begin,
              oc_total);
        }
      }
    });
  }

  // Dequantize + activate into the (oc, oy, ox) emission order, then
  // requantize the full blob with a fresh dynamic format (the canonical
  // layer-boundary step; lanes join first so the format sees every value).
  out_blob_.resize(oc_total * map_points);
  run_lanes(lane_pool_, compute_lanes, [&](std::size_t lane) {
    const OcSlice slice = oc_slice(oc_total, compute_lanes, lane);
    const Acc* acc = lane_acc[lane].data();
    for (std::size_t j = 0; j < slice.width(); ++j) {
      float* out_map = out_blob_.data() + (slice.begin + j) * map_points;
      for (std::size_t point = 0; point < map_points; ++point) {
        out_map[point] = nn::apply_activation(
            pass.activation,
            nn::dequantize_code(
                static_cast<std::int64_t>(acc[point * slice.width() + j]),
                acc_frac));
      }
    }
  });
  co_return co_await emit_requantized(name(), sink, fmt_sink, out_blob_, bits,
                                      out_frac, emit_codes_, emit_blob_);
}

Fire FeaturePeModule::run_pass_fixed(std::size_t pass_index,
                                     const LayerPass& pass, PassSink sink,
                                     Stream* fmt_sink, int in_frac,
                                     int& out_frac) {
  const int bits = nn::total_bits(data_type_);
  const std::size_t lane_stride = window_h_max_ * window_w_max_;

  switch (pass.kind) {
    case PassKind::kConvolution:
      // Branch with if/else, not a conditional expression: gcc's coroutine
      // transform mis-handles coroutine-returning prvalues inside ?: arms
      // (both arms get materialized and the taken frame is destroyed twice).
      if (data_type_ == nn::DataType::kFixed16) {
        co_return co_await run_conv_pass_fixed<std::int64_t>(
            pass_index, pass, sink, fmt_sink, in_frac, out_frac);
      }
      co_return co_await run_conv_pass_fixed<std::int32_t>(
          pass_index, pass, sink, fmt_sink, in_frac, out_frac);

    case PassKind::kPooling: {
      // Max pooling reduces over codes directly (dequantization is
      // monotone); average pooling sums codes exactly and divides once in
      // float — both exactly as the QuantizedEngine's fixed_pooling. The
      // blob requantizes as a whole, so the output buffers on chip. Port
      // data prefetches one whole channel per round (tap-major stripes,
      // see read_port_stripe); integer reduction is order-insensitive, and
      // the tap walk stays ascending anyway.
      const std::size_t tap_count = pass.window_h * pass.window_w;
      const std::size_t stripe_points = pass.out_h * pass.out_w;
      const float window_size = static_cast<float>(tap_count);
      const bool is_max = pass.pool_method == nn::PoolMethod::kMax;
      stage_.resize(tap_count * stripe_points);
      out_blob_.resize(pass.in_channels * stripe_points);
      for (std::size_t c = 0; c < pass.in_channels; ++c) {
        if (local_input(pass_index)) {
          gather_local_stripe(pass, c, std::span<float>(stage_));
        } else {
          CONDOR_CO_RETURN_IF_ERROR(co_await read_port_stripe(
              pass, c % lanes_, std::span<float>(stage_)));
        }
        for (std::size_t oy = 0; oy < pass.out_h; ++oy) {
          for (std::size_t ox = 0; ox < pass.out_w; ++ox) {
            std::int64_t acc =
                is_max ? std::numeric_limits<std::int64_t>::min() : 0;
            for (std::size_t tap = 0; tap < tap_count; ++tap) {
              const auto code = static_cast<std::int64_t>(
                  stage_[(tap * pass.out_h + oy) * pass.out_w + ox]);
              acc = is_max ? std::max(acc, code) : acc + code;
            }
            float value = nn::dequantize_code(acc, in_frac);
            if (!is_max) {
              value /= window_size;
            }
            out_blob_[(c * pass.out_h + oy) * pass.out_w + ox] =
                nn::apply_activation(pass.activation, value);
          }
        }
      }
      co_return co_await emit_requantized(name(), sink, fmt_sink, out_blob_,
                                          bits, out_frac, emit_codes_,
                                          emit_blob_);
    }

    case PassKind::kElementwise: {
      // Dequantize + activate every element, requantize the whole blob
      // (the QuantizedEngine's fixed_activation).
      map_.resize(pass.in_h * pass.in_w);
      out_blob_.resize(pass.in_channels * pass.in_h * pass.in_w);
      for (std::size_t c = 0; c < pass.in_channels; ++c) {
        if (local_input(pass_index)) {
          gather_local_map(pass, c, std::span<float>(map_));
        } else {
          Stream* port = ports_[(c % lanes_) * lane_stride];
          CONDOR_CO_READ_EXACT(
              *port, std::span<float>(map_),
              internal_error("PE '" + name() + "': port stream ended early"));
        }
        for (std::size_t i = 0; i < map_.size(); ++i) {
          out_blob_[c * map_.size() + i] = nn::apply_activation(
              pass.activation,
              nn::dequantize_code(static_cast<std::int64_t>(map_[i]), in_frac));
        }
      }
      co_return co_await emit_requantized(name(), sink, fmt_sink, out_blob_,
                                          bits, out_frac, emit_codes_,
                                          emit_blob_);
    }

    case PassKind::kUpsample: {
      // Whole-blob value-space rebuild mirroring fixed_upsample: activate
      // the dequantized source element, replicate it, then requantize the
      // full output blob with one fresh dynamic format.
      const std::size_t scale = pass.scale;
      map_.resize(pass.in_h * pass.in_w);
      out_blob_.resize(pass.out_channels * pass.out_h * pass.out_w);
      for (std::size_t c = 0; c < pass.in_channels; ++c) {
        if (local_input(pass_index)) {
          gather_local_map(pass, c, std::span<float>(map_));
        } else {
          Stream* port = ports_[(c % lanes_) * lane_stride];
          CONDOR_CO_READ_EXACT(
              *port, std::span<float>(map_),
              internal_error("PE '" + name() + "': port stream ended early"));
        }
        float* channel = out_blob_.data() + c * pass.out_h * pass.out_w;
        for (std::size_t y = 0; y < pass.in_h; ++y) {
          float* out_row = channel + y * scale * pass.out_w;
          for (std::size_t x = 0; x < pass.in_w; ++x) {
            const float value = nn::apply_activation(
                pass.activation,
                nn::dequantize_code(
                    static_cast<std::int64_t>(map_[y * pass.in_w + x]),
                    in_frac));
            for (std::size_t sx = 0; sx < scale; ++sx) {
              out_row[x * scale + sx] = value;
            }
          }
          for (std::size_t sy = 1; sy < scale; ++sy) {
            std::copy(out_row, out_row + pass.out_w,
                      out_row + sy * pass.out_w);
          }
        }
      }
      co_return co_await emit_requantized(name(), sink, fmt_sink, out_blob_,
                                          bits, out_frac, emit_codes_,
                                          emit_blob_);
    }

    case PassKind::kInnerProduct:
      co_return internal_error(
          "feature PE cannot execute an inner-product pass");
    case PassKind::kEltwiseAdd:
    case PassKind::kConcat:
      co_return internal_error(
          "feature PE cannot execute a two-input join pass");
  }
  co_return internal_error("unhandled pass kind");
}

Fire ClassifierPeModule::fire(const RunContext& ctx) {
  if (nn::is_fixed_point(data_type_)) {
    // if/else instead of ?: — see run_pass_fixed for the gcc coroutine
    // transform pitfall with conditional expressions.
    if (data_type_ == nn::DataType::kFixed16) {
      co_return co_await run_fixed<std::int64_t>(ctx);
    }
    co_return co_await run_fixed<std::int32_t>(ctx);
  }
  // One-time runtime configuration load: the datamover streams every
  // pass's weights once per compiled design; they repack into the
  // transposed (in, out) GEMV layout the microkernel wants and stay
  // chip-resident for every image of every batch. Warm runs skip the
  // (closed, empty) stream entirely.
  if (!resident_ready_) {
    packed_weights_.resize(program_.passes.size());
    pass_bias_.resize(program_.passes.size());
    for (std::size_t pi = 0; pi < program_.passes.size(); ++pi) {
      const LayerPass& pass = program_.passes[pi];
      if (pass.params == nullptr) {
        continue;
      }
      CONDOR_CO_RETURN_IF_ERROR(co_await read_weights(
          weights_, pass.params->weights.size(), weight_buffer_, name()));
      packed_weights_[pi] = nn::kernels::pack_inner_product_weights<float>(
          weight_buffer_, pass.output_elements(), pass.input_elements());
      CONDOR_CO_RETURN_IF_ERROR(co_await read_weights(
          weights_, pass.params->bias.size(), weight_buffer_, name()));
      pass_bias_[pi] = weight_buffer_;
    }
    resident_ready_ = true;
  }

  // Scratch blobs reused across the whole batch (resize below the high-water
  // capacity never reallocates).
  for (std::size_t image = 0; image < ctx.batch; ++image) {
    // Stage the flattened input of the first pass.
    current_.resize(program_.passes.front().input_elements());
    CONDOR_CO_READ_EXACT(
        in_, std::span<float>(current_),
        internal_error("PE '" + name() + "': input stream ended early"));
    for (std::size_t pi = 0; pi < program_.passes.size(); ++pi) {
      const LayerPass& pass = program_.passes[pi];
      switch (pass.kind) {
        case PassKind::kInnerProduct: {
          const std::size_t in_count = pass.input_elements();
          const std::size_t out_count = pass.output_elements();
          const std::vector<float>& packed = packed_weights_[pi];
          next_.resize(out_count);
          // parallel_out lanes over disjoint output-neuron slices; each
          // neuron's chain (bias, then ascending-h adds) is unchanged.
          // parallel_in stripes the input walk into contiguous segments
          // accumulated back-to-back — the kernel vectorizes over output
          // neurons only, so any segment boundary is byte-identical.
          const std::size_t compute_lanes = std::clamp<std::size_t>(
              parallel_out_, 1, std::max<std::size_t>(out_count, 1));
          const std::size_t in_stripes = std::clamp<std::size_t>(
              parallel_in_, 1, std::max<std::size_t>(in_count, 1));
          run_lanes(lane_pool_, compute_lanes, [&](std::size_t lane) {
            const OcSlice slice = oc_slice(out_count, compute_lanes, lane);
            if (slice.width() == 0) {
              return;
            }
            float* acc = next_.data() + slice.begin;
            for (std::size_t j = 0; j < slice.width(); ++j) {
              acc[j] = pass.has_bias ? pass_bias_[pi][slice.begin + j] : 0.0F;
            }
            for (std::size_t s = 0; s < in_stripes; ++s) {
              const OcSlice seg = oc_slice(in_count, in_stripes, s);
              if (seg.width() == 0) {
                continue;
              }
              nn::kernels::inner_product_accumulate(
                  acc, slice.width(), current_.data() + seg.begin,
                  seg.width(),
                  packed.data() + seg.begin * out_count + slice.begin,
                  out_count);
            }
            for (std::size_t j = 0; j < slice.width(); ++j) {
              acc[j] = nn::apply_activation(pass.activation, acc[j]);
            }
          });
          std::swap(current_, next_);
          break;
        }
        case PassKind::kElementwise: {
          for (float& value : current_) {
            value = nn::apply_activation(pass.activation, value);
          }
          break;
        }
        default:
          co_return internal_error("classifier PE got a windowed pass");
      }
    }
    CONDOR_CO_WRITE_BURST(
        out_, current_,
        internal_error("PE '" + name() + "': output closed mid-batch"));
  }
  out_.close();
  co_return Status::ok();
}

template <typename Acc>
Fire ClassifierPeModule::run_fixed(const RunContext& ctx) {
  const int bits = nn::total_bits(data_type_);

  // One-time runtime configuration load, as in the float path — the raw
  // float weights stream in once per compiled design, quantize on chip
  // with the same per-blob dynamic formats the QuantizedEngine derives,
  // and stay resident as packed integer codes for every image of every
  // batch. Warm runs skip the (closed, empty) stream entirely.
  if (!resident_ready_) {
    resident_.resize(program_.passes.size());
    for (std::size_t pi = 0; pi < program_.passes.size(); ++pi) {
      const LayerPass& pass = program_.passes[pi];
      if (pass.params == nullptr) {
        continue;
      }
      FixedPassWeights& slot = resident_[pi];
      CONDOR_CO_RETURN_IF_ERROR(co_await read_weights(
          weights_, pass.params->weights.size(), weight_buffer_, name()));
      slot.weight_frac =
          nn::quantize_span(weight_buffer_, bits, wcodes_).frac_bits;
      slot.packed = nn::kernels::pack_inner_product_weights<std::int32_t>(
          wcodes_, pass.output_elements(), pass.input_elements());
      CONDOR_CO_RETURN_IF_ERROR(co_await read_weights(
          weights_, pass.params->bias.size(), weight_buffer_, name()));
      slot.bias_frac =
          nn::quantize_span(weight_buffer_, bits, slot.bias_codes).frac_bits;
    }
    resident_ready_ = true;
  }

  // Per-lane accumulator scratch: sized once to the lane ceiling, the inner
  // vectors keep their high-water capacity across passes and batches.
  std::vector<std::vector<Acc>>& lane_acc = fixed_lane_acc<Acc>();
  if (lane_acc.size() < parallel_out_) {
    lane_acc.resize(parallel_out_);
  }

  for (std::size_t image = 0; image < ctx.batch; ++image) {
    int frac = 0;
    CONDOR_CO_RETURN_IF_ERROR(co_await read_fmt_word(fmt_in_, frac, name()));
    words_.resize(program_.passes.front().input_elements());
    CONDOR_CO_READ_EXACT(
        in_, std::span<float>(words_),
        internal_error("PE '" + name() + "': input stream ended early"));
    codes_from_floats(words_, codes_);
    for (std::size_t pi = 0; pi < program_.passes.size(); ++pi) {
      const LayerPass& pass = program_.passes[pi];
      switch (pass.kind) {
        case PassKind::kInnerProduct: {
          const std::size_t in_count = pass.input_elements();
          const std::size_t out_count = pass.output_elements();
          const FixedPassWeights& slot = resident_[pi];
          const int acc_frac = slot.weight_frac + frac;
          values_.resize(out_count);
          // Same disjoint output-neuron slices as the float path; the
          // integer sums are exact so neither the lane count nor the
          // parallel_in segmentation can change a code. Each lane
          // dequantizes + activates its slice; the blob-wide
          // requantization joins the lanes first.
          const std::size_t compute_lanes = std::clamp<std::size_t>(
              parallel_out_, 1, std::max<std::size_t>(out_count, 1));
          const std::size_t in_stripes = std::clamp<std::size_t>(
              parallel_in_, 1, std::max<std::size_t>(in_count, 1));
          run_lanes(lane_pool_, compute_lanes, [&](std::size_t lane) {
            const OcSlice slice = oc_slice(out_count, compute_lanes, lane);
            if (slice.width() == 0) {
              return;
            }
            std::vector<Acc>& acc_tile = lane_acc[lane];
            acc_tile.resize(slice.width());
            Acc* const acc = acc_tile.data();
            for (std::size_t j = 0; j < slice.width(); ++j) {
              acc[j] = pass.has_bias
                           ? static_cast<Acc>(nn::realign_code(
                                 slot.bias_codes[slice.begin + j],
                                 slot.bias_frac, acc_frac))
                           : Acc{0};
            }
            for (std::size_t s = 0; s < in_stripes; ++s) {
              const OcSlice seg = oc_slice(in_count, in_stripes, s);
              if (seg.width() == 0) {
                continue;
              }
              nn::kernels::inner_product_accumulate(
                  acc, slice.width(), codes_.data() + seg.begin, seg.width(),
                  slot.packed.data() + seg.begin * out_count + slice.begin,
                  out_count);
            }
            for (std::size_t j = 0; j < slice.width(); ++j) {
              values_[slice.begin + j] = nn::apply_activation(
                  pass.activation,
                  nn::dequantize_code(static_cast<std::int64_t>(acc[j]),
                                      acc_frac));
            }
          });
          frac = nn::quantize_span(values_, bits, codes_).frac_bits;
          break;
        }
        case PassKind::kElementwise: {
          values_.resize(codes_.size());
          for (std::size_t i = 0; i < codes_.size(); ++i) {
            values_[i] = nn::apply_activation(
                pass.activation, nn::dequantize_code(codes_[i], frac));
          }
          frac = nn::quantize_span(values_, bits, codes_).frac_bits;
          break;
        }
        default:
          co_return internal_error("classifier PE got a windowed pass");
      }
    }
    if (fmt_out_ == nullptr) {
      co_return internal_error("PE '" + name() +
                               "': format sink closed mid-batch");
    }
    CONDOR_CO_WRITE_ONE(
        *fmt_out_, static_cast<float>(frac),
        internal_error("PE '" + name() + "': format sink closed mid-batch"));
    words_.assign(codes_.begin(), codes_.end());
    CONDOR_CO_WRITE_BURST(
        out_, words_,
        internal_error("PE '" + name() + "': output closed mid-batch"));
  }
  out_.close();
  if (fmt_out_ != nullptr) {
    fmt_out_->close();
  }
  co_return Status::ok();
}

}  // namespace condor::dataflow
